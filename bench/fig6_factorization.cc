// Reproduces Figure 6: sparsified ILU(0) factorization speedup on A100 at
// the 1%, 5%, and 10% sparsification levels (paper: most matrices improve,
// higher levels slightly more).
#include <iostream>

#include "common/runner.h"
#include "support/stats.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIlu0;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const std::string dev = "A100";

  std::cout << "=== Figure 6: sparsified ILU(0) factorization speedup on "
            << dev << " ===\n\n";
  TextTable t;
  t.set_header({"matrix", "nnz", "1%", "5%", "10%"});
  std::vector<std::vector<double>> per_ratio(records.front().ratios.size());
  for (const MatrixRecord& r : records) {
    std::vector<std::string> row{r.spec.name, std::to_string(r.nnz)};
    const double base = r.baseline.device.at(dev).factorization_s;
    for (std::size_t i = 0; i < r.ratios.size(); ++i) {
      const double sp = base / r.ratios[i].device.at(dev).factorization_s;
      per_ratio[i].push_back(sp);
      row.push_back(fmt_speedup(sp));
    }
    t.add_row(row);
  }
  std::cout << t.render() << "\n";

  TextTable summary;
  summary.set_header({"ratio", "gmean-speedup", "%accelerated", "min", "max"});
  for (std::size_t i = 0; i < per_ratio.size(); ++i) {
    const SpeedupSummary s = summarize_speedups(per_ratio[i]);
    summary.add_row({fmt(config.ratios[i], 0) + "%", fmt_speedup(s.gmean, 3),
                     fmt_percent(s.pct_accelerated), fmt_speedup(s.min),
                     fmt_speedup(s.max)});
  }
  std::cout << summary.render();
  std::cout << "\npaper shape: factorization improves for most matrices at "
               "every level,\nwith higher sparsification levels tending to a "
               "slightly greater speedup.\n";
  return 0;
}
