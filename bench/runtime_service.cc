// Runtime-layer throughput bench: replays a request trace through the
// SolveService (shared setup cache, worker pool) and through the pre-runtime
// call pattern (full spcg_solve pipeline per request), on the real host.
//
// This is the measured counterpart of the ISSUE-2 acceptance criterion: with
// >= 100 requests over <= 10 distinct matrices the service must amortize the
// setup phase (>= 90% cache hits) and beat per-request solving end to end.
// Wall-clock numbers are host-measured, not modeled; expect run-to-run
// jitter, especially on loaded machines.
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "gen/suite.h"
#include "runtime/runtime.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/timer.h"

using namespace spcg;

namespace {

struct TraceResult {
  double service_seconds = 0.0;
  double direct_seconds = 0.0;
  double hit_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int fallbacks = 0;
};

TraceResult replay(const std::vector<std::shared_ptr<const Csr<double>>>& ms,
                   int requests, int workers, const SpcgOptions& opt) {
  struct Trace {
    int matrix;
    std::vector<double> b;
  };
  std::vector<Trace> trace;
  trace.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const int m = i % static_cast<int>(ms.size());
    trace.push_back({m, make_rhs(*ms[static_cast<std::size_t>(m)],
                                 static_cast<std::uint64_t>(i) + 1)});
  }

  TraceResult out;
  WallTimer timer;
  {
    SolveService<double> service({workers, 2 * ms.size()});
    std::vector<SolveService<double>::Ticket> tickets;
    tickets.reserve(trace.size());
    for (Trace& t : trace) {
      ServiceRequest<double> req;
      req.a = ms[static_cast<std::size_t>(t.matrix)];
      req.b = t.b;
      req.options = opt;
      tickets.push_back(service.submit(std::move(req)));
    }
    std::vector<double> latency_ms;
    latency_ms.reserve(tickets.size());
    for (auto& t : tickets) {
      const ServiceReply<double> reply = t.reply.get();
      if (reply.status != RequestStatus::kOk) {
        std::cerr << "request not ok: " << to_string(reply.status) << "\n";
        continue;
      }
      if (reply.used_fallback) ++out.fallbacks;
      latency_ms.push_back(1e3 * (reply.queue_seconds + reply.solve_seconds));
    }
    out.service_seconds = timer.seconds();
    out.hit_rate = service.stats().cache.hit_rate();
    out.p50_ms = percentile(latency_ms, 50.0);
    out.p99_ms = percentile(latency_ms, 99.0);
  }

  timer.reset();
  for (const Trace& t : trace)
    spcg_solve(*ms[static_cast<std::size_t>(t.matrix)], t.b, opt);
  out.direct_seconds = timer.seconds();
  return out;
}

}  // namespace

int main() {
  constexpr int kMatrices = 8;
  constexpr int kRequests = 120;
  constexpr int kWorkers = 2;

  std::vector<std::shared_ptr<const Csr<double>>> ms;
  for (index_t id = 0; id < kMatrices; ++id)
    ms.push_back(
        std::make_shared<const Csr<double>>(generate_suite_matrix(id).a));

  std::cout << "=== runtime service trace: " << kRequests << " requests, "
            << kMatrices << " matrices, " << kWorkers << " workers ===\n\n";

  TextTable table;
  table.set_header({"config", "hit-rate", "service-s", "per-request-s",
                    "speedup", "p50-ms", "p99-ms", "fallbacks"});
  struct Config {
    const char* name;
    SpcgOptions opt;
  };
  std::vector<Config> configs;
  {
    Config ilu0{"SPCG-ILU(0)", {}};
    ilu0.opt.pcg.tolerance = 1e-8;
    configs.push_back(ilu0);
    Config iluk{"SPCG-ILU(8)", {}};
    iluk.opt.pcg.tolerance = 1e-8;
    iluk.opt.preconditioner = PrecondKind::kIluK;
    iluk.opt.fill_level = 8;
    configs.push_back(iluk);
  }
  for (const Config& c : configs) {
    const TraceResult r = replay(ms, kRequests, kWorkers, c.opt);
    table.add_row({c.name, fmt(r.hit_rate, 3), fmt(r.service_seconds, 3),
                   fmt(r.direct_seconds, 3),
                   fmt(r.direct_seconds / r.service_seconds, 2) + "x",
                   fmt(r.p50_ms, 2), fmt(r.p99_ms, 2),
                   std::to_string(r.fallbacks)});
  }
  std::cout << table.render()
            << "\nspeedup = per-request spcg_solve replay over the same trace "
               "through the service\n(setup cached after first sight of each "
               "matrix; acceptance: hit-rate >= 0.90,\nspeedup >= 2x in the "
               "ILU(K) setup-dominated regime).\n";
  return 0;
}
