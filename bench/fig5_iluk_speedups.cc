// Reproduces Figure 5: SPCG-ILU(K) speedups on A100.
//   (a) per-iteration speedup distribution (paper: gmean 1.65x, 80.38%
//       accelerated, baseline range 0.0007-2.709 GFLOP/s),
//   (b) end-to-end speedup vs nnz (paper: gmean 3.73x, iterations
//       ~unchanged for 91.61%).
#include <iostream>

#include "common/runner.h"
#include "support/stats.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIluK;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const std::string dev = "A100";

  std::cout << "=== Figure 5a: SPCG-ILU(K) per-iteration speedup on " << dev
            << " ===\n\n";
  std::vector<double> per_iter, gflops;
  for (const MatrixRecord& r : records) {
    per_iter.push_back(r.per_iteration_speedup(r.spcg(), dev));
    const double flops = pcg_iteration_flops(r.n, r.nnz, r.baseline.factor_nnz);
    gflops.push_back(flops / r.baseline.device.at(dev).per_iteration_s * 1e-9);
  }
  const Histogram h = histogram(per_iter, 0.0, 5.0, 20, /*as_percent=*/true);
  std::cout << render_histogram(h, "%") << "\n";
  const SpeedupSummary s = summarize_speedups(per_iter);
  std::cout << "matrices: " << s.count << "\n";
  std::cout << "geometric-mean per-iteration speedup: " << fmt_speedup(s.gmean)
            << "  (paper: 1.65x)\n";
  std::cout << "% matrices accelerated: " << fmt_percent(s.pct_accelerated)
            << "  (paper: 80.38%)\n";
  std::cout << "baseline GFLOP/s range: "
            << fmt(*std::min_element(gflops.begin(), gflops.end()), 4) << " - "
            << fmt(*std::max_element(gflops.begin(), gflops.end()), 4)
            << "  (paper: 0.0007 - 2.709)\n";
  // Paper note: ILU(K) slowdowns stay close to 1.
  double worst = 10.0;
  for (const double v : per_iter) worst = std::min(worst, v);
  std::cout << "worst per-iteration slowdown: " << fmt_speedup(worst)
            << "  (paper: slowdowns remain close to 1)\n\n";

  std::cout << "=== Figure 5b: SPCG-ILU(K) end-to-end speedup vs nnz on "
            << dev << " ===\n\n";
  TextTable t;
  t.set_header({"matrix", "category", "nnz", "K", "e2e-speedup", "iters-base",
                "iters-spcg", "ratio"});
  std::vector<double> e2e;
  int iters_same = 0, both_converged = 0;
  for (const MatrixRecord& r : records) {
    const auto sp = r.spcg_end_to_end_speedup(dev);
    if (!sp) continue;
    ++both_converged;
    e2e.push_back(*sp);
    const double rel_change =
        std::abs(r.spcg().iterations - r.baseline.iterations) /
        std::max(1.0, static_cast<double>(r.baseline.iterations));
    if (rel_change <= 0.10) ++iters_same;
    t.add_row({r.spec.name, r.spec.category, std::to_string(r.nnz),
               std::to_string(r.chosen_k), fmt_speedup(*sp),
               std::to_string(r.baseline.iterations),
               std::to_string(r.spcg().iterations),
               fmt(r.spcg().ratio_percent, 0) + "%"});
  }
  std::cout << t.render() << "\n";
  const SpeedupSummary se = summarize_speedups(e2e);
  std::cout << "converging matrices: " << both_converged << " / "
            << records.size() << "\n";
  std::cout << "geometric-mean end-to-end speedup: " << fmt_speedup(se.gmean)
            << "  (paper: 3.73x)\n";
  std::cout << "% with ~unchanged iteration count: "
            << fmt_percent(both_converged
                               ? static_cast<double>(iters_same) / both_converged
                               : 0.0)
            << "  (paper: 91.61%)\n";
  return 0;
}
