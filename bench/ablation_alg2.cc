// Ablation of Algorithm 2's inner choices that the paper leaves implicit:
//   1. Wavefront-reduction denominator: Eq. 7 normalizes by w_A while the
//      Algorithm 2 listing (line 10) writes w_Ahat. How often do they pick
//      different ratios, and does it matter?
//   2. Threshold sensitivity: gmean per-iteration speedup and convergence
//      rate across a (tau, omega) grid — the paper grid-searched (1, 10%).
#include <iostream>

#include "common/runner.h"
#include "core/sparsify.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIlu0;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const std::string dev = "A100";

  // --- 1. denominator variant ------------------------------------------------
  int differ = 0;
  std::vector<double> sp_eq7, sp_alg2;
  for (const MatrixRecord& r : records) {
    const GeneratedMatrix g = generate_suite_matrix(r.spec.id);
    SparsifyOptions eq7;  // defaults: kOriginal
    SparsifyOptions alg2 = eq7;
    alg2.denominator = WavefrontDenominator::kSparsified;
    const auto d7 = wavefront_aware_sparsify(g.a, eq7);
    const auto d2 = wavefront_aware_sparsify(g.a, alg2);
    if (d7.chosen.ratio_percent != d2.chosen.ratio_percent) ++differ;
    auto speedup_of = [&](double ratio) {
      for (std::size_t i = 0; i < config.ratios.size(); ++i) {
        if (config.ratios[i] == ratio)
          return r.per_iteration_speedup(r.ratios[i], dev);
      }
      return 1.0;
    };
    sp_eq7.push_back(speedup_of(d7.chosen.ratio_percent));
    sp_alg2.push_back(speedup_of(d2.chosen.ratio_percent));
  }
  std::cout << "=== Ablation 1: wavefront-reduction denominator (Eq. 7 w_A "
               "vs Alg. 2 line 10 w_Ahat) ===\n\n";
  std::cout << "matrices where the two conventions choose different ratios: "
            << differ << " / " << records.size() << "\n";
  std::cout << "gmean per-iteration speedup: Eq. 7 "
            << fmt_speedup(summarize_speedups(sp_eq7).gmean) << ", Alg. 2 "
            << fmt_speedup(summarize_speedups(sp_alg2).gmean) << "\n";
  std::cout << "(w_Ahat in the denominator inflates the reduction value, "
               "accepting aggressive\nratios slightly more often; the effect "
               "on the final speedup is marginal.)\n\n";

  // --- 2. (tau, omega) grid ---------------------------------------------------
  std::cout << "=== Ablation 2: threshold grid (paper grid-searched tau=1, "
               "omega=10%) ===\n\n";
  TextTable t;
  t.set_header({"tau", "omega", "gmean-per-iter", "%converged",
                "%choice=10%", "%choice=1%"});
  for (const double tau : {0.25, 1.0, 4.0}) {
    for (const double omega : {2.0, 10.0, 30.0}) {
      std::vector<double> sp;
      int conv = 0, pick10 = 0, pick1 = 0;
      for (const MatrixRecord& r : records) {
        const GeneratedMatrix g = generate_suite_matrix(r.spec.id);
        SparsifyOptions opts;
        opts.tau = tau;
        opts.omega_percent = omega;
        const auto d = wavefront_aware_sparsify(g.a, opts);
        for (std::size_t i = 0; i < config.ratios.size(); ++i) {
          if (config.ratios[i] == d.chosen.ratio_percent) {
            sp.push_back(r.per_iteration_speedup(r.ratios[i], dev));
            if (r.ratios[i].converged) ++conv;
          }
        }
        if (d.chosen.ratio_percent == 10.0) ++pick10;
        if (d.chosen.ratio_percent == 1.0) ++pick1;
      }
      const double n = static_cast<double>(records.size());
      t.add_row({fmt(tau, 2), fmt(omega, 0) + "%",
                 fmt_speedup(summarize_speedups(sp).gmean),
                 fmt_percent(conv / n), fmt_percent(pick10 / n),
                 fmt_percent(pick1 / n)});
    }
  }
  std::cout << t.render();
  std::cout << "\nShape: looser tau / lower omega push toward the aggressive "
               "ratio (more\nper-iteration speedup, more convergence risk); "
               "the paper's (1, 10%) sits at\na good trade-off, matching its "
               "grid-search claim.\n";
  return 0;
}
