// Ablation: does SPCG still pay off under a synchronization-free SpTRSV
// executor (Liu et al. / CapelliniSpTRSV style, cited in the paper's related
// work as the alternative to barriered wavefront execution)?
//
// The sync-free model removes the per-level barrier but keeps one
// dependent-latency hop per level on the critical path. SPCG's wavefront
// reduction therefore still shortens the solve — by a smaller factor.
#include <iostream>

#include "common/runner.h"
#include "gpumodel/cost_model.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIlu0;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const CostModel model(device_a100(), 4);

  std::vector<double> barriered, syncfree, syncfree_gain;
  for (const MatrixRecord& r : records) {
    const GeneratedMatrix g = generate_suite_matrix(r.spec.id);
    const IluResult<double> base_fact = ilu0(g.a);
    const SparsifySplit<double> split =
        sparsify_by_ratio(g.a, r.spcg().ratio_percent);
    const IluResult<double> spcg_fact = ilu0(split.a_hat);

    auto solve_time = [&](const IluResult<double>& f, bool sync_free) {
      const TriSolveStructure lo = trisolve_structure(f.lu, Triangle::kLower);
      const TriSolveStructure up = trisolve_structure(f.lu, Triangle::kUpper);
      return sync_free
                 ? model.trisolve_syncfree(lo).seconds +
                       model.trisolve_syncfree(up).seconds
                 : model.trisolve(lo).seconds + model.trisolve(up).seconds;
    };
    barriered.push_back(solve_time(base_fact, false) /
                        solve_time(spcg_fact, false));
    syncfree.push_back(solve_time(base_fact, true) /
                       solve_time(spcg_fact, true));
    syncfree_gain.push_back(solve_time(base_fact, false) /
                            solve_time(base_fact, true));
  }

  std::cout << "=== Ablation: SPCG under barriered vs sync-free SpTRSV "
               "executors (A100 model) ===\n\n";
  TextTable t;
  t.set_header({"metric", "gmean", "%>1", "max"});
  for (const auto& [name, v] :
       {std::pair<const char*, const std::vector<double>&>{
            "SPCG speedup, barriered executor", barriered},
        {"SPCG speedup, sync-free executor", syncfree},
        {"sync-free over barriered (baseline)", syncfree_gain}}) {
    const SpeedupSummary s = summarize_speedups(v);
    t.add_row({name, fmt_speedup(s.gmean), fmt_percent(s.pct_accelerated),
               fmt_speedup(s.max)});
  }
  std::cout << t.render();
  std::cout << "\nShape: the sync-free executor is the stronger baseline "
               "(as the related work\nclaims), and sparsification still "
               "speeds it up — wavefront reduction shortens\nthe dependence "
               "critical path, not just the barrier count.\n";
  return 0;
}
