// Reproduces Table 1: per-iteration speedup statistics of SPCG over PCG on
// A100 for fixed ratios 1/5/10%, the wavefront-aware SPCG choice, and the
// Oracle (best of the three ratios per matrix).
//
// Paper values:
//   (a) ILU(0): gmean 0.98 / 1.11 / 1.22 / 1.23 / 1.39,
//       %acc 56.14 / 71.93 / 68.42 / 69.16 / 78.07
//   (b) ILU(K): gmean 1.47 / 1.62 / 1.65 / 1.65 / 1.78,
//       %acc 88.57 / 92.86 / 85.71 / 80.38 / 97.14
#include <iostream>

#include "common/runner.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

namespace {

void run_table(PrecondKind kind, const char* title) {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = kind;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const std::string dev = "A100";

  std::cout << "=== Table 1" << title << " ===\n\n";
  std::vector<std::vector<double>> fixed(config.ratios.size());
  std::vector<double> spcg, oracle;
  for (const MatrixRecord& r : records) {
    for (std::size_t i = 0; i < r.ratios.size(); ++i)
      fixed[i].push_back(r.per_iteration_speedup(r.ratios[i], dev));
    spcg.push_back(r.per_iteration_speedup(r.spcg(), dev));
    const int oc = oracle_per_iteration_choice(r, dev);
    oracle.push_back(r.per_iteration_speedup(
        r.ratios[static_cast<std::size_t>(oc)], dev));
  }

  TextTable t;
  std::vector<std::string> header{"Statistic/Setting"};
  std::vector<std::string> row_gmean{"Geometric Mean"};
  std::vector<std::string> row_acc{"% Accelerated"};
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    header.push_back(fmt(config.ratios[i], 0) + "%");
    const SpeedupSummary s = summarize_speedups(fixed[i]);
    row_gmean.push_back(fmt_speedup(s.gmean));
    row_acc.push_back(fmt_percent(s.pct_accelerated));
  }
  for (const auto& [name, v] :
       {std::pair<const char*, const std::vector<double>&>{"SPCG", spcg},
        {"Oracle", oracle}}) {
    header.push_back(name);
    const SpeedupSummary s = summarize_speedups(v);
    row_gmean.push_back(fmt_speedup(s.gmean));
    row_acc.push_back(fmt_percent(s.pct_accelerated));
  }
  t.set_header(header);
  t.add_row(row_gmean);
  t.add_row(row_acc);
  std::cout << t.render() << "\n";
}

}  // namespace

int main() {
  run_table(PrecondKind::kIlu0,
            "a: per-iteration speedup statistics of SPCG-ILU(0), A100");
  std::cout << "paper:  1%: 0.98x/56.14%  5%: 1.11x/71.93%  10%: 1.22x/68.42%"
               "  SPCG: 1.23x/69.16%  Oracle: 1.39x/78.07%\n\n";
  run_table(PrecondKind::kIluK,
            "b: per-iteration speedup statistics of SPCG-ILU(K), A100");
  std::cout << "paper:  1%: 1.47x/88.57%  5%: 1.62x/92.86%  10%: 1.65x/85.71%"
               "  SPCG: 1.65x/80.38%  Oracle: 1.78x/97.14%\n";
  std::cout << "\npaper shape: Oracle > SPCG ~ 10% > 5% > 1% in gmean; 5% "
               "accelerates the\nwidest share of matrices even when 10% has "
               "the higher mean.\n";
  return 0;
}
