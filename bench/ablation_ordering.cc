// Ablation: how matrix ordering interacts with SPCG.
//
// Wavefront counts are a property of the ordering, not just the pattern:
// natural band orderings produce deep schedules (many wavefronts), random
// orderings flatten them, and RCM restores band behavior. This bench
// quantifies, for a few representative matrices, the wavefronts and the
// modeled A100 per-iteration time of baseline vs SPCG under each ordering —
// showing that sparsification helps most exactly where orderings are deep.
#include <iostream>

#include "core/spcg.h"
#include "gen/suite.h"
#include "gpumodel/cost_model.h"
#include "sparse/reorder.h"
#include "support/table.h"

using namespace spcg;

namespace {

struct Row {
  std::string ordering;
  index_t wf_base = 0, wf_spcg = 0;
  double t_base = 0, t_spcg = 0;
  std::int32_t it_base = 0, it_spcg = 0;
};

Row evaluate(const Csr<double>& a, const std::vector<double>& b,
             const std::string& ordering) {
  Row row;
  row.ordering = ordering;
  SpcgOptions base;
  base.sparsify_enabled = false;
  base.pcg.tolerance = 1e-10;
  SpcgOptions sp = base;
  sp.sparsify_enabled = true;
  const SpcgResult<double> rb = spcg_solve(a, std::span<const double>(b), base);
  const SpcgResult<double> rs = spcg_solve(a, std::span<const double>(b), sp);
  const CostModel model(device_a100(), 4);
  row.wf_base = rb.wavefronts_factor;
  row.wf_spcg = rs.wavefronts_factor;
  row.t_base =
      model.pcg_iteration(pcg_iteration_shape(a, rb.factorization.lu)).seconds;
  row.t_spcg =
      model.pcg_iteration(pcg_iteration_shape(a, rs.factorization.lu)).seconds;
  row.it_base = rb.solve.iterations;
  row.it_spcg = rs.solve.iterations;
  return row;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: ordering sensitivity of SPCG (ILU(0), modeled "
               "A100) ===\n\n";
  TextTable t;
  t.set_header({"matrix", "ordering", "wf base", "wf spcg", "per-iter speedup",
                "iters base", "iters spcg"});
  for (const index_t id : {0, 14, 55, 94}) {  // grid, circuit, em, structural
    const GeneratedMatrix g = generate_suite_matrix(id);
    const std::vector<std::pair<std::string, Permutation>> orderings = [&] {
      std::vector<std::pair<std::string, Permutation>> o;
      Permutation identity(static_cast<std::size_t>(g.a.rows));
      std::iota(identity.begin(), identity.end(), 0);
      o.emplace_back("natural", std::move(identity));
      o.emplace_back("random", random_permutation(g.a.rows, 17));
      o.emplace_back("rcm", reverse_cuthill_mckee(g.a));
      return o;
    }();
    for (const auto& [name, perm] : orderings) {
      const Csr<double> pa = permute_symmetric(g.a, perm);
      const std::vector<double> pb = permute_vector(g.b, perm);
      const Row r = evaluate(pa, pb, name);
      t.add_row({g.spec.name, r.ordering, std::to_string(r.wf_base),
                 std::to_string(r.wf_spcg), fmt_speedup(r.t_base / r.t_spcg),
                 std::to_string(r.it_base), std::to_string(r.it_spcg)});
    }
  }
  std::cout << t.render();
  std::cout << "\nDeep (natural band) orderings leave the most wavefronts for "
               "sparsification to\nremove; random orderings flatten the "
               "schedule and shrink SPCG's headroom.\nConvergence is "
               "ordering-independent (same preconditioner quality class).\n";
  return 0;
}
