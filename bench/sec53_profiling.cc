// Reproduces the §5.3 profiling observations: the model's DRAM-utilization
// and compute-utilization counters before/after sparsification for three
// representative matrices (the paper's thermomech_dM / 2cubes_sphere / Muu
// roles: a strong-speedup case, a latency-bound case, and a ~neutral case).
#include <algorithm>
#include <iostream>

#include "common/runner.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIlu0;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const std::string dev = "A100";

  // Pick representatives by per-iteration speedup: max, closest to 1, min.
  const MatrixRecord* fast = nullptr;
  const MatrixRecord* neutral = nullptr;
  const MatrixRecord* slow = nullptr;
  for (const MatrixRecord& r : records) {
    const double sp = r.per_iteration_speedup(r.spcg(), dev);
    if (!fast || sp > fast->per_iteration_speedup(fast->spcg(), dev)) fast = &r;
    if (!slow || sp < slow->per_iteration_speedup(slow->spcg(), dev)) slow = &r;
    const double dn = std::abs(sp - 1.0);
    if (!neutral ||
        dn < std::abs(neutral->per_iteration_speedup(neutral->spcg(), dev) - 1.0))
      neutral = &r;
  }

  std::cout << "=== Section 5.3: GPU profiling observations (" << dev
            << ", modeled counters) ===\n\n";
  TextTable t;
  t.set_header({"role", "matrix", "speedup", "dram-util base", "dram-util spcg",
                "compute-util base", "compute-util spcg"});
  auto add = [&](const char* role, const MatrixRecord* r) {
    const DeviceTimes& b = r->baseline.device.at(dev);
    const DeviceTimes& s = r->spcg().device.at(dev);
    t.add_row({role, r->spec.name,
               fmt_speedup(r->per_iteration_speedup(r->spcg(), dev)),
               fmt_percent(b.dram_utilization), fmt_percent(s.dram_utilization),
               fmt_percent(b.compute_utilization),
               fmt_percent(s.compute_utilization)});
  };
  add("strong speedup (thermomech_dM role)", fast);
  add("neutral (Muu role)", neutral);
  add("latency-bound (2cubes_sphere role)", slow);
  std::cout << t.render() << "\n";
  std::cout
      << "paper observations reproduced here:\n"
      << "  * strong-speedup matrices RAISE both DRAM and compute utilization "
         "(thermomech_dM:\n"
      << "    4.24%->6.25% DRAM, 16.49%->23.71% compute, 4.39x) — less time "
         "is wasted on\n"
      << "    wavefront synchronization, so the same traffic flows in less "
         "time;\n"
      << "  * neutral matrices keep low utilization before and after "
         "(2cubes_sphere: 1.07%\n"
      << "    compute flat) — they remain latency/synchronization bound.\n";
  return 0;
}
