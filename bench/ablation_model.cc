// Ablation: robustness of the headline result to the execution-model
// calibration. Every device constant the model uses (launch latency, level
// synchronization, row latency, bandwidth) is swept over +-2x around the
// calibrated A100 values; the SPCG-ILU(0) gmean per-iteration speedup is
// recomputed for each variant. If the conclusion only held at one magic
// calibration point, this table would show it.
#include <iostream>

#include "common/runner.h"
#include "gpumodel/cost_model.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

namespace {

double gmean_speedup_under(const std::vector<MatrixRecord>& records,
                           const DeviceSpec& spec) {
  const CostModel model(spec, 4);
  std::vector<double> sp;
  for (const MatrixRecord& r : records) {
    const GeneratedMatrix g = generate_suite_matrix(r.spec.id);
    const IluResult<double> base = ilu0(g.a);
    const SparsifySplit<double> split =
        sparsify_by_ratio(g.a, r.spcg().ratio_percent);
    const IluResult<double> spcg = ilu0(split.a_hat);
    const double tb =
        model.pcg_iteration(pcg_iteration_shape(g.a, base.lu)).seconds;
    const double ts =
        model.pcg_iteration(pcg_iteration_shape(g.a, spcg.lu)).seconds;
    sp.push_back(tb / ts);
  }
  return summarize_speedups(sp).gmean;
}

}  // namespace

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIlu0;
  // A modest subset keeps the 13-point sweep quick while covering every
  // category (the per-matrix factorizations are recomputed per point).
  if (config.max_matrices < 0) config.max_matrices = 60;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);

  std::cout << "=== Ablation: model-calibration sensitivity (SPCG-ILU(0) "
               "gmean per-iteration speedup) ===\n\n";
  TextTable t;
  t.set_header({"variant", "gmean speedup"});
  const DeviceSpec base = device_a100();
  t.add_row({"calibrated A100", fmt_speedup(gmean_speedup_under(records, base))});
  for (const double f : {0.5, 2.0}) {
    DeviceSpec d = base;
    d.kernel_launch_us *= f;
    t.add_row({"launch latency x" + fmt(f, 1),
               fmt_speedup(gmean_speedup_under(records, d))});
    d = base;
    d.level_sync_us *= f;
    t.add_row({"level sync x" + fmt(f, 1),
               fmt_speedup(gmean_speedup_under(records, d))});
    d = base;
    d.row_latency_us *= f;
    t.add_row({"row latency x" + fmt(f, 1),
               fmt_speedup(gmean_speedup_under(records, d))});
    d = base;
    d.dram_gbps *= f;
    t.add_row({"bandwidth x" + fmt(f, 1),
               fmt_speedup(gmean_speedup_under(records, d))});
    d = base;
    d.parallel_units *= f;
    t.add_row({"SM count x" + fmt(f, 1),
               fmt_speedup(gmean_speedup_under(records, d))});
  }
  std::cout << t.render();
  std::cout << "\nShape: the speedup grows with synchronization cost (more "
               "to save) and shrinks\nwhen the device is bandwidth-bound, "
               "but stays > 1 across the whole +-2x\ncalibration cube — the "
               "conclusion is not an artifact of one constant.\n";
  return 0;
}
