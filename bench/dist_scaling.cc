// Strong-scaling bench for the distributed SPCG layer: one >= 100k-row 2D
// Poisson system solved at P in {1, 2, 4, 8} thread-ranks across all three
// solver bodies (classic, communication-overlapped, communication-reduced),
// reporting iterations (vs the single-domain serial SPCG reference),
// communication volume (halo bytes, all-reduce count), overlap efficiency,
// and wall-clock speedup over P = 1.
//
// Transport knobs make the communication cost visible on one host:
// --transport selects the backing (inproc / shm / socket) and
// --inject-latency-us adds synthetic wire latency to every collective —
// under latency the comm-reduced body's single fused all-reduce per
// iteration is a measurable wall-clock win over classic's two.
//
// Correctness gates (binary exits nonzero if any breaks):
//   1. P = 1 classic must be bitwise identical to spcg_solve.
//   2. P = 1 comm-reduced must be bitwise identical to pipelined_pcg.
//   3. The comm-reduced body must issue at most one all-reduce per
//      iteration (exact budget: iterations + 2).
//   4. With --inject-latency-us >= 100 and P >= 4 in the panel, the
//      comm-reduced body must beat classic wall-clock at the largest P.
//
// Speedups are host-measured: ranks are std::threads, so on a machine with
// fewer hardware threads than P the ranks time-slice and speedup saturates
// at (or below) the core count. The iteration counts, communication volumes
// and the bitwise gates are machine-independent.
//
// Usage: dist_scaling [--nx N] [--smoke] [--parts LIST]
//                     [--transport inproc|shm|socket]
//                     [--inject-latency-us U] [--out FILE]
//   --nx N      grid edge; the system has N*N rows (default 330 -> 108,900)
//   --smoke     CI-sized run: nx = 120, P in {1, 2}
//   --parts L   comma-separated rank counts, e.g. 1,2,4 (default 1,2,4,8)
//   --transport K          transport backing (default inproc)
//   --inject-latency-us U  synthetic latency per collective (default 0)
//   --out FILE  also write the panel as JSON rows
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/dist.h"
#include "gen/generators.h"
#include "solver/pipelined_cg.h"
#include "support/table.h"
#include "support/timer.h"

using namespace spcg;

namespace {

bool parse_parts_list(const std::string& text, std::vector<index_t>* out) {
  out->clear();
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int v = std::atoi(item.c_str());
    if (v < 1 || v > 256) return false;
    out->push_back(static_cast<index_t>(v));
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  index_t nx = 330;
  std::vector<index_t> parts_list = {1, 2, 4, 8};
  TransportOptions topt;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nx" && i + 1 < argc) {
      nx = static_cast<index_t>(std::atoi(argv[++i]));
      if (nx < 4) {
        std::cerr << "error: --nx must be >= 4\n";
        return 2;
      }
    } else if (arg == "--smoke") {
      nx = 120;
      parts_list = {1, 2};
    } else if (arg == "--parts" && i + 1 < argc) {
      if (!parse_parts_list(argv[++i], &parts_list)) {
        std::cerr << "error: --parts expects a comma list like 1,2,4\n";
        return 2;
      }
    } else if (arg == "--transport" && i + 1 < argc) {
      if (!parse_transport_kind(argv[++i], &topt.kind)) {
        std::cerr << "error: --transport expects inproc, shm, or socket\n";
        return 2;
      }
    } else if (arg == "--inject-latency-us" && i + 1 < argc) {
      const int us = std::atoi(argv[++i]);
      if (us < 0) {
        std::cerr << "error: --inject-latency-us must be >= 0\n";
        return 2;
      }
      topt.inject_latency_us = static_cast<std::uint32_t>(us);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--nx N] [--smoke] [--parts LIST]"
                   " [--transport inproc|shm|socket]\n"
                   "  [--inject-latency-us U] [--out FILE]\n";
      return 2;
    }
  }

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::out | std::ios::trunc);
    if (!out_file.is_open()) {
      std::cerr << "error: --out path '" << out_path << "' is not writable\n";
      return 2;
    }
  }

  const Csr<double> a = gen_poisson2d(nx, nx);
  const std::vector<double> b = make_rhs(a, 1);
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-8;

  std::cout << "dist_scaling: poisson2d " << nx << "x" << nx << " ("
            << a.rows << " rows, " << a.nnz() << " nnz), "
            << std::thread::hardware_concurrency() << " hardware thread(s), "
            << "transport " << to_string(topt.kind);
  if (topt.inject_latency_us > 0)
    std::cout << " +" << topt.inject_latency_us << "us/collective";
  std::cout << "\n";

  // Single-domain serial references: spcg_solve is the yardstick and the
  // classic bitwise gate; pipelined_pcg is the comm-reduced bitwise gate
  // (the comm-reduced body is the pipelined recurrence with its reductions
  // fused into one).
  WallTimer timer;
  const SpcgResult<double> serial = spcg_solve(a, b, opt);
  const double serial_seconds = timer.seconds();
  SpcgSetup<double> serial_setup = spcg_setup(a, opt);
  const IluPreconditioner<double> serial_m(serial_setup.factors,
                                           serial_setup.l_schedule,
                                           serial_setup.u_schedule,
                                           opt.executor);
  const SolveResult<double> pipelined = pipelined_pcg(a, b, serial_m, opt.pcg);
  std::cout << "serial spcg_solve: " << serial.solve.iterations
            << " iterations, " << fmt(serial_seconds) << " s\n\n";

  constexpr DistBody kBodies[] = {DistBody::kClassic, DistBody::kOverlapped,
                                  DistBody::kCommReduced};

  TextTable table;
  table.set_header({"P", "body", "iters", "vs-serial", "solve s", "speedup",
                    "halo MB", "allreduces", "ar/iter", "overlap",
                    "edge-cut"});

  struct Row {
    index_t parts;
    DistBody body;
    std::int32_t iterations;
    std::uint64_t allreduces;
    std::uint64_t halo_bytes;
    double seconds;
  };
  std::vector<Row> rows;

  bool gates_ok = true;
  auto fail = [&](const std::string& what) {
    std::cerr << "FAIL: " << what << "\n";
    gates_ok = false;
  };

  double p1_seconds[3] = {0.0, 0.0, 0.0};
  for (const index_t parts : parts_list) {
    if (parts > a.rows) continue;
    DistOptions dopt;
    dopt.parts = parts;
    dopt.options = opt;
    dopt.transport = topt;
    const DistSetup<double> setup = dist_setup(a, dopt);

    for (const DistBody body : kBodies) {
      dopt.body = body;
      const DistSolveResult<double> run = dist_pcg_solve(b, setup, dopt);
      const int bi = static_cast<int>(body);
      if (parts == 1) p1_seconds[bi] = run.solve_seconds;
      rows.push_back({parts, body, run.solve.iterations, run.stats.allreduces,
                      run.stats.halo_bytes, run.solve_seconds});

      if (parts == 1 && body == DistBody::kClassic &&
          (run.solve.iterations != serial.solve.iterations ||
           run.solve.x != serial.solve.x)) {
        fail("P=1 classic is not bitwise equal to spcg_solve");
      }
      if (parts == 1 && body == DistBody::kCommReduced &&
          (run.solve.iterations != pipelined.iterations ||
           run.solve.x != pipelined.x)) {
        fail("P=1 comm-reduced is not bitwise equal to pipelined_pcg");
      }
      if (body == DistBody::kCommReduced &&
          run.stats.allreduces >
              static_cast<std::uint64_t>(run.solve.iterations) + 2) {
        fail("comm-reduced issued more than one all-reduce per iteration");
      }

      table.add_row(
          {std::to_string(parts), to_string(body),
           std::to_string(run.solve.iterations),
           fmt_speedup(static_cast<double>(run.solve.iterations) /
                       static_cast<double>(serial.solve.iterations)),
           fmt(run.solve_seconds),
           fmt_speedup(p1_seconds[bi] / run.solve_seconds),
           fmt(static_cast<double>(run.stats.halo_bytes) / 1e6),
           std::to_string(run.stats.allreduces),
           fmt(static_cast<double>(run.stats.allreduces) /
               static_cast<double>(run.solve.iterations)),
           fmt_percent(run.stats.overlap_efficiency),
           std::to_string(setup.edge_cut)});
    }
  }

  // Latency-panel gate: once every collective pays real wire latency, the
  // comm-reduced body's single fused all-reduce per iteration must win
  // wall-clock against classic's two, at the largest multi-rank P.
  if (topt.inject_latency_us >= 100) {
    index_t p_max = 0;
    for (const Row& r : rows) p_max = std::max(p_max, r.parts);
    if (p_max >= 4) {
      double classic_s = 0.0, reduced_s = 0.0;
      for (const Row& r : rows) {
        if (r.parts != p_max) continue;
        if (r.body == DistBody::kClassic) classic_s = r.seconds;
        if (r.body == DistBody::kCommReduced) reduced_s = r.seconds;
      }
      if (reduced_s >= classic_s) {
        fail("comm-reduced did not beat classic wall-clock at P=" +
             std::to_string(p_max) + " under " +
             std::to_string(topt.inject_latency_us) + "us latency (" +
             fmt(reduced_s) + " s vs " + fmt(classic_s) + " s)");
      } else {
        std::cout << "latency gate: comm-reduced " << fmt(reduced_s)
                  << " s vs classic " << fmt(classic_s) << " s at P=" << p_max
                  << " -> ok\n";
      }
    }
  }

  std::cout << table.render() << "\n" << table.render_tsv();
  std::cout << "\ngates: " << (gates_ok ? "ok" : "FAILED") << "\n";

  if (out_file.is_open()) {
    out_file << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out_file << "  {\"parts\": " << r.parts << ", \"body\": \""
               << to_string(r.body) << "\", \"iterations\": " << r.iterations
               << ", \"allreduces\": " << r.allreduces
               << ", \"halo_bytes\": " << r.halo_bytes
               << ", \"seconds\": " << r.seconds << "}"
               << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out_file << "]\n";
    out_file.close();
    std::cout << rows.size() << " rows -> " << out_path << "\n";
  }
  return gates_ok ? 0 : 1;
}
