// Strong-scaling bench for the distributed SPCG layer: one >= 100k-row 2D
// Poisson system solved at P in {1, 2, 4, 8} thread-ranks, classic and
// communication-overlapped bodies, reporting iterations (vs the single-domain
// serial SPCG reference), communication volume (halo bytes, all-reduce
// count), overlap efficiency, and wall-clock speedup over P = 1.
//
// Also a correctness gate: the P = 1 distributed solve must be bitwise
// identical to spcg_solve (same x, same iteration count) — the deterministic
// rank-order reduction makes that an exact equality, and this binary exits
// nonzero if it ever breaks.
//
// Speedups are host-measured: ranks are std::threads, so on a machine with
// fewer hardware threads than P the ranks time-slice and speedup saturates
// at (or below) the core count. The iteration counts, communication volumes
// and the bitwise gate are machine-independent.
//
// Usage: dist_scaling [--nx N] [--smoke]
//   --nx N    grid edge; the system has N*N rows (default 330 -> 108,900)
//   --smoke   CI-sized run: nx = 120, P in {1, 2}
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "dist/dist.h"
#include "gen/generators.h"
#include "support/table.h"
#include "support/timer.h"

using namespace spcg;

int main(int argc, char** argv) {
  index_t nx = 330;
  std::vector<index_t> parts_list = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nx" && i + 1 < argc) {
      nx = static_cast<index_t>(std::atoi(argv[++i]));
      if (nx < 4) {
        std::cerr << "error: --nx must be >= 4\n";
        return 2;
      }
    } else if (arg == "--smoke") {
      nx = 120;
      parts_list = {1, 2};
    } else {
      std::cerr << "usage: " << argv[0] << " [--nx N] [--smoke]\n";
      return 2;
    }
  }

  const Csr<double> a = gen_poisson2d(nx, nx);
  const std::vector<double> b = make_rhs(a, 1);
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-8;

  std::cout << "dist_scaling: poisson2d " << nx << "x" << nx << " ("
            << a.rows << " rows, " << a.nnz() << " nnz), "
            << std::thread::hardware_concurrency() << " hardware thread(s)\n";

  // Single-domain serial SPCG reference (iteration yardstick + bitwise gate).
  WallTimer timer;
  const SpcgResult<double> serial = spcg_solve(a, b, opt);
  const double serial_seconds = timer.seconds();
  std::cout << "serial spcg_solve: " << serial.solve.iterations
            << " iterations, " << fmt(serial_seconds) << " s\n\n";

  TextTable table;
  table.set_header({"P", "body", "iters", "vs-serial", "solve s", "speedup",
                    "halo MB", "allreduces", "overlap", "edge-cut"});

  bool bitwise_ok = true;
  double p1_seconds[2] = {0.0, 0.0};  // classic, overlapped baselines
  for (const index_t parts : parts_list) {
    if (parts > a.rows) continue;
    DistOptions dopt;
    dopt.parts = parts;
    dopt.options = opt;
    const DistSetup<double> setup = dist_setup(a, dopt);

    for (const bool overlap : {false, true}) {
      dopt.overlap = overlap;
      const DistSolveResult<double> run = dist_pcg_solve(b, setup, dopt);
      const int body = overlap ? 1 : 0;
      if (parts == 1) p1_seconds[body] = run.solve_seconds;

      if (parts == 1 && !overlap) {
        // The exactness gate: P = 1 classic must reproduce spcg_solve.
        bitwise_ok = run.solve.iterations == serial.solve.iterations &&
                     run.solve.x == serial.solve.x;
        if (!bitwise_ok)
          std::cerr << "FAIL: P=1 distributed solve is not bitwise equal to "
                       "spcg_solve\n";
      }

      table.add_row(
          {std::to_string(parts), overlap ? "overlapped" : "classic",
           std::to_string(run.solve.iterations),
           fmt_speedup(static_cast<double>(run.solve.iterations) /
                       static_cast<double>(serial.solve.iterations)),
           fmt(run.solve_seconds),
           fmt_speedup(p1_seconds[body] / run.solve_seconds),
           fmt(static_cast<double>(run.stats.halo_bytes) / 1e6),
           std::to_string(run.stats.allreduces),
           fmt_percent(run.stats.overlap_efficiency),
           std::to_string(setup.edge_cut)});
    }
  }

  std::cout << table.render() << "\n" << table.render_tsv();
  std::cout << "\nbitwise gate (P=1 == spcg_solve): "
            << (bitwise_ok ? "ok" : "FAILED") << "\n";
  return bitwise_ok ? 0 : 1;
}
