// Shared experiment engine for the benchmark harness.
//
// For every matrix in the 107-matrix suite it computes, once:
//   * the non-sparsified PCG baseline (for ILU(K): after the paper's
//     best-converging-K selection over {10, 20, 30, 40}),
//   * one variant per fixed sparsification ratio (default 1/5/10%),
//   * the wavefront-aware (Algorithm 2) choice among those ratios,
//   * modeled device times (A100 / V100 / EPYC CPU) for every variant:
//     per-iteration, factorization, sparsification overhead, and the
//     §5.3-style DRAM/compute utilization counters.
//
// Iteration counts and convergence come from real double-precision PCG runs
// on the ORIGINAL system with the (sparsified) preconditioner; device times
// come from the calibrated analytical model (DESIGN.md §3). Results are
// cached on disk keyed by a config fingerprint so the dozen bench binaries
// do not redo the suite-wide computation.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/spcg.h"
#include "gen/suite.h"
#include "gpumodel/cost_model.h"
#include "gpumodel/device.h"

namespace spcg::bench {

/// Modeled times for one variant on one device.
struct DeviceTimes {
  double per_iteration_s = 0.0;
  double factorization_s = 0.0;  // device-modeled ILU(0) / host ILU(K)
  double sparsify_s = 0.0;       // host-modeled Algorithm 2 / split pass
  double dram_utilization = 0.0;     // iteration bytes/s over peak bandwidth
  double compute_utilization = 0.0;  // iteration flops/s over peak compute

  [[nodiscard]] double end_to_end_s(std::int32_t iterations) const {
    return sparsify_s + factorization_s +
           static_cast<double>(iterations) * per_iteration_s;
  }
};

/// One solver configuration (baseline or a fixed sparsification ratio).
struct VariantRecord {
  std::string label;           // "baseline", "1%", "5%", "10%", ...
  double ratio_percent = 0.0;  // 0 for the baseline
  bool converged = false;
  std::int32_t iterations = 0;
  double final_residual = 0.0;
  index_t matrix_wavefronts = 0;  // wavefronts of the preconditioner input
  index_t factor_nnz = 0;
  index_t factor_wavefronts = 0;
  std::uint64_t elimination_ops = 0;
  std::map<std::string, DeviceTimes> device;  // keyed by DeviceSpec::name
};

/// Everything measured for one suite matrix.
struct MatrixRecord {
  MatrixSpec spec;
  index_t n = 0;
  index_t nnz = 0;
  index_t wavefronts = 0;  // of A
  index_t chosen_k = 0;    // selected fill level (ILU(K) runs only)
  VariantRecord baseline;
  std::vector<VariantRecord> ratios;  // config order (ascending ratio)
  int spcg_choice = -1;               // index into `ratios`
  std::string spcg_outcome;           // Algorithm 2 outcome label
  double spcg_reduction_percent = 0.0;
  double spcg_sparsify_model_s = 0.0;  // Algorithm 2 host-model overhead

  [[nodiscard]] const VariantRecord& spcg() const { return ratios.at(static_cast<std::size_t>(spcg_choice)); }

  /// End-to-end speedup of the Algorithm 2 choice, charging its full
  /// sparsification overhead (all candidate passes) instead of the chosen
  /// ratio's single-pass cost.
  [[nodiscard]] std::optional<double> spcg_end_to_end_speedup(
      const std::string& device_name) const {
    const VariantRecord& v = spcg();
    if (!v.converged || !baseline.converged) return std::nullopt;
    const double base =
        baseline.device.at(device_name).end_to_end_s(baseline.iterations);
    DeviceTimes t = v.device.at(device_name);
    t.sparsify_s = spcg_sparsify_model_s;
    const double mine = t.end_to_end_s(v.iterations);
    return mine > 0.0 ? std::optional<double>(base / mine) : std::nullopt;
  }

  /// Per-iteration speedup of `v` over the baseline on `device_name`.
  [[nodiscard]] double per_iteration_speedup(const VariantRecord& v,
                                             const std::string& device_name) const;

  /// End-to-end speedup (setup + iterations * per-iteration); returns
  /// nullopt unless both this variant and the baseline converged.
  [[nodiscard]] std::optional<double> end_to_end_speedup(
      const VariantRecord& v, const std::string& device_name) const;
};

/// Experiment configuration (paper defaults).
struct RunConfig {
  PrecondKind kind = PrecondKind::kIlu0;
  std::vector<double> ratios{1.0, 5.0, 10.0};  // ascending
  double tau = 1.0;
  double omega_percent = 10.0;
  ConditionEstimator estimator = ConditionEstimator::kDiagonalProxy;
  double tolerance = 1e-12;   // paper §4.3
  std::int32_t max_iterations = 1000;
  // The paper selects K from {10,20,30,40} on matrices with up to tens of
  // millions of nonzeros. At this suite's scale (n ~ 10^3..10^4) those fill
  // levels are effectively COMPLETE factorizations (baselines converge in
  // 1-4 iterations), a regime the paper's dataset never enters. The scale-
  // equivalent candidate set below lands ILU(K) in the same relative-
  // accuracy regime as the paper's (inexact, fill-heavy, more wavefronts
  // than ILU(0)). See DESIGN.md §3.
  std::vector<index_t> k_candidates{1, 2, 3};
  index_t max_row_fill = 256;  // ILU(K) safety cap (keeps scattered patterns tractable)
  int value_bytes = 4;         // paper runs single precision on the device
  bool use_cache = true;
  int max_matrices = -1;       // <0: whole suite

  [[nodiscard]] std::string fingerprint() const;
};

/// Devices every run is modeled on.
const std::vector<DeviceSpec>& model_devices();

/// Run (or load from cache) the suite-wide experiment.
std::vector<MatrixRecord> run_suite(const RunConfig& config,
                                    std::ostream* progress = nullptr);

/// Compute the record for a single generated matrix (no cache) — used by
/// focused benches and tests.
MatrixRecord run_matrix(const GeneratedMatrix& g, const RunConfig& config);

// --- aggregation helpers shared by the bench binaries ----------------------

/// Geometric-mean + %accelerated over a set of speedups.
struct SpeedupSummary {
  double gmean = 0.0;
  double pct_accelerated = 0.0;  // speedup > 1
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};
SpeedupSummary summarize_speedups(const std::vector<double>& speedups);

/// Honor SPCG_FAST=1 (smoke mode: ~20 matrices) when building a config.
RunConfig apply_env_overrides(RunConfig config);

/// Per-variant oracle: index of the ratio with the best per-iteration (or
/// end-to-end) time on `device_name`; -1 when undefined.
int oracle_per_iteration_choice(const MatrixRecord& r,
                                const std::string& device_name);
int oracle_end_to_end_choice(const MatrixRecord& r,
                             const std::string& device_name);

}  // namespace spcg::bench
