#include "common/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/lint.h"
#include "core/sparsify.h"
#include "precond/preconditioner.h"
#include "solver/pcg.h"
#include "support/error.h"
#include "support/stats.h"

namespace spcg::bench {
namespace {

constexpr const char* kCacheMagic = "SPCGCACHE v3";

// Every benchmark validates its inputs through the structural linter in
// debug builds; release builds opt in with SPCG_VALIDATE=1.
bool validate_enabled() {
#ifndef NDEBUG
  return true;
#else
  const char* v = std::getenv("SPCG_VALIDATE");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
#endif
}

void lint_or_throw(const analysis::Diagnostics& d, const std::string& what) {
  if (!d.ok())
    throw Error("bench input failed lint (" + what + "):\n" + d.to_string(8));
}

std::string cache_dir() {
  if (const char* dir = std::getenv("SPCG_CACHE_DIR")) return dir;
  return ".spcg_cache";
}

PcgOptions pcg_options(const RunConfig& c) {
  PcgOptions o;
  o.tolerance = c.tolerance;
  o.max_iterations = c.max_iterations;
  return o;
}

}  // namespace

std::string RunConfig::fingerprint() const {
  std::ostringstream os;
  os << (kind == PrecondKind::kIlu0 ? "ilu0" : "iluk");
  for (const double r : ratios) os << "_r" << r;
  os << "_tau" << tau << "_om" << omega_percent << "_est"
     << (estimator == ConditionEstimator::kDiagonalProxy ? "proxy" : "lanczos")
     << "_tol" << tolerance << "_it" << max_iterations;
  for (const index_t k : k_candidates) os << "_k" << k;
  os << "_cap" << max_row_fill << "_vb" << value_bytes << "_n"
     << (max_matrices < 0 ? suite_size() : max_matrices) << "_ds" << std::hex
     << suite_checksum() << std::dec;
  for (const DeviceSpec& d : model_devices()) os << "_" << d.name;
  return os.str();
}

const std::vector<DeviceSpec>& model_devices() {
  static const std::vector<DeviceSpec> devices{device_a100(), device_v100(),
                                               device_epyc7413()};
  return devices;
}

double MatrixRecord::per_iteration_speedup(
    const VariantRecord& v, const std::string& device_name) const {
  const double base = baseline.device.at(device_name).per_iteration_s;
  const double mine = v.device.at(device_name).per_iteration_s;
  return mine > 0.0 ? base / mine : 0.0;
}

std::optional<double> MatrixRecord::end_to_end_speedup(
    const VariantRecord& v, const std::string& device_name) const {
  if (!v.converged || !baseline.converged) return std::nullopt;
  const double base =
      baseline.device.at(device_name).end_to_end_s(baseline.iterations);
  const double mine = v.device.at(device_name).end_to_end_s(v.iterations);
  return mine > 0.0 ? std::optional<double>(base / mine) : std::nullopt;
}

MatrixRecord run_matrix(const GeneratedMatrix& g, const RunConfig& config) {
  const Csr<double>& a = g.a;
  const bool validate = validate_enabled();
  if (validate) {
    analysis::LintOptions lint_opt;
    lint_opt.check_symmetry = true;
    lint_opt.check_spd = true;
    lint_opt.symmetry_tol = 0.0;
    lint_or_throw(analysis::analyze(a, lint_opt, g.spec.name),
                  g.spec.name + ": A");
  }
  MatrixRecord rec;
  rec.spec = g.spec;
  rec.n = a.rows;
  rec.nnz = a.nnz();
  rec.wavefronts = count_wavefronts(a);

  const PcgOptions pcg_opt = pcg_options(config);
  const CostModel host(device_host_cpu(), config.value_bytes);

  // Evaluate one preconditioner input (A itself or a sparsified Â).
  auto evaluate = [&](const Csr<double>& input, const std::string& label,
                      double ratio, int sparsify_steps,
                      index_t fill_level) -> VariantRecord {
    VariantRecord v;
    v.label = label;
    v.ratio_percent = ratio;
    IluResult<double> fact =
        config.kind == PrecondKind::kIlu0
            ? ilu0(input)
            : iluk(input, fill_level, IluOptions{}, config.max_row_fill);
    if (validate)
      lint_or_throw(analysis::analyze_ilu(fact, {}, label),
                    g.spec.name + ": factor " + label);
    v.matrix_wavefronts = (&input == &a) ? rec.wavefronts
                                         : count_wavefronts(input);
    v.factor_nnz = fact.lu.nnz();
    v.elimination_ops = fact.elimination_ops;

    const TriSolveStructure lower_struct =
        trisolve_structure(fact.lu, Triangle::kLower);
    v.factor_wavefronts = lower_struct.levels();
    const PcgIterationShape shape = pcg_iteration_shape(a, fact.lu);

    {
      IluPreconditioner<double> m(std::move(fact), TrsvExec::kSerial);
      const SolveResult<double> solve =
          pcg(a, std::span<const double>(g.b), m, pcg_opt);
      v.converged = solve.converged();
      v.iterations = solve.iterations;
      v.final_residual = solve.final_residual_norm;
    }

    const OpCost sparsify_cost =
        sparsify_steps > 0 ? host.sparsify_host(rec.nnz, sparsify_steps)
                           : OpCost{};
    const OpCost host_factor =
        host.iluk_factorization_host(v.elimination_ops, v.factor_nnz);

    for (const DeviceSpec& d : model_devices()) {
      const CostModel cm(d, config.value_bytes);
      DeviceTimes t;
      const OpCost iter = cm.pcg_iteration(shape);
      t.per_iteration_s = iter.seconds;
      t.dram_utilization =
          (iter.bytes / iter.seconds) / (d.dram_gbps * 1e9);
      t.compute_utilization =
          (iter.flops / iter.seconds) / (d.peak_gflops * 1e9);
      // ILU(0) factorizes on the device (cuSPARSE csrilu02); ILU(K)
      // factorizes on the host CPU (the paper uses SuperLU there).
      t.factorization_s = config.kind == PrecondKind::kIlu0
                              ? cm.ilu0_factorization(lower_struct,
                                                      v.elimination_ops)
                                    .seconds
                              : host_factor.seconds;
      t.sparsify_s = sparsify_cost.seconds;
      v.device[d.name] = t;
    }
    return v;
  };

  // Baseline. For ILU(K), the paper selects the best-converging K for the
  // non-sparsified solver and reuses it for SPCG (§3.3).
  index_t fill_level = 0;
  if (config.kind == PrecondKind::kIluK) {
    std::optional<VariantRecord> best;
    for (const index_t k : config.k_candidates) {
      VariantRecord run = evaluate(a, "baseline", 0.0, 0, k);
      const bool better = [&] {
        if (!best) return true;
        if (run.converged != best->converged) return run.converged;
        if (run.converged) return run.iterations < best->iterations;
        return run.final_residual < best->final_residual;
      }();
      if (better) {
        best = std::move(run);
        fill_level = k;
      }
    }
    rec.baseline = std::move(*best);
    rec.chosen_k = fill_level;
  } else {
    rec.baseline = evaluate(a, "baseline", 0.0, 0, 0);
  }

  // Fixed-ratio variants (a single split pass each).
  for (const double t : config.ratios) {
    const SparsifySplit<double> split = sparsify_by_ratio(a, t);
    std::ostringstream label;
    label << t << "%";
    if (validate)
      lint_or_throw(analysis::analyze_sparsify(a, split),
                    g.spec.name + ": split " + label.str());
    rec.ratios.push_back(
        evaluate(split.a_hat, label.str(), t, 1, fill_level));
  }

  // Algorithm 2: candidates in decreasing aggressiveness (paper order).
  SparsifyOptions sopt;
  sopt.ratios.assign(config.ratios.rbegin(), config.ratios.rend());
  sopt.tau = config.tau;
  sopt.omega_percent = config.omega_percent;
  sopt.estimator = config.estimator;
  const SparsifyDecision<double> decision = wavefront_aware_sparsify(a, sopt);
  rec.spcg_outcome = to_string(decision.outcome);
  rec.spcg_reduction_percent = decision.reduction_percent;
  const auto it = std::find(config.ratios.begin(), config.ratios.end(),
                            decision.chosen.ratio_percent);
  SPCG_CHECK_MSG(it != config.ratios.end(),
                 "Algorithm 2 chose ratio " << decision.chosen.ratio_percent
                                            << " outside the config list");
  rec.spcg_choice = static_cast<int>(it - config.ratios.begin());
  rec.spcg_sparsify_model_s =
      host.sparsify_host(rec.nnz, static_cast<int>(decision.steps.size()))
          .seconds;
  return rec;
}

// --- cache serialization ----------------------------------------------------

namespace {

void save_cache(const std::string& path, const RunConfig& config,
                const std::vector<MatrixRecord>& records) {
  std::filesystem::create_directories(cache_dir());
  std::ofstream out(path);
  if (!out.good()) return;  // cache is best-effort
  out.precision(17);
  out << kCacheMagic << '\t' << config.fingerprint() << '\n';
  auto put_variant = [&](const VariantRecord& v) {
    out << "V\t" << v.label << '\t' << v.ratio_percent << '\t' << v.converged
        << '\t' << v.iterations << '\t' << v.final_residual << '\t'
        << v.matrix_wavefronts << '\t' << v.factor_nnz << '\t'
        << v.factor_wavefronts << '\t' << v.elimination_ops;
    for (const DeviceSpec& d : model_devices()) {
      const DeviceTimes& t = v.device.at(d.name);
      out << '\t' << t.per_iteration_s << '\t' << t.factorization_s << '\t'
          << t.sparsify_s << '\t' << t.dram_utilization << '\t'
          << t.compute_utilization;
    }
    out << '\n';
  };
  for (const MatrixRecord& r : records) {
    out << "M\t" << r.spec.id << '\t' << r.spec.name << '\t' << r.spec.category
        << '\t' << r.n << '\t' << r.nnz << '\t' << r.wavefronts << '\t'
        << r.chosen_k << '\t' << r.spcg_choice << '\t' << r.spcg_outcome
        << '\t' << r.spcg_reduction_percent << '\t'
        << r.spcg_sparsify_model_s << '\n';
    put_variant(r.baseline);
    for (const VariantRecord& v : r.ratios) put_variant(v);
  }
}

std::optional<std::vector<MatrixRecord>> load_cache(const std::string& path,
                                                    const RunConfig& config) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  {
    std::istringstream header(line);
    std::string magic_a, magic_b, fp;
    header >> magic_a >> magic_b >> fp;
    if (magic_a + " " + magic_b != kCacheMagic ||
        fp != config.fingerprint())
      return std::nullopt;
  }
  std::vector<MatrixRecord> records;
  auto parse_variant = [&](const std::string& l,
                           VariantRecord& v) -> bool {
    std::istringstream is(l);
    std::string tag;
    std::getline(is, tag, '\t');
    if (tag != "V") return false;
    std::getline(is, v.label, '\t');
    std::string field;
    auto next_double = [&](double& d) {
      std::getline(is, field, '\t');
      d = std::stod(field);
    };
    auto next_ll = [&](auto& x) {
      std::getline(is, field, '\t');
      x = static_cast<std::decay_t<decltype(x)>>(std::stoll(field));
    };
    next_double(v.ratio_percent);
    int conv = 0;
    next_ll(conv);
    v.converged = conv != 0;
    next_ll(v.iterations);
    next_double(v.final_residual);
    next_ll(v.matrix_wavefronts);
    next_ll(v.factor_nnz);
    next_ll(v.factor_wavefronts);
    std::getline(is, field, '\t');
    v.elimination_ops = std::stoull(field);
    for (const DeviceSpec& d : model_devices()) {
      DeviceTimes t;
      next_double(t.per_iteration_s);
      next_double(t.factorization_s);
      next_double(t.sparsify_s);
      next_double(t.dram_utilization);
      next_double(t.compute_utilization);
      v.device[d.name] = t;
    }
    return true;
  };

  const std::size_t variants_per_matrix = 1 + config.ratios.size();
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string tag, field;
    std::getline(is, tag, '\t');
    if (tag != "M") return std::nullopt;
    MatrixRecord r;
    std::getline(is, field, '\t');
    r.spec.id = static_cast<index_t>(std::stol(field));
    std::getline(is, r.spec.name, '\t');
    std::getline(is, r.spec.category, '\t');
    auto next_long = [&](auto& x) {
      std::getline(is, field, '\t');
      x = static_cast<std::decay_t<decltype(x)>>(std::stol(field));
    };
    next_long(r.n);
    next_long(r.nnz);
    next_long(r.wavefronts);
    next_long(r.chosen_k);
    next_long(r.spcg_choice);
    std::getline(is, r.spcg_outcome, '\t');
    std::getline(is, field, '\t');
    r.spcg_reduction_percent = std::stod(field);
    std::getline(is, field, '\t');
    r.spcg_sparsify_model_s = std::stod(field);
    for (std::size_t v = 0; v < variants_per_matrix; ++v) {
      if (!std::getline(in, line)) return std::nullopt;
      VariantRecord var;
      if (!parse_variant(line, var)) return std::nullopt;
      if (v == 0)
        r.baseline = std::move(var);
      else
        r.ratios.push_back(std::move(var));
    }
    records.push_back(std::move(r));
  }
  if (records.empty()) return std::nullopt;
  return records;
}

}  // namespace

std::vector<MatrixRecord> run_suite(const RunConfig& config,
                                    std::ostream* progress) {
  const std::string path =
      cache_dir() + "/" + config.fingerprint() + ".tsv";
  if (config.use_cache) {
    if (auto cached = load_cache(path, config)) {
      if (progress)
        *progress << "[runner] loaded " << cached->size()
                  << " records from cache " << path << "\n";
      return *cached;
    }
  }
  const index_t count = config.max_matrices < 0
                            ? suite_size()
                            : std::min<index_t>(config.max_matrices,
                                                suite_size());
  std::vector<MatrixRecord> records;
  records.reserve(static_cast<std::size_t>(count));
  for (index_t id = 0; id < count; ++id) {
    const GeneratedMatrix g = generate_suite_matrix(id);
    if (progress)
      *progress << "[runner] (" << (id + 1) << "/" << count << ") "
                << g.spec.name << " n=" << g.a.rows << " nnz=" << g.a.nnz()
                << std::endl;
    records.push_back(run_matrix(g, config));
  }
  if (config.use_cache) save_cache(path, config, records);
  return records;
}

SpeedupSummary summarize_speedups(const std::vector<double>& speedups) {
  SpeedupSummary s;
  s.count = speedups.size();
  if (speedups.empty()) return s;
  s.gmean = geometric_mean(speedups);
  s.pct_accelerated = fraction_above(speedups, 1.0);
  s.min = *std::min_element(speedups.begin(), speedups.end());
  s.max = *std::max_element(speedups.begin(), speedups.end());
  return s;
}

RunConfig apply_env_overrides(RunConfig config) {
  if (const char* fast = std::getenv("SPCG_FAST");
      fast && std::string(fast) != "0") {
    config.max_matrices = 24;
  }
  if (const char* nc = std::getenv("SPCG_NO_CACHE");
      nc && std::string(nc) != "0") {
    config.use_cache = false;
  }
  return config;
}

int oracle_per_iteration_choice(const MatrixRecord& r,
                                const std::string& device_name) {
  int best = -1;
  double best_time = 0.0;
  for (std::size_t i = 0; i < r.ratios.size(); ++i) {
    const double t = r.ratios[i].device.at(device_name).per_iteration_s;
    if (best < 0 || t < best_time) {
      best = static_cast<int>(i);
      best_time = t;
    }
  }
  return best;
}

int oracle_end_to_end_choice(const MatrixRecord& r,
                             const std::string& device_name) {
  int best = -1;
  double best_time = 0.0;
  for (std::size_t i = 0; i < r.ratios.size(); ++i) {
    if (!r.ratios[i].converged) continue;
    const double t = r.ratios[i].device.at(device_name).end_to_end_s(
        r.ratios[i].iterations);
    if (best < 0 || t < best_time) {
      best = static_cast<int>(i);
      best_time = t;
    }
  }
  return best;
}

}  // namespace spcg::bench
