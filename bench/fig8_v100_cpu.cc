// Reproduces Figure 8: per-iteration speedup distributions of SPCG on
//   (a) V100, ILU(0)   (b) V100, ILU(K)   (c) AMD EPYC 7413 CPU, ILU(0).
// Paper: CPU gmean 1.24x with 91.59% of matrices benefiting; on V100 most
// values exceed 1 and degradations are negligible.
#include <iostream>

#include "common/runner.h"
#include "support/stats.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

namespace {

void histogram_for(PrecondKind kind, const std::string& dev,
                   const char* title, const char* paper_note) {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = kind;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  std::vector<double> sp;
  for (const MatrixRecord& r : records)
    sp.push_back(r.per_iteration_speedup(r.spcg(), dev));
  std::cout << "=== " << title << " ===\n\n";
  std::cout << render_histogram(histogram(sp, 0.0, 5.0, 20, true), "%")
            << "\n";
  const SpeedupSummary s = summarize_speedups(sp);
  std::cout << "gmean: " << fmt_speedup(s.gmean)
            << ", % accelerated: " << fmt_percent(s.pct_accelerated) << "  ("
            << paper_note << ")\n\n";
}

}  // namespace

int main() {
  histogram_for(PrecondKind::kIlu0, "V100",
                "Figure 8a: SPCG-ILU(0) per-iteration speedup on V100",
                "paper: gmean 1.22x, 83.18% accelerated");
  histogram_for(PrecondKind::kIluK, "V100",
                "Figure 8b: SPCG-ILU(K) per-iteration speedup on V100",
                "paper: gmean 1.71x, 82.25% accelerated");
  histogram_for(PrecondKind::kIlu0, "EPYC-7413",
                "Figure 8c: SPCG-ILU(0) per-iteration speedup on EPYC CPU",
                "paper: gmean 1.24x, 91.59% accelerated");
  std::cout << "paper shape: most speedups exceed 1 on every architecture; "
               "wavefront-parallelism\nimprovements help CPUs as well as "
               "GPUs.\n";
  return 0;
}
