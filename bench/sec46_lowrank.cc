// Reproduces §4.6: how often HSS-style low-rank compression would trigger on
// incomplete factors. Paper (STRUMPACK): HSS effectively applied for only
// 5.61% of matrices at default settings; shrinking the minimum separator
// size raises coverage to 28.04% but hurts performance and memory.
#include <iostream>

#include "common/runner.h"
#include "gen/suite.h"
#include "lowrank/lowrank.h"
#include "precond/ilu.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

namespace {

struct Coverage {
  int matrices = 0;
  int triggered = 0;        // at least one block compresses
  double storage_ratio = 0; // sum compressed / sum dense over eligible tiles
};

Coverage study(const std::vector<index_t>& ids, PrecondKind kind,
               const LowRankOptions& opt) {
  Coverage c;
  double dense = 0.0, compressed = 0.0;
  for (const index_t id : ids) {
    const GeneratedMatrix g = generate_suite_matrix(id);
    const IluResult<double> f = kind == PrecondKind::kIlu0
                                    ? ilu0(g.a)
                                    : iluk(g.a, 10, IluOptions{}, 512);
    const LowRankStudy s = analyze_factor_blocks(f.lu, opt);
    ++c.matrices;
    if (s.blocks_compressed > 0) ++c.triggered;
    dense += s.stored_entries_dense;
    compressed += s.stored_entries_compressed;
  }
  c.storage_ratio = dense > 0 ? compressed / dense : 0.0;
  return c;
}

}  // namespace

int main() {
  // Every third suite matrix keeps the SVD workload modest while covering
  // all 17 categories.
  std::vector<index_t> ids;
  for (index_t id = 0; id < suite_size(); id += 3) ids.push_back(id);
  if (const char* fast = std::getenv("SPCG_FAST"); fast && std::string(fast) != "0")
    ids.resize(std::min<std::size_t>(ids.size(), 8));

  LowRankOptions defaults;  // leaf 32, min separator 32, rel tol 1e-2
  LowRankOptions small_sep = defaults;
  small_sep.min_separator = 4;

  std::cout << "=== Section 4.6: low-rank (HSS-style) compression on "
               "incomplete factors ===\n\n";
  TextTable t;
  t.set_header({"factor", "min-separator", "matrices", "%matrices triggered",
                "rank-storage/dense"});
  for (const auto& [label, kind] :
       {std::pair<const char*, PrecondKind>{"ILU(0)", PrecondKind::kIlu0},
        {"ILU(10)", PrecondKind::kIluK}}) {
    for (const auto& [sep_label, opt] :
         {std::pair<const char*, const LowRankOptions&>{"default (32)",
                                                        defaults},
          {"small (4)", small_sep}}) {
      const Coverage c = study(ids, kind, opt);
      t.add_row({label, sep_label, std::to_string(c.matrices),
                 fmt_percent(static_cast<double>(c.triggered) /
                             std::max(1, c.matrices)),
                 fmt(c.storage_ratio, 3)});
    }
  }
  std::cout << t.render() << "\n";
  std::cout
      << "paper: HSS compression effectively applied on 5.61% of matrices at "
         "default\nsettings, 28.04% with a reduced minimum separator size — "
         "and the latter hurt\nperformance and memory. Expected shape here: "
         "low trigger rates at the default\nseparator, higher coverage but "
         "storage ratios near or above 1 with small\nseparators (compression "
         "does not pay on sparse incomplete factors).\n";
  return 0;
}
