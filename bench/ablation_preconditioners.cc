// Ablation: SPCG against the wavefront-free preconditioner families the
// paper's related work discusses (§6.2) — sparse approximate inverse (SAI,
// applied as one SpMV) and block-Jacobi (independent dense blocks).
//
// Modeled A100 time-to-solution = setup-free solve comparison:
// iterations (real PCG runs) x modeled per-iteration time. SAI/block-Jacobi
// pay no wavefront synchronization at all but take more iterations; SPCG
// keeps ILU-class convergence while shrinking the wavefront cost.
#include <iostream>

#include "common/runner.h"
#include "core/sparsify.h"
#include "gpumodel/cost_model.h"
#include "precond/block_jacobi.h"
#include "precond/sai.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

namespace {

struct Outcome {
  std::int32_t iterations = 0;
  bool converged = false;
  double per_iter_s = 0.0;
  [[nodiscard]] double solve_s() const {
    return static_cast<double>(iterations) * per_iter_s;
  }
};

}  // namespace

int main() {
  const CostModel model(device_a100(), 4);
  PcgOptions popt;
  popt.tolerance = 1e-10;
  popt.max_iterations = 1000;

  // One representative per major category family.
  const std::vector<index_t> ids = {0, 14, 33, 50, 62, 95, 101};

  std::cout << "=== Ablation: SPCG vs wavefront-free preconditioners "
               "(modeled A100 solve phase) ===\n\n";
  TextTable t;
  t.set_header({"matrix", "method", "iters", "per-iter (us)", "solve (ms)",
                "vs ILU(0)"});
  std::vector<double> sp_spcg, sp_sai, sp_bj;
  for (const index_t id : ids) {
    const GeneratedMatrix g = generate_suite_matrix(id);

    auto eval_ilu = [&](const Csr<double>& precond_input) {
      Outcome o;
      IluResult<double> f = ilu0(precond_input);
      o.per_iter_s =
          model.pcg_iteration(pcg_iteration_shape(g.a, f.lu)).seconds;
      IluPreconditioner<double> m(std::move(f));
      const SolveResult<double> r = pcg(g.a, g.b, m, popt);
      o.iterations = r.iterations;
      o.converged = r.converged();
      return o;
    };
    // Wavefront-free apply = one SpMV with the (possibly denser) M.
    auto eval_spmv_apply = [&](const Preconditioner<double>& m,
                               index_t m_nnz) {
      Outcome o;
      const OpCost apply = model.spmv(g.a.rows, m_nnz);
      OpCost iter = model.spmv(g.a.rows, g.a.nnz());
      iter += apply;
      iter += model.blas1(g.a.rows, 2, 2);
      iter += model.blas1(g.a.rows, 3, 2);
      iter += model.blas1(g.a.rows, 3, 2);
      iter += model.blas1(g.a.rows, 2, 2);
      iter += model.blas1(g.a.rows, 3, 2);
      iter += model.blas1(g.a.rows, 1, 2);
      o.per_iter_s = iter.seconds;
      const SolveResult<double> r = pcg(g.a, g.b, m, popt);
      o.iterations = r.iterations;
      o.converged = r.converged();
      return o;
    };

    const Outcome base = eval_ilu(g.a);
    const SparsifyDecision<double> d = wavefront_aware_sparsify(g.a);
    const Outcome spcg = eval_ilu(d.chosen.a_hat);
    SaiPreconditioner<double> sai(g.a);
    const Outcome sai_o = eval_spmv_apply(sai, sai.matrix().nnz());
    BlockJacobiPreconditioner<double> bj(g.a, 64);
    // Block apply moves bs entries per row of each dense factor: ~64*n.
    const Outcome bj_o = eval_spmv_apply(bj, 64 * g.a.rows);

    auto add = [&](const char* name, const Outcome& o) {
      const double rel = o.converged && base.converged
                             ? base.solve_s() / o.solve_s()
                             : 0.0;
      t.add_row({g.spec.name, name,
                 o.converged ? std::to_string(o.iterations) : "DNF",
                 fmt(o.per_iter_s * 1e6, 1), fmt(o.solve_s() * 1e3, 2),
                 o.converged && base.converged ? fmt_speedup(rel) : "n/a"});
      return rel;
    };
    add("PCG-ILU(0)", base);
    const double s1 = add("SPCG-ILU(0)", spcg);
    const double s2 = add("PCG-SAI", sai_o);
    const double s3 = add("PCG-BlockJacobi(64)", bj_o);
    if (s1 > 0) sp_spcg.push_back(s1);
    if (s2 > 0) sp_sai.push_back(s2);
    if (s3 > 0) sp_bj.push_back(s3);
  }
  std::cout << t.render() << "\n";
  auto gm = [](const std::vector<double>& v) {
    return v.empty() ? 0.0 : summarize_speedups(v).gmean;
  };
  std::cout << "gmean solve-phase speedup vs PCG-ILU(0):  SPCG "
            << fmt_speedup(gm(sp_spcg)) << ",  SAI " << fmt_speedup(gm(sp_sai))
            << ",  BlockJacobi " << fmt_speedup(gm(sp_bj)) << "\n";
  std::cout << "\nShape: wavefront-free methods trade iterations for cheap "
               "applies and win on\ndeep-schedule matrices; SPCG gets much of "
               "that per-iteration relief while\nkeeping ILU-class iteration "
               "counts — and, unlike SAI, it applies to any SPD\nmatrix "
               "regardless of whether a sparse approximate inverse exists "
               "(paper §6.2).\n";
  return 0;
}
