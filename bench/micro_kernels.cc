// google-benchmark microbenchmarks for the real (host CPU) kernels: SpMV,
// triangular solves (serial and level-scheduled), ILU factorizations,
// the wavefront inspector, and Algorithm 2 itself. These measure the actual
// library code on the machine running the build, complementing the modeled
// device numbers used by the figure/table benches.
#include <benchmark/benchmark.h>

#include "core/sparsify.h"
#include "gen/generators.h"
#include "precond/ilu.h"
#include "solver/pcg.h"
#include "sptrsv/sptrsv.h"
#include "wavefront/levels.h"

namespace {

using namespace spcg;

const Csr<double>& grid_matrix() {
  static const Csr<double> a = gen_poisson2d(128, 128);
  return a;
}

const Csr<double>& circuit_matrix() {
  static const Csr<double> a = gen_grid_laplacian(96, 96, 2.0, 0.4, 9);
  return a;
}

void BM_Spmv(benchmark::State& state) {
  const Csr<double>& a = grid_matrix();
  std::vector<double> x(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> y(x.size());
  for (auto _ : state) {
    spmv(a, std::span<const double>(x), std::span<double>(y));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Spmv);

void BM_SptrsvSerial(benchmark::State& state) {
  const TriangularFactors<double> f = split_lu(ilu0(grid_matrix()));
  std::vector<double> b(static_cast<std::size_t>(f.l.rows), 1.0);
  std::vector<double> x(b.size());
  for (auto _ : state) {
    sptrsv_lower_serial(f.l, std::span<const double>(b), std::span<double>(x));
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * f.l.nnz());
}
BENCHMARK(BM_SptrsvSerial);

void BM_SptrsvLevelScheduled(benchmark::State& state) {
  const TriangularFactors<double> f = split_lu(ilu0(grid_matrix()));
  const LevelSchedule sched = level_schedule(f.l, Triangle::kLower);
  std::vector<double> b(static_cast<std::size_t>(f.l.rows), 1.0);
  std::vector<double> x(b.size());
  for (auto _ : state) {
    sptrsv_lower_levels(f.l, sched, std::span<const double>(b),
                        std::span<double>(x));
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * f.l.nnz());
}
BENCHMARK(BM_SptrsvLevelScheduled);

void BM_Ilu0(benchmark::State& state) {
  const Csr<double>& a = circuit_matrix();
  for (auto _ : state) {
    IluResult<double> r = ilu0(a);
    benchmark::DoNotOptimize(r.lu.values.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Ilu0);

void BM_IlukSymbolic(benchmark::State& state) {
  const Csr<double>& a = circuit_matrix();
  const auto k = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    IlukSymbolic s = iluk_symbolic(a, k, 512);
    benchmark::DoNotOptimize(s.pattern.colind.data());
  }
}
BENCHMARK(BM_IlukSymbolic)->Arg(2)->Arg(5)->Arg(10);

void BM_LevelSchedule(benchmark::State& state) {
  const Csr<double>& a = grid_matrix();
  for (auto _ : state) {
    LevelSchedule s = level_schedule(a, Triangle::kLower);
    benchmark::DoNotOptimize(s.level_ptr.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_LevelSchedule);

void BM_SparsifyByRatio(benchmark::State& state) {
  const Csr<double>& a = circuit_matrix();
  for (auto _ : state) {
    SparsifySplit<double> s = sparsify_by_ratio(a, 10.0);
    benchmark::DoNotOptimize(s.a_hat.values.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SparsifyByRatio);

void BM_WavefrontAwareSparsify(benchmark::State& state) {
  const Csr<double>& a = circuit_matrix();
  for (auto _ : state) {
    SparsifyDecision<double> d = wavefront_aware_sparsify(a);
    benchmark::DoNotOptimize(d.chosen.a_hat.values.data());
  }
}
BENCHMARK(BM_WavefrontAwareSparsify);

void BM_PcgIteration(benchmark::State& state) {
  // Cost of PCG per iteration on the host: fixed 10 iterations per run.
  const Csr<double>& a = grid_matrix();
  const std::vector<double> b = make_rhs(a, 3);
  IluPreconditioner<double> m(ilu0(a));
  PcgOptions opt;
  opt.tolerance = 0.0;
  opt.max_iterations = 10;
  for (auto _ : state) {
    SolveResult<double> r = pcg(a, b, m, opt);
    benchmark::DoNotOptimize(r.x.data());
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_PcgIteration);

}  // namespace

BENCHMARK_MAIN();
