// Reproduces Figure 10: correlation of wavefront reduction with
// per-iteration speedup on A100.
// Paper: Spearman 0.61 for SPCG-ILU(0) (moderately strong) and 0.22 for
// SPCG-ILU(K) (positive but weaker, because fill-in complicates the link).
#include <iostream>

#include "common/runner.h"
#include "support/stats.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

namespace {

double analyze(PrecondKind kind, const char* title, const char* paper_note) {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = kind;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const std::string dev = "A100";

  std::vector<double> reduction, speedup;
  TextTable t;
  t.set_header({"matrix", "wf-A", "wf-Ahat(factor)", "reduction", "speedup"});
  for (const MatrixRecord& r : records) {
    // Wavefront reduction of the structures the solver actually runs on:
    // the factor's level count (for ILU(K) this includes fill dependences).
    const double wa = static_cast<double>(r.baseline.factor_wavefronts);
    const double ws = static_cast<double>(r.spcg().factor_wavefronts);
    const double red = wa > 0 ? (wa - ws) / wa : 0.0;
    const double sp = r.per_iteration_speedup(r.spcg(), dev);
    reduction.push_back(red);
    speedup.push_back(sp);
    t.add_row({r.spec.name, fmt(wa, 0), fmt(ws, 0), fmt(red, 3),
               fmt_speedup(sp)});
  }
  std::cout << "=== " << title << " ===\n\n" << t.render() << "\n";
  const double rho = spearman(speedup, reduction);
  const LinearFit fit = linear_fit(speedup, reduction);
  std::cout << "Spearman correlation (speedup vs reduction): " << fmt(rho, 3)
            << "  (" << paper_note << ")\n";
  std::cout << "trendline: reduction = " << fmt(fit.slope, 4)
            << " * speedup + " << fmt(fit.intercept, 4)
            << "  (r^2 = " << fmt(fit.r2, 3) << ")\n\n";
  return rho;
}

}  // namespace

int main() {
  const double rho0 = analyze(
      PrecondKind::kIlu0,
      "Figure 10a: wavefront reduction vs per-iteration speedup, SPCG-ILU(0)",
      "paper: 0.61");
  const double rhok = analyze(
      PrecondKind::kIluK,
      "Figure 10b: wavefront reduction vs per-iteration speedup, SPCG-ILU(K)",
      "paper: 0.22");
  std::cout << "paper shape: positive correlation for both preconditioners, "
               "stronger for ILU(0)\nthan ILU(K): measured "
            << fmt(rho0, 2) << " vs " << fmt(rhok, 2) << ".\n";
  return 0;
}
