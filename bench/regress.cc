// Perf-regression harness: runs a small fixed panel of suite matrices
// through the fully traced SPCG pipeline and writes machine-readable
// per-phase timings plus convergence facts to BENCH_regress.json.
//
// CI uploads the file as a workflow artifact, so consecutive runs can be
// diffed for phase-level regressions (a SpTRSV slowdown shows up in
// solve/sptrsv_* seconds even when end-to-end wall clock hides it in noise).
// Iteration counts and residuals are deterministic and double as a semantic
// regression check; wall-clock fields are host-measured and jittery.
//
// Usage: regress [--out FILE] [--fill K] [--repeat N]
//   --out FILE   output path (default BENCH_regress.json)
//   --fill K     also run an ILU(K) configuration (default 4)
//   --repeat N   solves per matrix per configuration (default 3; phase
//                totals aggregate across repeats, seconds report the sum)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/alloc_audit.h"
#include "core/spcg.h"
#include "gen/suite.h"
#include "support/expo.h"
#include "support/timer.h"
#include "support/trace.h"

using namespace spcg;

namespace {

// Panel: one matrix per broad size band, fixed ids so the JSON is comparable
// across commits (suite generation is deterministic).
constexpr index_t kPanel[] = {0, 9, 23, 41, 66};

struct ConfigRun {
  std::string config;  // "ilu0" / "iluk4"
  MatrixSpec spec;
  index_t rows = 0;
  std::int64_t nnz = 0;
  std::int32_t iterations = 0;
  bool converged = false;
  double final_residual = 0.0;
  double setup_seconds = 0.0;   // sparsify + factorization (summed repeats)
  double solve_seconds = 0.0;   // PCG wall clock (summed repeats)
  std::vector<PhaseTotal> phases;
  // Zero-allocation trajectory (ROADMAP Open item 4): steady-state PCG
  // iteration allocations measured by one extra untraced solve under the
  // allocation auditor. All zero when hooks are not compiled.
  std::uint64_t steady_iterations = 0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_violations = 0;
};

ConfigRun run_config(const std::string& config, const GeneratedMatrix& gm,
                     const SpcgOptions& opt, int repeat) {
  ConfigRun out;
  out.config = config;
  out.spec = gm.spec;
  out.rows = gm.a.rows;
  out.nnz = static_cast<std::int64_t>(gm.a.nnz());
  global_trace().clear();
  for (int r = 0; r < repeat; ++r) {
    const SpcgResult<double> res = spcg_solve(gm.a, gm.b, opt);
    out.iterations = res.solve.iterations;
    out.converged = res.solve.converged();
    out.final_residual = res.solve.final_residual_norm;
    out.setup_seconds += res.sparsify_seconds + res.factorization_seconds;
    out.solve_seconds += res.solve_seconds;
  }
  const std::vector<TraceEvent> events = global_trace().drain();
  out.phases = aggregate_phases(events);

  // Allocation probe: one untraced, history-free solve — tracing allocates
  // by design, so it must be off for the steady-state claim to be
  // measurable. Tracing is restored for the next configuration.
  if (analysis::alloc_audit_compiled()) {
    global_trace().set_enabled(false);
    SpcgOptions probe_opt = opt;
    probe_opt.pcg.trace_every = 0;
    probe_opt.pcg.record_history = false;
    analysis::AllocAudit::instance().reset();
    analysis::AllocAudit::instance().set_enabled(true);
    (void)spcg_solve(gm.a, gm.b, probe_opt);
    analysis::AllocAudit::instance().set_enabled(false);
    for (const analysis::PhaseAllocStats& s :
         analysis::AllocAudit::instance().snapshot()) {
      if (s.phase != "pcg.iteration") continue;
      out.steady_iterations = s.steady_scopes;
      out.steady_allocs = s.steady_allocs;
      out.steady_violations = s.steady_violations;
    }
    global_trace().set_enabled(true);
  }
  return out;
}

std::string to_json(const std::vector<ConfigRun>& runs, int repeat) {
  std::ostringstream os;
  os.precision(9);
  os << "{\n"
     << "  \"schema\": \"spcg-regress-v1\",\n"
     << "  \"repeat\": " << repeat << ",\n"
     << "  \"alloc_audit_compiled\": "
     << (analysis::alloc_audit_compiled() ? "true" : "false") << ",\n"
     << "  \"suite_checksum\": \"" << std::hex << suite_checksum() << std::dec
     << "\",\n"
     << "  \"runs\": [";
  bool first_run = true;
  for (const ConfigRun& r : runs) {
    os << (first_run ? "\n" : ",\n") << "    {\n"
       << "      \"config\": " << json_quote(r.config) << ",\n"
       << "      \"matrix\": " << json_quote(r.spec.name) << ",\n"
       << "      \"category\": " << json_quote(r.spec.category) << ",\n"
       << "      \"rows\": " << r.rows << ",\n"
       << "      \"nnz\": " << r.nnz << ",\n"
       << "      \"iterations\": " << r.iterations << ",\n"
       << "      \"converged\": " << (r.converged ? "true" : "false") << ",\n"
       << "      \"final_residual\": " << r.final_residual << ",\n"
       << "      \"setup_seconds\": " << r.setup_seconds << ",\n"
       << "      \"solve_seconds\": " << r.solve_seconds << ",\n"
       << "      \"steady_iterations\": " << r.steady_iterations << ",\n"
       << "      \"steady_allocs\": " << r.steady_allocs << ",\n"
       << "      \"steady_violations\": " << r.steady_violations << ",\n"
       << "      \"phases\": [";
    bool first_phase = true;
    for (const PhaseTotal& p : r.phases) {
      os << (first_phase ? "\n" : ",\n") << "        {\"category\": "
         << json_quote(p.category) << ", \"phase\": " << json_quote(p.name)
         << ", \"count\": " << p.count
         << ", \"seconds\": " << p.total_seconds() << "}";
      first_phase = false;
    }
    os << (first_phase ? "]" : "\n      ]") << "\n    }";
    first_run = false;
  }
  os << (first_run ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_regress.json";
  index_t fill = 4;
  int repeat = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--fill") {
      fill = static_cast<index_t>(std::atoi(next()));
    } else if (arg == "--repeat") {
      repeat = std::max(1, std::atoi(next()));
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--out FILE] [--fill K] [--repeat N]\n";
      return 2;
    }
  }

  // Full-fidelity tracing: every iteration sampled, so phase totals cover
  // the complete solve rather than a statistical slice.
  global_trace().set_enabled(true);
  SpcgOptions ilu0;
  ilu0.pcg.tolerance = 1e-10;
  ilu0.pcg.trace_every = 1;
  SpcgOptions iluk = ilu0;
  iluk.preconditioner = PrecondKind::kIluK;
  iluk.fill_level = fill;

  std::vector<ConfigRun> runs;
  for (const index_t id : kPanel) {
    const GeneratedMatrix gm = generate_suite_matrix(id);
    runs.push_back(run_config("ilu0", gm, ilu0, repeat));
    runs.push_back(
        run_config("iluk" + std::to_string(fill), gm, iluk, repeat));
    std::cout << gm.spec.name << ": ilu0 " << runs[runs.size() - 2].iterations
              << " it / " << runs[runs.size() - 2].solve_seconds << " s, "
              << runs.back().config << " " << runs.back().iterations
              << " it / " << runs.back().solve_seconds << " s\n";
  }

  const std::string doc = to_json(runs, repeat);
  if (!is_valid_json(doc)) {
    std::cerr << "error: generated document failed JSON self-check\n";
    return 1;
  }
  std::ofstream out(out_path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << doc;
  std::cout << runs.size() << " runs -> " << out_path << "\n";
  return 0;
}
