// Transient-solve study: amortized per-step cost of the values-only fast
// path vs cold setup+solve on an implicit diffusion stepper.
//
// Problem: backward-Euler time stepping of u_t = -div(k grad u) + f on a
// variable-coefficient 2D grid (gen_varcoef2d). Each step solves
//
//   (I + dt * g(t) * L) u_{t+1} = u_t + dt * f
//
// where g(t) = 1 + 0.5 sin(2*pi*t/steps) models a smoothly drifting
// diffusivity. The matrix pattern is constant; every off-diagonal scales by
// the same positive factor per step, so the sparsification drop ordering —
// and therefore the pattern decision — is preserved, and the session's
// numeric-only refactorization is exactly equivalent to a cold setup.
//
// The driver steps one TransientSession through the sequence (values-only
// refactorize + warm-started PCG per step) and samples cold baselines
// (full spcg_setup + zero-start PCG at the same tolerance) at a few steps.
// It also runs a short MPS_DAWN-style fixed-iteration-budget segment and
// reports the residual each budgeted step reached.
//
// Gates (exit 1 on violation):
//   * amortized per-step cost / cold setup+solve < --gate-ratio (def. 0.5)
//   * the session's refactorized factors are bitwise-equal to a cold
//     spcg_setup on the final step's matrix
//   * zero steady-state allocations per step (enforced when the binary was
//     built with -DSPCG_ALLOC_AUDIT=ON; reported as not-compiled otherwise)
//   * every fixed-budget step runs exactly its iteration budget
//
// Usage: transient_study [--nx N] [--steps N] [--budget N] [--out FILE]
//                        [--gate-ratio R] [--smoke]
//   --nx N         grid edge; the system has N*N rows (default 128)
//   --steps N      time steps in the main sequence (default 60)
//   --budget N     iterations per step in the fixed-budget segment (def. 8)
//   --out FILE     JSON artifact path (default BENCH_transient.json)
//   --gate-ratio R amortized/cold gate (default 0.5)
//   --smoke        CI-sized run: nx = 48, steps = 12
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/alloc_audit.h"
#include "gen/generators.h"
#include "precond/preconditioner.h"
#include "support/expo.h"
#include "support/table.h"
#include "support/timer.h"
#include "transient/transient.h"

using namespace spcg;

namespace {

constexpr double kPi = 3.14159265358979323846;

/// A_t = I + dt * g * L written into `a` (same pattern as L).
void assemble_step_matrix(const Csr<double>& l,
                          const std::vector<index_t>& diag_pos, double dt_g,
                          Csr<double>& a) {
  for (std::size_t k = 0; k < l.values.size(); ++k)
    a.values[k] = dt_g * l.values[k];
  for (index_t i = 0; i < l.rows; ++i)
    a.values[static_cast<std::size_t>(diag_pos[static_cast<std::size_t>(i)])] +=
        1.0;
}

}  // namespace

int main(int argc, char** argv) {
  index_t nx = 128;
  int steps = 60;
  std::int32_t budget = 8;
  int budget_steps = 5;
  double gate_ratio = 0.5;
  std::string out_path = "BENCH_transient.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "usage: " << argv[0]
                  << " [--nx N] [--steps N] [--budget N] [--out FILE]"
                     " [--gate-ratio R] [--smoke]\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nx") {
      nx = static_cast<index_t>(std::atoi(next()));
    } else if (arg == "--steps") {
      steps = std::atoi(next());
    } else if (arg == "--budget") {
      budget = static_cast<std::int32_t>(std::atoi(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--gate-ratio") {
      gate_ratio = std::atof(next());
    } else if (arg == "--smoke") {
      nx = 48;
      steps = 12;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--nx N] [--steps N] [--budget N] [--out FILE]"
                   " [--gate-ratio R] [--smoke]\n";
      return 2;
    }
  }
  if (nx < 8 || steps < 4) {
    std::cerr << "error: need --nx >= 8 and --steps >= 4\n";
    return 2;
  }

  const double dt = 0.1;
  const Csr<double> l = gen_varcoef2d(nx, nx, /*contrast=*/1.0, /*seed=*/7);
  const auto n = static_cast<std::size_t>(l.rows);
  std::vector<index_t> diag_pos(n);
  for (index_t i = 0; i < l.rows; ++i) {
    diag_pos[static_cast<std::size_t>(i)] = l.find(i, i);
    SPCG_CHECK(diag_pos[static_cast<std::size_t>(i)] >= 0);
  }

  Csr<double> a = l;  // mutated in place each step, pattern never changes
  const std::vector<double> f = make_rhs(l, /*seed=*/3);
  std::vector<double> b(n);

  TransientOptions topt;
  // One sparsification ratio: every Algorithm-2 outcome path then lands on
  // the same split, so the retained pattern decision matches what a cold
  // setup would choose for any of this sequence's value sets — the
  // precondition of the bitwise gate below.
  topt.base.sparsify.ratios = {10.0};
  topt.policy.mode = StepMode::kTolerance;
  topt.policy.tolerance = 1e-8;
  topt.warm_start = true;

  auto g_of = [&](int t) {
    return 1.0 + 0.5 * std::sin(2.0 * kPi * static_cast<double>(t) /
                                static_cast<double>(steps));
  };

  std::cout << "transient_study: varcoef2d " << nx << "x" << nx << " ("
            << l.rows << " rows, " << l.nnz() << " nnz), " << steps
            << " steps, dt=" << dt << "\n"
            << "alloc audit hooks: "
            << (analysis::alloc_audit_compiled() ? "compiled" : "not compiled")
            << "\n\n";

  assemble_step_matrix(l, diag_pos, dt * g_of(0), a);
  TransientSession<double> session(a, topt);

  analysis::AllocAudit::instance().reset();
  analysis::AllocAudit::instance().set_enabled(true);

  // Main sequence. Step 0 pays the cold build; steps >= 1 are steady.
  double steady_seconds = 0.0;
  std::int64_t steady_iters = 0;
  double cold_build_seconds = 0.0;
  std::int32_t cold_iters_step0 = 0;
  std::vector<double> u(n, 0.0);
  for (int t = 0; t < steps; ++t) {
    assemble_step_matrix(l, diag_pos, dt * g_of(t), a);
    session.update_matrix(a);
    for (std::size_t i = 0; i < n; ++i) u[i] = u[i] + dt * f[i];
    b = u;
    const TransientStepStats& st = session.step(b);
    u = session.solution();
    if (t == 0) {
      cold_build_seconds = st.refactorize_seconds;
      cold_iters_step0 = st.iterations;
    } else {
      steady_seconds += st.refactorize_seconds + st.solve_seconds;
      steady_iters += st.iterations;
    }
  }
  analysis::AllocAudit::instance().set_enabled(false);
  const std::uint64_t steady_violations =
      analysis::AllocAudit::instance().steady_violations();
  const TransientStats seq = session.stats();

  // Cold baselines: full setup + zero-start solve at the same tolerance, on
  // a few of the sequence's matrices.
  double cold_seconds_sum = 0.0;
  std::int64_t cold_iters_sum = 0;
  int cold_samples = 0;
  for (const int t : {steps / 4, steps / 2, steps - 1}) {
    assemble_step_matrix(l, diag_pos, dt * g_of(t), a);
    WallTimer timer;
    SpcgSetup<double> cold = spcg_setup(a, topt.base);
    IluPreconditioner<double> m(std::move(cold.factors),
                                std::move(cold.l_schedule),
                                std::move(cold.u_schedule),
                                topt.base.executor);
    PcgOptions popt = step_solve_options(topt.policy);
    const SolveResult<double> r = pcg(a, b, m, popt);
    cold_seconds_sum += timer.seconds();
    cold_iters_sum += r.iterations;
    ++cold_samples;
  }
  const double cold_seconds = cold_seconds_sum / cold_samples;
  const double cold_iters =
      static_cast<double>(cold_iters_sum) / cold_samples;
  const double amortized_seconds =
      steady_seconds / static_cast<double>(steps - 1);
  const double ratio = amortized_seconds / cold_seconds;
  const double warm_iters =
      static_cast<double>(steady_iters) / static_cast<double>(steps - 1);

  // Bitwise gate: bring the session to the final step's matrix and compare
  // its refactorized factors against a cold setup on the same values.
  assemble_step_matrix(l, diag_pos, dt * g_of(steps - 1), a);
  session.update_matrix(a);
  session.step(b);
  const SpcgSetup<double> cold_final = spcg_setup(a, topt.base);
  const auto& live = session.setup();
  const bool bitwise_equal =
      live.factorization.lu.values.size() ==
          cold_final.factorization.lu.values.size() &&
      std::memcmp(live.factorization.lu.values.data(),
                  cold_final.factorization.lu.values.data(),
                  live.factorization.lu.values.size() * sizeof(double)) == 0 &&
      live.factors.l.values == cold_final.factors.l.values &&
      live.factors.u.values == cold_final.factors.u.values &&
      live.factorization.diag_pos == cold_final.factorization.diag_pos;

  // Fixed-budget segment (MPS_DAWN-style): every step runs exactly `budget`
  // iterations; the residual at budget is the quality actually delivered.
  TransientOptions bopt = topt;
  bopt.policy.mode = StepMode::kFixedBudget;
  bopt.policy.iteration_budget = budget;
  TransientSession<double> budget_session(a, bopt);
  bool budget_honored = true;
  double budget_residual_sum = 0.0;
  for (int t = 0; t < budget_steps; ++t) {
    assemble_step_matrix(l, diag_pos, dt * g_of(t % steps), a);
    budget_session.update_matrix(a);
    const TransientStepStats& st = budget_session.step(b);
    if (st.iterations != budget && st.status != SolveStatus::kBreakdown)
      budget_honored = false;
    budget_residual_sum += st.final_residual_norm;
  }
  const double budget_residual_mean = budget_residual_sum / budget_steps;

  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"cold setup+solve (sampled mean)", fmt(cold_seconds)});
  table.add_row({"amortized per-step (refresh+solve)", fmt(amortized_seconds)});
  table.add_row({"amortized / cold", fmt(ratio)});
  table.add_row({"warm iterations / step", fmt(warm_iters)});
  table.add_row({"cold iterations (sampled mean)", fmt(cold_iters)});
  table.add_row({"refactorize steps", std::to_string(seq.refactorize_steps)});
  table.add_row({"symbolic rebuilds", std::to_string(seq.symbolic_rebuilds)});
  table.add_row({"steady alloc violations", std::to_string(steady_violations)});
  table.add_row({"budget-mode residual @" + std::to_string(budget),
                 fmt(budget_residual_mean)});
  std::cout << table.render() << "\n";

  const bool alloc_ok =
      !analysis::alloc_audit_compiled() || steady_violations == 0;
  const bool ratio_ok = ratio < gate_ratio;
  std::cout << "gates: amortized/cold " << fmt(ratio) << " < "
            << fmt(gate_ratio) << " -> " << (ratio_ok ? "ok" : "FAILED")
            << "; bitwise factors -> " << (bitwise_equal ? "ok" : "FAILED")
            << "; steady allocs -> " << (alloc_ok ? "ok" : "FAILED")
            << "; budget honored -> " << (budget_honored ? "ok" : "FAILED")
            << "\n";

  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"spcg-transient-v1\",\n"
     << "  \"matrix\": {\"generator\": \"varcoef2d\", \"nx\": " << nx
     << ", \"rows\": " << l.rows << ", \"nnz\": " << l.nnz() << "},\n"
     << "  \"steps\": " << steps << ",\n"
     << "  \"dt\": " << dt << ",\n"
     << "  \"tolerance\": " << topt.policy.tolerance << ",\n"
     << "  \"cold_build_seconds_step0\": " << cold_build_seconds << ",\n"
     << "  \"cold_setup_solve_seconds\": " << cold_seconds << ",\n"
     << "  \"amortized_step_seconds\": " << amortized_seconds << ",\n"
     << "  \"amortized_over_cold\": " << ratio << ",\n"
     << "  \"gate_ratio\": " << gate_ratio << ",\n"
     << "  \"warm_iterations_mean\": " << warm_iters << ",\n"
     << "  \"cold_iterations_mean\": " << cold_iters << ",\n"
     << "  \"cold_iterations_step0\": " << cold_iters_step0 << ",\n"
     << "  \"refactorize_steps\": " << seq.refactorize_steps << ",\n"
     << "  \"symbolic_rebuilds\": " << seq.symbolic_rebuilds << ",\n"
     << "  \"warm_steps\": " << seq.warm_steps << ",\n"
     << "  \"bitwise_equal\": " << (bitwise_equal ? "true" : "false") << ",\n"
     << "  \"alloc_audit_compiled\": "
     << (analysis::alloc_audit_compiled() ? "true" : "false") << ",\n"
     << "  \"steady_violations\": " << steady_violations << ",\n"
     << "  \"budget\": {\"iterations\": " << budget
     << ", \"steps\": " << budget_steps
     << ", \"honored\": " << (budget_honored ? "true" : "false")
     << ", \"residual_mean\": " << budget_residual_mean << "}\n"
     << "}\n";
  const std::string doc = os.str();
  if (!is_valid_json(doc)) {
    std::cerr << "error: internal JSON artifact invalid\n";
    return 2;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 2;
  }
  out << doc;
  std::cout << "wrote " << out_path << "\n";

  return (ratio_ok && bitwise_equal && alloc_ok && budget_honored) ? 0 : 1;
}
