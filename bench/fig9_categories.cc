// Reproduces Figure 9: gmean end-to-end speedup of SPCG-ILU(0) over PCG per
// application category on A100. Paper: 16 of 17 categories show moderate or
// strong improvement; economic, duplicate optimization and circuit
// simulation stand out; CFD and graphics/vision gain less end-to-end than
// per-iteration because convergence degrades.
#include <iostream>
#include <map>

#include "common/runner.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIlu0;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const std::string dev = "A100";

  std::map<std::string, std::vector<double>> e2e_by_cat, iter_by_cat;
  for (const MatrixRecord& r : records) {
    iter_by_cat[r.spec.category].push_back(
        r.per_iteration_speedup(r.spcg(), dev));
    if (const auto sp = r.spcg_end_to_end_speedup(dev))
      e2e_by_cat[r.spec.category].push_back(*sp);
  }

  std::cout << "=== Figure 9: SPCG-ILU(0) gmean end-to-end speedup per "
               "application category ("
            << dev << ") ===\n\n";
  TextTable t;
  t.set_header({"category", "#conv", "gmean-e2e", "gmean-per-iter", "bar"});
  for (const auto& [cat, values] : e2e_by_cat) {
    const SpeedupSummary e = summarize_speedups(values);
    const SpeedupSummary i = summarize_speedups(iter_by_cat[cat]);
    const int bar = static_cast<int>(std::min(40.0, e.gmean * 8.0));
    t.add_row({cat, std::to_string(values.size()), fmt_speedup(e.gmean),
               fmt_speedup(i.gmean),
               std::string(static_cast<std::size_t>(bar), '#')});
  }
  for (const auto& [cat, values] : iter_by_cat) {
    if (!e2e_by_cat.count(cat)) {
      t.add_row({cat, "0", "n/a (no converging pair)",
                 fmt_speedup(summarize_speedups(values).gmean), ""});
    }
  }
  std::cout << t.render() << "\n";
  int improved = 0;
  for (const auto& [cat, values] : e2e_by_cat)
    if (summarize_speedups(values).gmean > 1.0) ++improved;
  std::cout << "categories with gmean end-to-end speedup > 1: " << improved
            << " / " << e2e_by_cat.size()
            << "  (paper: 16 of 17 improve)\n";
  std::cout << "\npaper shape: heavy-tailed categories (economic, circuit "
               "simulation, duplicate\noptimization) gain most; CFD and "
               "graphics/vision convert per-iteration gains\ninto smaller "
               "end-to-end gains due to convergence dilution.\n";
  return 0;
}
