// Reproduces Figure 7: per-iteration speedups of the wavefront-aware SPCG
// choice vs the Oracle choice for ILU(K) on A100, plus the paper's
// choice-match rates (56.14% per-iteration, 31.43% end-to-end).
#include <iostream>

#include "common/runner.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIluK;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const std::string dev = "A100";

  std::cout << "=== Figure 7: SPCG vs Oracle per-iteration speedups, "
               "ILU(K) on "
            << dev << " ===\n\n";
  TextTable t;
  t.set_header({"matrix", "nnz", "spcg-speedup", "oracle-speedup",
                "spcg-ratio", "oracle-ratio", "match"});
  int match_iter = 0, match_e2e = 0, e2e_defined = 0;
  std::vector<double> spcg_sp, oracle_sp;
  for (const MatrixRecord& r : records) {
    const int oc = oracle_per_iteration_choice(r, dev);
    const double ss = r.per_iteration_speedup(r.spcg(), dev);
    const double os =
        r.per_iteration_speedup(r.ratios[static_cast<std::size_t>(oc)], dev);
    spcg_sp.push_back(ss);
    oracle_sp.push_back(os);
    const bool match = (oc == r.spcg_choice);
    if (match) ++match_iter;
    const int oe = oracle_end_to_end_choice(r, dev);
    if (oe >= 0 && r.baseline.converged) {
      ++e2e_defined;
      if (oe == r.spcg_choice) ++match_e2e;
    }
    t.add_row({r.spec.name, std::to_string(r.nnz), fmt_speedup(ss),
               fmt_speedup(os),
               fmt(r.spcg().ratio_percent, 0) + "%",
               fmt(r.ratios[static_cast<std::size_t>(oc)].ratio_percent, 0) + "%",
               match ? "yes" : "no"});
  }
  std::cout << t.render() << "\n";
  std::cout << "SPCG gmean: " << fmt_speedup(summarize_speedups(spcg_sp).gmean)
            << ", Oracle gmean: "
            << fmt_speedup(summarize_speedups(oracle_sp).gmean) << "\n";
  std::cout << "per-iteration choice match: "
            << fmt_percent(static_cast<double>(match_iter) / records.size())
            << "  (paper: 56.14%)\n";
  std::cout << "end-to-end choice match: "
            << fmt_percent(e2e_defined ? static_cast<double>(match_e2e) /
                                             e2e_defined
                                       : 0.0)
            << "  (paper: 31.43%)\n";
  std::cout << "\npaper shape: SPCG points overlap the Oracle cloud; Oracle "
               "is an upper bound.\n";
  return 0;
}
