// Reproduces the §5.4 condition-number analysis.
//
// The paper inspects matrices where sparsification IMPROVES convergence and
// correlates that with Lanczos condition numbers of the sparsified matrices
// at ratios 1/5/10% (ecology2: non-convergent -> 2 iterations, kappa 30->10;
// thermal1: iterations fall 1000->531->127->71 as kappa creeps down;
// Pres_Poisson: improves up to 5% then diverges at 10%).
#include <algorithm>
#include <iostream>

#include "common/runner.h"
#include "core/sparsify.h"
#include "solver/lanczos.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIlu0;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);

  // Count matrices where some sparsification level improves convergence
  // (fewer iterations than the baseline, both meaningful).
  int improved = 0;
  std::vector<std::pair<double, const MatrixRecord*>> improvers;
  for (const MatrixRecord& r : records) {
    double best_gain = 1.0;  // baseline iterations / variant iterations
    for (const VariantRecord& v : r.ratios) {
      if (!v.converged) continue;
      const double base_it = r.baseline.converged
                                 ? static_cast<double>(r.baseline.iterations)
                                 : 2000.0;  // non-convergent baseline
      best_gain = std::max(best_gain, base_it / std::max(1, v.iterations));
    }
    if (best_gain > 1.0) {
      ++improved;
      improvers.emplace_back(best_gain, &r);
    }
  }
  // Show the most dramatic improvements (the paper's ecology2-style cases).
  std::sort(improvers.begin(), improvers.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::cout << "=== Section 5.4: condition-number analysis ===\n\n";
  std::cout << "matrices where sparsification improves convergence: "
            << improved << " / " << records.size()
            << "  (paper: 24 of 107)\n\n";

  // Detailed table for up to three representative improvers (the paper's
  // ecology2 / thermal1 / Pres_Poisson roles) with Lanczos condition numbers.
  TextTable t;
  t.set_header({"matrix", "variant", "iterations", "converged",
                "kappa (Lanczos)"});
  int shown = 0;
  for (const auto& [gain, r] : improvers) {
    if (shown == 3) break;
    ++shown;
    const GeneratedMatrix g = generate_suite_matrix(r->spec.id);
    const EigEstimate base_eig = lanczos_extreme_eigenvalues(g.a, 60);
    t.add_row({r->spec.name, "baseline", std::to_string(r->baseline.iterations),
               r->baseline.converged ? "yes" : "no",
               fmt(base_eig.condition_number(), 3)});
    for (std::size_t i = 0; i < r->ratios.size(); ++i) {
      const SparsifySplit<double> split =
          sparsify_by_ratio(g.a, config.ratios[i]);
      const EigEstimate eig = lanczos_extreme_eigenvalues(split.a_hat, 60);
      t.add_row({"", r->ratios[i].label,
                 std::to_string(r->ratios[i].iterations),
                 r->ratios[i].converged ? "yes" : "no",
                 fmt(eig.condition_number(), 3)});
    }
  }
  std::cout << t.render() << "\n";
  std::cout
      << "paper shape: when sparsification enhances convergence the "
         "condition number of\nthe sparsified matrix drops with it; "
         "excessive sparsification can remove\nstructurally critical entries "
         "and break convergence (Pres_Poisson at 10%).\n";
  return 0;
}
