// Autotune study: what does each stage of the tuning funnel buy?
//
// For a panel of suite matrices, three strategies solve the same repeated
// workload (one tune + `--repeats` solves, the amortization story of
// DESIGN.md §10):
//
//   fixed          — the best of the paper's fixed sparsify ratios
//                    {10, 5, 1}% plus the non-sparsified baseline, each run
//                    as a full per-config pipeline (what a user without a
//                    tuner must do: try them all, keep the best);
//   cost-model     — trust the cost prior alone: solve with the top-ranked
//                    candidate, no measured trials;
//   autotuned      — the full measured funnel (prior prune + budgeted
//                    early-aborted trials + tuning-DB record).
//
// Per strategy the JSON records the chosen config, iterations, and the
// amortized end-to-end seconds (tuning/selection cost included, spread over
// the repeats). A second tuner pointed at the recorded DB demonstrates the
// zero-trial warm path. CI runs --smoke and uploads BENCH_autotune.json and
// the tuning DB as artifacts.
//
// Usage: autotune_study [--out FILE] [--db FILE] [--repeats N] [--smoke]
//   --out FILE    output path (default BENCH_autotune.json)
//   --db FILE     tuning database path (default BENCH_autotune_db.json)
//   --repeats N   solves per matrix the tuning cost amortizes over
//                 (default 10)
//   --smoke       small panel / small budget for CI
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "autotune/autotune.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "support/expo.h"
#include "support/timer.h"

using namespace spcg;

namespace {

struct StrategyRun {
  std::string strategy;
  std::string config;
  std::int32_t iterations = 0;
  bool converged = false;
  double select_seconds = 0.0;   // tuning / trying-all cost, paid once
  double solve_seconds = 0.0;    // the repeated solves
  double amortized_seconds = 0.0;  // select/repeats + solve per repeat
  std::size_t trials = 0;        // measured trials spent selecting
  bool db_hit = false;
};

struct MatrixStudy {
  MatrixSpec spec;
  index_t rows = 0;
  std::int64_t nnz = 0;
  std::vector<StrategyRun> runs;
};

/// Repeat-solve a fixed SpcgOptions config through a session (setup once).
StrategyRun run_fixed_config(const std::string& label, const Csr<double>& a,
                             const std::vector<double>& b,
                             const SpcgOptions& opt, int repeats) {
  StrategyRun out;
  out.strategy = "fixed";
  out.config = label;
  WallTimer timer;
  const SolverSession<double> session(a, opt);
  out.select_seconds = timer.seconds();  // setup counts as selection cost
  timer.reset();
  for (int r = 0; r < repeats; ++r) {
    const SessionSolveResult<double> run = session.solve(b);
    out.iterations = run.solve.iterations;
    out.converged = run.solve.converged();
  }
  out.solve_seconds = timer.seconds();
  out.amortized_seconds =
      (out.select_seconds + out.solve_seconds) / std::max(1, repeats);
  return out;
}

StrategyRun run_tuned(const std::string& strategy, const Tuner<double>& tuner,
                      const Csr<double>& a, const std::vector<double>& b,
                      const TuneConfig& config, double select_seconds,
                      std::size_t trials, bool db_hit, int repeats) {
  StrategyRun out;
  out.strategy = strategy;
  out.config = config_id(config);
  out.select_seconds = select_seconds;
  out.trials = trials;
  out.db_hit = db_hit;
  WallTimer timer;
  for (int r = 0; r < repeats; ++r) {
    const TunedSolve<double> run = solve_with_config(
        a, std::span<const double>(b), config, tuner.options(), tuner.cache());
    out.iterations = run.solve.iterations;
    out.converged = run.solve.converged();
  }
  out.solve_seconds = timer.seconds();
  out.amortized_seconds =
      (out.select_seconds + out.solve_seconds) / std::max(1, repeats);
  return out;
}

std::string to_json(const std::vector<MatrixStudy>& studies, int repeats,
                    const std::string& db_path, std::size_t db_records) {
  std::ostringstream os;
  os.precision(9);
  os << "{\n"
     << "  \"schema\": \"spcg-autotune-v1\",\n"
     << "  \"repeats\": " << repeats << ",\n"
     << "  \"suite_checksum\": \"" << std::hex << suite_checksum() << std::dec
     << "\",\n"
     << "  \"tune_db\": " << json_quote(db_path) << ",\n"
     << "  \"tune_db_records\": " << db_records << ",\n"
     << "  \"matrices\": [";
  bool first_m = true;
  for (const MatrixStudy& m : studies) {
    os << (first_m ? "\n" : ",\n") << "    {\n"
       << "      \"matrix\": " << json_quote(m.spec.name) << ",\n"
       << "      \"category\": " << json_quote(m.spec.category) << ",\n"
       << "      \"rows\": " << m.rows << ",\n"
       << "      \"nnz\": " << m.nnz << ",\n"
       << "      \"strategies\": [";
    bool first_s = true;
    for (const StrategyRun& s : m.runs) {
      os << (first_s ? "\n" : ",\n") << "        {\"strategy\": "
         << json_quote(s.strategy) << ", \"config\": " << json_quote(s.config)
         << ", \"iterations\": " << s.iterations
         << ", \"converged\": " << (s.converged ? "true" : "false")
         << ", \"select_seconds\": " << s.select_seconds
         << ", \"solve_seconds\": " << s.solve_seconds
         << ", \"amortized_seconds\": " << s.amortized_seconds
         << ", \"trials\": " << s.trials
         << ", \"db_hit\": " << (s.db_hit ? "true" : "false") << "}";
      first_s = false;
    }
    os << (first_s ? "]" : "\n      ]") << "\n    }";
    first_m = false;
  }
  os << (first_m ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_autotune.json";
  std::string db_path = "BENCH_autotune_db.json";
  int repeats = 10;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--db") {
      db_path = next();
    } else if (arg == "--repeats") {
      repeats = std::max(1, std::atoi(next()));
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--out FILE] [--db FILE] [--repeats N] [--smoke]\n";
      return 2;
    }
  }

  // Panel: one matrix per broad band (fixed ids, deterministic suite).
  const std::vector<index_t> panel =
      smoke ? std::vector<index_t>{0, 9} : std::vector<index_t>{0, 9, 23, 41};

  TunerOptions topt;
  topt.base.pcg.tolerance = 1e-8;
  topt.base.pcg.max_iterations = 2000;
  if (smoke) topt.measure_top = 4;
  auto db = std::make_shared<TuneDb>();
  const Tuner<double> tuner(topt, db);

  std::vector<MatrixStudy> studies;
  for (const index_t id : panel) {
    const GeneratedMatrix gm = generate_suite_matrix(id);
    MatrixStudy study;
    study.spec = gm.spec;
    study.rows = gm.a.rows;
    study.nnz = static_cast<std::int64_t>(gm.a.nnz());

    // Strategy 1: best fixed configuration — every candidate pays its full
    // pipeline; the winner's amortized cost includes trying the losers.
    const std::vector<std::pair<std::string, double>> fixed = {
        {"off", -1.0}, {"fixed10", 10.0}, {"fixed5", 5.0}, {"fixed1", 1.0}};
    StrategyRun best_fixed;
    double try_all_seconds = 0.0;
    for (const auto& [label, ratio] : fixed) {
      SpcgOptions opt = topt.base;
      if (ratio < 0.0) {
        opt.sparsify_enabled = false;
      } else {
        opt.sparsify_enabled = true;
        opt.sparsify.ratios = {ratio};
        opt.sparsify.omega_percent = 0.0;
      }
      StrategyRun run = run_fixed_config(label, gm.a, gm.b, opt, repeats);
      try_all_seconds += run.select_seconds + run.solve_seconds;
      const bool better =
          best_fixed.config.empty() ||
          (run.converged && !best_fixed.converged) ||
          (run.converged == best_fixed.converged &&
           run.amortized_seconds < best_fixed.amortized_seconds);
      if (better) best_fixed = run;
    }
    // Charge the search over all fixed configs to the winner's select cost.
    best_fixed.select_seconds =
        try_all_seconds - best_fixed.solve_seconds;
    best_fixed.amortized_seconds =
        (best_fixed.select_seconds + best_fixed.solve_seconds) /
        std::max(1, repeats);
    study.runs.push_back(best_fixed);

    // Strategy 2: cost-model prior alone (no measured trials).
    {
      WallTimer timer;
      const std::vector<CandidatePrior> ranked = rank_candidates(
          gm.a, enumerate_candidates(topt.space), topt.prior);
      const double select = timer.seconds();
      study.runs.push_back(run_tuned("cost-model", tuner, gm.a, gm.b,
                                     ranked.front().config, select, 0, false,
                                     repeats));
    }

    // Strategy 3: the full measured funnel.
    {
      WallTimer timer;
      const TuneOutcome outcome = tuner.tune(gm.a);
      const double select = timer.seconds();
      study.runs.push_back(run_tuned("autotuned", tuner, gm.a, gm.b,
                                     outcome.config, select,
                                     outcome.trials_measured, outcome.db_hit,
                                     repeats));
    }

    // Warm path: a second tune of the same matrix must be a pure DB hit.
    {
      WallTimer timer;
      const TuneOutcome warm = tuner.tune(gm.a);
      const double select = timer.seconds();
      StrategyRun run = run_tuned("autotuned-warm", tuner, gm.a, gm.b,
                                  warm.config, select, warm.trials_measured,
                                  warm.db_hit, repeats);
      study.runs.push_back(run);
    }

    const StrategyRun& tuned = study.runs[study.runs.size() - 2];
    std::cout << gm.spec.name << ": fixed " << best_fixed.config << " "
              << best_fixed.amortized_seconds << " s/solve, autotuned "
              << tuned.config << " " << tuned.amortized_seconds
              << " s/solve (" << tuned.trials << " trials)\n";
    studies.push_back(std::move(study));
  }

  if (!db->save_file(db_path)) {
    std::cerr << "error: cannot write tuning DB " << db_path << "\n";
    return 1;
  }
  const std::string doc = to_json(studies, repeats, db_path, db->size());
  if (!is_valid_json(doc)) {
    std::cerr << "error: generated document failed JSON self-check\n";
    return 1;
  }
  std::ofstream out(out_path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << doc;
  std::cout << studies.size() << " matrices -> " << out_path << " (tune DB: "
            << db_path << ", " << db->size() << " records)\n";
  return 0;
}
