// Ablation: where should the dropping happen — in the factor (ILUT) or in
// the matrix before factorization (SPCG)?
//
// The paper's related work argues incomplete solvers "still retain many
// fill-ins that are not essential". This bench compares, per matrix:
//   * PCG-ILU(0)                      (no dropping; the paper's baseline)
//   * PCG-ILUT(1e-3, p=20)           (in-factor dropping)
//   * SPCG-ILU(0)                     (pre-factorization dropping, Alg. 2)
// on factor nnz, factor wavefronts, iterations, and modeled A100
// per-iteration time.
#include <iostream>

#include "common/runner.h"
#include "core/spcg.h"
#include "gpumodel/cost_model.h"
#include "precond/ilut.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIlu0;
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const CostModel model(device_a100(), 4);

  std::vector<double> ilut_pi, spcg_pi;
  std::vector<double> ilut_wf_red, spcg_wf_red;
  int ilut_conv = 0, spcg_conv = 0, base_conv = 0;
  TextTable t;
  t.set_header({"matrix", "wf base", "wf ilut", "wf spcg", "it base",
                "it ilut", "it spcg"});
  for (const MatrixRecord& r : records) {
    const GeneratedMatrix g = generate_suite_matrix(r.spec.id);

    IlutOptions iopt;
    iopt.drop_tol = 1e-3;
    iopt.max_fill = 20;
    const IluResult<double> f_ilut = ilut(g.a, iopt);
    const PcgIterationShape ilut_shape = pcg_iteration_shape(g.a, f_ilut.lu);
    std::int32_t it_ilut = 0;
    bool conv_ilut = false;
    {
      IluPreconditioner<double> m(f_ilut);
      PcgOptions popt;
      popt.tolerance = config.tolerance;
      popt.max_iterations = config.max_iterations;
      const SolveResult<double> s = pcg(g.a, g.b, m, popt);
      it_ilut = s.iterations;
      conv_ilut = s.converged();
    }

    const double t_base = r.baseline.device.at("A100").per_iteration_s;
    const double t_ilut = model.pcg_iteration(ilut_shape).seconds;
    const double t_spcg = r.spcg().device.at("A100").per_iteration_s;
    ilut_pi.push_back(t_base / t_ilut);
    spcg_pi.push_back(t_base / t_spcg);
    const auto wfb = static_cast<double>(r.baseline.factor_wavefronts);
    ilut_wf_red.push_back(
        (wfb - static_cast<double>(ilut_shape.lower.levels())) / wfb);
    spcg_wf_red.push_back(
        (wfb - static_cast<double>(r.spcg().factor_wavefronts)) / wfb);
    if (conv_ilut) ++ilut_conv;
    if (r.spcg().converged) ++spcg_conv;
    if (r.baseline.converged) ++base_conv;
    t.add_row({r.spec.name, std::to_string(r.baseline.factor_wavefronts),
               std::to_string(ilut_shape.lower.levels()),
               std::to_string(r.spcg().factor_wavefronts),
               std::to_string(r.baseline.iterations), std::to_string(it_ilut),
               std::to_string(r.spcg().iterations)});
  }
  std::cout << "=== Ablation: in-factor dropping (ILUT) vs pre-factorization "
               "dropping (SPCG) ===\n\n";
  std::cout << t.render() << "\n";
  TextTable s;
  s.set_header({"method", "gmean per-iter speedup vs ILU(0)",
                "mean wf reduction", "%converged"});
  const double n = static_cast<double>(records.size());
  s.add_row({"ILUT(1e-3, 20)",
             fmt_speedup(summarize_speedups(ilut_pi).gmean),
             fmt_percent(mean(ilut_wf_red)),
             fmt_percent(ilut_conv / n)});
  s.add_row({"SPCG-ILU(0)", fmt_speedup(summarize_speedups(spcg_pi).gmean),
             fmt_percent(mean(spcg_wf_red)), fmt_percent(spcg_conv / n)});
  s.add_row({"PCG-ILU(0) baseline", "1.00x", "0.00%",
             fmt_percent(base_conv / n)});
  std::cout << s.render();
  std::cout << "\nShape: ILUT keeps (or adds) fill wherever values are large "
               "— it rarely removes\nthe dependence-critical entries, so its "
               "wavefront count stays near (or above)\nILU(0)'s. SPCG's "
               "wavefront-aware dropping targets exactly those entries.\n"
               "ILUT can also lose symmetry (see precond/ilut.h), costing "
               "convergence at\naggressive thresholds.\n";
  return 0;
}
