// Reproduces Table 2: per-iteration speedup of SPCG on A100 vs V100 for both
// preconditioners (paper: ILU(0) 1.23/1.22, ILU(K) 1.65/1.71; %accelerated
// 69.16/83.18 and 80.38/82.25).
#include <iostream>

#include "common/runner.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  TextTable t;
  t.set_header({"Statistic/Setting", "ILU(0) A100", "ILU(0) V100",
                "ILU(K) A100", "ILU(K) V100"});
  std::vector<std::string> row_gmean{"Geometric Mean"};
  std::vector<std::string> row_acc{"% Accelerated"};

  for (const PrecondKind kind : {PrecondKind::kIlu0, PrecondKind::kIluK}) {
    RunConfig config = apply_env_overrides(RunConfig{});
    config.kind = kind;
    const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
    for (const std::string dev : {"A100", "V100"}) {
      std::vector<double> sp;
      for (const MatrixRecord& r : records)
        sp.push_back(r.per_iteration_speedup(r.spcg(), dev));
      const SpeedupSummary s = summarize_speedups(sp);
      row_gmean.push_back(fmt_speedup(s.gmean));
      row_acc.push_back(fmt_percent(s.pct_accelerated));
    }
  }
  t.add_row(row_gmean);
  t.add_row(row_acc);

  std::cout << "=== Table 2: per-iteration speedup on A100 and V100 ===\n\n";
  std::cout << t.render() << "\n";
  std::cout << "paper: ILU(0) 1.23x/1.22x (69.16%/83.18%), "
               "ILU(K) 1.65x/1.71x (80.38%/82.25%)\n";
  std::cout << "\npaper shape: both GPUs benefit consistently; the speedup "
               "is architecture-portable.\n";
  return 0;
}
