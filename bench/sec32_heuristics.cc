// Reproduces the §3.2.3 heuristic-choice analysis:
//   1. Ratio-space sweep {0.5, 1, 5, 10, 15, 20, 50}%. Paper: 0.5% yields
//      <5% relative wavefront reduction for 86.92% of matrices (59.82% with
//      no reduction at all); at 50%, 62.62% of matrices fail to converge or
//      need at least 2x the iterations.
//   2. Condition-number estimator ablation: the cheap diagonal proxy vs the
//      Lanczos ("exact") estimator inside Algorithm 2 with (tau=1, omega=10%).
//      Paper: gmean speedup 1.233 vs 1.235, convergence 52.34% vs 53.28%.
#include <iostream>

#include "common/runner.h"
#include "core/sparsify.h"
#include "support/stats.h"
#include "support/table.h"

using namespace spcg;
using namespace spcg::bench;

int main() {
  RunConfig config = apply_env_overrides(RunConfig{});
  config.kind = PrecondKind::kIlu0;
  config.ratios = {0.5, 1.0, 5.0, 10.0, 15.0, 20.0, 50.0};
  const std::vector<MatrixRecord> records = run_suite(config, &std::cerr);
  const std::string dev = "A100";

  std::cout << "=== Section 3.2.3 (1): sparsification-ratio sweep, ILU(0) on "
            << dev << " ===\n\n";
  TextTable sweep;
  sweep.set_header({"ratio", "gmean-per-iter", "%accel", "%conv",
                    "%no-wf-reduction", "%wf-reduction<5%",
                    "%diverge-or-2x-iters"});
  for (std::size_t i = 0; i < config.ratios.size(); ++i) {
    std::vector<double> sp;
    int conv = 0, no_red = 0, small_red = 0, degraded = 0;
    for (const MatrixRecord& r : records) {
      const VariantRecord& v = r.ratios[i];
      sp.push_back(r.per_iteration_speedup(v, dev));
      if (v.converged) ++conv;
      const double red =
          r.wavefronts > 0
              ? 100.0 * static_cast<double>(r.wavefronts - v.matrix_wavefronts) /
                    static_cast<double>(r.wavefronts)
              : 0.0;
      if (v.matrix_wavefronts == r.wavefronts) ++no_red;
      if (red < 5.0) ++small_red;
      const bool diverged = !v.converged && r.baseline.converged;
      const bool doubled =
          r.baseline.converged && v.converged &&
          v.iterations >= 2 * r.baseline.iterations;
      if (diverged || doubled) ++degraded;
    }
    const double n = static_cast<double>(records.size());
    const SpeedupSummary s = summarize_speedups(sp);
    sweep.add_row({fmt(config.ratios[i], 1) + "%", fmt_speedup(s.gmean, 3),
                   fmt_percent(s.pct_accelerated), fmt_percent(conv / n),
                   fmt_percent(no_red / n), fmt_percent(small_red / n),
                   fmt_percent(degraded / n)});
  }
  std::cout << sweep.render() << "\n";
  std::cout << "paper: at 0.5%, 86.92% of matrices see <5% wavefront "
               "reduction (59.82% none);\nat 50%, 62.62% fail to converge or "
               "need >=2x iterations.\n\n";

  // --- estimator ablation ---------------------------------------------------
  std::cout << "=== Section 3.2.3 (2): approximate vs exact condition-number "
               "estimator in Algorithm 2 ===\n\n";
  SparsifyOptions base_opts;  // tau = 1, omega = 10%, ratios {10,5,1}
  TextTable ab;
  ab.set_header({"estimator", "gmean-per-iter", "%converged", "choice:10%",
                 "choice:5%", "choice:1%"});
  for (const auto& [name, estimator] :
       {std::pair<const char*, ConditionEstimator>{
            "diagonal proxy", ConditionEstimator::kDiagonalProxy},
        {"Lanczos (exact)", ConditionEstimator::kLanczos}}) {
    std::vector<double> sp;
    int conv = 0;
    int picked[3] = {0, 0, 0};  // 10, 5, 1
    for (const MatrixRecord& r : records) {
      const GeneratedMatrix g = generate_suite_matrix(r.spec.id);
      SparsifyOptions opts = base_opts;
      opts.estimator = estimator;
      const SparsifyDecision<double> d = wavefront_aware_sparsify(g.a, opts);
      // Map the chosen ratio onto this run's fixed-ratio records.
      std::size_t idx = 0;
      for (std::size_t i = 0; i < config.ratios.size(); ++i) {
        if (config.ratios[i] == d.chosen.ratio_percent) idx = i;
      }
      if (d.chosen.ratio_percent == 10.0) ++picked[0];
      if (d.chosen.ratio_percent == 5.0) ++picked[1];
      if (d.chosen.ratio_percent == 1.0) ++picked[2];
      const VariantRecord& v = r.ratios[idx];
      sp.push_back(r.per_iteration_speedup(v, dev));
      if (v.converged) ++conv;
    }
    const SpeedupSummary s = summarize_speedups(sp);
    ab.add_row({name, fmt(s.gmean, 3),
                fmt_percent(conv / static_cast<double>(records.size())),
                std::to_string(picked[0]), std::to_string(picked[1]),
                std::to_string(picked[2])});
  }
  std::cout << ab.render() << "\n";
  std::cout << "paper: proxy 1.233 gmean / 52.34% convergence vs exact 1.235 "
               "/ 53.28% — the\ncheap approximation guides sparsification "
               "essentially as well as exact kappa.\n";
  return 0;
}
