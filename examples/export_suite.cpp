// Export matrices of the synthetic evaluation suite as Matrix Market files
// (plus a manifest), so the dataset can be inspected or consumed by other
// solvers.
//
// Usage:
//   export_suite <output-dir> [first-id [last-id]]
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "gen/suite.h"
#include "sparse/io.h"
#include "wavefront/levels.h"

int main(int argc, char** argv) {
  using namespace spcg;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <output-dir> [first-id [last-id]]\n";
    return 2;
  }
  const std::filesystem::path dir = argv[1];
  const index_t first = argc > 2 ? std::atoi(argv[2]) : 0;
  const index_t last =
      argc > 3 ? std::atoi(argv[3]) : suite_size() - 1;
  if (first < 0 || last >= suite_size() || first > last) {
    std::cerr << "error: id range must lie in [0, " << suite_size() - 1
              << "]\n";
    return 2;
  }

  std::filesystem::create_directories(dir);
  std::ofstream manifest(dir / "manifest.tsv");
  manifest << "id\tname\tcategory\tn\tnnz\twavefronts\tfile\n";
  for (index_t id = first; id <= last; ++id) {
    const GeneratedMatrix g = generate_suite_matrix(id);
    const std::string file = g.spec.name + ".mtx";
    write_matrix_market(g.a, (dir / file).string());
    manifest << id << '\t' << g.spec.name << '\t' << g.spec.category << '\t'
             << g.a.rows << '\t' << g.a.nnz() << '\t'
             << count_wavefronts(g.a) << '\t' << file << '\n';
    std::cout << "wrote " << (dir / file).string() << " (n=" << g.a.rows
              << ", nnz=" << g.a.nnz() << ")\n";
  }
  std::cout << "manifest: " << (dir / "manifest.tsv").string() << "\n";
  return 0;
}
