// Mixed-precision SPCG demo (the paper's §6.2 extension): the outer CG runs
// in double while the (sparsified) ILU factors are stored and applied in
// float — half the preconditioner bytes on the device for essentially the
// same convergence.
#include <iostream>

#include "core/sparsify.h"
#include "gen/generators.h"
#include "gpumodel/cost_model.h"
#include "solver/mixed.h"
#include "solver/pcg.h"
#include "support/table.h"

int main() {
  using namespace spcg;

  const Csr<double> a = gen_grid_laplacian(64, 64, 2.0, 0.4, 21);
  const std::vector<double> b = make_rhs(a, 21);
  std::cout << "circuit-style system, n=" << a.rows << ", nnz=" << a.nnz()
            << "\n\n";

  PcgOptions opt;
  opt.tolerance = 1e-11;

  TextTable t;
  t.set_header({"configuration", "iterations", "final residual",
                "factor bytes", "modeled A100 per-iter (us)"});

  // Sparsify once (Algorithm 2), factor once.
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a);
  const IluResult<double> fact = ilu0(d.chosen.a_hat);
  const PcgIterationShape shape64 = pcg_iteration_shape(a, fact.lu);

  {
    IluPreconditioner<double> m(fact);
    const SolveResult<double> r = pcg(a, b, m, opt);
    const CostModel model(device_a100(), 8);  // double-precision factor
    const std::size_t bytes =
        (static_cast<std::size_t>(fact.lu.nnz()) + static_cast<std::size_t>(a.rows)) *
        (sizeof(double) + sizeof(index_t));
    t.add_row({"SPCG, double factor", std::to_string(r.iterations),
               fmt(r.final_residual_norm, 14), std::to_string(bytes),
               fmt(model.pcg_iteration(shape64).seconds * 1e6, 1)});
  }
  {
    MixedPrecisionIluPreconditioner m(fact);
    const SolveResult<double> r = pcg(a, b, m, opt);
    const CostModel model(device_a100(), 4);  // float factor on the device
    t.add_row({"SPCG, float factor (mixed)", std::to_string(r.iterations),
               fmt(r.final_residual_norm, 14),
               std::to_string(m.factor_bytes()),
               fmt(model.pcg_iteration(shape64).seconds * 1e6, 1)});
  }
  std::cout << t.render();
  std::cout << "\nThe float factor halves the value bytes the bandwidth-bound "
               "triangular solves\nmove, while the double outer recurrence "
               "still converges to ~1e-11.\n";
  return 0;
}
