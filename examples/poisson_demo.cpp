// Poisson / CFD-style demo: anisotropic diffusion operators.
//
// Reproduces the paper's §5.1 observation for stencil-based PDE categories:
// per-iteration time improves under sparsification, but on uniform stencils
// every entry matters, so convergence can degrade and dilute the end-to-end
// gain. The demo sweeps the anisotropy and reports both effects.
#include <iostream>

#include "core/spcg.h"
#include "gen/generators.h"
#include "gpumodel/cost_model.h"
#include "support/table.h"

int main() {
  using namespace spcg;

  std::cout << "SPCG on anisotropic 2D diffusion (-eps*u_xx - u_yy), 64x64 "
               "grid\n\n";
  TextTable t;
  t.set_header({"eps", "ratio", "wf A", "wf Ahat", "iters base", "iters spcg",
                "per-iter speedup (A100)", "e2e speedup (A100)"});

  const CostModel model(device_a100(), 4);
  for (const double eps : {1.0, 0.1, 0.01, 0.001}) {
    const Csr<double> a = gen_anisotropic2d(64, 64, eps);
    const std::vector<double> b = make_rhs(a, 7);

    SpcgOptions opt;
    opt.sparsify_enabled = false;
    opt.pcg.tolerance = 1e-10;
    const SpcgResult<double> base = spcg_solve(a, b, opt);
    opt.sparsify_enabled = true;
    const SpcgResult<double> spcg = spcg_solve(a, b, opt);

    const double tb =
        model.pcg_iteration(pcg_iteration_shape(a, base.factorization.lu)).seconds;
    const double ts =
        model.pcg_iteration(pcg_iteration_shape(a, spcg.factorization.lu)).seconds;
    const double per_iter = tb / ts;
    std::string e2e = "n/a";
    if (base.solve.converged() && spcg.solve.converged()) {
      const double base_e2e = base.solve.iterations * tb;
      const double spcg_e2e = spcg.solve.iterations * ts;
      e2e = fmt_speedup(base_e2e / spcg_e2e);
    }
    t.add_row({fmt(eps, 3), fmt(spcg.decision->chosen.ratio_percent, 0) + "%",
               std::to_string(base.matrix_wavefronts),
               std::to_string(spcg.matrix_wavefronts),
               std::to_string(base.solve.iterations),
               std::to_string(spcg.solve.iterations), fmt_speedup(per_iter),
               e2e});
  }
  std::cout << t.render();
  std::cout << "\nStrong anisotropy concentrates magnitude in one axis: the "
               "weak-axis entries\nare dropped, shortening dependence chains; "
               "for eps ~ 1 all entries are equal\nand sparsification mostly "
               "trades iterations for per-iteration speed.\n";
  return 0;
}
