// Quickstart: solve an SPD system with SPCG in ~20 lines.
//
// Builds a 2D Poisson system, solves it twice — baseline PCG-ILU(0) and
// sparsified SPCG-ILU(0) — and prints both run summaries plus the modeled
// A100 per-iteration times.
#include <iostream>

#include "core/spcg.h"
#include "core/spcg_report.h"
#include "gen/generators.h"
#include "gpumodel/cost_model.h"

int main() {
  using namespace spcg;

  // 1. A sparse SPD system A x = b (here: generated; read_matrix_market()
  //    loads .mtx files the same way).
  const Csr<double> a = gen_poisson2d(64, 64);
  const std::vector<double> b = make_rhs(a, /*seed=*/1);

  // 2. Baseline: plain PCG with an ILU(0) preconditioner.
  SpcgOptions baseline;
  baseline.sparsify_enabled = false;
  baseline.pcg.tolerance = 1e-10;
  const SpcgResult<double> base = spcg_solve(a, b, baseline);

  // 3. SPCG: wavefront-aware sparsification (Algorithm 2), then ILU(0) on
  //    the sparsified matrix, then PCG on the ORIGINAL system.
  SpcgOptions sparsified = baseline;
  sparsified.sparsify_enabled = true;
  const SpcgResult<double> spcg = spcg_solve(a, b, sparsified);

  std::cout << render_run_summary(summarize("baseline PCG", a, base,
                                            PrecondKind::kIlu0));
  std::cout << render_run_summary(summarize("SPCG", a, spcg,
                                            PrecondKind::kIlu0));

  // 4. What the wavefront reduction buys on a GPU: modeled per-iteration
  //    time on an A100 for both preconditioners.
  const CostModel model(device_a100(), /*value_bytes=*/4);
  const double t_base =
      model.pcg_iteration(pcg_iteration_shape(a, base.factorization.lu)).seconds;
  const double t_spcg =
      model.pcg_iteration(pcg_iteration_shape(a, spcg.factorization.lu)).seconds;
  std::cout << "modeled A100 per-iteration: baseline " << t_base * 1e6
            << " us, SPCG " << t_spcg * 1e6 << " us (speedup "
            << t_base / t_spcg << "x)\n";
  return 0;
}
