// Command-line SPCG solver for Matrix Market files.
//
// Usage:
//   spcg_mtx <matrix.mtx> [--iluk K] [--tau T] [--omega W] [--tol EPS]
//            [--max-iters N] [--no-sparsify] [--rhs ones|random]
//
// Reads a symmetric positive definite matrix, runs baseline PCG and SPCG
// side by side, and reports convergence, wavefronts, and modeled A100 times.
#include <cstring>
#include <iostream>
#include <string>

#include "core/spcg.h"
#include "core/spcg_report.h"
#include "gen/generators.h"
#include "gpumodel/cost_model.h"
#include "sparse/io.h"
#include "sparse/norms.h"

namespace {

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <matrix.mtx> [--iluk K] [--tau T] [--omega W] [--tol EPS]"
               " [--max-iters N] [--no-sparsify] [--rhs ones|random]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spcg;
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }

  SpcgOptions opt;
  opt.pcg.tolerance = 1e-10;
  std::string rhs_mode = "random";
  bool sparsify = true;
  const std::string path = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--iluk") {
      opt.preconditioner = PrecondKind::kIluK;
      opt.fill_level = static_cast<index_t>(std::atoi(next()));
    } else if (arg == "--tau") {
      opt.sparsify.tau = std::atof(next());
    } else if (arg == "--omega") {
      opt.sparsify.omega_percent = std::atof(next());
    } else if (arg == "--tol") {
      opt.pcg.tolerance = std::atof(next());
    } else if (arg == "--max-iters") {
      opt.pcg.max_iterations = std::atoi(next());
    } else if (arg == "--no-sparsify") {
      sparsify = false;
    } else if (arg == "--rhs") {
      rhs_mode = next();
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  try {
    const Csr<double> a = read_matrix_market(path);
    if (a.rows != a.cols) {
      std::cerr << "error: matrix is not square\n";
      return 1;
    }
    if (!is_symmetric(a, 1e-10 * static_cast<double>(norm_inf(a)))) {
      std::cerr << "warning: matrix is not numerically symmetric; "
                   "CG assumes SPD input\n";
    }
    std::vector<double> b;
    if (rhs_mode == "ones") {
      b.assign(static_cast<std::size_t>(a.rows), 1.0);
      const double nb = norm2(std::span<const double>(b));
      for (double& v : b) v /= nb;
    } else {
      b = make_rhs(a, 1);
    }

    SpcgOptions base = opt;
    base.sparsify_enabled = false;
    const SpcgResult<double> rb = spcg_solve(a, std::span<const double>(b), base);
    std::cout << render_run_summary(
        summarize("baseline PCG", a, rb, opt.preconditioner));

    if (sparsify) {
      opt.sparsify_enabled = true;
      const SpcgResult<double> rs =
          spcg_solve(a, std::span<const double>(b), opt);
      std::cout << render_run_summary(
          summarize("SPCG", a, rs, opt.preconditioner));

      const CostModel model(device_a100(), 4);
      const double tb =
          model.pcg_iteration(pcg_iteration_shape(a, rb.factorization.lu)).seconds;
      const double ts =
          model.pcg_iteration(pcg_iteration_shape(a, rs.factorization.lu)).seconds;
      std::cout << "modeled A100 per-iteration speedup: " << tb / ts << "x\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
