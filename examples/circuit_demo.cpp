// Circuit-simulation demo: the sweet spot for SPCG.
//
// Conductance matrices from circuit netlists have heavy-tailed magnitude
// distributions — a few strong couplings and many weak parasitics. Dropping
// the parasitics barely perturbs the preconditioner but shortens triangular
// dependence chains. The paper's Figure 9 shows circuit simulation among the
// strongest end-to-end categories; this demo shows why, sweeping the
// heavy-tail parameter.
#include <iostream>

#include "core/spcg.h"
#include "gen/generators.h"
#include "gpumodel/cost_model.h"
#include "support/table.h"

int main() {
  using namespace spcg;

  std::cout << "SPCG-ILU(0) on circuit-style conductance grids (56x56), "
               "sweeping weight spread\n\n";
  TextTable t;
  t.set_header({"weight sigma", "chosen ratio", "wf reduction", "iters base",
                "iters spcg", "per-iter speedup", "e2e speedup"});

  const CostModel model(device_a100(), 4);
  for (const double sigma : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    const Csr<double> a = gen_grid_laplacian(56, 56, sigma, 0.4, 11);
    const std::vector<double> b = make_rhs(a, 11);

    SpcgOptions opt;
    opt.sparsify_enabled = false;
    opt.pcg.tolerance = 1e-10;
    const SpcgResult<double> base = spcg_solve(a, b, opt);
    opt.sparsify_enabled = true;
    const SpcgResult<double> spcg = spcg_solve(a, b, opt);

    const CostModel host(device_host_cpu(), 4);
    const double tb =
        model.pcg_iteration(pcg_iteration_shape(a, base.factorization.lu)).seconds;
    const double ts =
        model.pcg_iteration(pcg_iteration_shape(a, spcg.factorization.lu)).seconds;
    const double fb = model
                          .ilu0_factorization(
                              trisolve_structure(base.factorization.lu,
                                                 Triangle::kLower),
                              base.factorization.elimination_ops)
                          .seconds;
    const double fs = model
                          .ilu0_factorization(
                              trisolve_structure(spcg.factorization.lu,
                                                 Triangle::kLower),
                              spcg.factorization.elimination_ops)
                          .seconds;
    const double sp_cost = host.sparsify_host(a.nnz(), 3).seconds;
    std::string e2e = "n/a";
    if (base.solve.converged() && spcg.solve.converged()) {
      e2e = fmt_speedup((fb + base.solve.iterations * tb) /
                        (sp_cost + fs + spcg.solve.iterations * ts));
    }
    t.add_row({fmt(sigma, 1),
               fmt(spcg.decision->chosen.ratio_percent, 0) + "%",
               fmt(spcg.decision->reduction_percent, 1) + "%",
               std::to_string(base.solve.iterations),
               std::to_string(spcg.solve.iterations), fmt_speedup(tb / ts),
               e2e});
  }
  std::cout << t.render();
  std::cout << "\nThe wider the conductance spread, the cheaper sparsification"
               " is numerically\n(the dropped mass is negligible) and the more "
               "wavefronts it removes.\n";
  return 0;
}
