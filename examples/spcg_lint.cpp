// spcg-lint: structural linter CLI for SPCG inputs and factors.
//
// Usage:
//   spcg-lint <matrix.mtx> [<matrix.mtx>...] [options]
//   spcg-lint --suite <id> [--suite <id>...] [options]
//   spcg-lint --suite-all [options]
//   spcg-lint --list-rules
//
// Options:
//   --factor ilu0|iluk|ilut  factorize and lint the factor, its L/U split,
//                            and the level schedules (static race check)
//   --k K                    fill level for --factor iluk (default 1)
//   --race                   also run the instrumented race-detecting
//                            executor over both schedules
//   --rules <csv>            only count/print findings whose rule id matches
//                            one of the comma-separated ids or prefixes
//                            (e.g. --rules csr.,schedule.race); everything
//                            else is discarded and does not affect the exit
//                            code
//   --strict                 treat warnings as errors for the exit code
//   --sym-tol T              numeric symmetry tolerance (default 1e-10*|A|)
//   --max-diags N            findings printed per rule (default 8, 0 = all)
//   --quiet                  print only the summary line per object
//
// Exit-code contract (stable; CI and corpus scripts rely on it):
//   0  every input clean — no errors (and no warnings under --strict)
//      after the --rules filter
//   1  at least one lint error across the inputs (or a warning with
//      --strict); all inputs are always processed before exiting
//   2  usage error, unreadable/unparsable input, or factorization failure
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/race_detector.h"
#include "gen/suite.h"
#include "precond/ilu.h"
#include "precond/ilut.h"
#include "sparse/io.h"
#include "sparse/norms.h"
#include "support/rng.h"

namespace {

using namespace spcg;

struct Options {
  std::vector<std::string> paths;     // .mtx inputs
  std::vector<index_t> suite_ids;     // --suite (repeatable)
  bool suite_all = false;             // --suite-all
  std::string factor;                 // "", "ilu0", "iluk", "ilut"
  index_t k = 1;
  bool race = false;
  bool strict = false;
  bool quiet = false;
  double sym_tol = -1.0;  // <0: derive from |A|
  std::size_t max_diags = 8;
  std::vector<std::string> rule_filter;  // empty = keep everything
};

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (<matrix.mtx>... | --suite <id>... | --suite-all |"
               " --list-rules)\n"
               "  [--factor ilu0|iluk|ilut] [--k K] [--race] [--strict]\n"
               "  [--rules id[,id...]] [--sym-tol T] [--max-diags N]"
               " [--quiet]\n";
}

/// Keep only findings whose rule id matches a filter entry exactly or by
/// prefix (so "csr." selects the whole family). Empty filter keeps all.
analysis::Diagnostics filter_rules(const analysis::Diagnostics& d,
                                   const std::vector<std::string>& filters) {
  if (filters.empty()) return d;
  analysis::Diagnostics out;
  for (const analysis::Diagnostic& item : d.items()) {
    for (const std::string& f : filters) {
      if (item.rule.compare(0, f.size(), f) == 0) {
        out.add(item);
        break;
      }
    }
  }
  return out;
}

/// Print a report (honoring --quiet) and fold it into the running tally.
class Tally {
 public:
  explicit Tally(const Options& opt)
      : strict_(opt.strict), quiet_(opt.quiet), max_diags_(opt.max_diags),
        filter_(opt.rule_filter) {}

  void take(const std::string& what, const analysis::Diagnostics& raw) {
    const analysis::Diagnostics d = filter_rules(raw, filter_);
    errors_ += d.count(analysis::Severity::kError);
    warnings_ += d.count(analysis::Severity::kWarning);
    if (!quiet_ && !d.empty()) std::cout << d.to_string(max_diags_);
    std::cout << what << ": " << d.count(analysis::Severity::kError)
              << " error(s), " << d.count(analysis::Severity::kWarning)
              << " warning(s)\n";
  }

  [[nodiscard]] int exit_code() const {
    if (errors_ > 0) return 1;
    if (strict_ && warnings_ > 0) return 1;
    return 0;
  }

 private:
  bool strict_;
  bool quiet_;
  std::size_t max_diags_;
  std::vector<std::string> filter_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

void lint_factor(const Csr<double>& a, const Options& opt, Tally& tally) {
  IluResult<double> fact;
  if (opt.factor == "ilu0") {
    fact = ilu0(a);
  } else if (opt.factor == "iluk") {
    fact = iluk(a, opt.k);
  } else if (opt.factor == "ilut") {
    fact = ilut(a);
  } else {
    throw Error("unknown --factor '" + opt.factor + "'");
  }
  analysis::LintOptions lopt;
  lopt.max_per_rule = opt.max_diags;
  tally.take("factor(" + opt.factor + ")", analysis::analyze_ilu(fact, lopt));

  const TriangularFactors<double> f = split_lu(fact);
  tally.take("L", analysis::analyze_triangular(f.l, Triangle::kLower,
                                               /*expect_unit_diag=*/true,
                                               lopt, "L"));
  tally.take("U", analysis::analyze_triangular(f.u, Triangle::kUpper,
                                               /*expect_unit_diag=*/false,
                                               lopt, "U"));

  const LevelSchedule ls = level_schedule(f.l, Triangle::kLower);
  const LevelSchedule us = level_schedule(f.u, Triangle::kUpper);
  tally.take("schedule(L)",
             analysis::verify_level_schedule(f.l, ls, Triangle::kLower,
                                             "schedule(L)", opt.max_diags));
  tally.take("schedule(U)",
             analysis::verify_level_schedule(f.u, us, Triangle::kUpper,
                                             "schedule(U)", opt.max_diags));

  if (opt.race) {
    std::vector<double> b(static_cast<std::size_t>(a.rows));
    Rng rng(12345);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
    std::vector<double> x(b.size()), y(b.size());
    const analysis::RaceReport rl = analysis::sptrsv_lower_levels_checked(
        f.l, ls, std::span<const double>(b), std::span<double>(y));
    const analysis::RaceReport ru = analysis::sptrsv_upper_levels_checked(
        f.u, us, std::span<const double>(y), std::span<double>(x));
    tally.take("race(L) [" + std::to_string(rl.reads) + " reads, " +
                   std::to_string(rl.writes) + " writes, " +
                   std::to_string(rl.levels) + " levels]",
               rl.to_diagnostics("race(L)"));
    tally.take("race(U) [" + std::to_string(ru.reads) + " reads, " +
                   std::to_string(ru.writes) + " writes, " +
                   std::to_string(ru.levels) + " levels]",
               ru.to_diagnostics("race(U)"));
  }
}

void lint_one(const Csr<double>& a, const std::string& name,
              const Options& opt, Tally& tally) {
  analysis::LintOptions lopt;
  lopt.check_symmetry = true;
  lopt.check_spd = true;
  lopt.symmetry_tol = opt.sym_tol >= 0.0
                          ? opt.sym_tol
                          : 1e-10 * static_cast<double>(norm_inf(a));
  lopt.max_per_rule = opt.max_diags;
  tally.take(name, analysis::analyze(a, lopt, name));
  if (!opt.factor.empty()) lint_factor(a, opt, tally);
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list-rules") {
      for (const analysis::RuleInfo& r : analysis::rule_catalog())
        std::cout << r.id << "\t" << r.description << "\n";
      return 0;
    } else if (arg == "--rules") {
      for (std::string& f : split_csv(next()))
        opt.rule_filter.push_back(std::move(f));
    } else if (arg == "--suite") {
      opt.suite_ids.push_back(static_cast<index_t>(std::atoi(next())));
    } else if (arg == "--suite-all") {
      opt.suite_all = true;
    } else if (arg == "--factor") {
      opt.factor = next();
    } else if (arg == "--k") {
      opt.k = static_cast<index_t>(std::atoi(next()));
    } else if (arg == "--race") {
      opt.race = true;
    } else if (arg == "--strict") {
      opt.strict = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--sym-tol") {
      opt.sym_tol = std::atof(next());
    } else if (arg == "--max-diags") {
      opt.max_diags = static_cast<std::size_t>(std::atoi(next()));
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      opt.paths.push_back(arg);
    }
  }
  const int sources = (opt.paths.empty() ? 0 : 1) +
                      (opt.suite_ids.empty() ? 0 : 1) + (opt.suite_all ? 1 : 0);
  if (sources != 1) {
    usage(argv[0]);
    return 2;
  }

  Tally tally(opt);
  try {
    if (opt.suite_all) {
      for (index_t id = 0; id < suite_size(); ++id) {
        const GeneratedMatrix g = generate_suite_matrix(id);
        lint_one(g.a, g.spec.name, opt, tally);
      }
    } else if (!opt.suite_ids.empty()) {
      for (const index_t id : opt.suite_ids) {
        const GeneratedMatrix g = generate_suite_matrix(id);
        lint_one(g.a, g.spec.name, opt, tally);
      }
    } else {
      for (const std::string& path : opt.paths)
        lint_one(read_matrix_market(path), path, opt, tally);
    }
  } catch (const spcg::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return tally.exit_code();
}
