// spcg-lint: structural linter CLI for SPCG inputs and factors.
//
// Usage:
//   spcg-lint <matrix.mtx> [options]
//   spcg-lint --suite <id> [options]
//   spcg-lint --suite-all [options]
//   spcg-lint --rules
//
// Options:
//   --factor ilu0|iluk|ilut  factorize and lint the factor, its L/U split,
//                            and the level schedules (static race check)
//   --k K                    fill level for --factor iluk (default 1)
//   --race                   also run the instrumented race-detecting
//                            executor over both schedules
//   --strict                 treat warnings as errors for the exit code
//   --sym-tol T              numeric symmetry tolerance (default 1e-10*|A|)
//   --max-diags N            findings printed per rule (default 8, 0 = all)
//   --quiet                  print only the summary line per object
//
// Exit codes: 0 = clean, 1 = lint errors found, 2 = usage or I/O error.
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/race_detector.h"
#include "gen/suite.h"
#include "precond/ilu.h"
#include "precond/ilut.h"
#include "sparse/io.h"
#include "sparse/norms.h"
#include "support/rng.h"

namespace {

using namespace spcg;

struct Options {
  std::string path;            // .mtx input (mutually exclusive with suite)
  index_t suite_id = -1;       // --suite
  bool suite_all = false;      // --suite-all
  std::string factor;          // "", "ilu0", "iluk", "ilut"
  index_t k = 1;
  bool race = false;
  bool strict = false;
  bool quiet = false;
  double sym_tol = -1.0;  // <0: derive from |A|
  std::size_t max_diags = 8;
};

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (<matrix.mtx> | --suite <id> | --suite-all | --rules)\n"
               "  [--factor ilu0|iluk|ilut] [--k K] [--race] [--strict]\n"
               "  [--sym-tol T] [--max-diags N] [--quiet]\n";
}

/// Print a report (honoring --quiet) and fold it into the running tally.
class Tally {
 public:
  Tally(bool strict, bool quiet, std::size_t max_diags)
      : strict_(strict), quiet_(quiet), max_diags_(max_diags) {}

  void take(const std::string& what, const analysis::Diagnostics& d) {
    errors_ += d.count(analysis::Severity::kError);
    warnings_ += d.count(analysis::Severity::kWarning);
    if (!quiet_ && !d.empty()) std::cout << d.to_string(max_diags_);
    std::cout << what << ": " << d.count(analysis::Severity::kError)
              << " error(s), " << d.count(analysis::Severity::kWarning)
              << " warning(s)\n";
  }

  [[nodiscard]] int exit_code() const {
    if (errors_ > 0) return 1;
    if (strict_ && warnings_ > 0) return 1;
    return 0;
  }

 private:
  bool strict_;
  bool quiet_;
  std::size_t max_diags_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

void lint_factor(const Csr<double>& a, const Options& opt, Tally& tally) {
  IluResult<double> fact;
  if (opt.factor == "ilu0") {
    fact = ilu0(a);
  } else if (opt.factor == "iluk") {
    fact = iluk(a, opt.k);
  } else if (opt.factor == "ilut") {
    fact = ilut(a);
  } else {
    throw Error("unknown --factor '" + opt.factor + "'");
  }
  analysis::LintOptions lopt;
  lopt.max_per_rule = opt.max_diags;
  tally.take("factor(" + opt.factor + ")", analysis::analyze_ilu(fact, lopt));

  const TriangularFactors<double> f = split_lu(fact);
  tally.take("L", analysis::analyze_triangular(f.l, Triangle::kLower,
                                               /*expect_unit_diag=*/true,
                                               lopt, "L"));
  tally.take("U", analysis::analyze_triangular(f.u, Triangle::kUpper,
                                               /*expect_unit_diag=*/false,
                                               lopt, "U"));

  const LevelSchedule ls = level_schedule(f.l, Triangle::kLower);
  const LevelSchedule us = level_schedule(f.u, Triangle::kUpper);
  tally.take("schedule(L)",
             analysis::verify_level_schedule(f.l, ls, Triangle::kLower,
                                             "schedule(L)", opt.max_diags));
  tally.take("schedule(U)",
             analysis::verify_level_schedule(f.u, us, Triangle::kUpper,
                                             "schedule(U)", opt.max_diags));

  if (opt.race) {
    std::vector<double> b(static_cast<std::size_t>(a.rows));
    Rng rng(12345);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
    std::vector<double> x(b.size()), y(b.size());
    const analysis::RaceReport rl = analysis::sptrsv_lower_levels_checked(
        f.l, ls, std::span<const double>(b), std::span<double>(y));
    const analysis::RaceReport ru = analysis::sptrsv_upper_levels_checked(
        f.u, us, std::span<const double>(y), std::span<double>(x));
    tally.take("race(L) [" + std::to_string(rl.reads) + " reads, " +
                   std::to_string(rl.writes) + " writes, " +
                   std::to_string(rl.levels) + " levels]",
               rl.to_diagnostics("race(L)"));
    tally.take("race(U) [" + std::to_string(ru.reads) + " reads, " +
                   std::to_string(ru.writes) + " writes, " +
                   std::to_string(ru.levels) + " levels]",
               ru.to_diagnostics("race(U)"));
  }
}

void lint_one(const Csr<double>& a, const std::string& name,
              const Options& opt, Tally& tally) {
  analysis::LintOptions lopt;
  lopt.check_symmetry = true;
  lopt.check_spd = true;
  lopt.symmetry_tol = opt.sym_tol >= 0.0
                          ? opt.sym_tol
                          : 1e-10 * static_cast<double>(norm_inf(a));
  lopt.max_per_rule = opt.max_diags;
  tally.take(name, analysis::analyze(a, lopt, name));
  if (!opt.factor.empty()) lint_factor(a, opt, tally);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--rules") {
      for (const analysis::RuleInfo& r : analysis::rule_catalog())
        std::cout << r.id << "\t" << r.description << "\n";
      return 0;
    } else if (arg == "--suite") {
      opt.suite_id = static_cast<index_t>(std::atoi(next()));
    } else if (arg == "--suite-all") {
      opt.suite_all = true;
    } else if (arg == "--factor") {
      opt.factor = next();
    } else if (arg == "--k") {
      opt.k = static_cast<index_t>(std::atoi(next()));
    } else if (arg == "--race") {
      opt.race = true;
    } else if (arg == "--strict") {
      opt.strict = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--sym-tol") {
      opt.sym_tol = std::atof(next());
    } else if (arg == "--max-diags") {
      opt.max_diags = static_cast<std::size_t>(std::atoi(next()));
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  const int sources = (opt.path.empty() ? 0 : 1) +
                      (opt.suite_id >= 0 ? 1 : 0) + (opt.suite_all ? 1 : 0);
  if (sources != 1) {
    usage(argv[0]);
    return 2;
  }

  Tally tally(opt.strict, opt.quiet, opt.max_diags);
  try {
    if (opt.suite_all) {
      for (index_t id = 0; id < suite_size(); ++id) {
        const GeneratedMatrix g = generate_suite_matrix(id);
        lint_one(g.a, g.spec.name, opt, tally);
      }
    } else if (opt.suite_id >= 0) {
      const GeneratedMatrix g = generate_suite_matrix(opt.suite_id);
      lint_one(g.a, g.spec.name, opt, tally);
    } else {
      lint_one(read_matrix_market(opt.path), opt.path, opt, tally);
    }
  } catch (const spcg::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return tally.exit_code();
}
