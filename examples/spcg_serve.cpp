// spcg-serve: trace-replay front end for the runtime layer.
//
// Replays a synthetic stream of solve requests (round-robin over a few suite
// matrices, fresh right-hand side per request) through a SolveService and
// reports what the runtime layer buys: setup-cache hit rate, service-side
// latency percentiles, and the measured speedup against the same trace
// re-running the full per-request pipeline (the pre-runtime call pattern).
//
// Usage:
//   spcg-serve [--requests N] [--matrices M] [--workers W] [--seed S]
//              [--fill K] [--deadline-ms D] [--parts P] [--overlap]
//              [--no-compare]
//
//   --requests N     trace length (default 200)
//   --matrices M     distinct suite matrices, ids 0..M-1 (default 8, max 107)
//   --workers W      service worker threads (default 2)
//   --seed S         base RHS seed (default 1)
//   --fill K         use ILU(K) instead of ILU(0) (heavier setup)
//   --deadline-ms D  per-request relative deadline (default: none)
//   --parts P        solve each request distributed over P thread-ranks
//                    (default 1 = serial session)
//   --overlap        use the communication-overlapped distributed body
//   --no-compare     skip the per-request baseline replay
//
// Numeric flags are validated: a non-numeric value, trailing garbage
// ("10x"), or an out-of-range value (zero/negative where a positive count is
// required) is a usage error with a message naming the flag.
//
// Exit codes: 0 = every request ok, 1 = some request failed/expired,
// 2 = usage error.
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "gen/suite.h"
#include "runtime/runtime.h"
#include "support/stats.h"
#include "support/timer.h"

namespace {

using namespace spcg;

struct CliOptions {
  int requests = 200;
  int matrices = 8;
  int workers = 2;
  std::uint64_t seed = 1;
  index_t fill = -1;  // <0: ILU(0)
  int deadline_ms = -1;
  int parts = 1;
  bool overlap = false;
  bool compare = true;
};

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--requests N] [--matrices M] [--workers W] [--seed S]\n"
               "  [--fill K] [--deadline-ms D] [--parts P] [--overlap]"
               " [--no-compare]\n";
}

/// Parse `text` as a base-10 integer in [min, max]. Rejects non-numeric
/// input and trailing garbage ("10x"); reports the offending flag/value on
/// stderr so the usage error is actionable.
bool parse_int(const std::string& flag, const char* text, long min, long max,
               int* dst) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "error: " << flag << " expects an integer, got '" << text
              << "'\n";
    return false;
  }
  if (errno == ERANGE || v < min || v > max) {
    std::cerr << "error: " << flag << " must be in [" << min << ", " << max
              << "], got " << text << "\n";
    return false;
  }
  *dst = static_cast<int>(v);
  return true;
}

bool parse(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    // Per-flag lower bounds make zero/negative counts usage errors with a
    // clear message instead of silent misbehavior downstream.
    auto next_int = [&](long min, long max, int* dst) {
      const char* text = next();
      return text != nullptr && parse_int(arg, text, min, max, dst);
    };
    if (arg == "--requests") {
      if (!next_int(1, 1'000'000, &out->requests)) return false;
    } else if (arg == "--matrices") {
      if (!next_int(1, suite_size(), &out->matrices)) return false;
    } else if (arg == "--workers") {
      if (!next_int(1, 1024, &out->workers)) return false;
    } else if (arg == "--seed") {
      int s = 0;
      if (!next_int(0, std::numeric_limits<int>::max(), &s)) return false;
      out->seed = static_cast<std::uint64_t>(s);
    } else if (arg == "--fill") {
      int k = 0;
      if (!next_int(0, 64, &k)) return false;
      out->fill = static_cast<index_t>(k);
    } else if (arg == "--deadline-ms") {
      if (!next_int(1, std::numeric_limits<int>::max(), &out->deadline_ms))
        return false;
    } else if (arg == "--parts") {
      if (!next_int(1, 256, &out->parts)) return false;
    } else if (arg == "--overlap") {
      out->overlap = true;
    } else if (arg == "--no-compare") {
      out->compare = false;
    } else {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse(argc, argv, &cli)) {
    usage(argv[0]);
    return 2;
  }

  SpcgOptions opt;
  opt.pcg.tolerance = 1e-8;
  if (cli.fill >= 0) {
    opt.preconditioner = PrecondKind::kIluK;
    opt.fill_level = cli.fill;
  }

  // Materialize the working set and the request trace.
  std::vector<std::shared_ptr<const Csr<double>>> matrices;
  for (int m = 0; m < cli.matrices; ++m)
    matrices.push_back(std::make_shared<const Csr<double>>(
        generate_suite_matrix(static_cast<index_t>(m)).a));
  struct Trace {
    int matrix;
    std::vector<double> b;
  };
  std::vector<Trace> trace;
  trace.reserve(static_cast<std::size_t>(cli.requests));
  for (int i = 0; i < cli.requests; ++i) {
    const int m = i % cli.matrices;
    trace.push_back({m, make_rhs(*matrices[static_cast<std::size_t>(m)],
                                 cli.seed + static_cast<std::uint64_t>(i))});
  }
  std::cout << "spcg-serve: " << cli.requests << " requests over "
            << cli.matrices << " matrices, " << cli.workers << " worker(s)"
            << (cli.fill >= 0
                    ? ", ILU(" + std::to_string(cli.fill) + ")"
                    : ", ILU(0)");
  if (cli.parts > 1)
    std::cout << ", " << cli.parts << " parts"
              << (cli.overlap ? " (overlapped)" : "");
  std::cout << "\n\n";

  // Replay through the service.
  WallTimer timer;
  SolveService<double> service(
      {cli.workers, static_cast<std::size_t>(cli.matrices) * 2});
  std::vector<SolveService<double>::Ticket> tickets;
  tickets.reserve(trace.size());
  for (Trace& t : trace) {
    ServiceRequest<double> req;
    req.a = matrices[static_cast<std::size_t>(t.matrix)];
    req.b = t.b;  // keep a copy for the comparison replay
    req.options = opt;
    if (cli.deadline_ms >= 0)
      req.deadline = std::chrono::milliseconds(cli.deadline_ms);
    req.parts = static_cast<index_t>(cli.parts);
    req.overlap_comm = cli.overlap;
    tickets.push_back(service.submit(std::move(req)));
  }

  int ok = 0, fallbacks = 0, not_ok = 0;
  std::vector<double> latency_ms;       // queue + solve, per answered request
  double est_uncached_seconds = 0.0;    // per-request pipeline estimate
  latency_ms.reserve(tickets.size());
  for (auto& t : tickets) {
    const ServiceReply<double> reply = t.reply.get();
    if (reply.status == RequestStatus::kOk) {
      ++ok;
      if (reply.used_fallback) ++fallbacks;
      latency_ms.push_back(1e3 * (reply.queue_seconds + reply.solve_seconds));
      if (reply.setup)
        est_uncached_seconds += reply.setup->build_seconds + reply.solve_seconds;
    } else {
      ++not_ok;
      std::cerr << "request failed: " << to_string(reply.status)
                << (reply.error.empty() ? "" : " (" + reply.error + ")")
                << "\n";
    }
  }
  const double service_seconds = timer.seconds();

  const ServiceStats stats = service.stats();
  std::cout << "telemetry\n";
  for (const CounterSample& s : service.telemetry_snapshot())
    std::cout << "  " << s.name << " = " << s.value << "\n";
  std::cout << "  setup_cache.hit_rate = " << stats.cache.hit_rate() << "\n\n";

  if (latency_ms.empty()) {
    std::cout << "latency: no request was answered\n";
  } else {
    std::cout << "latency (queue + solve, ms): p50 "
              << percentile(latency_ms, 50.0) << ", p90 "
              << percentile(latency_ms, 90.0) << ", p99 "
              << percentile(latency_ms, 99.0) << "\n";
  }
  std::cout << "wall clock: " << service_seconds << " s for " << ok
            << " ok / " << fallbacks << " fallback / " << not_ok
            << " not-ok\n";
  std::cout << "estimated uncached (per-request setup + solve): "
            << est_uncached_seconds << " s\n";

  if (cli.compare) {
    // The pre-runtime call pattern: full pipeline per request.
    timer.reset();
    for (const Trace& t : trace)
      spcg_solve(*matrices[static_cast<std::size_t>(t.matrix)], t.b, opt);
    const double direct_seconds = timer.seconds();
    std::cout << "per-request spcg_solve replay: " << direct_seconds
              << " s -> speedup " << direct_seconds / service_seconds
              << "x\n";
  }
  return not_ok == 0 ? 0 : 1;
}
