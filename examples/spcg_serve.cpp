// spcg-serve: trace-replay front end for the runtime layer.
//
// Replays a synthetic stream of solve requests (round-robin over a few suite
// matrices, fresh right-hand side per request) through a SolveService and
// reports what the runtime layer buys: setup-cache hit rate, service-side
// latency percentiles, and the measured speedup against the same trace
// re-running the full per-request pipeline (the pre-runtime call pattern).
//
// Observability (DESIGN.md §9): --trace-out records every pipeline span
// (setup phases, cache lookups, queue wait vs execute, PCG) into a Chrome
// trace_event JSON file — open it in chrome://tracing or ui.perfetto.dev.
// --metrics-out writes a Prometheus-style text exposition of the service
// telemetry plus trace-derived per-phase totals. --trace-every additionally
// samples per-iteration solver spans (spmv / sptrsv sweeps / reductions).
//
// Usage:
//   spcg-serve [--requests N] [--matrices M] [--workers W] [--seed S]
//              [--fill K] [--deadline-ms D] [--parts P] [--overlap]
//              [--comm-reduced] [--transport KIND] [--inject-latency-us U]
//              [--no-compare] [--trace-out FILE] [--metrics-out FILE]
//              [--trace-every N] [--autotune] [--tune-db FILE]
//
//   --requests N     trace length (default 200)
//   --matrices M     distinct suite matrices, ids 0..M-1 (default 8, max 107)
//   --workers W      service worker threads (default 2)
//   --seed S         base RHS seed (default 1)
//   --fill K         use ILU(K) instead of ILU(0) (heavier setup)
//   --deadline-ms D  per-request relative deadline (default: none)
//   --parts P        solve each request distributed over P thread-ranks
//                    (default 1 = serial session)
//   --overlap        use the communication-overlapped distributed body
//   --comm-reduced   use the communication-reduced body (one fused
//                    all-reduce per iteration); implies a distributed solve
//   --transport K    transport backing the rank collectives: inproc
//                    (default), shm, or socket
//   --inject-latency-us U
//                    add U microseconds of synthetic latency to every
//                    collective (models a slow interconnect)
//   --no-compare     skip the per-request baseline replay
//   --trace-out F    enable tracing; write Chrome trace JSON to F at exit
//   --metrics-out F  write Prometheus text exposition to F at exit
//   --trace-every N  sample per-iteration solver spans every N iterations
//                    (default 0 = off; requires --trace-out)
//   --autotune       let the service's tuner pick each matrix's config
//                    (first request per matrix tunes; the rest hit the DB)
//   --tune-db F      persistent tuning database: loaded before workers
//                    start, saved at exit. A missing file starts empty; a
//                    corrupt or version-mismatched file degrades to
//                    in-memory-only tuning with a warning (the bad file is
//                    left untouched). Serial requests only (--parts 1).
//
// Every --flag also accepts the --flag=value spelling. Output paths are
// validated (opened) before any worker starts, so an unwritable path is a
// usage error instead of a lost trace after the run; --tune-db is probed in
// append mode so the check never truncates an existing database. Numeric
// flags are validated: a non-numeric value, trailing garbage ("10x"), or an
// out-of-range value is a usage error with a message naming the flag.
//
// Exit codes: 0 = every request ok, 1 = some request failed/expired,
// 2 = usage error.
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "gen/suite.h"
#include "runtime/runtime.h"
#include "support/expo.h"
#include "support/telemetry.h"
#include "support/timer.h"
#include "support/trace.h"

namespace {

using namespace spcg;

struct CliOptions {
  int requests = 200;
  int matrices = 8;
  int workers = 2;
  std::uint64_t seed = 1;
  index_t fill = -1;  // <0: ILU(0)
  int deadline_ms = -1;
  int parts = 1;
  bool overlap = false;
  bool comm_reduced = false;
  TransportOptions transport;
  bool compare = true;
  int trace_every = 0;
  std::string trace_out;
  std::string metrics_out;
  bool autotune = false;
  std::string tune_db;
};

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--requests N] [--matrices M] [--workers W] [--seed S]\n"
               "  [--fill K] [--deadline-ms D] [--parts P] [--overlap]"
               " [--comm-reduced]\n"
               "  [--transport inproc|shm|socket] [--inject-latency-us U]"
               " [--no-compare]\n"
               "  [--trace-out FILE] [--metrics-out FILE] [--trace-every N]\n"
               "  [--autotune] [--tune-db FILE]\n";
}

/// Parse `text` as a base-10 integer in [min, max]. Rejects non-numeric
/// input and trailing garbage ("10x"); reports the offending flag/value on
/// stderr so the usage error is actionable.
bool parse_int(const std::string& flag, const char* text, long min, long max,
               int* dst) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "error: " << flag << " expects an integer, got '" << text
              << "'\n";
    return false;
  }
  if (errno == ERANGE || v < min || v > max) {
    std::cerr << "error: " << flag << " must be in [" << min << ", " << max
              << "], got " << text << "\n";
    return false;
  }
  *dst = static_cast<int>(v);
  return true;
}

bool parse(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    // Per-flag lower bounds make zero/negative counts usage errors with a
    // clear message instead of silent misbehavior downstream.
    auto next_int = [&](long min, long max, int* dst) {
      const char* text = next();
      return text != nullptr && parse_int(arg, text, min, max, dst);
    };
    auto next_string = [&](std::string* dst) {
      const char* text = next();
      if (text == nullptr) return false;
      if (*text == '\0') {
        std::cerr << "error: " << arg << " expects a non-empty path\n";
        return false;
      }
      *dst = text;
      return true;
    };
    if (arg == "--requests") {
      if (!next_int(1, 1'000'000, &out->requests)) return false;
    } else if (arg == "--matrices") {
      if (!next_int(1, suite_size(), &out->matrices)) return false;
    } else if (arg == "--workers") {
      if (!next_int(1, 1024, &out->workers)) return false;
    } else if (arg == "--seed") {
      int s = 0;
      if (!next_int(0, std::numeric_limits<int>::max(), &s)) return false;
      out->seed = static_cast<std::uint64_t>(s);
    } else if (arg == "--fill") {
      int k = 0;
      if (!next_int(0, 64, &k)) return false;
      out->fill = static_cast<index_t>(k);
    } else if (arg == "--deadline-ms") {
      if (!next_int(1, std::numeric_limits<int>::max(), &out->deadline_ms))
        return false;
    } else if (arg == "--parts") {
      if (!next_int(1, 256, &out->parts)) return false;
    } else if (arg == "--overlap") {
      out->overlap = true;
    } else if (arg == "--comm-reduced") {
      out->comm_reduced = true;
    } else if (arg == "--transport") {
      const char* text = next();
      if (text == nullptr) return false;
      if (!parse_transport_kind(text, &out->transport.kind)) {
        std::cerr << "error: --transport expects inproc, shm, or socket; "
                     "got '"
                  << text << "'\n";
        return false;
      }
    } else if (arg == "--inject-latency-us") {
      int us = 0;
      if (!next_int(0, 10'000'000, &us)) return false;
      out->transport.inject_latency_us = static_cast<std::uint32_t>(us);
    } else if (arg == "--no-compare") {
      out->compare = false;
    } else if (arg == "--trace-out") {
      if (!next_string(&out->trace_out)) return false;
    } else if (arg == "--metrics-out") {
      if (!next_string(&out->metrics_out)) return false;
    } else if (arg == "--trace-every") {
      if (!next_int(1, std::numeric_limits<int>::max(), &out->trace_every))
        return false;
    } else if (arg == "--autotune") {
      out->autotune = true;
    } else if (arg == "--tune-db") {
      if (!next_string(&out->tune_db)) return false;
    } else {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return false;
    }
  }
  if (out->trace_every > 0 && out->trace_out.empty()) {
    std::cerr << "error: --trace-every requires --trace-out\n";
    return false;
  }
  if (out->autotune && out->parts > 1) {
    std::cerr << "error: --autotune supports serial requests only "
                 "(--parts 1)\n";
    return false;
  }
  if (out->overlap && out->comm_reduced) {
    std::cerr << "error: --overlap and --comm-reduced are mutually "
                 "exclusive bodies\n";
    return false;
  }
  if (out->parts == 1 &&
      (out->comm_reduced || out->transport.kind != TransportKind::kInProcess ||
       out->transport.inject_latency_us > 0)) {
    std::cerr << "error: --comm-reduced / --transport / --inject-latency-us "
                 "require a distributed solve (--parts > 1)\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse(argc, argv, &cli)) {
    usage(argv[0]);
    return 2;
  }

  // Validate output paths before any matrix is generated or worker started:
  // an unwritable --trace-out must not cost a full replay.
  std::ofstream trace_file, metrics_file;
  if (!cli.trace_out.empty()) {
    trace_file.open(cli.trace_out, std::ios::out | std::ios::trunc);
    if (!trace_file.is_open()) {
      std::cerr << "error: --trace-out path '" << cli.trace_out
                << "' is not writable\n";
      return 2;
    }
  }
  if (!cli.metrics_out.empty()) {
    metrics_file.open(cli.metrics_out, std::ios::out | std::ios::trunc);
    if (!metrics_file.is_open()) {
      std::cerr << "error: --metrics-out path '" << cli.metrics_out
                << "' is not writable\n";
      return 2;
    }
  }
  if (!cli.trace_out.empty()) global_trace().set_enabled(true);

  // Tuning database: load before any worker starts, probe writability in
  // append mode (never truncating an existing DB), and degrade to
  // in-memory-only tuning — with the file left untouched — when the document
  // is corrupt or from another schema version.
  auto tune_db = std::make_shared<TuneDb>();
  bool persist_tune_db = false;
  if (!cli.tune_db.empty()) {
    switch (tune_db->load_file(cli.tune_db)) {
      case TuneDbLoad::kOk:
      case TuneDbLoad::kMissing:
        persist_tune_db = true;
        break;
      case TuneDbLoad::kVersionMismatch:
        std::cerr << "warning: --tune-db '" << cli.tune_db
                  << "' has an unsupported schema version; tuning "
                     "in-memory only, file left untouched\n";
        break;
      case TuneDbLoad::kCorrupt:
        std::cerr << "warning: --tune-db '" << cli.tune_db
                  << "' is corrupt; tuning in-memory only, file left "
                     "untouched\n";
        break;
    }
    if (persist_tune_db) {
      std::ofstream probe(cli.tune_db, std::ios::out | std::ios::app);
      if (!probe.is_open()) {
        std::cerr << "error: --tune-db path '" << cli.tune_db
                  << "' is not writable\n";
        return 2;
      }
    }
  }

  SpcgOptions opt;
  opt.pcg.tolerance = 1e-8;
  opt.pcg.trace_every = cli.trace_every;
  if (cli.fill >= 0) {
    opt.preconditioner = PrecondKind::kIluK;
    opt.fill_level = cli.fill;
  }

  // Materialize the working set and the request trace.
  std::vector<std::shared_ptr<const Csr<double>>> matrices;
  for (int m = 0; m < cli.matrices; ++m)
    matrices.push_back(std::make_shared<const Csr<double>>(
        generate_suite_matrix(static_cast<index_t>(m)).a));
  struct Trace {
    int matrix;
    std::vector<double> b;
  };
  std::vector<Trace> trace;
  trace.reserve(static_cast<std::size_t>(cli.requests));
  for (int i = 0; i < cli.requests; ++i) {
    const int m = i % cli.matrices;
    trace.push_back({m, make_rhs(*matrices[static_cast<std::size_t>(m)],
                                 cli.seed + static_cast<std::uint64_t>(i))});
  }
  std::cout << "spcg-serve: " << cli.requests << " requests over "
            << cli.matrices << " matrices, " << cli.workers << " worker(s)"
            << (cli.fill >= 0
                    ? ", ILU(" + std::to_string(cli.fill) + ")"
                    : ", ILU(0)");
  if (cli.parts > 1) {
    std::cout << ", " << cli.parts << " parts";
    if (cli.comm_reduced)
      std::cout << " (comm-reduced)";
    else if (cli.overlap)
      std::cout << " (overlapped)";
    std::cout << ", transport " << to_string(cli.transport.kind);
    if (cli.transport.inject_latency_us > 0)
      std::cout << " +" << cli.transport.inject_latency_us << "us";
  }
  std::cout << "\n\n";

  // Request-scoped latency sketch: the shutdown summary and the Prometheus
  // exposition both read this LogHistogram.
  TelemetryRegistry serve_telemetry;
  LogHistogram& latency_us = serve_telemetry.histogram("request.latency_us");

  // Replay through the service.
  WallTimer timer;
  SolveService<double>::Options service_opt;
  service_opt.workers = cli.workers;
  service_opt.cache_capacity = static_cast<std::size_t>(cli.matrices) * 2;
  service_opt.tune_db = tune_db;
  service_opt.tuner.base = opt;
  SolveService<double> service(service_opt);
  std::vector<SolveService<double>::Ticket> tickets;
  tickets.reserve(trace.size());
  for (Trace& t : trace) {
    ServiceRequest<double> req;
    req.a = matrices[static_cast<std::size_t>(t.matrix)];
    req.b = t.b;  // keep a copy for the comparison replay
    req.options = opt;
    if (cli.deadline_ms >= 0)
      req.deadline = std::chrono::milliseconds(cli.deadline_ms);
    req.parts = static_cast<index_t>(cli.parts);
    req.overlap_comm = cli.overlap;
    req.comm_reduced = cli.comm_reduced;
    req.transport = cli.transport;
    req.autotune = cli.autotune;
    tickets.push_back(service.submit(std::move(req)));
  }

  int ok = 0, fallbacks = 0, not_ok = 0, tune_db_hits = 0;
  double est_uncached_seconds = 0.0;    // per-request pipeline estimate
  for (auto& t : tickets) {
    const ServiceReply<double> reply = t.reply.get();
    if (reply.status == RequestStatus::kOk) {
      ++ok;
      if (reply.used_fallback) ++fallbacks;
      if (reply.tune_db_hit) ++tune_db_hits;
      latency_us.record(static_cast<std::uint64_t>(
          1e6 * (reply.queue_seconds + reply.solve_seconds)));
      if (reply.setup)
        est_uncached_seconds += reply.setup->build_seconds + reply.solve_seconds;
    } else {
      ++not_ok;
      std::cerr << "request failed: " << to_string(reply.status)
                << (reply.error.empty() ? "" : " (" + reply.error + ")")
                << "\n";
    }
  }
  const double service_seconds = timer.seconds();

  const ServiceStats stats = service.stats();
  std::cout << "telemetry\n";
  for (const CounterSample& s : service.telemetry_snapshot())
    std::cout << "  " << s.name << " = " << s.value << "\n";
  std::cout << "  setup_cache.hit_rate = " << stats.cache.hit_rate() << "\n\n";

  // Shutdown latency summary straight off the LogHistogram (percentiles are
  // inclusive upper bounds of the covering power-of-two bucket).
  if (latency_us.count() == 0) {
    std::cout << "latency: no request was answered\n";
  } else {
    std::cout << "latency (queue + solve, us, log-histogram upper bounds): "
              << "count " << latency_us.count() << ", p50 <= "
              << latency_us.percentile(50.0) << ", p99 <= "
              << latency_us.percentile(99.0) << ", max "
              << latency_us.max() << "\n";
  }
  std::cout << "wall clock: " << service_seconds << " s for " << ok
            << " ok / " << fallbacks << " fallback / " << not_ok
            << " not-ok\n";
  std::cout << "estimated uncached (per-request setup + solve): "
            << est_uncached_seconds << " s\n";

  if (cli.autotune) {
    std::cout << "autotune: " << service.tune_db()->size()
              << " matrices in DB, " << tune_db_hits
              << " requests answered from the DB\n";
  }
  if (persist_tune_db) {
    if (tune_db->save_file(cli.tune_db)) {
      std::cout << "tune-db: " << tune_db->size() << " record(s) -> "
                << cli.tune_db << "\n";
    } else {
      std::cerr << "warning: could not write --tune-db '" << cli.tune_db
                << "'\n";
    }
  }

  // Export trace and metrics before the (optional) comparison replay so the
  // trace covers exactly the service run.
  std::vector<TraceEvent> events;
  if (!cli.trace_out.empty()) {
    events = global_trace().drain();
    write_chrome_trace(trace_file, events);
    trace_file.close();
    std::cout << "trace: " << events.size() << " spans -> " << cli.trace_out
              << "\n";
  }
  if (!cli.metrics_out.empty()) {
    std::vector<CounterSample> samples = service.telemetry_snapshot();
    for (const CounterSample& s : serve_telemetry.snapshot())
      samples.push_back(s);
    const std::vector<PhaseTotal> phases = aggregate_phases(events);
    metrics_file << prometheus_text(samples, phases);
    metrics_file.close();
    std::cout << "metrics: " << samples.size() << " samples, "
              << phases.size() << " phases -> " << cli.metrics_out << "\n";
  }

  if (cli.compare) {
    // The pre-runtime call pattern: full pipeline per request. Tracing is
    // switched off so the comparison measures the un-traced pipeline.
    global_trace().set_enabled(false);
    timer.reset();
    for (const Trace& t : trace)
      spcg_solve(*matrices[static_cast<std::size_t>(t.matrix)], t.b, opt);
    const double direct_seconds = timer.seconds();
    std::cout << "per-request spcg_solve replay: " << direct_seconds
              << " s -> speedup " << direct_seconds / service_seconds
              << "x\n";
  }
  return not_ok == 0 ? 0 : 1;
}
