// spcg-dist-worker: one rank of a true multi-process distributed solve.
//
// Launch P copies of this binary — one per rank — and they connect over a
// cross-process Transport (shared memory or TCP) and run the same rank body
// the in-process dist_pcg_solve drives on threads. Every process generates
// the identical Poisson problem from the same flags, so nothing but
// collective payloads (reduction partials, halo slices) crosses the wire.
//
// Socket rendezvous: rank 0 binds --port (a fixed port every rank agrees
// on); workers connect with retry until the collective timeout, so launch
// order does not matter. Shared memory rendezvous: every rank is given the
// same --shm-path; rank 0 creates the segment, workers attach with retry.
//
// Usage:
//   spcg-dist-worker --rank R --parts P --transport shm|socket
//     [--port N] [--host H] [--shm-path PATH] [--nx N] [--seed S]
//     [--body classic|overlapped|comm-reduced] [--inject-latency-us U]
//     [--timeout-s T]
//
//   --rank R          this process's rank in [0, parts)
//   --parts P         total ranks (default 2)
//   --transport K     shm or socket (inproc cannot span processes)
//   --port N          TCP port rank 0 binds and workers dial (socket only,
//                     default 47117)
//   --host H          hub address workers dial (default 127.0.0.1)
//   --shm-path PATH   shared segment path, e.g. /dev/shm/spcg-ci (shm only)
//   --nx N            Poisson grid edge; the system is N*N rows (default 32)
//   --seed S          right-hand-side seed (default 1)
//   --body B          solver body (default comm-reduced)
//   --inject-latency-us U  synthetic per-collective latency
//   --timeout-s T     collective timeout in seconds (default 30)
//
// Every --flag also accepts --flag=value. Exit codes: 0 = this rank
// finished (and, on rank 0, the solve converged), 1 = solve did not
// converge / rank error, 2 = usage error, 3 = aborted by a peer.
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "dist/dist.h"
#include "gen/generators.h"

namespace {

using namespace spcg;

struct CliOptions {
  index_t rank = -1;
  index_t parts = 2;
  int nx = 32;
  std::uint64_t seed = 1;
  DistBody body = DistBody::kCommReduced;
  TransportOptions transport;
};

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --rank R --parts P --transport shm|socket\n"
               "  [--port N] [--host H] [--shm-path PATH] [--nx N]"
               " [--seed S]\n"
               "  [--body classic|overlapped|comm-reduced]"
               " [--inject-latency-us U] [--timeout-s T]\n";
}

bool parse_int(const std::string& flag, const char* text, long min, long max,
               long* dst) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "error: " << flag << " expects an integer, got '" << text
              << "'\n";
    return false;
  }
  if (errno == ERANGE || v < min || v > max) {
    std::cerr << "error: " << flag << " must be in [" << min << ", " << max
              << "], got " << text << "\n";
    return false;
  }
  *dst = v;
  return true;
}

bool parse(int argc, char** argv, CliOptions* out) {
  out->transport.kind = TransportKind::kSocket;
  out->transport.socket_port = 47117;
  bool have_rank = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    auto next_long = [&](long min, long max, long* dst) {
      const char* text = next();
      return text != nullptr && parse_int(arg, text, min, max, dst);
    };
    long v = 0;
    if (arg == "--rank") {
      if (!next_long(0, 4095, &v)) return false;
      out->rank = static_cast<index_t>(v);
      have_rank = true;
    } else if (arg == "--parts") {
      if (!next_long(1, 4096, &v)) return false;
      out->parts = static_cast<index_t>(v);
    } else if (arg == "--nx") {
      if (!next_long(2, 4096, &v)) return false;
      out->nx = static_cast<int>(v);
    } else if (arg == "--seed") {
      if (!next_long(0, std::numeric_limits<long>::max(), &v)) return false;
      out->seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--port") {
      if (!next_long(1, 65535, &v)) return false;
      out->transport.socket_port = static_cast<int>(v);
    } else if (arg == "--host") {
      const char* text = next();
      if (text == nullptr) return false;
      out->transport.socket_host = text;
    } else if (arg == "--shm-path") {
      const char* text = next();
      if (text == nullptr) return false;
      out->transport.shm_path = text;
    } else if (arg == "--transport") {
      const char* text = next();
      if (text == nullptr) return false;
      if (!parse_transport_kind(text, &out->transport.kind)) {
        std::cerr << "error: --transport expects shm or socket, got '"
                  << text << "'\n";
        return false;
      }
    } else if (arg == "--body") {
      const char* text = next();
      if (text == nullptr) return false;
      if (!parse_dist_body(text, &out->body)) {
        std::cerr << "error: --body expects classic, overlapped, or "
                     "comm-reduced; got '"
                  << text << "'\n";
        return false;
      }
    } else if (arg == "--inject-latency-us") {
      if (!next_long(0, 10'000'000, &v)) return false;
      out->transport.inject_latency_us = static_cast<std::uint32_t>(v);
    } else if (arg == "--timeout-s") {
      if (!next_long(1, 86'400, &v)) return false;
      out->transport.collective_timeout_seconds = static_cast<double>(v);
    } else {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return false;
    }
  }
  if (!have_rank) {
    std::cerr << "error: --rank is required\n";
    return false;
  }
  if (out->rank >= out->parts) {
    std::cerr << "error: --rank must be < --parts\n";
    return false;
  }
  if (out->transport.kind == TransportKind::kInProcess) {
    std::cerr << "error: the in-process transport cannot span processes; "
                 "use --transport shm or socket\n";
    return false;
  }
  if (out->transport.kind == TransportKind::kSharedMemory &&
      out->transport.shm_path.empty()) {
    std::cerr << "error: --transport shm requires --shm-path\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse(argc, argv, &cli)) {
    usage(argv[0]);
    return 2;
  }

  // Deterministic problem: every rank builds the identical system and
  // distributed setup from the shared flags.
  const Csr<double> a = gen_poisson2d(static_cast<index_t>(cli.nx),
                                      static_cast<index_t>(cli.nx));
  const std::vector<double> b = make_rhs(a, cli.seed);

  DistOptions dopt;
  dopt.parts = cli.parts;
  dopt.body = cli.body;
  dopt.transport = cli.transport;
  dopt.options.pcg.tolerance = 1e-8;
  const DistSetup<double> setup = dist_setup(a, dopt);
  const std::vector<std::size_t> window_bytes = dist_window_bytes(setup);

  std::cout << "rank " << cli.rank << "/" << cli.parts << ": "
            << to_string(cli.transport.kind) << " transport, "
            << to_string(dopt.effective_body()) << " body, " << a.rows
            << " rows\n";

  try {
    const std::unique_ptr<Transport> transport = make_process_transport(
        cli.rank, cli.parts, std::span<const std::size_t>(window_bytes),
        dopt.transport);
    Communicator<double> comm(transport.get());

    std::vector<double> x(b.size(), 0.0);
    SolveResult<double> res;
    WallTimer timer;
    dist_pcg_rank(comm, setup, std::span<const double>(b), dopt,
                  std::span<double>(x), res);
    const double seconds = timer.seconds();

    const CommStats cs = comm.stats();
    std::cout << "rank " << cli.rank << ": " << cs.allreduces
              << " allreduces, " << cs.halo_exchanges << " halo exchanges, "
              << cs.halo_bytes << " halo bytes, wait " << cs.wait_seconds
              << " s, " << seconds << " s total\n";
    if (cli.rank == 0) {
      std::cout << "rank 0: " << (res.converged() ? "converged" : "FAILED")
                << " in " << res.iterations << " iterations, |r| = "
                << res.final_residual_norm << "\n";
      if (!res.converged()) return 1;
    }
  } catch (const CommAborted& e) {
    std::cerr << "rank " << cli.rank << ": aborted: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "rank " << cli.rank << ": error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
