// spcg-verify: pipeline invariant verifier CLI (analysis/verify.h).
//
// Runs the end-to-end artifact verifier over matrices (Matrix Market files
// or generator-suite entries): sparsification split + drop-ratio bounds,
// ILU factor health + level-K fill closure, triangular split, both level
// schedules, NaN/Inf taint — and, per requested part count, the
// distributed-layer invariants (partition coverage, halo completeness,
// gather-edge soundness, rank-order reduction determinism). With --audit it
// additionally solves each system under the hot-path allocation auditor and
// fails on any steady-state iteration that touched the heap.
//
// Usage:
//   spcg-verify <matrix.mtx>... [options]
//   spcg-verify --suite <id>... [options]
//   spcg-verify --suite-all [options]
//
// Options:
//   --factor ilu0|iluk   preconditioner whose artifacts are verified
//                        (default ilu0)
//   --fill K             fill level for --factor iluk (default 2)
//   --no-sparsify        verify the non-sparsified baseline setup
//   --min-drop R         drop-ratio lower bound, fraction of nnz(A) (default 0)
//   --max-drop R         drop-ratio upper bound (default 0.5)
//   --parts P            also verify the dist layer for P parts (repeatable)
//   --bfs                partition with the BFS-greedy strategy
//   --max-ulps N         reduction-determinism bound for parts > 1
//                        (default 4096; parts == 1 must match bitwise)
//   --audit              solve each input under the allocation auditor;
//                        steady-state iteration allocations become
//                        alloc.steady-state errors (hooks require a build
//                        with -DSPCG_ALLOC_AUDIT=ON)
//   --refactorize        also verify the transient fast path: a numeric-only
//                        refactorization into the retained symbolic setup
//                        must reproduce a cold spcg_setup bitwise
//                        (verify.transient.refactorize)
//   --max-iters N        iteration cap for --audit solves (default 50)
//   --json FILE          machine-readable diagnostics artifact (spcg-verify-v1)
//   --strict             treat warnings as errors for the exit code
//   --max-diags N        findings printed per rule (default 8, 0 = all)
//   --quiet              print only the summary line per object
//
// Exit-code contract:
//   0  every invariant holds on every input
//   1  diagnostics errors (or warnings under --strict), including
//      steady-state allocations under --audit
//   2  usage error, unreadable input, or setup failure
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/verify.h"
#include "gen/suite.h"
#include "runtime/session.h"
#include "sparse/io.h"
#include "support/expo.h"
#include "support/rng.h"

namespace {

using namespace spcg;

struct Options {
  std::vector<std::string> paths;
  std::vector<index_t> suite_ids;
  bool suite_all = false;
  std::string factor = "ilu0";
  index_t fill = 2;
  bool sparsify = true;
  double min_drop = 0.0;
  double max_drop = 0.5;
  std::vector<index_t> parts;
  bool bfs = false;
  std::uint64_t max_ulps = 4096;
  bool audit = false;
  bool refactorize = false;
  std::int32_t max_iters = 50;
  std::string json_path;
  bool strict = false;
  bool quiet = false;
  std::size_t max_diags = 8;
};

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " (<matrix.mtx>... | --suite <id>... | --suite-all)\n"
         "  [--factor ilu0|iluk] [--fill K] [--no-sparsify]\n"
         "  [--min-drop R] [--max-drop R] [--parts P]... [--bfs]\n"
         "  [--max-ulps N] [--audit] [--refactorize] [--max-iters N]\n"
         "  [--json FILE]\n"
         "  [--strict] [--max-diags N] [--quiet]\n";
}

struct Tally {
  std::size_t errors = 0;
  std::size_t warnings = 0;

  void take(const std::string& what, const analysis::Diagnostics& d,
            const Options& opt) {
    errors += d.count(analysis::Severity::kError);
    warnings += d.count(analysis::Severity::kWarning);
    if (!opt.quiet && !d.empty()) std::cout << d.to_string(opt.max_diags);
    std::cout << what << ": " << d.count(analysis::Severity::kError)
              << " error(s), " << d.count(analysis::Severity::kWarning)
              << " warning(s)\n";
  }

  [[nodiscard]] int exit_code(bool strict) const {
    if (errors > 0) return 1;
    if (strict && warnings > 0) return 1;
    return 0;
  }
};

SpcgOptions make_spcg_options(const Options& opt) {
  SpcgOptions sopt;
  sopt.sparsify_enabled = opt.sparsify;
  sopt.preconditioner =
      opt.factor == "iluk" ? PrecondKind::kIluK : PrecondKind::kIlu0;
  sopt.fill_level = opt.fill;
  sopt.pcg.max_iterations = opt.max_iters;
  return sopt;
}

analysis::VerifyOptions make_verify_options(const Options& opt) {
  analysis::VerifyOptions vopt;
  vopt.min_drop_ratio = opt.min_drop;
  vopt.max_drop_ratio = opt.max_drop;
  vopt.reduce_max_ulps = opt.max_ulps;
  vopt.max_per_rule = opt.max_diags;
  return vopt;
}

/// Verify one input end to end; returns every finding merged (for --json).
analysis::Diagnostics verify_one(const Csr<double>& a,
                                 const std::vector<double>& b,
                                 const std::string& name, const Options& opt,
                                 Tally& tally) {
  analysis::Diagnostics all;
  const SpcgOptions sopt = make_spcg_options(opt);
  const analysis::VerifyOptions vopt = make_verify_options(opt);

  const SpcgSetup<double> setup = spcg_setup(a, sopt);
  {
    const analysis::Diagnostics d = analysis::verify_setup(a, setup, sopt, vopt);
    tally.take(name + ": setup", d, opt);
    all.merge(d);
  }
  {
    const analysis::Diagnostics d =
        analysis::taint_scan(std::span<const double>(b), "b", opt.max_diags);
    tally.take(name + ": taint(b)", d, opt);
    all.merge(d);
  }

  if (opt.refactorize) {
    const analysis::Diagnostics d =
        analysis::verify_numeric_refactorize(a, sopt, vopt);
    tally.take(name + ": refactorize", d, opt);
    all.merge(d);
  }

  for (const index_t parts : opt.parts) {
    if (parts < 1 || parts > a.rows) {
      std::cout << name << ": dist(P=" << parts
                << "): skipped (parts out of range for " << a.rows
                << " rows)\n";
      continue;
    }
    PartitionOptions popt;
    if (opt.bfs) popt.strategy = PartitionOptions::Strategy::kBfsGreedy;
    const Partition p = make_partition(a, parts, popt);
    const std::vector<LocalSystem<double>> locals = build_local_systems(a, p);
    analysis::Diagnostics d = analysis::verify_local_systems(a, p, locals, vopt);
    d.merge(analysis::verify_reduction_determinism(
        p, std::span<const double>(b), opt.max_ulps, opt.max_diags));
    tally.take(name + ": dist(P=" + std::to_string(parts) + ")", d, opt);
    all.merge(d);
  }

  if (opt.audit) {
    // Measure a real solve through the runtime session. Tracing and history
    // are off, so steady-state iterations are expected allocation-free;
    // violations surface as alloc.steady-state errors below.
    analysis::AllocAudit::instance().reset();
    analysis::AllocAudit::instance().set_enabled(true);
    const SolverSession<double> session(a, sopt);
    const SessionSolveResult<double> r = session.solve(b);
    analysis::AllocAudit::instance().set_enabled(false);
    analysis::Diagnostics d = analysis::alloc_audit_diagnostics(opt.max_diags);
    d.merge(analysis::taint_scan(std::span<const double>(r.solve.x), "x",
                                 opt.max_diags));
    tally.take(name + ": audit [" + std::to_string(r.solve.iterations) +
                   " iteration(s)]",
               d, opt);
    all.merge(d);
  }
  return all;
}

std::vector<double> rhs_for(const Csr<double>& a) {
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  Rng rng(12345);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  return b;
}

void write_json(const std::string& path,
                const std::vector<std::pair<std::string,
                                            analysis::Diagnostics>>& reports) {
  std::ostringstream os;
  os << "{\"schema\":\"spcg-verify-v1\",\"alloc_audit_compiled\":"
     << (analysis::alloc_audit_compiled() ? "true" : "false") << ",\"inputs\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"name\":" << json_quote(reports[i].first)
       << ",\"errors\":" << reports[i].second.count(analysis::Severity::kError)
       << ",\"warnings\":"
       << reports[i].second.count(analysis::Severity::kWarning)
       << ",\"diagnostics\":"
       << analysis::diagnostics_to_json(reports[i].second) << "}";
  }
  os << "]}";
  const std::string text = os.str();
  if (!is_valid_json(text)) throw Error("internal: invalid JSON artifact");
  std::ofstream out(path);
  if (!out) throw Error("cannot write " + path);
  out << text << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      opt.suite_ids.push_back(static_cast<index_t>(std::atoi(next())));
    } else if (arg == "--suite-all") {
      opt.suite_all = true;
    } else if (arg == "--factor") {
      opt.factor = next();
    } else if (arg == "--fill") {
      opt.fill = static_cast<index_t>(std::atoi(next()));
    } else if (arg == "--no-sparsify") {
      opt.sparsify = false;
    } else if (arg == "--min-drop") {
      opt.min_drop = std::atof(next());
    } else if (arg == "--max-drop") {
      opt.max_drop = std::atof(next());
    } else if (arg == "--parts") {
      opt.parts.push_back(static_cast<index_t>(std::atoi(next())));
    } else if (arg == "--bfs") {
      opt.bfs = true;
    } else if (arg == "--max-ulps") {
      opt.max_ulps = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--audit") {
      opt.audit = true;
    } else if (arg == "--refactorize") {
      opt.refactorize = true;
    } else if (arg == "--max-iters") {
      opt.max_iters = static_cast<std::int32_t>(std::atoi(next()));
    } else if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--strict") {
      opt.strict = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--max-diags") {
      opt.max_diags = static_cast<std::size_t>(std::atoi(next()));
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.factor != "ilu0" && opt.factor != "iluk") {
    usage(argv[0]);
    return 2;
  }
  const int sources = (opt.paths.empty() ? 0 : 1) +
                      (opt.suite_ids.empty() ? 0 : 1) + (opt.suite_all ? 1 : 0);
  if (sources != 1) {
    usage(argv[0]);
    return 2;
  }
  if (opt.audit && !analysis::alloc_audit_compiled())
    std::cout << "note: allocation hooks not compiled; --audit reports no "
                 "counts (build with -DSPCG_ALLOC_AUDIT=ON)\n";

  Tally tally;
  std::vector<std::pair<std::string, analysis::Diagnostics>> reports;
  try {
    auto run = [&](const Csr<double>& a, const std::vector<double>& b,
                   const std::string& name) {
      reports.emplace_back(name, verify_one(a, b, name, opt, tally));
    };
    if (opt.suite_all) {
      for (index_t id = 0; id < suite_size(); ++id) {
        const GeneratedMatrix g = generate_suite_matrix(id);
        run(g.a, g.b, g.spec.name);
      }
    } else if (!opt.suite_ids.empty()) {
      for (const index_t id : opt.suite_ids) {
        const GeneratedMatrix g = generate_suite_matrix(id);
        run(g.a, g.b, g.spec.name);
      }
    } else {
      for (const std::string& path : opt.paths) {
        const Csr<double> a = read_matrix_market(path);
        run(a, rhs_for(a), path);
      }
    }
    if (!opt.json_path.empty()) write_json(opt.json_path, reports);
  } catch (const spcg::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  std::cout << "total: " << tally.errors << " error(s), " << tally.warnings
            << " warning(s) across " << reports.size() << " input(s)\n";
  return tally.exit_code(opt.strict);
}
