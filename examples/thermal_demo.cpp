// Thermal-simulation demo: ILU(K) preconditioning with best-K selection.
//
// Mirrors the paper's §3.3 protocol end to end on a variable-conductivity
// heat problem: pick the best-converging K in {10,20,30,40} for the
// non-sparsified PCG-ILU(K), reuse that K for SPCG, and compare fill,
// wavefronts, iterations and modeled times — including the host-side
// factorization cost that dominates the ILU(K) end-to-end win.
#include <iostream>

#include "core/spcg.h"
#include "gen/generators.h"
#include "gpumodel/cost_model.h"
#include "runtime/session.h"
#include "support/table.h"

int main() {
  using namespace spcg;

  const Csr<double> a = gen_varcoef2d(56, 56, 2.2, 99);
  const std::vector<double> b = make_rhs(a, 99);
  std::cout << "thermal diffusion, n=" << a.rows << ", nnz=" << a.nnz()
            << "\n\n";

  // 1. Paper protocol: best-converging K on the baseline.
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-10;
  opt.preconditioner = PrecondKind::kIluK;
  opt.max_row_fill = 512;
  const std::vector<index_t> ks{2, 3, 5, 8};  // scale-adjusted, see DESIGN.md
  const KSelection<double> sel = select_best_fill_level(a, b, opt, ks);
  std::cout << "best-converging K for the baseline: " << sel.k << " ("
            << sel.baseline.solve.iterations << " iterations)\n\n";

  // 2. SPCG with the same K.
  opt.sparsify_enabled = true;
  opt.fill_level = sel.k;
  const SpcgResult<double> spcg = spcg_solve(a, b, opt);

  // 3. Compare.
  const CostModel dev(device_a100(), 4);
  const CostModel host(device_host_cpu(), 4);
  auto report = [&](const char* name, const SpcgResult<double>& r,
                    double sparsify_s) {
    const double it =
        dev.pcg_iteration(pcg_iteration_shape(a, r.factorization.lu)).seconds;
    const double fact = host.iluk_factorization_host(
                                r.factorization.elimination_ops,
                                r.factorization.lu.nnz())
                            .seconds;
    std::cout << name << ": factor nnz " << r.factorization.lu.nnz()
              << " (fill " << r.factorization.fill_nnz << "), factor wavefronts "
              << r.wavefronts_factor << ", iterations "
              << r.solve.iterations << (r.solve.converged() ? "" : " (DNF)")
              << "\n    modeled: factorization " << fact * 1e3
              << " ms (host), per-iteration " << it * 1e6 << " us (A100)"
              << ", end-to-end "
              << (sparsify_s + fact + r.solve.iterations * it) * 1e3
              << " ms\n";
    return sparsify_s + fact + r.solve.iterations * it;
  };
  const double sp_cost = host.sparsify_host(a.nnz(), 3).seconds;
  const double t_base = report("baseline PCG-ILU(K)", sel.baseline, 0.0);
  const double t_spcg = report("SPCG-ILU(K)       ", spcg, sp_cost);
  std::cout << "\nmodeled end-to-end speedup: " << t_base / t_spcg << "x\n";
  std::cout << "Sparsifying before ILU(K) shrinks the fill, which cuts both "
               "the (host)\nfactorization cost and the triangular-solve "
               "dependence depth — the two effects\nbehind the paper's 3.73x "
               "gmean end-to-end ILU(K) speedup.\n";
  return 0;
}
