// Cross-module integration tests: the full SPCG pipeline against ground
// truth, paper-shaped end-to-end behaviours, and suite-wide smoke coverage.
#include <gtest/gtest.h>

#include <cmath>

#include "core/spcg.h"
#include "gen/suite.h"
#include "gpumodel/cost_model.h"
#include "solver/lanczos.h"
#include "sparse/norms.h"

namespace spcg {
namespace {

/// Dense Cholesky solve as an independent ground truth for small systems.
std::vector<double> dense_spd_solve(const Csr<double>& a,
                                    const std::vector<double>& b) {
  const auto n = static_cast<std::size_t>(a.rows);
  std::vector<double> m(n * n, 0.0);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[i]; p < a.rowptr[i + 1]; ++p) {
      m[static_cast<std::size_t>(i) * n +
        static_cast<std::size_t>(a.colind[static_cast<std::size_t>(p)])] =
          a.values[static_cast<std::size_t>(p)];
    }
  }
  // Cholesky m = L L^T (in place, lower).
  for (std::size_t j = 0; j < n; ++j) {
    double d = m[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= m[j * n + k] * m[j * n + k];
    EXPECT_GT(d, 0.0) << "matrix not SPD at column " << j;
    const double ljj = std::sqrt(d);
    m[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = m[i * n + j];
      for (std::size_t k = 0; k < j; ++k) v -= m[i * n + k] * m[j * n + k];
      m[i * n + j] = v / ljj;
    }
  }
  // Forward/backward substitution.
  std::vector<double> y(n), x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= m[i * n + k] * y[k];
    y[i] = v / m[i * n + i];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= m[k * n + ii] * x[k];
    x[ii] = v / m[ii * n + ii];
  }
  return x;
}

TEST(Integration, SpcgMatchesDenseCholesky) {
  const Csr<double> a = gen_grid_laplacian(12, 12, 1.5, 0.4, 31);
  const std::vector<double> b = make_rhs(a, 31);
  const std::vector<double> x_ref = dense_spd_solve(a, b);

  SpcgOptions opt;
  opt.pcg.tolerance = 1e-13;
  for (const PrecondKind kind : {PrecondKind::kIlu0, PrecondKind::kIluK}) {
    opt.preconditioner = kind;
    const SpcgResult<double> r = spcg_solve(a, b, opt);
    ASSERT_TRUE(r.solve.converged()) << to_string(kind);
    for (std::size_t i = 0; i < x_ref.size(); ++i)
      EXPECT_NEAR(r.solve.x[i], x_ref[i], 1e-8) << to_string(kind);
  }
}

TEST(Integration, SparsificationKeepsConvergenceOnSafeFamilies) {
  // Heavy-tailed families: the dropped mass is tiny, iterations must stay
  // approximately the same (paper §4.3: ~94% of systems).
  for (const index_t id : {13, 14, 61, 62}) {  // circuit + materials entries
    const GeneratedMatrix g = generate_suite_matrix(id);
    SpcgOptions base;
    base.sparsify_enabled = false;
    base.pcg.tolerance = 1e-10;
    SpcgOptions sp = base;
    sp.sparsify_enabled = true;
    const SpcgResult<double> rb = spcg_solve(g.a, std::span<const double>(g.b), base);
    const SpcgResult<double> rs = spcg_solve(g.a, std::span<const double>(g.b), sp);
    ASSERT_TRUE(rb.solve.converged()) << g.spec.name;
    ASSERT_TRUE(rs.solve.converged()) << g.spec.name;
    EXPECT_LE(rs.solve.iterations,
              static_cast<std::int32_t>(rb.solve.iterations * 1.5) + 4)
        << g.spec.name;
  }
}

TEST(Integration, WeakChainCounterExampleCollapsesWavefronts) {
  // The counter-example family demonstrates the paper's motivating effect:
  // sparsification removes near-zero chain entries, collapsing wavefronts
  // and making the modeled per-iteration time drop sharply.
  const GeneratedMatrix g = generate_suite_matrix(32);  // ce_weakchain_2000
  ASSERT_EQ(g.spec.category, "counter-example");

  SpcgOptions base;
  base.sparsify_enabled = false;
  base.pcg.tolerance = 1e-10;
  SpcgOptions sp = base;
  sp.sparsify_enabled = true;
  const SpcgResult<double> rb = spcg_solve(g.a, std::span<const double>(g.b), base);
  const SpcgResult<double> rs = spcg_solve(g.a, std::span<const double>(g.b), sp);

  EXPECT_LT(rs.matrix_wavefronts, rb.matrix_wavefronts / 4);

  const CostModel model(device_a100(), 4);
  const double tb =
      model.pcg_iteration(pcg_iteration_shape(g.a, rb.factorization.lu)).seconds;
  const double ts =
      model.pcg_iteration(pcg_iteration_shape(g.a, rs.factorization.lu)).seconds;
  EXPECT_GT(tb / ts, 2.0);  // strong modeled per-iteration speedup
  ASSERT_TRUE(rs.solve.converged());
}

TEST(Integration, ModeledEndToEndPipelineIsConsistent) {
  const GeneratedMatrix g = generate_suite_matrix(0);  // grid2d_32
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-10;
  const SpcgResult<double> r = spcg_solve(g.a, std::span<const double>(g.b), opt);
  ASSERT_TRUE(r.solve.converged());

  const CostModel dev(device_a100(), 4);
  const CostModel host(device_host_cpu(), 4);
  const OpCost iter =
      dev.pcg_iteration(pcg_iteration_shape(g.a, r.factorization.lu));
  const OpCost fact = dev.ilu0_factorization(
      trisolve_structure(r.factorization.lu, Triangle::kLower),
      r.factorization.elimination_ops);
  const OpCost sp = host.sparsify_host(g.a.nnz(), 3);
  const double e2e =
      sp.seconds + fact.seconds + r.solve.iterations * iter.seconds;
  EXPECT_GT(e2e, 0.0);
  EXPECT_GT(iter.seconds, 0.0);
  EXPECT_GT(fact.seconds, 0.0);
  // Solve phase dominates setup for iterative runs of this size.
  EXPECT_GT(r.solve.iterations * iter.seconds, fact.seconds);
}

TEST(Integration, ConditionNumberDropsForImprovableMatrix) {
  // §5.4-style behaviour: for a matrix whose smallest couplings are noise,
  // sparsified preconditioning must not worsen the preconditioned system.
  const GeneratedMatrix g = generate_suite_matrix(15);  // circuit family
  const SparsifyDecision<double> d = wavefront_aware_sparsify(g.a);
  const EigEstimate before = lanczos_extreme_eigenvalues(g.a, 50);
  const EigEstimate after = lanczos_extreme_eigenvalues(d.chosen.a_hat, 50);
  EXPECT_GT(after.lambda_min, 0.0);
  // Condition number changes by at most a modest factor.
  EXPECT_LT(after.condition_number(),
            before.condition_number() * 3.0 + 10.0);
}

// Suite-wide smoke: every matrix survives the full SPCG-ILU(0) pipeline
// (generation, Algorithm 2, factorization, a few PCG steps) without
// exceptions. Kept cheap by capping iterations.
class SuitePipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(SuitePipelineTest, FullPipelineRuns) {
  const GeneratedMatrix g =
      generate_suite_matrix(static_cast<index_t>(GetParam()));
  SpcgOptions opt;
  opt.pcg.max_iterations = 25;
  opt.pcg.tolerance = 1e-10;
  const SpcgResult<double> r =
      spcg_solve(g.a, std::span<const double>(g.b), opt);
  EXPECT_GE(r.solve.iterations, 0);
  EXPECT_TRUE(std::isfinite(r.solve.final_residual_norm)) << g.spec.name;
  ASSERT_TRUE(r.decision.has_value());
  EXPECT_LE(r.decision->wavefronts_chosen, r.decision->wavefronts_original);
}

INSTANTIATE_TEST_SUITE_P(EveryFourth, SuitePipelineTest,
                         ::testing::Range(0, 107, 4));

}  // namespace
}  // namespace spcg
