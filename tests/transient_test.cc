// Tests for the transient-solve subsystem (src/transient/): the values-only
// numeric refactorization fast path, TransientSession step classification,
// warm starts, step policies, cache adoption, and the zero-allocation
// steady-step guarantee.
//
// Fixture naming is load-bearing: TransientVerify runs under the CI verify
// job (`ctest -R 'AllocAudit|Verify'`) alongside the spcg-verify corpus
// sweep, and TransientAllocAudit runs in the SPCG_ALLOC_AUDIT build.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "analysis/alloc_audit.h"
#include "analysis/verify.h"
#include "core/spcg.h"
#include "gen/generators.h"
#include "runtime/runtime.h"
#include "solver/pipelined_cg.h"
#include "transient/refactorize.h"
#include "transient/step_policy.h"
#include "transient/transient.h"

namespace spcg {
namespace {

// A single candidate ratio makes the sparsification pattern decision
// invariant under uniform off-diagonal scaling: the chosen ratio is forced
// and the drop ordering (by magnitude) is preserved, so a cold setup on the
// scaled matrix picks the same pattern — the precondition for the bitwise
// refactorize gate.
SpcgOptions transient_options(PrecondKind kind = PrecondKind::kIlu0) {
  SpcgOptions opt;
  opt.preconditioner = kind;
  if (kind == PrecondKind::kIluK) opt.fill_level = 1;
  opt.sparsify.ratios = {10.0};
  opt.pcg.tolerance = 1e-10;
  return opt;
}

// Scale every off-diagonal by `factor`, leaving the diagonal alone. Preserves
// the pattern and the off-diagonal magnitude ordering.
Csr<double> scale_offdiag(const Csr<double>& a, double factor) {
  Csr<double> out = a;
  for (index_t i = 0; i < out.rows; ++i)
    for (index_t k = out.rowptr[static_cast<std::size_t>(i)];
         k < out.rowptr[static_cast<std::size_t>(i) + 1]; ++k)
      if (out.colind[static_cast<std::size_t>(k)] != i)
        out.values[static_cast<std::size_t>(k)] *= factor;
  return out;
}

template <class V>
bool bitwise_equal(const std::vector<V>& x, const std::vector<V>& y) {
  return x.size() == y.size() &&
         (x.empty() ||
          std::memcmp(x.data(), y.data(), x.size() * sizeof(V)) == 0);
}

// ---------------------------------------------------------- refactorization

TEST(TransientVerify, RefactorizeReproducesColdSetupIlu0) {
  const Csr<double> a = gen_varcoef2d(20, 20, 1.0, 3);
  const analysis::Diagnostics d =
      analysis::verify_numeric_refactorize(a, transient_options());
  EXPECT_TRUE(d.ok()) << d;
}

TEST(TransientVerify, RefactorizeReproducesColdSetupIluK) {
  const Csr<double> a = gen_varcoef2d(18, 18, 2.0, 5);
  const analysis::Diagnostics d = analysis::verify_numeric_refactorize(
      a, transient_options(PrecondKind::kIluK));
  EXPECT_TRUE(d.ok()) << d;
}

TEST(TransientVerify, RefreshOnNewValuesMatchesColdSetupBitwise) {
  // Same pattern, new values: refreshing the old setup must produce factors
  // bit-identical to a cold setup on the new matrix (single-ratio options +
  // uniform off-diagonal scaling keep the pattern decision fixed).
  const SpcgOptions opt = transient_options();
  const Csr<double> a1 = gen_varcoef2d(16, 16, 1.5, 11);
  const Csr<double> a2 = scale_offdiag(a1, 1.25);

  SpcgSetup<double> live = spcg_setup(a1, opt);
  NumericRefreshWorkspace ws = build_numeric_refresh(live, a1);
  refresh_setup_numerics(live, a2, opt, ws);

  const SpcgSetup<double> cold = spcg_setup(a2, opt);
  EXPECT_TRUE(bitwise_equal(live.factorization.lu.values,
                            cold.factorization.lu.values));
  EXPECT_TRUE(bitwise_equal(live.factorization.diag_pos,
                            cold.factorization.diag_pos));
  EXPECT_TRUE(bitwise_equal(live.factors.l.values, cold.factors.l.values));
  EXPECT_TRUE(bitwise_equal(live.factors.u.values, cold.factors.u.values));
  EXPECT_EQ(live.factorization.breakdown, cold.factorization.breakdown);
}

TEST(TransientVerify, RefreshRejectsShapeMismatch) {
  const SpcgOptions opt = transient_options();
  const Csr<double> a = gen_poisson2d(10, 10);
  SpcgSetup<double> setup = spcg_setup(a, opt);
  NumericRefreshWorkspace ws = build_numeric_refresh(setup, a);
  const Csr<double> other = gen_poisson2d(11, 11);
  EXPECT_THROW(refresh_setup_numerics(setup, other, opt, ws), Error);
}

// ------------------------------------------------------------------ session

TEST(TransientSession, ValuesOnlyUpdateRefactorizesWithoutRebuild) {
  const TransientOptions topt{transient_options(), StepPolicy{}, true};
  Csr<double> a = gen_varcoef2d(16, 16, 1.5, 7);
  const std::vector<double> b = make_rhs(a, 1);

  TransientSession<double> session(a, topt);
  const TransientStepStats s0 = session.step(b);
  EXPECT_TRUE(s0.symbolic_rebuild);
  EXPECT_FALSE(s0.refactorized);

  // Mutate values in place and re-present: numeric refresh only.
  for (double& v : a.values) v *= 1.125;
  session.update_matrix(a);
  const TransientStepStats s1 = session.step(b);
  EXPECT_FALSE(s1.symbolic_rebuild);
  EXPECT_TRUE(s1.refactorized);
  EXPECT_EQ(session.stats().symbolic_rebuilds, 1);
  EXPECT_EQ(session.stats().refactorize_steps, 1);

  // The refreshed factors must equal a cold setup on the mutated matrix.
  const SpcgSetup<double> cold = spcg_setup(a, topt.base);
  EXPECT_TRUE(bitwise_equal(session.setup().factorization.lu.values,
                            cold.factorization.lu.values));
}

TEST(TransientSession, IdenticalMatrixUpdateIsANoOp) {
  const TransientOptions topt{transient_options(), StepPolicy{}, true};
  const Csr<double> a = gen_poisson2d(14, 14);
  const std::vector<double> b = make_rhs(a, 2);
  TransientSession<double> session(a, topt);
  session.step(b);
  session.update_matrix(a);  // bit-identical
  const TransientStepStats s1 = session.step(b);
  EXPECT_FALSE(s1.symbolic_rebuild);
  EXPECT_FALSE(s1.refactorized);
  EXPECT_EQ(s1.refactorize_seconds, 0.0);
}

TEST(TransientSession, PatternChangeTriggersSymbolicRebuild) {
  const TransientOptions topt{transient_options(), StepPolicy{}, true};
  TransientSession<double> session(
      std::make_shared<const Csr<double>>(gen_poisson2d(12, 12)), topt);
  session.step(std::vector<double>(144, 1.0));

  auto wider = std::make_shared<const Csr<double>>(gen_poisson2d(16, 9));
  session.update_matrix(wider);
  const TransientStepStats s1 = session.step(std::vector<double>(144, 1.0));
  EXPECT_TRUE(s1.symbolic_rebuild);
  EXPECT_FALSE(s1.warm_started);  // new unknown layout discards the guess
  EXPECT_EQ(session.stats().symbolic_rebuilds, 2);
}

TEST(TransientSession, WarmStartCutsIterations) {
  // Solving the same system twice: the warm second step starts at the
  // solution and must converge in (far) fewer iterations than the cold one.
  const Csr<double> a = gen_varcoef2d(24, 24, 2.0, 9);
  const std::vector<double> b = make_rhs(a, 3);

  TransientOptions warm{transient_options(), StepPolicy{}, true};
  TransientSession<double> session(a, warm);
  const std::int32_t cold_iters = session.step(b).iterations;
  const TransientStepStats s1 = session.step(b);
  EXPECT_TRUE(s1.warm_started);
  EXPECT_LT(s1.iterations, cold_iters);
  EXPECT_EQ(session.stats().warm_steps, 1);

  TransientOptions off = warm;
  off.warm_start = false;
  TransientSession<double> cold_session(a, off);
  cold_session.step(b);
  const TransientStepStats c1 = cold_session.step(b);
  EXPECT_FALSE(c1.warm_started);
  EXPECT_LT(s1.iterations, c1.iterations);
}

TEST(TransientSession, FixedBudgetRunsExactlyBudgetIterations) {
  TransientOptions topt{transient_options(), StepPolicy{}, true};
  topt.policy.mode = StepMode::kFixedBudget;
  topt.policy.iteration_budget = 6;
  const Csr<double> a = gen_varcoef2d(20, 20, 1.5, 13);
  std::vector<double> b = make_rhs(a, 4);

  TransientSession<double> session(a, topt);
  for (int t = 0; t < 4; ++t) {
    const TransientStepStats s = session.step(b);
    ASSERT_NE(s.status, SolveStatus::kBreakdown);
    EXPECT_EQ(s.iterations, 6) << "step " << t;
    for (double& v : b) v *= 1.01;  // keep the sequence moving
  }
  EXPECT_EQ(session.stats().total_iterations, 24);
}

TEST(TransientSession, AdaptiveModeScalesTargetToInitialResidual) {
  TransientOptions topt{transient_options(), StepPolicy{}, true};
  topt.policy.mode = StepMode::kAdaptive;
  topt.policy.adaptive_reduction = 1e-4;
  topt.policy.adaptive_floor = 1e-14;
  const Csr<double> a = gen_varcoef2d(16, 16, 1.0, 17);
  const std::vector<double> b = make_rhs(a, 5);

  TransientSession<double> session(a, topt);
  const TransientStepStats s0 = session.step(b);
  // Cold step: target = reduction * ||b||.
  EXPECT_NEAR(s0.target_tolerance, 1e-4 * norm2(std::span<const double>(b)),
              1e-12);
  EXPECT_LE(s0.final_residual_norm, s0.target_tolerance * (1.0 + 1e-9));

  // Warm step on the same system: r0 is tiny, so the floor binds and the
  // solve tightens instead of quitting immediately.
  const TransientStepStats s1 = session.step(b);
  EXPECT_TRUE(s1.warm_started);
  EXPECT_GE(s1.target_tolerance, topt.policy.adaptive_floor);
  EXPECT_LT(s1.target_tolerance, s0.target_tolerance);
}

// -------------------------------------------------------------------- cache

TEST(TransientSession, AdoptsExactCacheHit) {
  const SpcgOptions opt = transient_options();
  const Csr<double> a = gen_varcoef2d(16, 16, 1.5, 19);
  auto cache = std::make_shared<SetupCache<double>>(4);
  cache->get_or_build(a, opt);  // pre-warm

  TransientSession<double> session(a, TransientOptions{opt, StepPolicy{}, true},
                                   cache);
  session.step(make_rhs(a, 6));
  EXPECT_EQ(session.stats().cache_hits, 1);
  EXPECT_EQ(session.stats().cache_partial_adoptions, 0);
  EXPECT_EQ(cache->stats().hits, 1u);
}

TEST(TransientSession, AdoptsSamePatternEntryAndRefreshes) {
  const SpcgOptions opt = transient_options();
  const Csr<double> a1 = gen_varcoef2d(16, 16, 1.5, 23);
  const Csr<double> a2 = scale_offdiag(a1, 1.5);
  auto cache = std::make_shared<SetupCache<double>>(4);
  cache->get_or_build(a1, opt);  // donor: same pattern, different values

  TransientSession<double> session(
      a2, TransientOptions{opt, StepPolicy{}, true}, cache);
  session.step(make_rhs(a2, 7));
  EXPECT_EQ(session.stats().cache_hits, 0);
  EXPECT_EQ(session.stats().cache_partial_adoptions, 1);
  EXPECT_GE(cache->stats().partial_hits, 1u);
  // Adopted-and-refreshed setups are NOT inserted back into the cache.
  EXPECT_EQ(cache->stats().entries, 1u);

  // The refreshed adoption must still match a cold setup on a2 bitwise.
  const SpcgSetup<double> cold = spcg_setup(a2, opt);
  EXPECT_TRUE(bitwise_equal(session.setup().factorization.lu.values,
                            cold.factorization.lu.values));
}

// -------------------------------------------------------------- alloc audit

TEST(TransientAllocAudit, SteadyStepIsAllocationFree) {
  if (!analysis::alloc_audit_compiled())
    GTEST_SKIP() << "built without SPCG_ALLOC_AUDIT";
  // The ISSUE gate: after the first (structural) step, a values-only step —
  // numeric refresh + warm-started solve — must not touch the heap.
  const TransientOptions topt{transient_options(), StepPolicy{}, true};
  Csr<double> a = gen_varcoef2d(20, 20, 1.5, 29);
  const std::vector<double> b = make_rhs(a, 8);

  TransientSession<double> session(a, topt);
  session.step(b);  // structural warmup: allowed to allocate

  analysis::AllocAudit::instance().reset();
  analysis::AllocAudit::instance().set_enabled(true);
  for (int t = 0; t < 3; ++t) {
    for (double& v : a.values) v *= 1.02;
    session.update_matrix(a);
    session.step(b);
  }
  analysis::AllocAudit::instance().set_enabled(false);
  EXPECT_EQ(analysis::AllocAudit::instance().steady_violations(), 0u);
  bool found = false;
  for (const auto& s : analysis::AllocAudit::instance().snapshot()) {
    if (s.phase != "transient.step") continue;
    found = true;
    EXPECT_EQ(s.steady_scopes, 3u);
    EXPECT_EQ(s.steady_allocs, 0u)
        << s.steady_violations << " steady step(s) allocated";
  }
  EXPECT_TRUE(found);
  analysis::AllocAudit::instance().reset();
}

// ------------------------------------------------------------- step policy

TEST(TransientStepPolicy, ModesMapToSolveOptions) {
  StepPolicy p;
  p.tolerance = 1e-8;
  p.relative = true;
  p.max_iterations = 123;
  const PcgOptions tol = step_solve_options(p);
  EXPECT_EQ(tol.tolerance, 1e-8);
  EXPECT_TRUE(tol.relative);
  EXPECT_EQ(tol.max_iterations, 123);

  p.mode = StepMode::kFixedBudget;
  p.iteration_budget = 9;
  const PcgOptions fixed = step_solve_options(p);
  EXPECT_EQ(fixed.tolerance, 0.0);
  EXPECT_FALSE(fixed.relative);
  EXPECT_EQ(fixed.max_iterations, 9);

  p.mode = StepMode::kAdaptive;
  p.adaptive_reduction = 1e-6;
  p.adaptive_floor = 1e-12;
  const PcgOptions adapt = step_solve_options(p, /*r0_norm=*/10.0);
  EXPECT_DOUBLE_EQ(adapt.tolerance, 1e-5);
  EXPECT_FALSE(adapt.relative);
  const PcgOptions floored = step_solve_options(p, /*r0_norm=*/1e-9);
  EXPECT_DOUBLE_EQ(floored.tolerance, 1e-12);
}

// -------------------------------------------------------------- warm starts

TEST(TransientSolvers, ExplicitZeroGuessMatchesOmittedGuessBitwise) {
  // x0 = 0 must take the exact historical code path: bitwise-identical
  // iterates to the no-guess overload.
  const Csr<double> a = gen_varcoef2d(16, 16, 1.5, 31);
  const std::vector<double> b = make_rhs(a, 9);
  const SpcgOptions opt = transient_options();
  const SpcgSetup<double> setup = spcg_setup(a, opt);
  const IluApplier<double> m(setup.factors, setup.l_schedule, setup.u_schedule,
                             opt.executor);
  const SolveResult<double> plain = pcg(a, b, m, opt.pcg);
  const SolveResult<double> empty_guess =
      pcg(a, std::span<const double>(b), m, opt.pcg, std::span<const double>{});
  EXPECT_EQ(plain.iterations, empty_guess.iterations);
  EXPECT_TRUE(bitwise_equal(plain.x, empty_guess.x));
}

TEST(TransientSolvers, WarmStartHelpsAllSolverVariants) {
  const Csr<double> a = gen_varcoef2d(20, 20, 2.0, 37);
  const std::vector<double> b = make_rhs(a, 10);
  const SpcgOptions opt = transient_options();
  const SpcgSetup<double> setup = spcg_setup(a, opt);
  const IluApplier<double> m(setup.factors, setup.l_schedule, setup.u_schedule,
                             opt.executor);

  const SolveResult<double> cold = pcg(a, b, m, opt.pcg);
  ASSERT_TRUE(cold.converged());

  const SolveResult<double> warm = pcg(a, std::span<const double>(b), m,
                                       opt.pcg, std::span<const double>(cold.x));
  EXPECT_LT(warm.iterations, cold.iterations);

  const SolveResult<double> pipelined =
      pipelined_pcg(a, std::span<const double>(b), m, opt.pcg,
                    std::span<const double>(cold.x));
  EXPECT_LT(pipelined.iterations, cold.iterations);
  EXPECT_TRUE(pipelined.converged());

  // Batched: one warm column, one cold column.
  const std::vector<std::vector<double>> bs{b, b};
  const std::vector<std::vector<double>> x0s{cold.x, {}};
  const std::vector<SolveResult<double>> batch = pcg_batched(
      a, std::span<const std::vector<double>>(bs), setup.factors,
      setup.l_schedule, setup.u_schedule, opt.pcg,
      std::span<const std::vector<double>>(x0s));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_LT(batch[0].iterations, batch[1].iterations);
  EXPECT_EQ(batch[1].iterations, cold.iterations);
}

}  // namespace
}  // namespace spcg
