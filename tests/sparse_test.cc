// Unit tests for src/sparse: CSR invariants, builders, ops, norms, IO.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/io.h"
#include "sparse/norms.h"
#include "sparse/ops.h"

namespace spcg {
namespace {

Csr<double> small_example() {
  // [ 4 -1  0 ]
  // [-1  4 -2 ]
  // [ 0 -2  5 ]
  return csr_from_triplets<double>(3, 3,
                                   {{0, 0, 4},
                                    {0, 1, -1},
                                    {1, 0, -1},
                                    {1, 1, 4},
                                    {1, 2, -2},
                                    {2, 1, -2},
                                    {2, 2, 5}});
}

TEST(Csr, FromTripletsSortsAndSums) {
  // Duplicates sum; unordered input is sorted.
  const Csr<double> a = csr_from_triplets<double>(
      2, 2, {{1, 1, 2.0}, {0, 0, 1.0}, {1, 1, 3.0}, {0, 1, -1.0}});
  a.validate();
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);  // unstored
}

TEST(Csr, OutOfRangeTripletThrows) {
  EXPECT_THROW(csr_from_triplets<double>(2, 2, {{2, 0, 1.0}}), Error);
  EXPECT_THROW(csr_from_triplets<double>(2, 2, {{0, -1, 1.0}}), Error);
}

TEST(Csr, FindAndAt) {
  const Csr<double> a = small_example();
  EXPECT_GE(a.find(1, 2), 0);
  EXPECT_EQ(a.find(0, 2), -1);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 5.0);
}

TEST(Csr, ValidateCatchesCorruption) {
  Csr<double> a = small_example();
  a.colind[1] = 0;  // duplicate column 0 in row 0
  EXPECT_THROW(a.validate(), Error);
}

TEST(Csr, ValidateCatchesBadRowptr) {
  Csr<double> a = small_example();
  a.rowptr[1] = 5;
  EXPECT_THROW(a.validate(), Error);
}

TEST(Csr, CastPreservesStructure) {
  const Csr<double> a = small_example();
  const Csr<float> f = csr_cast<float>(a);
  f.validate();
  EXPECT_EQ(f.rowptr, a.rowptr);
  EXPECT_EQ(f.colind, a.colind);
  EXPECT_FLOAT_EQ(f.at(1, 2), -2.0f);
}

TEST(Ops, SpmvMatchesDense) {
  const Csr<double> a = small_example();
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y = spmv(a, x);
  EXPECT_DOUBLE_EQ(y[0], 4 * 1 - 1 * 2);
  EXPECT_DOUBLE_EQ(y[1], -1 * 1 + 4 * 2 - 2 * 3);
  EXPECT_DOUBLE_EQ(y[2], -2 * 2 + 5 * 3);
}

TEST(Ops, TransposeInvolution) {
  const Csr<double> a = csr_from_triplets<double>(
      2, 3, {{0, 0, 1}, {0, 2, 2}, {1, 1, 3}});
  const Csr<double> t = transpose(a);
  t.validate();
  EXPECT_EQ(t.rows, 3);
  EXPECT_EQ(t.cols, 2);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 2.0);
  const Csr<double> tt = transpose(t);
  EXPECT_EQ(tt.rowptr, a.rowptr);
  EXPECT_EQ(tt.colind, a.colind);
  EXPECT_EQ(tt.values, a.values);
}

TEST(Ops, ExtractTriangle) {
  const Csr<double> a = small_example();
  const Csr<double> l =
      extract_triangle(a, Triangle::kLower, DiagonalPolicy::kInclude);
  l.validate();
  EXPECT_EQ(l.nnz(), 5);  // 3 diag + 2 strictly lower
  EXPECT_DOUBLE_EQ(l.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(l.at(1, 2), 0.0);
  const Csr<double> u =
      extract_triangle(a, Triangle::kUpper, DiagonalPolicy::kExclude);
  EXPECT_EQ(u.nnz(), 2);
  EXPECT_DOUBLE_EQ(u.at(0, 1), -1.0);
}

TEST(Ops, AddMergesPatterns) {
  const Csr<double> a =
      csr_from_triplets<double>(2, 2, {{0, 0, 1}, {1, 1, 1}});
  const Csr<double> b =
      csr_from_triplets<double>(2, 2, {{0, 1, 2}, {1, 1, 3}});
  const Csr<double> c = add(a, b, 2.0);
  c.validate();
  EXPECT_DOUBLE_EQ(c.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 7.0);
}

TEST(Ops, AddSubtractRoundTrip) {
  const Csr<double> a = small_example();
  const Csr<double> zero = add(a, a, -1.0);
  for (const double v : zero.values) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Ops, DropSmall) {
  const Csr<double> a = small_example();
  const Csr<double> d = drop_small(a, 1.5);
  d.validate();
  EXPECT_EQ(d.nnz(), 5);  // the two -1 entries are gone
  EXPECT_DOUBLE_EQ(d.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(d.at(1, 2), -2.0);
}

TEST(Ops, DiagonalAndChecks) {
  const Csr<double> a = small_example();
  const std::vector<double> d = diagonal(a);
  EXPECT_EQ(d, (std::vector<double>{4, 4, 5}));
  EXPECT_TRUE(is_symmetric(a));
  EXPECT_TRUE(has_positive_diagonal(a));
  EXPECT_TRUE(is_diagonally_dominant(a));
}

TEST(Ops, SymmetryDetectsValueMismatch) {
  Csr<double> a = small_example();
  a.values[static_cast<std::size_t>(a.find(0, 1))] = -1.5;
  EXPECT_FALSE(is_symmetric(a));
  EXPECT_TRUE(is_symmetric(a, /*tol=*/1.0));
}

TEST(Ops, SymmetryDetectsStructureMismatch) {
  const Csr<double> a =
      csr_from_triplets<double>(2, 2, {{0, 0, 1}, {0, 1, 2}, {1, 1, 1}});
  EXPECT_FALSE(is_symmetric(a));
}

TEST(Norms, MatrixNorms) {
  const Csr<double> a = small_example();
  EXPECT_DOUBLE_EQ(norm_inf(a), 7.0);  // row 1 and row 2: |-1|+4+|-2| = 7
  EXPECT_DOUBLE_EQ(norm_one(a), 7.0);  // symmetric
  EXPECT_NEAR(norm_fro(a), std::sqrt(16 + 1 + 1 + 16 + 4 + 4 + 25), 1e-12);
}

TEST(Norms, VectorOps) {
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  const std::vector<double> y{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 11.0);
  std::vector<double> z{1.0, 1.0};
  axpy(2.0, std::span<const double>(y), std::span<double>(z));
  EXPECT_DOUBLE_EQ(z[0], 3.0);
  EXPECT_DOUBLE_EQ(z[1], 5.0);
  xpby(std::span<const double>(y), 10.0, std::span<double>(z));
  EXPECT_DOUBLE_EQ(z[0], 31.0);
  scale(0.5, std::span<double>(z));
  EXPECT_DOUBLE_EQ(z[0], 15.5);
}

TEST(Coo, AddAndConvertSumsDuplicates) {
  Coo<double> coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(2, 1, -4.0);
  coo.add(0, 0, 2.0);  // duplicate sums on conversion
  coo.add_symmetric(0, 2, 5.0);
  coo.add_symmetric(1, 1, 7.0);  // diagonal added once
  EXPECT_EQ(coo.nnz_stored(), 6u);
  const Csr<double> a = coo_to_csr(coo);
  a.validate();
  EXPECT_EQ(a.nnz(), 5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 7.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), -4.0);
}

TEST(Coo, OutOfRangeAddThrows) {
  Coo<double> coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), Error);
  EXPECT_THROW(coo.add(0, -1, 1.0), Error);
}

TEST(Coo, CsrRoundTrip) {
  const Csr<double> a = small_example();
  const Coo<double> coo = csr_to_coo(a);
  EXPECT_EQ(coo.nnz_stored(), static_cast<std::size_t>(a.nnz()));
  const Csr<double> b = coo_to_csr(coo);
  EXPECT_EQ(b.rowptr, a.rowptr);
  EXPECT_EQ(b.colind, a.colind);
  EXPECT_EQ(b.values, a.values);
}

TEST(Io, RoundTripGeneral) {
  const Csr<double> a = small_example();
  std::stringstream ss;
  write_matrix_market(a, ss);
  const Csr<double> b = read_matrix_market(ss);
  b.validate();
  EXPECT_EQ(b.rowptr, a.rowptr);
  EXPECT_EQ(b.colind, a.colind);
  EXPECT_EQ(b.values, a.values);
}

TEST(Io, SymmetricFilesExpand) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% a comment line\n"
     << "3 3 4\n"
     << "1 1 4.0\n2 1 -1.0\n2 2 4.0\n3 3 5.0\n";
  const Csr<double> a = read_matrix_market(ss);
  a.validate();
  EXPECT_EQ(a.nnz(), 5);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
}

TEST(Io, PatternFilesGetUnitValues) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 2\n1 1\n2 2\n";
  const Csr<double> a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(Io, RejectsGarbage) {
  std::stringstream ss("not a matrix market file\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
  std::stringstream complex_field(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  EXPECT_THROW(read_matrix_market(complex_field), Error);
  EXPECT_THROW(read_matrix_market(std::string("/nonexistent/path.mtx")), Error);
}

TEST(Io, RejectsOutOfRangeEntries) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

}  // namespace
}  // namespace spcg
