// Tests for the static-analysis layer: structural linter, schedule race
// detector (static + instrumented executor), and the overflow/zero-diagonal
// hardening that rides along with it.
//
// The corruption tests follow one pattern: take a known-good object from the
// generator suite, break exactly one invariant, and assert the expected rule
// id fires (and that the pristine object stays clean).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/alloc_audit.h"
#include "analysis/lint.h"
#include "analysis/race_detector.h"
#include "analysis/verify.h"
#include "core/sparsify.h"
#include "dist/partition.h"
#include "runtime/session.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "precond/ilu.h"
#include "precond/preconditioner.h"
#include "sparse/norms.h"
#include "sptrsv/sptrsv.h"
#include "support/rng.h"
#include "wavefront/levels.h"

namespace spcg {
namespace {

using analysis::Diagnostics;
using analysis::LintOptions;
using analysis::Severity;

Csr<double> good_matrix() { return gen_poisson2d(8, 8); }

LintOptions full_options() {
  LintOptions opt;
  opt.check_symmetry = true;
  opt.check_spd = true;
  return opt;
}

// --- diagnostics plumbing ---------------------------------------------------

TEST(Diagnostics, CollectsAndQueries) {
  Diagnostics d;
  EXPECT_TRUE(d.ok());
  d.warning("some.rule", "A", "a warning", 3);
  EXPECT_TRUE(d.ok());
  d.error("other.rule", "A", "an error", 1, 2);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.count(Severity::kError), 1u);
  EXPECT_EQ(d.count(Severity::kWarning), 1u);
  EXPECT_TRUE(d.has_rule("some.rule"));
  EXPECT_FALSE(d.has_rule("missing.rule"));
  ASSERT_NE(d.first_error(), nullptr);
  EXPECT_EQ(d.first_error()->rule, "other.rule");
  EXPECT_NE(d.to_string().find("[other.rule]"), std::string::npos);
}

TEST(Diagnostics, RuleCatalogCoversEmittedRules) {
  const auto& catalog = analysis::rule_catalog();
  EXPECT_GE(catalog.size(), 30u);
  EXPECT_TRUE(std::any_of(catalog.begin(), catalog.end(), [](const auto& r) {
    return std::string(r.id) == analysis::kRuleScheduleRace;
  }));
}

// --- clean objects lint clean ----------------------------------------------

TEST(Lint, CleanMatrixHasNoErrors) {
  const Diagnostics d = analysis::analyze(good_matrix(), full_options());
  EXPECT_TRUE(d.ok()) << d;
  EXPECT_EQ(d.count(Severity::kWarning), 0u) << d;
}

TEST(Lint, SuiteSampleLintsClean) {
  for (const index_t id : {index_t{0}, index_t{25}, index_t{60}}) {
    const GeneratedMatrix g = generate_suite_matrix(id);
    LintOptions opt = full_options();
    opt.symmetry_tol = 1e-10 * static_cast<double>(norm_inf(g.a));
    const Diagnostics d = analysis::analyze(g.a, opt, g.spec.name);
    EXPECT_TRUE(d.ok()) << g.spec.name << "\n" << d;
  }
}

// --- corruption class 1: unsorted colind ------------------------------------

TEST(Lint, UnsortedColindFires) {
  Csr<double> a = good_matrix();
  // Swap the first two entries of a row with >= 2 entries.
  std::swap(a.colind[0], a.colind[1]);
  const Diagnostics d = analysis::analyze(a);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleColindSorted)) << d;
}

TEST(Lint, DuplicateColumnFires) {
  Csr<double> a = good_matrix();
  a.colind[1] = a.colind[0];
  const Diagnostics d = analysis::analyze(a);
  EXPECT_TRUE(d.has_rule(analysis::kRuleColindSorted)) << d;
}

// --- corruption class 2: out-of-bounds index --------------------------------

TEST(Lint, OutOfBoundsColumnFires) {
  Csr<double> a = good_matrix();
  a.colind[2] = a.cols + 7;
  const Diagnostics d = analysis::analyze(a);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleColindBounds)) << d;
}

TEST(Lint, NegativeColumnFires) {
  Csr<double> a = good_matrix();
  a.colind[2] = -1;
  EXPECT_TRUE(analysis::analyze(a).has_rule(analysis::kRuleColindBounds));
}

TEST(Lint, BrokenRowptrFires) {
  Csr<double> a = good_matrix();
  std::swap(a.rowptr[2], a.rowptr[3]);  // makes rowptr non-monotone
  const Diagnostics d = analysis::analyze(a);
  EXPECT_TRUE(d.has_rule(analysis::kRuleRowptrMonotone)) << d;

  Csr<double> b = good_matrix();
  b.rowptr.pop_back();
  EXPECT_TRUE(analysis::analyze(b).has_rule(analysis::kRuleRowptrSize));

  Csr<double> c = good_matrix();
  c.rowptr.back() += 1;
  EXPECT_TRUE(analysis::analyze(c).has_rule(analysis::kRuleNnzConsistent));
}

// --- corruption class 3: zero diagonal --------------------------------------

TEST(Lint, ZeroDiagonalInFactorFires) {
  const TriangularFactors<double> f = split_lu(ilu0(good_matrix()));
  Csr<double> u = f.u;
  u.values[static_cast<std::size_t>(u.find(3, 3))] = 0.0;
  const Diagnostics d =
      analysis::analyze_triangular(u, Triangle::kUpper, false, {}, "U");
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleTriDiagNonzero)) << d;
}

TEST(Lint, MissingDiagonalInFactorFires) {
  // A strictly-lower L (no stored diagonal) violates the split_lu convention.
  const Csr<double> l = csr_from_triplets<double>(
      3, 3, {{0, 0, 1.0}, {1, 0, 0.5}, {2, 1, 0.25}});
  const Diagnostics d =
      analysis::analyze_triangular(l, Triangle::kLower, true, {}, "L");
  EXPECT_TRUE(d.has_rule(analysis::kRuleTriDiagPresent)) << d;
}

TEST(Lint, NonPositiveDiagonalOnSpdInputWarns) {
  Csr<double> a = good_matrix();
  a.values[static_cast<std::size_t>(a.find(5, 5))] = -2.0;
  const Diagnostics d = analysis::analyze(a, full_options());
  EXPECT_TRUE(d.has_rule(analysis::kRuleSpdDiagPositive)) << d;
}

// --- corruption class 4: NaN / Inf values -----------------------------------

TEST(Lint, NanValueFires) {
  Csr<double> a = good_matrix();
  a.values[4] = std::numeric_limits<double>::quiet_NaN();
  const Diagnostics d = analysis::analyze(a);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleValuesFinite)) << d;
}

TEST(Lint, InfValueFires) {
  Csr<double> a = good_matrix();
  a.values[4] = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(analysis::analyze(a).has_rule(analysis::kRuleValuesFinite));
}

TEST(Lint, PerRuleCapBoundsReportSize) {
  Csr<double> a = good_matrix();
  for (double& v : a.values) v = std::numeric_limits<double>::quiet_NaN();
  LintOptions opt;
  opt.max_per_rule = 4;
  const Diagnostics d = analysis::analyze(a, opt);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.by_rule(analysis::kRuleValuesFinite).size(), 5u)  // 4 + summary
      << d;
}

// --- corruption class 5: broken level schedule ------------------------------

TEST(RaceDetector, CleanScheduleVerifies) {
  const TriangularFactors<double> f = split_lu(ilu0(good_matrix()));
  const LevelSchedule ls = level_schedule(f.l, Triangle::kLower);
  const Diagnostics d =
      analysis::verify_level_schedule(f.l, ls, Triangle::kLower);
  EXPECT_TRUE(d.ok()) << d;
}

TEST(RaceDetector, SameLevelDependenceFires) {
  const TriangularFactors<double> f = split_lu(ilu0(good_matrix()));
  LevelSchedule ls = level_schedule(f.l, Triangle::kLower);
  ASSERT_GE(ls.num_levels(), 2);
  // Move the first row of level 1 into level 0: it depends on a level-0 row.
  const index_t victim = ls.rows_by_level[static_cast<std::size_t>(
      ls.level_ptr[1])];
  ls.level_of_row[static_cast<std::size_t>(victim)] = 0;
  // Rebuild buckets from the corrupted level_of_row.
  LevelSchedule bad;
  bad.level_of_row = ls.level_of_row;
  const index_t n = static_cast<index_t>(ls.level_of_row.size());
  index_t num_levels = 0;
  for (index_t i = 0; i < n; ++i)
    num_levels = std::max(num_levels,
                          bad.level_of_row[static_cast<std::size_t>(i)] + 1);
  bad.level_ptr.assign(static_cast<std::size_t>(num_levels) + 1, 0);
  for (index_t i = 0; i < n; ++i)
    ++bad.level_ptr[static_cast<std::size_t>(
        bad.level_of_row[static_cast<std::size_t>(i)]) + 1];
  for (std::size_t l = 1; l < bad.level_ptr.size(); ++l)
    bad.level_ptr[l] += bad.level_ptr[l - 1];
  bad.rows_by_level.assign(static_cast<std::size_t>(n), 0);
  std::vector<index_t> cursor(bad.level_ptr.begin(), bad.level_ptr.end() - 1);
  for (index_t i = 0; i < n; ++i) {
    const index_t l = bad.level_of_row[static_cast<std::size_t>(i)];
    bad.rows_by_level[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(l)]++)] = i;
  }

  const Diagnostics d =
      analysis::verify_level_schedule(f.l, bad, Triangle::kLower);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleScheduleRace)) << d;

  // The instrumented executor must observe the same race dynamically.
  std::vector<double> b(static_cast<std::size_t>(f.l.rows), 1.0), x(b.size());
  const analysis::RaceReport report = analysis::sptrsv_lower_levels_checked(
      f.l, bad, std::span<const double>(b), std::span<double>(x));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.to_diagnostics().has_rule(analysis::kRuleRaceOverlap));
}

TEST(RaceDetector, TopologyViolationFires) {
  const TriangularFactors<double> f = split_lu(ilu0(good_matrix()));
  LevelSchedule ls = level_schedule(f.l, Triangle::kLower);
  ASSERT_GE(ls.num_levels(), 2);
  // Swap the bucket contents of levels 0 and 1: level-0 rows now "depend on
  // the future" (their deps sit in the later bucket).
  const index_t n0 = ls.level_size(0);
  const index_t n1 = ls.level_size(1);
  ASSERT_GT(n0, 0);
  ASSERT_GT(n1, 0);
  std::vector<index_t> swapped(ls.rows_by_level);
  std::copy(ls.rows_by_level.begin() + n0,
            ls.rows_by_level.begin() + n0 + n1, swapped.begin());
  std::copy(ls.rows_by_level.begin(), ls.rows_by_level.begin() + n0,
            swapped.begin() + n1);
  LevelSchedule bad = ls;
  bad.rows_by_level = swapped;
  bad.level_ptr[1] = n1;  // keep bucket sizes consistent with the swap
  for (index_t i = 0; i < n1; ++i)
    bad.level_of_row[static_cast<std::size_t>(
        swapped[static_cast<std::size_t>(i)])] = 0;
  for (index_t i = n1; i < n1 + n0; ++i)
    bad.level_of_row[static_cast<std::size_t>(
        swapped[static_cast<std::size_t>(i)])] = 1;

  const Diagnostics d =
      analysis::verify_level_schedule(f.l, bad, Triangle::kLower);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleScheduleTopology)) << d;

  std::vector<double> b(static_cast<std::size_t>(f.l.rows), 1.0), x(b.size());
  const analysis::RaceReport report = analysis::sptrsv_lower_levels_checked(
      f.l, bad, std::span<const double>(b), std::span<double>(x));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.to_diagnostics().has_rule(analysis::kRuleRaceStale));
}

TEST(RaceDetector, BrokenShapeFires) {
  const TriangularFactors<double> f = split_lu(ilu0(good_matrix()));
  LevelSchedule ls = level_schedule(f.l, Triangle::kLower);
  ls.rows_by_level[0] = ls.rows_by_level[1];  // duplicate → not a permutation
  const Diagnostics d =
      analysis::verify_level_schedule(f.l, ls, Triangle::kLower);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleSchedulePermutation)) << d;
}

// --- race detector: positive certification ----------------------------------

TEST(RaceDetector, GeneratedSuiteSchedulesAreRaceFree) {
  // The acceptance property: generated-suite level schedules are provably
  // race-free, both statically and under the instrumented executor.
  for (const index_t id : {index_t{0}, index_t{13}, index_t{42}, index_t{77},
                           index_t{101}}) {
    const GeneratedMatrix g = generate_suite_matrix(id);
    const TriangularFactors<double> f = split_lu(ilu0(g.a));
    const LevelSchedule ls = level_schedule(f.l, Triangle::kLower);
    const LevelSchedule us = level_schedule(f.u, Triangle::kUpper);
    EXPECT_TRUE(analysis::verify_level_schedule(f.l, ls, Triangle::kLower)
                    .ok())
        << g.spec.name;
    EXPECT_TRUE(analysis::verify_level_schedule(f.u, us, Triangle::kUpper)
                    .ok())
        << g.spec.name;

    std::vector<double> b(static_cast<std::size_t>(g.a.rows));
    Rng rng(static_cast<std::uint64_t>(id) * 31 + 7);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
    std::vector<double> y(b.size()), x(b.size());
    const analysis::RaceReport rl = analysis::sptrsv_lower_levels_checked(
        f.l, ls, std::span<const double>(b), std::span<double>(y));
    const analysis::RaceReport ru = analysis::sptrsv_upper_levels_checked(
        f.u, us, std::span<const double>(y), std::span<double>(x));
    EXPECT_TRUE(rl.ok()) << g.spec.name;
    EXPECT_TRUE(ru.ok()) << g.spec.name;
    EXPECT_EQ(rl.writes, static_cast<std::uint64_t>(g.a.rows));
  }
}

TEST(RaceDetector, CheckedExecutorMatchesSerial) {
  const Csr<double> a = gen_grid_laplacian(12, 12, 1.5, 0.4, 3);
  const TriangularFactors<double> f = split_lu(ilu0(a));
  const LevelSchedule ls = level_schedule(f.l, Triangle::kLower);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  Rng rng(99);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  std::vector<double> x_serial(b.size()), x_checked(b.size());
  sptrsv_lower_serial(f.l, std::span<const double>(b),
                      std::span<double>(x_serial));
  const analysis::RaceReport report = analysis::sptrsv_lower_levels_checked(
      f.l, ls, std::span<const double>(b), std::span<double>(x_checked));
  EXPECT_TRUE(report.ok());
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_NEAR(x_serial[i], x_checked[i], 1e-13);
}

TEST(RaceDetector, CheckedExecutorWiredIntoPreconditioner) {
  const Csr<double> a = good_matrix();
  IluPreconditioner<double> serial(ilu0(a), TrsvExec::kSerial);
  IluPreconditioner<double> checked(ilu0(a), TrsvExec::kLevelScheduledChecked);
  std::vector<double> r(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> z1(r.size()), z2(r.size());
  serial.apply(std::span<const double>(r), std::span<double>(z1));
  checked.apply(std::span<const double>(r), std::span<double>(z2));
  for (std::size_t i = 0; i < r.size(); ++i)
    EXPECT_NEAR(z1[i], z2[i], 1e-13);
}

// --- ILU factor and sparsify-split analyses ---------------------------------

TEST(Lint, IluResultLintsCleanAndDetectsDiagPosCorruption) {
  IluResult<double> fact = ilu0(good_matrix());
  EXPECT_TRUE(analysis::analyze_ilu(fact).ok());
  fact.diag_pos[3] = fact.diag_pos[2];  // no longer points at (3,3)
  const Diagnostics d = analysis::analyze_ilu(fact);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleIluDiagPos)) << d;
}

TEST(Lint, SparsifySplitLintsCleanAndDetectsTampering) {
  const Csr<double> a = generate_suite_matrix(5).a;
  SparsifySplit<double> split = sparsify_by_ratio(a, 10.0);
  EXPECT_TRUE(analysis::analyze_sparsify(a, split).ok());

  // Tamper: change one kept value — Â + S no longer partitions A.
  SparsifySplit<double> tampered = split;
  tampered.a_hat.values[0] *= 2.0;
  const Diagnostics d = analysis::analyze_sparsify(a, tampered);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleSparsifyPartition)) << d;
}

// --- satellite hardening ----------------------------------------------------

TEST(Hardening, CheckedDimsRejectsOverflow) {
  EXPECT_EQ(checked_dims(100, 200), 20000);
  EXPECT_EQ(checked_dims(10, 20, 30), 6000);
  EXPECT_THROW(checked_dims(100000, 100000), Error);
  EXPECT_THROW(checked_dims(2000, 2000, 2000), Error);
  EXPECT_THROW(checked_dims(-1, 5), Error);
}

TEST(Hardening, CheckedIndexCastRejectsOverflow) {
  EXPECT_EQ(checked_index_cast(123u), 123);
  EXPECT_THROW(checked_index_cast(kIndexMax + 1), Error);
}

TEST(Hardening, LevelScheduledSolveThrowsOnZeroDiagonal) {
  const TriangularFactors<double> f = split_lu(ilu0(good_matrix()));
  Csr<double> l = f.l;
  l.values[static_cast<std::size_t>(l.find(2, 2))] = 0.0;
  const LevelSchedule ls = level_schedule(l, Triangle::kLower);
  std::vector<double> b(static_cast<std::size_t>(l.rows), 1.0), x(b.size());
  EXPECT_THROW(sptrsv_lower_levels(l, ls, std::span<const double>(b),
                                   std::span<double>(x)),
               Error);
}

// --- pipeline invariant verifier (verify.h) ---------------------------------
//
// Same pattern as the lint corruption tests: build a known-good setup, break
// exactly one invariant, assert the expected stable rule id fires.

TEST(Verify, CleanSetupVerifies) {
  const Csr<double> a = good_matrix();
  SpcgOptions opt;
  EXPECT_TRUE(analysis::verify_setup(a, spcg_setup(a, opt), opt).ok());

  SpcgOptions iluk_opt;
  iluk_opt.preconditioner = PrecondKind::kIluK;
  iluk_opt.fill_level = 2;
  EXPECT_TRUE(
      analysis::verify_setup(a, spcg_setup(a, iluk_opt), iluk_opt).ok());

  SpcgOptions baseline;
  baseline.sparsify_enabled = false;
  EXPECT_TRUE(
      analysis::verify_setup(a, spcg_setup(a, baseline), baseline).ok());
}

TEST(Verify, ZeroedIluDiagonalFires) {
  const Csr<double> a = good_matrix();
  SpcgOptions opt;
  SpcgSetup<double> s = spcg_setup(a, opt);
  const index_t d3 = s.factorization.diag_pos[3];
  s.factorization.lu.values[static_cast<std::size_t>(d3)] = 0.0;
  const Diagnostics d = analysis::verify_setup(a, s, opt);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleIluPivotNonzero)) << d;
}

TEST(Verify, FactorPatternOutsideClosureFires) {
  // An ILU(2) factor verified against options claiming ILU(0): the fill
  // entries lie outside the level-0 closure (= A's own pattern).
  const Csr<double> a = good_matrix();
  SpcgOptions built;
  built.preconditioner = PrecondKind::kIluK;
  built.fill_level = 2;
  const SpcgSetup<double> s = spcg_setup(a, built);
  SpcgOptions claimed = built;
  claimed.preconditioner = PrecondKind::kIlu0;
  const Diagnostics d = analysis::verify_setup(a, s, claimed);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleVerifyClosure)) << d;
}

TEST(Verify, DropRatioOutOfBoundsFires) {
  const Csr<double> a = good_matrix();
  SpcgOptions opt;
  const SpcgSetup<double> s = spcg_setup(a, opt);
  analysis::VerifyOptions vopt;
  vopt.min_drop_ratio = 0.9;  // no sane sparsification drops 90% of A
  const Diagnostics d = analysis::verify_setup(a, s, opt, vopt);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleVerifyDropRatio)) << d;
}

TEST(Verify, PermutedLevelScheduleFires) {
  const Csr<double> a = good_matrix();
  SpcgOptions opt;
  SpcgSetup<double> s = spcg_setup(a, opt);
  // Duplicate a row inside the schedule: no longer a permutation.
  s.l_schedule.rows_by_level[0] = s.l_schedule.rows_by_level[1];
  const Diagnostics d = analysis::verify_setup(a, s, opt);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleSchedulePermutation)) << d;
}

TEST(Verify, InjectedNanCaughtByTaintScan) {
  std::vector<double> b(16, 1.0);
  EXPECT_TRUE(analysis::taint_scan(std::span<const double>(b), "b").ok());
  b[7] = std::numeric_limits<double>::quiet_NaN();
  const Diagnostics d = analysis::taint_scan(std::span<const double>(b), "b");
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleTaintNonFinite)) << d;
  b[7] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(
      analysis::taint_scan(std::span<const double>(b), "b").ok());
}

TEST(Verify, SessionVerifyKnobArmsSetupAndTaintChecks) {
  const Csr<double> a = good_matrix();
  SolverSession<double> session(a, SpcgOptions{});
  EXPECT_FALSE(session.verify_enabled());
  session.enable_verify();
  EXPECT_TRUE(session.verify_enabled());

  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  EXPECT_TRUE(session.solve(b).solve.converged());

  b[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(session.solve(b), Error);
}

// --- distributed-layer verification (satellite: race coverage for dist) ----

TEST(VerifyDist, CleanPartitionAndLocalSystemsVerify) {
  const Csr<double> a = good_matrix();
  for (const index_t parts : {1, 2, 4}) {
    const Partition p = make_partition(a, parts);
    EXPECT_TRUE(analysis::verify_partition(p).ok());
    const auto locals = build_local_systems(a, p);
    EXPECT_TRUE(analysis::verify_local_systems(a, p, locals).ok())
        << "parts = " << parts;
  }
}

TEST(VerifyDist, CorruptedPartitionFires) {
  const Csr<double> a = good_matrix();
  Partition p = make_partition(a, 2);
  p.part_of[0] = 1 - p.part_of[0];  // owned lists no longer agree
  const Diagnostics d = analysis::verify_partition(p);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleDistPartition)) << d;
}

TEST(VerifyDist, IncompleteHaloMapFires) {
  const Csr<double> a = good_matrix();
  const Partition p = make_partition(a, 2);
  auto locals = build_local_systems(a, p);
  ASSERT_FALSE(locals[0].halo.empty());
  // Drop one halo entry: an off-part coupling is no longer covered.
  locals[0].halo.pop_back();
  const Diagnostics d = analysis::verify_local_systems(a, p, locals);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleDistHaloComplete)) << d;
}

TEST(VerifyDist, CorruptedHaloExchangeScheduleFires) {
  // The dist-layer analogue of the schedule race fixtures: a halo-exchange
  // gather schedule that reads the wrong remote slots must be caught.
  const Csr<double> a = good_matrix();
  const Partition p = make_partition(a, 2);
  auto locals = build_local_systems(a, p);
  ASSERT_FALSE(locals[0].edges.empty());
  auto& edge = locals[0].edges[0];
  ASSERT_GE(edge.src_local.size(), 2u);
  std::swap(edge.src_local[0], edge.src_local[1]);  // slots read wrong owner rows
  const Diagnostics d = analysis::verify_local_systems(a, p, locals);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleDistHaloGather)) << d;

  // A slot gathered twice (another slot never) is a distinct corruption of
  // the same schedule and must fire too.
  auto locals2 = build_local_systems(a, p);
  auto& edge2 = locals2[0].edges[0];
  ASSERT_GE(edge2.dst_halo.size(), 2u);
  edge2.dst_halo[1] = edge2.dst_halo[0];
  const Diagnostics d2 = analysis::verify_local_systems(a, p, locals2);
  EXPECT_FALSE(d2.ok());
  EXPECT_TRUE(d2.has_rule(analysis::kRuleDistHaloGather)) << d2;
}

TEST(VerifyDist, CorruptedLocalSplitFires) {
  const Csr<double> a = good_matrix();
  const Partition p = make_partition(a, 2);
  auto locals = build_local_systems(a, p);
  locals[1].a_interior.values[0] += 1.0;  // no longer reproduces A
  const Diagnostics d = analysis::verify_local_systems(a, p, locals);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleDistLocalSplit)) << d;
}

TEST(VerifyDist, ReductionDeterminismMatchesCommContract) {
  const Csr<double> a = good_matrix();
  std::vector<double> c(static_cast<std::size_t>(a.rows));
  for (std::size_t i = 0; i < c.size(); ++i)
    c[i] = 1.0 / (3.0 * static_cast<double>(i) + 1.0);

  // One part: the fold *is* the serial sum — bitwise, so 0 ULPs suffice.
  const Partition p1 = make_partition(a, 1);
  EXPECT_TRUE(analysis::verify_reduction_determinism(
                  p1, std::span<const double>(c), /*max_ulps=*/0)
                  .ok());

  // Four parts: a different (deterministic) association; within a generous
  // ULP bound of the serial sum, but not bitwise equal for these values.
  const Partition p4 = make_partition(a, 4);
  EXPECT_TRUE(analysis::verify_reduction_determinism(
                  p4, std::span<const double>(c), /*max_ulps=*/4096)
                  .ok());
  const Diagnostics strict = analysis::verify_reduction_determinism(
      p4, std::span<const double>(c), /*max_ulps=*/0);
  EXPECT_FALSE(strict.ok());
  EXPECT_TRUE(strict.has_rule(analysis::kRuleDistReduce)) << strict;
}

TEST(VerifyDist, UlpDistanceBasics) {
  EXPECT_EQ(analysis::ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(analysis::ulp_distance(0.0, -0.0), 0u);
  EXPECT_EQ(analysis::ulp_distance(
                1.0, std::nextafter(1.0, 2.0)),
            1u);
  EXPECT_EQ(analysis::ulp_distance(
                1.0, std::numeric_limits<double>::quiet_NaN()),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(analysis::ulp_distance(-1.0, 1.0),
            std::numeric_limits<std::uint64_t>::max());
}

// --- hot-path allocation auditor --------------------------------------------

TEST(AllocAudit, DisabledScopeObservesNothing) {
  analysis::AllocAudit::instance().set_enabled(false);
  const analysis::AllocAuditScope scope("test.disabled");
  std::vector<int> v(100, 1);
  EXPECT_EQ(scope.delta().allocs, 0u);
}

TEST(AllocAudit, DiagnosticsWithoutHooksAreInformational) {
  if (analysis::alloc_audit_compiled()) GTEST_SKIP() << "hooks compiled";
  const Diagnostics d = analysis::alloc_audit_diagnostics();
  EXPECT_TRUE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleAllocSteadyState)) << d;
}

TEST(AllocAudit, ScopeCountsExplicitAllocations) {
  if (!analysis::alloc_audit_compiled())
    GTEST_SKIP() << "built without SPCG_ALLOC_AUDIT";
  analysis::AllocAudit::instance().reset();
  analysis::AllocAudit::instance().set_enabled(true);
  {
    const analysis::AllocAuditScope scope("test.counts");
    const std::vector<int> v(1000, 7);
    EXPECT_GE(scope.delta().allocs, 1u);
    EXPECT_GE(scope.delta().bytes, 1000u * sizeof(int));
  }
  analysis::AllocAudit::instance().set_enabled(false);
  bool found = false;
  for (const auto& s : analysis::AllocAudit::instance().snapshot()) {
    if (s.phase != "test.counts") continue;
    found = true;
    EXPECT_EQ(s.scopes, 1u);
    EXPECT_GE(s.allocs, 1u);
    EXPECT_EQ(s.steady_violations, 0u);  // not a steady scope
  }
  EXPECT_TRUE(found);
  // The per-phase totals surface as telemetry counter samples too.
  std::vector<CounterSample> samples;
  analysis::append_alloc_counters(samples);
  bool sampled = false;
  for (const CounterSample& cs : samples)
    if (cs.name == "alloc.test.counts.allocs" && cs.value >= 1) sampled = true;
  EXPECT_TRUE(sampled);
}

TEST(AllocAudit, SteadyStateViolationBecomesDiagnostic) {
  if (!analysis::alloc_audit_compiled())
    GTEST_SKIP() << "built without SPCG_ALLOC_AUDIT";
  analysis::AllocAudit::instance().reset();
  analysis::AllocAudit::instance().set_enabled(true);
  {
    const analysis::AllocAuditScope scope("test.steady",
                                          /*steady_state=*/true);
    // Direct operator-new call: a paired `new`/`delete` expression may be
    // elided by the optimizer, a plain function call may not.
    void* p = ::operator new(64);
    ::operator delete(p);
  }
  analysis::AllocAudit::instance().set_enabled(false);
  EXPECT_GE(analysis::AllocAudit::instance().steady_violations(), 1u);
  const Diagnostics d = analysis::alloc_audit_diagnostics();
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has_rule(analysis::kRuleAllocSteadyState)) << d;
  analysis::AllocAudit::instance().reset();
}

TEST(AllocAudit, SerialPcgSteadyStateIsAllocationFree) {
  if (!analysis::alloc_audit_compiled())
    GTEST_SKIP() << "built without SPCG_ALLOC_AUDIT";
  // The ROADMAP Open item 4 gate: with tracing and history off, a serial
  // PCG iteration after warmup must not touch the heap.
  const Csr<double> a = good_matrix();
  const SolverSession<double> session(a, SpcgOptions{});
  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  analysis::AllocAudit::instance().reset();
  analysis::AllocAudit::instance().set_enabled(true);
  const auto r = session.solve(b);
  analysis::AllocAudit::instance().set_enabled(false);
  EXPECT_TRUE(r.solve.converged());
  bool found = false;
  for (const auto& s : analysis::AllocAudit::instance().snapshot()) {
    if (s.phase != "pcg.iteration") continue;
    found = true;
    EXPECT_GE(s.steady_scopes, 2u);
    EXPECT_EQ(s.steady_allocs, 0u)
        << s.steady_violations << " steady iteration(s) allocated";
  }
  EXPECT_TRUE(found);
  analysis::AllocAudit::instance().reset();
}

}  // namespace
}  // namespace spcg
