// Unit + property tests for the wavefront (level-set) inspector.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "sparse/csr.h"
#include "wavefront/levels.h"

namespace spcg {
namespace {

// The paper's Figure 1 example: lower-triangular with nnz {a,b,c,d,e,f,g}.
Csr<double> figure1_lower() {
  return csr_from_triplets<double>(4, 4,
                                   {{0, 0, 1.0},   // a
                                    {1, 1, 1.0},   // b
                                    {2, 0, 1.0},   // c
                                    {2, 2, 1.0},   // d
                                    {3, 0, 1.0},   // e
                                    {3, 2, 1.0},   // f
                                    {3, 3, 1.0}}); // g
}

TEST(Levels, Figure1HasThreeWavefronts) {
  const Csr<double> l = figure1_lower();
  const LevelSchedule s = level_schedule(l, Triangle::kLower);
  EXPECT_EQ(s.num_levels(), 3);
  // Wavefront 1: rows 0, 1. Wavefront 2: row 2. Wavefront 3: row 3.
  EXPECT_EQ(s.level_of_row[0], 0);
  EXPECT_EQ(s.level_of_row[1], 0);
  EXPECT_EQ(s.level_of_row[2], 1);
  EXPECT_EQ(s.level_of_row[3], 2);
  EXPECT_EQ(s.level_size(0), 2);
  EXPECT_EQ(s.max_level_size(), 2);
}

TEST(Levels, Figure1SparsifiedHasTwoWavefronts) {
  // Dropping nnz f (edge 2 -> 3) reduces wavefronts from 3 to 2 (Fig. 1d).
  Csr<double> l = csr_from_triplets<double>(4, 4,
                                            {{0, 0, 1.0},
                                             {1, 1, 1.0},
                                             {2, 0, 1.0},
                                             {2, 2, 1.0},
                                             {3, 0, 1.0},
                                             {3, 3, 1.0}});
  EXPECT_EQ(count_wavefronts(l), 2);
}

TEST(Levels, DiagonalMatrixIsOneWavefront) {
  const Csr<double> d = csr_from_triplets<double>(
      5, 5, {{0, 0, 1}, {1, 1, 1}, {2, 2, 1}, {3, 3, 1}, {4, 4, 1}});
  EXPECT_EQ(count_wavefronts(d), 1);
  const LevelSchedule s = level_schedule(d, Triangle::kLower);
  EXPECT_EQ(s.level_size(0), 5);
  EXPECT_DOUBLE_EQ(s.avg_level_size(), 5.0);
}

TEST(Levels, DenseChainIsNWavefronts) {
  // Tridiagonal: every row depends on the previous one.
  std::vector<Triplet<double>> ts;
  const index_t n = 17;
  for (index_t i = 0; i < n; ++i) {
    ts.push_back({i, i, 2.0});
    if (i > 0) ts.push_back({i, i - 1, -1.0});
    if (i + 1 < n) ts.push_back({i, i + 1, -1.0});
  }
  const Csr<double> a = csr_from_triplets<double>(n, n, std::move(ts));
  EXPECT_EQ(count_wavefronts(a), n);
  // Upper schedule mirrors: also n levels, reversed sweep.
  EXPECT_EQ(level_schedule(a, Triangle::kUpper).num_levels(), n);
}

TEST(Levels, UpperLowerSymmetricPatternsMatch) {
  const Csr<double> a = gen_poisson2d(12, 9);
  EXPECT_EQ(level_schedule(a, Triangle::kLower).num_levels(),
            level_schedule(a, Triangle::kUpper).num_levels());
}

TEST(Levels, ScheduleIsValidTopologicalOrder) {
  const Csr<double> a = gen_grid_laplacian(15, 15, 1.0, 0.2, 99);
  const LevelSchedule s = level_schedule(a, Triangle::kLower);
  // Every lower-triangular dependence (i,j), j<i must satisfy
  // level(j) < level(i).
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[i]; p < a.rowptr[i + 1]; ++p) {
      const index_t j = a.colind[static_cast<std::size_t>(p)];
      if (j < i) {
        EXPECT_LT(s.level_of_row[static_cast<std::size_t>(j)],
                  s.level_of_row[static_cast<std::size_t>(i)]);
      }
    }
  }
  // Levels partition the rows.
  index_t total = 0;
  for (index_t l = 0; l < s.num_levels(); ++l) total += s.level_size(l);
  EXPECT_EQ(total, a.rows);
}

TEST(Levels, LevelsAreTight) {
  // Tightness: each row with level > 0 has at least one dependence exactly
  // one level below (otherwise it could have been scheduled earlier).
  const Csr<double> a = gen_mesh_laplacian(13, 11, 0.4, 0.05, 7);
  const LevelSchedule s = level_schedule(a, Triangle::kLower);
  for (index_t i = 0; i < a.rows; ++i) {
    const index_t li = s.level_of_row[static_cast<std::size_t>(i)];
    if (li == 0) continue;
    bool found = false;
    for (index_t p = a.rowptr[i]; p < a.rowptr[i + 1]; ++p) {
      const index_t j = a.colind[static_cast<std::size_t>(p)];
      if (j < i && s.level_of_row[static_cast<std::size_t>(j)] == li - 1)
        found = true;
    }
    EXPECT_TRUE(found) << "row " << i << " is not tight";
  }
}

TEST(Levels, WavefrontReductionPercent) {
  EXPECT_DOUBLE_EQ(wavefront_reduction_percent(100, 80), 20.0);
  EXPECT_DOUBLE_EQ(wavefront_reduction_percent(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(wavefront_reduction_percent(10, 10), 0.0);
}

TEST(Levels, LevelNnzSumsToTriangleNnz) {
  const Csr<double> a = gen_poisson2d(10, 10);
  const LevelSchedule s = level_schedule(a, Triangle::kLower);
  const std::vector<index_t> nnz = level_nnz(a, s, Triangle::kLower);
  index_t total = 0;
  for (const index_t c : nnz) total += c;
  // Lower triangle incl. diagonal of the 5-point stencil.
  const Csr<double> l =
      extract_triangle(a, Triangle::kLower, DiagonalPolicy::kInclude);
  EXPECT_EQ(total, l.nnz());
}

TEST(Levels, EmptyMatrix) {
  const Csr<double> a(0, 0);
  EXPECT_EQ(count_wavefronts(a), 0);
}

// Property sweep: across generator families, the schedule is always a valid
// topological order and sparsifying cannot increase the level count when
// entries are only removed.
class LevelsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LevelsPropertyTest, RemovalNeverIncreasesWavefronts) {
  const int seed = GetParam();
  const Csr<double> a =
      gen_grid_laplacian(20, 20, 2.0, 0.3, static_cast<std::uint64_t>(seed));
  const index_t w0 = count_wavefronts(a);
  // Remove entries below increasing thresholds.
  for (const double tol : {0.02, 0.1, 0.5, 2.0}) {
    Csr<double> dropped = drop_small(a, tol);
    // Keep the diagonal in place for a meaningful comparison.
    for (index_t i = 0; i < a.rows; ++i) {
      if (dropped.find(i, i) < 0) {
        // Diagonal was dropped by the threshold; skip this configuration.
        return;
      }
    }
    EXPECT_LE(count_wavefronts(dropped), w0) << "tol=" << tol;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevelsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace spcg
