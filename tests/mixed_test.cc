// Tests for the mixed-precision preconditioner extension (paper §6.2).
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "core/sparsify.h"
#include "solver/mixed.h"
#include "solver/pcg.h"

namespace spcg {
namespace {

TEST(Mixed, ApplyMatchesDoubleWithinFloatAccuracy) {
  const Csr<double> a = gen_grid_laplacian(12, 12, 1.0, 0.5, 5);
  const IluResult<double> fact = ilu0(a);
  IluPreconditioner<double> full(fact);
  MixedPrecisionIluPreconditioner mixed(fact);

  std::vector<double> r(static_cast<std::size_t>(a.rows));
  Rng rng(9);
  for (double& v : r) v = rng.uniform(-1.0, 1.0);
  std::vector<double> z64(r.size()), z32(r.size());
  full.apply(r, std::span<double>(z64));
  mixed.apply(r, std::span<double>(z32));
  double scale = 0.0;
  for (const double v : z64) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < r.size(); ++i)
    EXPECT_NEAR(z32[i], z64[i], 1e-5 * scale);
}

TEST(Mixed, OuterPcgStillReachesDoubleAccuracy) {
  // The preconditioner only steers the search direction: float apply must
  // not prevent the double-precision outer CG from converging tightly.
  const Csr<double> a = gen_poisson2d(24, 24);
  const std::vector<double> b = make_rhs(a, 3);
  MixedPrecisionIluPreconditioner mixed(ilu0(a));
  PcgOptions opt;
  opt.tolerance = 1e-11;
  const SolveResult<double> r = pcg(a, b, mixed, opt);
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.final_residual_norm, 1e-10);
}

TEST(Mixed, IterationCountNearDoublePrecision) {
  const Csr<double> a = gen_varcoef2d(20, 20, 1.5, 7);
  const std::vector<double> b = make_rhs(a, 7);
  const IluResult<double> fact = ilu0(a);
  PcgOptions opt;
  opt.tolerance = 1e-10;
  IluPreconditioner<double> full(fact);
  MixedPrecisionIluPreconditioner mixed(fact);
  const SolveResult<double> r64 = pcg(a, b, full, opt);
  const SolveResult<double> r32 = pcg(a, b, mixed, opt);
  ASSERT_TRUE(r64.converged());
  ASSERT_TRUE(r32.converged());
  EXPECT_LE(std::abs(r32.iterations - r64.iterations), 5);
}

TEST(Mixed, FactorBytesHalved) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const IluResult<double> fact = ilu0(a);
  MixedPrecisionIluPreconditioner mixed(fact);
  // values float (4B) + indices (4B) vs values double (8B) + indices (4B).
  const std::size_t nnz_total =
      static_cast<std::size_t>(fact.lu.nnz()) + static_cast<std::size_t>(a.rows);
  EXPECT_EQ(mixed.factor_bytes(), nnz_total * (sizeof(float) + sizeof(index_t)));
  EXPECT_EQ(mixed.rows(), a.rows);
}

TEST(Mixed, ComposesWithSparsification) {
  // SPCG + mixed precision: sparsify, factor, store in float, solve.
  const Csr<double> a = gen_grid_laplacian(20, 20, 2.0, 0.4, 11);
  const std::vector<double> b = make_rhs(a, 11);
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a);
  MixedPrecisionIluPreconditioner mixed(ilu0(d.chosen.a_hat));
  PcgOptions opt;
  opt.tolerance = 1e-10;
  const SolveResult<double> r = pcg(a, b, mixed, opt);
  EXPECT_TRUE(r.converged());
}

}  // namespace
}  // namespace spcg
