// Unit + property tests for the sparse triangular solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.h"
#include "precond/ilu.h"
#include "sparse/ops.h"
#include "sptrsv/sptrsv.h"
#include "wavefront/levels.h"

namespace spcg {
namespace {

TEST(Sptrsv, LowerSerialSmall) {
  // L = [2 0; 1 4], b = [2, 9] -> x = [1, 2].
  const Csr<double> l = csr_from_triplets<double>(
      2, 2, {{0, 0, 2.0}, {1, 0, 1.0}, {1, 1, 4.0}});
  std::vector<double> b{2.0, 9.0}, x(2);
  sptrsv_lower_serial(l, std::span<const double>(b), std::span<double>(x));
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Sptrsv, UpperSerialSmall) {
  // U = [2 1; 0 4], b = [4, 8] -> x = [1, 2].
  const Csr<double> u = csr_from_triplets<double>(
      2, 2, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 1, 4.0}});
  std::vector<double> b{4.0, 8.0}, x(2);
  sptrsv_upper_serial(u, std::span<const double>(b), std::span<double>(x));
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Sptrsv, ZeroDiagonalThrows) {
  const Csr<double> l =
      csr_from_triplets<double>(2, 2, {{0, 0, 0.0}, {1, 1, 1.0}});
  std::vector<double> b{1.0, 1.0}, x(2);
  EXPECT_THROW(
      sptrsv_lower_serial(l, std::span<const double>(b), std::span<double>(x)),
      Error);
  const Csr<double> u =
      csr_from_triplets<double>(2, 2, {{0, 0, 1.0}, {1, 1, 0.0}});
  EXPECT_THROW(
      sptrsv_upper_serial(u, std::span<const double>(b), std::span<double>(x)),
      Error);
}

TEST(Sptrsv, InPlaceAliasingWorksForSerial) {
  const Csr<double> l = csr_from_triplets<double>(
      3, 3, {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}, {2, 1, 1.0}, {2, 2, 4.0}});
  std::vector<double> bx{1.0, 3.0, 5.0};
  sptrsv_lower_serial(l, std::span<const double>(bx), std::span<double>(bx));
  EXPECT_DOUBLE_EQ(bx[0], 1.0);
  EXPECT_DOUBLE_EQ(bx[1], 1.0);
  EXPECT_DOUBLE_EQ(bx[2], 1.0);
}

/// Residual check ||L x - b||_inf for a solve.
double lower_residual(const Csr<double>& l, const std::vector<double>& x,
                      const std::vector<double>& b) {
  const std::vector<double> lx = spmv(l, x);
  double r = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    r = std::max(r, std::abs(lx[i] - b[i]));
  return r;
}

class SptrsvPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SptrsvPropertyTest, SerialAndLevelScheduledMatchOnFactors) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Csr<double> a = gen_grid_laplacian(14, 14, 1.5, 0.4, seed);
  const TriangularFactors<double> f = split_lu(ilu0(a));

  std::vector<double> b(static_cast<std::size_t>(a.rows));
  Rng rng(seed * 97 + 1);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);

  std::vector<double> x_serial(b.size()), x_level(b.size());
  sptrsv_lower_serial(f.l, std::span<const double>(b),
                      std::span<double>(x_serial));
  const LevelSchedule ls = level_schedule(f.l, Triangle::kLower);
  sptrsv_lower_levels(f.l, ls, std::span<const double>(b),
                      std::span<double>(x_level));
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_NEAR(x_serial[i], x_level[i], 1e-13);
  EXPECT_LT(lower_residual(f.l, x_serial, b), 1e-10);

  // Upper side.
  std::vector<double> y_serial(b.size()), y_level(b.size());
  sptrsv_upper_serial(f.u, std::span<const double>(b),
                      std::span<double>(y_serial));
  const LevelSchedule us = level_schedule(f.u, Triangle::kUpper);
  sptrsv_upper_levels(f.u, us, std::span<const double>(b),
                      std::span<double>(y_level));
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_NEAR(y_serial[i], y_level[i], 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SptrsvPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Sptrsv, FloatInstantiationRoundTrips) {
  const Csr<double> ad = gen_poisson2d(8, 8);
  const Csr<float> a = csr_cast<float>(ad);
  const TriangularFactors<float> f = split_lu(ilu0(a));
  std::vector<float> b(static_cast<std::size_t>(a.rows), 1.0f);
  std::vector<float> y(b.size()), x(b.size());
  sptrsv_lower_serial(f.l, std::span<const float>(b), std::span<float>(y));
  sptrsv_upper_serial(f.u, std::span<const float>(y), std::span<float>(x));
  // Result must be finite and nonzero.
  for (const float v : x) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(std::abs(x[0]), 0.0f);
}

TEST(Sptrsv, SolveAgainstFullLuRecoversInput) {
  // With complete LU (ILU with huge K), L(Ux) = b solves A x = b exactly.
  const Csr<double> a = gen_varcoef2d(7, 7, 1.0, 11);
  const TriangularFactors<double> f = split_lu(iluk(a, 100));
  std::vector<double> x_true(static_cast<std::size_t>(a.rows));
  for (std::size_t i = 0; i < x_true.size(); ++i)
    x_true[i] = std::cos(static_cast<double>(i));
  const std::vector<double> b = spmv(a, x_true);
  std::vector<double> y(b.size()), x(b.size());
  sptrsv_lower_serial(f.l, std::span<const double>(b), std::span<double>(y));
  sptrsv_upper_serial(f.u, std::span<const double>(y), std::span<double>(x));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

}  // namespace
}  // namespace spcg
