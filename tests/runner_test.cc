// Tests for the shared benchmark runner: record computation, aggregation
// helpers, oracle selection, and the on-disk cache round-trip.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/runner.h"

namespace spcg::bench {
namespace {

RunConfig tiny_config() {
  RunConfig c;
  c.kind = PrecondKind::kIlu0;
  c.max_matrices = 2;
  c.use_cache = false;
  c.max_iterations = 50;
  c.tolerance = 1e-8;
  return c;
}

TEST(Runner, RecordsHaveConsistentStructure) {
  const std::vector<MatrixRecord> recs = run_suite(tiny_config());
  ASSERT_EQ(recs.size(), 2u);
  for (const MatrixRecord& r : recs) {
    EXPECT_GT(r.n, 0);
    EXPECT_GT(r.nnz, 0);
    EXPECT_EQ(r.ratios.size(), 3u);
    EXPECT_GE(r.spcg_choice, 0);
    EXPECT_LT(r.spcg_choice, 3);
    EXPECT_GT(r.spcg_sparsify_model_s, 0.0);
    // Devices present for every variant.
    for (const std::string dev : {"A100", "V100", "EPYC-7413"}) {
      EXPECT_GT(r.baseline.device.at(dev).per_iteration_s, 0.0);
      for (const VariantRecord& v : r.ratios) {
        EXPECT_GT(v.device.at(dev).per_iteration_s, 0.0);
        // Sparsified factors shrink and lose wavefronts (never gain).
        EXPECT_LE(v.factor_nnz, r.baseline.factor_nnz);
        EXPECT_LE(v.factor_wavefronts, r.baseline.factor_wavefronts);
      }
    }
  }
}

TEST(Runner, PerIterationSpeedupAtLeastOneInNoiselessModel) {
  // With identical A-SpMV and a smaller factor, the deterministic model
  // can only speed iterations up (the paper's sub-1.0 cases are noise).
  const std::vector<MatrixRecord> recs = run_suite(tiny_config());
  for (const MatrixRecord& r : recs) {
    for (const VariantRecord& v : r.ratios)
      EXPECT_GE(r.per_iteration_speedup(v, "A100"), 1.0 - 1e-9);
  }
}

TEST(Runner, EndToEndRequiresConvergence) {
  const std::vector<MatrixRecord> recs = run_suite(tiny_config());
  for (const MatrixRecord& r : recs) {
    for (const VariantRecord& v : r.ratios) {
      const auto sp = r.end_to_end_speedup(v, "A100");
      EXPECT_EQ(sp.has_value(), v.converged && r.baseline.converged);
    }
  }
}

TEST(Runner, OracleChoicesAreOptimal) {
  const std::vector<MatrixRecord> recs = run_suite(tiny_config());
  for (const MatrixRecord& r : recs) {
    const int oc = oracle_per_iteration_choice(r, "A100");
    ASSERT_GE(oc, 0);
    const double best =
        r.ratios[static_cast<std::size_t>(oc)].device.at("A100").per_iteration_s;
    for (const VariantRecord& v : r.ratios)
      EXPECT_LE(best, v.device.at("A100").per_iteration_s + 1e-15);
  }
}

TEST(Runner, SummarizeSpeedups) {
  const SpeedupSummary s = summarize_speedups({0.5, 1.0, 2.0});
  EXPECT_NEAR(s.gmean, 1.0, 1e-12);
  EXPECT_NEAR(s.pct_accelerated, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(summarize_speedups({}).count, 0u);
}

TEST(Runner, CacheRoundTripsRecords) {
  const std::string dir = "/tmp/spcg_runner_test_cache";
  std::filesystem::remove_all(dir);
  setenv("SPCG_CACHE_DIR", dir.c_str(), 1);
  RunConfig c = tiny_config();
  c.use_cache = true;
  const std::vector<MatrixRecord> first = run_suite(c);
  const std::vector<MatrixRecord> second = run_suite(c);  // from cache
  unsetenv("SPCG_CACHE_DIR");
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    const MatrixRecord& a = first[i];
    const MatrixRecord& b = second[i];
    EXPECT_EQ(a.spec.name, b.spec.name);
    EXPECT_EQ(a.spec.category, b.spec.category);
    EXPECT_EQ(a.nnz, b.nnz);
    EXPECT_EQ(a.spcg_choice, b.spcg_choice);
    EXPECT_EQ(a.spcg_outcome, b.spcg_outcome);
    EXPECT_EQ(a.baseline.iterations, b.baseline.iterations);
    EXPECT_EQ(a.baseline.converged, b.baseline.converged);
    for (std::size_t v = 0; v < a.ratios.size(); ++v) {
      EXPECT_EQ(a.ratios[v].label, b.ratios[v].label);
      EXPECT_EQ(a.ratios[v].iterations, b.ratios[v].iterations);
      EXPECT_DOUBLE_EQ(
          a.ratios[v].device.at("A100").per_iteration_s,
          b.ratios[v].device.at("A100").per_iteration_s);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(Runner, ConfigFingerprintDistinguishesSettings) {
  RunConfig a = tiny_config();
  RunConfig b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.kind = PrecondKind::kIluK;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  RunConfig c = a;
  c.tau = 2.0;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  RunConfig d = a;
  d.ratios = {1.0, 5.0, 10.0, 20.0};
  EXPECT_NE(a.fingerprint(), d.fingerprint());
}

TEST(Runner, EnvOverridesApply) {
  setenv("SPCG_FAST", "1", 1);
  setenv("SPCG_NO_CACHE", "1", 1);
  const RunConfig c = apply_env_overrides(RunConfig{});
  unsetenv("SPCG_FAST");
  unsetenv("SPCG_NO_CACHE");
  EXPECT_EQ(c.max_matrices, 24);
  EXPECT_FALSE(c.use_cache);
}

TEST(Runner, IlukSelectsKFromCandidates) {
  RunConfig c = tiny_config();
  c.kind = PrecondKind::kIluK;
  c.k_candidates = {2, 5};
  c.max_matrices = 1;
  const std::vector<MatrixRecord> recs = run_suite(c);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].chosen_k == 2 || recs[0].chosen_k == 5);
  EXPECT_GE(recs[0].baseline.factor_nnz, recs[0].nnz);  // fill-in happened
}

}  // namespace
}  // namespace spcg::bench
