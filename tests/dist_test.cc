// Tests for the distributed layer (src/dist/): partition invariants and
// exact matrix reconstruction, communicator determinism and abort handling
// (DistComm/DistHalo run real concurrent ranks — the TSan CI job targets
// them), 0-ULP distributed reductions against the serial oracle, the
// distributed solver's bitwise P=1 equality plus multi-part convergence,
// the transport conformance suite (the same determinism / abort / halo /
// bitwise contracts run against every Transport backing), and a forked
// two-process socket smoke test.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <exception>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dist/dist.h"
#include "gen/generators.h"
#include "gen/suite.h"
#include "runtime/runtime.h"
#include "solver/pipelined_cg.h"
#include "sparse/reorder.h"
#include "support/rng.h"

namespace spcg {
namespace {

SpcgOptions fast_options() {
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-8;
  opt.pcg.max_iterations = 2000;
  return opt;
}

// ---------------------------------------------------------------------------
// DistPartition

TEST(DistPartition, ContiguousCoversEveryRowOnceAndBalances) {
  const Csr<double> a = gen_poisson2d(20, 20);
  const Partition p = make_partition(a, 4);
  EXPECT_NO_THROW(validate_partition(p));
  const PartitionStats s = partition_stats(a, p);
  EXPECT_LE(s.max_rows - s.min_rows, 1);
  EXPECT_GT(s.edge_cut, 0);
  EXPECT_LE(s.imbalance, 1.0 + 1e-9);
}

TEST(DistPartition, BfsGreedyCoversDisconnectedGraph) {
  // Two disjoint chains (8 + 5 vertices); BFS growing must seed both
  // components and still assign every row exactly once.
  std::vector<Triplet<double>> ts;
  auto chain = [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      ts.push_back({i, i, 4.0});
      if (i + 1 < hi) {
        ts.push_back({i, i + 1, -1.0});
        ts.push_back({i + 1, i, -1.0});
      }
    }
  };
  chain(0, 8);
  chain(8, 13);
  const Csr<double> a = csr_from_triplets(13, 13, std::move(ts));
  PartitionOptions opt;
  opt.strategy = PartitionOptions::Strategy::kBfsGreedy;
  const Partition p = make_partition(a, 3, opt);
  EXPECT_NO_THROW(validate_partition(p));
  const PartitionStats s = partition_stats(a, p);
  EXPECT_GE(s.min_rows, 1);
}

TEST(DistPartition, RcmPrepassCutsFewerEdgesOnShuffledOrdering) {
  const Csr<double> natural = gen_poisson2d(16, 16);
  const Csr<double> shuffled =
      permute_symmetric(natural, random_permutation(natural.rows, 7));
  PartitionOptions plain;
  PartitionOptions rcm;
  rcm.rcm_prepass = true;
  const index_t cut_plain =
      partition_stats(shuffled, make_partition(shuffled, 4, plain)).edge_cut;
  const index_t cut_rcm =
      partition_stats(shuffled, make_partition(shuffled, 4, rcm)).edge_cut;
  EXPECT_LT(cut_rcm, cut_plain);
}

TEST(DistPartition, LocalSystemsReconstructTheMatrixExactly) {
  const Csr<double> a = gen_poisson2d(9, 7);
  for (const index_t parts : {1, 2, 3, 5}) {
    const Partition p = make_partition(a, parts);
    const auto locals = build_local_systems(a, p);
    ASSERT_EQ(static_cast<index_t>(locals.size()), parts);
    index_t rows_seen = 0;
    for (const LocalSystem<double>& loc : locals) {
      rows_seen += loc.rows();
      for (index_t l = 0; l < loc.rows(); ++l) {
        const index_t g = loc.owned[static_cast<std::size_t>(l)];
        // Merge interior (owned columns) and boundary (halo columns) entries
        // back to global indices and compare against A's row bit for bit.
        std::vector<std::pair<index_t, double>> entries;
        for (index_t q = loc.a_interior.rowptr[static_cast<std::size_t>(l)];
             q < loc.a_interior.rowptr[static_cast<std::size_t>(l) + 1]; ++q) {
          entries.emplace_back(
              loc.owned[static_cast<std::size_t>(
                  loc.a_interior.colind[static_cast<std::size_t>(q)])],
              loc.a_interior.values[static_cast<std::size_t>(q)]);
        }
        for (index_t q = loc.a_boundary.rowptr[static_cast<std::size_t>(l)];
             q < loc.a_boundary.rowptr[static_cast<std::size_t>(l) + 1]; ++q) {
          entries.emplace_back(
              loc.halo[static_cast<std::size_t>(
                  loc.a_boundary.colind[static_cast<std::size_t>(q)])],
              loc.a_boundary.values[static_cast<std::size_t>(q)]);
        }
        std::sort(entries.begin(), entries.end());
        const index_t begin = a.rowptr[static_cast<std::size_t>(g)];
        const index_t end = a.rowptr[static_cast<std::size_t>(g) + 1];
        ASSERT_EQ(static_cast<index_t>(entries.size()), end - begin);
        for (index_t q = begin; q < end; ++q) {
          EXPECT_EQ(entries[static_cast<std::size_t>(q - begin)].first,
                    a.colind[static_cast<std::size_t>(q)]);
          EXPECT_EQ(entries[static_cast<std::size_t>(q - begin)].second,
                    a.values[static_cast<std::size_t>(q)]);
        }
      }
    }
    EXPECT_EQ(rows_seen, a.rows);
  }
}

TEST(DistPartition, SinglePartInteriorIsBitwiseTheMatrix) {
  const Csr<double> a = gen_poisson2d(8, 8);
  const auto locals = build_local_systems(a, make_partition(a, 1));
  ASSERT_EQ(locals.size(), 1u);
  EXPECT_EQ(locals[0].halo_size(), 0);
  EXPECT_TRUE(locals[0].edges.empty());
  EXPECT_EQ(locals[0].a_interior.rowptr, a.rowptr);
  EXPECT_EQ(locals[0].a_interior.colind, a.colind);
  EXPECT_EQ(locals[0].a_interior.values, a.values);
}

// ---------------------------------------------------------------------------
// DistComm — concurrent rank harness (TSan target)

/// Run `fn(comm)` on P concurrent ranks with the same abort protocol as
/// dist_pcg_solve; returns one exception_ptr slot per rank.
template <class Fn>
std::vector<std::exception_ptr> run_world(index_t parts, Fn fn) {
  CommWorld<double> world(parts);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(parts));
  auto body = [&](index_t rank) {
    Communicator<double> comm(&world, rank);
    try {
      fn(comm);
    } catch (...) {
      errors[static_cast<std::size_t>(rank)] = std::current_exception();
      comm.abort();
    }
  };
  std::vector<std::thread> threads;
  for (index_t r = 1; r < parts; ++r) threads.emplace_back(body, r);
  body(0);
  for (std::thread& t : threads) t.join();
  return errors;
}

TEST(DistComm, AllreduceIsDeterministicRankOrderSum) {
  constexpr index_t kParts = 4;
  constexpr int kRounds = 25;
  // Rank-order fold oracle, computed serially.
  std::vector<double> expected;
  for (int i = 0; i < kRounds; ++i) {
    double acc = 0.0;
    for (index_t r = 0; r < kParts; ++r)
      acc += 0.1 * static_cast<double>(r + 1) + static_cast<double>(i);
    expected.push_back(acc);
  }
  for (int run = 0; run < 2; ++run) {  // run-to-run reproducibility
    std::array<std::vector<double>, kParts> got;
    auto errors = run_world(kParts, [&](Communicator<double>& comm) {
      for (int i = 0; i < kRounds; ++i) {
        const double v = 0.1 * static_cast<double>(comm.rank() + 1) +
                         static_cast<double>(i);
        got[static_cast<std::size_t>(comm.rank())].push_back(
            comm.allreduce1(v));
      }
    });
    for (const auto& e : errors) EXPECT_FALSE(e);
    for (index_t r = 0; r < kParts; ++r) {
      ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        // Bitwise: the deterministic reduction promises identical bits on
        // every rank and every run.
        EXPECT_EQ(got[static_cast<std::size_t>(r)][i], expected[i]);
      }
    }
  }
}

TEST(DistComm, SplitPhaseReduceOverlapsComputeAndStaysCorrect) {
  constexpr index_t kParts = 3;
  auto errors = run_world(kParts, [&](Communicator<double>& comm) {
    for (int i = 0; i < 10; ++i) {
      std::array<double, 2> vals{static_cast<double>(comm.rank()),
                                 static_cast<double>(i)};
      auto h = comm.reduce_begin(std::span<const double>(vals));
      // Overlapped "compute": touch local state while others arrive.
      volatile double sink = 0.0;
      for (int j = 0; j < 1000; ++j) sink = sink + 1.0;
      std::array<double, 2> out{};
      comm.reduce_end(h, std::span<double>(out));
      EXPECT_EQ(out[0], 0.0 + 1.0 + 2.0);
      EXPECT_EQ(out[1], 3.0 * static_cast<double>(i));
    }
  });
  for (const auto& e : errors) EXPECT_FALSE(e);
}

TEST(DistComm, AbortOnOneRankPropagatesToAll) {
  constexpr index_t kParts = 3;
  auto errors = run_world(kParts, [&](Communicator<double>& comm) {
    for (int i = 0; i < 10; ++i) {
      if (comm.rank() == 1 && i == 5) throw std::runtime_error("rank fault");
      comm.allreduce1(1.0);
    }
  });
  ASSERT_TRUE(errors[1]);
  EXPECT_THROW(std::rethrow_exception(errors[1]), std::runtime_error);
  for (const index_t r : {0, 2}) {
    ASSERT_TRUE(errors[static_cast<std::size_t>(r)]);
    EXPECT_THROW(std::rethrow_exception(errors[static_cast<std::size_t>(r)]),
                 CommAborted);
  }
}

// ---------------------------------------------------------------------------
// DistHalo — concurrent halo exchange (TSan target)

TEST(DistHalo, ExchangeGathersNeighborValuesAcrossRounds) {
  const Csr<double> a = gen_poisson2d(12, 12);
  constexpr index_t kParts = 3;
  const Partition part = make_partition(a, kParts);
  const auto locals = build_local_systems(a, part);

  constexpr int kRounds = 50;
  auto errors = run_world(kParts, [&](Communicator<double>& comm) {
    const LocalSystem<double>& loc =
        locals[static_cast<std::size_t>(comm.rank())];
    std::vector<double> x(static_cast<std::size_t>(loc.rows()));
    std::vector<double> halo(static_cast<std::size_t>(loc.halo_size()));
    for (int round = 0; round < kRounds; ++round) {
      // Encode (round, global row) so stale reads from a previous round are
      // detected, not just wrong neighbors.
      for (index_t l = 0; l < loc.rows(); ++l)
        x[static_cast<std::size_t>(l)] =
            1000.0 * round +
            static_cast<double>(loc.owned[static_cast<std::size_t>(l)]);
      auto h = comm.exchange_begin(std::span<const double>(x));
      comm.exchange_end(h, loc, std::span<double>(halo));
      for (index_t s = 0; s < loc.halo_size(); ++s) {
        EXPECT_EQ(halo[static_cast<std::size_t>(s)],
                  1000.0 * round +
                      static_cast<double>(loc.halo[static_cast<std::size_t>(s)]));
      }
      // A reduction separates exchange_end from the next mutation of x,
      // exactly the solver loops' buffer-reuse contract; it also stresses
      // the interleaving of both collective types' ping-pong banks.
      const double sum = comm.allreduce1(static_cast<double>(round));
      EXPECT_EQ(sum, static_cast<double>(kParts) * round);
    }
  });
  for (const auto& e : errors) EXPECT_FALSE(e);
}

// ---------------------------------------------------------------------------
// TransportConformance — the same contracts against every backing

/// Run `fn(comm)` on the ranks of an explicit transport group.
template <class Fn>
std::vector<std::exception_ptr> run_group(TransportGroup& group, Fn fn) {
  const index_t parts = group.size();
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(parts));
  auto body = [&](index_t rank) {
    Communicator<double> comm(&group.transport(rank));
    try {
      fn(comm);
    } catch (...) {
      errors[static_cast<std::size_t>(rank)] = std::current_exception();
      comm.abort();
    }
  };
  std::vector<std::thread> threads;
  for (index_t r = 1; r < parts; ++r) threads.emplace_back(body, r);
  body(0);
  for (std::thread& t : threads) t.join();
  return errors;
}

class TransportConformance : public ::testing::TestWithParam<TransportKind> {
 protected:
  [[nodiscard]] TransportOptions options(double timeout = 30.0) const {
    TransportOptions opt;
    opt.kind = GetParam();
    opt.collective_timeout_seconds = timeout;
    return opt;
  }
};

TEST_P(TransportConformance, AllreduceIsDeterministicRankOrderSum) {
  constexpr index_t kParts = 4;
  constexpr int kRounds = 10;
  std::vector<double> expected;
  for (int i = 0; i < kRounds; ++i) {
    double acc = 0.0;
    for (index_t r = 0; r < kParts; ++r)
      acc += 0.1 * static_cast<double>(r + 1) + static_cast<double>(i);
    expected.push_back(acc);
  }
  for (int run = 0; run < 2; ++run) {  // run-to-run reproducibility
    auto group = make_transport_group(kParts, {}, options());
    std::array<std::vector<double>, kParts> got;
    auto errors = run_group(*group, [&](Communicator<double>& comm) {
      for (int i = 0; i < kRounds; ++i) {
        const double v = 0.1 * static_cast<double>(comm.rank() + 1) +
                         static_cast<double>(i);
        got[static_cast<std::size_t>(comm.rank())].push_back(
            comm.allreduce1(v));
      }
    });
    for (const auto& e : errors) EXPECT_FALSE(e);
    for (index_t r = 0; r < kParts; ++r) {
      ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(r)][i], expected[i]);  // bits
    }
  }
}

TEST_P(TransportConformance, SplitPhaseReduceOverlapsComputeAndStaysCorrect) {
  constexpr index_t kParts = 3;
  auto group = make_transport_group(kParts, {}, options());
  auto errors = run_group(*group, [&](Communicator<double>& comm) {
    for (int i = 0; i < 5; ++i) {
      std::array<double, 2> vals{static_cast<double>(comm.rank()),
                                 static_cast<double>(i)};
      auto h = comm.reduce_begin(std::span<const double>(vals));
      volatile double sink = 0.0;
      for (int j = 0; j < 1000; ++j) sink = sink + 1.0;
      std::array<double, 2> out{};
      comm.reduce_end(h, std::span<double>(out));
      EXPECT_EQ(out[0], 0.0 + 1.0 + 2.0);
      EXPECT_EQ(out[1], 3.0 * static_cast<double>(i));
    }
  });
  for (const auto& e : errors) EXPECT_FALSE(e);
}

TEST_P(TransportConformance, HaloExchangeGathersNeighborValuesAcrossRounds) {
  const Csr<double> a = gen_poisson2d(12, 12);
  constexpr index_t kParts = 3;
  const Partition part = make_partition(a, kParts);
  const auto locals = build_local_systems(a, part);
  std::vector<std::size_t> window_bytes;
  for (const LocalSystem<double>& loc : locals)
    window_bytes.push_back(static_cast<std::size_t>(loc.rows()) *
                           sizeof(double));

  auto group = make_transport_group(
      kParts, std::span<const std::size_t>(window_bytes), options());
  auto errors = run_group(*group, [&](Communicator<double>& comm) {
    const LocalSystem<double>& loc =
        locals[static_cast<std::size_t>(comm.rank())];
    std::vector<double> x(static_cast<std::size_t>(loc.rows()));
    std::vector<double> halo(static_cast<std::size_t>(loc.halo_size()));
    for (int round = 0; round < 10; ++round) {
      for (index_t l = 0; l < loc.rows(); ++l)
        x[static_cast<std::size_t>(l)] =
            1000.0 * round +
            static_cast<double>(loc.owned[static_cast<std::size_t>(l)]);
      auto h = comm.exchange_begin(std::span<const double>(x));
      comm.exchange_end(h, loc, std::span<double>(halo));
      for (index_t s = 0; s < loc.halo_size(); ++s) {
        EXPECT_EQ(halo[static_cast<std::size_t>(s)],
                  1000.0 * round +
                      static_cast<double>(
                          loc.halo[static_cast<std::size_t>(s)]));
      }
      const double sum = comm.allreduce1(static_cast<double>(round));
      EXPECT_EQ(sum, static_cast<double>(kParts) * round);
    }
  });
  for (const auto& e : errors) EXPECT_FALSE(e);
}

TEST_P(TransportConformance, AbortOnOneRankPropagatesToAll) {
  constexpr index_t kParts = 3;
  auto group = make_transport_group(kParts, {}, options());
  auto errors = run_group(*group, [&](Communicator<double>& comm) {
    for (int i = 0; i < 10; ++i) {
      if (comm.rank() == 1 && i == 5) throw std::runtime_error("rank fault");
      comm.allreduce1(1.0);
    }
  });
  ASSERT_TRUE(errors[1]);
  EXPECT_THROW(std::rethrow_exception(errors[1]), std::runtime_error);
  for (const index_t r : {0, 2}) {
    ASSERT_TRUE(errors[static_cast<std::size_t>(r)]);
    EXPECT_THROW(std::rethrow_exception(errors[static_cast<std::size_t>(r)]),
                 CommAborted);
  }
  EXPECT_TRUE(group->aborted());
}

TEST_P(TransportConformance, DeadRankSurfacesCommAbortedWithinTimeout) {
  // Rank 1 "dies" (returns without ever arriving); rank 0's collective must
  // end in CommAborted within the configured timeout, not hang forever.
  auto group = make_transport_group(2, {}, options(/*timeout=*/0.5));
  WallTimer timer;
  auto errors = run_group(*group, [&](Communicator<double>& comm) {
    if (comm.rank() == 1) return;  // never participates
    comm.allreduce1(1.0);
  });
  EXPECT_LT(timer.seconds(), 10.0);  // bounded, way under a hang
  ASSERT_TRUE(errors[0]);
  EXPECT_THROW(std::rethrow_exception(errors[0]), CommAborted);
  EXPECT_TRUE(group->aborted());
}

TEST_P(TransportConformance, SolveP1ClassicIsBitwiseEqualToSpcgSolve) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const std::vector<double> b = make_rhs(a, 5);
  SpcgOptions opt = fast_options();
  opt.pcg.record_history = true;
  const SpcgResult<double> serial = spcg_solve(a, b, opt);

  DistOptions dopt;
  dopt.parts = 1;
  dopt.options = opt;
  dopt.transport.kind = GetParam();
  const DistSolveResult<double> dist =
      dist_pcg_solve(b, dist_setup(a, dopt), dopt);
  EXPECT_EQ(dist.solve.iterations, serial.solve.iterations);
  EXPECT_EQ(dist.solve.x, serial.solve.x);  // bitwise
  EXPECT_EQ(dist.solve.residual_history, serial.solve.residual_history);
}

TEST_P(TransportConformance, SolveP1CommReducedIsBitwiseEqualToPipelined) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const std::vector<double> b = make_rhs(a, 7);
  SpcgOptions opt = fast_options();
  opt.pcg.record_history = true;

  SpcgSetup<double> setup = spcg_setup(a, opt);
  const IluPreconditioner<double> m(setup.factors, setup.l_schedule,
                                    setup.u_schedule, opt.executor);
  const SolveResult<double> serial = pipelined_pcg(a, b, m, opt.pcg);

  DistOptions dopt;
  dopt.parts = 1;
  dopt.options = opt;
  dopt.body = DistBody::kCommReduced;
  dopt.transport.kind = GetParam();
  const DistSolveResult<double> dist =
      dist_pcg_solve(b, dist_setup(a, dopt), dopt);
  EXPECT_EQ(dist.solve.iterations, serial.iterations);
  EXPECT_EQ(dist.solve.x, serial.x);  // bitwise
  EXPECT_EQ(dist.solve.residual_history, serial.residual_history);
}

TEST_P(TransportConformance, CommReducedDoesOneAllreducePerIteration) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const std::vector<double> b = make_rhs(a, 3);

  auto run = [&](DistBody body) {
    DistOptions dopt;
    dopt.parts = 2;
    dopt.options = fast_options();
    dopt.body = body;
    dopt.transport.kind = GetParam();
    return dist_pcg_solve(b, dist_setup(a, dopt), dopt);
  };
  const DistSolveResult<double> classic = run(DistBody::kClassic);
  const DistSolveResult<double> reduced = run(DistBody::kCommReduced);
  ASSERT_TRUE(classic.solve.converged());
  ASSERT_TRUE(reduced.solve.converged());
  // Exact collective budgets: classic = 2/iter + {||b||, initial, finish};
  // comm-reduced = 1/iter + {fused startup, finish}.
  const auto classic_iters =
      static_cast<std::uint64_t>(classic.solve.iterations);
  const auto reduced_iters =
      static_cast<std::uint64_t>(reduced.solve.iterations);
  EXPECT_EQ(classic.stats.allreduces, 2 * classic_iters + 3);
  EXPECT_EQ(reduced.stats.allreduces, reduced_iters + 2);
  EXPECT_LT(reduced.stats.allreduces, classic.stats.allreduces);
}

TEST_P(TransportConformance, InjectedLatencyIsAccountedAsWaitTime) {
  TransportOptions opt = options();
  opt.inject_latency_us = 500;
  auto group = make_transport_group(2, {}, opt);
  auto errors = run_group(*group, [&](Communicator<double>& comm) {
    for (int i = 0; i < 4; ++i) comm.allreduce1(1.0);
  });
  for (const auto& e : errors) EXPECT_FALSE(e);
  // 4 collectives x 500us injected on each endpoint.
  EXPECT_GE(group->transport(0).stats().wait_seconds, 4 * 500e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackings, TransportConformance,
    ::testing::Values(TransportKind::kInProcess, TransportKind::kSharedMemory,
                      TransportKind::kSocket),
    [](const ::testing::TestParamInfo<TransportKind>& info) {
      switch (info.param) {
        case TransportKind::kInProcess: return "InProcess";
        case TransportKind::kSharedMemory: return "SharedMemory";
        case TransportKind::kSocket: return "Socket";
      }
      return "Unknown";
    });

// ---------------------------------------------------------------------------
// SocketMultiProcess — true cross-process ranks over the TCP transport

TEST(SocketMultiProcess, AllreduceAndWindowAcrossForkedProcesses) {
  TransportOptions opt;
  opt.kind = TransportKind::kSocket;
  opt.collective_timeout_seconds = 20.0;
  const std::array<std::size_t, 2> window_bytes{sizeof(double),
                                                sizeof(double)};
  int port = 0;
  // Hub first (binds and reports the ephemeral port), then fork the worker:
  // the child's connect lands in the hub's listen backlog.
  auto hub = make_process_transport(
      0, 2, std::span<const std::size_t>(window_bytes), opt, &port);
  ASSERT_GT(port, 0);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child = rank 1. No gtest assertions here — report via the exit code.
    int code = 0;
    try {
      TransportOptions wopt = opt;
      wopt.socket_port = port;
      auto worker = make_process_transport(
          1, 2, std::span<const std::size_t>(window_bytes), wopt);
      for (int i = 0; i < 20 && code == 0; ++i) {
        std::array<double, 2> v{2.5, static_cast<double>(i)};
        worker->reduce_begin(std::span<const double>(v));
        std::array<double, 2> out{};
        worker->reduce_end(std::span<double>(out));
        if (out[0] != 1.5 + 2.5 || out[1] != 2.0 * i) code = 2;
      }
      const double mine = 41.0;
      worker->window_begin(&mine, sizeof(mine));
      worker->window_end();
      double got0 = 0.0, got1 = 0.0;
      std::memcpy(&got0, worker->window(0), sizeof(double));
      std::memcpy(&got1, worker->window(1), sizeof(double));
      if (got0 != 40.0 || got1 != 41.0) code = 3;
      worker->barrier();
    } catch (...) {
      code = 1;
    }
    _exit(code);
  }

  // Parent = rank 0 (the hub).
  for (int i = 0; i < 20; ++i) {
    std::array<double, 2> v{1.5, static_cast<double>(i)};
    hub->reduce_begin(std::span<const double>(v));
    std::array<double, 2> out{};
    hub->reduce_end(std::span<double>(out));
    EXPECT_EQ(out[0], 1.5 + 2.5);
    EXPECT_EQ(out[1], 2.0 * i);
  }
  const double mine = 40.0;
  hub->window_begin(&mine, sizeof(mine));
  hub->window_end();
  double got1 = 0.0;
  std::memcpy(&got1, hub->window(1), sizeof(double));
  EXPECT_EQ(got1, 41.0);
  hub->barrier();

  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

// ---------------------------------------------------------------------------
// DistDot — deterministic reductions to 0 ULP

TEST(DistDot, ConcurrentDotMatchesSerialOracleToZeroUlp) {
  const index_t n = 500;
  Rng rng(11);
  std::vector<double> x(static_cast<std::size_t>(n)), y(x.size());
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto& v : y) v = rng.uniform(-1.0, 1.0);
  const Csr<double> a = gen_poisson2d(25, 20);  // 500 rows, pattern only
  ASSERT_EQ(a.rows, n);

  for (const index_t parts : {1, 2, 4}) {
    const Partition part = make_partition(a, parts);
    const double expected = dist_dot_reference(
        std::span<const double>(x), std::span<const double>(y), part);
    for (int run = 0; run < 2; ++run) {
      std::vector<double> got(static_cast<std::size_t>(parts));
      auto errors = run_world(parts, [&](Communicator<double>& comm) {
        const auto& rows = part.owned[static_cast<std::size_t>(comm.rank())];
        double partial = 0.0;  // T = double here; partial accumulates in T
        for (const index_t g : rows)
          partial += x[static_cast<std::size_t>(g)] *
                     y[static_cast<std::size_t>(g)];
        got[static_cast<std::size_t>(comm.rank())] = comm.allreduce1(partial);
      });
      for (const auto& e : errors) EXPECT_FALSE(e);
      for (const double g : got) EXPECT_EQ(g, expected);  // bitwise
    }
  }
}

TEST(DistDot, SinglePartReferenceEqualsSerialDot) {
  Rng rng(3);
  std::vector<double> x(257), y(257);
  for (auto& v : x) v = rng.uniform(-2.0, 2.0);
  for (auto& v : y) v = rng.uniform(-2.0, 2.0);
  Partition p;
  p.parts = 1;
  p.global_rows = 257;
  p.part_of.assign(257, 0);
  p.owned.resize(1);
  for (index_t g = 0; g < 257; ++g) p.owned[0].push_back(g);
  EXPECT_EQ(dist_dot_reference(std::span<const double>(x),
                               std::span<const double>(y), p),
            dot(x, y));
}

// ---------------------------------------------------------------------------
// DistSolve

TEST(DistSolve, SinglePartIsBitwiseEqualToSpcgSolve) {
  const Csr<double> a = gen_poisson2d(24, 24);
  const std::vector<double> b = make_rhs(a, 5);
  SpcgOptions opt = fast_options();
  opt.pcg.record_history = true;

  const SpcgResult<double> serial = spcg_solve(a, b, opt);
  DistOptions dopt;
  dopt.parts = 1;
  dopt.options = opt;
  const DistSetup<double> setup = dist_setup(a, dopt);
  const DistSolveResult<double> dist = dist_pcg_solve(b, setup, dopt);

  EXPECT_EQ(dist.solve.status, serial.solve.status);
  EXPECT_EQ(dist.solve.iterations, serial.solve.iterations);
  EXPECT_EQ(dist.solve.x, serial.solve.x);  // bitwise
  EXPECT_EQ(dist.solve.final_residual_norm, serial.solve.final_residual_norm);
  EXPECT_EQ(dist.solve.residual_history, serial.solve.residual_history);
}

TEST(DistSolve, SinglePartOverlappedIsBitwiseEqualToPipelinedPcg) {
  const Csr<double> a = gen_poisson2d(20, 20);
  const std::vector<double> b = make_rhs(a, 9);
  SpcgOptions opt = fast_options();
  opt.pcg.record_history = true;

  SpcgSetup<double> setup = spcg_setup(a, opt);
  const IluPreconditioner<double> m(setup.factors, setup.l_schedule,
                                    setup.u_schedule, opt.executor);
  const SolveResult<double> serial = pipelined_pcg(a, b, m, opt.pcg);

  DistOptions dopt;
  dopt.parts = 1;
  dopt.options = opt;
  dopt.overlap = true;
  const DistSolveResult<double> dist =
      dist_pcg_solve(b, dist_setup(a, dopt), dopt);

  EXPECT_EQ(dist.solve.status, serial.status);
  EXPECT_EQ(dist.solve.iterations, serial.iterations);
  EXPECT_EQ(dist.solve.x, serial.x);  // bitwise
  EXPECT_EQ(dist.solve.final_residual_norm, serial.final_residual_norm);
  EXPECT_EQ(dist.solve.residual_history, serial.residual_history);
}

TEST(DistSolve, SinglePartCommReducedIsBitwiseEqualToPipelinedPcg) {
  const Csr<double> a = gen_poisson2d(20, 20);
  const std::vector<double> b = make_rhs(a, 6);
  SpcgOptions opt = fast_options();
  opt.pcg.record_history = true;

  SpcgSetup<double> setup = spcg_setup(a, opt);
  const IluPreconditioner<double> m(setup.factors, setup.l_schedule,
                                    setup.u_schedule, opt.executor);
  const SolveResult<double> serial = pipelined_pcg(a, b, m, opt.pcg);

  DistOptions dopt;
  dopt.parts = 1;
  dopt.options = opt;
  dopt.body = DistBody::kCommReduced;
  const DistSolveResult<double> dist =
      dist_pcg_solve(b, dist_setup(a, dopt), dopt);

  EXPECT_EQ(dist.solve.status, serial.status);
  EXPECT_EQ(dist.solve.iterations, serial.iterations);
  EXPECT_EQ(dist.solve.x, serial.x);  // bitwise
  EXPECT_EQ(dist.solve.final_residual_norm, serial.final_residual_norm);
  EXPECT_EQ(dist.solve.residual_history, serial.residual_history);
}

TEST(DistSolve, MultiPartCommReducedConvergesOnPoisson) {
  const Csr<double> a = gen_poisson2d(24, 24);
  const std::vector<double> b = make_rhs(a, 11);
  const SpcgOptions opt = fast_options();
  const SpcgResult<double> serial = spcg_solve(a, b, opt);
  ASSERT_TRUE(serial.solve.converged());

  for (const index_t parts : {2, 4}) {
    DistOptions dopt;
    dopt.parts = parts;
    dopt.options = opt;
    dopt.body = DistBody::kCommReduced;
    const DistSolveResult<double> dist =
        dist_pcg_solve(b, dist_setup(a, dopt), dopt);
    EXPECT_TRUE(dist.solve.converged()) << "parts=" << parts;
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_NEAR(dist.solve.x[i], serial.solve.x[i], 1e-6)
          << "parts=" << parts << " row " << i;
    }
  }
}

TEST(DistSolve, MultiPartConvergesOnPoisson) {
  const Csr<double> a = gen_poisson2d(24, 24);
  const std::vector<double> b = make_rhs(a, 2);
  const SpcgOptions opt = fast_options();
  const SpcgResult<double> serial = spcg_solve(a, b, opt);
  ASSERT_TRUE(serial.solve.converged());

  for (const index_t parts : {2, 4}) {
    for (const bool overlap : {false, true}) {
      DistOptions dopt;
      dopt.parts = parts;
      dopt.options = opt;
      dopt.overlap = overlap;
      const DistSolveResult<double> dist =
          dist_pcg_solve(b, dist_setup(a, dopt), dopt);
      EXPECT_TRUE(dist.solve.converged())
          << "P=" << parts << " overlap=" << overlap;
      EXPECT_LT(dist.solve.final_residual_norm, 1e-6);
      // The block preconditioner is weaker than the global one; the bench's
      // acceptance bar is 1.5x on Poisson, the test margin is looser.
      EXPECT_LE(dist.solve.iterations, 3 * serial.solve.iterations + 50);
      EXPECT_GT(dist.stats.halo_bytes, 0u);
      EXPECT_GT(dist.stats.allreduces, 0u);
    }
  }
}

TEST(DistSolve, MultiPartConvergesOnSuiteMatrices) {
  for (const index_t id : {0, 1}) {
    const GeneratedMatrix gen = generate_suite_matrix(id);
    const SpcgOptions opt = fast_options();
    const SpcgResult<double> serial = spcg_solve(gen.a, gen.b, opt);
    ASSERT_TRUE(serial.solve.converged()) << "suite id " << id;
    for (const index_t parts : {2, 4}) {
      DistOptions dopt;
      dopt.parts = parts;
      dopt.options = opt;
      dopt.partition.strategy = PartitionOptions::Strategy::kBfsGreedy;
      const DistSolveResult<double> dist =
          dist_pcg_solve(gen.b, dist_setup(gen.a, dopt), dopt);
      EXPECT_TRUE(dist.solve.converged())
          << "suite id " << id << " P=" << parts;
    }
  }
}

TEST(DistSolve, ZeroRhsAnswersDirectlyLikePcg) {
  const Csr<double> a = gen_poisson2d(10, 10);
  const std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  DistOptions dopt;
  dopt.parts = 2;
  dopt.options = fast_options();
  const DistSolveResult<double> dist =
      dist_pcg_solve(b, dist_setup(a, dopt), dopt);
  EXPECT_TRUE(dist.solve.converged());
  EXPECT_EQ(dist.solve.iterations, 0);
  for (const double v : dist.solve.x) EXPECT_EQ(v, 0.0);
}

TEST(DistSolve, CheckedExecutorRunsConcurrentRanks) {
  // Every rank drives the race-detecting SpTRSV executor inside its own
  // thread — a TSan-visible mix of the analysis layer and the communicator.
  const Csr<double> a = gen_poisson2d(14, 14);
  const std::vector<double> b = make_rhs(a, 4);
  DistOptions dopt;
  dopt.parts = 2;
  dopt.options = fast_options();
  dopt.options.executor = TrsvExec::kLevelScheduledChecked;
  for (const bool overlap : {false, true}) {
    dopt.overlap = overlap;
    const DistSolveResult<double> dist =
        dist_pcg_solve(b, dist_setup(a, dopt), dopt);
    EXPECT_TRUE(dist.solve.converged()) << "overlap=" << overlap;
  }
}

// ---------------------------------------------------------------------------
// DistSession — runtime integration

TEST(DistSession, CacheSharesSubdomainSetupsAcrossSessions) {
  const auto a = std::make_shared<const Csr<double>>(gen_poisson2d(16, 16));
  const std::vector<double> b = make_rhs(*a, 1);
  DistOptions opt;
  opt.parts = 3;
  opt.options = fast_options();
  auto cache = std::make_shared<SetupCache<double>>(16);

  const DistSolverSession<double> first(a, opt, cache);
  EXPECT_EQ(first.subdomain_cache_hits(), 0);
  const DistSolverSession<double> second(a, opt, cache);
  EXPECT_EQ(second.subdomain_cache_hits(), 3);

  const DistSolveResult<double> run = second.solve(b);
  EXPECT_TRUE(run.solve.converged());
}

TEST(DistSession, SamePatternValuesChangeTakesPartialHitFastPath) {
  // Second session solves the same pattern with scaled values: every
  // subdomain setup should come from the same-pattern refresh path, not a
  // cold rebuild (and not an exact hit — the values differ).
  const Csr<double> base = gen_poisson2d(16, 16);
  Csr<double> scaled = base;
  for (double& v : scaled.values) v *= 1.5;

  DistOptions opt;
  opt.parts = 3;
  opt.options = fast_options();
  auto cache = std::make_shared<SetupCache<double>>(16);

  const DistSolverSession<double> first(base, opt, cache);
  EXPECT_EQ(first.subdomain_cache_hits(), 0);
  EXPECT_EQ(first.subdomain_partial_hits(), 0);

  const DistSolverSession<double> second(scaled, opt, cache);
  EXPECT_EQ(second.subdomain_cache_hits(), 0);
  EXPECT_EQ(second.subdomain_partial_hits(), 3);

  const std::vector<double> b = make_rhs(scaled, 4);
  const DistSolveResult<double> run = second.solve(b);
  EXPECT_TRUE(run.solve.converged());
}

TEST(DistSession, TelemetryRecordsCommunicationCounters) {
  const Csr<double> a = gen_poisson2d(12, 12);
  const std::vector<double> b = make_rhs(a, 8);
  DistOptions opt;
  opt.parts = 2;
  opt.options = fast_options();
  TelemetryRegistry telemetry;
  const DistSolverSession<double> session(a, opt, nullptr, &telemetry);
  const DistSolveResult<double> run = session.solve(b);
  ASSERT_TRUE(run.solve.converged());

  EXPECT_EQ(telemetry.counter("dist.solves").value(), 1u);
  EXPECT_EQ(telemetry.counter("dist.allreduces").value(),
            run.stats.allreduces);
  EXPECT_EQ(telemetry.histogram("dist.halo_bytes").count(), 1u);
  EXPECT_EQ(telemetry.histogram("dist.halo_bytes").max(),
            run.stats.halo_bytes);
}

TEST(DistSession, ServiceRoutesDistributedRequests) {
  const auto a = std::make_shared<const Csr<double>>(gen_poisson2d(16, 16));
  SolveService<double> service({2, 8});

  auto make_request = [&] {
    ServiceRequest<double> req;
    req.a = a;
    req.b = make_rhs(*a, 3);
    req.options = fast_options();
    req.parts = 2;
    return req;
  };
  const ServiceReply<double> first = service.submit(make_request()).reply.get();
  ASSERT_EQ(first.status, RequestStatus::kOk);
  EXPECT_TRUE(first.solve.converged());
  EXPECT_FALSE(first.used_fallback);
  EXPECT_FALSE(first.setup_cache_hit);

  // Same system + options: every subdomain setup comes from the cache.
  const ServiceReply<double> second =
      service.submit(make_request()).reply.get();
  ASSERT_EQ(second.status, RequestStatus::kOk);
  EXPECT_TRUE(second.setup_cache_hit);
}

TEST(DistSession, SolveMatchesStandaloneDistPcg) {
  const Csr<double> a = gen_poisson2d(14, 14);
  const std::vector<double> b = make_rhs(a, 6);
  DistOptions opt;
  opt.parts = 2;
  opt.options = fast_options();
  const DistSolverSession<double> session(a, opt);
  const DistSolveResult<double> via_session = session.solve(b);
  const DistSolveResult<double> direct =
      dist_pcg_solve(b, dist_setup(a, opt), opt);
  // Deterministic end to end: same partition, same subdomain setups, same
  // rank-order reductions.
  EXPECT_EQ(via_session.solve.x, direct.solve.x);
  EXPECT_EQ(via_session.solve.iterations, direct.solve.iterations);
}

}  // namespace
}  // namespace spcg
