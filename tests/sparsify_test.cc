// Unit + property tests for wavefront-aware sparsification (Algorithm 2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/sparsify.h"
#include "gen/generators.h"
#include "sparse/norms.h"
#include "sparse/ops.h"

namespace spcg {
namespace {

TEST(SparsifyRatio, SplitsExactlyIntoAhatPlusS) {
  const Csr<double> a = gen_grid_laplacian(16, 16, 2.0, 0.3, 42);
  const SparsifySplit<double> s = sparsify_by_ratio(a, 10.0);
  s.a_hat.validate();
  s.s.validate();
  // A = Â + S entrywise (the split is a partition of A's entries).
  const Csr<double> sum = add(s.a_hat, s.s);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[i]; p < a.rowptr[i + 1]; ++p) {
      const index_t j = a.colind[static_cast<std::size_t>(p)];
      EXPECT_DOUBLE_EQ(sum.at(i, j), a.values[static_cast<std::size_t>(p)]);
    }
  }
  EXPECT_EQ(s.a_hat.nnz() + s.s.nnz(), a.nnz());
  EXPECT_EQ(s.s.nnz(), s.dropped);
}

TEST(SparsifyRatio, RespectsTargetCount) {
  const Csr<double> a = gen_grid_laplacian(20, 20, 2.0, 0.3, 7);
  for (const double t : {1.0, 5.0, 10.0, 25.0}) {
    const SparsifySplit<double> s = sparsify_by_ratio(a, t);
    const auto target = static_cast<index_t>(
        std::llround(t / 100.0 * static_cast<double>(a.nnz())));
    EXPECT_LE(s.dropped, target) << "t=" << t;
    // Pairs are size 2, so we can be at most 2 short (1 for the last pair).
    EXPECT_GE(s.dropped, std::max<index_t>(0, target - 2)) << "t=" << t;
  }
}

TEST(SparsifyRatio, PreservesDiagonal) {
  const Csr<double> a = gen_varcoef2d(14, 14, 2.0, 5);
  const SparsifySplit<double> s = sparsify_by_ratio(a, 30.0);
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_NE(s.a_hat.find(i, i), -1) << "diagonal dropped at row " << i;
    EXPECT_EQ(s.s.find(i, i), -1);
  }
}

TEST(SparsifyRatio, PreservesSymmetry) {
  const Csr<double> a = gen_mesh_laplacian(12, 12, 0.4, 0.05, 9);
  ASSERT_TRUE(is_symmetric(a));
  const SparsifySplit<double> s = sparsify_by_ratio(a, 10.0);
  EXPECT_TRUE(is_symmetric(s.a_hat));
  EXPECT_TRUE(is_symmetric(s.s));
}

TEST(SparsifyRatio, DropsSmallestMagnitudesFirst) {
  const Csr<double> a = gen_grid_laplacian(16, 16, 2.5, 0.3, 11);
  const SparsifySplit<double> s = sparsify_by_ratio(a, 10.0);
  // max |dropped| <= min |kept off-diagonal|.
  double max_dropped = 0.0;
  for (const double v : s.s.values) max_dropped = std::max(max_dropped, std::abs(v));
  double min_kept = std::numeric_limits<double>::infinity();
  for (index_t i = 0; i < s.a_hat.rows; ++i) {
    const auto cols_i = s.a_hat.row_cols(i);
    const auto vals_i = s.a_hat.row_vals(i);
    for (std::size_t p = 0; p < cols_i.size(); ++p) {
      if (cols_i[p] != i)
        min_kept = std::min(min_kept, std::abs(vals_i[p]));
    }
  }
  EXPECT_LE(max_dropped, min_kept);
}

TEST(SparsifyRatio, ZeroRatioDropsNothing) {
  const Csr<double> a = gen_poisson2d(8, 8);
  const SparsifySplit<double> s = sparsify_by_ratio(a, 0.0);
  EXPECT_EQ(s.dropped, 0);
  EXPECT_EQ(s.a_hat.nnz(), a.nnz());
  EXPECT_EQ(s.s.nnz(), 0);
}

TEST(SparsifyRatio, DeterministicOnTies) {
  // Poisson has all off-diagonals equal: the tie-break must be stable.
  const Csr<double> a = gen_poisson2d(10, 10);
  const SparsifySplit<double> s1 = sparsify_by_ratio(a, 10.0);
  const SparsifySplit<double> s2 = sparsify_by_ratio(a, 10.0);
  EXPECT_EQ(s1.a_hat.colind, s2.a_hat.colind);
  EXPECT_EQ(s1.s.colind, s2.s.colind);
}

TEST(Indicator, DiagonalProxyMatchesHandComputation) {
  // Â = diag(2, 5) with off-diagonal 1; S holds a single pair of 0.1.
  const Csr<double> a_hat = csr_from_triplets<double>(
      2, 2, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 5.0}});
  const Csr<double> s = csr_from_triplets<double>(
      2, 2, {{0, 1, 0.1}, {1, 0, 0.1}});
  const ConvergenceIndicator ind = convergence_indicator(a_hat, s);
  // ||Â||_inf = 6, min diag = 2 -> kappa = 3; ||Â^{-1}|| = 3/6 = 0.5.
  EXPECT_NEAR(ind.inv_norm, 0.5, 1e-12);
  EXPECT_NEAR(ind.s_norm, 0.1, 1e-12);
  EXPECT_NEAR(ind.product, 0.05, 1e-12);
}

TEST(Indicator, NonPositiveDiagonalIsUnsafe) {
  const Csr<double> a_hat = csr_from_triplets<double>(
      2, 2, {{0, 0, -1.0}, {1, 1, 1.0}});
  const Csr<double> s = csr_from_triplets<double>(2, 2, {{0, 1, 0.5}});
  const ConvergenceIndicator ind = convergence_indicator(a_hat, s);
  EXPECT_TRUE(std::isinf(ind.product));
}

TEST(Indicator, LanczosEstimatorTighterThanProxyOnWellConditioned) {
  const Csr<double> a = gen_grid_laplacian(12, 12, 1.0, 1.0, 3);
  const SparsifySplit<double> split = sparsify_by_ratio(a, 5.0);
  const ConvergenceIndicator proxy =
      convergence_indicator(split.a_hat, split.s,
                            ConditionEstimator::kDiagonalProxy);
  const ConvergenceIndicator exact = convergence_indicator(
      split.a_hat, split.s, ConditionEstimator::kLanczos, 80);
  EXPECT_GT(proxy.product, 0.0);
  EXPECT_GT(exact.product, 0.0);
  // For this diagonally dominant family 1/min_diag >= 1/lambda_min is not
  // guaranteed in general, but both must be finite and of the same scale.
  EXPECT_LT(std::abs(std::log10(proxy.product / exact.product)), 2.0);
}

TEST(Algorithm2, ReturnsAValidDecision) {
  const Csr<double> a = gen_grid_laplacian(24, 24, 2.2, 0.3, 77);
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a);
  EXPECT_GT(d.wavefronts_original, 0);
  EXPECT_LE(d.wavefronts_chosen, d.wavefronts_original);
  EXPECT_FALSE(d.steps.empty());
  d.chosen.a_hat.validate();
  // Chosen ratio must be one of the candidates.
  EXPECT_TRUE(d.chosen.ratio_percent == 10.0 || d.chosen.ratio_percent == 5.0 ||
              d.chosen.ratio_percent == 1.0);
}

TEST(Algorithm2, AcceptsAggressiveRatioWhenReductionIsLarge) {
  // Weak chain: the entire dependence chain is carried by tiny entries, so a
  // 10% drop collapses the wavefronts and passes both tests immediately.
  const Csr<double> a = gen_chain_with_skips(600, 4, 1e-5, 1.0, 13);
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a);
  EXPECT_EQ(d.outcome, SparsifyOutcome::kWavefrontAccepted);
  // One of the aggressive ratios wins on the wavefront test.
  EXPECT_GE(d.chosen.ratio_percent, 5.0);
  EXPECT_GT(d.reduction_percent, 50.0);
}

TEST(Algorithm2, FallsBackToSmallestRatioWithoutReduction) {
  // Poisson: dropping equal-magnitude entries barely changes the wavefront
  // count, so Algorithm 2 should land on the most conservative ratio.
  const Csr<double> a = gen_poisson2d(20, 20);
  SparsifyOptions opt;
  opt.omega_percent = 60.0;  // unreachable reduction
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a, opt);
  EXPECT_EQ(d.outcome, SparsifyOutcome::kSmallestRatioFallback);
  EXPECT_DOUBLE_EQ(d.chosen.ratio_percent, 1.0);
}

TEST(Algorithm2, UnsafeFallbackPicksMostAggressiveRatio) {
  const Csr<double> a = gen_grid_laplacian(16, 16, 2.0, 0.3, 21);
  SparsifyOptions opt;
  opt.tau = 0.0;  // every candidate fails the convergence check
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a, opt);
  EXPECT_EQ(d.outcome, SparsifyOutcome::kUnsafeFallback);
  EXPECT_DOUBLE_EQ(d.chosen.ratio_percent, 10.0);
  // All steps were evaluated and all failed.
  EXPECT_EQ(d.steps.size(), 3u);
  for (const SparsifyStep& s : d.steps) EXPECT_FALSE(s.convergence_ok);
}

TEST(Algorithm2, StepDiagnosticsAreConsistent) {
  const Csr<double> a = gen_varcoef2d(20, 20, 2.5, 33);
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a);
  for (const SparsifyStep& s : d.steps) {
    EXPECT_GT(s.ratio_percent, 0.0);
    if (s.convergence_ok) {
      EXPECT_GE(s.wavefronts, 1);
      EXPECT_LE(s.wavefronts, d.wavefronts_original);
    }
  }
}

TEST(Algorithm2, CustomRatioListIsHonored) {
  const Csr<double> a = gen_grid_laplacian(14, 14, 2.0, 0.3, 55);
  SparsifyOptions opt;
  opt.ratios = {20.0, 2.0};
  opt.omega_percent = 0.0;  // accept first safe ratio
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a, opt);
  EXPECT_TRUE(d.chosen.ratio_percent == 20.0 || d.chosen.ratio_percent == 2.0);
}

TEST(Algorithm2, AlgorithmLine10DenominatorVariant) {
  // The Alg.-2-literal denominator (w_Â) yields a >= reduction value than
  // Eq. 7's (w_A); both must pick a valid candidate.
  const Csr<double> a = gen_chain_with_skips(500, 4, 1e-5, 1.0, 17);
  SparsifyOptions eq7;
  SparsifyOptions alg2;
  alg2.denominator = WavefrontDenominator::kSparsified;
  const auto d7 = wavefront_aware_sparsify(a, eq7);
  const auto d2 = wavefront_aware_sparsify(a, alg2);
  d7.chosen.a_hat.validate();
  d2.chosen.a_hat.validate();
}

TEST(SparsifyRatio, PreservesDiagonalDominance) {
  // Removing off-diagonal mass can only strengthen row dominance, so a
  // dominant matrix stays dominant after any sparsification ratio.
  const Csr<double> a = gen_grid_laplacian(14, 14, 2.0, 0.3, 3);
  ASSERT_TRUE(is_diagonally_dominant(a));
  for (const double t : {1.0, 10.0, 30.0}) {
    EXPECT_TRUE(is_diagonally_dominant(sparsify_by_ratio(a, t).a_hat)) << t;
  }
}

// Property sweep: invariants hold across families and ratios.
class SparsifyPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SparsifyPropertyTest, InvariantsAcrossFamilies) {
  const double ratio = GetParam();
  const std::vector<Csr<double>> family{
      gen_poisson2d(14, 14),
      gen_grid_laplacian(14, 14, 2.0, 0.3, 1),
      gen_mesh_laplacian(12, 12, 0.4, 0.05, 2),
      gen_banded(300, 10, 0.3, true, 3),
      gen_economic(300, 8, 0.9, 4),
  };
  for (const Csr<double>& a : family) {
    const SparsifySplit<double> s = sparsify_by_ratio(a, ratio);
    // Partition invariant.
    EXPECT_EQ(s.a_hat.nnz() + s.s.nnz(), a.nnz());
    // Symmetry preserved.
    EXPECT_TRUE(is_symmetric(s.a_hat, 0.0));
    // Diagonal untouched.
    for (index_t i = 0; i < a.rows; ++i)
      EXPECT_DOUBLE_EQ(s.a_hat.at(i, i), a.at(i, i));
    // Wavefronts never increase.
    EXPECT_LE(count_wavefronts(s.a_hat), count_wavefronts(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, SparsifyPropertyTest,
                         ::testing::Values(0.5, 1.0, 5.0, 10.0, 20.0, 50.0));

}  // namespace
}  // namespace spcg
