// Unit tests for src/support: statistics, RNG determinism, tables, errors.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "support/error.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/telemetry.h"

namespace spcg {
namespace {

TEST(Error, CheckThrowsWithExpressionAndLocation) {
  try {
    SPCG_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("support_test.cc"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(SPCG_CHECK(2 + 2 == 4));
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{7.0}), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_NEAR(geometric_mean(xs), 2.0, 1e-12);
  const std::vector<double> ys{2.0, 2.0, 2.0};
  EXPECT_NEAR(geometric_mean(ys), 2.0, 1e-12);
  EXPECT_THROW(geometric_mean(std::vector<double>{1.0, 0.0}), Error);
  EXPECT_THROW(geometric_mean(std::vector<double>{}), Error);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{5.0}, 50), 5.0);
}

TEST(Stats, FractionAboveIsStrict) {
  const std::vector<double> xs{0.5, 1.0, 1.5, 2.0};
  EXPECT_DOUBLE_EQ(fraction_above(xs, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_above(std::vector<double>{}, 1.0), 0.0);
}

TEST(Stats, PearsonPerfectAndDegenerate) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> up{2, 4, 6, 8};
  const std::vector<double> down{8, 6, 4, 2};
  const std::vector<double> flat{5, 5, 5, 5};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}

TEST(Stats, SpearmanHandlesTiesAndMonotonicity) {
  // Monotone but nonlinear -> Spearman 1, Pearson < 1.
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);

  // Ties share average ranks.
  const std::vector<double> a{1, 2, 2, 3};
  const std::vector<double> ranks = average_ranks(a);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, HistogramBinsAndClamping) {
  const std::vector<double> xs{-1.0, 0.1, 0.1, 0.6, 5.0};
  const Histogram h = histogram(xs, 0.0, 1.0, 2, /*as_percent=*/false);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_DOUBLE_EQ(h.counts[0], 3.0);  // -1 clamps into first bin
  EXPECT_DOUBLE_EQ(h.counts[1], 2.0);  // 5.0 clamps into last bin
  const Histogram hp = histogram(xs, 0.0, 1.0, 2, /*as_percent=*/true);
  EXPECT_DOUBLE_EQ(hp.counts[0] + hp.counts[1], 100.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(43);
  EXPECT_NE(Rng(42).next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.uniform_index(5)];
  for (const int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, ParetoIsHeavyTailedAndPositive) {
  Rng rng(17);
  int above10 = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.pareto(1.0);
    EXPECT_GE(x, 1.0);
    if (x > 10.0) ++above10;
  }
  // P(X > 10) = 0.1 for alpha=1.
  EXPECT_GT(above10, 700);
  EXPECT_LT(above10, 1300);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Table, AlignedRenderAndTsv) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  const std::string pretty = t.render();
  EXPECT_NE(pretty.find("name"), std::string::npos);
  EXPECT_NE(pretty.find("alpha"), std::string::npos);
  const std::string tsv = t.render_tsv();
  EXPECT_NE(tsv.find("alpha\t1"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.6916), "69.16%");
  EXPECT_EQ(fmt_speedup(1.234), "1.23x");
}

TEST(Table, HistogramRendering) {
  const std::vector<double> xs{0.1, 0.1, 0.9};
  const Histogram h = histogram(xs, 0.0, 1.0, 2, true);
  const std::string out = render_histogram(h, "%", 10);
  EXPECT_NE(out.find("[0.00,0.50)"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Telemetry, MaxGaugeKeepsRunningMaximum) {
  MaxGauge g;
  EXPECT_EQ(g.value(), 0u);
  g.update(7);
  g.update(3);  // smaller values never lower the gauge
  EXPECT_EQ(g.value(), 7u);
  g.update(100);
  EXPECT_EQ(g.value(), 100u);
  g.reset();
  EXPECT_EQ(g.value(), 0u);
}

TEST(Telemetry, LogHistogramBucketsByBitWidth) {
  LogHistogram h;
  EXPECT_EQ(h.percentile(50.0), 0u);  // empty
  h.record(0);  // bucket 0
  h.record(1);  // bucket 1
  h.record(2);  // bucket 2 (2..3)
  h.record(3);  // bucket 2
  h.record(7);  // bucket 3 (4..7)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 13u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  // Percentile answers with the covering bucket's inclusive upper edge.
  EXPECT_EQ(h.percentile(100.0), 7u);
  EXPECT_EQ(h.percentile(50.0), 3u);
  EXPECT_EQ(LogHistogram::bucket_upper_edge(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_upper_edge(3), 7u);
  EXPECT_EQ(LogHistogram::bucket_upper_edge(64), ~std::uint64_t{0});
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Telemetry, RegistryFlattensGaugesAndHistogramsIntoSnapshot) {
  TelemetryRegistry reg;
  reg.counter("solves").add(3);
  reg.max_gauge("peak").update(42);
  reg.histogram("bytes").record(1000);
  reg.histogram("bytes").record(8);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("solves"), &reg.counter("solves"));
  EXPECT_EQ(&reg.histogram("bytes"), &reg.histogram("bytes"));

  auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const CounterSample& s : reg.snapshot())
      if (s.name == name) return s.value;
    ADD_FAILURE() << "sample " << name << " missing";
    return 0;
  };
  EXPECT_EQ(value_of("solves"), 3u);
  EXPECT_EQ(value_of("peak.max"), 42u);
  EXPECT_EQ(value_of("bytes.count"), 2u);
  EXPECT_EQ(value_of("bytes.sum"), 1008u);
  EXPECT_EQ(value_of("bytes.max"), 1000u);

  reg.reset();
  EXPECT_EQ(reg.counter("solves").value(), 0u);
  EXPECT_EQ(reg.histogram("bytes").count(), 0u);
}

TEST(Telemetry, LogHistogramPercentileEdgeCases) {
  LogHistogram h;
  // Empty: every percentile is 0, including the clamped extremes.
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(50.0), 0u);
  EXPECT_EQ(h.percentile(100.0), 0u);
  EXPECT_EQ(h.percentile(-10.0), 0u);
  EXPECT_EQ(h.percentile(1000.0), 0u);

  // Single bucket: values 4..7 all land in bucket 3, so every percentile
  // answers that bucket's inclusive upper edge — including an answer above
  // max(), which is the documented bucket-granularity behavior.
  h.record(4);
  h.record(5);
  h.record(6);
  EXPECT_EQ(h.percentile(0.0), 7u);
  EXPECT_EQ(h.percentile(50.0), 7u);
  EXPECT_EQ(h.percentile(100.0), 7u);
  EXPECT_GT(h.percentile(100.0), h.max());

  // Two buckets: p=0 is the first non-empty bucket's edge (tightest bound
  // on the minimum), p=100 the last non-empty one's; out-of-range p clamps.
  h.record(100);  // bucket 7 (64..127)
  EXPECT_EQ(h.percentile(0.0), 7u);
  EXPECT_EQ(h.percentile(-5.0), 7u);
  EXPECT_EQ(h.percentile(100.0), 127u);
  EXPECT_EQ(h.percentile(250.0), 127u);
  // 3 of 4 values are <= 7: p75 is still covered by the first bucket.
  EXPECT_EQ(h.percentile(75.0), 7u);
  EXPECT_EQ(h.percentile(76.0), 127u);
}

// Snapshot while writer threads hammer the instruments: every counter-like
// sample must read monotone non-decreasing across successive snapshots, and
// the final totals must be exact. Run under TSan in CI (the Telemetry suite
// is in the sanitizer job's ctest filter).
TEST(Telemetry, SnapshotIsConsistentUnderConcurrentRecording) {
  TelemetryRegistry reg;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kOps = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&reg, &go, t] {
      // Resolve through the registry inside the thread so create-on-first-
      // use also races with snapshot().
      Counter& mine = reg.counter("writer." + std::to_string(t));
      Counter& shared = reg.counter("shared");
      LogHistogram& h = reg.histogram("values");
      MaxGauge& peak = reg.max_gauge("peak");
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kOps; ++i) {
        mine.add(1);
        shared.add(1);
        h.record(i);
        peak.update(i);
      }
    });
  }
  go.store(true, std::memory_order_release);

  std::map<std::string, std::uint64_t> last;
  for (int s = 0; s < 50; ++s) {
    for (const CounterSample& sample : reg.snapshot()) {
      // Histogram percentile samples are bucket edges of a moving
      // distribution, not counters — only counter-like values are monotone.
      const bool is_percentile =
          sample.name.ends_with(".p50") || sample.name.ends_with(".p99");
      if (is_percentile) continue;
      const auto [it, fresh] = last.emplace(sample.name, sample.value);
      if (!fresh) {
        EXPECT_GE(sample.value, it->second) << sample.name << " went back";
        it->second = sample.value;
      }
    }
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(reg.counter("shared").value(), kWriters * kOps);
  EXPECT_EQ(reg.histogram("values").count(), kWriters * kOps);
  EXPECT_EQ(reg.max_gauge("peak").value(), kOps - 1);
  for (int t = 0; t < kWriters; ++t)
    EXPECT_EQ(reg.counter("writer." + std::to_string(t)).value(), kOps);
}

}  // namespace
}  // namespace spcg
