// Tests for the observability layer (DESIGN.md §9): TraceRecorder spans,
// sampling suppression, the Chrome trace / Prometheus exporters, and the
// ISSUE-4 acceptance criterion that recorded spans account for >= 95% of the
// wall clock inside every solve request served by a traced SolveService.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/suite.h"
#include "runtime/runtime.h"
#include "support/expo.h"
#include "support/trace.h"

namespace spcg {
namespace {

std::string arg_value(const TraceEvent& e, const std::string& key) {
  for (const TraceArg& a : e.args)
    if (a.key == key) return a.value;
  return {};
}

TEST(Trace, DisabledRecorderRecordsNothing) {
  TraceRecorder rec;  // disabled by default
  EXPECT_FALSE(rec.enabled());
  {
    Span s(rec, "work", "test");
    EXPECT_FALSE(s.active());
    s.arg("k", std::int64_t{1});  // no-op on an inactive span
  }
  EXPECT_EQ(rec.events_recorded(), 0u);
  EXPECT_TRUE(rec.drain().empty());
}

TEST(Trace, SpanRecordsNameCategoryArgsAndNesting) {
  TraceRecorder rec(/*enabled=*/true);
  {
    Span outer(rec, "outer", "test");
    outer.arg("rows", std::int64_t{42});
    outer.arg("ratio", 0.5);
    outer.arg("hit", true);
    outer.arg("label", "a\"b");
    Span inner(rec, "inner", "test");
  }
  std::vector<TraceEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 2u);
  // drain() sorts by start time: outer began first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_EQ(events[1].name, "inner");
  // The inner span nests inside the outer one on the same thread.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].end_ns(), events[0].end_ns());
  // Args carry raw JSON fragments.
  EXPECT_EQ(arg_value(events[0], "rows"), "42");
  EXPECT_EQ(arg_value(events[0], "hit"), "true");
  EXPECT_EQ(arg_value(events[0], "label"), "\"a\\\"b\"");
  EXPECT_NE(arg_value(events[0], "ratio"), "");
  // drain() moved everything out; buffers keep working afterwards.
  EXPECT_TRUE(rec.drain().empty());
  { Span again(rec, "again", "test"); }
  EXPECT_EQ(rec.drain().size(), 1u);
}

TEST(Trace, ExplicitFinishIsIdempotentAndStopsTheClock) {
  TraceRecorder rec(/*enabled=*/true);
  Span s(rec, "short", "test");
  s.finish();
  s.finish();  // second finish must not double-record
  const std::vector<TraceEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "short");
}

TEST(Trace, SampleScopeSuppressesSpansAndNestsConservatively) {
  TraceRecorder rec(/*enabled=*/true);
  {
    const TraceSampleScope off(false);
    EXPECT_TRUE(trace_suppressed());
    Span s(rec, "hidden", "test");
    EXPECT_FALSE(s.active());
    {
      // An inner sampled scope must NOT undo the outer suppression: the
      // outer decision covers everything nested below it.
      const TraceSampleScope on(true);
      EXPECT_TRUE(trace_suppressed());
      Span s2(rec, "still_hidden", "test");
      EXPECT_FALSE(s2.active());
    }
  }
  EXPECT_FALSE(trace_suppressed());
  { Span s(rec, "visible", "test"); }
  const std::vector<TraceEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "visible");
}

TEST(Trace, ThreadsGetDistinctTidsAndClearRestartsEpoch) {
  TraceRecorder rec(/*enabled=*/true);
  constexpr int kThreads = 4;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&rec] { Span s(rec, "worker", "test"); });
  for (std::thread& t : pool) t.join();
  { Span s(rec, "main", "test"); }
  std::vector<TraceEvent> events = rec.drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) + 1);
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads) + 1);

  rec.clear();
  EXPECT_EQ(rec.events_recorded(), 0u);
  { Span s(rec, "after_clear", "test"); }
  events = rec.drain();
  ASSERT_EQ(events.size(), 1u);
  // Fresh epoch: the new span starts near zero, not minutes in.
  EXPECT_LT(events[0].start_ns, 1'000'000'000u);
}

TEST(Trace, AggregatePhasesSumsPerCategoryAndName) {
  std::vector<TraceEvent> events;
  events.push_back({"spmv", "solve", 0, 100, 0, {}});
  events.push_back({"spmv", "solve", 200, 50, 1, {}});
  events.push_back({"factorize", "setup", 10, 1000, 0, {}});
  const std::vector<PhaseTotal> phases = aggregate_phases(events);
  ASSERT_EQ(phases.size(), 2u);  // sorted by (category, name)
  EXPECT_EQ(phases[0].category, "setup");
  EXPECT_EQ(phases[0].name, "factorize");
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_EQ(phases[0].total_ns, 1000u);
  EXPECT_EQ(phases[1].category, "solve");
  EXPECT_EQ(phases[1].count, 2u);
  EXPECT_EQ(phases[1].total_ns, 150u);
}

TEST(Trace, JsonValidatorAcceptsAndRejects) {
  EXPECT_TRUE(is_valid_json("{}"));
  EXPECT_TRUE(is_valid_json("[1, 2.5e-3, \"x\", null, true, {\"a\":[]}]"));
  EXPECT_TRUE(is_valid_json("\"lone \\u00b5 string\""));
  EXPECT_FALSE(is_valid_json(""));
  EXPECT_FALSE(is_valid_json("{"));
  EXPECT_FALSE(is_valid_json("{\"a\":1,}"));
  EXPECT_FALSE(is_valid_json("[1] trailing"));
  EXPECT_FALSE(is_valid_json("{'single':1}"));
  EXPECT_FALSE(is_valid_json("[01]"));
}

TEST(Trace, ChromeExportIsValidJsonWithMicrosecondTimestamps) {
  TraceRecorder rec(/*enabled=*/true);
  {
    Span s(rec, "phase \"x\"", "cat");
    s.arg("k", std::int64_t{3});
  }
  const std::vector<TraceEvent> events = rec.drain();
  const std::string doc = chrome_trace_json(events);
  EXPECT_TRUE(is_valid_json(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("phase \\\"x\\\""), std::string::npos);
  EXPECT_NE(doc.find("\"k\":3"), std::string::npos);
  // Empty traces still produce a loadable document.
  EXPECT_TRUE(is_valid_json(chrome_trace_json({})));
}

TEST(Trace, PrometheusExportSanitizesNamesAndRendersPhases) {
  std::vector<CounterSample> samples;
  samples.push_back({"setup_cache.hits", 7});
  samples.push_back({"weird-name!", 1});
  std::vector<TraceEvent> events;
  events.push_back({"spmv", "solve", 0, 2'000'000'000, 0, {}});
  const std::string text =
      prometheus_text(samples, aggregate_phases(events));
  EXPECT_NE(text.find("spcg_setup_cache_hits 7"), std::string::npos) << text;
  EXPECT_NE(text.find("spcg_weird_name_ 1"), std::string::npos);
  EXPECT_NE(text.find("spcg_phase_seconds_total{category=\"solve\","
                      "phase=\"spmv\"} 2.0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spcg_phase_count_total{category=\"solve\","
                      "phase=\"spmv\"} 1"),
            std::string::npos);
  // Exposition ends with a newline (required by the text format).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

/// Fraction of `parent`'s duration covered by the union of same-thread
/// events fully contained in it (the parent itself excluded).
double child_coverage(const TraceEvent& parent,
                      const std::vector<TraceEvent>& events) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
  for (const TraceEvent& e : events) {
    if (&e == &parent || e.tid != parent.tid) continue;
    if (e.start_ns < parent.start_ns || e.end_ns() > parent.end_ns())
      continue;
    intervals.emplace_back(e.start_ns, e.end_ns());
  }
  std::sort(intervals.begin(), intervals.end());
  std::uint64_t covered = 0, cursor = parent.start_ns;
  for (const auto& [lo, hi] : intervals) {
    const std::uint64_t from = std::max(cursor, lo);
    if (hi > from) covered += hi - from;
    cursor = std::max(cursor, hi);
  }
  return parent.duration_ns == 0
             ? 1.0
             : static_cast<double>(covered) /
                   static_cast<double>(parent.duration_ns);
}

// ISSUE-4 acceptance: replay requests through a traced SolveService and
// require the recorded child spans (fingerprint, cache lookup, pcg and its
// nested phases) to cover >= 95% of each request's execute span.
TEST(Trace, ServiceExecuteSpansAreCoveredByChildSpans) {
  global_trace().clear();
  global_trace().set_enabled(true);

  // Matrices big enough that a request's wall clock dwarfs the untraced
  // bookkeeping between spans (suite ids with multi-millisecond solves).
  std::vector<std::shared_ptr<const Csr<double>>> matrices;
  for (const index_t id : {index_t{23}, index_t{41}})
    matrices.push_back(std::make_shared<const Csr<double>>(
        generate_suite_matrix(id).a));

  SpcgOptions opt;
  opt.pcg.tolerance = 1e-10;
  opt.pcg.trace_every = 1;  // sample every iteration
  {
    SolveService<double> service({2, 8});
    std::vector<SolveService<double>::Ticket> tickets;
    for (int i = 0; i < 8; ++i) {
      ServiceRequest<double> req;
      req.a = matrices[static_cast<std::size_t>(i) % matrices.size()];
      req.b = make_rhs(*req.a, static_cast<std::uint64_t>(i) + 1);
      req.options = opt;
      tickets.push_back(service.submit(std::move(req)));
    }
    for (auto& t : tickets)
      ASSERT_EQ(t.reply.get().status, RequestStatus::kOk);
  }

  const std::vector<TraceEvent> events = global_trace().drain();
  global_trace().set_enabled(false);

  int executes = 0;
  for (const TraceEvent& e : events) {
    if (e.name != "execute") continue;
    ++executes;
    const double coverage = child_coverage(e, events);
    EXPECT_GE(coverage, 0.95)
        << "request " << arg_value(e, "id") << " on tid " << e.tid
        << " only covered " << coverage << " of " << e.duration_ns << " ns";
  }
  EXPECT_EQ(executes, 8);
}

}  // namespace
}  // namespace spcg
