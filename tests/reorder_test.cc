// Tests for symmetric reorderings (RCM, random) and permutation utilities.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "solver/pcg.h"
#include "sparse/norms.h"
#include "sparse/reorder.h"
#include "wavefront/levels.h"

namespace spcg {
namespace {

TEST(Permutation, ValidateAcceptsAndRejects) {
  EXPECT_NO_THROW(validate_permutation({2, 0, 1}));
  EXPECT_THROW(validate_permutation({0, 0, 1}), Error);
  EXPECT_THROW(validate_permutation({0, 1, 3}), Error);
}

TEST(Permutation, InvertRoundTrips) {
  const Permutation p{2, 0, 3, 1};
  const Permutation inv = invert_permutation(p);
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_EQ(inv[static_cast<std::size_t>(p[i])], static_cast<index_t>(i));
}

TEST(Permutation, PermuteVectorMatchesDefinition) {
  const std::vector<double> x{10.0, 20.0, 30.0};
  const Permutation p{2, 0, 1};
  const std::vector<double> y = permute_vector(x, p);
  EXPECT_DOUBLE_EQ(y[2], 10.0);
  EXPECT_DOUBLE_EQ(y[0], 20.0);
  EXPECT_DOUBLE_EQ(y[1], 30.0);
}

TEST(Permutation, SymmetricPermutePreservesEntries) {
  const Csr<double> a = gen_grid_laplacian(8, 8, 1.0, 0.5, 3);
  const Permutation p = random_permutation(a.rows, 7);
  const Csr<double> b = permute_symmetric(a, p);
  b.validate();
  EXPECT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t q = a.rowptr[i]; q < a.rowptr[i + 1]; ++q) {
      const index_t j = a.colind[static_cast<std::size_t>(q)];
      EXPECT_DOUBLE_EQ(b.at(p[static_cast<std::size_t>(i)],
                            p[static_cast<std::size_t>(j)]),
                       a.values[static_cast<std::size_t>(q)]);
    }
  }
  EXPECT_TRUE(is_symmetric(b));
}

TEST(Permutation, PermutedSystemHasPermutedSolution) {
  // (P A P^T)(P x) = P b: solving the permuted system and un-permuting
  // recovers the original solution.
  const Csr<double> a = gen_poisson2d(10, 10);
  const std::vector<double> b = make_rhs(a, 5);
  const Permutation p = random_permutation(a.rows, 11);
  const Csr<double> pa = permute_symmetric(a, p);
  const std::vector<double> pb = permute_vector(b, p);
  PcgOptions opt;
  opt.tolerance = 1e-11;
  const SolveResult<double> r0 = cg(a, b, opt);
  const SolveResult<double> r1 = cg(pa, pb, opt);
  ASSERT_TRUE(r0.converged());
  ASSERT_TRUE(r1.converged());
  const std::vector<double> x1 = permute_vector(r1.x, invert_permutation(p));
  for (std::size_t i = 0; i < x1.size(); ++i)
    EXPECT_NEAR(x1[i], r0.x[i], 1e-7);
}

TEST(Rcm, IsAValidPermutation) {
  const Csr<double> a = gen_mesh_laplacian(12, 12, 0.4, 0.05, 9);
  const Permutation p = reverse_cuthill_mckee(a);
  EXPECT_NO_THROW(validate_permutation(p));
}

TEST(Rcm, ReducesBandwidthOfShuffledGrid) {
  // Shuffle a grid, then RCM must bring the bandwidth back near the grid's.
  const Csr<double> a = gen_poisson2d(16, 16);
  const index_t bw_natural = bandwidth(a);
  const Csr<double> shuffled =
      permute_symmetric(a, random_permutation(a.rows, 3));
  const index_t bw_shuffled = bandwidth(shuffled);
  ASSERT_GT(bw_shuffled, 4 * bw_natural);
  const Csr<double> rcm =
      permute_symmetric(shuffled, reverse_cuthill_mckee(shuffled));
  EXPECT_LT(bandwidth(rcm), bw_shuffled / 3);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two disjoint chains.
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < 10; ++i) ts.push_back({i, i, 2.0});
  for (index_t i = 0; i < 4; ++i) {
    ts.push_back({i, i + 1, -1.0});
    ts.push_back({i + 1, i, -1.0});
  }
  for (index_t i = 5; i < 9; ++i) {
    ts.push_back({i, i + 1, -1.0});
    ts.push_back({i + 1, i, -1.0});
  }
  const Csr<double> a = csr_from_triplets<double>(10, 10, std::move(ts));
  const Permutation p = reverse_cuthill_mckee(a);
  EXPECT_NO_THROW(validate_permutation(p));
}

TEST(Rcm, OrderingChangesWavefronts) {
  // A randomly ordered grid has far fewer wavefronts than the natural
  // (diagonal-sweep) order; RCM lands near the natural band behavior. This
  // is the ordering sensitivity the ablation bench studies.
  const Csr<double> natural = gen_poisson2d(20, 20);
  const Csr<double> shuffled =
      permute_symmetric(natural, random_permutation(natural.rows, 13));
  const index_t wf_natural = count_wavefronts(natural);
  const index_t wf_shuffled = count_wavefronts(shuffled);
  EXPECT_LT(wf_shuffled, wf_natural);
  const Csr<double> rcm =
      permute_symmetric(shuffled, reverse_cuthill_mckee(shuffled));
  EXPECT_GT(count_wavefronts(rcm), wf_shuffled);
}

TEST(Bandwidth, SimpleCases) {
  const Csr<double> diag = csr_from_triplets<double>(
      3, 3, {{0, 0, 1}, {1, 1, 1}, {2, 2, 1}});
  EXPECT_EQ(bandwidth(diag), 0);
  const Csr<double> tri = csr_from_triplets<double>(
      3, 3, {{0, 0, 1}, {0, 2, 1}, {2, 0, 1}, {1, 1, 1}, {2, 2, 1}});
  EXPECT_EQ(bandwidth(tri), 2);
}

}  // namespace
}  // namespace spcg
