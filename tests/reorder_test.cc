// Tests for symmetric reorderings (RCM, random) and permutation utilities.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "solver/pcg.h"
#include "sparse/norms.h"
#include "sparse/reorder.h"
#include "wavefront/levels.h"

namespace spcg {
namespace {

TEST(Permutation, ValidateAcceptsAndRejects) {
  EXPECT_NO_THROW(validate_permutation({2, 0, 1}));
  EXPECT_THROW(validate_permutation({0, 0, 1}), Error);
  EXPECT_THROW(validate_permutation({0, 1, 3}), Error);
}

TEST(Permutation, InvertRoundTrips) {
  const Permutation p{2, 0, 3, 1};
  const Permutation inv = invert_permutation(p);
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_EQ(inv[static_cast<std::size_t>(p[i])], static_cast<index_t>(i));
}

TEST(Permutation, PermuteVectorMatchesDefinition) {
  const std::vector<double> x{10.0, 20.0, 30.0};
  const Permutation p{2, 0, 1};
  const std::vector<double> y = permute_vector(x, p);
  EXPECT_DOUBLE_EQ(y[2], 10.0);
  EXPECT_DOUBLE_EQ(y[0], 20.0);
  EXPECT_DOUBLE_EQ(y[1], 30.0);
}

TEST(Permutation, SymmetricPermutePreservesEntries) {
  const Csr<double> a = gen_grid_laplacian(8, 8, 1.0, 0.5, 3);
  const Permutation p = random_permutation(a.rows, 7);
  const Csr<double> b = permute_symmetric(a, p);
  b.validate();
  EXPECT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t q = a.rowptr[i]; q < a.rowptr[i + 1]; ++q) {
      const index_t j = a.colind[static_cast<std::size_t>(q)];
      EXPECT_DOUBLE_EQ(b.at(p[static_cast<std::size_t>(i)],
                            p[static_cast<std::size_t>(j)]),
                       a.values[static_cast<std::size_t>(q)]);
    }
  }
  EXPECT_TRUE(is_symmetric(b));
}

TEST(Permutation, PermutedSystemHasPermutedSolution) {
  // (P A P^T)(P x) = P b: solving the permuted system and un-permuting
  // recovers the original solution.
  const Csr<double> a = gen_poisson2d(10, 10);
  const std::vector<double> b = make_rhs(a, 5);
  const Permutation p = random_permutation(a.rows, 11);
  const Csr<double> pa = permute_symmetric(a, p);
  const std::vector<double> pb = permute_vector(b, p);
  PcgOptions opt;
  opt.tolerance = 1e-11;
  const SolveResult<double> r0 = cg(a, b, opt);
  const SolveResult<double> r1 = cg(pa, pb, opt);
  ASSERT_TRUE(r0.converged());
  ASSERT_TRUE(r1.converged());
  const std::vector<double> x1 = permute_vector(r1.x, invert_permutation(p));
  for (std::size_t i = 0; i < x1.size(); ++i)
    EXPECT_NEAR(x1[i], r0.x[i], 1e-7);
}

TEST(Rcm, IsAValidPermutation) {
  const Csr<double> a = gen_mesh_laplacian(12, 12, 0.4, 0.05, 9);
  const Permutation p = reverse_cuthill_mckee(a);
  EXPECT_NO_THROW(validate_permutation(p));
}

TEST(Rcm, ReducesBandwidthOfShuffledGrid) {
  // Shuffle a grid, then RCM must bring the bandwidth back near the grid's.
  const Csr<double> a = gen_poisson2d(16, 16);
  const index_t bw_natural = bandwidth(a);
  const Csr<double> shuffled =
      permute_symmetric(a, random_permutation(a.rows, 3));
  const index_t bw_shuffled = bandwidth(shuffled);
  ASSERT_GT(bw_shuffled, 4 * bw_natural);
  const Csr<double> rcm =
      permute_symmetric(shuffled, reverse_cuthill_mckee(shuffled));
  EXPECT_LT(bandwidth(rcm), bw_shuffled / 3);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two disjoint chains.
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < 10; ++i) ts.push_back({i, i, 2.0});
  for (index_t i = 0; i < 4; ++i) {
    ts.push_back({i, i + 1, -1.0});
    ts.push_back({i + 1, i, -1.0});
  }
  for (index_t i = 5; i < 9; ++i) {
    ts.push_back({i, i + 1, -1.0});
    ts.push_back({i + 1, i, -1.0});
  }
  const Csr<double> a = csr_from_triplets<double>(10, 10, std::move(ts));
  const Permutation p = reverse_cuthill_mckee(a);
  EXPECT_NO_THROW(validate_permutation(p));
}

TEST(Rcm, OrderingChangesWavefronts) {
  // A randomly ordered grid has far fewer wavefronts than the natural
  // (diagonal-sweep) order; RCM lands near the natural band behavior. This
  // is the ordering sensitivity the ablation bench studies.
  const Csr<double> natural = gen_poisson2d(20, 20);
  const Csr<double> shuffled =
      permute_symmetric(natural, random_permutation(natural.rows, 13));
  const index_t wf_natural = count_wavefronts(natural);
  const index_t wf_shuffled = count_wavefronts(shuffled);
  EXPECT_LT(wf_shuffled, wf_natural);
  const Csr<double> rcm =
      permute_symmetric(shuffled, reverse_cuthill_mckee(shuffled));
  EXPECT_GT(count_wavefronts(rcm), wf_shuffled);
}

TEST(ConnectedComponents, LabelsAreDenseAndDeterministic) {
  // Three pieces: chain {0..3}, isolated vertex {4}, chain {5..9}. Labels
  // are numbered by first appearance, so the expected labeling is exact.
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < 10; ++i) ts.push_back({i, i, 2.0});
  for (index_t i = 0; i < 3; ++i) {
    ts.push_back({i, i + 1, -1.0});
    ts.push_back({i + 1, i, -1.0});
  }
  for (index_t i = 5; i < 9; ++i) {
    ts.push_back({i, i + 1, -1.0});
    ts.push_back({i + 1, i, -1.0});
  }
  const Csr<double> a = csr_from_triplets<double>(10, 10, std::move(ts));
  index_t count = 0;
  const std::vector<index_t> label = connected_components(a, &count);
  EXPECT_EQ(count, 3);
  const std::vector<index_t> expected{0, 0, 0, 0, 1, 2, 2, 2, 2, 2};
  EXPECT_EQ(label, expected);
}

TEST(ConnectedComponents, SingleComponentOnGrid) {
  const Csr<double> a = gen_poisson2d(7, 5);
  index_t count = 0;
  const std::vector<index_t> label = connected_components(a, &count);
  EXPECT_EQ(count, 1);
  for (const index_t l : label) EXPECT_EQ(l, 0);
}

TEST(Rcm, ComponentsStayContiguousInThePermutation) {
  // Two grids side by side with no coupling. RCM must order each component
  // as one contiguous block of positions — the property the distributed
  // partitioner's RCM pre-pass relies on (dist/partition.h).
  const Csr<double> g1 = gen_poisson2d(6, 6);  // rows 0..35
  const Csr<double> g2 = gen_poisson2d(5, 5);  // rows 36..60
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < g1.rows; ++i)
    for (index_t q = g1.rowptr[static_cast<std::size_t>(i)];
         q < g1.rowptr[static_cast<std::size_t>(i) + 1]; ++q)
      ts.push_back({i, g1.colind[static_cast<std::size_t>(q)],
                    g1.values[static_cast<std::size_t>(q)]});
  for (index_t i = 0; i < g2.rows; ++i)
    for (index_t q = g2.rowptr[static_cast<std::size_t>(i)];
         q < g2.rowptr[static_cast<std::size_t>(i) + 1]; ++q)
      ts.push_back({g1.rows + i,
                    g1.rows + g2.colind[static_cast<std::size_t>(q)],
                    g2.values[static_cast<std::size_t>(q)]});
  const index_t n = g1.rows + g2.rows;
  const Csr<double> a = csr_from_triplets<double>(n, n, std::move(ts));

  index_t count = 0;
  const std::vector<index_t> label = connected_components(a, &count);
  ASSERT_EQ(count, 2);
  const Permutation perm = reverse_cuthill_mckee(a);
  EXPECT_NO_THROW(validate_permutation(perm));
  // Positions of each component must form one gap-free range.
  for (index_t c = 0; c < count; ++c) {
    index_t lo = n, hi = -1, members = 0;
    for (index_t v = 0; v < n; ++v) {
      if (label[static_cast<std::size_t>(v)] != c) continue;
      lo = std::min(lo, perm[static_cast<std::size_t>(v)]);
      hi = std::max(hi, perm[static_cast<std::size_t>(v)]);
      ++members;
    }
    EXPECT_EQ(hi - lo + 1, members) << "component " << c << " not contiguous";
  }
}

TEST(Bandwidth, SimpleCases) {
  const Csr<double> diag = csr_from_triplets<double>(
      3, 3, {{0, 0, 1}, {1, 1, 1}, {2, 2, 1}});
  EXPECT_EQ(bandwidth(diag), 0);
  const Csr<double> tri = csr_from_triplets<double>(
      3, 3, {{0, 0, 1}, {0, 2, 1}, {2, 0, 1}, {1, 1, 1}, {2, 2, 1}});
  EXPECT_EQ(bandwidth(tri), 2);
}

}  // namespace
}  // namespace spcg
