// Tests for the end-to-end SPCG driver (Figure 2 pipeline).
#include <gtest/gtest.h>

#include "core/spcg.h"
#include "core/spcg_report.h"
#include "gen/generators.h"
#include "runtime/session.h"

namespace spcg {
namespace {

TEST(Spcg, BaselineSolvesSystem) {
  const Csr<double> a = gen_poisson2d(20, 20);
  const std::vector<double> b = make_rhs(a, 1);
  SpcgOptions opt;
  opt.sparsify_enabled = false;
  opt.pcg.tolerance = 1e-10;
  const SpcgResult<double> r = spcg_solve(a, b, opt);
  EXPECT_TRUE(r.solve.converged());
  EXPECT_FALSE(r.decision.has_value());
  EXPECT_EQ(r.factor_nnz, a.nnz());  // ILU(0): no fill
  EXPECT_GT(r.matrix_wavefronts, 0);
}

TEST(Spcg, SparsifiedRunSolvesOriginalSystem) {
  const Csr<double> a = gen_grid_laplacian(24, 24, 2.0, 0.3, 7);
  const std::vector<double> b = make_rhs(a, 2);
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-10;
  const SpcgResult<double> r = spcg_solve(a, b, opt);
  ASSERT_TRUE(r.decision.has_value());
  EXPECT_TRUE(r.solve.converged());
  // The true residual is measured against the ORIGINAL A (Figure 2):
  // r.solve.final_residual_norm is recomputed with A inside pcg().
  EXPECT_LT(r.solve.final_residual_norm, 1e-9);
  // Preconditioner built on the sparsified pattern.
  EXPECT_EQ(r.factor_nnz, r.decision->chosen.a_hat.nnz());
  EXPECT_LE(r.factor_nnz, a.nnz());
}

TEST(Spcg, SparsifiedWavefrontsNeverExceedBaseline) {
  const Csr<double> a = gen_mesh_laplacian(20, 20, 0.4, 0.05, 3);
  const std::vector<double> b = make_rhs(a, 3);
  SpcgOptions base;
  base.sparsify_enabled = false;
  SpcgOptions sp;
  const SpcgResult<double> rb = spcg_solve(a, b, base);
  const SpcgResult<double> rs = spcg_solve(a, b, sp);
  EXPECT_LE(rs.matrix_wavefronts, rb.matrix_wavefronts);
  EXPECT_LE(rs.wavefronts_factor, rb.wavefronts_factor);
}

TEST(Spcg, IlukVariantFactorsWithFill) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const std::vector<double> b = make_rhs(a, 4);
  SpcgOptions opt;
  opt.sparsify_enabled = false;
  opt.preconditioner = PrecondKind::kIluK;
  opt.fill_level = 5;
  opt.pcg.tolerance = 1e-10;
  const SpcgResult<double> r = spcg_solve(a, b, opt);
  EXPECT_TRUE(r.solve.converged());
  EXPECT_GT(r.factorization.fill_nnz, 0);
  EXPECT_GT(r.factor_nnz, a.nnz());
}

TEST(Spcg, IlukConvergesFasterThanIlu0) {
  const Csr<double> a = gen_poisson2d(24, 24);
  const std::vector<double> b = make_rhs(a, 5);
  SpcgOptions opt;
  opt.sparsify_enabled = false;
  opt.pcg.tolerance = 1e-10;
  const SpcgResult<double> r0 = spcg_solve(a, b, opt);
  opt.preconditioner = PrecondKind::kIluK;
  opt.fill_level = 10;
  const SpcgResult<double> rk = spcg_solve(a, b, opt);
  ASSERT_TRUE(r0.solve.converged());
  ASSERT_TRUE(rk.solve.converged());
  EXPECT_LT(rk.solve.iterations, r0.solve.iterations);
}

TEST(Spcg, SelectBestFillLevelPrefersConvergenceThenIterations) {
  const Csr<double> a = gen_varcoef2d(18, 18, 1.5, 9);
  const std::vector<double> b = make_rhs(a, 6);
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-10;
  const std::vector<index_t> ks{0, 2, 5};
  const KSelection<double> sel =
      select_best_fill_level<double>(a, b, opt, ks);
  EXPECT_TRUE(sel.k == 0 || sel.k == 2 || sel.k == 5);
  // The winner must not lose to any candidate on (converged, iterations).
  for (const index_t k : ks) {
    SpcgOptions o = opt;
    o.sparsify_enabled = false;
    o.preconditioner = PrecondKind::kIluK;
    o.fill_level = k;
    const SpcgResult<double> r = spcg_solve(a, b, o);
    if (r.solve.converged()) {
      ASSERT_TRUE(sel.baseline.solve.converged());
      EXPECT_LE(sel.baseline.solve.iterations, r.solve.iterations);
    }
  }
}

TEST(Spcg, TimingsArePopulated) {
  const Csr<double> a = gen_poisson2d(12, 12);
  const std::vector<double> b = make_rhs(a, 7);
  const SpcgResult<double> r = spcg_solve(a, b);
  EXPECT_GE(r.sparsify_seconds, 0.0);
  EXPECT_GE(r.factorization_seconds, 0.0);
  EXPECT_GT(r.solve_seconds, 0.0);
  EXPECT_NEAR(r.end_to_end_seconds(),
              r.sparsify_seconds + r.factorization_seconds + r.solve_seconds,
              1e-12);
}

TEST(Spcg, ReportRendersAllFields) {
  const Csr<double> a = gen_poisson2d(10, 10);
  const std::vector<double> b = make_rhs(a, 8);
  const SpcgResult<double> r = spcg_solve(a, b);
  const RunSummary s = summarize("demo", a, r, PrecondKind::kIlu0);
  const std::string text = render_run_summary(s);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("ILU(0)"), std::string::npos);
  EXPECT_NE(text.find("wavefront"), std::string::npos);
  EXPECT_NE(text.find("iterations"), std::string::npos);
}

TEST(Spcg, LevelScheduledExecutorMatchesSerialResult) {
  const Csr<double> a = gen_grid_laplacian(16, 16, 1.5, 0.4, 11);
  const std::vector<double> b = make_rhs(a, 9);
  SpcgOptions serial;
  serial.pcg.tolerance = 1e-10;
  SpcgOptions level = serial;
  level.executor = TrsvExec::kLevelScheduled;
  const SpcgResult<double> r1 = spcg_solve(a, b, serial);
  const SpcgResult<double> r2 = spcg_solve(a, b, level);
  ASSERT_TRUE(r1.solve.converged());
  ASSERT_TRUE(r2.solve.converged());
  EXPECT_EQ(r1.solve.iterations, r2.solve.iterations);
  for (std::size_t i = 0; i < r1.solve.x.size(); ++i)
    EXPECT_NEAR(r1.solve.x[i], r2.solve.x[i], 1e-8);
}

}  // namespace
}  // namespace spcg
