// Tests for the block low-rank (HSS stand-in) analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.h"
#include "lowrank/lowrank.h"
#include "precond/ilu.h"
#include "support/rng.h"

namespace spcg {
namespace {

TEST(Svd, DiagonalMatrix) {
  // 3x3 diag(3, 2, 1) -> singular values {3, 2, 1}.
  std::vector<double> a{3, 0, 0, 0, 2, 0, 0, 0, 1};
  const std::vector<double> s = dense_singular_values(a, 3, 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_NEAR(s[0], 3.0, 1e-12);
  EXPECT_NEAR(s[1], 2.0, 1e-12);
  EXPECT_NEAR(s[2], 1.0, 1e-12);
}

TEST(Svd, RankOneMatrix) {
  // Outer product u v^T has one nonzero singular value = |u||v|.
  const std::vector<double> u{1, 2, 2};  // |u| = 3
  const std::vector<double> v{3, 4};     // |v| = 5
  std::vector<double> a(6);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j)
      a[static_cast<std::size_t>(i * 2 + j)] =
          u[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(j)];
  const std::vector<double> s = dense_singular_values(a, 3, 2);
  EXPECT_NEAR(s[0], 15.0, 1e-10);
  EXPECT_NEAR(s[1], 0.0, 1e-10);
}

TEST(Svd, OrthogonalMatrixHasUnitSingularValues) {
  const double c = std::cos(0.7), s = std::sin(0.7);
  std::vector<double> rot{c, -s, s, c};
  const std::vector<double> sv = dense_singular_values(rot, 2, 2);
  EXPECT_NEAR(sv[0], 1.0, 1e-12);
  EXPECT_NEAR(sv[1], 1.0, 1e-12);
}

TEST(Svd, FrobeniusNormPreserved) {
  Rng rng(5);
  const index_t m = 12, n = 9;
  std::vector<double> a(static_cast<std::size_t>(m * n));
  double fro2 = 0.0;
  for (double& v : a) {
    v = rng.normal();
    fro2 += v * v;
  }
  const std::vector<double> s = dense_singular_values(a, m, n);
  double sum2 = 0.0;
  for (const double v : s) sum2 += v * v;
  EXPECT_NEAR(sum2, fro2, 1e-8 * fro2);
}

TEST(Rank, CountsAboveRelativeCutoff) {
  const std::vector<double> s{10.0, 1.0, 0.5, 1e-14};
  EXPECT_EQ(numerical_rank(s, 1e-2, 1e-12), 3);
  EXPECT_EQ(numerical_rank(s, 0.5, 1e-12), 1);
  EXPECT_EQ(numerical_rank({}, 1e-2, 1e-12), 0);
}

TEST(LowRank, RankOneTilesTriggerCompression) {
  // Build a matrix whose lower off-diagonal tile is exactly rank 1.
  const index_t n = 64, leaf = 32;
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < n; ++i) ts.push_back({i, i, 1.0});
  for (index_t i = leaf; i < n; ++i) {
    for (index_t j = 0; j < leaf; ++j) {
      ts.push_back({i, j, static_cast<double>(i - leaf + 1) *
                              static_cast<double>(j + 1)});
    }
  }
  const Csr<double> a = csr_from_triplets<double>(n, n, std::move(ts));
  LowRankOptions opt;
  opt.leaf_size = leaf;
  opt.min_separator = 8;
  const LowRankStudy study = analyze_factor_blocks(a, opt);
  EXPECT_EQ(study.blocks_total, 1);
  EXPECT_EQ(study.blocks_nonempty, 1);
  EXPECT_EQ(study.blocks_compressed, 1);
  EXPECT_DOUBLE_EQ(study.trigger_rate(), 1.0);
  EXPECT_LT(study.stored_entries_compressed, study.stored_entries_dense);
}

TEST(LowRank, IluFactorsRarelyCompress) {
  // The paper's §4.6 finding: incomplete factors rarely expose low-rank
  // blocks at STRUMPACK-like tolerances.
  const Csr<double> a = gen_varcoef2d(40, 40, 1.5, 17);
  const IluResult<double> f = iluk(a, 3);
  LowRankOptions opt;
  opt.leaf_size = 32;
  opt.min_separator = 24;
  opt.rel_tol = 1e-6;  // tight tolerance, like a meaningful preconditioner
  const LowRankStudy study = analyze_factor_blocks(f.lu, opt);
  EXPECT_GT(study.blocks_nonempty, 0);
  EXPECT_LT(study.trigger_rate(), 0.15);
}

TEST(LowRank, SmallerSeparatorIncreasesCoverage) {
  // Matches the paper: reducing the minimum separator size raises HSS usage.
  const Csr<double> a = gen_varcoef2d(36, 36, 1.5, 23);
  const IluResult<double> f = iluk(a, 5);
  LowRankOptions strict;
  strict.leaf_size = 32;
  strict.min_separator = 28;
  LowRankOptions loose = strict;
  loose.min_separator = 2;
  const LowRankStudy s1 = analyze_factor_blocks(f.lu, strict);
  const LowRankStudy s2 = analyze_factor_blocks(f.lu, loose);
  EXPECT_GE(s2.blocks_eligible, s1.blocks_eligible);
  EXPECT_GE(s2.blocks_compressed, s1.blocks_compressed);
}

TEST(LowRank, EmptyOffDiagonalRegion) {
  const Csr<double> diag = csr_from_triplets<double>(
      64, 64, [] {
        std::vector<Triplet<double>> ts;
        for (index_t i = 0; i < 64; ++i) ts.push_back({i, i, 1.0});
        return ts;
      }());
  const LowRankStudy study = analyze_factor_blocks(diag);
  EXPECT_EQ(study.blocks_nonempty, 0);
  EXPECT_DOUBLE_EQ(study.trigger_rate(), 0.0);
}

}  // namespace
}  // namespace spcg
