// Tests for the wavefront-free preconditioners: sparse approximate inverse
// (SAI) and block-Jacobi.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "precond/block_jacobi.h"
#include "precond/sai.h"
#include "solver/pcg.h"
#include "sparse/norms.h"

namespace spcg {
namespace {

TEST(Sai, ExactInverseForDiagonalMatrix) {
  const Csr<double> a = csr_from_triplets<double>(
      3, 3, {{0, 0, 2.0}, {1, 1, 4.0}, {2, 2, 5.0}});
  const Csr<double> m = sai_inverse(a);
  EXPECT_NEAR(m.at(0, 0), 0.5, 1e-10);
  EXPECT_NEAR(m.at(1, 1), 0.25, 1e-10);
  EXPECT_NEAR(m.at(2, 2), 0.2, 1e-10);
}

TEST(Sai, PatternMatchesRequestLevel) {
  const Csr<double> a = gen_poisson2d(6, 6);
  SaiOptions l0;
  const Csr<double> m0 = sai_inverse(a, l0);
  EXPECT_EQ(m0.colind, a.colind);  // level-0 pattern is A's
  SaiOptions l1;
  l1.pattern_level = 1;
  const Csr<double> m1 = sai_inverse(a, l1);
  EXPECT_GT(m1.nnz(), m0.nnz());  // neighbor expansion densifies
}

TEST(Sai, ReducesResidualNormOfIdentity) {
  // ||I - M A||_F must be substantially below ||I - alpha A||_F for the
  // best diagonal alpha (i.e., SAI beats trivial scaling).
  const Csr<double> a = gen_varcoef2d(8, 8, 1.0, 3);
  const Csr<double> m = sai_inverse(a);
  // Compute ||I - M A||_F densely (small n).
  const index_t n = a.rows;
  double fro = 0.0;
  for (index_t i = 0; i < n; ++i) {
    // row i of M*A
    std::vector<double> row(static_cast<std::size_t>(n), 0.0);
    const auto mc = m.row_cols(i);
    const auto mv = m.row_vals(i);
    for (std::size_t p = 0; p < mc.size(); ++p) {
      const auto ac = a.row_cols(mc[p]);
      const auto av = a.row_vals(mc[p]);
      for (std::size_t q = 0; q < ac.size(); ++q)
        row[static_cast<std::size_t>(ac[q])] += mv[p] * av[q];
    }
    for (index_t j = 0; j < n; ++j) {
      const double target = (i == j) ? 1.0 : 0.0;
      const double d = row[static_cast<std::size_t>(j)] - target;
      fro += d * d;
    }
  }
  fro = std::sqrt(fro);
  EXPECT_LT(fro, std::sqrt(static_cast<double>(n)) * 0.8);
}

TEST(Sai, PreconditionsCgFasterThanJacobi) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const std::vector<double> b = make_rhs(a, 5);
  PcgOptions opt;
  opt.tolerance = 1e-10;
  JacobiPreconditioner<double> jac(a);
  SaiPreconditioner<double> sai(a, SaiOptions{1, 1e-12});
  const SolveResult<double> rj = pcg(a, b, jac, opt);
  const SolveResult<double> rs = pcg(a, b, sai, opt);
  ASSERT_TRUE(rj.converged());
  ASSERT_TRUE(rs.converged());
  EXPECT_LT(rs.iterations, rj.iterations);
}

TEST(Sai, SymmetricPatternKeepsCgStable) {
  const Csr<double> a = gen_grid_laplacian(12, 12, 1.5, 0.4, 7);
  const std::vector<double> b = make_rhs(a, 7);
  SaiPreconditioner<double> m(a);
  PcgOptions opt;
  opt.tolerance = 1e-9;
  const SolveResult<double> r = pcg(a, b, m, opt);
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.final_residual_norm, 1e-8);
}

TEST(BlockJacobi, BlockSizeNSolvesExactly) {
  // One block covering the matrix = a dense Cholesky solve.
  const Csr<double> a = gen_grid_laplacian(6, 6, 1.0, 0.5, 9);
  BlockJacobiPreconditioner<double> m(a, a.rows);
  std::vector<double> x_true(static_cast<std::size_t>(a.rows));
  for (std::size_t i = 0; i < x_true.size(); ++i)
    x_true[i] = std::sin(static_cast<double>(i));
  const std::vector<double> r = spmv(a, x_true);
  std::vector<double> z(x_true.size());
  m.apply(r, std::span<double>(z));
  for (std::size_t i = 0; i < x_true.size(); ++i)
    EXPECT_NEAR(z[i], x_true[i], 1e-9);
}

TEST(BlockJacobi, BlockSizeOneIsJacobi) {
  const Csr<double> a = gen_poisson2d(8, 8);
  BlockJacobiPreconditioner<double> blk(a, 1);
  JacobiPreconditioner<double> jac(a);
  std::vector<double> r(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> z1(r.size()), z2(r.size());
  blk.apply(r, std::span<double>(z1));
  jac.apply(r, std::span<double>(z2));
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_NEAR(z1[i], z2[i], 1e-13);
}

TEST(BlockJacobi, LargerBlocksConvergeFaster) {
  const Csr<double> a = gen_poisson2d(20, 20);
  const std::vector<double> b = make_rhs(a, 3);
  PcgOptions opt;
  opt.tolerance = 1e-10;
  std::int32_t prev = 0;
  for (const index_t bs : {1, 8, 40, 200}) {
    BlockJacobiPreconditioner<double> m(a, bs);
    const SolveResult<double> r = pcg(a, b, m, opt);
    ASSERT_TRUE(r.converged()) << "block=" << bs;
    if (prev > 0) EXPECT_LE(r.iterations, prev + 2) << "block=" << bs;
    prev = r.iterations;
  }
}

TEST(BlockJacobi, RejectsIndefiniteBlocks) {
  const Csr<double> a = csr_from_triplets<double>(
      2, 2, {{0, 0, 1.0}, {0, 1, 3.0}, {1, 0, 3.0}, {1, 1, 1.0}});
  EXPECT_THROW((BlockJacobiPreconditioner<double>(a, 2)), Error);
}

TEST(BlockJacobi, WeakerThanIluButWavefrontFree) {
  const Csr<double> a = gen_varcoef2d(16, 16, 1.5, 11);
  const std::vector<double> b = make_rhs(a, 11);
  PcgOptions opt;
  opt.tolerance = 1e-10;
  BlockJacobiPreconditioner<double> bj(a, 16);
  IluPreconditioner<double> ilu(ilu0(a));
  const SolveResult<double> rb = pcg(a, b, bj, opt);
  const SolveResult<double> ri = pcg(a, b, ilu, opt);
  ASSERT_TRUE(rb.converged());
  ASSERT_TRUE(ri.converged());
  EXPECT_GE(rb.iterations, ri.iterations);  // the quality trade-off
}

}  // namespace
}  // namespace spcg
