// Tests for the fixed-point (ParILU-style) ILU(0) factorization.
#include <gtest/gtest.h>

#include "core/sparsify.h"
#include "gen/generators.h"
#include "precond/parilu.h"
#include "precond/preconditioner.h"
#include "solver/pcg.h"

namespace spcg {
namespace {

TEST(ParIlu, ConvergesToSequentialIlu0) {
  const Csr<double> a = gen_poisson2d(12, 12);
  const IluResult<double> exact = ilu0(a);
  double prev = std::numeric_limits<double>::infinity();
  for (const int sweeps : {1, 3, 8, 25}) {
    ParIluOptions opt;
    opt.sweeps = sweeps;
    const ParIluResult<double> fp = parilu0(a, opt);
    const double diff = factor_difference(fp.result, exact);
    EXPECT_LE(diff, prev * (1.0 + 1e-12)) << "sweeps=" << sweeps;
    prev = diff;
  }
  // A couple dozen Jacobi sweeps get very close on this easy matrix.
  EXPECT_LT(prev, 1e-6);
}

TEST(ParIlu, ExactOnTridiagonalAfterFewSweeps) {
  const index_t n = 16;
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < n; ++i) {
    ts.push_back({i, i, 3.0});
    if (i > 0) ts.push_back({i, i - 1, -1.0});
    if (i + 1 < n) ts.push_back({i, i + 1, -1.0});
  }
  const Csr<double> a = csr_from_triplets<double>(n, n, std::move(ts));
  ParIluOptions opt;
  opt.sweeps = 40;
  const ParIluResult<double> fp = parilu0(a, opt);
  const IluResult<double> exact = ilu0(a);
  EXPECT_LT(factor_difference(fp.result, exact), 1e-9);
  EXPECT_LT(fp.last_update_norm, 1e-9);
}

TEST(ParIlu, UpdateNormShrinksAcrossSweeps) {
  const Csr<double> a = gen_grid_laplacian(12, 12, 1.5, 0.4, 5);
  ParIluOptions few;
  few.sweeps = 2;
  ParIluOptions many;
  many.sweeps = 10;
  const ParIluResult<double> r2 = parilu0(a, few);
  const ParIluResult<double> r10 = parilu0(a, many);
  EXPECT_LT(r10.last_update_norm, r2.last_update_norm);
}

TEST(ParIlu, UsableAsPreconditionerAfterFewSweeps) {
  const Csr<double> a = gen_varcoef2d(16, 16, 1.5, 7);
  const std::vector<double> b = make_rhs(a, 7);
  PcgOptions opt;
  opt.tolerance = 1e-10;

  ParIluOptions fp_opt;
  fp_opt.sweeps = 4;
  IluPreconditioner<double> m_fp(parilu0(a, fp_opt).result);
  const SolveResult<double> r_fp = pcg(a, b, m_fp, opt);
  EXPECT_TRUE(r_fp.converged());

  IluPreconditioner<double> m_exact(ilu0(a));
  const SolveResult<double> r_exact = pcg(a, b, m_exact, opt);
  ASSERT_TRUE(r_exact.converged());
  // A 4-sweep factor is close: within a modest iteration overhead.
  EXPECT_LE(r_fp.iterations, r_exact.iterations + 15);
}

TEST(ParIlu, MissingDiagonalThrows) {
  const Csr<double> a =
      csr_from_triplets<double>(2, 2, {{0, 0, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(parilu0(a), Error);
}

TEST(ParIlu, ComposesWithSparsification) {
  const Csr<double> a = gen_grid_laplacian(16, 16, 2.0, 0.4, 9);
  const std::vector<double> b = make_rhs(a, 9);
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a);
  ParIluOptions opt;
  opt.sweeps = 6;
  IluPreconditioner<double> m(parilu0(d.chosen.a_hat, opt).result);
  PcgOptions popt;
  popt.tolerance = 1e-10;
  const SolveResult<double> r = pcg(a, b, m, popt);
  EXPECT_TRUE(r.converged());
}

TEST(ParIlu, FactorDifferenceRequiresSamePattern) {
  const Csr<double> a = gen_poisson2d(6, 6);
  const Csr<double> b = gen_poisson2d(7, 6);
  const IluResult<double> fa = ilu0(a);
  const IluResult<double> fb = ilu0(b);
  EXPECT_THROW(factor_difference(fa, fb), Error);
}

}  // namespace
}  // namespace spcg
