// Tests for pipelined PCG: algebraic equivalence with classic PCG and
// robustness across preconditioners.
#include <gtest/gtest.h>

#include "core/sparsify.h"
#include "gen/generators.h"
#include "solver/pipelined_cg.h"

namespace spcg {
namespace {

TEST(PipelinedPcg, MatchesClassicPcgIterationForIteration) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const std::vector<double> b = make_rhs(a, 3);
  IluPreconditioner<double> m(ilu0(a));
  PcgOptions opt;
  opt.tolerance = 1e-10;
  opt.record_history = true;
  const SolveResult<double> classic = pcg(a, b, m, opt);
  const SolveResult<double> piped = pipelined_pcg(a, b, m, opt);
  ASSERT_TRUE(classic.converged());
  ASSERT_TRUE(piped.converged());
  // Algebraically identical recurrences: iteration counts match exactly (or
  // within one due to rounding drift) and residual histories track closely.
  EXPECT_LE(std::abs(piped.iterations - classic.iterations), 1);
  const std::size_t common =
      std::min(classic.residual_history.size(), piped.residual_history.size());
  for (std::size_t i = 0; i + 1 < common; ++i) {
    EXPECT_NEAR(std::log10(piped.residual_history[i] + 1e-300),
                std::log10(classic.residual_history[i] + 1e-300), 0.5)
        << "iteration " << i;
  }
  for (std::size_t i = 0; i < classic.x.size(); ++i)
    EXPECT_NEAR(piped.x[i], classic.x[i], 1e-7);
}

TEST(PipelinedPcg, SolvesDiagonalSystemImmediately) {
  const Csr<double> a = csr_from_triplets<double>(
      3, 3, {{0, 0, 2.0}, {1, 1, 4.0}, {2, 2, 8.0}});
  const std::vector<double> b{2.0, 4.0, 8.0};
  JacobiPreconditioner<double> m(a);
  PcgOptions opt;
  opt.tolerance = 1e-13;
  const SolveResult<double> r = pipelined_pcg(a, b, m, opt);
  ASSERT_TRUE(r.converged());
  for (const double x : r.x) EXPECT_NEAR(x, 1.0, 1e-11);
}

TEST(PipelinedPcg, WorksWithSparsifiedPreconditioner) {
  const Csr<double> a = gen_grid_laplacian(20, 20, 2.0, 0.4, 7);
  const std::vector<double> b = make_rhs(a, 7);
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a);
  IluPreconditioner<double> m(ilu0(d.chosen.a_hat));
  PcgOptions opt;
  opt.tolerance = 1e-10;
  const SolveResult<double> r = pipelined_pcg(a, b, m, opt);
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.final_residual_norm, 1e-9);
}

TEST(PipelinedPcg, MaxIterationCap) {
  const Csr<double> a = gen_poisson2d(24, 24);
  const std::vector<double> b = make_rhs(a, 9);
  IdentityPreconditioner<double> m(a.rows);
  PcgOptions opt;
  opt.tolerance = 1e-30;
  opt.max_iterations = 5;
  const SolveResult<double> r = pipelined_pcg(a, b, m, opt);
  EXPECT_EQ(r.status, SolveStatus::kMaxIterations);
  EXPECT_EQ(r.iterations, 5);
}

TEST(PipelinedPcg, ZeroRhs) {
  const Csr<double> a = gen_poisson2d(8, 8);
  const std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  IdentityPreconditioner<double> m(a.rows);
  const SolveResult<double> r = pipelined_pcg(a, b, m);
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace
}  // namespace spcg
