// Tests for the autotuning subsystem (src/autotune/): feature extraction,
// candidate enumeration, the cost-model prior, the persistent tuning
// database, the measured-trial tuner and its integration with the runtime
// service, plus the gpumodel calibration round trip.
//
// Fixture naming is load-bearing: Autotune* fixtures run under the TSan CI
// job (concurrent DB recording, the service worker pool). The wall-clock
// amortization acceptance test lives in TunerThroughput so it stays out of
// the sanitizer matrix, mirroring RuntimeThroughput.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "autotune/autotune.h"
#include "gen/generators.h"
#include "gpumodel/calibrate.h"
#include "precond/ilu.h"
#include "runtime/runtime.h"
#include "sparse/ops.h"
#include "sptrsv/sptrsv.h"
#include "support/stats.h"
#include "support/timer.h"

namespace spcg {
namespace {

SpcgOptions fast_options() {
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-8;
  opt.pcg.max_iterations = 2000;
  return opt;
}

TunerOptions fast_tuner_options() {
  TunerOptions topt;
  topt.base = fast_options();
  topt.measure_top = 4;
  return topt;
}

/// Unique-enough temp path under /tmp; removed by the caller.
std::string temp_path(const char* tag) {
  static std::atomic<int> counter{0};
  std::ostringstream os;
  os << "/tmp/spcg_autotune_test_" << tag << "_" << ::getpid() << "_"
     << counter.fetch_add(1) << ".json";
  return os.str();
}

TuneRecord make_record(std::uint64_t pattern, std::uint64_t values,
                       double score) {
  TuneRecord rec;
  rec.fingerprint.pattern_hash = pattern;
  rec.fingerprint.values_hash = values;
  rec.fingerprint.rows = 100;
  rec.fingerprint.nnz = 480;
  rec.features.rows = 100.0;
  rec.features.nnz = 480.0;
  rec.features.avg_nnz_per_row = 4.8;
  rec.features.max_nnz_per_row = 5.0;
  rec.features.avg_bandwidth = 3.5;
  rec.features.max_bandwidth = 10.0;
  rec.features.diag_dominance_min = 1.0;
  rec.features.diag_dominance_avg = 1.2;
  rec.features.wavefront_levels = 19.0;
  rec.features.avg_level_width = 5.26;
  rec.features.max_level_width = 10.0;
  rec.config.sparsify = TuneSparsify::kFixed;
  rec.config.ratio_percent = 5.0;
  rec.config.precond = TunePrecond::kIluK;
  rec.config.fill_level = 2;
  rec.config.executor = TrsvExec::kLevelScheduled;
  rec.score = score;
  rec.per_iteration_seconds = score / 100.0;
  rec.iterations = 100;
  rec.trials = 4;
  return rec;
}

// ------------------------------------------------------------------ features

TEST(AutotuneFeatures, DeterministicAndStructurallySensible) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const MatrixFeatures f = extract_features(a);
  EXPECT_EQ(f, extract_features(a));  // same bits -> same features

  EXPECT_DOUBLE_EQ(f.rows, 256.0);
  EXPECT_DOUBLE_EQ(f.nnz, static_cast<double>(a.nnz()));
  EXPECT_NEAR(f.avg_nnz_per_row, f.nnz / f.rows, 1e-12);
  EXPECT_EQ(f.max_nnz_per_row, 5.0);   // interior 5-point stencil row
  EXPECT_EQ(f.max_bandwidth, 16.0);    // the +/- nx neighbor
  // The 5-point Laplacian is weakly diagonally dominant everywhere.
  EXPECT_GE(f.diag_dominance_min, 1.0);
  EXPECT_GE(f.diag_dominance_avg, f.diag_dominance_min);
  // Lower-triangle wavefronts of the grid: nx + ny - 1 anti-diagonals.
  EXPECT_DOUBLE_EQ(f.wavefront_levels, 31.0);
  EXPECT_GT(f.max_level_width, 1.0);
  EXPECT_NEAR(f.avg_level_width, f.rows / f.wavefront_levels, 1e-9);
}

TEST(AutotuneFeatures, DistanceIsZeroOnSelfAndGrowsWithStructuralGap) {
  const MatrixFeatures f16 = extract_features(gen_poisson2d(16, 16));
  const MatrixFeatures f18 = extract_features(gen_poisson2d(18, 18));
  const MatrixFeatures f48 = extract_features(gen_poisson2d(48, 48));

  EXPECT_DOUBLE_EQ(feature_distance(f16, f16), 0.0);
  const double near = feature_distance(f16, f18);
  const double far = feature_distance(f16, f48);
  EXPECT_GT(near, 0.0);
  EXPECT_LT(near, far);
  // Symmetry.
  EXPECT_DOUBLE_EQ(near, feature_distance(f18, f16));
}

// ------------------------------------------------------------------- configs

TEST(AutotuneConfig, ConfigIdSpellingAndSessionCompatibility) {
  TuneConfig c;
  c.sparsify = TuneSparsify::kFixed;
  c.ratio_percent = 5.0;
  c.precond = TunePrecond::kIluK;
  c.fill_level = 2;
  c.executor = TrsvExec::kLevelScheduled;
  EXPECT_EQ(config_id(c), "fixed5/iluk2/level");
  EXPECT_TRUE(session_compatible(c));

  c.sparsify = TuneSparsify::kOff;
  c.precond = TunePrecond::kSai;
  c.executor = TrsvExec::kSerial;
  EXPECT_EQ(config_id(c), "off/sai/serial");
  EXPECT_FALSE(session_compatible(c));

  c.sparsify = TuneSparsify::kAdaptive;
  c.precond = TunePrecond::kIlu0;
  EXPECT_EQ(config_id(c), "adaptive/ilu0/serial");
  EXPECT_TRUE(session_compatible(c));
}

TEST(AutotuneConfig, ToSpcgOptionsProjectsThePolicy) {
  SpcgOptions base = fast_options();
  base.pcg.tolerance = 1e-9;

  TuneConfig fixed;
  fixed.sparsify = TuneSparsify::kFixed;
  fixed.ratio_percent = 5.0;
  fixed.precond = TunePrecond::kIluK;
  fixed.fill_level = 3;
  fixed.executor = TrsvExec::kLevelScheduled;
  const SpcgOptions opt = to_spcg_options(fixed, base);
  EXPECT_TRUE(opt.sparsify_enabled);
  ASSERT_EQ(opt.sparsify.ratios.size(), 1u);
  EXPECT_DOUBLE_EQ(opt.sparsify.ratios[0], 5.0);
  EXPECT_DOUBLE_EQ(opt.sparsify.omega_percent, 0.0);  // Algorithm 2 pinned
  EXPECT_EQ(opt.preconditioner, PrecondKind::kIluK);
  EXPECT_EQ(opt.fill_level, 3);
  EXPECT_EQ(opt.executor, TrsvExec::kLevelScheduled);
  EXPECT_DOUBLE_EQ(opt.pcg.tolerance, 1e-9);  // solve knobs preserved

  TuneConfig off;
  off.sparsify = TuneSparsify::kOff;
  off.precond = TunePrecond::kIlu0;
  EXPECT_FALSE(to_spcg_options(off, base).sparsify_enabled);
}

TEST(AutotuneConfig, EnumerateCandidatesIsDeterministicAndDuplicateFree) {
  const TuneSpace space;  // defaults: {off,10,5,1,adaptive} x {0..3} x {2 exec}
  const std::vector<TuneConfig> candidates = enumerate_candidates(space);
  // 5 sparsify policies x 4 fills x 2 executors + ILUT x 2 + SAI + BJ.
  EXPECT_EQ(candidates.size(), 5u * 4u * 2u + 4u);
  EXPECT_EQ(candidates, enumerate_candidates(space));
  for (std::size_t i = 0; i < candidates.size(); ++i)
    for (std::size_t j = i + 1; j < candidates.size(); ++j)
      EXPECT_FALSE(candidates[i] == candidates[j])
          << config_id(candidates[i]) << " appears twice";

  TuneSpace narrow;
  narrow.fixed_ratios = {};
  narrow.adaptive = false;
  narrow.alternatives = false;
  narrow.fill_levels = {0, 1};
  narrow.executors = {TrsvExec::kSerial};
  EXPECT_EQ(enumerate_candidates(narrow).size(), 2u);
}

// --------------------------------------------------------------------- prior

TEST(AutotunePrior, RanksAllCandidatesAscendingAndDeterministically) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const std::vector<TuneConfig> candidates = enumerate_candidates(TuneSpace{});
  const std::vector<CandidatePrior> ranked = rank_candidates(a, candidates);
  ASSERT_EQ(ranked.size(), candidates.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_GT(ranked[i].per_iteration_seconds, 0.0);
    EXPECT_GT(ranked[i].predicted_iterations, 0.0);
    EXPECT_TRUE(std::isfinite(ranked[i].score));
    if (i > 0) {
      EXPECT_GE(ranked[i].score, ranked[i - 1].score);
    }
  }
  // Deterministic: same input, same order.
  const std::vector<CandidatePrior> again = rank_candidates(a, candidates);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_TRUE(ranked[i].config == again[i].config);
    EXPECT_DOUBLE_EQ(ranked[i].score, again[i].score);
  }
}

// ------------------------------------------------------------------- tune DB

TEST(AutotuneDb, RecordLookupAndUpsertKeepTheBetterScore) {
  TuneDb db;
  EXPECT_EQ(db.size(), 0u);
  db.record(make_record(0x1111, 0xaaaa, 2.0));
  db.record(make_record(0x2222, 0xbbbb, 5.0));
  EXPECT_EQ(db.size(), 2u);

  const auto hit = db.find_exact(make_record(0x1111, 0xaaaa, 0.0).fingerprint);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->score, 2.0);
  EXPECT_EQ(config_id(hit->config), "fixed5/iluk2/level");

  // Upsert: a worse re-tune of the same matrix is ignored, a better one wins.
  TuneRecord worse = make_record(0x1111, 0xaaaa, 3.0);
  worse.config.fill_level = 1;
  db.record(worse);
  EXPECT_DOUBLE_EQ(db.find_exact(worse.fingerprint)->score, 2.0);
  TuneRecord better = make_record(0x1111, 0xaaaa, 1.0);
  better.config.fill_level = 1;
  db.record(better);
  EXPECT_DOUBLE_EQ(db.find_exact(better.fingerprint)->score, 1.0);
  EXPECT_EQ(db.find_exact(better.fingerprint)->config.fill_level, 1);
  EXPECT_EQ(db.size(), 2u);

  // Nearest neighbor: identical features at distance 0, and the exclusion
  // keeps a matrix from warm-starting off itself.
  const TuneRecord probe = make_record(0x3333, 0xcccc, 9.0);
  const auto self = db.find_nearest(probe.features, 1.0);
  ASSERT_TRUE(self.has_value());
  EXPECT_DOUBLE_EQ(self->distance, 0.0);
  db.record(probe);
  const auto excluded =
      db.find_nearest(probe.features, 1.0, &probe.fingerprint);
  ASSERT_TRUE(excluded.has_value());
  EXPECT_FALSE(excluded->record.fingerprint == probe.fingerprint);
  EXPECT_FALSE(db.find_nearest(probe.features, -1.0).has_value());
}

TEST(AutotuneDb, JsonAndFileRoundTripPreserveEveryField) {
  TuneDb db;
  db.record(make_record(0xdeadbeefcafef00d, 0x0123456789abcdef, 2.5));
  TuneRecord alt = make_record(0x42, 0x43, 7.25);
  alt.config.sparsify = TuneSparsify::kOff;
  alt.config.precond = TunePrecond::kBlockJacobi;
  alt.config.fill_level = 0;
  alt.config.executor = TrsvExec::kSerial;
  alt.iterations = 321;
  alt.trials = 6;
  db.record(alt);

  TuneDb parsed;
  ASSERT_EQ(parsed.from_json(db.to_json()), TuneDbLoad::kOk);
  ASSERT_EQ(parsed.size(), 2u);
  const std::vector<TuneRecord> a = db.snapshot();
  const std::vector<TuneRecord> b = parsed.snapshot();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].fingerprint == b[i].fingerprint);
    EXPECT_TRUE(a[i].features == b[i].features);
    EXPECT_TRUE(a[i].config == b[i].config);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    EXPECT_DOUBLE_EQ(a[i].per_iteration_seconds, b[i].per_iteration_seconds);
    EXPECT_EQ(a[i].iterations, b[i].iterations);
    EXPECT_EQ(a[i].trials, b[i].trials);
  }

  const std::string path = temp_path("roundtrip");
  ASSERT_TRUE(db.save_file(path));
  TuneDb loaded;
  EXPECT_EQ(loaded.load_file(path), TuneDbLoad::kOk);
  EXPECT_EQ(loaded.size(), 2u);
  std::remove(path.c_str());
}

TEST(AutotuneDb, LoadDistinguishesMissingMismatchedAndCorruptFiles) {
  TuneDb db;
  db.record(make_record(0x7, 0x8, 1.0));

  EXPECT_EQ(db.load_file("/tmp/spcg_autotune_no_such_file.json"),
            TuneDbLoad::kMissing);
  EXPECT_EQ(db.size(), 1u);  // failed loads never clobber the records

  // A future schema version is a mismatch, not corruption.
  std::string doc = db.to_json();
  const std::string tag = "\"version\": 1";
  const std::size_t at = doc.find(tag);
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, tag.size(), "\"version\": 99");
  EXPECT_EQ(db.from_json(doc), TuneDbLoad::kVersionMismatch);
  EXPECT_EQ(db.size(), 1u);

  EXPECT_EQ(db.from_json("this is not json"), TuneDbLoad::kCorrupt);
  EXPECT_EQ(db.from_json("{\"schema\": \"other\", \"version\": 1}"),
            TuneDbLoad::kCorrupt);
  EXPECT_EQ(db.from_json("{\"schema\": \"spcg-tune-db\", \"version\": 1, "
                         "\"records\": [{\"bogus\": true}]}"),
            TuneDbLoad::kCorrupt);
  EXPECT_EQ(db.size(), 1u);

  const std::string path = temp_path("corrupt");
  {
    std::ofstream out(path);
    out << "{\"schema\": \"spcg-tune-db\", \"version\": 1, \"records\": ";
    // Truncated mid-document.
  }
  EXPECT_EQ(db.load_file(path), TuneDbLoad::kCorrupt);
  EXPECT_EQ(db.size(), 1u);
  std::remove(path.c_str());
}

TEST(AutotuneDb, ConcurrentRecordingIsSafe) {
  TuneDb db;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Half the writes race on one shared fingerprint (the upsert path),
        // half insert distinct records; reads interleave throughout.
        if (i % 2 == 0) {
          db.record(make_record(0xffff, 0xffff,
                                1.0 + static_cast<double>(t * kPerThread + i)));
        } else {
          db.record(make_record(
              static_cast<std::uint64_t>(t) << 32 |
                  static_cast<std::uint64_t>(i),
              0x1, 1.0));
        }
        (void)db.find_exact(make_record(0xffff, 0xffff, 0.0).fingerprint);
        (void)db.size();
      }
    });
  }
  for (auto& t : threads) t.join();
  // One shared record + kThreads * kPerThread / 2 distinct ones.
  EXPECT_EQ(db.size(), 1u + kThreads * kPerThread / 2);
  // The racing upsert kept the smallest score ever offered.
  const auto shared = db.find_exact(make_record(0xffff, 0xffff, 0.0).fingerprint);
  ASSERT_TRUE(shared.has_value());
  EXPECT_DOUBLE_EQ(shared->score, 1.0);  // t=0, i=0
}

// --------------------------------------------------------------------- tuner

TEST(AutotuneTuner, FindsAConvergingConfigAndRecordsTheWinner) {
  const Csr<double> a = gen_poisson2d(20, 20);
  auto db = std::make_shared<TuneDb>();
  TelemetryRegistry telemetry;
  const Tuner<double> tuner(fast_tuner_options(), db, nullptr, &telemetry);

  const TuneOutcome out = tuner.tune(a);
  EXPECT_FALSE(out.db_hit);
  EXPECT_GT(out.candidates, 0u);
  EXPECT_GT(out.trials_measured, 0u);
  EXPECT_LE(out.trials_measured, fast_tuner_options().measure_top + 1);
  EXPECT_EQ(out.pruned, out.candidates - out.trials_measured);
  EXPECT_GT(out.iterations, 0);
  EXPECT_GT(out.score, 0.0);
  // The winner itself must have converged in its trial.
  bool winner_seen = false;
  for (const TuneTrial& t : out.trials) {
    if (t.config == out.config) {
      winner_seen = true;
      EXPECT_TRUE(t.converged);
      EXPECT_FALSE(t.aborted);
    }
    // Early-abort bookkeeping is consistent.
    if (t.aborted) {
      EXPECT_FALSE(t.converged);
    }
  }
  EXPECT_TRUE(winner_seen);
  EXPECT_EQ(db->size(), 1u);

  // Re-tuning the same matrix answers from the DB with zero trials.
  const TuneOutcome warm = tuner.tune(a);
  EXPECT_TRUE(warm.db_hit);
  EXPECT_EQ(warm.trials_measured, 0u);
  EXPECT_EQ(config_id(warm.config), config_id(out.config));
  EXPECT_EQ(telemetry.counter("autotune.db_hits").value(), 1u);
}

TEST(AutotuneTuner, SecondProcessReachesTheSameConfigWithZeroTrials) {
  const Csr<double> a = gen_poisson2d(20, 20);
  const std::string path = temp_path("second_process");

  // "Process" 1 tunes and persists its database.
  std::string first_config;
  {
    auto db = std::make_shared<TuneDb>();
    const Tuner<double> tuner(fast_tuner_options(), db);
    const TuneOutcome out = tuner.tune(a);
    EXPECT_FALSE(out.db_hit);
    first_config = config_id(out.config);
    ASSERT_TRUE(db->save_file(path));
  }

  // "Process" 2 starts cold, points at the same file, and must reach the
  // same configuration as a pure DB hit — zero measured trials.
  {
    auto db = std::make_shared<TuneDb>();
    ASSERT_EQ(db->load_file(path), TuneDbLoad::kOk);
    const Tuner<double> tuner(fast_tuner_options(), db);
    const TuneOutcome out = tuner.tune(a);
    EXPECT_TRUE(out.db_hit);
    EXPECT_EQ(out.trials_measured, 0u);
    EXPECT_EQ(config_id(out.config), first_config);
  }
  std::remove(path.c_str());
}

TEST(AutotuneTuner, EarlyAbortNeverChangesTheWinner) {
  // The abort cap is ceil(incumbent_score / per_iteration_seconds): a capped
  // trial already scores >= the incumbent, so aborting it cannot discard a
  // config full measurement would have selected. Check the winner matches a
  // run with early aborts disabled, on matrices with different structure.
  const std::array<Csr<double>, 2> matrices = {
      gen_poisson2d(18, 18), gen_grid_laplacian(16, 16, 1.5, 0.4, 3)};
  for (const Csr<double>& a : matrices) {
    TunerOptions with = fast_tuner_options();
    with.measure_top = 6;
    with.early_abort = true;
    TunerOptions without = with;
    without.early_abort = false;

    const Tuner<double> tuner_abort(with, std::make_shared<TuneDb>());
    const Tuner<double> tuner_full(without, std::make_shared<TuneDb>());
    const TuneOutcome aborted = tuner_abort.tune(a);
    const TuneOutcome full = tuner_full.tune(a);

    EXPECT_EQ(config_id(aborted.config), config_id(full.config));
    EXPECT_EQ(aborted.iterations, full.iterations);
    EXPECT_EQ(full.early_aborts, 0u);
    // Any trial the abort path cut short scored no better than the winner.
    for (const TuneTrial& t : aborted.trials) {
      if (t.aborted) {
        EXPECT_GE(t.score, aborted.score);
      }
    }
  }
}

TEST(AutotuneTuner, NearbyMatrixWarmStartsFromTheNeighborRecord) {
  const Csr<double> a = gen_poisson2d(20, 20);
  const Csr<double> close = gen_poisson2d(22, 22);
  ASSERT_LT(feature_distance(extract_features(a), extract_features(close)),
            fast_tuner_options().neighbor_max_distance);

  auto db = std::make_shared<TuneDb>();
  const Tuner<double> tuner(fast_tuner_options(), db);
  (void)tuner.tune(a);
  ASSERT_EQ(db->size(), 1u);

  const TuneOutcome out = tuner.tune(close);
  EXPECT_FALSE(out.db_hit);  // different fingerprint
  EXPECT_TRUE(out.neighbor_seeded);
  EXPECT_GT(out.neighbor_distance, 0.0);
  // The neighbor's config was measured first (promoted to the shortlist
  // front), so it appears among the trials.
  ASSERT_FALSE(out.trials.empty());
  const TuneRecord seed = db->snapshot().front();
  EXPECT_TRUE(out.trials.front().config == seed.config);
  EXPECT_EQ(db->size(), 2u);
}

// --------------------------------------------------------- fill-level wrapper

TEST(AutotuneFillLevel, TrialsAreSurfacedAndWrapperAgrees) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const std::vector<double> b = make_rhs(a, 11);
  const std::vector<index_t> candidates = {0, 1, 2, 3};

  TelemetryRegistry telemetry;
  const KSelection<double> tuned =
      tune_fill_level(a, b, fast_options(), candidates, nullptr, &telemetry);
  ASSERT_EQ(tuned.trials.size(), candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const KCandidateTrial& t = tuned.trials[i];
    EXPECT_EQ(t.k, candidates[i]);
    EXPECT_GT(t.iterations, 0);
    EXPECT_GE(t.setup_seconds, 0.0);
    EXPECT_GE(t.solve_seconds, 0.0);
    EXPECT_TRUE(t.converged);
  }
  EXPECT_EQ(telemetry.counter("autotune.fill_level.probes").value(),
            candidates.size());

  // The winner is consistent with its own trial data: no converged trial
  // has strictly fewer iterations.
  const auto winner = std::find_if(
      tuned.trials.begin(), tuned.trials.end(),
      [&](const KCandidateTrial& t) { return t.k == tuned.k; });
  ASSERT_NE(winner, tuned.trials.end());
  for (const KCandidateTrial& t : tuned.trials)
    EXPECT_GE(t.iterations, winner->iterations);

  // The deprecated session.h wrapper forwards here and agrees exactly.
  const KSelection<double> wrapped =
      select_best_fill_level(a, b, fast_options(), candidates);
  EXPECT_EQ(wrapped.k, tuned.k);
  EXPECT_EQ(wrapped.trials.size(), tuned.trials.size());
  EXPECT_EQ(wrapped.baseline.solve.iterations,
            tuned.baseline.solve.iterations);
}

// ------------------------------------------------------------------- service

TEST(AutotuneService, AutotunedRequestsShareTheTuningDb) {
  auto a = std::make_shared<const Csr<double>>(gen_poisson2d(16, 16));
  SolveService<double>::Options opt;
  opt.workers = 1;  // sequential processing: later requests see the DB entry
  opt.cache_capacity = 8;
  opt.tune_db = std::make_shared<TuneDb>();
  opt.tuner = fast_tuner_options();
  SolveService<double> service(opt);

  std::vector<SolveService<double>::Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    ServiceRequest<double> req;
    req.a = a;
    req.b = make_rhs(*a, static_cast<std::uint64_t>(i) + 1);
    req.options = fast_options();
    req.autotune = true;
    tickets.push_back(service.submit(std::move(req)));
  }
  std::string first_config;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const ServiceReply<double> reply = tickets[i].reply.get();
    ASSERT_EQ(reply.status, RequestStatus::kOk);
    EXPECT_TRUE(reply.solve.converged());
    EXPECT_TRUE(reply.autotuned);
    ASSERT_FALSE(reply.tuned_config.empty());
    if (i == 0) {
      first_config = reply.tuned_config;
    } else {
      EXPECT_TRUE(reply.tune_db_hit);
      EXPECT_EQ(reply.tuned_config, first_config);
    }
  }
  EXPECT_EQ(service.tune_db()->size(), 1u);
  std::uint64_t autotuned_count = 0;
  for (const CounterSample& s : service.telemetry_snapshot())
    if (s.name == "service.autotuned") autotuned_count = s.value;
  EXPECT_EQ(autotuned_count, 3u);
}

// --------------------------------------------------------------- calibration

TEST(AutotuneCalibration, RecoversCoefficientsFromSyntheticMeasurements) {
  // Noise-free round trip: synthesize timings from a known spec's additive
  // surrogate, calibrate a detuned copy against them, and the fit must
  // reproduce the truth's predictions.
  const DeviceSpec truth = device_host_cpu();
  const Csr<double> a = gen_poisson2d(24, 24);
  std::vector<Measurement> meas = host_measurements(a, 1);
  ASSERT_GE(meas.size(), 5u);
  for (Measurement& m : meas) m.seconds = calibrated_prediction(truth, m);

  DeviceSpec detuned = truth;
  detuned.dram_gbps *= 4.0;      // pretend memory is 4x faster...
  detuned.peak_gflops *= 0.25;   // ...and compute 4x slower
  const CalibrationResult cal = calibrate(detuned, meas);
  ASSERT_EQ(cal.measurements, meas.size());
  EXPECT_LT(cal.mean_abs_rel_error, 0.05);
  for (const Measurement& m : meas) {
    EXPECT_NEAR(calibrated_prediction(cal.spec, m), m.seconds,
                0.05 * m.seconds + 1e-12);
  }
}

TEST(AutotuneCalibration, TooFewMeasurementsLeaveTheSpecUntouched) {
  const DeviceSpec spec = device_host_cpu();
  std::vector<Measurement> meas(3);
  const CalibrationResult cal = calibrate(spec, meas);
  EXPECT_EQ(cal.measurements, 0u);
  EXPECT_DOUBLE_EQ(cal.spec.dram_gbps, spec.dram_gbps);
  EXPECT_DOUBLE_EQ(cal.spec.peak_gflops, spec.peak_gflops);
}

TEST(AutotuneCalibration, CalibratedModelRanksConfigsLikeMeasurements) {
  // The satellite's round trip: fit the host spec from measured
  // micro-kernels on the Poisson generator, then check the calibrated cost
  // model ranks ILU(0)/ILU(1)/ILU(3) per-iteration costs in the same order
  // wall-clock measurement does.
  const Csr<double> a = gen_poisson2d(64, 64);
  const std::vector<Measurement> meas = host_measurements(a, 9);
  const CalibrationResult cal = calibrate(device_host_cpu(), meas);
  ASSERT_EQ(cal.measurements, meas.size());
  EXPECT_GE(cal.mean_abs_rel_error, 0.0);
  EXPECT_TRUE(std::isfinite(cal.mean_abs_rel_error));

  const CostModel model(cal.spec, 8);
  const std::vector<double> x(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  std::vector<double> measured, predicted;
  for (const index_t k : {0, 1, 3}) {
    const IluResult<double> fact = k == 0 ? ilu0(a) : iluk(a, k);
    const TriangularFactors<double> factors = split_lu(fact);
    PcgIterationShape shape;
    shape.n = a.rows;
    shape.a_nnz = a.nnz();
    shape.lower = trisolve_structure(factors.l, Triangle::kLower);
    shape.upper = trisolve_structure(factors.u, Triangle::kUpper);
    predicted.push_back(model.pcg_iteration(shape).seconds);

    // Measured proxy for one iteration's kernel work: the two triangular
    // solves plus the SpMV, median of repeats.
    std::vector<double> times;
    for (int r = 0; r < 9; ++r) {
      WallTimer timer;
      spmv(a, std::span<const double>(x), std::span<double>(y));
      sptrsv_lower_serial(factors.l, std::span<const double>(x),
                          std::span<double>(y));
      sptrsv_upper_serial(factors.u, std::span<const double>(x),
                          std::span<double>(y));
      times.push_back(timer.seconds());
    }
    std::sort(times.begin(), times.end());
    measured.push_back(times[times.size() / 2]);
  }
  EXPECT_GE(spearman(std::span<const double>(measured),
                     std::span<const double>(predicted)),
            0.9)
      << "measured: " << measured[0] << " " << measured[1] << " "
      << measured[2] << "  predicted: " << predicted[0] << " " << predicted[1]
      << " " << predicted[2];
}

// ------------------------------------------------- amortization (wall clock)

// Acceptance: over >= 10 repeat solves, the autotuned path — tuning cost
// included, repeats answered by DB hits and the shared setup cache — is no
// slower end-to-end than the best fixed configuration, where "best fixed"
// honestly includes the cost of discovering which fixed config is best (a
// user without the tuner must try them all once). Out of the TSan matrix:
// fixture name deliberately avoids the Autotune prefix.
TEST(TunerThroughput, AmortizedTunedSolvesNoSlowerThanBestFixed) {
  const Csr<double> a = gen_poisson2d(40, 40);
  const std::vector<double> b = make_rhs(a, 7);
  constexpr int kRepeats = 10;

  // Fixed side: try every fixed policy (the paper's ratios + baseline),
  // each paying its full pipeline per repeat; keep the fastest total.
  double try_all_seconds = 0.0;
  double best_fixed_seconds = -1.0;
  std::string best_fixed_label;
  for (const auto& [label, ratio] :
       std::vector<std::pair<std::string, double>>{
           {"off", -1.0}, {"fixed10", 10.0}, {"fixed5", 5.0}, {"fixed1", 1.0}}) {
    SpcgOptions opt = fast_options();
    if (ratio < 0.0) {
      opt.sparsify_enabled = false;
    } else {
      opt.sparsify_enabled = true;
      opt.sparsify.ratios = {ratio};
      opt.sparsify.omega_percent = 0.0;
    }
    WallTimer timer;
    for (int r = 0; r < kRepeats; ++r) {
      const SpcgResult<double> res = spcg_solve(a, b, opt);
      ASSERT_TRUE(res.solve.converged()) << label;
    }
    const double total = timer.seconds();
    try_all_seconds += total;
    if (best_fixed_seconds < 0.0 || total < best_fixed_seconds) {
      best_fixed_seconds = total;
      best_fixed_label = label;
    }
  }

  // Autotuned side: tune once (measured trials and all), then answer the
  // repeat workload through the tuned config + shared cache; a fresh tune
  // per repeat is a pure DB hit.
  const Tuner<double> tuner(fast_tuner_options(), std::make_shared<TuneDb>());
  WallTimer timer;
  TuneOutcome outcome = tuner.tune(a);
  for (int r = 0; r < kRepeats; ++r) {
    const TuneOutcome again = tuner.tune(a);
    ASSERT_TRUE(again.db_hit);
    ASSERT_EQ(again.trials_measured, 0u);
    const TunedSolve<double> run = solve_with_config(
        a, std::span<const double>(b), again.config, tuner.options(),
        tuner.cache());
    ASSERT_TRUE(run.solve.converged());
  }
  const double tuned_seconds = timer.seconds();

  EXPECT_LE(tuned_seconds, try_all_seconds)
      << "autotuned " << tuned_seconds << " s vs try-all fixed "
      << try_all_seconds << " s (best fixed " << best_fixed_label << " "
      << best_fixed_seconds << " s, winner " << config_id(outcome.config)
      << ", " << outcome.trials_measured << " trials)";
}

}  // namespace
}  // namespace spcg
