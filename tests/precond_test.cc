// Unit + property tests for ILU(0), symbolic/numeric ILU(K), and the
// preconditioner wrappers.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.h"
#include "precond/ilu.h"
#include "precond/preconditioner.h"
#include "sparse/norms.h"
#include "sparse/ops.h"

namespace spcg {
namespace {

/// Dense reconstruction of L*U from a combined factor, for small checks.
std::vector<double> dense_lu_product(const IluResult<double>& r) {
  const TriangularFactors<double> f = split_lu(r);
  const index_t n = f.l.rows;
  std::vector<double> out(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t p = f.l.rowptr[i]; p < f.l.rowptr[i + 1]; ++p) {
      const index_t k = f.l.colind[static_cast<std::size_t>(p)];
      const double lik = f.l.values[static_cast<std::size_t>(p)];
      for (index_t q = f.u.rowptr[k]; q < f.u.rowptr[k + 1]; ++q) {
        const index_t j = f.u.colind[static_cast<std::size_t>(q)];
        out[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
            static_cast<std::size_t>(j)] +=
            lik * f.u.values[static_cast<std::size_t>(q)];
      }
    }
  }
  return out;
}

TEST(Ilu0, ExactForTridiagonal) {
  // A tridiagonal matrix has no fill, so ILU(0) == exact LU: L*U == A.
  const index_t n = 12;
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < n; ++i) {
    ts.push_back({i, i, 3.0});
    if (i > 0) ts.push_back({i, i - 1, -1.0});
    if (i + 1 < n) ts.push_back({i, i + 1, -1.0});
  }
  const Csr<double> a = csr_from_triplets<double>(n, n, std::move(ts));
  const IluResult<double> r = ilu0(a);
  EXPECT_FALSE(r.breakdown);
  const std::vector<double> lu = dense_lu_product(r);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(lu[static_cast<std::size_t>(i * n + j)], a.at(i, j), 1e-12)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(Ilu0, MatchesOnPatternForPoisson) {
  // ILU(0) residual A - L*U must vanish exactly ON the pattern of A.
  const Csr<double> a = gen_poisson2d(8, 8);
  const IluResult<double> r = ilu0(a);
  const std::vector<double> lu = dense_lu_product(r);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[i]; p < a.rowptr[i + 1]; ++p) {
      const index_t j = a.colind[static_cast<std::size_t>(p)];
      EXPECT_NEAR(lu[static_cast<std::size_t>(i) * static_cast<std::size_t>(a.rows) +
                     static_cast<std::size_t>(j)],
                  a.values[static_cast<std::size_t>(p)], 1e-10);
    }
  }
}

TEST(Ilu0, ZeroPivotThrowsWhenBoostDisabled) {
  // [0 1; 1 0] has a zero pivot immediately.
  const Csr<double> a = csr_from_triplets<double>(
      2, 2, {{0, 0, 0.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 0.0}});
  IluOptions opt;
  opt.boost_zero_pivots = false;
  EXPECT_THROW(ilu0(a, opt), Error);
  // With boosting it survives and flags breakdown.
  const IluResult<double> r = ilu0(a);
  EXPECT_TRUE(r.breakdown);
}

TEST(Ilu0, MissingDiagonalThrows) {
  const Csr<double> a =
      csr_from_triplets<double>(2, 2, {{0, 0, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(ilu0(a), Error);
}

TEST(Ilu0, CountsEliminationOps) {
  const Csr<double> a = gen_poisson2d(6, 6);
  const IluResult<double> r = ilu0(a);
  EXPECT_GT(r.elimination_ops, 0u);
  EXPECT_EQ(r.fill_nnz, 0);
}

TEST(IlukSymbolic, Level0EqualsInputPattern) {
  const Csr<double> a = gen_poisson2d(7, 7);
  const IlukSymbolic sym = iluk_symbolic(a, 0);
  EXPECT_EQ(sym.pattern.rowptr, a.rowptr);
  EXPECT_EQ(sym.pattern.colind, a.colind);
  for (const index_t lev : sym.levels) EXPECT_EQ(lev, 0);
}

TEST(IlukSymbolic, FillGrowsMonotonicallyWithK) {
  const Csr<double> a = gen_poisson2d(10, 10);
  index_t prev = a.nnz();
  for (const index_t k : {1, 2, 3, 5, 8}) {
    const IlukSymbolic sym = iluk_symbolic(a, k);
    sym.pattern.validate();
    EXPECT_GE(sym.pattern.nnz(), prev) << "k=" << k;
    prev = sym.pattern.nnz();
    // Levels are within bounds and original entries keep level 0.
    for (std::size_t p = 0; p < sym.levels.size(); ++p)
      EXPECT_LE(sym.levels[p], k);
  }
}

TEST(IlukSymbolic, TridiagonalNeverFills) {
  // Tridiagonal elimination creates no fill at any level.
  const index_t n = 30;
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < n; ++i) {
    ts.push_back({i, i, 2.0});
    if (i > 0) ts.push_back({i, i - 1, -1.0});
    if (i + 1 < n) ts.push_back({i, i + 1, -1.0});
  }
  const Csr<double> a = csr_from_triplets<double>(n, n, std::move(ts));
  const IlukSymbolic sym = iluk_symbolic(a, 40);
  EXPECT_EQ(sym.pattern.nnz(), a.nnz());
}

TEST(IlukSymbolic, GappedBandFillsTheGapAtLevelOne) {
  // Pattern holds distances {0, 1, 3} only. Eliminating (i, i-1) against row
  // i-1 (whose U-part reaches i-1+3 = i+2) creates fill at distance 2 with
  // level 0+0+1 = 1. All level-1 fill stays within distance 4.
  const index_t n = 20;
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < n; ++i) {
    ts.push_back({i, i, 4.0});
    for (const index_t d : {1, 3}) {
      if (i + d < n) {
        ts.push_back({i, i + d, -1.0});
        ts.push_back({i + d, i, -1.0});
      }
    }
  }
  const Csr<double> a = csr_from_triplets<double>(n, n, std::move(ts));
  const IlukSymbolic s1 = iluk_symbolic(a, 1);
  EXPECT_GT(s1.pattern.nnz(), a.nnz());
  bool fill_at_distance2 = false;
  for (index_t i = 0; i < n; ++i) {
    for (index_t p = s1.pattern.rowptr[i]; p < s1.pattern.rowptr[i + 1]; ++p) {
      const index_t j = s1.pattern.colind[static_cast<std::size_t>(p)];
      EXPECT_LE(std::abs(i - j), 4);
      if (std::abs(i - j) == 2) fill_at_distance2 = true;
    }
  }
  EXPECT_TRUE(fill_at_distance2);
}

TEST(IlukSymbolic, FullBandNeverFills) {
  // A dense band of half-bandwidth 2 is closed under elimination: LU fill
  // stays inside the band, which is already fully stored -> no new entries.
  const index_t n = 20;
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < n; ++i) {
    ts.push_back({i, i, 4.0});
    for (index_t d = 1; d <= 2; ++d) {
      if (i + d < n) {
        ts.push_back({i, i + d, -1.0});
        ts.push_back({i + d, i, -1.0});
      }
    }
  }
  const Csr<double> a = csr_from_triplets<double>(n, n, std::move(ts));
  const IlukSymbolic s = iluk_symbolic(a, 5);
  EXPECT_EQ(s.pattern.nnz(), a.nnz());
}

TEST(IlukSymbolic, RowCapTruncatesAndReports) {
  const Csr<double> a = gen_poisson2d(12, 12);
  const IlukSymbolic full = iluk_symbolic(a, 10);
  index_t max_row = 0;
  for (index_t i = 0; i < a.rows; ++i)
    max_row = std::max(max_row, full.pattern.rowptr[i + 1] -
                                    full.pattern.rowptr[i]);
  ASSERT_GT(max_row, 6);
  const index_t cap = max_row - 2;
  const IlukSymbolic capped = iluk_symbolic(a, 10, cap);
  EXPECT_GT(capped.truncated_rows, 0);
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_LE(capped.pattern.rowptr[i + 1] - capped.pattern.rowptr[i], cap);
  }
  capped.pattern.validate();
}

TEST(Iluk, RowCapMayDropOriginalEntriesWithoutThrowing) {
  // A dense-ish row exceeding the cap: the symbolic phase truncates it and
  // the numeric scatter must tolerate the lost original entries.
  const index_t n = 40;
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < n; ++i) ts.push_back({i, i, 10.0 + i});
  for (index_t j = 1; j < n; ++j) {
    ts.push_back({0, j, -0.1});
    ts.push_back({j, 0, -0.1});
  }
  const Csr<double> a = csr_from_triplets<double>(n, n, std::move(ts));
  const IluResult<double> r = iluk(a, 2, IluOptions{}, /*max_row_fill=*/8);
  EXPECT_LE(r.lu.rowptr[1] - r.lu.rowptr[0], 8);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_GT(r.lu.values[static_cast<std::size_t>(
                  r.diag_pos[static_cast<std::size_t>(i)])],
              0.0);
  }
}

TEST(Iluk, LargeKEqualsExactLuOnSmallMatrix) {
  // For K >= n the factorization is a complete LU: L*U == A everywhere.
  const Csr<double> a = gen_grid_laplacian(5, 5, 1.0, 0.5, 3);
  const IluResult<double> r = iluk(a, 60);
  const std::vector<double> lu = dense_lu_product(r);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t j = 0; j < a.cols; ++j) {
      EXPECT_NEAR(lu[static_cast<std::size_t>(i) * static_cast<std::size_t>(a.rows) +
                     static_cast<std::size_t>(j)],
                  a.at(i, j), 1e-9);
    }
  }
  EXPECT_GT(r.fill_nnz, 0);
}

TEST(Iluk, K0MatchesIlu0) {
  const Csr<double> a = gen_varcoef2d(9, 9, 1.0, 5);
  const IluResult<double> r0 = ilu0(a);
  const IluResult<double> rk = iluk(a, 0);
  ASSERT_EQ(r0.lu.colind, rk.lu.colind);
  for (std::size_t p = 0; p < r0.lu.values.size(); ++p)
    EXPECT_NEAR(r0.lu.values[p], rk.lu.values[p], 1e-14);
}

TEST(Iluk, PreconditionerQualityImprovesWithK) {
  // ||A - L*U||_F should shrink as K grows.
  const Csr<double> a = gen_poisson2d(9, 9);
  double prev = std::numeric_limits<double>::infinity();
  for (const index_t k : {0, 1, 2, 4, 8}) {
    const IluResult<double> r = iluk(a, k);
    const std::vector<double> lu = dense_lu_product(r);
    double err = 0.0;
    for (index_t i = 0; i < a.rows; ++i) {
      for (index_t j = 0; j < a.cols; ++j) {
        const double d =
            lu[static_cast<std::size_t>(i) * static_cast<std::size_t>(a.rows) +
               static_cast<std::size_t>(j)] -
            a.at(i, j);
        err += d * d;
      }
    }
    err = std::sqrt(err);
    EXPECT_LE(err, prev * (1.0 + 1e-12)) << "k=" << k;
    prev = err;
  }
}

TEST(Iluk, FillDeepensTheSchedule) {
  // The paper's ILU(K) premise: fill-in adds dependences, so the factor's
  // wavefront count grows (weakly) with K — which is why sparsification has
  // more to remove for ILU(K) than for ILU(0).
  for (const Csr<double>& a :
       {gen_poisson2d(16, 16), gen_varcoef2d(14, 14, 1.5, 5),
        gen_kernel2d(16, 16, 2.5, 0.8, true, 7)}) {
    index_t prev = 0;
    for (const index_t k : {0, 1, 2, 4}) {
      const IluResult<double> f = iluk(a, k);
      const index_t wf = count_wavefronts(f.lu);
      EXPECT_GE(wf, prev) << "k=" << k;
      prev = wf;
    }
  }
}

TEST(SplitLu, ShapesAndUnitDiagonal) {
  const Csr<double> a = gen_poisson2d(6, 6);
  const IluResult<double> r = ilu0(a);
  const TriangularFactors<double> f = split_lu(r);
  f.l.validate();
  f.u.validate();
  EXPECT_EQ(f.l.nnz() + f.u.nnz(), r.lu.nnz() + a.rows);  // unit diag added
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_DOUBLE_EQ(f.l.at(i, i), 1.0);
    EXPECT_NE(f.u.find(i, i), -1);
    // Strict triangularity.
    for (index_t p = f.l.rowptr[i]; p < f.l.rowptr[i + 1]; ++p)
      EXPECT_LE(f.l.colind[static_cast<std::size_t>(p)], i);
    for (index_t p = f.u.rowptr[i]; p < f.u.rowptr[i + 1]; ++p)
      EXPECT_GE(f.u.colind[static_cast<std::size_t>(p)], i);
  }
}

TEST(Preconditioner, JacobiApply) {
  const Csr<double> a = csr_from_triplets<double>(
      2, 2, {{0, 0, 2.0}, {1, 1, 4.0}});
  JacobiPreconditioner<double> m(a);
  std::vector<double> r{2.0, 2.0}, z(2);
  m.apply(r, std::span<double>(z));
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 0.5);
}

TEST(Preconditioner, JacobiRejectsZeroDiagonal) {
  const Csr<double> a =
      csr_from_triplets<double>(2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(JacobiPreconditioner<double>{a}, Error);
}

TEST(Preconditioner, IdentityCopies) {
  IdentityPreconditioner<double> m(3);
  std::vector<double> r{1, 2, 3}, z(3);
  m.apply(r, std::span<double>(z));
  EXPECT_EQ(z, r);
}

TEST(Preconditioner, IluApplySolvesLuSystem) {
  // With ILU(huge K) == exact LU, apply() must invert A exactly.
  const Csr<double> a = gen_grid_laplacian(6, 6, 1.0, 0.5, 9);
  IluPreconditioner<double> m(iluk(a, 100), TrsvExec::kSerial);
  std::vector<double> x_true(static_cast<std::size_t>(a.rows));
  for (std::size_t i = 0; i < x_true.size(); ++i)
    x_true[i] = 0.1 * static_cast<double>(i) - 1.0;
  const std::vector<double> r = spmv(a, x_true);
  std::vector<double> z(x_true.size());
  m.apply(r, std::span<double>(z));
  for (std::size_t i = 0; i < x_true.size(); ++i)
    EXPECT_NEAR(z[i], x_true[i], 1e-8);
}

TEST(Preconditioner, SerialAndLevelScheduledAgree) {
  const Csr<double> a = gen_mesh_laplacian(10, 10, 0.3, 0.05, 21);
  IluPreconditioner<double> serial(ilu0(a), TrsvExec::kSerial);
  IluPreconditioner<double> levels(ilu0(a), TrsvExec::kLevelScheduled);
  std::vector<double> r(static_cast<std::size_t>(a.rows));
  for (std::size_t i = 0; i < r.size(); ++i)
    r[i] = std::sin(static_cast<double>(i));
  std::vector<double> z1(r.size()), z2(r.size());
  serial.apply(r, std::span<double>(z1));
  levels.apply(r, std::span<double>(z2));
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_NEAR(z1[i], z2[i], 1e-13);
}

TEST(Preconditioner, Ic0AcceptsSpdRejectsIndefinite) {
  const Csr<double> spd = gen_poisson2d(5, 5);
  EXPECT_NO_THROW(make_ic0(spd));
  // Indefinite symmetric matrix -> negative pivot somewhere.
  const Csr<double> indef = csr_from_triplets<double>(
      2, 2, {{0, 0, 1.0}, {0, 1, 3.0}, {1, 0, 3.0}, {1, 1, 1.0}});
  EXPECT_THROW(make_ic0(indef), Error);
}

// Property sweep: ILU across generator families never breaks down on the
// diagonally dominant constructions and produces positive U pivots.
class IluPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IluPropertyTest, PositivePivotsOnDominantMatrices) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const Csr<double>& a :
       {gen_grid_laplacian(12, 12, 2.0, 0.3, seed),
        gen_varcoef2d(12, 12, 1.5, seed),
        gen_banded(150, 6, 0.4, false, seed)}) {
    IluOptions strict;
    strict.boost_zero_pivots = false;
    const IluResult<double> r = ilu0(a, strict);
    for (index_t i = 0; i < a.rows; ++i) {
      EXPECT_GT(r.lu.values[static_cast<std::size_t>(
                    r.diag_pos[static_cast<std::size_t>(i)])],
                0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IluPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace spcg
