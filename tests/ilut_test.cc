// Tests for ILUT(tau, p), the dual-threshold incomplete LU.
#include <gtest/gtest.h>

#include "core/sparsify.h"
#include "gen/generators.h"
#include "precond/ilut.h"
#include "precond/preconditioner.h"
#include "solver/pcg.h"

namespace spcg {
namespace {

TEST(Ilut, ZeroTolUnlimitedFillEqualsExactLu) {
  // With no dropping, ILUT is a complete LU: it must match ILU(huge K).
  const Csr<double> a = gen_grid_laplacian(6, 6, 1.0, 0.5, 3);
  IlutOptions opt;
  opt.drop_tol = 0.0;
  opt.max_fill = a.rows;
  const IluResult<double> t = ilut(a, opt);
  const IluResult<double> exact = iluk(a, 100);
  ASSERT_EQ(t.lu.colind, exact.lu.colind);
  for (std::size_t p = 0; p < t.lu.values.size(); ++p)
    EXPECT_NEAR(t.lu.values[p], exact.lu.values[p], 1e-10);
}

TEST(Ilut, FactorIsValidCombinedLu) {
  const Csr<double> a = gen_varcoef2d(14, 14, 1.5, 7);
  const IluResult<double> t = ilut(a);
  t.lu.validate();
  for (index_t i = 0; i < a.rows; ++i) {
    const index_t d = t.diag_pos[static_cast<std::size_t>(i)];
    ASSERT_GE(d, 0);
    EXPECT_EQ(t.lu.colind[static_cast<std::size_t>(d)], i);
    EXPECT_NE(t.lu.values[static_cast<std::size_t>(d)], 0.0);
  }
}

TEST(Ilut, MaxFillCapsRowParts) {
  const Csr<double> a = gen_poisson2d(14, 14);
  IlutOptions opt;
  opt.drop_tol = 0.0;  // only the fill cap binds
  opt.max_fill = 3;
  const IluResult<double> t = ilut(a, opt);
  for (index_t i = 0; i < a.rows; ++i) {
    index_t lower = 0, upper = 0;
    for (index_t p = t.lu.rowptr[static_cast<std::size_t>(i)];
         p < t.lu.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = t.lu.colind[static_cast<std::size_t>(p)];
      if (j < i) ++lower;
      if (j > i) ++upper;
    }
    EXPECT_LE(lower, 3);
    EXPECT_LE(upper, 3);
  }
}

TEST(Ilut, TighterTolGivesBetterPreconditioner) {
  const Csr<double> a = gen_poisson2d(20, 20);
  const std::vector<double> b = make_rhs(a, 5);
  PcgOptions popt;
  popt.tolerance = 1e-10;
  std::int32_t prev_iters = 0;
  for (const double tol : {1e-2, 1e-3, 1e-4}) {
    IlutOptions opt;
    opt.drop_tol = tol;
    opt.max_fill = 30;
    IluPreconditioner<double> m(ilut(a, opt));
    const SolveResult<double> r = pcg(a, b, m, popt);
    ASSERT_TRUE(r.converged()) << "tol=" << tol;
    if (prev_iters > 0) EXPECT_LE(r.iterations, prev_iters + 1) << tol;
    prev_iters = r.iterations;
  }
}

TEST(Ilut, MoreAccurateThanIlu0AtModestFill) {
  const Csr<double> a = gen_varcoef2d(20, 20, 1.5, 9);
  const std::vector<double> b = make_rhs(a, 9);
  PcgOptions popt;
  popt.tolerance = 1e-10;
  IluPreconditioner<double> m0(ilu0(a));
  IlutOptions opt;
  opt.drop_tol = 1e-3;
  opt.max_fill = 20;
  IluPreconditioner<double> mt(ilut(a, opt));
  const SolveResult<double> r0 = pcg(a, b, m0, popt);
  const SolveResult<double> rt = pcg(a, b, mt, popt);
  ASSERT_TRUE(r0.converged());
  ASSERT_TRUE(rt.converged());
  EXPECT_LE(rt.iterations, r0.iterations);
}

TEST(Ilut, TightFillCapSurvivesViaDiagonalFallback) {
  // With a binding fill cap on a high-contrast matrix the elimination can
  // lose its pivot; the factorization must flag breakdown yet still return
  // a usable (diagonally anchored) preconditioner.
  const Csr<double> a = gen_varcoef2d(20, 20, 1.5, 9);
  const std::vector<double> b = make_rhs(a, 9);
  IlutOptions opt;
  opt.drop_tol = 1e-3;
  opt.max_fill = 8;
  const IluResult<double> f = ilut(a, opt);
  EXPECT_TRUE(f.breakdown);
  IluPreconditioner<double> m(f);
  PcgOptions popt;
  popt.tolerance = 1e-8;
  const SolveResult<double> r = pcg(a, b, m, popt);
  EXPECT_TRUE(r.converged());
}

TEST(Ilut, AggressiveThresholdYieldsAsymmetricMAndCgStalls) {
  // Documented caveat: ILUT's dropping is not symmetric, so with a coarse
  // tolerance plain CG stagnates above a tight target — while still making
  // several orders of progress. (SPCG avoids this by dropping from A
  // symmetrically before factorization.)
  const Csr<double> a = gen_poisson2d(20, 20);
  const std::vector<double> b = make_rhs(a, 5);
  IlutOptions opt;
  opt.drop_tol = 1e-1;
  opt.max_fill = 30;
  IluPreconditioner<double> m(ilut(a, opt));
  PcgOptions popt;
  popt.tolerance = 1e-10;
  const SolveResult<double> r = pcg(a, b, m, popt);
  EXPECT_FALSE(r.converged());
  EXPECT_LT(r.final_residual_norm, 1e-3);  // progressed, then stalled
}

TEST(Ilut, MissingDiagonalThrows) {
  const Csr<double> a =
      csr_from_triplets<double>(2, 2, {{0, 0, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(ilut(a), Error);
}

TEST(Ilut, ComposesWithSptrsvAndSparsify) {
  const Csr<double> a = gen_grid_laplacian(16, 16, 2.0, 0.4, 11);
  const std::vector<double> b = make_rhs(a, 11);
  const SparsifyDecision<double> d = wavefront_aware_sparsify(a);
  IlutOptions opt;
  opt.drop_tol = 1e-3;
  opt.max_fill = 10;
  IluPreconditioner<double> m(ilut(d.chosen.a_hat, opt),
                              TrsvExec::kLevelScheduled);
  PcgOptions popt;
  popt.tolerance = 1e-10;
  const SolveResult<double> r = pcg(a, b, m, popt);
  EXPECT_TRUE(r.converged());
}

}  // namespace
}  // namespace spcg
