// Tests for the synthetic matrix generators and the 107-matrix suite.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/suite.h"
#include "core/sparsify.h"
#include "wavefront/levels.h"
#include "solver/lanczos.h"
#include "sparse/norms.h"
#include "sparse/ops.h"

namespace spcg {
namespace {

TEST(Generators, Poisson2dStructure) {
  const Csr<double> a = gen_poisson2d(4, 3);
  a.validate();
  EXPECT_EQ(a.rows, 12);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 4), -1.0);  // north neighbor (y+1)
  EXPECT_DOUBLE_EQ(a.at(0, 5), 0.0);   // no diagonal coupling
  EXPECT_TRUE(is_symmetric(a));
  EXPECT_TRUE(is_diagonally_dominant(a));
}

TEST(Generators, Poisson3dStructure) {
  const Csr<double> a = gen_poisson3d(3, 3, 3);
  a.validate();
  EXPECT_EQ(a.rows, 27);
  EXPECT_DOUBLE_EQ(a.at(13, 13), 6.0);  // center cell has 6 neighbors
  EXPECT_EQ(a.rowptr[14] - a.rowptr[13], 7);
  EXPECT_TRUE(is_symmetric(a));
}

TEST(Generators, AnisotropicWeightsAxes) {
  const Csr<double> a = gen_anisotropic2d(5, 5, 0.01);
  EXPECT_DOUBLE_EQ(a.at(12, 11), -0.01);  // x-neighbor gets eps
  EXPECT_DOUBLE_EQ(a.at(12, 7), -1.0);    // y-neighbor gets 1
  EXPECT_TRUE(is_symmetric(a));
}

TEST(Generators, ElasticityIsSymmetricSpd) {
  const Csr<double> a = gen_elasticity2d(8, 8, 1.0, 0.3);
  a.validate();
  EXPECT_EQ(a.rows, 2 * (8 * 9));  // (nx)*(ny+1) free nodes, 2 dof each
  EXPECT_TRUE(is_symmetric(a, 1e-12));
  EXPECT_TRUE(has_positive_diagonal(a));
  const EigEstimate e = lanczos_extreme_eigenvalues(a, 60);
  EXPECT_GT(e.lambda_min, 0.0) << "elasticity stiffness must be SPD";
}

TEST(Generators, NormalEquationsIsSpd) {
  const Csr<double> a = gen_normal_equations(200, 400, 5, 1.0, 3);
  a.validate();
  EXPECT_TRUE(is_symmetric(a, 1e-12));
  const EigEstimate e = lanczos_extreme_eigenvalues(a, 60);
  EXPECT_GE(e.lambda_min, 0.5);  // >= delta up to estimator slack
}

TEST(Generators, EconomicRowSumsBounded) {
  const Csr<double> a = gen_economic(300, 8, 0.9, 5);
  EXPECT_TRUE(is_symmetric(a, 1e-12));
  EXPECT_TRUE(is_diagonally_dominant(a));
}

TEST(Generators, HeavyTailFamiliesHaveWideMagnitudeSpread) {
  // Circuit/materials magnitudes must span orders of magnitude — that is
  // what makes magnitude-based sparsification nearly free for them.
  for (const Csr<double>& a : {gen_grid_laplacian(20, 20, 2.2, 0.3, 1),
                               gen_lattice3d(8, 8, 8, 1.0, 2)}) {
    double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
    for (index_t i = 0; i < a.rows; ++i) {
      const auto cols_i = a.row_cols(i);
      const auto vals_i = a.row_vals(i);
      for (std::size_t p = 0; p < cols_i.size(); ++p) {
        if (cols_i[p] == i) continue;
        lo = std::min(lo, std::abs(vals_i[p]));
        hi = std::max(hi, std::abs(vals_i[p]));
      }
    }
    EXPECT_GT(hi / lo, 100.0);
  }
}

TEST(Generators, ChainWithSkipsWavefrontStructure) {
  // The weak chain forces n wavefronts; dropping it collapses to ~stride.
  const Csr<double> a = gen_chain_with_skips(200, 4, 1e-5, 1.0, 7);
  EXPECT_EQ(count_wavefronts(a), 200);
  const Csr<double> nochain = drop_small(a, 1e-3);
  EXPECT_LT(count_wavefronts(nochain), 60);
}

TEST(Generators, Kernel2dStructure) {
  const Csr<double> a = gen_kernel2d(20, 18, 3.0, 0.8, true, 7);
  a.validate();
  EXPECT_EQ(a.rows, 360);
  EXPECT_TRUE(is_symmetric(a, 1e-12));
  EXPECT_TRUE(has_positive_diagonal(a));
  // Couplings reach beyond nearest neighbors but not past the radius.
  bool long_range = false;
  for (index_t i = 0; i < a.rows; ++i) {
    for (const index_t j : a.row_cols(i)) {
      if (i == j) continue;
      const index_t dx = std::abs(i % 20 - j % 20);
      const index_t dy = std::abs(i / 20 - j / 20);
      EXPECT_LE(dx * dx + dy * dy, 9);
      if (dx * dx + dy * dy > 2) long_range = true;
    }
  }
  EXPECT_TRUE(long_range);
}

TEST(Generators, Kernel2dOscillatoryNearDiagonalIsWeak) {
  // The Helmholtz-like kernel peaks mid-radius: distance-1 couplings (the
  // wavefront carriers) are among the smallest — dropping 10% cuts depth.
  const Csr<double> a = gen_kernel2d(40, 40, 3.2, 0.9, true, 101);
  const index_t w0 = count_wavefronts(a);
  const SparsifySplit<double> s = sparsify_by_ratio(a, 10.0);
  EXPECT_LT(count_wavefronts(s.a_hat), w0);
}

TEST(Generators, MakeRhsIsNormalizedAndDeterministic) {
  const Csr<double> a = gen_poisson2d(10, 10);
  const std::vector<double> b1 = make_rhs(a, 42);
  const std::vector<double> b2 = make_rhs(a, 42);
  EXPECT_EQ(b1, b2);
  EXPECT_NEAR(norm2(std::span<const double>(b1)), 1.0, 1e-12);
  const std::vector<double> b3 = make_rhs(a, 43);
  EXPECT_NE(b1, b3);
}

TEST(Generators, InvalidArgumentsThrow) {
  EXPECT_THROW(gen_poisson2d(0, 3), Error);
  EXPECT_THROW(gen_anisotropic2d(4, 4, 0.0), Error);
  EXPECT_THROW(gen_economic(10, 2, 1.5, 0), Error);
  EXPECT_THROW(gen_elasticity2d(4, 4, 1.0, 0.5), Error);
  EXPECT_THROW(gen_chain_with_skips(10, 1, 0.1, 0.1, 0), Error);
}

TEST(Suite, Has107MatricesIn17Categories) {
  EXPECT_EQ(suite_size(), 107);
  EXPECT_EQ(suite_specs().size(), 107u);
  EXPECT_EQ(suite_categories().size(), 17u);
  // Ids are dense and names unique.
  std::vector<std::string> names;
  for (const MatrixSpec& s : suite_specs()) {
    EXPECT_EQ(s.id, static_cast<index_t>(&s - suite_specs().data()));
    names.push_back(s.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(Suite, OutOfRangeIdThrows) {
  EXPECT_THROW(generate_suite_matrix(-1), Error);
  EXPECT_THROW(generate_suite_matrix(suite_size()), Error);
}

TEST(Suite, GenerationIsDeterministic) {
  const GeneratedMatrix g1 = generate_suite_matrix(13);
  const GeneratedMatrix g2 = generate_suite_matrix(13);
  EXPECT_EQ(g1.a.values, g2.a.values);
  EXPECT_EQ(g1.b, g2.b);
}


// --- category-mechanism properties (the structures DESIGN.md §3.1 relies on)

TEST(Mechanisms, CircuitChannelsAreFullWidthAndWeak) {
  // ~8% of horizontal grid lines carry vertical wires ~3 decades weaker;
  // verify at least one full-width weak channel row exists.
  const index_t nx = 40, ny = 40;
  const Csr<double> a = gen_grid_laplacian(nx, ny, 2.0, 0.5, 201);
  int full_channels = 0;
  for (index_t y = 0; y + 1 < ny; ++y) {
    bool all_weak = true;
    double max_v = 0.0;
    for (index_t x = 0; x < nx; ++x) {
      const double v = std::abs(a.at(y * nx + x, (y + 1) * nx + x));
      max_v = std::max(max_v, v);
      if (v > 0.05) all_weak = false;
    }
    if (all_weak && max_v > 0.0) ++full_channels;
  }
  EXPECT_GE(full_channels, 1);
}

TEST(Mechanisms, MaterialsGrainBoundariesSeverDepthAtTenPercent) {
  const Csr<double> a = gen_lattice3d(12, 12, 12, 1.2, 902);
  const index_t w0 = count_wavefronts(a);
  const SparsifySplit<double> s = sparsify_by_ratio(a, 10.0);
  EXPECT_LT(count_wavefronts(s.a_hat), (3 * w0) / 4);
}

TEST(Mechanisms, ThermalInterfacesAreOrdersOfMagnitudeWeak) {
  const Csr<double> a = gen_varcoef2d(48, 48, 2.0, 1401);
  // Magnitude spread must span >= 4 decades (phases + contact interfaces).
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  for (index_t i = 0; i < a.rows; ++i) {
    const auto cols_i = a.row_cols(i);
    const auto vals_i = a.row_vals(i);
    for (std::size_t p = 0; p < cols_i.size(); ++p) {
      if (cols_i[p] == i) continue;
      lo = std::min(lo, std::abs(vals_i[p]));
      hi = std::max(hi, std::abs(vals_i[p]));
    }
  }
  EXPECT_GT(hi / lo, 1e4);
}

TEST(Mechanisms, RegimeSwitchingChainSplitsUnderDrop) {
  const Csr<double> a = gen_ar1_precision(2000, 0.8, 12, 1301);
  EXPECT_EQ(count_wavefronts(a), 2000);  // intact chain
  const SparsifySplit<double> s = sparsify_by_ratio(a, 10.0);
  EXPECT_LT(count_wavefronts(s.a_hat), 1500);
}

TEST(Mechanisms, CounterExampleGapsCapDepthAtOneBlock) {
  const Csr<double> a = gen_chain_with_skips(2400, 4, 1e-4, 1.0, 401);
  EXPECT_EQ(count_wavefronts(a), 2400);
  const SparsifySplit<double> s = sparsify_by_ratio(a, 10.0);
  // Post-drop depth = one block of strong chain plus the hub rows' own
  // chain (the hubs live inside the first block).
  const index_t block = std::max<index_t>(40, 2400 / 12);
  const index_t hubs = 2400 / (4 * 4);
  EXPECT_LE(count_wavefronts(s.a_hat), block + hubs + 10);
  EXPECT_LT(count_wavefronts(s.a_hat), 500);
}

TEST(Mechanisms, UniformStencilsStayInert) {
  // 2D/3D Poisson: the designed no-benefit regime — small reductions only.
  for (const Csr<double>& a : {gen_poisson2d(32, 32), gen_poisson3d(10, 10, 10)}) {
    const index_t w0 = count_wavefronts(a);
    const SparsifySplit<double> s = sparsify_by_ratio(a, 10.0);
    const double red =
        100.0 * static_cast<double>(w0 - count_wavefronts(s.a_hat)) /
        static_cast<double>(w0);
    EXPECT_LT(red, 15.0);
  }
}

// Property sweep over the whole suite: every matrix is square, symmetric,
// has a positive stored diagonal, n >= 1000 (paper's size filter), and a
// normalized RHS.
class SuitePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SuitePropertyTest, SuiteInvariants) {
  const auto id = static_cast<index_t>(GetParam());
  const GeneratedMatrix g = generate_suite_matrix(id);
  g.a.validate();
  EXPECT_EQ(g.a.rows, g.a.cols);
  EXPECT_GE(g.a.rows, 1000) << g.spec.name;
  EXPECT_TRUE(is_symmetric(g.a, 1e-12)) << g.spec.name;
  EXPECT_TRUE(has_positive_diagonal(g.a)) << g.spec.name;
  EXPECT_NEAR(norm2(std::span<const double>(g.b)), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, SuitePropertyTest,
                         ::testing::Range(0, 107));

}  // namespace
}  // namespace spcg
