// Tests for the analytical device execution model.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gpumodel/cost_model.h"
#include "gpumodel/device.h"
#include "precond/ilu.h"

namespace spcg {
namespace {

TEST(Device, SpecsAreSane) {
  for (const DeviceSpec& d :
       {device_a100(), device_v100(), device_epyc7413(), device_host_cpu()}) {
    EXPECT_GT(d.parallel_units, 0.0) << d.name;
    EXPECT_GT(d.peak_gflops, 0.0) << d.name;
    EXPECT_GT(d.dram_gbps, 0.0) << d.name;
    EXPECT_GE(d.kernel_launch_us, 0.0) << d.name;
  }
  // The architectural contrasts the portability analysis relies on.
  EXPECT_GT(device_a100().concurrent_rows(), device_v100().concurrent_rows());
  EXPECT_GT(device_a100().dram_gbps, device_v100().dram_gbps);
  EXPECT_LT(device_epyc7413().level_sync_us, device_v100().level_sync_us);
}

TEST(CostModel, SpmvScalesWithNnz) {
  const CostModel m(device_a100(), 4);
  const OpCost small = m.spmv(1000, 5000);
  const OpCost large = m.spmv(1000, 5'000'000);
  EXPECT_GT(large.seconds, small.seconds);
  EXPECT_DOUBLE_EQ(large.flops, 1e7);
  // Small kernels are launch-bound: time close to the launch latency.
  EXPECT_NEAR(small.seconds, device_a100().kernel_launch_us * 1e-6, 5e-6);
}

TEST(CostModel, Blas1IsBandwidthBound) {
  const CostModel m(device_a100(), 4);
  const OpCost c = m.blas1(10'000'000, 2, 2);
  const double expected_mem = 2.0 * 1e7 * 4 / (device_a100().dram_gbps * 1e9);
  EXPECT_NEAR(c.seconds - device_a100().kernel_launch_us * 1e-6, expected_mem,
              0.2 * expected_mem);
}

TEST(CostModel, TrisolvePaysPerLevelSync) {
  const CostModel m(device_a100(), 4);
  // Same total work split into 1 vs 100 levels.
  TriSolveStructure one;
  one.n = 10000;
  one.nnz = 50000;
  one.rows_per_level = {10000};
  one.nnz_per_level = {50000};
  TriSolveStructure many;
  many.n = 10000;
  many.nnz = 50000;
  many.rows_per_level.assign(100, 100);
  many.nnz_per_level.assign(100, 500);
  const OpCost c1 = m.trisolve(one);
  const OpCost c100 = m.trisolve(many);
  EXPECT_GT(c100.seconds, c1.seconds);
  // The gap is dominated by the 99 extra syncs.
  EXPECT_NEAR(c100.seconds - c1.seconds,
              99 * device_a100().level_sync_us * 1e-6,
              40 * device_a100().level_sync_us * 1e-6);
  EXPECT_DOUBLE_EQ(c1.flops, c100.flops);
}

TEST(CostModel, FewerWavefrontsNeverSlowerAtFixedWork) {
  // Property: merging adjacent levels (same rows/nnz totals) cannot slow the
  // modeled solve down.
  const CostModel m(device_v100(), 4);
  TriSolveStructure s;
  s.n = 4096;
  s.nnz = 20000;
  s.rows_per_level.assign(64, 64);
  s.nnz_per_level.assign(64, 312);
  double prev = m.trisolve(s).seconds;
  while (s.rows_per_level.size() > 1) {
    // Merge level pairs.
    TriSolveStructure t;
    t.n = s.n;
    t.nnz = s.nnz;
    for (std::size_t i = 0; i < s.rows_per_level.size(); i += 2) {
      index_t r = s.rows_per_level[i], z = s.nnz_per_level[i];
      if (i + 1 < s.rows_per_level.size()) {
        r += s.rows_per_level[i + 1];
        z += s.nnz_per_level[i + 1];
      }
      t.rows_per_level.push_back(r);
      t.nnz_per_level.push_back(z);
    }
    const double now = m.trisolve(t).seconds;
    EXPECT_LE(now, prev * (1.0 + 1e-9));
    prev = now;
    s = t;
  }
}

TEST(CostModel, TrisolveStructureMatchesMatrix) {
  const Csr<double> a = gen_poisson2d(12, 12);
  const TriSolveStructure s = trisolve_structure(a, Triangle::kLower);
  EXPECT_EQ(s.n, a.rows);
  index_t rows = 0, nnz = 0;
  for (std::size_t l = 0; l < s.rows_per_level.size(); ++l) {
    rows += s.rows_per_level[l];
    nnz += s.nnz_per_level[l];
  }
  EXPECT_EQ(rows, a.rows);
  EXPECT_EQ(nnz, s.nnz);
  // 5-point stencil lower triangle incl diag: 3 entries per interior row.
  EXPECT_LT(s.nnz, a.nnz());
}

TEST(CostModel, PcgIterationComposesKernels) {
  const Csr<double> a = gen_poisson2d(24, 24);
  const IluResult<double> f = ilu0(a);
  const PcgIterationShape shape = pcg_iteration_shape(a, f.lu);
  const CostModel m(device_a100(), 4);
  const OpCost it = m.pcg_iteration(shape);
  const OpCost sp = m.spmv(shape.n, shape.a_nnz);
  const OpCost lo = m.trisolve(shape.lower);
  const OpCost up = m.trisolve(shape.upper);
  EXPECT_GT(it.seconds, sp.seconds + lo.seconds + up.seconds);
  EXPECT_GT(it.flops, sp.flops + lo.flops + up.flops);
}

TEST(CostModel, BaselineGflopsWithinPaperRange) {
  // Paper §4.2: ILU(0) PCG baseline spans 0.0004–156 GFLOP/s on A100. Check
  // a long-chain matrix (low end) and a wide flat matrix (high end) both
  // land inside a generous version of that window.
  const CostModel m(device_a100(), 4);

  const Csr<double> chain = gen_chain_with_skips(2000, 4, 1.0, 0.9, 1);
  const IluResult<double> fc = ilu0(chain);
  const double flops_c =
      pcg_iteration_flops(chain.rows, chain.nnz(), fc.lu.nnz());
  const double t_c = m.pcg_iteration(pcg_iteration_shape(chain, fc.lu)).seconds;
  const double gflops_chain = flops_c / t_c * 1e-9;

  const Csr<double> flat = gen_poisson2d(90, 90);
  const IluResult<double> ff = ilu0(flat);
  const double flops_f = pcg_iteration_flops(flat.rows, flat.nnz(), ff.lu.nnz());
  const double t_f = m.pcg_iteration(pcg_iteration_shape(flat, ff.lu)).seconds;
  const double gflops_flat = flops_f / t_f * 1e-9;

  EXPECT_GT(gflops_chain, 0.0001);
  EXPECT_LT(gflops_chain, 0.5);  // chain is sync-bound: far below peak
  EXPECT_GT(gflops_flat, gflops_chain * 10);
  EXPECT_LT(gflops_flat, 200.0);
}

TEST(CostModel, HostPhasesAreFiniteAndMonotone) {
  const CostModel host(device_host_cpu(), 4);
  const OpCost f1 = host.iluk_factorization_host(1'000'000, 100'000);
  const OpCost f2 = host.iluk_factorization_host(10'000'000, 100'000);
  EXPECT_GT(f2.seconds, f1.seconds);
  const OpCost s1 = host.sparsify_host(10'000, 3);
  const OpCost s2 = host.sparsify_host(1'000'000, 3);
  EXPECT_GT(s2.seconds, s1.seconds);
  EXPECT_GT(s1.seconds, 0.0);
}

TEST(CostModel, Ilu0FactorizationTracksWavefronts) {
  const CostModel m(device_a100(), 4);
  const Csr<double> grid = gen_poisson2d(40, 40);
  const Csr<double> chain = gen_chain_with_skips(1600, 4, 1.0, 0.9, 2);
  const IluResult<double> fg = ilu0(grid);
  const IluResult<double> fc = ilu0(chain);
  const double tg =
      m.ilu0_factorization(trisolve_structure(grid, Triangle::kLower),
                           fg.elimination_ops)
          .seconds;
  const double tc =
      m.ilu0_factorization(trisolve_structure(chain, Triangle::kLower),
                           fc.elimination_ops)
          .seconds;
  // The chain has ~n levels vs ~2*nx for the grid: far more sync time.
  EXPECT_GT(tc, tg);
}

TEST(CostModel, SyncFreeBeatsBarrieredOnDeepSchedules) {
  const CostModel m(device_a100(), 4);
  TriSolveStructure deep;
  deep.n = 4000;
  deep.nnz = 12000;
  deep.rows_per_level.assign(2000, 2);
  deep.nnz_per_level.assign(2000, 6);
  const OpCost barriered = m.trisolve(deep);
  const OpCost syncfree = m.trisolve_syncfree(deep);
  EXPECT_LT(syncfree.seconds, barriered.seconds);
  EXPECT_DOUBLE_EQ(syncfree.flops, barriered.flops);
  // Wavefront reduction still helps the sync-free executor: halving the
  // level count (same work) shortens the dependence chain.
  TriSolveStructure half;
  half.n = deep.n;
  half.nnz = deep.nnz;
  half.rows_per_level.assign(1000, 4);
  half.nnz_per_level.assign(1000, 12);
  EXPECT_LT(m.trisolve_syncfree(half).seconds, syncfree.seconds);
}

TEST(CostModel, RejectsUnsupportedValueBytes) {
  EXPECT_THROW(CostModel(device_a100(), 2), Error);
}

}  // namespace
}  // namespace spcg
