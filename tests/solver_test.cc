// Unit + property tests for CG/PCG (Algorithm 1) and the Lanczos estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.h"
#include "precond/preconditioner.h"
#include "solver/lanczos.h"
#include "solver/pcg.h"
#include "sparse/norms.h"

namespace spcg {
namespace {

TEST(Pcg, SolvesDiagonalSystemInOneIteration) {
  const Csr<double> a = csr_from_triplets<double>(
      3, 3, {{0, 0, 2.0}, {1, 1, 4.0}, {2, 2, 8.0}});
  const std::vector<double> b{2.0, 4.0, 8.0};
  JacobiPreconditioner<double> m(a);
  PcgOptions opt;
  opt.tolerance = 1e-14;
  const SolveResult<double> r = pcg(a, b, m, opt);
  EXPECT_TRUE(r.converged());
  EXPECT_LE(r.iterations, 2);
  for (const double x : r.x) EXPECT_NEAR(x, 1.0, 1e-12);
}

TEST(Pcg, CgConvergesOnPoisson) {
  const Csr<double> a = gen_poisson2d(16, 16);
  const std::vector<double> b = make_rhs(a, 1);
  PcgOptions opt;
  opt.tolerance = 1e-10;
  const SolveResult<double> r = cg(a, b, opt);
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.final_residual_norm, 1e-9);
}

TEST(Pcg, IluPreconditioningReducesIterations) {
  const Csr<double> a = gen_poisson2d(24, 24);
  const std::vector<double> b = make_rhs(a, 2);
  PcgOptions opt;
  opt.tolerance = 1e-10;
  const SolveResult<double> plain = cg(a, b, opt);
  IluPreconditioner<double> m(ilu0(a));
  const SolveResult<double> pre = pcg(a, b, m, opt);
  ASSERT_TRUE(plain.converged());
  ASSERT_TRUE(pre.converged());
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(Pcg, ExactPreconditionerConvergesImmediately) {
  const Csr<double> a = gen_grid_laplacian(8, 8, 1.0, 0.5, 5);
  const std::vector<double> b = make_rhs(a, 3);
  IluPreconditioner<double> m(iluk(a, 100));  // complete LU
  PcgOptions opt;
  opt.tolerance = 1e-12;
  const SolveResult<double> r = pcg(a, b, m, opt);
  EXPECT_TRUE(r.converged());
  EXPECT_LE(r.iterations, 3);
}

TEST(Pcg, MaxIterationCapRespected) {
  const Csr<double> a = gen_poisson2d(32, 32);
  const std::vector<double> b = make_rhs(a, 4);
  PcgOptions opt;
  opt.tolerance = 1e-30;  // unreachable
  opt.max_iterations = 7;
  const SolveResult<double> r = cg(a, b, opt);
  EXPECT_EQ(r.status, SolveStatus::kMaxIterations);
  EXPECT_EQ(r.iterations, 7);
}

TEST(Pcg, ZeroRhsConvergesWithZeroSolution) {
  const Csr<double> a = gen_poisson2d(8, 8);
  const std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  const SolveResult<double> r = cg(a, b);
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.iterations, 0);
  for (const double x : r.x) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Pcg, ZeroRhsConvergesUnderRelativeTolerance) {
  // With relative=true the target is tolerance * ||b|| = 0 and ||r|| < 0 can
  // never hold; the solver must answer x = 0 directly instead of spinning to
  // the iteration cap.
  const Csr<double> a = gen_poisson2d(8, 8);
  const std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  PcgOptions opt;
  opt.relative = true;
  opt.tolerance = 1e-10;
  opt.record_history = true;
  const SolveResult<double> r = cg(a, b, opt);
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.iterations, 0);
  EXPECT_DOUBLE_EQ(r.final_residual_norm, 0.0);
  ASSERT_EQ(r.residual_history.size(), 1u);
  EXPECT_DOUBLE_EQ(r.residual_history.front(), 0.0);
  for (const double x : r.x) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Pcg, RecordsMonotonicallyUsefulHistory) {
  const Csr<double> a = gen_poisson2d(20, 20);
  const std::vector<double> b = make_rhs(a, 6);
  PcgOptions opt;
  opt.tolerance = 1e-10;
  opt.record_history = true;
  IluPreconditioner<double> m(ilu0(a));
  const SolveResult<double> r = pcg(a, b, m, opt);
  ASSERT_TRUE(r.converged());
  ASSERT_GT(r.residual_history.size(), 1u);
  // First entry is ||b|| = 1, last is below tolerance.
  EXPECT_NEAR(r.residual_history.front(), 1.0, 1e-12);
  EXPECT_LT(r.residual_history.back(), 1e-10);
  // CG residuals are not strictly monotone, but must shrink overall.
  EXPECT_LT(r.residual_history.back(), r.residual_history.front());
}

TEST(Pcg, RelativeToleranceScalesWithRhs) {
  const Csr<double> a = gen_poisson2d(12, 12);
  std::vector<double> b = make_rhs(a, 7);
  for (double& v : b) v *= 1e6;
  PcgOptions opt;
  opt.relative = true;
  opt.tolerance = 1e-8;
  const SolveResult<double> r = cg(a, b, opt);
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.final_residual_norm, 1e6 * 1e-7);
}

TEST(Pcg, BreakdownDetectedOnIndefiniteMatrix) {
  // CG requires SPD; an indefinite matrix produces non-positive curvature.
  const Csr<double> a = csr_from_triplets<double>(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 1.0}});
  const std::vector<double> b{1.0, -1.0};
  PcgOptions opt;
  opt.tolerance = 1e-14;
  const SolveResult<double> r = cg(a, b, opt);
  EXPECT_EQ(r.status, SolveStatus::kBreakdown);
}

TEST(Pcg, SizeMismatchThrows) {
  const Csr<double> a = gen_poisson2d(4, 4);
  const std::vector<double> b(3, 1.0);
  EXPECT_THROW(cg(a, b), Error);
}

TEST(Pcg, FloatPathConvergesAtLooserTolerance) {
  const Csr<float> a = csr_cast<float>(gen_poisson2d(16, 16));
  std::vector<float> b(static_cast<std::size_t>(a.rows), 0.0f);
  b[0] = 1.0f;
  PcgOptions opt;
  opt.tolerance = 1e-4;
  IluPreconditioner<float> m(ilu0(a));
  const SolveResult<float> r = pcg<float>(a, b, m, opt);
  EXPECT_TRUE(r.converged());
}

TEST(Pcg, SolutionMatchesGroundTruth) {
  // b was built as normalized A*x_true; recover a scaled x_true.
  const Csr<double> a = gen_varcoef2d(10, 10, 1.0, 12);
  Rng rng(0x5bc6u + 100);
  std::vector<double> x_true(static_cast<std::size_t>(a.rows));
  for (double& v : x_true) v = rng.uniform(-1.0, 1.0);
  const std::vector<double> b = spmv(a, x_true);
  PcgOptions opt;
  opt.tolerance = 1e-12;
  opt.relative = true;
  IluPreconditioner<double> m(ilu0(a));
  const SolveResult<double> r = pcg(a, b, m, opt);
  ASSERT_TRUE(r.converged());
  for (std::size_t i = 0; i < x_true.size(); ++i)
    EXPECT_NEAR(r.x[i], x_true[i], 1e-7);
}

// --- Lanczos ---------------------------------------------------------------

TEST(Lanczos, DiagonalMatrixEigenvalues) {
  const Csr<double> a = csr_from_triplets<double>(
      4, 4, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}, {3, 3, 10.0}});
  const EigEstimate e = lanczos_extreme_eigenvalues(a, 4);
  EXPECT_NEAR(e.lambda_min, 1.0, 1e-8);
  EXPECT_NEAR(e.lambda_max, 10.0, 1e-8);
  EXPECT_NEAR(e.condition_number(), 10.0, 1e-6);
}

TEST(Lanczos, PoissonEigenvaluesMatchClosedForm) {
  // 1D Laplacian eigenvalues: 2 - 2 cos(k pi / (n+1)).
  const index_t n = 64;
  std::vector<Triplet<double>> ts;
  for (index_t i = 0; i < n; ++i) {
    ts.push_back({i, i, 2.0});
    if (i > 0) ts.push_back({i, i - 1, -1.0});
    if (i + 1 < n) ts.push_back({i, i + 1, -1.0});
  }
  const Csr<double> a = csr_from_triplets<double>(n, n, std::move(ts));
  const EigEstimate e = lanczos_extreme_eigenvalues(a, 64);
  const double pi = 3.14159265358979323846;
  const double lmin = 2.0 - 2.0 * std::cos(pi / (n + 1));
  const double lmax = 2.0 - 2.0 * std::cos(n * pi / (n + 1));
  EXPECT_NEAR(e.lambda_min, lmin, 1e-6 * lmax);
  EXPECT_NEAR(e.lambda_max, lmax, 1e-6 * lmax);
}

TEST(Lanczos, SpdMatricesReportPositiveSpectrum) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Csr<double> a = gen_grid_laplacian(12, 12, 1.5, 0.3, seed);
    const EigEstimate e = lanczos_extreme_eigenvalues(a, 50, seed);
    EXPECT_GT(e.lambda_min, 0.0);
    EXPECT_GT(e.lambda_max, e.lambda_min);
    EXPECT_TRUE(std::isfinite(e.condition_number()));
  }
}

}  // namespace
}  // namespace spcg
