// Tests for the solver runtime layer (src/runtime/): fingerprints, the
// shared LRU setup cache, setup-once/solve-many sessions with batched
// multi-RHS execution, and the async solve service (deadlines, cancellation,
// breakdown fallback).
//
// Fixture naming is load-bearing: RuntimeFingerprint/RuntimeCache/
// RuntimeSession/RuntimeService run under the TSan CI job (they exercise the
// worker pool and cache under real concurrency); RuntimeThroughput holds the
// wall-clock acceptance test and stays out of the sanitizer matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/spcg.h"
#include "gen/generators.h"
#include "runtime/runtime.h"
#include "support/timer.h"

namespace spcg {
namespace {

SpcgOptions fast_options() {
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-10;
  return opt;
}

// ---------------------------------------------------------------- fingerprint

TEST(RuntimeFingerprint, DeterministicAndSensitive) {
  const Csr<double> a = gen_poisson2d(12, 12);
  const MatrixFingerprint fa = fingerprint(a);
  EXPECT_EQ(fa, fingerprint(a));  // same bits -> same fingerprint
  EXPECT_EQ(fa.rows, a.rows);
  EXPECT_EQ(fa.nnz, a.nnz());

  // A value change flips values_hash but leaves the pattern hash alone.
  Csr<double> v = a;
  v.values[3] += 1e-9;
  const MatrixFingerprint fv = fingerprint(v);
  EXPECT_EQ(fv.pattern_hash, fa.pattern_hash);
  EXPECT_NE(fv.values_hash, fa.values_hash);
  EXPECT_FALSE(fv == fa);

  // A different pattern changes pattern_hash.
  const MatrixFingerprint fb = fingerprint(gen_poisson2d(12, 13));
  EXPECT_NE(fb.pattern_hash, fa.pattern_hash);
}

TEST(RuntimeFingerprint, OptionsDigestTracksSetupRelevantFieldsOnly) {
  SpcgOptions opt = fast_options();
  const std::uint64_t base = setup_options_digest(opt);

  SpcgOptions fill = opt;
  fill.preconditioner = PrecondKind::kIluK;
  fill.fill_level = 3;
  EXPECT_NE(setup_options_digest(fill), base);

  SpcgOptions sparsify = opt;
  sparsify.sparsify_enabled = false;
  EXPECT_NE(setup_options_digest(sparsify), base);

  // Solve-phase knobs must NOT change the key: setups are shared across
  // tolerances and executors.
  SpcgOptions solve_only = opt;
  solve_only.pcg.tolerance = 1e-4;
  solve_only.pcg.max_iterations = 7;
  solve_only.executor = TrsvExec::kLevelScheduled;
  EXPECT_EQ(setup_options_digest(solve_only), base);
}

// ---------------------------------------------------------------------- cache

TEST(RuntimeCache, HitMissEvictionSemantics) {
  const Csr<double> a = gen_poisson2d(10, 10);
  const Csr<double> b = gen_poisson2d(11, 11);
  const Csr<double> c = gen_poisson2d(12, 12);
  const SpcgOptions opt = fast_options();

  SetupCache<double> cache(2);
  bool hit = true;
  cache.get_or_build(a, opt, &hit);
  EXPECT_FALSE(hit);
  cache.get_or_build(b, opt, &hit);
  EXPECT_FALSE(hit);
  cache.get_or_build(a, opt, &hit);  // touch a: b becomes LRU
  EXPECT_TRUE(hit);
  cache.get_or_build(c, opt, &hit);  // evicts b
  EXPECT_FALSE(hit);

  SetupCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);

  cache.get_or_build(b, opt, &hit);  // b was evicted -> rebuilt
  EXPECT_FALSE(hit);
  cache.get_or_build(a, opt, &hit);  // a was LRU when b came back -> evicted
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().evictions, 3u);
}

TEST(RuntimeCache, ValueChangeMissesDespiteSharedPattern) {
  const Csr<double> a = gen_poisson2d(10, 10);
  Csr<double> perturbed = a;
  perturbed.values.back() *= 1.0 + 1e-12;
  const SpcgOptions opt = fast_options();

  SetupCache<double> cache(4);
  bool hit = true;
  const auto setup_a = cache.get_or_build(a, opt, &hit);
  EXPECT_FALSE(hit);
  const auto setup_p = cache.get_or_build(perturbed, opt, &hit);
  EXPECT_FALSE(hit) << "perturbed values must not collide with the original";
  EXPECT_NE(setup_a.get(), setup_p.get());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(RuntimeCache, SetupsAreSharedNotCopied) {
  const Csr<double> a = gen_poisson2d(10, 10);
  SetupCache<double> cache(4);
  const auto s1 = cache.get_or_build(a, fast_options());
  const auto s2 = cache.get_or_build(a, fast_options());
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_GT(s1->artifacts.factor_nnz, 0);
}

TEST(RuntimeCache, FailedBuildIsNotCachedAndRetries) {
  SetupCache<double> cache(4);
  const SetupKey key{MatrixFingerprint{1, 2, 3, 4}, 5};
  int calls = 0;
  EXPECT_THROW(cache.get_or_build(
                   key,
                   [&]() -> SpcgSetup<double> {
                     ++calls;
                     throw Error("synthetic build failure");
                   }),
               Error);
  EXPECT_EQ(cache.stats().entries, 0u) << "failed build must not be cached";

  // The next request retries the build instead of replaying the error.
  const Csr<double> a = gen_poisson2d(8, 8);
  const auto setup = cache.get_or_build(key, [&] {
    ++calls;
    return spcg_setup(a, fast_options());
  });
  EXPECT_EQ(calls, 2);
  EXPECT_GT(setup->artifacts.factor_nnz, 0);  // ILU on the (sparsified) Â
}

TEST(RuntimeCache, ConcurrentRequestsForOneKeyBuildOnce) {
  const Csr<double> a = gen_grid_laplacian(24, 24, 2.0, 0.3, 7);
  const SpcgOptions opt = fast_options();
  auto cache = std::make_shared<SetupCache<double>>(4);

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const SolverSetup<double>>> setups(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back(
        [&, t] { setups[static_cast<std::size_t>(t)] = cache->get_or_build(a, opt); });
  for (std::thread& t : pool) t.join();

  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(setups[0].get(), setups[static_cast<std::size_t>(t)].get());
  const SetupCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u) << "racing threads must share one build";
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads) - 1);
}

TEST(RuntimeCache, SamePatternLookupServesPartialHits) {
  const Csr<double> a = gen_poisson2d(10, 10);
  Csr<double> perturbed = a;
  for (double& v : perturbed.values) v *= 1.25;
  const SpcgOptions opt = fast_options();

  SetupCache<double> cache(4);
  const auto donor = cache.get_or_build(a, opt);

  // Exact lookup: peek without building; a miss stays a nullptr.
  const SetupKey exact = make_setup_key(a, opt);
  EXPECT_EQ(cache.lookup(exact).get(), donor.get());
  const SetupKey wanted = make_setup_key(perturbed, opt);
  EXPECT_EQ(cache.lookup(wanted), nullptr);

  // Same pattern + options, different values: the secondary index answers.
  const auto partial = cache.lookup_same_pattern(wanted);
  ASSERT_NE(partial, nullptr);
  EXPECT_EQ(partial.get(), donor.get());

  const SetupCacheStats stats = cache.stats();
  EXPECT_EQ(stats.partial_hits, 1u);
  EXPECT_EQ(stats.hits, 1u);  // the exact lookup() above
}

TEST(RuntimeCache, SamePatternLookupSkipsTheExactKey) {
  // With only the exact entry resident, a same-pattern probe for that very
  // key must return nothing: lookup() already owns the exact-hit path.
  const Csr<double> a = gen_poisson2d(10, 10);
  const SpcgOptions opt = fast_options();
  SetupCache<double> cache(4);
  cache.get_or_build(a, opt);
  EXPECT_EQ(cache.lookup_same_pattern(make_setup_key(a, opt)), nullptr);
  EXPECT_EQ(cache.stats().partial_hits, 0u);
}

TEST(RuntimeCache, SamePatternLookupRespectsOptionsAndEviction) {
  const Csr<double> a = gen_poisson2d(10, 10);
  Csr<double> perturbed = a;
  for (double& v : perturbed.values) v *= 2.0;
  const SpcgOptions opt = fast_options();

  SetupCache<double> cache(1);
  cache.get_or_build(a, opt);

  // Different setup-relevant options -> different pattern bucket.
  SpcgOptions iluk = opt;
  iluk.preconditioner = PrecondKind::kIluK;
  iluk.fill_level = 2;
  EXPECT_EQ(cache.lookup_same_pattern(make_setup_key(perturbed, iluk)),
            nullptr);

  // Evicting the donor must also drop it from the pattern index.
  cache.get_or_build(gen_poisson2d(11, 11), opt);  // capacity 1: evicts a
  EXPECT_EQ(cache.lookup_same_pattern(make_setup_key(perturbed, opt)),
            nullptr);
  EXPECT_EQ(cache.stats().partial_hits, 0u);

  // clear() resets the index as well.
  cache.get_or_build(a, opt);
  cache.clear();
  EXPECT_EQ(cache.lookup_same_pattern(make_setup_key(perturbed, opt)),
            nullptr);
}

// -------------------------------------------------------------------- session

TEST(RuntimeSession, MatchesSpcgSolve) {
  const Csr<double> a = gen_grid_laplacian(20, 20, 1.5, 0.4, 11);
  const std::vector<double> b = make_rhs(a, 3);
  const SpcgOptions opt = fast_options();

  const SpcgResult<double> direct = spcg_solve(a, b, opt);
  SolverSession<double> session(a, opt);
  const SessionSolveResult<double> via = session.solve(b);

  ASSERT_TRUE(direct.solve.converged());
  ASSERT_TRUE(via.solve.converged());
  EXPECT_EQ(direct.solve.iterations, via.solve.iterations);
  ASSERT_EQ(direct.solve.x.size(), via.solve.x.size());
  for (std::size_t i = 0; i < direct.solve.x.size(); ++i)
    EXPECT_DOUBLE_EQ(direct.solve.x[i], via.solve.x[i]);

  // Setup artifacts visible and schedule-backed (satellite: one inspector
  // pass feeds both the stat and the preconditioner).
  EXPECT_EQ(session.setup().wavefronts_factor,
            session.setup().l_schedule.num_levels());
  EXPECT_EQ(session.setup().wavefronts_factor, direct.wavefronts_factor);

  // to_spcg_result reproduces the classic report shape.
  const SpcgResult<double> classic =
      session.to_spcg_result(session.solve(b));
  EXPECT_EQ(classic.factor_nnz, direct.factor_nnz);
  EXPECT_EQ(classic.matrix_wavefronts, direct.matrix_wavefronts);
  EXPECT_TRUE(classic.decision.has_value());
}

TEST(RuntimeSession, SetupReusedAcrossSolvesAndSessions) {
  const Csr<double> a = gen_poisson2d(16, 16);
  auto cache = std::make_shared<SetupCache<double>>(4);
  SolverSession<double> first(a, fast_options(), cache);
  EXPECT_FALSE(first.setup_cache_hit());
  SolverSession<double> second(a, fast_options(), cache);
  EXPECT_TRUE(second.setup_cache_hit());
  EXPECT_EQ(first.shared_setup().get(), second.shared_setup().get());

  const std::vector<double> b1 = make_rhs(a, 1);
  const std::vector<double> b2 = make_rhs(a, 2);
  EXPECT_TRUE(first.solve(b1).solve.converged());
  EXPECT_TRUE(second.solve(b2).solve.converged());
  EXPECT_EQ(cache->stats().misses, 1u);
}

TEST(RuntimeSession, BatchedMultiRhsMatchesSequentialSolves) {
  const Csr<double> a = gen_grid_laplacian(18, 18, 1.8, 0.3, 5);
  SolverSession<double> session(a, fast_options());

  std::vector<std::vector<double>> rhs;
  for (std::uint64_t s = 1; s <= 6; ++s) rhs.push_back(make_rhs(a, s));
  rhs.push_back(std::vector<double>(static_cast<std::size_t>(a.rows), 0.0));

  const std::vector<SessionSolveResult<double>> fused = session.solve_batch(
      rhs, BatchOptions{BatchOptions::Mode::kFused, 1});
  ASSERT_EQ(fused.size(), rhs.size());
  for (std::size_t c = 0; c < rhs.size(); ++c) {
    const SessionSolveResult<double> seq = session.solve(rhs[c]);
    EXPECT_EQ(fused[c].solve.status, seq.solve.status) << "rhs " << c;
    EXPECT_EQ(fused[c].solve.iterations, seq.solve.iterations) << "rhs " << c;
    ASSERT_EQ(fused[c].solve.x.size(), seq.solve.x.size());
    for (std::size_t i = 0; i < seq.solve.x.size(); ++i)
      EXPECT_DOUBLE_EQ(fused[c].solve.x[i], seq.solve.x[i])
          << "rhs " << c << " entry " << i;
  }
  // The all-zero column exits immediately with the exact answer.
  EXPECT_TRUE(fused.back().solve.converged());
  EXPECT_EQ(fused.back().solve.iterations, 0);
}

TEST(RuntimeSession, IndependentThreadedBatchMatchesFused) {
  const Csr<double> a = gen_poisson2d(20, 20);
  SolverSession<double> session(a, fast_options());
  std::vector<std::vector<double>> rhs;
  for (std::uint64_t s = 1; s <= 5; ++s) rhs.push_back(make_rhs(a, s));

  const auto fused =
      session.solve_batch(rhs, {BatchOptions::Mode::kFused, 1});
  const auto threaded =
      session.solve_batch(rhs, {BatchOptions::Mode::kIndependent, 4});
  for (std::size_t c = 0; c < rhs.size(); ++c) {
    EXPECT_EQ(fused[c].solve.iterations, threaded[c].solve.iterations);
    for (std::size_t i = 0; i < fused[c].solve.x.size(); ++i)
      EXPECT_DOUBLE_EQ(fused[c].solve.x[i], threaded[c].solve.x[i]);
  }
}

TEST(RuntimeSession, ConcurrentSessionsOnDistinctAndIdenticalMatrices) {
  const Csr<double> a = gen_poisson2d(18, 18);
  const Csr<double> b = gen_grid_laplacian(16, 16, 1.5, 0.4, 3);
  auto cache = std::make_shared<SetupCache<double>>(8);

  constexpr int kThreads = 8;
  std::atomic<int> converged{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const Csr<double>& m = (t % 2 == 0) ? a : b;
      SolverSession<double> session(m, fast_options(), cache);
      const std::vector<double> rhs =
          make_rhs(m, static_cast<std::uint64_t>(t) + 1);
      if (session.solve(rhs).solve.converged()) converged.fetch_add(1);
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(converged.load(), kThreads);
  const SetupCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 2u);  // one setup per distinct matrix
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads) - 2);
}

TEST(RuntimeSession, SelectBestFillLevelSharedCacheAndProtocol) {
  const Csr<double> a = gen_varcoef2d(18, 18, 1.5, 9);
  const std::vector<double> b = make_rhs(a, 6);
  SpcgOptions opt = fast_options();
  const std::vector<index_t> ks{0, 2, 5};

  auto cache = std::make_shared<SetupCache<double>>(8);
  const KSelection<double> first = select_best_fill_level(a, b, opt, ks, cache);
  EXPECT_EQ(cache->stats().misses, ks.size());
  EXPECT_EQ(cache->stats().hits, 0u);

  // A repeated selection against the same cache re-runs nothing.
  const KSelection<double> second =
      select_best_fill_level(a, b, opt, ks, cache);
  EXPECT_EQ(cache->stats().misses, ks.size());
  EXPECT_EQ(cache->stats().hits, ks.size());
  EXPECT_EQ(first.k, second.k);
  EXPECT_EQ(first.baseline.solve.iterations, second.baseline.solve.iterations);

  // Winner invariant (paper §3.3): no candidate beats it on
  // (converged, iterations).
  for (const index_t k : ks) {
    SpcgOptions o = opt;
    o.sparsify_enabled = false;
    o.preconditioner = PrecondKind::kIluK;
    o.fill_level = k;
    const SpcgResult<double> r = spcg_solve(a, b, o);
    if (r.solve.converged()) {
      ASSERT_TRUE(first.baseline.solve.converged());
      EXPECT_LE(first.baseline.solve.iterations, r.solve.iterations);
    }
  }
}

// -------------------------------------------------------------------- service

TEST(RuntimeService, ConcurrentRequestsShareSetups) {
  auto a = std::make_shared<const Csr<double>>(gen_poisson2d(16, 16));
  auto b = std::make_shared<const Csr<double>>(
      gen_grid_laplacian(14, 14, 1.5, 0.4, 3));

  SolveService<double> service({/*workers=*/4, /*cache_capacity=*/8});
  std::vector<SolveService<double>::Ticket> tickets;
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    ServiceRequest<double> req;
    req.a = (i % 2 == 0) ? a : b;
    req.b = make_rhs(*req.a, static_cast<std::uint64_t>(i) + 1);
    req.options = fast_options();
    tickets.push_back(service.submit(std::move(req)));
  }
  for (auto& t : tickets) {
    const ServiceReply<double> reply = t.reply.get();
    ASSERT_EQ(reply.status, RequestStatus::kOk);
    EXPECT_TRUE(reply.solve.converged());
    EXPECT_FALSE(reply.used_fallback);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.cache.misses, 2u);  // one setup per distinct matrix
  EXPECT_EQ(stats.cache.hits, static_cast<std::uint64_t>(kRequests) - 2);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(RuntimeService, DeadlineExpiryIsReportedNotSolved) {
  auto big = std::make_shared<const Csr<double>>(gen_poisson2d(48, 48));
  SolveService<double> service({/*workers=*/1, /*cache_capacity=*/4});

  ServiceRequest<double> busy;
  busy.a = big;
  busy.b = make_rhs(*big, 1);
  busy.options = fast_options();
  auto t1 = service.submit(std::move(busy));

  // Queued behind the busy request with an already-expired deadline.
  ServiceRequest<double> doomed;
  doomed.a = big;
  doomed.b = make_rhs(*big, 2);
  doomed.options = fast_options();
  doomed.deadline = std::chrono::nanoseconds(-1);
  auto t2 = service.submit(std::move(doomed));

  EXPECT_EQ(t1.reply.get().status, RequestStatus::kOk);
  const ServiceReply<double> expired = t2.reply.get();
  EXPECT_EQ(expired.status, RequestStatus::kDeadlineExpired);
  EXPECT_TRUE(expired.solve.x.empty());
  EXPECT_EQ(service.stats().deadline_expired, 1u);
}

TEST(RuntimeService, CancellationBeforePickup) {
  auto big = std::make_shared<const Csr<double>>(gen_poisson2d(48, 48));
  SolveService<double> service({/*workers=*/1, /*cache_capacity=*/4});

  ServiceRequest<double> busy;
  busy.a = big;
  busy.b = make_rhs(*big, 1);
  busy.options = fast_options();
  auto t1 = service.submit(std::move(busy));

  ServiceRequest<double> victim;
  victim.a = big;
  victim.b = make_rhs(*big, 2);
  victim.options = fast_options();
  auto t2 = service.submit(std::move(victim));
  t2.request_cancel();  // worker is still busy with t1

  EXPECT_EQ(t1.reply.get().status, RequestStatus::kOk);
  EXPECT_EQ(t2.reply.get().status, RequestStatus::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(RuntimeService, NonConvergenceFallsBackToBaseline) {
  // An aggressively sparsified preconditioner (95% of entries dropped) needs
  // far more iterations than the iteration cap allows; the baseline ILU(0)
  // fits comfortably. The service must retry and flag the fallback.
  auto a = std::make_shared<const Csr<double>>(gen_poisson2d(30, 30));
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-10;
  opt.pcg.max_iterations = 45;
  opt.sparsify.ratios = {95.0};
  opt.sparsify.tau = 1e9;           // accept the unsafe split anyway
  opt.sparsify.omega_percent = 0.0;

  SolveService<double> service({/*workers=*/2, /*cache_capacity=*/4});
  ServiceRequest<double> req;
  req.a = a;
  req.b = make_rhs(*a, 7);
  req.options = opt;
  auto ticket = service.submit(std::move(req));

  const ServiceReply<double> reply = ticket.reply.get();
  ASSERT_EQ(reply.status, RequestStatus::kOk);
  EXPECT_TRUE(reply.used_fallback);
  EXPECT_TRUE(reply.solve.converged())
      << "baseline fallback should converge within the cap";
  EXPECT_NE(reply.fallback_reason.find("converge"), std::string::npos);
  EXPECT_EQ(service.stats().fallbacks, 1u);
}

TEST(RuntimeService, UnfactorableMatrixFailsBothAttempts) {
  // A matrix with a structurally missing diagonal cannot be factored by the
  // primary or the baseline; the reply must be kFailed with the reason.
  Csr<double> broken(3, 3);
  std::vector<Triplet<double>> t{{0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0},
                                 {1, 2, -1.0}, {2, 1, -1.0}, {2, 2, 2.0}};
  broken = csr_from_triplets<double>(3, 3, t);  // row 1 has no (1,1) entry

  SolveService<double> service({/*workers=*/1, /*cache_capacity=*/4});
  ServiceRequest<double> req;
  req.a = std::make_shared<const Csr<double>>(std::move(broken));
  req.b = {1.0, 2.0, 3.0};
  req.options = fast_options();
  auto ticket = service.submit(std::move(req));

  const ServiceReply<double> reply = ticket.reply.get();
  EXPECT_EQ(reply.status, RequestStatus::kFailed);
  EXPECT_FALSE(reply.error.empty());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.fallbacks, 1u);  // the baseline retry was attempted
}

TEST(RuntimeService, ShutdownDrainsQueueAndRejectsNewWork) {
  auto a = std::make_shared<const Csr<double>>(gen_poisson2d(12, 12));
  SolveService<double> service({/*workers=*/1, /*cache_capacity=*/4});
  std::vector<SolveService<double>::Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    ServiceRequest<double> req;
    req.a = a;
    req.b = make_rhs(*a, static_cast<std::uint64_t>(i) + 1);
    req.options = fast_options();
    tickets.push_back(service.submit(std::move(req)));
  }
  service.shutdown();
  for (auto& t : tickets)
    EXPECT_EQ(t.reply.get().status, RequestStatus::kOk);

  ServiceRequest<double> late;
  late.a = a;
  late.b = make_rhs(*a, 99);
  late.options = fast_options();
  EXPECT_THROW(service.submit(std::move(late)), Error);
}

TEST(RuntimeService, TelemetrySnapshotNamesServiceAndCacheCounters) {
  auto a = std::make_shared<const Csr<double>>(gen_poisson2d(10, 10));
  SolveService<double> service({/*workers=*/1, /*cache_capacity=*/2});
  ServiceRequest<double> req;
  req.a = a;
  req.b = make_rhs(*a, 1);
  req.options = fast_options();
  service.submit(std::move(req)).reply.get();

  const std::vector<CounterSample> samples = service.telemetry_snapshot();
  auto value_of = [&](const std::string& name) -> std::int64_t {
    for (const CounterSample& s : samples)
      if (s.name == name) return static_cast<std::int64_t>(s.value);
    return -1;
  };
  EXPECT_EQ(value_of("service.submitted"), 1);
  EXPECT_EQ(value_of("service.completed"), 1);
  EXPECT_EQ(value_of("setup_cache.misses"), 1);
  EXPECT_EQ(value_of("setup_cache.hits"), 0);
  EXPECT_FALSE(render_telemetry(samples).empty());
}

// ----------------------------------------------------- acceptance (wall time)

// ISSUE 2 acceptance: >= 100 requests over <= 10 distinct suite-style
// matrices must see >= 90% setup-cache hits and finish at least 2x faster
// end-to-end than per-request spcg_solve. Kept out of the TSan fixture set
// (sanitizer overhead distorts wall-clock ratios).
TEST(RuntimeThroughput, TraceBeatsPerRequestSpcgSolveTwofold) {
  constexpr int kMatrices = 8;
  constexpr int kRequests = 120;

  // Setup-dominated configuration: ILU(8) makes the symbolic+numeric
  // factorization the bulk of each request, which is exactly the regime the
  // cache is for (the paper's setup-once/solve-many amortization argument).
  SpcgOptions opt;
  opt.pcg.tolerance = 1e-6;
  opt.preconditioner = PrecondKind::kIluK;
  opt.fill_level = 8;

  std::vector<std::shared_ptr<const Csr<double>>> matrices;
  for (int m = 0; m < kMatrices; ++m)
    matrices.push_back(std::make_shared<const Csr<double>>(
        gen_poisson2d(24 + m, 24 + m)));

  struct Request {
    int matrix;
    std::vector<double> b;
  };
  std::vector<Request> trace;
  for (int i = 0; i < kRequests; ++i) {
    const int m = i % kMatrices;
    trace.push_back(
        {m, make_rhs(*matrices[static_cast<std::size_t>(m)],
                     static_cast<std::uint64_t>(i) + 1)});
  }

  // Baseline: the pre-runtime call pattern — full pipeline per request.
  WallTimer timer;
  int converged_direct = 0;
  for (const Request& r : trace) {
    const SpcgResult<double> res =
        spcg_solve(*matrices[static_cast<std::size_t>(r.matrix)], r.b, opt);
    if (res.solve.converged()) ++converged_direct;
  }
  const double direct_seconds = timer.seconds();

  // Runtime: the same trace through the service + shared setup cache.
  timer.reset();
  SolveService<double> service({/*workers=*/2, /*cache_capacity=*/16});
  std::vector<SolveService<double>::Ticket> tickets;
  tickets.reserve(trace.size());
  for (Request& r : trace) {
    ServiceRequest<double> req;
    req.a = matrices[static_cast<std::size_t>(r.matrix)];
    req.b = std::move(r.b);
    req.options = opt;
    tickets.push_back(service.submit(std::move(req)));
  }
  int converged_service = 0;
  for (auto& t : tickets) {
    const ServiceReply<double> reply = t.reply.get();
    ASSERT_EQ(reply.status, RequestStatus::kOk);
    if (reply.solve.converged()) ++converged_service;
  }
  const double service_seconds = timer.seconds();

  EXPECT_EQ(converged_direct, kRequests);
  EXPECT_EQ(converged_service, kRequests);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.misses, static_cast<std::uint64_t>(kMatrices));
  EXPECT_GE(stats.cache.hit_rate(), 0.9)
      << "hits=" << stats.cache.hits << " misses=" << stats.cache.misses;

  EXPECT_GE(direct_seconds, 2.0 * service_seconds)
      << "per-request pipeline " << direct_seconds << "s vs service "
      << service_seconds << "s";
}

}  // namespace
}  // namespace spcg
