// Per-step solve policies for time-stepping workloads.
//
// Three modes, matching how the related repos actually drive their CG:
//   * kTolerance — a fixed convergence target every step (ARDiS-style:
//     solve to tolerance, however many iterations it takes).
//   * kFixedBudget — exactly `iteration_budget` iterations per step with no
//     convergence exit (MPS_DAWN-style per-frame pressure solve: the frame
//     deadline bounds work, the residual is whatever the budget buys).
//   * kAdaptive — a per-step absolute target derived from the step's own
//     initial residual: max(adaptive_floor, adaptive_reduction * ||r0||).
//     With warm starts ||r0|| shrinks as the sequence settles, so the
//     target tightens where progress is cheap and relaxes after a jolt.
#pragma once

#include <algorithm>
#include <cstdint>

#include "solver/pcg.h"

namespace spcg {

enum class StepMode { kTolerance, kFixedBudget, kAdaptive };

inline const char* to_string(StepMode m) {
  switch (m) {
    case StepMode::kTolerance: return "tolerance";
    case StepMode::kFixedBudget: return "fixed-budget";
    case StepMode::kAdaptive: return "adaptive";
  }
  return "?";
}

/// How each step of a transient sequence is solved.
struct StepPolicy {
  StepMode mode = StepMode::kTolerance;

  // kTolerance: the usual pcg() knobs.
  double tolerance = 1e-10;
  bool relative = false;
  std::int32_t max_iterations = 1000;

  // kFixedBudget: iterations per step, exactly.
  std::int32_t iteration_budget = 30;

  // kAdaptive: absolute target = max(floor, reduction * ||r0||).
  double adaptive_reduction = 1e-6;
  double adaptive_floor = 1e-12;
};

/// The PcgOptions for one step. `r0_norm` is the step's initial residual
/// norm ||b - A x0||; it is only read in kAdaptive mode (pass 0.0
/// otherwise). kFixedBudget sets an unreachable target (0.0, absolute) so
/// the loop's `r_norm < target` test never exits early and exactly
/// `iteration_budget` iterations run (breakdown excepted).
inline PcgOptions step_solve_options(const StepPolicy& policy,
                                     double r0_norm = 0.0) {
  PcgOptions opt;
  switch (policy.mode) {
    case StepMode::kTolerance:
      opt.tolerance = policy.tolerance;
      opt.relative = policy.relative;
      opt.max_iterations = policy.max_iterations;
      break;
    case StepMode::kFixedBudget:
      opt.tolerance = 0.0;
      opt.relative = false;
      opt.max_iterations = policy.iteration_budget;
      break;
    case StepMode::kAdaptive:
      opt.tolerance =
          std::max(policy.adaptive_floor, policy.adaptive_reduction * r0_norm);
      opt.relative = false;
      opt.max_iterations = policy.max_iterations;
      break;
  }
  return opt;
}

}  // namespace spcg
