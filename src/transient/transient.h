// TransientSession — the time-stepping engine over the session layer.
//
// A transient simulation (ARDiS's reaction-diffusion `dt` loop, MPS_DAWN's
// per-frame pressure solve) presents a *sequence* of systems A_t x_t = b_t
// whose matrices usually share one sparsity pattern and drift only in
// values. TransientSession exploits exactly that structure:
//
//   * Setup reuse by invalidation granularity. The first step builds (or
//     adopts from a SetupCache) a full SpcgSetup. A values-only matrix
//     update (same `pattern_hash`, new `values_hash`) triggers only
//     refresh_setup_numerics() — the numeric ILU elimination into the
//     retained symbolic structure; level schedules, wavefront inspection
//     and the sparsification pattern decision are reused verbatim. Only a
//     pattern change pays a full symbolic rebuild.
//   * Warm starts: each step seeds PCG with the previous step's solution
//     (x0), which on a smooth sequence cuts iterations substantially.
//   * Step policies: fixed tolerance, MPS_DAWN-style fixed iteration
//     budget, or adaptive per-step tolerance (transient/step_policy.h).
//   * Zero steady-state allocations: everything is bound before the loop
//     (MPS_DAWN / HPCG-on-GraphBLAS style) — PcgWorkspace, refresh maps,
//     the IluApplier scratch and a donor/solution double buffer — so a
//     steady step (values refresh + solve) performs no heap allocation.
//     The "transient.step" AllocAuditScope enforces this under
//     SPCG_ALLOC_AUDIT.
//
// Cache interaction: an exact-fingerprint cache hit is adopted by *copy*
// (the session mutates its setup in place, cached entries are immutable); a
// same-pattern entry is adopted the same way and refreshed. Refreshed
// clones are never inserted back into the cache — a refresh reuses the
// donor's pattern decision, which is not necessarily what a cold
// spcg_setup on the new values would have chosen.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "analysis/alloc_audit.h"
#include "core/spcg.h"
#include "precond/preconditioner.h"
#include "runtime/fingerprint.h"
#include "runtime/setup_cache.h"
#include "solver/pcg.h"
#include "sparse/csr.h"
#include "sparse/norms.h"
#include "sparse/ops.h"
#include "support/timer.h"
#include "support/trace.h"
#include "transient/refactorize.h"
#include "transient/step_policy.h"

namespace spcg {

/// Configuration of a transient sequence.
struct TransientOptions {
  /// Setup-relevant options (sparsify, preconditioner, executor). base.pcg
  /// is ignored by step() — the StepPolicy governs per-step solve options.
  SpcgOptions base;
  StepPolicy policy;
  /// Seed each step's PCG with the previous step's solution.
  bool warm_start = true;
};

/// What one step() did and what it cost.
struct TransientStepStats {
  std::int64_t step = 0;            // 0-based index in the sequence
  bool symbolic_rebuild = false;    // full setup build (first step / pattern)
  bool refactorized = false;        // values-only numeric refresh
  bool warm_started = false;
  std::int32_t iterations = 0;
  SolveStatus status = SolveStatus::kMaxIterations;
  double final_residual_norm = 0.0;   // true residual at exit (or at budget)
  double target_tolerance = 0.0;      // absolute target this step solved to
  double refactorize_seconds = 0.0;   // rebuild or refresh time (0 = reuse)
  double solve_seconds = 0.0;
};

/// Aggregates over the whole sequence.
struct TransientStats {
  std::int64_t steps = 0;
  std::int64_t symbolic_rebuilds = 0;     // full setups paid
  std::int64_t refactorize_steps = 0;     // values-only refreshes paid
  std::int64_t warm_steps = 0;
  std::int64_t total_iterations = 0;
  std::int64_t cache_hits = 0;             // exact-key setups adopted
  std::int64_t cache_partial_adoptions = 0;  // same-pattern setups adopted
  double refactorize_seconds = 0.0;        // rebuild + refresh time
  double solve_seconds = 0.0;
};

/// One matrix-sequence solve engine. Not thread-safe; one instance per
/// stepping loop. The matrix is shared (or borrowed — see the lvalue
/// overloads) and may be swapped between steps via update_matrix().
template <class T>
class TransientSession {
 public:
  TransientSession(std::shared_ptr<const Csr<T>> a, TransientOptions opt,
                   std::shared_ptr<SetupCache<T>> cache = nullptr)
      : a_(std::move(a)), opt_(std::move(opt)), cache_(std::move(cache)) {
    SPCG_CHECK(a_ != nullptr);
    SPCG_CHECK(a_->rows == a_->cols);
    fp_ = fingerprint(*a_);
  }

  /// Borrow a caller-owned matrix (must outlive the session / the next
  /// update_matrix). Useful when the stepping loop mutates one Csr in place
  /// and re-presents it each step.
  TransientSession(const Csr<T>& a, TransientOptions opt,
                   std::shared_ptr<SetupCache<T>> cache = nullptr)
      : TransientSession(
            std::shared_ptr<const Csr<T>>(&a, [](const Csr<T>*) {}),
            std::move(opt), std::move(cache)) {}

  /// Present the matrix for the next step(s). Fingerprints it and classifies
  /// the change: identical (no-op), values-only (numeric refresh on the next
  /// step), or pattern change (full symbolic rebuild on the next step).
  /// Passing the same Csr object after mutating its values in place is the
  /// intended idiom for steppers that own their matrix.
  void update_matrix(std::shared_ptr<const Csr<T>> a) {
    SPCG_CHECK(a != nullptr);
    const MatrixFingerprint fp = fingerprint(*a);
    const bool same_pattern = fp.pattern_hash == fp_.pattern_hash &&
                              fp.rows == fp_.rows && fp.nnz == fp_.nnz;
    a_ = std::move(a);
    if (same_pattern && fp.values_hash == fp_.values_hash) {
      fp_ = fp;
      return;  // bit-identical matrix: keep everything
    }
    fp_ = fp;
    if (same_pattern && ready_) {
      dirty_values_ = true;
      // Telemetry: a values-only change is a *partial hit* of the retained
      // setup — surface it on the shared cache so operators can tell the
      // fast path from cold misses (ISSUE satellite: cache.partial_hit).
      if (cache_) cache_->lookup_same_pattern(make_setup_key(fp_, opt_.base));
    } else {
      dirty_pattern_ = true;
      x_.clear();  // a different pattern means a different unknown layout
    }
  }

  void update_matrix(const Csr<T>& a) {
    update_matrix(std::shared_ptr<const Csr<T>>(&a, [](const Csr<T>*) {}));
  }

  /// Advance one step: bring the setup current (full build, numeric refresh
  /// or pure reuse), then solve A x = b under the step policy, warm-started
  /// from the previous solution when enabled. Returns this step's stats
  /// (also retained — see last_step()). Steady-state steps (setup ready or
  /// values-only refresh, workspace warm) perform zero heap allocations.
  const TransientStepStats& step(std::span<const T> b) {
    SPCG_CHECK(static_cast<index_t>(b.size()) == a_->rows);
    const bool structural = !ready_ || dirty_pattern_;
    const analysis::AllocAuditScope audit("transient.step",
                                          /*steady_state=*/!structural);
    Span span("transient.step", "transient");
    last_ = TransientStepStats{};
    last_.step = stats_.steps;

    if (structural) {
      rebuild();
    } else if (dirty_values_) {
      WallTimer timer;
      refresh_setup_numerics(setup_, *a_, opt_.base, ws_);
      dirty_values_ = false;
      last_.refactorized = true;
      last_.refactorize_seconds = timer.seconds();
      stats_.refactorize_steps += 1;
    }

    const auto n = static_cast<std::size_t>(a_->rows);
    const bool warm = opt_.warm_start && x_.size() == n;

    double r0_norm = 0.0;
    if (opt_.policy.mode == StepMode::kAdaptive) {
      // ||b - A x0|| for the adaptive target; plain ||b|| on a cold start.
      if (warm) {
        pcg_ws_.ax.assign(n, T{0});
        spmv(*a_, std::span<const T>(x_), std::span<T>(pcg_ws_.ax));
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = static_cast<double>(b[i]) -
                           static_cast<double>(pcg_ws_.ax[i]);
          acc += d * d;
        }
        r0_norm = std::sqrt(acc);
      } else {
        r0_norm = static_cast<double>(norm2(b));
      }
    }
    const PcgOptions popt = step_solve_options(opt_.policy, r0_norm);

    WallTimer timer;
    // Donor double-buffer: the retired solution (spare_) becomes pcg()'s
    // result buffer; afterwards the previous solution retires into spare_.
    // Net effect: no vector is ever reallocated across steady steps.
    pcg_ws_.x = std::move(spare_);
    SolveResult<T> r =
        pcg(*a_, b, *applier_, popt,
            warm ? std::span<const T>(x_) : std::span<const T>{}, &pcg_ws_);
    spare_ = std::move(x_);
    x_ = std::move(r.x);
    // On the structural step the retiring x_ was empty (no previous
    // solution), which would leave the *next* step's donor without capacity;
    // size it here, while allocation is still permitted.
    if (spare_.size() != n) spare_.assign(n, T{0});
    last_.solve_seconds = timer.seconds();

    last_.warm_started = warm;
    last_.iterations = r.iterations;
    last_.status = r.status;
    last_.final_residual_norm = r.final_residual_norm;
    last_.target_tolerance =
        popt.relative ? popt.tolerance * static_cast<double>(norm2(b))
                      : popt.tolerance;

    stats_.steps += 1;
    stats_.total_iterations += r.iterations;
    if (warm) stats_.warm_steps += 1;
    stats_.refactorize_seconds += last_.refactorize_seconds;
    stats_.solve_seconds += last_.solve_seconds;
    span.arg("iterations", r.iterations);
    span.arg("refactorized", last_.refactorized);
    return last_;
  }

  const TransientStepStats& step(const std::vector<T>& b) {
    return step(std::span<const T>(b));
  }

  /// The most recent step's solution (empty before the first step).
  [[nodiscard]] const std::vector<T>& solution() const { return x_; }
  [[nodiscard]] const TransientStepStats& last_step() const { return last_; }
  [[nodiscard]] const TransientStats& stats() const { return stats_; }
  [[nodiscard]] const MatrixFingerprint& current_fingerprint() const {
    return fp_;
  }

  /// The live setup (built on first step; SPCG_CHECKs before that). Numeric
  /// artifacts reflect the current matrix; a SparsifyDecision's indicator/
  /// outcome fields are provenance of the original decision, not re-derived
  /// per refresh.
  [[nodiscard]] const SpcgSetup<T>& setup() const {
    SPCG_CHECK_MSG(ready_, "TransientSession::setup() before first step");
    return setup_;
  }

 private:
  /// Full (re)build: adopt a setup from the cache when possible, else build
  /// cold; then bind everything the steady loop needs.
  void rebuild() {
    WallTimer timer;
    Span span("transient.rebuild", "transient");
    bool adopted = false;
    if (cache_) {
      const SetupKey key = make_setup_key(fp_, opt_.base);
      if (auto exact = cache_->lookup(key)) {
        setup_ = exact->artifacts;  // copy: the session mutates in place
        ws_ = build_numeric_refresh(setup_, *a_);
        stats_.cache_hits += 1;
        adopted = true;
      } else if (auto donor = cache_->lookup_same_pattern(key)) {
        // Same pattern + options, different values: adopt the symbolic
        // structure and refresh the numerics. NOT inserted back into the
        // cache (see file header).
        setup_ = donor->artifacts;
        ws_ = build_numeric_refresh(setup_, *a_);
        refresh_setup_numerics(setup_, *a_, opt_.base, ws_);
        stats_.cache_partial_adoptions += 1;
        adopted = true;
      } else {
        setup_ = cache_->get_or_build(*a_, opt_.base)->artifacts;
        ws_ = build_numeric_refresh(setup_, *a_);
      }
    } else {
      setup_ = spcg_setup(*a_, opt_.base);
      ws_ = build_numeric_refresh(setup_, *a_);
    }
    applier_.emplace(setup_.factors, setup_.l_schedule, setup_.u_schedule,
                     opt_.base.executor);
    // Pre-size the donor so even the structural step's pcg() gets a warm
    // result buffer (steady steps re-guarantee this in step()).
    spare_.assign(static_cast<std::size_t>(a_->rows), T{0});
    ready_ = true;
    dirty_pattern_ = false;
    dirty_values_ = false;
    last_.symbolic_rebuild = true;
    last_.refactorize_seconds = timer.seconds();
    stats_.symbolic_rebuilds += 1;
    span.arg("adopted", adopted);
  }

  std::shared_ptr<const Csr<T>> a_;
  TransientOptions opt_;
  std::shared_ptr<SetupCache<T>> cache_;
  MatrixFingerprint fp_;

  SpcgSetup<T> setup_;            // private mutable clone
  NumericRefreshWorkspace ws_;
  std::optional<IluApplier<T>> applier_;  // points into setup_; rebuilt on
                                          // symbolic rebuild only
  PcgWorkspace<T> pcg_ws_;
  std::vector<T> x_;      // previous step's solution (warm-start source)
  std::vector<T> spare_;  // donor buffer for the next result

  bool ready_ = false;
  bool dirty_values_ = false;
  bool dirty_pattern_ = false;
  TransientStepStats last_;
  TransientStats stats_;
};

}  // namespace spcg
