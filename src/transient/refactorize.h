// Numeric-only refresh of a SpcgSetup — the values-only fast path of the
// transient subsystem.
//
// The setup pipeline splits cleanly into pattern-only and value-only work:
// ILU(K) symbolic closure, level schedules, wavefront inspection and the
// sparsification *pattern* decision depend only on (rowptr, colind), while
// factor values depend on A's values. When a time-stepping client presents
// a matrix with the same pattern and new values (same `pattern_hash`, new
// `values_hash`), everything symbolic in an existing SpcgSetup is still
// valid — only the numbers must be recomputed.
//
// refresh_setup_numerics() does exactly that: it re-scatters the new values
// through the retained sparsification split (the same entries are kept and
// dropped — the pattern decision is reused verbatim, not re-derived), reruns
// the numeric ILU elimination into the retained symbolic structure via
// ilu_refactorize(), and propagates the combined factor into the split L/U
// the schedules were built for. No symbolic work, no schedule rebuild, and —
// given a prebuilt NumericRefreshWorkspace — no heap allocation.
//
// Stale after a refresh (by design): SparsifyDecision::indicator, steps and
// outcome describe the values the decision was *made* on, not the current
// ones. TransientSession treats them as provenance, not state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/spcg.h"
#include "precond/ilu.h"
#include "sparse/csr.h"

namespace spcg {

/// Precomputed index maps + scratch for refresh_setup_numerics(). Built once
/// per (setup, pattern) by build_numeric_refresh(); every refresh through it
/// is allocation-free. All maps are positions (CSR entry indices), so a
/// refresh is pure gather/scatter over value arrays.
struct NumericRefreshWorkspace {
  /// Scatter scratch for the numeric elimination: size n, every entry -1
  /// between uses (ilu_numeric_in_place restores it).
  std::vector<index_t> pos;
  /// For each a_hat entry: the position of the same (i, j) in A. Empty for
  /// baseline setups (no sparsification — the factorization input is A).
  std::vector<index_t> keep_pos;
  /// For each entry of the residual matrix S: its position in A.
  std::vector<index_t> s_pos;
  /// For each entry of factors.l / factors.u: its position in the combined
  /// factorization.lu; -1 marks L's stored unit diagonal (always 1).
  std::vector<index_t> l_map;
  std::vector<index_t> u_map;
  /// Shape guards: the A this workspace was built against.
  index_t expected_rows = 0;
  index_t expected_nnz = 0;
};

/// Build the refresh maps for `setup` against the matrix `a` it was built
/// from (same pattern; values are irrelevant here). One merge-walk over A's
/// rows recovers the keep/drop split positions; the factor maps come from
/// binary search in the combined LU pattern.
template <class T>
NumericRefreshWorkspace build_numeric_refresh(const SpcgSetup<T>& setup,
                                              const Csr<T>& a) {
  NumericRefreshWorkspace ws;
  ws.expected_rows = a.rows;
  ws.expected_nnz = a.nnz();
  ws.pos.assign(static_cast<std::size_t>(a.rows), -1);

  if (setup.decision.has_value()) {
    const Csr<T>& a_hat = setup.decision->chosen.a_hat;
    const Csr<T>& s = setup.decision->chosen.s;
    SPCG_CHECK(a_hat.rows == a.rows && s.rows == a.rows);
    SPCG_CHECK(a_hat.nnz() + s.nnz() == a.nnz());
    ws.keep_pos.assign(static_cast<std::size_t>(a_hat.nnz()), -1);
    ws.s_pos.assign(static_cast<std::size_t>(s.nnz()), -1);
    // Â and S partition A's entries row by row, both column-sorted: one
    // synchronized walk over each A row assigns every position.
    for (index_t i = 0; i < a.rows; ++i) {
      index_t ph = a_hat.rowptr[static_cast<std::size_t>(i)];
      const index_t ph_end = a_hat.rowptr[static_cast<std::size_t>(i) + 1];
      index_t ps = s.rowptr[static_cast<std::size_t>(i)];
      const index_t ps_end = s.rowptr[static_cast<std::size_t>(i) + 1];
      for (index_t pa = a.rowptr[static_cast<std::size_t>(i)];
           pa < a.rowptr[static_cast<std::size_t>(i) + 1]; ++pa) {
        const index_t col = a.colind[static_cast<std::size_t>(pa)];
        if (ph < ph_end &&
            a_hat.colind[static_cast<std::size_t>(ph)] == col) {
          ws.keep_pos[static_cast<std::size_t>(ph++)] = pa;
        } else if (ps < ps_end &&
                   s.colind[static_cast<std::size_t>(ps)] == col) {
          ws.s_pos[static_cast<std::size_t>(ps++)] = pa;
        } else {
          SPCG_CHECK_MSG(false, "sparsify split does not partition A at row "
                                    << i << " col " << col);
        }
      }
      SPCG_CHECK(ph == ph_end && ps == ps_end);
    }
  }

  const Csr<T>& lu = setup.factorization.lu;
  const Csr<T>& l = setup.factors.l;
  const Csr<T>& u = setup.factors.u;
  ws.l_map.assign(static_cast<std::size_t>(l.nnz()), -1);
  ws.u_map.assign(static_cast<std::size_t>(u.nnz()), -1);
  for (index_t i = 0; i < l.rows; ++i) {
    for (index_t p = l.rowptr[static_cast<std::size_t>(i)];
         p < l.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t col = l.colind[static_cast<std::size_t>(p)];
      if (col == i) continue;  // stored unit diagonal: stays -1
      const index_t q = lu.find(i, col);
      SPCG_CHECK_MSG(q >= 0, "L entry missing from combined factor at row "
                                 << i);
      ws.l_map[static_cast<std::size_t>(p)] = q;
    }
    for (index_t p = u.rowptr[static_cast<std::size_t>(i)];
         p < u.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t q = lu.find(i, u.colind[static_cast<std::size_t>(p)]);
      SPCG_CHECK_MSG(q >= 0, "U entry missing from combined factor at row "
                                 << i);
      ws.u_map[static_cast<std::size_t>(p)] = q;
    }
  }
  return ws;
}

/// Values-only refresh: recompute every numeric artifact of `setup` from
/// `a_new` (same pattern as the matrix the setup was built from), reusing
/// the symbolic structure verbatim. With `ws` from build_numeric_refresh()
/// this performs zero heap allocations.
///
/// Equivalence guarantee: when a cold spcg_setup(a_new, opt) would make the
/// same sparsification *pattern* decision (same kept/dropped entry set —
/// e.g. a single-ratio configuration, or a values change that preserves the
/// drop ordering), the refreshed factors are bitwise-equal to that cold
/// setup's. verify_numeric_refactorize (analysis/verify.h) checks this.
template <class T>
void refresh_setup_numerics(SpcgSetup<T>& setup, const Csr<T>& a_new,
                            const SpcgOptions& opt,
                            NumericRefreshWorkspace& ws) {
  SPCG_CHECK_MSG(a_new.rows == ws.expected_rows &&
                     a_new.nnz() == ws.expected_nnz,
                 "refresh workspace was built for a different pattern");

  const Csr<T>* input = &a_new;
  if (setup.decision.has_value()) {
    SparsifySplit<T>& split = setup.decision->chosen;
    SPCG_CHECK(static_cast<std::size_t>(split.a_hat.nnz()) ==
               ws.keep_pos.size());
    SPCG_CHECK(static_cast<std::size_t>(split.s.nnz()) == ws.s_pos.size());
    for (std::size_t j = 0; j < ws.keep_pos.size(); ++j)
      split.a_hat.values[j] =
          a_new.values[static_cast<std::size_t>(ws.keep_pos[j])];
    for (std::size_t j = 0; j < ws.s_pos.size(); ++j)
      split.s.values[j] = a_new.values[static_cast<std::size_t>(ws.s_pos[j])];
    input = &split.a_hat;
  }

  ilu_refactorize(setup.factorization, *input, opt.ilu,
                  std::span<index_t>(ws.pos));

  // Propagate the combined factor into the split L/U the level schedules
  // reference — value writes only, the triangular patterns are untouched.
  Csr<T>& l = setup.factors.l;
  Csr<T>& u = setup.factors.u;
  SPCG_CHECK(l.values.size() == ws.l_map.size() &&
             u.values.size() == ws.u_map.size());
  const std::vector<T>& lu_values = setup.factorization.lu.values;
  for (std::size_t j = 0; j < ws.l_map.size(); ++j)
    l.values[j] = ws.l_map[j] < 0
                      ? T{1}
                      : lu_values[static_cast<std::size_t>(ws.l_map[j])];
  for (std::size_t j = 0; j < ws.u_map.size(); ++j)
    u.values[j] = lu_values[static_cast<std::size_t>(ws.u_map[j])];
}

}  // namespace spcg
