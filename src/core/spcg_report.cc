#include "core/spcg_report.h"

#include <sstream>

#include "support/table.h"

namespace spcg {

std::string render_run_summary(const RunSummary& s) {
  std::ostringstream os;
  os << "=== " << s.label << " (" << s.preconditioner << ") ===\n";
  if (s.sparsified) {
    os << "  sparsification : ratio " << fmt(s.ratio_percent, 1) << "% ("
       << s.outcome << "), wavefront reduction "
       << fmt(s.wavefront_reduction_percent, 2) << "%\n";
  } else {
    os << "  sparsification : disabled (baseline PCG)\n";
  }
  os << "  matrix nnz     : " << s.matrix_nnz << " (factor nnz "
     << s.factor_nnz << ")\n";
  os << "  wavefronts     : matrix " << s.wavefronts_matrix << ", factor "
     << s.wavefronts_factor << "\n";
  os << "  solve          : " << s.iterations << " iterations, "
     << (s.converged ? "converged" : "NOT converged") << ", final residual "
     << s.final_residual << "\n";
  os << "  host time      : sparsify " << fmt(s.sparsify_seconds * 1e3, 3)
     << " ms, factorize " << fmt(s.factorization_seconds * 1e3, 3)
     << " ms, solve " << fmt(s.solve_seconds * 1e3, 3) << " ms\n";
  return os.str();
}

}  // namespace spcg
