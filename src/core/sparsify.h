// Wavefront-aware sparsification — the paper's primary contribution
// (Section 3.2, Algorithm 2).
//
// Given a symmetric matrix A, split A = Â + S by removing the
// smallest-magnitude off-diagonal entries (symmetric pairs together, the
// diagonal never). Candidate drop ratios t ∈ {10, 5, 1}% are tried in
// decreasing aggressiveness; a candidate is accepted when
//   (1) the convergence indicator ‖Â⁻¹‖·‖S‖ stays below the threshold τ
//       (Eq. 6, with the inexpensive condition-number proxy of §3.2.2), and
//   (2) the wavefront reduction (Eq. 7) reaches the threshold ω — or t is the
//       most conservative ratio.
// If no ratio passes the convergence check, the most aggressive ratio is
// returned anyway (Algorithm 2, line 6): with no safe level, the paper
// prioritizes per-iteration speedup.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "solver/lanczos.h"
#include "sparse/csr.h"
#include "sparse/norms.h"
#include "sparse/ops.h"
#include "wavefront/levels.h"

namespace spcg {

/// A = a_hat + s decomposition produced by one sparsification ratio.
template <class T>
struct SparsifySplit {
  Csr<T> a_hat;            // sparsified matrix Â
  Csr<T> s;                // residual matrix S (the dropped entries)
  double ratio_percent = 0.0;  // requested t
  index_t dropped = 0;     // entries actually removed (= nnz(S))
};

/// Magnitude-based symmetric sparsification at ratio `t_percent`:
/// removes the smallest-|value| off-diagonal entries, in symmetric pairs,
/// without exceeding round(t/100 * nnz(A)) removals. Diagonal entries are
/// always preserved (§3.2.2). Ties break deterministically by (|v|, i, j).
template <class T>
SparsifySplit<T> sparsify_by_ratio(const Csr<T>& a, double t_percent) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK(t_percent >= 0.0 && t_percent < 100.0);

  struct Candidate {
    T magnitude;
    index_t row, col;  // upper-triangle representative (row < col)
  };
  std::vector<Candidate> candidates;
  for (index_t i = 0; i < a.rows; ++i) {
    const auto cols_i = a.row_cols(i);
    const auto vals_i = a.row_vals(i);
    for (std::size_t p = 0; p < cols_i.size(); ++p) {
      if (cols_i[p] > i)
        candidates.push_back({std::abs(vals_i[p]), i, cols_i[p]});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.magnitude != y.magnitude) return x.magnitude < y.magnitude;
              if (x.row != y.row) return x.row < y.row;
              return x.col < y.col;
            });

  const auto target = static_cast<index_t>(
      std::llround(t_percent / 100.0 * static_cast<double>(a.nnz())));

  // Mark positions to drop, walking candidates smallest-first. Each pair
  // (i,j)/(j,i) is dropped together; an unpaired entry (structurally
  // unsymmetric input) counts as one.
  std::vector<char> drop(static_cast<std::size_t>(a.nnz()), 0);
  index_t dropped = 0;
  for (const Candidate& c : candidates) {
    const index_t p_upper = a.find(c.row, c.col);
    const index_t p_lower = a.find(c.col, c.row);
    const index_t cost = (p_lower >= 0) ? 2 : 1;
    if (dropped + cost > target) break;
    drop[static_cast<std::size_t>(p_upper)] = 1;
    if (p_lower >= 0) drop[static_cast<std::size_t>(p_lower)] = 1;
    dropped += cost;
  }

  SparsifySplit<T> out;
  out.ratio_percent = t_percent;
  out.dropped = dropped;
  out.a_hat = Csr<T>(a.rows, a.cols);
  out.s = Csr<T>(a.rows, a.cols);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      Csr<T>& dst = drop[static_cast<std::size_t>(p)] ? out.s : out.a_hat;
      dst.colind.push_back(a.colind[static_cast<std::size_t>(p)]);
      dst.values.push_back(a.values[static_cast<std::size_t>(p)]);
    }
    out.a_hat.rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(out.a_hat.colind.size());
    out.s.rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(out.s.colind.size());
  }
  return out;
}

/// The convergence-safety indicator of Algorithm 2 (lines 4–5).
struct ConvergenceIndicator {
  double inv_norm = 0.0;  // estimate of ‖Â⁻¹‖
  double s_norm = 0.0;    // ‖S‖_inf
  double product = 0.0;   // the quantity compared against τ
};

enum class ConditionEstimator {
  /// Paper's proxy: κ(Â) ≈ ‖Â‖_inf / min_i â_ii, ‖Â‖₂ ≈ ‖Â‖_inf,
  /// so ‖Â⁻¹‖ ≈ κ(Â)/‖Â‖₂.
  kDiagonalProxy,
  /// Ablation (§3.2.3): Lanczos extreme eigenvalues, ‖Â⁻¹‖ = 1/λ_min.
  kLanczos,
};

template <class T>
ConvergenceIndicator convergence_indicator(
    const Csr<T>& a_hat, const Csr<T>& s,
    ConditionEstimator estimator = ConditionEstimator::kDiagonalProxy,
    int lanczos_steps = 60) {
  ConvergenceIndicator ind;
  ind.s_norm = static_cast<double>(norm_inf(s));
  if (estimator == ConditionEstimator::kDiagonalProxy) {
    double min_diag = std::numeric_limits<double>::infinity();
    for (index_t i = 0; i < a_hat.rows; ++i)
      min_diag = std::min(min_diag, static_cast<double>(a_hat.at(i, i)));
    const double a_inf = static_cast<double>(norm_inf(a_hat));
    if (!(min_diag > 0.0) || a_inf == 0.0) {
      ind.inv_norm = std::numeric_limits<double>::infinity();
    } else {
      const double kappa = a_inf / min_diag;  // condition-number proxy
      ind.inv_norm = kappa / a_inf;           // ‖Â⁻¹‖ ≈ κ/‖Â‖₂, ‖Â‖₂≈‖Â‖_inf
    }
  } else {
    const EigEstimate eig = lanczos_extreme_eigenvalues(a_hat, lanczos_steps);
    ind.inv_norm = eig.lambda_min > 0.0
                       ? 1.0 / eig.lambda_min
                       : std::numeric_limits<double>::infinity();
  }
  ind.product = ind.inv_norm * ind.s_norm;
  return ind;
}

/// Denominator convention for the wavefront-reduction test. The paper's
/// Eq. 7 normalizes by w_A while Algorithm 2 line 10 writes w_Â; Eq. 7 is
/// what the analysis sections use, so it is the default here.
enum class WavefrontDenominator { kOriginal /*Eq. 7*/, kSparsified /*Alg. 2*/ };

/// Tunable knobs of Algorithm 2 (paper defaults: τ=1, ω=10%, t∈{10,5,1}).
struct SparsifyOptions {
  std::vector<double> ratios{10.0, 5.0, 1.0};  // tried in this order
  double tau = 1.0;
  double omega_percent = 10.0;
  ConditionEstimator estimator = ConditionEstimator::kDiagonalProxy;
  WavefrontDenominator denominator = WavefrontDenominator::kOriginal;
  int lanczos_steps = 60;
};

/// Why Algorithm 2 stopped where it did.
enum class SparsifyOutcome {
  kWavefrontAccepted,      // convergence ok and reduction >= ω
  kSmallestRatioFallback,  // all safe ratios lacked reduction -> smallest t
  kUnsafeFallback,         // even smallest t unsafe -> most aggressive t
};

/// Per-ratio diagnostics recorded while Algorithm 2 runs.
struct SparsifyStep {
  double ratio_percent = 0.0;
  index_t dropped = 0;
  ConvergenceIndicator indicator;
  bool convergence_ok = false;
  index_t wavefronts = 0;          // w_Ât (only computed when convergence_ok)
  double reduction_percent = 0.0;  // per the configured denominator
  bool wavefront_ok = false;
};

/// Full result of wavefront-aware sparsification.
template <class T>
struct SparsifyDecision {
  SparsifySplit<T> chosen;
  SparsifyOutcome outcome = SparsifyOutcome::kWavefrontAccepted;
  index_t wavefronts_original = 0;
  index_t wavefronts_chosen = 0;
  double reduction_percent = 0.0;  // Eq. 7 value for the chosen matrix
  std::vector<SparsifyStep> steps;
};

/// Algorithm 2: wavefront-aware sparsification.
template <class T>
SparsifyDecision<T> wavefront_aware_sparsify(const Csr<T>& a,
                                             const SparsifyOptions& opt = {}) {
  SPCG_CHECK_MSG(!opt.ratios.empty(), "need at least one ratio");
  SparsifyDecision<T> out;
  out.wavefronts_original = count_wavefronts(a);  // line 1: w_A

  auto finalize = [&](SparsifySplit<T> split, SparsifyOutcome outcome,
                      index_t wavefronts) {
    out.outcome = outcome;
    out.wavefronts_chosen =
        wavefronts >= 0 ? wavefronts : count_wavefronts(split.a_hat);
    out.reduction_percent = wavefront_reduction_percent(
        out.wavefronts_original, out.wavefronts_chosen);
    out.chosen = std::move(split);
    return out;
  };

  for (std::size_t idx = 0; idx < opt.ratios.size(); ++idx) {
    const double t = opt.ratios[idx];
    const bool last = (idx + 1 == opt.ratios.size());

    SparsifyStep step;
    step.ratio_percent = t;
    SparsifySplit<T> split = sparsify_by_ratio(a, t);  // line 3
    step.dropped = split.dropped;

    // Lines 4–8: convergence indicator against τ.
    step.indicator = convergence_indicator(split.a_hat, split.s,
                                           opt.estimator, opt.lanczos_steps);
    step.convergence_ok = !(step.indicator.product > opt.tau);
    if (!step.convergence_ok) {
      out.steps.push_back(step);
      if (last) {
        // Line 6: even the smallest ratio is unsafe; fall back to the most
        // aggressive ratio to maximize per-iteration speedup.
        return finalize(sparsify_by_ratio(a, opt.ratios.front()),
                        SparsifyOutcome::kUnsafeFallback, -1);
      }
      continue;  // line 7
    }

    // Lines 9–12: wavefront-reduction effectiveness.
    step.wavefronts = count_wavefronts(split.a_hat);
    const index_t denom =
        opt.denominator == WavefrontDenominator::kOriginal
            ? out.wavefronts_original
            : step.wavefronts;
    step.reduction_percent =
        denom > 0 ? 100.0 *
                        static_cast<double>(out.wavefronts_original -
                                            step.wavefronts) /
                        static_cast<double>(denom)
                  : 0.0;
    step.wavefront_ok = step.reduction_percent >= opt.omega_percent;
    out.steps.push_back(step);

    if (step.wavefront_ok || last) {
      // Accepted (line 11), or the smallest ratio acting as the
      // minimal-error fallback (§3.2.2 closing paragraph).
      return finalize(std::move(split),
                      step.wavefront_ok
                          ? SparsifyOutcome::kWavefrontAccepted
                          : SparsifyOutcome::kSmallestRatioFallback,
                      step.wavefronts);
    }
  }
  // Unreachable: the loop always returns on the last ratio; kept for safety.
  return finalize(sparsify_by_ratio(a, opt.ratios.front()),
                  SparsifyOutcome::kUnsafeFallback, -1);
}

/// Human-readable outcome label (used by reports and benches).
inline const char* to_string(SparsifyOutcome o) {
  switch (o) {
    case SparsifyOutcome::kWavefrontAccepted: return "wavefront-accepted";
    case SparsifyOutcome::kSmallestRatioFallback: return "smallest-ratio";
    case SparsifyOutcome::kUnsafeFallback: return "unsafe-fallback";
  }
  return "unknown";
}

}  // namespace spcg
