// SPCG driver — the end-to-end pipeline of Figure 2:
//
//   A ──► wavefront-aware sparsification ──► Â ──► ILU(0)/ILU(K) ──► M={L,U}
//   (A, b, M) ──► PCG (Algorithm 1) ──► x
//
// Note the preconditioner is built from the *sparsified* matrix while PCG
// iterates on the *original* system A x = b, exactly as in the paper's
// overview. Setting SpcgOptions::sparsify_enabled=false gives the
// non-sparsified PCG baseline with the same plumbing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/sparsify.h"
#include "precond/ilu.h"
#include "precond/preconditioner.h"
#include "solver/pcg.h"
#include "support/timer.h"

namespace spcg {

enum class PrecondKind { kIlu0, kIluK };

inline const char* to_string(PrecondKind k) {
  return k == PrecondKind::kIlu0 ? "ILU(0)" : "ILU(K)";
}

/// Configuration of a full SPCG (or baseline PCG) run.
struct SpcgOptions {
  bool sparsify_enabled = true;       // false -> plain PCG baseline
  SparsifyOptions sparsify;           // Algorithm 2 thresholds
  PrecondKind preconditioner = PrecondKind::kIlu0;
  index_t fill_level = 10;            // K for ILU(K)
  index_t max_row_fill = 0;           // safety cap for ILU(K) symbolic
  IluOptions ilu;                     // pivot handling
  TrsvExec executor = TrsvExec::kSerial;
  PcgOptions pcg;                     // tolerance / max iterations
};

/// Structural and timing instrumentation of one run; everything the
/// benchmark harness needs to model device time afterwards.
template <class T>
struct SpcgResult {
  SolveResult<T> solve;

  // Sparsification (empty optional for the baseline).
  std::optional<SparsifyDecision<T>> decision;

  // Preconditioner structure.
  IluResult<T> factorization;    // combined LU on Â (or A for baseline)
  index_t factor_nnz = 0;
  index_t wavefronts_factor = 0;   // level count of the factor's L pattern
  index_t matrix_wavefronts = 0;   // level count of the (possibly
                                   // sparsified) input pattern
  // Host wall-clock phases (seconds).
  double sparsify_seconds = 0.0;
  double factorization_seconds = 0.0;
  double solve_seconds = 0.0;

  [[nodiscard]] double end_to_end_seconds() const {
    return sparsify_seconds + factorization_seconds + solve_seconds;
  }
};

/// Run the full SPCG pipeline on A x = b.
template <class T>
SpcgResult<T> spcg_solve(const Csr<T>& a, std::span<const T> b,
                         const SpcgOptions& opt = {}) {
  SPCG_CHECK(a.rows == a.cols);
  SpcgResult<T> res;

  // Phase 1: wavefront-aware sparsification (Algorithm 2).
  const Csr<T>* precond_input = &a;
  WallTimer timer;
  if (opt.sparsify_enabled) {
    res.decision = wavefront_aware_sparsify(a, opt.sparsify);
    precond_input = &res.decision->chosen.a_hat;
  }
  res.sparsify_seconds = timer.seconds();
  res.matrix_wavefronts = opt.sparsify_enabled
                              ? res.decision->wavefronts_chosen
                              : count_wavefronts(a);

  // Phase 2: incomplete factorization of the (sparsified) matrix.
  timer.reset();
  res.factorization =
      opt.preconditioner == PrecondKind::kIlu0
          ? ilu0(*precond_input, opt.ilu)
          : iluk(*precond_input, opt.fill_level, opt.ilu, opt.max_row_fill);
  res.factorization_seconds = timer.seconds();
  res.factor_nnz = res.factorization.lu.nnz();
  res.wavefronts_factor =
      level_schedule(res.factorization.lu, Triangle::kLower).num_levels();

  // Phase 3: PCG on the ORIGINAL system with the sparsified preconditioner.
  timer.reset();
  IluPreconditioner<T> m(res.factorization, opt.executor);
  res.solve = pcg(a, b, m, opt.pcg);
  res.solve_seconds = timer.seconds();
  return res;
}

/// Vector-argument convenience.
template <class T>
SpcgResult<T> spcg_solve(const Csr<T>& a, const std::vector<T>& b,
                         const SpcgOptions& opt = {}) {
  return spcg_solve(a, std::span<const T>(b), opt);
}

/// Select the best-converging K ∈ `candidates` for the *baseline* PCG-ILU(K)
/// on matrix A (paper §3.3: "we select the best converging K ... for the
/// non-sparsified PCG-ILU(K). We then use this value to measure the effect of
/// sparsification"). Best = fewest iterations among converging runs, ties to
/// the smaller K; when nothing converges, the K with the smallest final
/// residual.
template <class T>
struct KSelection {
  index_t k = 0;
  SpcgResult<T> baseline;  // the run that won
};

template <class T>
KSelection<T> select_best_fill_level(const Csr<T>& a, std::span<const T> b,
                                     SpcgOptions opt,
                                     std::span<const index_t> candidates) {
  SPCG_CHECK(!candidates.empty());
  opt.sparsify_enabled = false;
  opt.preconditioner = PrecondKind::kIluK;

  std::optional<KSelection<T>> best;
  for (const index_t k : candidates) {
    opt.fill_level = k;
    SpcgResult<T> run = spcg_solve(a, b, opt);
    const bool better = [&] {
      if (!best) return true;
      const bool run_conv = run.solve.converged();
      const bool best_conv = best->baseline.solve.converged();
      if (run_conv != best_conv) return run_conv;
      if (run_conv)
        return run.solve.iterations < best->baseline.solve.iterations;
      return run.solve.final_residual_norm <
             best->baseline.solve.final_residual_norm;
    }();
    if (better) best = KSelection<T>{k, std::move(run)};
  }
  return std::move(*best);
}

template <class T>
KSelection<T> select_best_fill_level(const Csr<T>& a, const std::vector<T>& b,
                                     const SpcgOptions& opt,
                                     const std::vector<index_t>& candidates) {
  return select_best_fill_level(a, std::span<const T>(b), opt,
                                std::span<const index_t>(candidates));
}

}  // namespace spcg
