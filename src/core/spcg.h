// SPCG driver — the end-to-end pipeline of Figure 2:
//
//   A ──► wavefront-aware sparsification ──► Â ──► ILU(0)/ILU(K) ──► M={L,U}
//   (A, b, M) ──► PCG (Algorithm 1) ──► x
//
// Note the preconditioner is built from the *sparsified* matrix while PCG
// iterates on the *original* system A x = b, exactly as in the paper's
// overview. Setting SpcgOptions::sparsify_enabled=false gives the
// non-sparsified PCG baseline with the same plumbing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/sparsify.h"
#include "precond/ilu.h"
#include "precond/preconditioner.h"
#include "solver/pcg.h"
#include "support/timer.h"
#include "support/trace.h"

namespace spcg {

enum class PrecondKind { kIlu0, kIluK };

inline const char* to_string(PrecondKind k) {
  return k == PrecondKind::kIlu0 ? "ILU(0)" : "ILU(K)";
}

/// Configuration of a full SPCG (or baseline PCG) run.
struct SpcgOptions {
  bool sparsify_enabled = true;       // false -> plain PCG baseline
  SparsifyOptions sparsify;           // Algorithm 2 thresholds
  PrecondKind preconditioner = PrecondKind::kIlu0;
  index_t fill_level = 10;            // K for ILU(K)
  index_t max_row_fill = 0;           // safety cap for ILU(K) symbolic
  IluOptions ilu;                     // pivot handling
  TrsvExec executor = TrsvExec::kSerial;
  PcgOptions pcg;                     // tolerance / max iterations
};

/// Structural and timing instrumentation of one run; everything the
/// benchmark harness needs to model device time afterwards.
template <class T>
struct SpcgResult {
  SolveResult<T> solve;

  // Sparsification (empty optional for the baseline).
  std::optional<SparsifyDecision<T>> decision;

  // Preconditioner structure.
  IluResult<T> factorization;    // combined LU on Â (or A for baseline)
  index_t factor_nnz = 0;
  index_t wavefronts_factor = 0;   // level count of the factor's L pattern
  index_t matrix_wavefronts = 0;   // level count of the (possibly
                                   // sparsified) input pattern
  // Host wall-clock phases (seconds).
  double sparsify_seconds = 0.0;
  double factorization_seconds = 0.0;
  double solve_seconds = 0.0;

  [[nodiscard]] double end_to_end_seconds() const {
    return sparsify_seconds + factorization_seconds + solve_seconds;
  }
};

/// Everything spcg_solve computes before it sees a right-hand side: the
/// sparsification decision, the incomplete factors, their triangular split
/// and both level schedules. Building it once and solving many times is the
/// paper's amortization story; the runtime layer (src/runtime/) caches and
/// shares these across solves. The schedules here are the only ones built —
/// wavefronts_factor is read off the lower schedule instead of a second
/// inspector pass, and the preconditioner adopts them as-is.
template <class T>
struct SpcgSetup {
  std::optional<SparsifyDecision<T>> decision;  // empty for the baseline
  IluResult<T> factorization;      // combined LU on Â (or A for baseline)
  TriangularFactors<T> factors;    // split L/U of the factorization
  LevelSchedule l_schedule;        // level_schedule(factors.l, kLower)
  LevelSchedule u_schedule;        // level_schedule(factors.u, kUpper)
  index_t factor_nnz = 0;
  index_t wavefronts_factor = 0;   // == l_schedule.num_levels()
  index_t matrix_wavefronts = 0;
  double sparsify_seconds = 0.0;
  double factorization_seconds = 0.0;

  [[nodiscard]] double setup_seconds() const {
    return sparsify_seconds + factorization_seconds;
  }
};

/// Phases 1–2 of the pipeline (sparsify + factorize + inspect), reusable
/// across any number of right-hand sides.
template <class T>
SpcgSetup<T> spcg_setup(const Csr<T>& a, const SpcgOptions& opt = {}) {
  SPCG_CHECK(a.rows == a.cols);
  SpcgSetup<T> s;

  // Phase 1: wavefront-aware sparsification (Algorithm 2).
  const Csr<T>* precond_input = &a;
  WallTimer timer;
  {
    Span span("sparsify", "setup");
    span.arg("enabled", opt.sparsify_enabled);
    if (opt.sparsify_enabled) {
      s.decision = wavefront_aware_sparsify(a, opt.sparsify);
      precond_input = &s.decision->chosen.a_hat;
    }
  }
  s.sparsify_seconds = timer.seconds();
  s.matrix_wavefronts = opt.sparsify_enabled ? s.decision->wavefronts_chosen
                                             : count_wavefronts(a);

  // Phase 2: incomplete factorization of the (sparsified) matrix, split into
  // triangular factors with their level schedules built exactly once.
  timer.reset();
  {
    Span span("factorize", "setup");
    span.arg("kind", to_string(opt.preconditioner));
    s.factorization =
        opt.preconditioner == PrecondKind::kIlu0
            ? ilu0(*precond_input, opt.ilu)
            : iluk(*precond_input, opt.fill_level, opt.ilu, opt.max_row_fill);
    s.factor_nnz = s.factorization.lu.nnz();
    span.arg("factor_nnz", static_cast<std::int64_t>(s.factor_nnz));
  }
  {
    Span span("inspect", "setup");
    s.factors = split_lu(s.factorization);
    s.l_schedule = level_schedule(s.factors.l, Triangle::kLower);
    s.u_schedule = level_schedule(s.factors.u, Triangle::kUpper);
    s.wavefronts_factor = s.l_schedule.num_levels();
    span.arg("levels", static_cast<std::int64_t>(s.wavefronts_factor));
  }
  s.factorization_seconds = timer.seconds();
  return s;
}

/// Run the full SPCG pipeline on A x = b.
template <class T>
SpcgResult<T> spcg_solve(const Csr<T>& a, std::span<const T> b,
                         const SpcgOptions& opt = {}) {
  SpcgSetup<T> setup = spcg_setup(a, opt);
  SpcgResult<T> res;
  res.decision = std::move(setup.decision);
  res.factorization = std::move(setup.factorization);
  res.factor_nnz = setup.factor_nnz;
  res.wavefronts_factor = setup.wavefronts_factor;
  res.matrix_wavefronts = setup.matrix_wavefronts;
  res.sparsify_seconds = setup.sparsify_seconds;
  res.factorization_seconds = setup.factorization_seconds;

  // Phase 3: PCG on the ORIGINAL system with the sparsified preconditioner,
  // adopting the schedules the setup already built.
  WallTimer timer;
  IluPreconditioner<T> m(std::move(setup.factors),
                         std::move(setup.l_schedule),
                         std::move(setup.u_schedule), opt.executor);
  res.solve = pcg(a, b, m, opt.pcg);
  res.solve_seconds = timer.seconds();
  return res;
}

/// Vector-argument convenience.
template <class T>
SpcgResult<T> spcg_solve(const Csr<T>& a, const std::vector<T>& b,
                         const SpcgOptions& opt = {}) {
  return spcg_solve(a, std::span<const T>(b), opt);
}

/// One candidate K's measured run inside a best-K selection: the facts the
/// selection used to rank it, kept so callers (and bench/test telemetry) can
/// see *why* the winner won instead of only *that* it won.
struct KCandidateTrial {
  index_t k = 0;
  bool converged = false;
  std::int32_t iterations = 0;
  double final_residual_norm = 0.0;
  double setup_seconds = 0.0;   // sparsify + factorize + inspect
  double solve_seconds = 0.0;
  bool setup_cache_hit = false;
};

/// Best-K selection for the baseline PCG-ILU(K) (paper §3.3): the winner of
/// one run per candidate K. Produced by tune_fill_level (autotune/) and its
/// compatibility wrapper select_best_fill_level in runtime/session.h, which
/// route every candidate through a SolverSession so the matrix fingerprint
/// and cached setups are shared across candidates.
template <class T>
struct KSelection {
  index_t k = 0;
  SpcgResult<T> baseline;  // the run that won
  std::vector<KCandidateTrial> trials;  // every candidate, in probe order
};

}  // namespace spcg
