// Human-readable reporting of SPCG runs (used by examples and benches).
#pragma once

#include <string>

#include "core/spcg.h"

namespace spcg {

/// Flattened, type-erased view of one run for printing.
struct RunSummary {
  std::string label;
  std::string preconditioner;  // "ILU(0)" / "ILU(K)"
  bool sparsified = false;
  double ratio_percent = 0.0;      // chosen ratio (0 when not sparsified)
  std::string outcome;             // Algorithm 2 outcome
  long matrix_nnz = 0;
  long factor_nnz = 0;
  long wavefronts_matrix = 0;
  long wavefronts_factor = 0;
  double wavefront_reduction_percent = 0.0;
  long iterations = 0;
  bool converged = false;
  double final_residual = 0.0;
  double sparsify_seconds = 0.0;
  double factorization_seconds = 0.0;
  double solve_seconds = 0.0;
};

/// Render a run summary as an aligned block of text.
std::string render_run_summary(const RunSummary& s);

/// Build a RunSummary from a typed result.
template <class T>
RunSummary summarize(const std::string& label, const Csr<T>& a,
                     const SpcgResult<T>& r, PrecondKind kind) {
  RunSummary s;
  s.label = label;
  s.preconditioner = to_string(kind);
  s.sparsified = r.decision.has_value();
  if (r.decision) {
    s.ratio_percent = r.decision->chosen.ratio_percent;
    s.outcome = to_string(r.decision->outcome);
    s.wavefront_reduction_percent = r.decision->reduction_percent;
  }
  s.matrix_nnz = a.nnz();
  s.factor_nnz = r.factor_nnz;
  s.wavefronts_matrix = r.matrix_wavefronts;
  s.wavefronts_factor = r.wavefronts_factor;
  s.iterations = r.solve.iterations;
  s.converged = r.solve.converged();
  s.final_residual = r.solve.final_residual_norm;
  s.sparsify_seconds = r.sparsify_seconds;
  s.factorization_seconds = r.factorization_seconds;
  s.solve_seconds = r.solve_seconds;
  return s;
}

}  // namespace spcg
