// The synthetic evaluation dataset: 107 deterministic SPD matrices across
// the paper's 17 application categories (stand-in for the SuiteSparse SPD
// subset of §4.1 — see DESIGN.md §3 for the substitution rationale).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "sparse/csr.h"

namespace spcg {

struct MatrixSpec {
  index_t id = 0;
  std::string name;
  std::string category;
};

struct GeneratedMatrix {
  MatrixSpec spec;
  Csr<double> a;
  std::vector<double> b;  // deterministic RHS with ||b|| = 1
};

/// All 107 specs, in id order.
const std::vector<MatrixSpec>& suite_specs();

/// Number of matrices in the suite (107).
index_t suite_size();

/// Distinct category names, in first-appearance order (17).
std::vector<std::string> suite_categories();

/// Generate matrix `id` (deterministic; same bits on every call).
GeneratedMatrix generate_suite_matrix(index_t id);

/// Cheap checksum over a few suite matrices; changes whenever the generator
/// definitions change. Used to invalidate cached experiment results.
std::uint64_t suite_checksum();

}  // namespace spcg
