// Synthetic SPD matrix generators.
//
// Stand-in for the SuiteSparse SPD subset used by the paper (no network
// access in this environment — DESIGN.md §3). Each generator produces a
// symmetric positive-definite CSR matrix with a fully stored diagonal; SPD
// is obtained either by construction (FEM/graph Laplacian + positive shift,
// normal equations + ridge) or by enforcing strict diagonal dominance.
//
// The generators deliberately span the regimes the paper studies:
//   * heavy-tailed off-diagonal magnitudes (circuit, materials, economics)
//     where many tiny entries can be dropped harmlessly,
//   * uniform-magnitude stencils (2D/3D Poisson) where every entry matters,
//   * long dependence chains carried by small entries (counter-examples)
//     where sparsification collapses the wavefront count.
#pragma once

#include <cstdint>

#include "sparse/csr.h"
#include "support/rng.h"

namespace spcg {

/// 5-point Laplacian on an nx-by-ny grid (Dirichlet), n = nx*ny.
Csr<double> gen_poisson2d(index_t nx, index_t ny);

/// 7-point Laplacian on an nx*ny*nz grid (Dirichlet).
Csr<double> gen_poisson3d(index_t nx, index_t ny, index_t nz);

/// Anisotropic 2D Laplacian: -eps*u_xx - u_yy, 5-point. With seed != 0 the
/// anisotropy varies smoothly across the domain (boundary-layer regions),
/// ranging between ~eps^0.25 and ~eps^1.75.
Csr<double> gen_anisotropic2d(index_t nx, index_t ny, double eps,
                              std::uint64_t seed = 0);

/// Variable-coefficient 2D diffusion with a lognormal coefficient field of
/// log-space sigma `contrast`; edge weights are harmonic means.
Csr<double> gen_varcoef2d(index_t nx, index_t ny, double contrast,
                          std::uint64_t seed);

/// Q1 plane-strain elasticity stiffness on an nx-by-ny element grid with the
/// left edge clamped (2 dofs/node on the free nodes), assembled with 2x2
/// Gauss quadrature. Young's modulus `young`, Poisson ratio `nu`. With
/// contrast > 0 the plate is a two-phase composite whose soft inclusions are
/// `contrast` decades softer (regions from a seeded smooth field).
Csr<double> gen_elasticity2d(index_t nx, index_t ny, double young, double nu,
                             std::uint64_t seed = 0, double contrast = 0.0);

/// Weighted grid-graph Laplacian plus diagonal shift. Weights are lognormal
/// with log-sigma `weight_sigma` (heavy-tailed for sigma >~ 1.5).
Csr<double> gen_grid_laplacian(index_t nx, index_t ny, double weight_sigma,
                               double shift, std::uint64_t seed);

/// Random geometric graph Laplacian: n points in the unit square (dim=2) or
/// cube (dim=3), edges within `radius`, weight 1/distance, plus shift.
Csr<double> gen_random_geometric(index_t n, int dim, double radius,
                                 double shift, std::uint64_t seed);

/// Triangulated-grid mesh Laplacian with jittered vertices and positive
/// cotangent-like weights (computer graphics / vision).
Csr<double> gen_mesh_laplacian(index_t nx, index_t ny, double jitter,
                               double shift, std::uint64_t seed);

/// Leontief-style economic matrix A = I - alpha * sym(W), W sparse
/// row-substochastic with `row_nnz` heavy-tailed coefficients per row.
/// SPD for alpha < 1.
Csr<double> gen_economic(index_t n, index_t row_nnz, double alpha,
                         std::uint64_t seed);

/// Normal equations A = G^T G + delta*I with a random sparse G of size
/// (rows x n), `row_nnz` entries per row of G.
Csr<double> gen_normal_equations(index_t n, index_t rows, index_t row_nnz,
                                 double delta, std::uint64_t seed);

/// Banded SPD matrix of half-bandwidth `band`; off-diagonal magnitude decays
/// as exp(-decay*d) and oscillates in sign when `oscillate` (acoustics /
/// model reduction). Diagonal enforces strict dominance.
Csr<double> gen_banded(index_t n, index_t band, double decay, bool oscillate,
                       std::uint64_t seed);

/// 2D kernel operator on an nx-by-ny grid: couplings to all neighbors within
/// euclidean `radius`. When `oscillate` (acoustics / Helmholtz-like), the
/// magnitude peaks at ~0.7*radius with sign cos(1.9*r) and the depth-carrying
/// distance-1 couplings are among the smallest; otherwise (model reduction)
/// magnitude decays monotonically from the diagonal with rate `decay`.
/// Unlike a 1D band, the 2D pattern has a large graph diameter, so ILU(K)
/// stays genuinely incomplete for practical K.
Csr<double> gen_kernel2d(index_t nx, index_t ny, double radius, double decay,
                         bool oscillate, std::uint64_t seed);

/// AR(1)-precision-like banded SPD matrix (statistical/mathematical):
/// tridiagonal AR(1) precision plus `extra_band` weak long-range bands.
Csr<double> gen_ar1_precision(index_t n, double rho, index_t extra_band,
                              std::uint64_t seed);

/// 3D lattice with Pareto-distributed bond conductivities (materials).
Csr<double> gen_lattice3d(index_t nx, index_t ny, index_t nz, double tail,
                          std::uint64_t seed);

/// Counter-example chain: a tridiagonal coupling of magnitude `chain_weight`
/// (forcing n wavefronts) plus hub couplings of magnitude ~`skip_weight`
/// attaching every node to one of ~n/(4*stride) hub rows (a depth-1
/// dependence graph). With a tiny chain_weight the wavefront count is
/// carried entirely by near-zero entries — the best case for sparsification;
/// with chain_weight ~ skip_weight, the worst case.
Csr<double> gen_chain_with_skips(index_t n, index_t stride,
                                 double chain_weight, double skip_weight,
                                 std::uint64_t seed);

/// Deterministic right-hand side with ||b||_2 = 1: b = A * x_true for a
/// seeded random x_true (entries uniform in [-1, 1]), normalized.
std::vector<double> make_rhs(const Csr<double>& a, std::uint64_t seed);

}  // namespace spcg
