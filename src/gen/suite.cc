#include "gen/suite.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "support/error.h"

namespace spcg {
namespace {

struct SuiteEntry {
  const char* name;
  const char* category;
  std::function<Csr<double>()> make;
};

/// The dataset table. Seeds are fixed per matrix so every build reproduces
/// identical bits. Sizes are chosen so the heaviest experiment (ILU(K) with
/// K up to 40 across the whole suite) completes in minutes on one core.
const std::vector<SuiteEntry>& table() {
  static const std::vector<SuiteEntry> t = {
      // --- 2D/3D: uniform Poisson stencils --------------------------------
      {"grid2d_32", "2D/3D", [] { return gen_poisson2d(32, 32); }},
      {"grid2d_48", "2D/3D", [] { return gen_poisson2d(48, 48); }},
      {"grid2d_64", "2D/3D", [] { return gen_poisson2d(64, 64); }},
      {"grid2d_90", "2D/3D", [] { return gen_poisson2d(90, 90); }},
      {"grid3d_10", "2D/3D", [] { return gen_poisson3d(10, 10, 10); }},
      {"grid3d_14", "2D/3D", [] { return gen_poisson3d(14, 14, 14); }},
      {"grid3d_18", "2D/3D", [] { return gen_poisson3d(18, 18, 18); }},
      // --- acoustics: oscillatory banded operators ------------------------
      {"ac_band_2000_8", "acoustics",
       [] { return gen_kernel2d(46, 46, 3.2, 0.9, true, 101); }},
      {"ac_band_3000_12", "acoustics",
       [] { return gen_kernel2d(56, 54, 3.0, 0.8, true, 102); }},
      {"ac_band_4000_16", "acoustics",
       [] { return gen_kernel2d(64, 64, 3.5, 0.7, true, 103); }},
      {"ac_band_2500_6", "acoustics",
       [] { return gen_kernel2d(50, 50, 2.5, 1.0, true, 104); }},
      {"ac_band_3500_10", "acoustics",
       [] { return gen_kernel2d(60, 58, 3.0, 0.9, true, 105); }},
      {"ac_band_1500_20", "acoustics",
       [] { return gen_kernel2d(40, 40, 4.0, 0.6, true, 106); }},
      // --- circuit simulation: heavy-tailed conductance grids -------------
      {"ckt_40x40", "circuit simulation",
       [] { return gen_grid_laplacian(40, 40, 2.0, 0.5, 201); }},
      {"ckt_56x56", "circuit simulation",
       [] { return gen_grid_laplacian(56, 56, 2.0, 0.5, 202); }},
      {"ckt_70x70", "circuit simulation",
       [] { return gen_grid_laplacian(70, 70, 2.2, 0.4, 203); }},
      {"ckt_88x88", "circuit simulation",
       [] { return gen_grid_laplacian(88, 88, 2.0, 0.5, 204); }},
      {"ckt_120x20", "circuit simulation",
       [] { return gen_grid_laplacian(120, 20, 2.4, 0.3, 205); }},
      {"ckt_32x32_hot", "circuit simulation",
       [] { return gen_grid_laplacian(32, 32, 2.8, 0.3, 206); }},
      {"ckt_64x64_mild", "circuit simulation",
       [] { return gen_grid_laplacian(64, 64, 1.8, 0.6, 207); }},
      // --- computational fluid dynamics: anisotropic operators ------------
      {"cfd_aniso_48_e01", "computational fluid dynamics",
       [] { return gen_anisotropic2d(48, 48, 0.01, 251); }},
      {"cfd_aniso_64_e01", "computational fluid dynamics",
       [] { return gen_anisotropic2d(64, 64, 0.01, 252); }},
      {"cfd_aniso_64_e1", "computational fluid dynamics",
       [] { return gen_anisotropic2d(64, 64, 0.1, 253); }},
      {"cfd_aniso_80_e05", "computational fluid dynamics",
       [] { return gen_anisotropic2d(80, 80, 0.05, 254); }},
      {"cfd_aniso_56_e001", "computational fluid dynamics",
       [] { return gen_anisotropic2d(56, 56, 0.001, 255); }},
      {"cfd_aniso_72_e02", "computational fluid dynamics",
       [] { return gen_anisotropic2d(72, 72, 0.02, 256); }},
      // --- computer graphics/vision: irregular mesh Laplacians ------------
      {"mesh_40x40", "computer graphics/vision",
       [] { return gen_mesh_laplacian(40, 40, 0.30, 0.05, 301); }},
      {"mesh_56x56", "computer graphics/vision",
       [] { return gen_mesh_laplacian(56, 56, 0.30, 0.05, 302); }},
      {"mesh_64x64", "computer graphics/vision",
       [] { return gen_mesh_laplacian(64, 64, 0.45, 0.05, 303); }},
      {"mesh_72x72", "computer graphics/vision",
       [] { return gen_mesh_laplacian(72, 72, 0.20, 0.04, 304); }},
      {"mesh_48x48", "computer graphics/vision",
       [] { return gen_mesh_laplacian(48, 48, 0.60, 0.06, 305); }},
      {"mesh_80x80", "computer graphics/vision",
       [] { return gen_mesh_laplacian(80, 80, 0.35, 0.05, 306); }},
      // --- counter-example: dependence chains of near-zero entries --------
      {"ce_weakchain_2000", "counter-example",
       [] { return gen_chain_with_skips(2000, 4, 1e-4, 1.0, 401); }},
      {"ce_weakchain_4000", "counter-example",
       [] { return gen_chain_with_skips(4000, 4, 1e-4, 1.0, 402); }},
      {"ce_strongchain_2000", "counter-example",
       [] { return gen_chain_with_skips(2000, 3, 1.0, 0.9, 403); }},
      {"ce_mixed_3000", "counter-example",
       [] { return gen_chain_with_skips(3000, 8, 0.01, 0.5, 404); }},
      {"ce_weakchain_1500", "counter-example",
       [] { return gen_chain_with_skips(1500, 2, 1e-4, 1.0, 405); }},
      // --- duplicate model reduction: smoothly decaying bands -------------
      {"dmr_band_2000_24", "duplicate model reduction",
       [] { return gen_kernel2d(46, 44, 3.0, 0.8, false, 501); }},
      {"dmr_band_3000_16", "duplicate model reduction",
       [] { return gen_kernel2d(55, 55, 3.2, 0.7, false, 502); }},
      {"dmr_band_4000_12", "duplicate model reduction",
       [] { return gen_kernel2d(63, 64, 3.6, 0.6, false, 503); }},
      {"dmr_band_2500_32", "duplicate model reduction",
       [] { return gen_kernel2d(50, 50, 2.8, 0.9, false, 504); }},
      {"dmr_band_1600_40", "duplicate model reduction",
       [] { return gen_kernel2d(40, 40, 2.4, 1.0, false, 505); }},
      {"dmr_band_3600_8", "duplicate model reduction",
       [] { return gen_kernel2d(60, 60, 4.0, 0.5, false, 506); }},
      // --- duplicate optimization: ridge normal equations -----------------
      {"dopt_ne_1500", "duplicate optimization",
       [] { return gen_normal_equations(1500, 3000, 5, 2.0, 601); }},
      {"dopt_ne_2000", "duplicate optimization",
       [] { return gen_normal_equations(2000, 4000, 5, 2.0, 602); }},
      {"dopt_ne_2500", "duplicate optimization",
       [] { return gen_normal_equations(2500, 5000, 4, 1.5, 603); }},
      {"dopt_ne_3000", "duplicate optimization",
       [] { return gen_normal_equations(3000, 4500, 4, 1.5, 604); }},
      {"dopt_ne_1200", "duplicate optimization",
       [] { return gen_normal_equations(1200, 3600, 6, 2.5, 605); }},
      {"dopt_ne_1800", "duplicate optimization",
       [] { return gen_normal_equations(1800, 2700, 5, 1.8, 606); }},
      // --- economic: Leontief input-output systems -------------------------
      {"econ_1500_8", "economic",
       [] { return gen_economic(1500, 8, 0.9, 701); }},
      {"econ_2000_10", "economic",
       [] { return gen_economic(2000, 10, 0.9, 702); }},
      {"econ_3000_6", "economic",
       [] { return gen_economic(3000, 6, 0.85, 703); }},
      {"econ_2500_12", "economic",
       [] { return gen_economic(2500, 12, 0.92, 704); }},
      {"econ_1200_16", "economic",
       [] { return gen_economic(1200, 16, 0.88, 705); }},
      {"econ_4000_5", "economic",
       [] { return gen_economic(4000, 5, 0.8, 706); }},
      // --- electromagnetics: high-contrast coefficient jumps --------------
      {"em_48_c30", "electromagnetics",
       [] { return gen_varcoef2d(48, 48, 3.0, 801); }},
      {"em_64_c25", "electromagnetics",
       [] { return gen_varcoef2d(64, 64, 2.5, 802); }},
      {"em_56_c35", "electromagnetics",
       [] { return gen_varcoef2d(56, 56, 3.5, 803); }},
      {"em_72_c28", "electromagnetics",
       [] { return gen_varcoef2d(72, 72, 2.8, 804); }},
      {"em_40_c40", "electromagnetics",
       [] { return gen_varcoef2d(40, 40, 4.0, 805); }},
      {"em_80_c22", "electromagnetics",
       [] { return gen_varcoef2d(80, 80, 2.2, 806); }},
      // --- materials: lattices with heavy-tailed bond strengths -----------
      {"mat_lat_10", "materials",
       [] { return gen_lattice3d(10, 10, 10, 1.0, 901); }},
      {"mat_lat_12", "materials",
       [] { return gen_lattice3d(12, 12, 12, 1.2, 902); }},
      {"mat_lat_14", "materials",
       [] { return gen_lattice3d(14, 14, 14, 0.9, 903); }},
      {"mat_lat_8x8x16", "materials",
       [] { return gen_lattice3d(8, 8, 16, 1.1, 904); }},
      {"mat_lat_16x16x8", "materials",
       [] { return gen_lattice3d(16, 16, 8, 1.0, 905); }},
      {"mat_lat_11", "materials",
       [] { return gen_lattice3d(11, 11, 11, 1.5, 906); }},
      {"mat_lat_13", "materials",
       [] { return gen_lattice3d(13, 13, 13, 0.8, 907); }},
      // --- optimization: larger/denser normal equations -------------------
      {"opt_ne_2200_7", "optimization",
       [] { return gen_normal_equations(2200, 4400, 7, 3.0, 1001); }},
      {"opt_ne_2600_6", "optimization",
       [] { return gen_normal_equations(2600, 5200, 6, 2.5, 1002); }},
      {"opt_ne_1800_8", "optimization",
       [] { return gen_normal_equations(1800, 2700, 8, 3.5, 1003); }},
      {"opt_ne_1400_5", "optimization",
       [] { return gen_normal_equations(1400, 4200, 5, 2.0, 1004); }},
      {"opt_ne_2400_6", "optimization",
       [] { return gen_normal_equations(2400, 3600, 6, 2.2, 1005); }},
      {"opt_ne_3000_7", "optimization",
       [] { return gen_normal_equations(3000, 4500, 7, 2.8, 1006); }},
      // --- power network: grid Laplacians with long-range ties ------------
      {"pwr_48x48", "power network",
       [] { return gen_grid_laplacian(48, 48, 1.5, 0.2, 1101); }},
      {"pwr_60x60", "power network",
       [] { return gen_grid_laplacian(60, 60, 1.5, 0.2, 1102); }},
      {"pwr_72x72", "power network",
       [] { return gen_grid_laplacian(72, 72, 1.6, 0.15, 1103); }},
      {"pwr_100x24", "power network",
       [] { return gen_grid_laplacian(100, 24, 1.4, 0.25, 1104); }},
      {"pwr_36x36", "power network",
       [] { return gen_grid_laplacian(36, 36, 1.7, 0.2, 1105); }},
      {"pwr_84x84", "power network",
       [] { return gen_grid_laplacian(84, 84, 1.5, 0.18, 1106); }},
      // --- random 2D/3D: geometric graphs ---------------------------------
      {"rnd_geo2d_1500", "random 2D/3D",
       [] { return gen_random_geometric(1500, 2, 0.05, 0.3, 1201); }},
      {"rnd_geo2d_2500", "random 2D/3D",
       [] { return gen_random_geometric(2500, 2, 0.04, 0.3, 1202); }},
      {"rnd_geo2d_4000", "random 2D/3D",
       [] { return gen_random_geometric(4000, 2, 0.03, 0.25, 1203); }},
      {"rnd_geo3d_1500", "random 2D/3D",
       [] { return gen_random_geometric(1500, 3, 0.12, 0.3, 1204); }},
      {"rnd_geo3d_2500", "random 2D/3D",
       [] { return gen_random_geometric(2500, 3, 0.10, 0.3, 1205); }},
      {"rnd_geo3d_4000", "random 2D/3D",
       [] { return gen_random_geometric(4000, 3, 0.085, 0.25, 1206); }},
      {"rnd_geo2d_6000", "random 2D/3D",
       [] { return gen_random_geometric(6000, 2, 0.025, 0.25, 1207); }},
      // --- statistical/mathematical: precision matrices -------------------
      {"stat_ar1_2000", "statistical/mathematical",
       [] { return gen_ar1_precision(2000, 0.8, 12, 1301); }},
      {"stat_ar1_3000", "statistical/mathematical",
       [] { return gen_ar1_precision(3000, 0.9, 24, 1302); }},
      {"stat_ar1_4000", "statistical/mathematical",
       [] { return gen_ar1_precision(4000, 0.7, 7, 1303); }},
      {"stat_ar1_2500", "statistical/mathematical",
       [] { return gen_ar1_precision(2500, 0.95, 30, 1304); }},
      {"stat_ne_1600", "statistical/mathematical",
       [] { return gen_normal_equations(1600, 3200, 4, 1.2, 1305); }},
      {"stat_ar1_5000", "statistical/mathematical",
       [] { return gen_ar1_precision(5000, 0.85, 50, 1306); }},
      // --- structural: plane-strain elasticity -----------------------------
      {"str_elas_24x24", "structural",
       [] { return gen_elasticity2d(24, 24, 1.0, 0.3, 1501, 2.5); }},
      {"str_elas_32x32", "structural",
       [] { return gen_elasticity2d(32, 32, 1.0, 0.3, 1502, 3.0); }},
      {"str_elas_40x40", "structural",
       [] { return gen_elasticity2d(40, 40, 1.0, 0.3, 1503, 2.0); }},
      {"str_elas_48x48", "structural",
       [] { return gen_elasticity2d(48, 48, 1.0, 0.25, 1504, 2.8); }},
      {"str_elas_56x28", "structural",
       [] { return gen_elasticity2d(56, 28, 1.0, 0.35, 1505, 2.2); }},
      {"str_elas_36x36_soft", "structural",
       [] { return gen_elasticity2d(36, 36, 10.0, 0.38, 1507, 3.5); }},
      {"str_elas_28x56", "structural",
       [] { return gen_elasticity2d(28, 56, 1.0, 0.3, 1506, 3.2); }},
      // --- thermal: moderate-contrast diffusion ----------------------------
      {"th_var_48_c10", "thermal",
       [] { return gen_varcoef2d(48, 48, 2.0, 1401); }},
      {"th_var_64_c10", "thermal",
       [] { return gen_varcoef2d(64, 64, 2.0, 1402); }},
      {"th_var_80_c12", "thermal",
       [] { return gen_varcoef2d(80, 80, 2.2, 1403); }},
      {"th_var_56_c15", "thermal",
       [] { return gen_varcoef2d(56, 56, 2.5, 1404); }},
      {"th_var_72_c08", "thermal",
       [] { return gen_varcoef2d(72, 72, 1.8, 1405); }},
      {"th_var_40_c20", "thermal",
       [] { return gen_varcoef2d(40, 40, 3.0, 1406); }},
      {"th_var_90_c10", "thermal",
       [] { return gen_varcoef2d(90, 90, 2.0, 1407); }},
  };
  return t;
}

}  // namespace

const std::vector<MatrixSpec>& suite_specs() {
  static const std::vector<MatrixSpec> specs = [] {
    std::vector<MatrixSpec> s;
    const auto& t = table();
    s.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      s.push_back({static_cast<index_t>(i), t[i].name, t[i].category});
    }
    return s;
  }();
  return specs;
}

index_t suite_size() { return static_cast<index_t>(table().size()); }

std::vector<std::string> suite_categories() {
  std::vector<std::string> cats;
  for (const auto& spec : suite_specs()) {
    if (std::find(cats.begin(), cats.end(), spec.category) == cats.end())
      cats.push_back(spec.category);
  }
  return cats;
}

GeneratedMatrix generate_suite_matrix(index_t id) {
  SPCG_CHECK_MSG(id >= 0 && id < suite_size(), "bad suite id " << id);
  const auto& entry = table()[static_cast<std::size_t>(id)];
  GeneratedMatrix g;
  g.spec = suite_specs()[static_cast<std::size_t>(id)];
  g.a = entry.make();
  g.a.validate();
  g.b = make_rhs(g.a, 0x5bc6u + static_cast<std::uint64_t>(id));
  return g;
}

std::uint64_t suite_checksum() {
  static const std::uint64_t sum = [] {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over sampled bits
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    for (const index_t id : {0, 9, 33, 61, 90}) {
      const GeneratedMatrix g = generate_suite_matrix(id);
      mix(static_cast<std::uint64_t>(g.a.nnz()));
      for (std::size_t p = 0; p < g.a.values.size(); p += 97) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(double));
        std::memcpy(&bits, &g.a.values[p], sizeof(bits));
        mix(bits);
      }
    }
    return h;
  }();
  return sum;
}

}  // namespace spcg
