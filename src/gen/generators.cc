#include "gen/generators.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <vector>

#include "sparse/norms.h"
#include "sparse/ops.h"
#include "support/error.h"

namespace spcg {
namespace {

using T3 = Triplet<double>;

/// Symmetrize triplets: for every (i,j,v) with i != j also emit (j,i,v).
/// Generators below only emit one side of each coupling.
void mirror_offdiag(std::vector<T3>& ts) {
  const std::size_t n = ts.size();
  for (std::size_t k = 0; k < n; ++k) {
    if (ts[k].row != ts[k].col)
      ts.push_back({ts[k].col, ts[k].row, ts[k].value});
  }
}

/// Replace each diagonal with (1 + margin) * sum of |off-diagonals| in its
/// row plus `shift`, guaranteeing strict diagonal dominance (hence SPD for a
/// symmetric matrix).
Csr<double> dominant_from_triplets(index_t n, std::vector<T3> ts,
                                   double margin, double shift) {
  std::vector<double> row_abs(static_cast<std::size_t>(n), 0.0);
  for (const T3& t : ts) {
    SPCG_CHECK(t.row != t.col);  // diagonals are added here, not by callers
    row_abs[static_cast<std::size_t>(t.row)] += std::abs(t.value);
  }
  for (index_t i = 0; i < n; ++i) {
    ts.push_back(
        {i, i, (1.0 + margin) * row_abs[static_cast<std::size_t>(i)] + shift});
  }
  return csr_from_triplets(n, n, std::move(ts));
}

/// Smooth random field on the unit square/cube: a sum of a few random
/// low-frequency cosine modes. Values are O(1) and spatially correlated with
/// patch sizes of a fraction of the domain — the mechanism that gives real
/// matrices their *regionally* weak couplings (coefficient jumps, grain
/// boundaries, boundary layers). Spatial correlation is what lets magnitude
/// sparsification cut dependence chains: iid weak entries can be routed
/// around, weak regions cannot.
class SmoothField {
 public:
  SmoothField(Rng& rng, int modes = 5) {
    constexpr double kTwoPi = 6.283185307179586;
    for (int m = 0; m < modes; ++m) {
      Mode mode;
      // Wavelengths between ~1/1 and ~1/4 of the domain.
      mode.kx = kTwoPi * (1.0 + 3.0 * rng.uniform());
      mode.ky = kTwoPi * (1.0 + 3.0 * rng.uniform());
      mode.kz = kTwoPi * (1.0 + 3.0 * rng.uniform());
      mode.phase = kTwoPi * rng.uniform();
      mode.amp = 0.5 + rng.uniform();
      modes_.push_back(mode);
      norm_ += mode.amp;
    }
  }

  /// Field value in roughly [-1, 1].
  [[nodiscard]] double at(double x, double y, double z = 0.0) const {
    double acc = 0.0;
    for (const Mode& m : modes_) {
      acc += m.amp * std::cos(m.kx * x + m.ky * y + m.kz * z + m.phase);
    }
    return acc / norm_;
  }

 private:
  struct Mode {
    double kx, ky, kz, phase, amp;
  };
  std::vector<Mode> modes_;
  double norm_ = 0.0;
};

}  // namespace

Csr<double> gen_poisson2d(index_t nx, index_t ny) {
  SPCG_CHECK(nx > 0 && ny > 0);
  const index_t n = checked_dims(nx, ny);
  std::vector<T3> ts;
  ts.reserve(static_cast<std::size_t>(n) * 5);
  auto id = [&](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = id(x, y);
      ts.push_back({i, i, 4.0});
      if (x > 0) ts.push_back({i, id(x - 1, y), -1.0});
      if (x + 1 < nx) ts.push_back({i, id(x + 1, y), -1.0});
      if (y > 0) ts.push_back({i, id(x, y - 1), -1.0});
      if (y + 1 < ny) ts.push_back({i, id(x, y + 1), -1.0});
    }
  }
  return csr_from_triplets(n, n, std::move(ts));
}

Csr<double> gen_poisson3d(index_t nx, index_t ny, index_t nz) {
  SPCG_CHECK(nx > 0 && ny > 0 && nz > 0);
  const index_t n = checked_dims(nx, ny, nz);
  std::vector<T3> ts;
  ts.reserve(static_cast<std::size_t>(n) * 7);
  auto id = [&](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t i = id(x, y, z);
        ts.push_back({i, i, 6.0});
        if (x > 0) ts.push_back({i, id(x - 1, y, z), -1.0});
        if (x + 1 < nx) ts.push_back({i, id(x + 1, y, z), -1.0});
        if (y > 0) ts.push_back({i, id(x, y - 1, z), -1.0});
        if (y + 1 < ny) ts.push_back({i, id(x, y + 1, z), -1.0});
        if (z > 0) ts.push_back({i, id(x, y, z - 1), -1.0});
        if (z + 1 < nz) ts.push_back({i, id(x, y, z + 1), -1.0});
      }
    }
  }
  return csr_from_triplets(n, n, std::move(ts));
}

Csr<double> gen_anisotropic2d(index_t nx, index_t ny, double eps,
                              std::uint64_t seed) {
  SPCG_CHECK(nx > 0 && ny > 0 && eps > 0.0);
  const index_t n = checked_dims(nx, ny);
  std::vector<T3> ts;
  auto id = [&](index_t x, index_t y) { return y * nx + x; };
  // With seed == 0: the classic uniform operator -eps*u_xx - u_yy.
  // With seed != 0: a stretched-mesh/boundary-layer discretization where the
  // *vertical* coupling weakens to eps inside smooth horizontal bands (flow
  // aligned with x there). A weak band spans the whole width, so the weak
  // vertical couplings carry the dependence depth across it.
  Rng rng(seed);
  std::optional<SmoothField> field;
  if (seed != 0) field.emplace(rng);
  auto eps_y = [&](index_t y) {
    if (!field) return 1.0;
    const double t =
        0.5 * (1.0 + field->at(0.0, static_cast<double>(y) / ny));
    return std::pow(eps, 2.5 * std::max(0.0, t - 0.45));  // 1 .. eps^~1.4
  };
  auto eps_x = [&](index_t) { return field ? 1.0 : eps; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = id(x, y);
      const double ex = eps_x(x);
      const double ey_down = y > 0 ? eps_y(y) : 0.0;
      const double ey_up = y + 1 < ny ? eps_y(y + 1) : 0.0;
      const double diag = (x > 0 ? ex : 0.0) + (x + 1 < nx ? ex : 0.0) +
                          ey_down + ey_up;
      ts.push_back({i, i, diag + 0.05});
      if (x > 0) ts.push_back({i, id(x - 1, y), -ex});
      if (x + 1 < nx) ts.push_back({i, id(x + 1, y), -ex});
      if (y > 0) ts.push_back({i, id(x, y - 1), -ey_down});
      if (y + 1 < ny) ts.push_back({i, id(x, y + 1), -ey_up});
    }
  }
  return csr_from_triplets(n, n, std::move(ts));
}

Csr<double> gen_varcoef2d(index_t nx, index_t ny, double contrast,
                          std::uint64_t seed) {
  SPCG_CHECK(nx > 0 && ny > 0);
  Rng rng(seed);
  const index_t n = checked_dims(nx, ny);
  // Cell-centered two-phase coefficient field: a smooth random field,
  // saturated through tanh, yields contiguous high- and low-conductivity
  // phases separated by `contrast` decades (layered/composite media). The
  // bimodal distribution is what makes the bottom decile of couplings
  // orders of magnitude below the rest — dropping it barely perturbs the
  // preconditioner. Mild iid noise keeps magnitudes distinct.
  const SmoothField field(rng);
  constexpr double kLn10 = 2.302585092994046;
  std::vector<double> coef(static_cast<std::size_t>(n));
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const double smooth = field.at(static_cast<double>(x) / nx,
                                     static_cast<double>(y) / ny);
      coef[static_cast<std::size_t>(y * nx + x)] =
          std::exp(contrast * kLn10 * std::tanh(3.0 * smooth) +
                   0.1 * rng.normal());
    }
  }
  // Insulating interfaces: ~7% of the horizontal mesh lines model contact
  // resistance between material layers; fluxes crossing them are three
  // orders of magnitude weaker. An interface spans the full width, so
  // dropping its couplings shortens the dependence depth, while the
  // diagonal reaction floor keeps the drop numerically harmless.
  std::vector<char> interface_row(static_cast<std::size_t>(ny), 0);
  for (index_t y = 1; y + 1 < ny; ++y)
    interface_row[static_cast<std::size_t>(y)] = rng.uniform() < 0.07;
  auto id = [&](index_t x, index_t y) { return y * nx + x; };
  auto edge = [&](index_t a, index_t b) {
    // Harmonic mean of the two cell coefficients (standard FV discretization).
    const double ca = coef[static_cast<std::size_t>(a)];
    const double cb = coef[static_cast<std::size_t>(b)];
    return 2.0 * ca * cb / (ca + cb);
  };
  std::vector<T3> ts;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = id(x, y);
      if (x + 1 < nx) ts.push_back({i, id(x + 1, y), -edge(i, id(x + 1, y))});
      if (y + 1 < ny) {
        // Contact resistance is ~5 decades: an interface crossing even the
        // strong phase must rank below every weak-phase interior coupling,
        // or the drop budget is spent on (depth-irrelevant) interiors first.
        const double contact =
            interface_row[static_cast<std::size_t>(y + 1)] ? 1e-5 : 1.0;
        ts.push_back({i, id(x, y + 1), -contact * edge(i, id(x, y + 1))});
      }
    }
  }
  mirror_offdiag(ts);
  // Reaction/boundary term: a constant diagonal floor (heat loss to the
  // environment). It keeps weak-phase rows diagonally anchored, so removing
  // their tiny couplings is genuinely harmless to the preconditioner.
  return dominant_from_triplets(n, std::move(ts), 0.0, 5e-2);
}

Csr<double> gen_elasticity2d(index_t nx, index_t ny, double young, double nu,
                             std::uint64_t seed, double contrast) {
  SPCG_CHECK(nx > 0 && ny > 0 && young > 0.0 && nu > 0.0 && nu < 0.5);
  SPCG_CHECK(contrast >= 0.0);
  // Plane strain constitutive matrix D (3x3).
  const double f = young / ((1.0 + nu) * (1.0 - 2.0 * nu));
  const double d00 = f * (1.0 - nu);
  const double d01 = f * nu;
  const double d22 = f * (1.0 - 2.0 * nu) / 2.0;

  // Q1 element stiffness via 2x2 Gauss quadrature on a unit square element.
  std::array<std::array<double, 8>, 8> ke{};
  const double g = 1.0 / std::sqrt(3.0);
  const std::array<double, 2> pts{-g, g};
  for (const double xi : pts) {
    for (const double eta : pts) {
      // Shape function derivatives on the reference square [-1,1]^2; the
      // element is the unit square so the Jacobian is diag(1/2, 1/2).
      const std::array<double, 4> dn_dxi{
          -(1 - eta) / 4, (1 - eta) / 4, (1 + eta) / 4, -(1 + eta) / 4};
      const std::array<double, 4> dn_deta{
          -(1 - xi) / 4, -(1 + xi) / 4, (1 + xi) / 4, (1 - xi) / 4};
      std::array<double, 4> dn_dx{}, dn_dy{};
      for (int a = 0; a < 4; ++a) {
        dn_dx[static_cast<std::size_t>(a)] = dn_dxi[static_cast<std::size_t>(a)] * 2.0;
        dn_dy[static_cast<std::size_t>(a)] = dn_deta[static_cast<std::size_t>(a)] * 2.0;
      }
      const double det_j = 0.25;  // (1/2)*(1/2)
      // B matrix (3x8): strain = B * u.
      std::array<std::array<double, 8>, 3> b{};
      for (int a = 0; a < 4; ++a) {
        b[0][static_cast<std::size_t>(2 * a)] = dn_dx[static_cast<std::size_t>(a)];
        b[1][static_cast<std::size_t>(2 * a + 1)] = dn_dy[static_cast<std::size_t>(a)];
        b[2][static_cast<std::size_t>(2 * a)] = dn_dy[static_cast<std::size_t>(a)];
        b[2][static_cast<std::size_t>(2 * a + 1)] = dn_dx[static_cast<std::size_t>(a)];
      }
      // ke += B^T D B * detJ (weights are 1).
      for (int p = 0; p < 8; ++p) {
        for (int q = 0; q < 8; ++q) {
          double acc = 0.0;
          // D is [[d00,d01,0],[d01,d00,0],[0,0,d22]].
          const double b0p = b[0][static_cast<std::size_t>(p)];
          const double b1p = b[1][static_cast<std::size_t>(p)];
          const double b2p = b[2][static_cast<std::size_t>(p)];
          const double b0q = b[0][static_cast<std::size_t>(q)];
          const double b1q = b[1][static_cast<std::size_t>(q)];
          const double b2q = b[2][static_cast<std::size_t>(q)];
          acc += b0p * (d00 * b0q + d01 * b1q);
          acc += b1p * (d01 * b0q + d00 * b1q);
          acc += b2p * d22 * b2q;
          ke[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)] +=
              acc * det_j;
        }
      }
    }
  }

  // Node numbering on an (nx+1)x(ny+1) grid; left edge (x=0) is clamped.
  const index_t nodes_x = nx + 1, nodes_y = ny + 1;
  std::vector<index_t> dof(static_cast<std::size_t>(nodes_x * nodes_y), -1);
  index_t n_dof = 0;
  for (index_t yy = 0; yy < nodes_y; ++yy) {
    for (index_t xx = 0; xx < nodes_x; ++xx) {
      if (xx == 0) continue;  // clamped
      dof[static_cast<std::size_t>(yy * nodes_x + xx)] = n_dof;
      n_dof += 2;
    }
  }
  // Per-element modulus scale: with contrast > 0 the plate is a two-phase
  // composite (stiff matrix + soft inclusions `contrast` decades softer,
  // regions shaped by a smooth random field). Soft-element entries are
  // orders of magnitude below the rest, so magnitude sparsification removes
  // them without disturbing the stiff load paths.
  Rng rng(seed == 0 ? 0xe1a5u : seed);
  std::optional<SmoothField> field;
  if (contrast > 0.0) field.emplace(rng);
  constexpr double kLn10 = 2.302585092994046;
  // Expansion joints: with contrast > 0, every ~ny/3-rd element row is a
  // soft full-width seam (regularly spaced bond lines between panels). They
  // are the entries a magnitude drop removes first, and because they span
  // the width, removing them genuinely cuts the factor's dependence depth.
  std::vector<char> joint(static_cast<std::size_t>(ny), 0);
  if (contrast > 0.0) {
    const index_t panel = std::max<index_t>(6, ny / 3);
    for (index_t ey = panel; ey + 1 < ny; ey += panel)
      joint[static_cast<std::size_t>(ey)] = 1;
  }
  auto element_scale = [&](index_t ex, index_t ey) {
    if (!field) return 1.0;
    if (joint[static_cast<std::size_t>(ey)])
      return std::exp(-(contrast + 2.0) * kLn10);
    const double t = field->at((static_cast<double>(ex) + 0.5) / nx,
                               (static_cast<double>(ey) + 0.5) / ny);
    return std::exp(contrast * kLn10 * std::min(0.0, std::tanh(4.0 * t)));
  };
  std::vector<T3> ts;
  for (index_t ey = 0; ey < ny; ++ey) {
    for (index_t ex = 0; ex < nx; ++ex) {
      const double scale = element_scale(ex, ey);
      // Element nodes counter-clockwise.
      const std::array<index_t, 4> nd{
          ey * nodes_x + ex, ey * nodes_x + ex + 1,
          (ey + 1) * nodes_x + ex + 1, (ey + 1) * nodes_x + ex};
      for (int a = 0; a < 4; ++a) {
        for (int bq = 0; bq < 4; ++bq) {
          const index_t da = dof[static_cast<std::size_t>(nd[static_cast<std::size_t>(a)])];
          const index_t db = dof[static_cast<std::size_t>(nd[static_cast<std::size_t>(bq)])];
          if (da < 0 || db < 0) continue;
          for (int ca = 0; ca < 2; ++ca) {
            for (int cb = 0; cb < 2; ++cb) {
              const double v = scale * ke[static_cast<std::size_t>(2 * a + ca)]
                                         [static_cast<std::size_t>(2 * bq + cb)];
              if (v != 0.0)
                ts.push_back({da + ca, db + cb, v});
            }
          }
        }
      }
    }
  }
  // Elastic foundation (Winkler springs): a small positive diagonal that
  // anchors soft-inclusion dofs, standard for plates on a substrate. Without
  // it the soft dofs are governed purely by their (near-zero) couplings and
  // any perturbation there is relatively large.
  for (index_t d = 0; d < n_dof; ++d) ts.push_back({d, d, 0.02 * young});
  // Assembly cancellations produce (near-)zero couplings; symmetrize away
  // the summation-order roundoff, then strip them so they neither extend the
  // dependence DAG nor consume the sparsification budget.
  Csr<double> a = csr_from_triplets(n_dof, n_dof, std::move(ts));
  const Csr<double> at = transpose(a);
  a = add(a, at);
  for (double& v : a.values) v *= 0.5;
  double max_abs = 0.0;
  for (const double v : a.values) max_abs = std::max(max_abs, std::abs(v));
  return drop_small(a, 1e-13 * max_abs);
}

Csr<double> gen_grid_laplacian(index_t nx, index_t ny, double weight_sigma,
                               double shift, std::uint64_t seed) {
  SPCG_CHECK(nx > 0 && ny > 0 && shift > 0.0);
  Rng rng(seed);
  const index_t n = checked_dims(nx, ny);
  // Conductances combine a smooth regional factor (supply regions vs weak
  // parasitic regions of the die) with a heavy-tailed per-wire factor.
  // Additionally, ~8% of the horizontal grid lines are weak "routing
  // channels": the vertical wires crossing them are orders of magnitude
  // weaker (hierarchical supply networks). A weak channel spans the full
  // width, so dropping it genuinely shortens the dependence depth.
  const SmoothField field(rng);
  std::vector<char> channel(static_cast<std::size_t>(ny), 0);
  for (index_t y = 1; y + 1 < ny; ++y)
    channel[static_cast<std::size_t>(y)] = rng.uniform() < 0.08;
  auto id = [&](index_t x, index_t y) { return y * nx + x; };
  auto conductance = [&](index_t x, index_t y) {
    const double smooth = field.at(static_cast<double>(x) / nx,
                                   static_cast<double>(y) / ny);
    return std::exp(1.6 * weight_sigma * smooth +
                    0.4 * weight_sigma * rng.normal());
  };
  std::vector<T3> ts;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = id(x, y);
      if (x + 1 < nx) ts.push_back({i, id(x + 1, y), -conductance(x, y)});
      if (y + 1 < ny) {
        const double weak =
            channel[static_cast<std::size_t>(y + 1)] ? 1e-5 : 1.0;
        ts.push_back({i, id(x, y + 1), -weak * conductance(x, y)});
      }
    }
  }
  mirror_offdiag(ts);
  return dominant_from_triplets(n, std::move(ts), 0.0, shift);
}

Csr<double> gen_random_geometric(index_t n, int dim, double radius,
                                 double shift, std::uint64_t seed) {
  SPCG_CHECK(n > 0 && (dim == 2 || dim == 3) && radius > 0.0 && shift > 0.0);
  Rng rng(seed);
  std::vector<double> pos(static_cast<std::size_t>(n) * static_cast<std::size_t>(dim));
  for (double& p : pos) p = rng.uniform();

  // Cell grid for neighbor search.
  const auto cells = static_cast<index_t>(std::max(1.0, std::floor(1.0 / radius)));
  const double cell_w = 1.0 / static_cast<double>(cells);
  auto cell_of = [&](double x) {
    return std::min<index_t>(cells - 1, static_cast<index_t>(x / cell_w));
  };
  const index_t num_cells = dim == 2 ? cells * cells : cells * cells * cells;
  std::vector<std::vector<index_t>> buckets(static_cast<std::size_t>(num_cells));
  auto cell_id = [&](index_t i) {
    const double* p = &pos[static_cast<std::size_t>(i) * static_cast<std::size_t>(dim)];
    index_t c = cell_of(p[0]) + cells * cell_of(p[1]);
    if (dim == 3) c += cells * cells * cell_of(p[2]);
    return c;
  };
  for (index_t i = 0; i < n; ++i)
    buckets[static_cast<std::size_t>(cell_id(i))].push_back(i);

  // Heavy-tailed node masses: edge affinity m_i * m_j / distance. Real
  // affinity graphs have magnitudes spanning orders of magnitude, which is
  // what makes the bottom decile of entries numerically irrelevant.
  std::vector<double> mass(static_cast<std::size_t>(n));
  for (double& m : mass) m = rng.pareto(1.2);
  std::vector<T3> ts;
  const double r2 = radius * radius;
  auto try_edge = [&](index_t i, index_t j) {
    if (j <= i) return;
    const double* pi = &pos[static_cast<std::size_t>(i) * static_cast<std::size_t>(dim)];
    const double* pj = &pos[static_cast<std::size_t>(j) * static_cast<std::size_t>(dim)];
    double d2 = 0.0;
    for (int c = 0; c < dim; ++c) {
      const double d = pi[c] - pj[c];
      d2 += d * d;
    }
    if (d2 < r2 && d2 > 0.0)
      ts.push_back({i, j, -mass[static_cast<std::size_t>(i)] *
                              mass[static_cast<std::size_t>(j)] /
                              std::sqrt(d2)});
  };
  auto for_neighbors = [&](index_t cx, index_t cy, index_t cz, auto&& fn) {
    for (index_t dx = -1; dx <= 1; ++dx) {
      for (index_t dy = -1; dy <= 1; ++dy) {
        for (index_t dz = (dim == 3 ? -1 : 0); dz <= (dim == 3 ? 1 : 0); ++dz) {
          const index_t x = cx + dx, y = cy + dy, z = cz + dz;
          if (x < 0 || x >= cells || y < 0 || y >= cells) continue;
          if (dim == 3 && (z < 0 || z >= cells)) continue;
          fn(x + cells * y + (dim == 3 ? cells * cells * z : 0));
        }
      }
    }
  };
  for (index_t i = 0; i < n; ++i) {
    const double* p = &pos[static_cast<std::size_t>(i) * static_cast<std::size_t>(dim)];
    const index_t cx = cell_of(p[0]), cy = cell_of(p[1]);
    const index_t cz = dim == 3 ? cell_of(p[2]) : 0;
    for_neighbors(cx, cy, cz, [&](index_t c) {
      for (const index_t j : buckets[static_cast<std::size_t>(c)]) try_edge(i, j);
    });
  }
  mirror_offdiag(ts);
  return dominant_from_triplets(n, std::move(ts), 0.0, shift);
}

Csr<double> gen_mesh_laplacian(index_t nx, index_t ny, double jitter,
                               double shift, std::uint64_t seed) {
  SPCG_CHECK(nx > 1 && ny > 1 && shift > 0.0);
  Rng rng(seed);
  const index_t n = checked_dims(nx, ny);
  // Jittered grid vertices; each quad split into two triangles, weights from
  // inverse edge lengths (a positive cotan-like surrogate).
  std::vector<double> px(static_cast<std::size_t>(n)), py(static_cast<std::size_t>(n));
  auto id = [&](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      px[static_cast<std::size_t>(id(x, y))] =
          static_cast<double>(x) + jitter * (rng.uniform() - 0.5);
      py[static_cast<std::size_t>(id(x, y))] =
          static_cast<double>(y) + jitter * (rng.uniform() - 0.5);
    }
  }
  // Per-region feature scale (smooth field) plus weak seams: ~6% of the
  // mesh rows are patch boundaries (UV seams / crease lines) whose crossing
  // edges carry near-zero cotan weight. Seams span the full width, so
  // dropping them shortens the dependence depth.
  const SmoothField field(rng);
  std::vector<char> seam(static_cast<std::size_t>(ny), 0);
  for (index_t yy = 1; yy + 1 < ny; ++yy)
    seam[static_cast<std::size_t>(yy)] = rng.uniform() < 0.06;
  auto w = [&](index_t a, index_t b) {
    const double dx = px[static_cast<std::size_t>(a)] - px[static_cast<std::size_t>(b)];
    const double dy = py[static_cast<std::size_t>(a)] - py[static_cast<std::size_t>(b)];
    double scale = std::exp(
        2.5 * field.at(px[static_cast<std::size_t>(a)] / nx,
                       py[static_cast<std::size_t>(a)] / ny));
    const index_t row_a = a / nx, row_b = b / nx;
    if (row_a != row_b &&
        seam[static_cast<std::size_t>(std::max(row_a, row_b))])
      scale *= 1e-4;
    return scale / std::max(1e-3, std::sqrt(dx * dx + dy * dy));
  };
  std::vector<T3> ts;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = id(x, y);
      if (x + 1 < nx) ts.push_back({i, id(x + 1, y), -w(i, id(x + 1, y))});
      if (y + 1 < ny) ts.push_back({i, id(x, y + 1), -w(i, id(x, y + 1))});
      if (x + 1 < nx && y + 1 < ny)  // quad diagonal
        ts.push_back({i, id(x + 1, y + 1), -w(i, id(x + 1, y + 1))});
    }
  }
  mirror_offdiag(ts);
  return dominant_from_triplets(n, std::move(ts), 0.0, shift);
}

Csr<double> gen_economic(index_t n, index_t row_nnz, double alpha,
                         std::uint64_t seed) {
  SPCG_CHECK(n > 0 && row_nnz > 0 && alpha > 0.0 && alpha < 1.0);
  Rng rng(seed);
  // Input-output structure: a few dominant sectors (energy, logistics...)
  // supply almost every industry with heavy-tailed coefficients, plus an
  // occasional near-zero cross-sector residual (rounding of survey data).
  // The residuals are the entries that chain arbitrary sector pairs — and
  // the first thing magnitude sparsification removes.
  const index_t hubs = std::max<index_t>(4, n / 50);
  std::vector<T3> ts;
  for (index_t i = 0; i < n; ++i) {
    // Heavy-tailed technical coefficients, row-normalized to sum < 1.
    std::vector<double> raw(static_cast<std::size_t>(row_nnz));
    double sum = 0.0;
    for (double& v : raw) {
      v = rng.pareto(1.3) - 1.0 + 1e-4;  // heavy tail, positive
      sum += v;
    }
    for (index_t k = 0; k < row_nnz; ++k) {
      const bool residual = rng.uniform() < 0.15;
      index_t j = static_cast<index_t>(rng.uniform_index(
          static_cast<std::uint64_t>(residual ? n : hubs)));
      if (j == i) j = (j + 1) % n;
      double coef = alpha * raw[static_cast<std::size_t>(k)] / (2.0 * sum);
      if (residual) coef *= 1e-4;
      // sym(W): half the coefficient on each side of the diagonal.
      ts.push_back({i, j, -coef});
      ts.push_back({j, i, -coef});
    }
  }
  // Merge duplicates via csr, then enforce dominance: row sums of |offdiag|
  // are < alpha < 1, so diagonal 1 suffices; use dominance builder anyway to
  // stay robust to duplicate-sum corner cases.
  return dominant_from_triplets(n, std::move(ts), 0.02, 1.0 - alpha);
}

Csr<double> gen_normal_equations(index_t n, index_t rows, index_t row_nnz,
                                 double delta, std::uint64_t seed) {
  SPCG_CHECK(n > 0 && rows > 0 && row_nnz > 0 && delta > 0.0);
  Rng rng(seed);
  std::vector<T3> ts;
  std::vector<index_t> cols(static_cast<std::size_t>(row_nnz));
  std::vector<double> vals(static_cast<std::size_t>(row_nnz));
  for (index_t r = 0; r < rows; ++r) {
    for (index_t k = 0; k < row_nnz; ++k) {
      // Power-law feature popularity (u^2 skew): a handful of features are
      // ubiquitous (intercept-like), most co-occur rarely — so the Gram
      // matrix mixes strong hub rows with many near-noise couplings.
      const double u = rng.uniform();
      cols[static_cast<std::size_t>(k)] = std::min<index_t>(
          n - 1, static_cast<index_t>(static_cast<double>(n) * u * u));
      vals[static_cast<std::size_t>(k)] = rng.normal();
    }
    // Accumulate the outer product g^T g.
    for (index_t a = 0; a < row_nnz; ++a) {
      for (index_t b = 0; b < row_nnz; ++b) {
        ts.push_back({cols[static_cast<std::size_t>(a)],
                      cols[static_cast<std::size_t>(b)],
                      vals[static_cast<std::size_t>(a)] *
                          vals[static_cast<std::size_t>(b)]});
      }
    }
  }
  for (index_t i = 0; i < n; ++i) ts.push_back({i, i, delta});
  return csr_from_triplets(n, n, std::move(ts));
}

Csr<double> gen_banded(index_t n, index_t band, double decay, bool oscillate,
                       std::uint64_t seed) {
  SPCG_CHECK(n > 0 && band > 0 && decay > 0.0);
  Rng rng(seed);
  std::vector<T3> ts;
  for (index_t i = 0; i < n; ++i) {
    for (index_t d = 1; d <= band && i + d < n; ++d) {
      // The band is ~35% occupied (beyond the first sub-diagonal): a fully
      // stored band would be closed under elimination, making both ILU(0)
      // and small-K ILU(K) exact and the baseline trivially convergent.
      if (d > 1 && rng.uniform() > 0.35) continue;
      // Oscillatory (acoustics-like) kernels peak away from the diagonal —
      // the wavenumber term dominates at distance ~band/2 — so the
      // depth-carrying near-diagonal entries are among the smallest.
      // Monotone kernels (model reduction) decay from the diagonal.
      const double dist = oscillate
                              ? std::abs(static_cast<double>(d) -
                                         0.5 * static_cast<double>(band))
                              : static_cast<double>(d);
      const double base = std::exp(-decay * dist);
      const double sign =
          oscillate ? std::cos(1.9 * static_cast<double>(d)) : -1.0;
      const double v = sign * base * (0.5 + rng.uniform());
      if (v != 0.0) ts.push_back({i, i + d, v});
    }
  }
  mirror_offdiag(ts);
  return dominant_from_triplets(n, std::move(ts), 0.05, 0.1);
}

Csr<double> gen_kernel2d(index_t nx, index_t ny, double radius, double decay,
                         bool oscillate, std::uint64_t seed) {
  SPCG_CHECK(nx > 0 && ny > 0 && radius >= 1.0 && decay > 0.0);
  Rng rng(seed);
  const index_t n = checked_dims(nx, ny);
  auto id = [&](index_t x, index_t y) { return y * nx + x; };
  const auto rad = static_cast<index_t>(std::floor(radius));
  const double peak = oscillate ? 0.7 * radius : 0.0;
  std::vector<T3> ts;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = id(x, y);
      // One side of each coupling; mirror_offdiag adds the transpose.
      for (index_t dy = 0; dy <= rad; ++dy) {
        for (index_t dx = (dy == 0 ? 1 : -rad); dx <= rad; ++dx) {
          const double r = std::sqrt(static_cast<double>(dx * dx + dy * dy));
          if (r > radius) continue;
          const index_t xx = x + dx, yy = y + dy;
          if (xx < 0 || xx >= nx || yy >= ny) continue;
          // Beyond nearest neighbors the stencil is ~60% occupied so the
          // pattern is not closed under elimination (ILU(K) stays inexact).
          if (r > 1.5 && rng.uniform() > 0.6) continue;
          const double base = std::exp(-decay * std::abs(r - peak));
          const double sign = oscillate ? std::cos(1.9 * r) : -1.0;
          const double v = sign * base * (0.5 + rng.uniform());
          if (v != 0.0) ts.push_back({i, id(xx, yy), v});
        }
      }
    }
  }
  mirror_offdiag(ts);
  return dominant_from_triplets(n, std::move(ts), 0.02, 0.05);
}

Csr<double> gen_ar1_precision(index_t n, double rho, index_t extra_band,
                              std::uint64_t seed) {
  SPCG_CHECK(n > 1 && rho > 0.0 && rho < 1.0);
  Rng rng(seed);
  const double s2 = 1.0 - rho * rho;
  // Regime-switching autocorrelation: segments of ~n/12 steps alternate
  // between the nominal rho and a near-zero regime (30% of segments). The
  // weak-regime couplings are the smallest entries in the matrix yet carry
  // the full dependence chain — dropping them splits the chain into the
  // strong segments.
  std::vector<T3> ts;
  const index_t seg_len = std::max<index_t>(8, n / 12);
  double seg_rho = rho;
  for (index_t i = 0; i + 1 < n; ++i) {
    if (i % seg_len == 0) seg_rho = (rng.uniform() < 0.3) ? 1e-4 * rho : rho;
    ts.push_back({i, i + 1, -seg_rho / s2 * (0.9 + 0.2 * rng.uniform())});
  }
  // Long-range couplings (e.g. seasonal terms), clearly stronger than the
  // weak-regime chain entries.
  if (extra_band > 1) {
    for (index_t i = 0; i + extra_band < n; ++i) {
      if (rng.uniform() < 0.3)
        ts.push_back({i, i + extra_band,
                      -0.1 * rho / s2 * (0.5 + rng.uniform())});
    }
  }
  mirror_offdiag(ts);
  return dominant_from_triplets(n, std::move(ts), 0.02, 0.05);
}

Csr<double> gen_lattice3d(index_t nx, index_t ny, index_t nz, double tail,
                          std::uint64_t seed) {
  SPCG_CHECK(nx > 0 && ny > 0 && nz > 0 && tail > 0.0);
  Rng rng(seed);
  const index_t n = checked_dims(nx, ny, nz);
  // Brick-and-mortar composite: one weak interface near the middle of each
  // axis partitions the lattice into eight strong blocks. The three
  // interface cross-sections are a small fraction of the bonds, yet cutting
  // them caps the dependence depth at the largest block's extent — roughly
  // halving the wavefront count.
  const index_t cx = nx / 2 + static_cast<index_t>(rng.uniform_index(3)) - 1;
  const index_t cy = ny / 2 + static_cast<index_t>(rng.uniform_index(3)) - 1;
  const index_t cz = nz / 2 + static_cast<index_t>(rng.uniform_index(3)) - 1;
  auto grain = [&](index_t x, index_t y, index_t z) {
    return (x < cx ? 1 : 0) + (y < cy ? 2 : 0) + (z < cz ? 4 : 0);
  };
  auto id = [&](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  std::vector<T3> ts;
  auto bond = [&](index_t xa, index_t ya, index_t za, index_t xb, index_t yb,
                  index_t zb) {
    const bool same = grain(xa, ya, za) == grain(xb, yb, zb);
    const double strength =
        same ? rng.pareto(tail) : 1e-5 * (0.5 + rng.uniform());
    ts.push_back({id(xa, ya, za), id(xb, yb, zb), -strength});
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        if (x + 1 < nx) bond(x, y, z, x + 1, y, z);
        if (y + 1 < ny) bond(x, y, z, x, y + 1, z);
        if (z + 1 < nz) bond(x, y, z, x, y, z + 1);
      }
    }
  }
  mirror_offdiag(ts);
  return dominant_from_triplets(n, std::move(ts), 0.0, 0.05);
}

Csr<double> gen_chain_with_skips(index_t n, index_t stride,
                                 double chain_weight, double skip_weight,
                                 std::uint64_t seed) {
  SPCG_CHECK(n > 2 && stride > 1);
  Rng rng(seed);
  std::vector<T3> ts;
  // The sequential chain forces n wavefronts. Its links are strong
  // (skip_weight scale) within blocks of ~n/12 rows and weak (chain_weight
  // scale) in short gaps between blocks — a time-window structure with
  // loose coupling between windows. Dropping the weak gap links caps the
  // dependence depth at one block (a ~10x wavefront reduction) while
  // perturbing the matrix only by the near-zero gap values. With
  // chain_weight ~ skip_weight the gaps are not distinguishable by
  // magnitude and sparsification cannot shorten the chain (worst case).
  const index_t block = std::max<index_t>(40, n / 12);
  constexpr index_t kGap = 8;
  for (index_t i = 0; i + 1 < n; ++i) {
    const bool in_gap = (i % block) >= block - kGap;
    const double w = in_gap ? chain_weight : 0.6 * skip_weight;
    ts.push_back({i, i + 1, -w * (0.8 + 0.4 * rng.uniform())});
  }
  // Hub couplings: every non-hub node attaches to a few hub rows with
  // skip_weight, providing the bulk of the nonzeros and keeping the system
  // well conditioned independently of the gap links.
  const index_t hubs = std::max<index_t>(2, n / (4 * stride));
  constexpr index_t kEdgesPerNode = 12;
  for (index_t i = hubs; i < n; ++i) {
    for (index_t e = 0; e < kEdgesPerNode; ++e) {
      const auto h = static_cast<index_t>(
          rng.uniform_index(static_cast<std::uint64_t>(hubs)));
      ts.push_back({i, h, -skip_weight * (0.8 + 0.4 * rng.uniform()) /
                              static_cast<double>(kEdgesPerNode)});
    }
  }
  mirror_offdiag(ts);
  return dominant_from_triplets(n, std::move(ts), 0.05, 0.2);
}

std::vector<double> make_rhs(const Csr<double>& a, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x_true(static_cast<std::size_t>(a.rows));
  for (double& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b = spmv(a, x_true);
  const double nb = norm2(std::span<const double>(b));
  SPCG_CHECK(nb > 0.0);
  for (double& v : b) v /= nb;
  return b;
}

}  // namespace spcg
