#include "analysis/lint.h"

namespace spcg::analysis {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog{
      {kRuleShapeNonNegative, "rows and cols must be non-negative"},
      {kRuleShapeSquare, "operation requires a square matrix"},
      {kRuleRowptrSize, "rowptr must have exactly rows+1 entries"},
      {kRuleRowptrFront, "rowptr[0] must be 0"},
      {kRuleRowptrMonotone, "rowptr must be non-decreasing"},
      {kRuleArraysSize, "colind and values must have equal size"},
      {kRuleNnzConsistent, "rowptr.back() must equal the stored nnz"},
      {kRuleColindBounds, "column indices must lie in [0, cols)"},
      {kRuleColindSorted, "column indices must be sorted and unique per row"},
      {kRuleValuesFinite, "stored values must be finite (no NaN/Inf)"},
      {kRuleSymPattern, "structural symmetry: (i,j) stored implies (j,i)"},
      {kRuleSymValue, "numeric symmetry: a_ij must equal a_ji within tol"},
      {kRuleSpdDiagPresent, "SPD input: every diagonal must be stored"},
      {kRuleSpdDiagPositive, "SPD heuristic: diagonal entries positive"},
      {kRuleSpdDominance, "SPD heuristic: diagonal dominance (info only)"},
      {kRuleTriStructure, "triangular factor: no entries past the diagonal"},
      {kRuleTriDiagPresent, "triangular factor: diagonal stored in every row"},
      {kRuleTriDiagNonzero, "triangular factor: diagonal must be nonzero"},
      {kRuleTriDiagUnit, "unit-L convention: L diagonal stored as 1"},
      {kRuleIluDiagPos, "combined factor: diag_pos[i] must point at (i,i)"},
      {kRuleIluPivotNonzero, "combined factor: pivots must be nonzero"},
      {kRuleSparsifyShape, "split parts must keep A's shape"},
      {kRuleSparsifyPartition, "a_hat + s must partition A exactly"},
      {kRuleSparsifyDiag, "sparsification must never drop a diagonal"},
      {kRuleSparsifyCount, "dropped counter must match nnz(S)"},
      {kRuleScheduleShape, "schedule arrays must be sized/shaped consistently"},
      {kRuleSchedulePermutation,
       "rows_by_level must be a permutation of all rows"},
      {kRuleScheduleConsistent,
       "level_of_row must agree with the level buckets"},
      {kRuleScheduleTopology,
       "every dependence must resolve in an earlier level"},
      {kRuleScheduleRace,
       "no row may depend on another row of the same level"},
      {kRuleRaceOverlap,
       "dynamic: read of a location written concurrently in the same level"},
      {kRuleRaceStale, "dynamic: read of a location not yet written"},
  };
  return catalog;
}

}  // namespace spcg::analysis
