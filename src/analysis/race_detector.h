// Schedule race detector — pillar 2 of the analysis layer.
//
// The level-scheduled SpTRSV executor (src/sptrsv/sptrsv.h) runs all rows of
// a wavefront concurrently, with a barrier between wavefronts. Its
// correctness therefore rests on two schedule invariants:
//   (a) no row in a level depends on another row of the SAME level
//       (concurrent read of a concurrently-written x entry = data race), and
//   (b) levels are topologically ordered: every dependence of a row resolves
//       in a strictly earlier level (otherwise the executor reads x entries
//       that have not been written yet).
//
// Two complementary detectors:
//   * verify_level_schedule(): a static pass over (matrix, schedule) that
//     proves (a) and (b) plus the structural sanity of the schedule arrays,
//     reporting into the Diagnostics/rule-id machinery of lint.h;
//   * sptrsv_*_levels_checked(): an instrumented executor that performs the
//     solve while recording, per level, the executor's write set (the rows
//     of the level) and checking every read against it — any cross-thread
//     overlap or stale read becomes a RaceConflict. It models the concurrent
//     semantics exactly (all rows of a level are IN FLIGHT at once, so a
//     same-level read races regardless of intra-level order) while running
//     deterministically on one thread.
//
// The instrumented executor is wired into the executor abstraction as
// TrsvExec::kLevelScheduledChecked (precond/preconditioner.h), so any test
// or solver run can execute every SpTRSV path under the detector.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lint.h"
#include "sparse/csr.h"
#include "sparse/ops.h"
#include "wavefront/levels.h"

namespace spcg::analysis {

// --- static verification ----------------------------------------------------

/// Statically verify `sched` against the dependence structure of triangular
/// matrix `m` (Triangle selects which off-diagonal side carries
/// dependences, as in level_schedule()). Reports schedule.* rule violations.
template <class T>
Diagnostics verify_level_schedule(const Csr<T>& m, const LevelSchedule& sched,
                                  Triangle tri,
                                  const std::string& object = "schedule",
                                  std::size_t max_per_rule = 8) {
  Diagnostics out;
  detail::Reporter rep(out, object, max_per_rule);
  const index_t n = m.rows;

  // Shape of the schedule arrays.
  bool shape_ok = true;
  if (static_cast<index_t>(sched.level_of_row.size()) != n) {
    rep.error(kRuleScheduleShape,
              "level_of_row size " + detail::fmt(sched.level_of_row.size()) +
                  " vs rows " + detail::fmt(n));
    shape_ok = false;
  }
  if (static_cast<index_t>(sched.rows_by_level.size()) != n) {
    rep.error(kRuleScheduleShape,
              "rows_by_level size " + detail::fmt(sched.rows_by_level.size()) +
                  " vs rows " + detail::fmt(n));
    shape_ok = false;
  }
  if (sched.level_ptr.empty() || sched.level_ptr.front() != 0 ||
      sched.level_ptr.back() != n) {
    rep.error(kRuleScheduleShape,
              "level_ptr must run from 0 to rows (" + detail::fmt(n) + ")");
    shape_ok = false;
  }
  for (index_t l = 0; shape_ok && l < sched.num_levels(); ++l) {
    if (sched.level_ptr[static_cast<std::size_t>(l)] >
        sched.level_ptr[static_cast<std::size_t>(l) + 1]) {
      rep.error(kRuleScheduleShape,
                "level_ptr not monotone at level " + detail::fmt(l));
      shape_ok = false;
    }
  }
  if (!shape_ok) return out;  // bucket walk below would be out of bounds

  // rows_by_level must be a permutation; build row -> bucket level.
  std::vector<index_t> bucket_level(static_cast<std::size_t>(n), -1);
  for (index_t l = 0; l < sched.num_levels(); ++l) {
    for (index_t s = sched.level_ptr[static_cast<std::size_t>(l)];
         s < sched.level_ptr[static_cast<std::size_t>(l) + 1]; ++s) {
      const index_t i = sched.rows_by_level[static_cast<std::size_t>(s)];
      if (i < 0 || i >= n) {
        rep.error(kRuleSchedulePermutation,
                  "rows_by_level entry " + detail::fmt(i) + " out of range",
                  i);
        continue;
      }
      if (bucket_level[static_cast<std::size_t>(i)] >= 0)
        rep.error(kRuleSchedulePermutation,
                  "row scheduled more than once (levels " +
                      detail::fmt(bucket_level[static_cast<std::size_t>(i)]) +
                      " and " + detail::fmt(l) + ")",
                  i);
      bucket_level[static_cast<std::size_t>(i)] = l;
    }
  }
  for (index_t i = 0; i < n; ++i) {
    if (bucket_level[static_cast<std::size_t>(i)] < 0)
      rep.error(kRuleSchedulePermutation, "row never scheduled", i);
    else if (bucket_level[static_cast<std::size_t>(i)] !=
             sched.level_of_row[static_cast<std::size_t>(i)])
      rep.error(kRuleScheduleConsistent,
                "level_of_row says " +
                    detail::fmt(
                        sched.level_of_row[static_cast<std::size_t>(i)]) +
                    " but bucket is " +
                    detail::fmt(bucket_level[static_cast<std::size_t>(i)]),
                i);
  }

  // Dependence rules (a) and (b), against the ACTUAL buckets (bucket_level),
  // not level_of_row, since the executor walks the buckets.
  for (index_t i = 0; i < n; ++i) {
    const index_t li = bucket_level[static_cast<std::size_t>(i)];
    if (li < 0) continue;
    for (index_t p = m.rowptr[static_cast<std::size_t>(i)];
         p < m.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = m.colind[static_cast<std::size_t>(p)];
      const bool dep = (tri == Triangle::kLower) ? (j < i) : (j > i);
      if (!dep) continue;
      const index_t lj = bucket_level[static_cast<std::size_t>(j)];
      if (lj == li)
        rep.error(kRuleScheduleRace,
                  "row depends on row " + detail::fmt(j) +
                      " scheduled in the same level " + detail::fmt(li),
                  i, j);
      else if (lj > li)
        rep.error(kRuleScheduleTopology,
                  "row in level " + detail::fmt(li) + " depends on row " +
                      detail::fmt(j) + " in later level " + detail::fmt(lj),
                  i, j);
    }
  }
  return out;
}

// --- instrumented checking executor -----------------------------------------

/// One detected conflict of the instrumented executor.
struct RaceConflict {
  index_t level = -1;       // level whose execution exposed the conflict
  index_t reader_row = -1;  // row whose solve read the conflicting entry
  index_t dep_row = -1;     // x entry that was read
  bool same_level = false;  // true: written concurrently; false: stale read
};

/// Result of one instrumented solve: conflicts plus instrumentation counters.
struct RaceReport {
  std::vector<RaceConflict> conflicts;
  std::uint64_t reads = 0;   // dependence reads observed
  std::uint64_t writes = 0;  // row writes observed
  index_t levels = 0;

  [[nodiscard]] bool ok() const { return conflicts.empty(); }

  [[nodiscard]] Diagnostics to_diagnostics(
      const std::string& object = "sptrsv") const {
    Diagnostics d;
    for (const RaceConflict& c : conflicts) {
      d.error(c.same_level ? kRuleRaceOverlap : kRuleRaceStale, object,
              std::string(c.same_level
                              ? "read of x[dep] written concurrently"
                              : "read of x[dep] before it was written") +
                  " in level " + detail::fmt(c.level),
              c.reader_row, c.dep_row);
    }
    return d;
  }
};

namespace detail {

template <class T, bool kLowerTri>
RaceReport sptrsv_level_checked_impl(const Csr<T>& m,
                                     const LevelSchedule& sched,
                                     std::span<const T> b, std::span<T> x) {
  SPCG_CHECK(m.rows == m.cols);
  SPCG_CHECK(static_cast<index_t>(b.size()) == m.rows);
  SPCG_CHECK(static_cast<index_t>(x.size()) == m.rows);
  const index_t n = m.rows;
  RaceReport report;
  report.levels = sched.num_levels();

  // written_at[j]: level that wrote x[j]; -1 = not written yet. Members of
  // the CURRENT level are pre-marked before any of its rows execute — in the
  // real executor they are all in flight at once, so a same-level read races
  // no matter where the reader sits inside the bucket.
  std::vector<index_t> written_at(static_cast<std::size_t>(n), -1);

  for (index_t l = 0; l < sched.num_levels(); ++l) {
    const index_t begin = sched.level_ptr[static_cast<std::size_t>(l)];
    const index_t end = sched.level_ptr[static_cast<std::size_t>(l) + 1];
    for (index_t s = begin; s < end; ++s) {
      const index_t i = sched.rows_by_level[static_cast<std::size_t>(s)];
      SPCG_CHECK_MSG(i >= 0 && i < n, "schedule row " << i << " out of range");
      written_at[static_cast<std::size_t>(i)] = l;  // write set of level l
    }
    for (index_t s = begin; s < end; ++s) {
      const index_t i = sched.rows_by_level[static_cast<std::size_t>(s)];
      T acc = b[static_cast<std::size_t>(i)];
      T diag{0};
      for (index_t p = m.rowptr[static_cast<std::size_t>(i)];
           p < m.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
        const index_t j = m.colind[static_cast<std::size_t>(p)];
        const bool dep = kLowerTri ? (j < i) : (j > i);
        if (dep) {
          ++report.reads;
          const index_t wl = written_at[static_cast<std::size_t>(j)];
          if (wl == l)
            report.conflicts.push_back({l, i, j, /*same_level=*/true});
          else if (wl < 0)
            report.conflicts.push_back({l, i, j, /*same_level=*/false});
          acc -= m.values[static_cast<std::size_t>(p)] *
                 x[static_cast<std::size_t>(j)];
        } else if (j == i) {
          diag = m.values[static_cast<std::size_t>(p)];
        }
      }
      SPCG_CHECK_MSG(diag != T{0},
                     "zero or missing diagonal at row " << i
                                                        << " (level " << l
                                                        << ")");
      x[static_cast<std::size_t>(i)] = acc / diag;
      ++report.writes;
    }
  }
  return report;
}

}  // namespace detail

/// Instrumented lower solve: same result as sptrsv_lower_levels() on a valid
/// schedule, plus a RaceReport of every concurrent-overlap or stale read.
template <class T>
RaceReport sptrsv_lower_levels_checked(const Csr<T>& l,
                                       const LevelSchedule& sched,
                                       std::span<const T> b, std::span<T> x) {
  return detail::sptrsv_level_checked_impl<T, true>(l, sched, b, x);
}

/// Instrumented upper solve (see sptrsv_lower_levels_checked).
template <class T>
RaceReport sptrsv_upper_levels_checked(const Csr<T>& u,
                                       const LevelSchedule& sched,
                                       std::span<const T> b, std::span<T> x) {
  return detail::sptrsv_level_checked_impl<T, false>(u, sched, b, x);
}

}  // namespace spcg::analysis
