// Pipeline invariant verifier — pillar 2 of the analysis layer.
//
// The linter (lint.h) checks objects in isolation; the verifier checks the
// *relationships* the pipeline promises between them, end-to-end over a
// finished SpcgSetup and over the distributed-layer artifacts:
//
//   * verify_setup()  — sparsification split partitions A with the drop
//     ratio inside configured bounds; ILU factor finite with nonzero
//     pivots; factor pattern contained in the level-K fill closure of the
//     preconditioner input; split L/U triangular with sound diagonals; both
//     level schedules topologically valid, race-free, covering every row
//     exactly once (via race_detector.h).
//   * verify_partition() / verify_local_systems() — non-throwing versions
//     of the dist-layer invariants: every row owned exactly once, halo maps
//     complete with no spurious entries, gather edges filling every halo
//     slot exactly once from the true owner, interior+boundary blocks
//     reproducing A's rows bit-for-bit.
//   * verify_reduction_determinism() — simulates the rank-ordered all-reduce
//     of dist/comm.h against the serial ascending sum and reports when the
//     two differ by more than a ULP bound (P=1 must be bitwise identical,
//     matching the comm-layer contract).
//   * taint_scan() — NaN/Inf sweep over a vector at a phase boundary.
//   * alloc_audit_diagnostics() — converts steady-state allocation
//     violations recorded by alloc_audit.h into diagnostics.
//
// Everything reports through Diagnostics with the stable rule ids of
// lint.h; nothing throws on corrupted input. The spcg-verify CLI and the
// SolverSession verify knob are thin shells over these entry points.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "analysis/alloc_audit.h"
#include "analysis/diagnostics.h"
#include "analysis/lint.h"
#include "analysis/race_detector.h"
#include "core/spcg.h"
#include "dist/partition.h"
#include "transient/refactorize.h"

namespace spcg::analysis {

// --- options ----------------------------------------------------------------

struct VerifyOptions {
  /// Structural sub-passes (value scans, per-rule caps) reuse the linter.
  LintOptions lint;
  /// Inclusive bounds on the sparsification drop ratio nnz(S)/nnz(A). The
  /// default ceiling mirrors the paper's regime: dropping more than half of
  /// A means the preconditioner no longer resembles the operator.
  double min_drop_ratio = 0.0;
  double max_drop_ratio = 0.5;
  /// Check factor pattern ⊆ level-K fill closure of the precond input.
  bool check_closure = true;
  /// ULP tolerance for rank-order reductions with parts > 1 (parts == 1 must
  /// always be bitwise identical regardless of this knob).
  std::uint64_t reduce_max_ulps = 4096;
  /// NaN/Inf sweeps at phase boundaries (session knob honors this too).
  bool taint_scan = true;
  std::size_t max_per_rule = 8;
};

// --- taint pass -------------------------------------------------------------

/// NaN/Inf sweep over a vector at a phase boundary (rule taint.nonfinite).
template <class T>
Diagnostics taint_scan(std::span<const T> v, const std::string& object,
                       std::size_t max_per_rule = 8) {
  Diagnostics out;
  detail::Reporter rep(out, object, max_per_rule);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(static_cast<double>(v[i])))
      rep.error(kRuleTaintNonFinite,
                "non-finite value " + detail::fmt(v[i]),
                static_cast<index_t>(i));
  }
  return out;
}

// --- setup artifact verifier ------------------------------------------------

namespace detail {

/// Factor pattern must be a subset of `closure` (merge-walk per row; both
/// patterns are sorted). Reports verify.ilu.closure.
template <class T>
void check_pattern_subset(const Csr<T>& factor, const Csr<char>& closure,
                          Reporter& rep) {
  if (factor.rows != closure.rows) {
    rep.error(kRuleVerifyClosure,
              "factor has " + fmt(factor.rows) + " rows vs closure " +
                  fmt(closure.rows));
    return;
  }
  for (index_t i = 0; i < factor.rows; ++i) {
    const auto fc = factor.row_cols(i);
    const auto cc = closure.row_cols(i);
    std::size_t pc = 0;
    for (const index_t j : fc) {
      while (pc < cc.size() && cc[pc] < j) ++pc;
      if (pc >= cc.size() || cc[pc] != j)
        rep.error(kRuleVerifyClosure,
                  "factor entry outside the level-K fill closure", i, j);
    }
  }
}

}  // namespace detail

/// End-to-end verification of a finished setup against its input matrix and
/// the options that produced it. Covers the sparsification split (partition
/// + drop-ratio bounds), the combined ILU factor (structure, pivots, fill
/// closure), the split triangular factors and both level schedules.
template <class T>
Diagnostics verify_setup(const Csr<T>& a, const SpcgSetup<T>& s,
                         const SpcgOptions& opt,
                         const VerifyOptions& vopt = {}) {
  Diagnostics out;
  LintOptions lint = vopt.lint;
  lint.max_per_rule = vopt.max_per_rule;

  // Phase 1 artifacts: the sparsification split.
  const Csr<T>* precond_input = &a;
  if (opt.sparsify_enabled) {
    detail::Reporter rep(out, "split", vopt.max_per_rule);
    if (!s.decision.has_value()) {
      rep.error(kRuleVerifySetup,
                "sparsify enabled but the setup has no decision");
      return out;
    }
    out.merge(analyze_sparsify(a, s.decision->chosen, lint));
    const double nnz_a = static_cast<double>(a.nnz());
    const double ratio =
        nnz_a == 0.0
            ? 0.0
            : static_cast<double>(s.decision->chosen.dropped) / nnz_a;
    if (ratio < vopt.min_drop_ratio || ratio > vopt.max_drop_ratio)
      rep.error(kRuleVerifyDropRatio,
                "drop ratio " + detail::fmt(ratio) + " outside [" +
                    detail::fmt(vopt.min_drop_ratio) + ", " +
                    detail::fmt(vopt.max_drop_ratio) + "]");
    precond_input = &s.decision->chosen.a_hat;
  } else if (s.decision.has_value()) {
    detail::Reporter rep(out, "split", vopt.max_per_rule);
    rep.warning(kRuleVerifySetup,
                "sparsify disabled but the setup carries a decision");
  }

  // Phase 2 artifacts: the combined factor and its fill closure.
  out.merge(analyze_ilu(s.factorization, lint, "LU"));
  if (vopt.check_closure && precond_input->rows == s.factorization.lu.rows) {
    detail::Reporter rep(out, "LU", vopt.max_per_rule);
    // ILU(0) factorizes on A's own pattern, i.e. closure level 0. The
    // numeric row cap can only *shrink* the pattern, so the uncapped
    // closure stays a sound upper bound.
    const index_t k =
        opt.preconditioner == PrecondKind::kIlu0 ? 0 : opt.fill_level;
    const IlukSymbolic closure = iluk_symbolic_t(*precond_input, k);
    detail::check_pattern_subset(s.factorization.lu, closure.pattern, rep);
  }

  // Split factors and their schedules.
  out.merge(analyze_triangular(s.factors.l, Triangle::kLower,
                               /*expect_unit_diag=*/true, lint, "L"));
  out.merge(analyze_triangular(s.factors.u, Triangle::kUpper,
                               /*expect_unit_diag=*/false, lint, "U"));
  out.merge(verify_level_schedule(s.factors.l, s.l_schedule, Triangle::kLower,
                                  "schedule(L)", vopt.max_per_rule));
  out.merge(verify_level_schedule(s.factors.u, s.u_schedule, Triangle::kUpper,
                                  "schedule(U)", vopt.max_per_rule));

  if (vopt.taint_scan)
    out.merge(taint_scan(std::span<const T>(s.factorization.lu.values), "LU",
                         vopt.max_per_rule));
  return out;
}

// --- transient refactorize verifier -----------------------------------------

namespace detail {

/// Bitwise vector comparison (raw bytes — catches sign-of-zero and NaN
/// payload drift that `==` would miss). Reports kRuleTransientRefactorize.
template <class V>
void check_bitwise_equal(const std::vector<V>& got, const std::vector<V>& want,
                         const char* what, Reporter& rep) {
  if (got.size() != want.size()) {
    rep.error(kRuleTransientRefactorize,
              std::string(what) + ": size " + fmt(got.size()) + " vs " +
                  fmt(want.size()));
    return;
  }
  if (!got.empty() &&
      std::memcmp(got.data(), want.data(), got.size() * sizeof(V)) != 0) {
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (std::memcmp(&got[i], &want[i], sizeof(V)) != 0)
        rep.error(kRuleTransientRefactorize,
                  std::string(what) + " differs from the cold setup",
                  static_cast<index_t>(i));
    }
  }
}

}  // namespace detail

/// The transient fast path's equivalence contract: a numeric-only
/// refactorization (transient/refactorize.h) into a setup's retained
/// symbolic structure must reproduce a cold spcg_setup on the same matrix
/// *bitwise* — identical factor values, diagonal positions and split L/U.
///
/// Procedure: build a cold setup, clone it, scrub every numeric artifact of
/// the clone to NaN (so agreement cannot come from the copy), refresh the
/// clone from `a` through build_numeric_refresh/refresh_setup_numerics, and
/// byte-compare against the cold original. Reports
/// verify.transient.refactorize on any divergence.
template <class T>
Diagnostics verify_numeric_refactorize(const Csr<T>& a, const SpcgOptions& opt,
                                       const VerifyOptions& vopt = {}) {
  Diagnostics out;
  detail::Reporter rep(out, "refactorize", vopt.max_per_rule);

  const SpcgSetup<T> cold = spcg_setup(a, opt);
  SpcgSetup<T> warm = cold;  // symbolic donor; numerics scrubbed below
  const T scrub = std::numeric_limits<T>::quiet_NaN();
  std::fill(warm.factorization.lu.values.begin(),
            warm.factorization.lu.values.end(), scrub);
  std::fill(warm.factors.l.values.begin(), warm.factors.l.values.end(), scrub);
  std::fill(warm.factors.u.values.begin(), warm.factors.u.values.end(), scrub);
  std::fill(warm.factorization.diag_pos.begin(),
            warm.factorization.diag_pos.end(), index_t{-1});
  if (warm.decision.has_value()) {
    std::fill(warm.decision->chosen.a_hat.values.begin(),
              warm.decision->chosen.a_hat.values.end(), scrub);
    std::fill(warm.decision->chosen.s.values.begin(),
              warm.decision->chosen.s.values.end(), scrub);
  }

  NumericRefreshWorkspace ws = build_numeric_refresh(warm, a);
  refresh_setup_numerics(warm, a, opt, ws);

  detail::check_bitwise_equal(warm.factorization.lu.values,
                              cold.factorization.lu.values, "LU values", rep);
  detail::check_bitwise_equal(warm.factorization.diag_pos,
                              cold.factorization.diag_pos, "diag_pos", rep);
  detail::check_bitwise_equal(warm.factors.l.values, cold.factors.l.values,
                              "L values", rep);
  detail::check_bitwise_equal(warm.factors.u.values, cold.factors.u.values,
                              "U values", rep);
  if (warm.decision.has_value() && cold.decision.has_value()) {
    detail::check_bitwise_equal(warm.decision->chosen.a_hat.values,
                                cold.decision->chosen.a_hat.values,
                                "a_hat values", rep);
    detail::check_bitwise_equal(warm.decision->chosen.s.values,
                                cold.decision->chosen.s.values, "S values",
                                rep);
  }
  if (warm.factorization.breakdown != cold.factorization.breakdown)
    rep.error(kRuleTransientRefactorize,
              "breakdown flag diverged between refresh and cold setup");
  return out;
}

// --- distributed-layer verifiers --------------------------------------------

/// Non-throwing counterpart of validate_partition(): every global row owned
/// exactly once, ownership lists ascending and in agreement with part_of.
Diagnostics verify_partition(const Partition& p, std::size_t max_per_rule = 8);

/// Verify every LocalSystem against the global matrix and partition: halo
/// completeness (no missing or spurious entries), gather-edge soundness
/// (each halo slot filled exactly once, from the part that owns it), and the
/// interior/boundary split reproducing A's rows exactly.
template <class T>
Diagnostics verify_local_systems(const Csr<T>& a, const Partition& p,
                                 const std::vector<LocalSystem<T>>& locals,
                                 const VerifyOptions& vopt = {}) {
  Diagnostics out = verify_partition(p, vopt.max_per_rule);
  if (!out.ok()) return out;  // local checks index through ownership data
  if (static_cast<index_t>(locals.size()) != p.parts) {
    detail::Reporter rep(out, "dist", vopt.max_per_rule);
    rep.error(kRuleDistPartition,
              detail::fmt(locals.size()) + " local systems for " +
                  detail::fmt(p.parts) + " parts");
    return out;
  }

  // Global row -> position in its owner's owned list.
  std::vector<index_t> local_of(static_cast<std::size_t>(a.rows), -1);
  for (index_t r = 0; r < p.parts; ++r) {
    const auto& rows = p.owned[static_cast<std::size_t>(r)];
    for (std::size_t l = 0; l < rows.size(); ++l)
      local_of[static_cast<std::size_t>(rows[l])] = static_cast<index_t>(l);
  }

  for (index_t r = 0; r < p.parts; ++r) {
    const LocalSystem<T>& loc = locals[static_cast<std::size_t>(r)];
    detail::Reporter rep(out, "local(" + detail::fmt(r) + ")",
                         vopt.max_per_rule);
    if (loc.part != r)
      rep.error(kRuleDistPartition, "local system claims part " +
                                        detail::fmt(loc.part) + " at slot " +
                                        detail::fmt(r));
    if (loc.owned != p.owned[static_cast<std::size_t>(r)]) {
      rep.error(kRuleDistPartition,
                "owned list disagrees with the partition");
      continue;  // halo/split checks below would chase bad row ids
    }

    // Halo completeness: recompute the expected halo from A and compare.
    std::vector<index_t> expected;
    for (const index_t g : loc.owned) {
      for (const index_t j : a.row_cols(g)) {
        if (p.part_of[static_cast<std::size_t>(j)] != r) expected.push_back(j);
      }
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    {
      std::size_t ph = 0;
      for (const index_t g : expected) {
        while (ph < loc.halo.size() && loc.halo[ph] < g) {
          rep.error(kRuleDistHaloComplete,
                    "halo entry " + detail::fmt(loc.halo[ph]) +
                        " is not referenced by any owned row",
                    -1, loc.halo[ph]);
          ++ph;
        }
        if (ph < loc.halo.size() && loc.halo[ph] == g) {
          ++ph;
        } else {
          rep.error(kRuleDistHaloComplete,
                    "off-part column " + detail::fmt(g) +
                        " is missing from the halo",
                    -1, g);
        }
      }
      for (; ph < loc.halo.size(); ++ph)
        rep.error(kRuleDistHaloComplete,
                  "halo entry " + detail::fmt(loc.halo[ph]) +
                      " is not referenced by any owned row",
                  -1, loc.halo[ph]);
    }

    // Gather edges: every halo slot filled exactly once, from its owner.
    std::vector<index_t> fills(loc.halo.size(), 0);
    index_t prev_neighbor = -1;
    for (const auto& edge : loc.edges) {
      if (edge.neighbor <= prev_neighbor)
        rep.error(kRuleDistHaloGather,
                  "edges not strictly ascending by neighbor at " +
                      detail::fmt(edge.neighbor));
      prev_neighbor = edge.neighbor;
      if (edge.neighbor < 0 || edge.neighbor >= p.parts ||
          edge.neighbor == r) {
        rep.error(kRuleDistHaloGather,
                  "edge against invalid neighbor " +
                      detail::fmt(edge.neighbor));
        continue;
      }
      const auto& neighbor_owned =
          p.owned[static_cast<std::size_t>(edge.neighbor)];
      if (edge.src_local.size() != edge.dst_halo.size()) {
        rep.error(kRuleDistHaloGather,
                  "edge list sizes differ for neighbor " +
                      detail::fmt(edge.neighbor));
        continue;
      }
      for (std::size_t k = 0; k < edge.dst_halo.size(); ++k) {
        const index_t dst = edge.dst_halo[k];
        const index_t src = edge.src_local[k];
        if (dst < 0 || dst >= loc.halo_size()) {
          rep.error(kRuleDistHaloGather,
                    "dst_halo " + detail::fmt(dst) + " out of range");
          continue;
        }
        ++fills[static_cast<std::size_t>(dst)];
        const index_t g = loc.halo[static_cast<std::size_t>(dst)];
        if (src < 0 ||
            src >= static_cast<index_t>(neighbor_owned.size()) ||
            neighbor_owned[static_cast<std::size_t>(src)] != g)
          rep.error(kRuleDistHaloGather,
                    "halo slot " + detail::fmt(dst) + " (global " +
                        detail::fmt(g) + ") gathered from wrong source",
                    -1, g);
      }
    }
    for (std::size_t h = 0; h < fills.size(); ++h) {
      if (fills[h] == 1) continue;
      rep.error(kRuleDistHaloGather,
                "halo slot " + detail::fmt(h) + " (global " +
                    detail::fmt(loc.halo[h]) + ") gathered " +
                    detail::fmt(fills[h]) + " time(s), expected 1",
                -1, loc.halo[h]);
    }

    // Interior/boundary split: merge-walk each owned row of A against the
    // two local blocks — every entry in exactly one, with identical value.
    const index_t n_loc = loc.rows();
    if (loc.a_interior.rows != n_loc || loc.a_interior.cols != n_loc ||
        loc.a_boundary.rows != n_loc ||
        loc.a_boundary.cols != loc.halo_size()) {
      rep.error(kRuleDistLocalSplit,
                "interior/boundary block shapes disagree with owned/halo");
      continue;
    }
    auto halo_slot = [&](index_t g) {
      const auto it =
          std::lower_bound(loc.halo.begin(), loc.halo.end(), g);
      return (it != loc.halo.end() && *it == g)
                 ? static_cast<index_t>(it - loc.halo.begin())
                 : index_t{-1};
    };
    for (index_t l = 0; l < n_loc; ++l) {
      const index_t g = loc.owned[static_cast<std::size_t>(l)];
      const auto ic = loc.a_interior.row_cols(l);
      const auto iv = loc.a_interior.row_vals(l);
      const auto bc = loc.a_boundary.row_cols(l);
      const auto bv = loc.a_boundary.row_vals(l);
      std::size_t pi = 0, pb = 0;
      for (index_t q = a.rowptr[static_cast<std::size_t>(g)];
           q < a.rowptr[static_cast<std::size_t>(g) + 1]; ++q) {
        const index_t j = a.colind[static_cast<std::size_t>(q)];
        const T v = a.values[static_cast<std::size_t>(q)];
        if (p.part_of[static_cast<std::size_t>(j)] == r) {
          const index_t jl = local_of[static_cast<std::size_t>(j)];
          if (pi < ic.size() && ic[pi] == jl && iv[pi] == v) {
            ++pi;
          } else {
            rep.error(kRuleDistLocalSplit,
                      "interior block misses A(" + detail::fmt(g) + "," +
                          detail::fmt(j) + ")",
                      g, j);
          }
        } else {
          const index_t js = halo_slot(j);
          if (js >= 0 && pb < bc.size() && bc[pb] == js && bv[pb] == v) {
            ++pb;
          } else {
            rep.error(kRuleDistLocalSplit,
                      "boundary block misses A(" + detail::fmt(g) + "," +
                          detail::fmt(j) + ")",
                      g, j);
          }
        }
      }
      if (pi != ic.size() || pb != bc.size())
        rep.error(kRuleDistLocalSplit,
                  "local row " + detail::fmt(l) +
                      " stores entries outside A's pattern",
                  g);
    }
  }
  return out;
}

/// Simulate the deterministic all-reduce of dist/comm.h over one scalar:
/// each part sums its owned slice of `contributions` in local (ascending
/// global) order, then the partials fold in ascending rank order. Reports
/// dist.reduce.determinism when (a) re-running the simulation is not
/// bitwise stable, (b) parts == 1 differs at all from the serial ascending
/// sum, or (c) the ULP distance to the serial sum exceeds `max_ulps`.
Diagnostics verify_reduction_determinism(const Partition& p,
                                         std::span<const double> contributions,
                                         std::uint64_t max_ulps,
                                         std::size_t max_per_rule = 8);

/// ULP distance between two doubles (0 for bitwise-equal values, including
/// -0 vs +0; UINT64_MAX when either is NaN or they differ in sign).
std::uint64_t ulp_distance(double x, double y);

// --- allocation-audit bridge ------------------------------------------------

/// Convert the AllocAudit registry's accumulated state into diagnostics:
/// one alloc.steady-state error per phase with steady-state violations,
/// plus one info per audited phase summarizing its counts. This is the
/// hard-fail path of spcg-verify --audit.
Diagnostics alloc_audit_diagnostics(std::size_t max_per_rule = 8);

// --- reporting helpers ------------------------------------------------------

/// Render diagnostics as a JSON array fragment (stable schema for the CI
/// artifact): [{"severity","rule","object","row","col","message"}, ...].
std::string diagnostics_to_json(const Diagnostics& d);

}  // namespace spcg::analysis
