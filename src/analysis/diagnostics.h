// Structured diagnostics for the static-analysis layer.
//
// Unlike SPCG_CHECK (which throws on the first violation), the analysis
// passes in src/analysis/ collect *every* finding into a Diagnostics report:
// each finding carries a severity, a stable rule id from the catalog in
// lint.h, the object and location it refers to, and a human-readable
// message. Callers decide whether errors are fatal (spcg-lint exits nonzero,
// the bench runner throws, tests assert on specific rule ids).
#pragma once

#include <algorithm>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "sparse/csr.h"

namespace spcg::analysis {

enum class Severity { kInfo, kWarning, kError };

inline const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

/// One finding of an analysis pass.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;     // stable id from the rule catalog (lint.h)
  std::string object;   // what was analyzed: "A", "L", "U", "schedule", ...
  index_t row = -1;     // location within the object; -1 = not applicable
  index_t col = -1;
  std::string message;  // human-readable detail

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << analysis::to_string(severity) << " [" << rule << "] " << object;
    if (row >= 0) {
      os << " row " << row;
      if (col >= 0) os << " col " << col;
    }
    os << ": " << message;
    return os.str();
  }
};

/// Accumulated findings of one or more analysis passes.
class Diagnostics {
 public:
  void add(Diagnostic d) { items_.push_back(std::move(d)); }

  void error(std::string rule, std::string object, std::string message,
             index_t row = -1, index_t col = -1) {
    add({Severity::kError, std::move(rule), std::move(object), row, col,
         std::move(message)});
  }
  void warning(std::string rule, std::string object, std::string message,
               index_t row = -1, index_t col = -1) {
    add({Severity::kWarning, std::move(rule), std::move(object), row, col,
         std::move(message)});
  }
  void info(std::string rule, std::string object, std::string message,
            index_t row = -1, index_t col = -1) {
    add({Severity::kInfo, std::move(rule), std::move(object), row, col,
         std::move(message)});
  }

  [[nodiscard]] const std::vector<Diagnostic>& items() const { return items_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// True when no error-severity finding was recorded (warnings allowed).
  [[nodiscard]] bool ok() const { return count(Severity::kError) == 0; }

  [[nodiscard]] std::size_t count(Severity s) const {
    return static_cast<std::size_t>(
        std::count_if(items_.begin(), items_.end(),
                      [s](const Diagnostic& d) { return d.severity == s; }));
  }

  /// True when some finding carries `rule` (any severity).
  [[nodiscard]] bool has_rule(const std::string& rule) const {
    return std::any_of(items_.begin(), items_.end(),
                       [&](const Diagnostic& d) { return d.rule == rule; });
  }

  /// All findings carrying `rule`.
  [[nodiscard]] std::vector<Diagnostic> by_rule(const std::string& rule) const {
    std::vector<Diagnostic> out;
    for (const Diagnostic& d : items_)
      if (d.rule == rule) out.push_back(d);
    return out;
  }

  /// Merge another report into this one (e.g. per-object sub-passes).
  void merge(const Diagnostics& other) {
    items_.insert(items_.end(), other.items_.begin(), other.items_.end());
  }

  /// First error, or nullptr. Used to surface one representative failure.
  [[nodiscard]] const Diagnostic* first_error() const {
    for (const Diagnostic& d : items_)
      if (d.severity == Severity::kError) return &d;
    return nullptr;
  }

  /// Render every finding, one per line (optionally capped).
  [[nodiscard]] std::string to_string(std::size_t max_items = 0) const {
    std::ostringstream os;
    std::size_t shown = 0;
    for (const Diagnostic& d : items_) {
      if (max_items != 0 && shown == max_items) {
        os << "... (" << (items_.size() - shown) << " more)\n";
        break;
      }
      os << d.to_string() << "\n";
      ++shown;
    }
    return os.str();
  }

 private:
  std::vector<Diagnostic> items_;
};

inline std::ostream& operator<<(std::ostream& os, const Diagnostics& d) {
  return os << d.to_string();
}

}  // namespace spcg::analysis
