// Structural linter — pillar 1 of the analysis layer.
//
// Deep, non-throwing analyze() passes over the library's core objects:
//   * Csr / Coo structure: rowptr monotonicity, sorted+unique colind,
//     in-bounds indices, nnz accounting, NaN/Inf value scans;
//   * symmetry and SPD heuristics (positive diagonal, diagonal dominance)
//     for matrices headed into CG;
//   * triangular factors: triangularity, diagonal presence/nonzero,
//     unit-diagonal convention for L;
//   * combined ILU factors (IluResult): diag_pos integrity, pivot health;
//   * sparsification splits: Â + S must partition A and keep its diagonal.
//
// Every finding is reported into a Diagnostics object with a stable rule id
// (kRule* constants below); nothing throws, even on badly corrupted input —
// checks that would index out of bounds are skipped once a prerequisite
// check has failed. SPCG_CHECK remains the fail-fast guard inside hot
// kernels; the linter is the offline/debug deep scan.
#pragma once

#include <cmath>
#include <cstddef>
#include <map>
#include <string>

#include "analysis/diagnostics.h"
#include "core/sparsify.h"
#include "precond/ilu.h"
#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/ops.h"

namespace spcg::analysis {

// --- rule catalog -----------------------------------------------------------
// Stable ids: tests and tooling match on these strings. See rule_catalog()
// for one-line descriptions and DESIGN.md "Analysis & diagnostics layer".

inline constexpr const char* kRuleShapeNonNegative = "csr.shape.nonnegative";
inline constexpr const char* kRuleShapeSquare = "csr.shape.square";
inline constexpr const char* kRuleRowptrSize = "csr.rowptr.size";
inline constexpr const char* kRuleRowptrFront = "csr.rowptr.front";
inline constexpr const char* kRuleRowptrMonotone = "csr.rowptr.monotone";
inline constexpr const char* kRuleArraysSize = "csr.arrays.size";
inline constexpr const char* kRuleNnzConsistent = "csr.nnz.consistent";
inline constexpr const char* kRuleColindBounds = "csr.colind.bounds";
inline constexpr const char* kRuleColindSorted = "csr.colind.sorted";
inline constexpr const char* kRuleValuesFinite = "csr.values.finite";
inline constexpr const char* kRuleSymPattern = "sym.pattern";
inline constexpr const char* kRuleSymValue = "sym.value";
inline constexpr const char* kRuleSpdDiagPresent = "spd.diag.present";
inline constexpr const char* kRuleSpdDiagPositive = "spd.diag.positive";
inline constexpr const char* kRuleSpdDominance = "spd.dominance";
inline constexpr const char* kRuleTriStructure = "tri.structure";
inline constexpr const char* kRuleTriDiagPresent = "tri.diag.present";
inline constexpr const char* kRuleTriDiagNonzero = "tri.diag.nonzero";
inline constexpr const char* kRuleTriDiagUnit = "tri.diag.unit";
inline constexpr const char* kRuleIluDiagPos = "ilu.diagpos";
inline constexpr const char* kRuleIluPivotNonzero = "ilu.pivot.nonzero";
inline constexpr const char* kRuleSparsifyShape = "sparsify.shape";
inline constexpr const char* kRuleSparsifyPartition = "sparsify.partition";
inline constexpr const char* kRuleSparsifyDiag = "sparsify.diag.preserved";
inline constexpr const char* kRuleSparsifyCount = "sparsify.count";
// Schedule rules (emitted by race_detector.h, listed here for the catalog):
inline constexpr const char* kRuleScheduleShape = "schedule.shape";
inline constexpr const char* kRuleSchedulePermutation = "schedule.permutation";
inline constexpr const char* kRuleScheduleConsistent = "schedule.consistent";
inline constexpr const char* kRuleScheduleTopology = "schedule.topology";
inline constexpr const char* kRuleScheduleRace = "schedule.race";
inline constexpr const char* kRuleRaceOverlap = "race.overlap";
inline constexpr const char* kRuleRaceStale = "race.stale-read";
// Verifier rules (emitted by verify.h/.cc, listed here for the catalog):
inline constexpr const char* kRuleVerifySetup = "verify.setup.artifacts";
inline constexpr const char* kRuleVerifyClosure = "verify.ilu.closure";
inline constexpr const char* kRuleVerifyDropRatio = "verify.sparsify.ratio";
inline constexpr const char* kRuleTaintNonFinite = "taint.nonfinite";
inline constexpr const char* kRuleDistPartition = "dist.partition.coverage";
inline constexpr const char* kRuleDistHaloComplete = "dist.halo.complete";
inline constexpr const char* kRuleDistHaloGather = "dist.halo.gather";
inline constexpr const char* kRuleDistLocalSplit = "dist.local.split";
inline constexpr const char* kRuleDistReduce = "dist.reduce.determinism";
inline constexpr const char* kRuleAllocSteadyState = "alloc.steady-state";
inline constexpr const char* kRuleTransientRefactorize =
    "verify.transient.refactorize";

/// One catalog entry: rule id + one-line description (for spcg-lint --rules).
struct RuleInfo {
  const char* id;
  const char* description;
};

/// Every rule the analysis layer can emit, in catalog order.
const std::vector<RuleInfo>& rule_catalog();

// --- options ----------------------------------------------------------------

struct LintOptions {
  bool check_values = true;     // NaN/Inf scan over stored values
  bool check_symmetry = false;  // pattern + numeric symmetry (square only)
  bool check_spd = false;       // SPD heuristics: diag present/positive, dominance
  double symmetry_tol = 0.0;    // absolute |a_ij - a_ji| tolerance
  /// Per-rule cap on reported findings; further ones are counted, not stored
  /// (keeps reports bounded on wholesale corruption). 0 = unlimited.
  std::size_t max_per_rule = 8;
};

namespace detail {

/// Rate-limited reporter: forwards to Diagnostics until the per-rule cap,
/// then counts silently and emits one summarizing info at flush().
class Reporter {
 public:
  Reporter(Diagnostics& out, std::string object, std::size_t max_per_rule)
      : out_(out), object_(std::move(object)), cap_(max_per_rule) {}

  void error(const char* rule, std::string message, index_t row = -1,
             index_t col = -1) {
    emit(Severity::kError, rule, std::move(message), row, col);
  }
  void warning(const char* rule, std::string message, index_t row = -1,
               index_t col = -1) {
    emit(Severity::kWarning, rule, std::move(message), row, col);
  }
  void info(const char* rule, std::string message, index_t row = -1,
            index_t col = -1) {
    emit(Severity::kInfo, rule, std::move(message), row, col);
  }

  ~Reporter() {
    for (const auto& [rule, n] : suppressed_)
      out_.info(rule, object_,
                std::to_string(n) + " further finding(s) suppressed");
  }

 private:
  void emit(Severity sev, const char* rule, std::string message, index_t row,
            index_t col) {
    if (cap_ != 0 && emitted_[rule] >= cap_) {
      ++suppressed_[rule];
      return;
    }
    ++emitted_[rule];
    out_.add({sev, rule, object_, row, col, std::move(message)});
  }

  Diagnostics& out_;
  std::string object_;
  std::size_t cap_;
  std::map<std::string, std::size_t> emitted_;
  std::map<std::string, std::size_t> suppressed_;
};

template <class T>
std::string fmt(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace detail

// --- core structural pass ---------------------------------------------------

/// Deep structural + value lint of a CSR matrix. Never throws; findings land
/// in the returned Diagnostics. Per-entry scans are skipped for rows whose
/// rowptr slice is already known to be invalid.
template <class T>
Diagnostics analyze(const Csr<T>& a, const LintOptions& opt = {},
                    const std::string& object = "A") {
  Diagnostics out;
  detail::Reporter rep(out, object, opt.max_per_rule);

  if (a.rows < 0 || a.cols < 0) {
    rep.error(kRuleShapeNonNegative, "rows=" + detail::fmt(a.rows) +
                                         " cols=" + detail::fmt(a.cols));
    return out;
  }
  if (a.rowptr.size() != static_cast<std::size_t>(a.rows) + 1) {
    rep.error(kRuleRowptrSize, "rowptr size " + detail::fmt(a.rowptr.size()) +
                                   ", expected rows+1 = " +
                                   detail::fmt(a.rows + 1));
    return out;  // nothing else is addressable
  }
  if (a.rowptr.front() != 0)
    rep.error(kRuleRowptrFront,
              "rowptr[0] = " + detail::fmt(a.rowptr.front()) + ", expected 0");
  if (a.colind.size() != a.values.size())
    rep.error(kRuleArraysSize, "colind size " + detail::fmt(a.colind.size()) +
                                   " vs values size " +
                                   detail::fmt(a.values.size()));
  if (a.rowptr.back() < 0 ||
      static_cast<std::size_t>(a.rowptr.back()) != a.colind.size())
    rep.error(kRuleNnzConsistent,
              "rowptr.back() = " + detail::fmt(a.rowptr.back()) +
                  " vs colind size " + detail::fmt(a.colind.size()));

  const auto nnz_cap = static_cast<index_t>(a.colind.size());
  auto row_ok = [&](index_t i) {
    const index_t b = a.rowptr[static_cast<std::size_t>(i)];
    const index_t e = a.rowptr[static_cast<std::size_t>(i) + 1];
    return b >= 0 && b <= e && e <= nnz_cap;
  };

  for (index_t i = 0; i < a.rows; ++i) {
    const index_t b = a.rowptr[static_cast<std::size_t>(i)];
    const index_t e = a.rowptr[static_cast<std::size_t>(i) + 1];
    if (b > e)
      rep.error(kRuleRowptrMonotone,
                "rowptr[" + detail::fmt(i) + "] = " + detail::fmt(b) + " > " +
                    "rowptr[" + detail::fmt(i + 1) + "] = " + detail::fmt(e),
                i);
    if (!row_ok(i)) continue;  // slice invalid; per-entry checks unsafe
    index_t prev = -1;
    for (index_t p = b; p < e; ++p) {
      const index_t j = a.colind[static_cast<std::size_t>(p)];
      if (j < 0 || j >= a.cols) {
        rep.error(kRuleColindBounds,
                  "column " + detail::fmt(j) + " outside [0, " +
                      detail::fmt(a.cols) + ")",
                  i, j);
      } else if (j <= prev) {
        rep.error(kRuleColindSorted,
                  "column " + detail::fmt(j) + " after " + detail::fmt(prev) +
                      (j == prev ? " (duplicate)" : " (unsorted)"),
                  i, j);
      }
      prev = j;
      if (opt.check_values && p < static_cast<index_t>(a.values.size())) {
        const T v = a.values[static_cast<std::size_t>(p)];
        if (!std::isfinite(static_cast<double>(v)))
          rep.error(kRuleValuesFinite,
                    std::string("non-finite value ") + detail::fmt(v), i, j);
      }
    }
  }

  const bool structure_ok = out.ok();

  if (opt.check_symmetry && structure_ok) {
    if (a.rows != a.cols) {
      rep.error(kRuleShapeSquare, "symmetry check on " + detail::fmt(a.rows) +
                                      "x" + detail::fmt(a.cols) + " matrix");
    } else {
      for (index_t i = 0; i < a.rows; ++i) {
        const auto cols_i = a.row_cols(i);
        const auto vals_i = a.row_vals(i);
        for (std::size_t p = 0; p < cols_i.size(); ++p) {
          const index_t j = cols_i[p];
          if (j <= i) continue;  // check each pair once, from the upper side
          const index_t q = a.find(j, i);
          if (q < 0) {
            rep.warning(kRuleSymPattern,
                        "entry (" + detail::fmt(i) + "," + detail::fmt(j) +
                            ") has no transpose partner",
                        i, j);
          } else {
            const double d = std::abs(
                static_cast<double>(vals_i[p]) -
                static_cast<double>(a.values[static_cast<std::size_t>(q)]));
            if (d > opt.symmetry_tol)
              rep.warning(kRuleSymValue,
                          "|a_ij - a_ji| = " + detail::fmt(d) +
                              " exceeds tol " + detail::fmt(opt.symmetry_tol),
                          i, j);
          }
        }
      }
    }
  }

  if (opt.check_spd && structure_ok && a.rows == a.cols) {
    index_t non_dominant = 0;
    for (index_t i = 0; i < a.rows; ++i) {
      const auto cols_i = a.row_cols(i);
      const auto vals_i = a.row_vals(i);
      double diag = 0.0, off_abs = 0.0;
      bool has_diag = false;
      for (std::size_t p = 0; p < cols_i.size(); ++p) {
        if (cols_i[p] == i) {
          diag = static_cast<double>(vals_i[p]);
          has_diag = true;
        } else {
          off_abs += std::abs(static_cast<double>(vals_i[p]));
        }
      }
      if (!has_diag) {
        rep.error(kRuleSpdDiagPresent, "row has no stored diagonal", i, i);
      } else if (!(diag > 0.0)) {
        rep.warning(kRuleSpdDiagPositive,
                    "diagonal " + detail::fmt(diag) + " is not positive", i, i);
      } else if (diag < off_abs) {
        ++non_dominant;
      }
    }
    if (non_dominant > 0)
      rep.info(kRuleSpdDominance,
               detail::fmt(non_dominant) +
                   " row(s) not diagonally dominant (heuristic only)");
  }

  return out;
}

/// Lint a COO matrix by checking bounds/finiteness directly (COO carries no
/// ordering invariant), reusing the CSR rule ids.
template <class T>
Diagnostics analyze(const Coo<T>& a, const LintOptions& opt = {},
                    const std::string& object = "A(coo)") {
  Diagnostics out;
  detail::Reporter rep(out, object, opt.max_per_rule);
  if (a.rows < 0 || a.cols < 0) {
    rep.error(kRuleShapeNonNegative, "rows=" + detail::fmt(a.rows) +
                                         " cols=" + detail::fmt(a.cols));
    return out;
  }
  for (std::size_t k = 0; k < a.entries.size(); ++k) {
    const Triplet<T>& t = a.entries[k];
    if (t.row < 0 || t.row >= a.rows || t.col < 0 || t.col >= a.cols)
      rep.error(kRuleColindBounds,
                "entry " + detail::fmt(k) + " at (" + detail::fmt(t.row) +
                    "," + detail::fmt(t.col) + ") outside " +
                    detail::fmt(a.rows) + "x" + detail::fmt(a.cols),
                t.row, t.col);
    if (opt.check_values && !std::isfinite(static_cast<double>(t.value)))
      rep.error(kRuleValuesFinite,
                std::string("non-finite value ") + detail::fmt(t.value),
                t.row, t.col);
  }
  return out;
}

// --- triangular factors -----------------------------------------------------

/// Lint a split triangular factor (split_lu() convention: L unit-lower with
/// stored diagonal, U upper with stored diagonal).
template <class T>
Diagnostics analyze_triangular(const Csr<T>& f, Triangle tri,
                               bool expect_unit_diag = false,
                               const LintOptions& opt = {},
                               const std::string& object = "factor") {
  Diagnostics out = analyze(f, opt, object);
  if (!out.ok()) return out;  // per-entry scans below assume sane structure
  detail::Reporter rep(out, object, opt.max_per_rule);
  if (f.rows != f.cols) {
    rep.error(kRuleShapeSquare,
              detail::fmt(f.rows) + "x" + detail::fmt(f.cols));
    return out;
  }
  for (index_t i = 0; i < f.rows; ++i) {
    const auto cols_i = f.row_cols(i);
    const auto vals_i = f.row_vals(i);
    bool has_diag = false;
    for (std::size_t p = 0; p < cols_i.size(); ++p) {
      const index_t j = cols_i[p];
      const bool outside =
          (tri == Triangle::kLower) ? (j > i) : (j < i);
      if (outside)
        rep.error(kRuleTriStructure,
                  "entry on the wrong side of the diagonal", i, j);
      if (j == i) {
        has_diag = true;
        const double d = static_cast<double>(vals_i[p]);
        if (d == 0.0)
          rep.error(kRuleTriDiagNonzero, "zero diagonal", i, i);
        else if (expect_unit_diag && d != 1.0)
          rep.warning(kRuleTriDiagUnit,
                      "diagonal " + detail::fmt(d) +
                          " violates the unit-L convention",
                      i, i);
      }
    }
    if (!has_diag)
      rep.error(kRuleTriDiagPresent, "row has no stored diagonal", i, i);
  }
  return out;
}

/// Lint a combined ILU/ILUT/ParILU factor: CSR structure, diag_pos integrity,
/// pivot health.
template <class T>
Diagnostics analyze_ilu(const IluResult<T>& r, const LintOptions& opt = {},
                        const std::string& object = "LU") {
  Diagnostics out = analyze(r.lu, opt, object);
  if (!out.ok()) return out;
  detail::Reporter rep(out, object, opt.max_per_rule);
  if (r.lu.rows != r.lu.cols) {
    rep.error(kRuleShapeSquare,
              detail::fmt(r.lu.rows) + "x" + detail::fmt(r.lu.cols));
    return out;
  }
  if (r.diag_pos.size() != static_cast<std::size_t>(r.lu.rows)) {
    rep.error(kRuleIluDiagPos,
              "diag_pos size " + detail::fmt(r.diag_pos.size()) + " vs rows " +
                  detail::fmt(r.lu.rows));
    return out;
  }
  for (index_t i = 0; i < r.lu.rows; ++i) {
    const index_t d = r.diag_pos[static_cast<std::size_t>(i)];
    const index_t b = r.lu.rowptr[static_cast<std::size_t>(i)];
    const index_t e = r.lu.rowptr[static_cast<std::size_t>(i) + 1];
    if (d < b || d >= e ||
        r.lu.colind[static_cast<std::size_t>(d)] != i) {
      rep.error(kRuleIluDiagPos,
                "diag_pos[" + detail::fmt(i) + "] = " + detail::fmt(d) +
                    " does not point at (i,i)",
                i, i);
      continue;
    }
    if (r.lu.values[static_cast<std::size_t>(d)] == T{0})
      rep.error(kRuleIluPivotNonzero, "zero pivot", i, i);
  }
  return out;
}

// --- sparsification splits --------------------------------------------------

/// Lint an Â + S split against its source matrix A: both parts structurally
/// valid, patterns disjoint, their union exactly A (positions and values),
/// and every diagonal of A kept in Â (§3.2.2: the diagonal is never dropped).
template <class T>
Diagnostics analyze_sparsify(const Csr<T>& a, const SparsifySplit<T>& split,
                             const LintOptions& opt = {}) {
  Diagnostics out = analyze(split.a_hat, opt, "a_hat");
  out.merge(analyze(split.s, opt, "s"));
  if (!out.ok()) return out;
  detail::Reporter rep(out, "split", opt.max_per_rule);
  if (split.a_hat.rows != a.rows || split.a_hat.cols != a.cols ||
      split.s.rows != a.rows || split.s.cols != a.cols) {
    rep.error(kRuleSparsifyShape, "a_hat/s shape differs from A");
    return out;
  }
  for (index_t i = 0; i < a.rows; ++i) {
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    const auto hc = split.a_hat.row_cols(i);
    const auto hv = split.a_hat.row_vals(i);
    const auto sc = split.s.row_cols(i);
    const auto sv = split.s.row_vals(i);
    // Merge-walk Â and S against A: every A entry in exactly one part, with
    // an identical value; no part entry outside A's pattern.
    std::size_t ph = 0, ps = 0;
    for (std::size_t pa = 0; pa < ac.size(); ++pa) {
      const index_t j = ac[pa];
      const bool in_hat = ph < hc.size() && hc[ph] == j;
      const bool in_s = ps < sc.size() && sc[ps] == j;
      if (in_hat == in_s) {
        rep.error(kRuleSparsifyPartition,
                  in_hat ? "entry present in both a_hat and s"
                         : "entry of A missing from both a_hat and s",
                  i, j);
      } else {
        const T v = in_hat ? hv[ph] : sv[ps];
        if (v != av[pa])
          rep.error(kRuleSparsifyPartition, "entry value differs from A", i,
                    j);
      }
      if (j == i && !in_hat)
        rep.error(kRuleSparsifyDiag, "diagonal entry was dropped into S", i,
                  i);
      if (in_hat) ++ph;
      if (in_s) ++ps;
    }
    if (ph != hc.size())
      rep.error(kRuleSparsifyPartition,
                "a_hat has entries outside A's pattern", i);
    if (ps != sc.size())
      rep.error(kRuleSparsifyPartition, "s has entries outside A's pattern",
                i);
  }
  if (split.dropped != split.s.nnz())
    rep.warning(kRuleSparsifyCount,
                "dropped = " + detail::fmt(split.dropped) + " but nnz(S) = " +
                    detail::fmt(split.s.nnz()));
  return out;
}

}  // namespace spcg::analysis
