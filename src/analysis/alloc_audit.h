// Hot-path allocation auditor — pillar 3 of the analysis layer.
//
// ROADMAP Open item 4 gates the fused backend on "zero heap allocations per
// iteration in steady state". This header provides the tooling to *measure*
// that property instead of assuming it:
//
//   * When the library is built with -DSPCG_ALLOC_AUDIT=ON, alloc_audit.cc
//     replaces the global operator new/delete with counting hooks that bump
//     trivially-destructible thread-local counters (safe during TLS
//     teardown) before forwarding to malloc/free.
//   * AllocAuditScope is an RAII probe wired into the PCG iteration loop,
//     SolverSession::solve, the batched multi-RHS loop and the SolveService
//     worker. On destruction it reports the allocation delta observed on
//     the current thread to the process-wide AllocAudit registry, tagged
//     with a phase name and whether the phase claims to be steady-state.
//   * The registry accumulates per-phase totals and counts steady-state
//     violations (a steady scope that allocated). verify.h converts the
//     violations into `alloc.steady-state` diagnostics, which is how the
//     hard-fail mode of spcg-verify --audit turns an allocating iteration
//     into a nonzero exit.
//
// Cost model: without SPCG_ALLOC_AUDIT the hooks are not compiled and a
// disabled scope costs one relaxed atomic load at construction (same budget
// as a disabled trace Span), so the probes stay in release hot paths. With
// the hooks compiled but the registry disabled, each allocation pays two
// thread-local increments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/telemetry.h"

namespace spcg::analysis {

/// Whether the operator new/delete counting hooks are compiled into this
/// build (the SPCG_ALLOC_AUDIT CMake option). Without them every counter
/// below reads zero and scopes can only report "nothing observed".
constexpr bool alloc_audit_compiled() {
#ifdef SPCG_ALLOC_AUDIT
  return true;
#else
  return false;
#endif
}

/// Allocation counters for one thread: events and bytes since thread start.
struct AllocCounts {
  std::uint64_t allocs = 0;
  std::uint64_t deallocs = 0;
  std::uint64_t bytes = 0;  // total bytes requested by the counted allocs
};

/// The calling thread's counters (all zero when hooks are not compiled).
AllocCounts alloc_counts_this_thread() noexcept;

/// Per-phase accumulated audit statistics, as returned by snapshot().
struct PhaseAllocStats {
  std::string phase;
  std::uint64_t scopes = 0;  // completed AllocAuditScopes for this phase
  std::uint64_t allocs = 0;  // operator new calls observed inside them
  std::uint64_t bytes = 0;
  std::uint64_t steady_scopes = 0;      // scopes flagged steady-state
  std::uint64_t steady_violations = 0;  // steady scopes that allocated
  std::uint64_t steady_allocs = 0;      // allocs inside steady scopes
};

/// Process-wide registry of per-phase allocation deltas. Disabled by
/// default; spcg-verify --audit (and tests) enable it around a measured
/// region. record() is thread-safe; phase names should be short string
/// literals (the registry keys off the characters, not the pointer).
class AllocAudit {
 public:
  static AllocAudit& instance();

  [[nodiscard]] bool enabled() const noexcept;
  void set_enabled(bool on) noexcept;

  /// Fold one finished scope's delta into the per-phase totals.
  void record(const char* phase, const AllocCounts& delta, bool steady);

  /// Accumulated per-phase statistics, sorted by phase name.
  [[nodiscard]] std::vector<PhaseAllocStats> snapshot() const;

  /// Total steady-state violations across all phases since the last reset.
  [[nodiscard]] std::uint64_t steady_violations() const noexcept;

  /// Drop all accumulated statistics (the enabled flag is untouched).
  void reset();

 private:
  AllocAudit() = default;
  struct Impl;
  Impl& impl() const;
};

/// Appends the registry's per-phase totals as telemetry counter samples
/// ("alloc.<phase>.allocs" / ".bytes" / ".steady_violations"), so owners of
/// a TelemetryRegistry (SolveService, CLIs) can expose audit counts next to
/// their own counters. No samples when the hooks are not compiled.
void append_alloc_counters(std::vector<CounterSample>& out);

/// RAII probe: snapshots the calling thread's counters at construction and
/// reports the delta to AllocAudit::instance() at destruction, tagged with
/// `phase`. `steady_state` marks scopes the zero-allocation contract covers
/// (e.g. every PCG iteration after the first); a nonzero delta inside one
/// counts as a violation. `phase` must outlive the scope — pass a literal.
class AllocAuditScope {
 public:
  explicit AllocAuditScope(const char* phase,
                           bool steady_state = false) noexcept;
  ~AllocAuditScope();

  AllocAuditScope(const AllocAuditScope&) = delete;
  AllocAuditScope& operator=(const AllocAuditScope&) = delete;

  /// Allocation delta on this thread since construction (zeros when the
  /// audit is disabled or the hooks are not compiled).
  [[nodiscard]] AllocCounts delta() const noexcept;

 private:
  const char* phase_;
  bool steady_;
  bool active_;  // audit was enabled at construction
  AllocCounts start_;
};

}  // namespace spcg::analysis
