#include "analysis/alloc_audit.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>

namespace spcg::analysis {
namespace {

// Per-thread counters. Trivially constructible and destructible on purpose:
// the hooks may run before this TU's dynamic initializers and after TLS
// destructors have started tearing other objects down, so the counters must
// need neither construction nor destruction to be safe to touch.
struct ThreadCounters {
  std::uint64_t allocs;
  std::uint64_t deallocs;
  std::uint64_t bytes;
};
thread_local ThreadCounters t_counters;  // zero-initialized

}  // namespace

AllocCounts alloc_counts_this_thread() noexcept {
  return {t_counters.allocs, t_counters.deallocs, t_counters.bytes};
}

// --- registry ---------------------------------------------------------------

struct AllocAudit::Impl {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> violations{0};
  mutable std::mutex mu;
  // Heterogeneous lookup so steady-path record() calls on an existing phase
  // build no std::string temporary (and therefore allocate nothing).
  std::map<std::string, PhaseAllocStats, std::less<>> phases;
};

AllocAudit::Impl& AllocAudit::impl() const {
  static Impl impl;
  return impl;
}

AllocAudit& AllocAudit::instance() {
  static AllocAudit audit;
  return audit;
}

bool AllocAudit::enabled() const noexcept {
  return impl().enabled.load(std::memory_order_relaxed);
}

void AllocAudit::set_enabled(bool on) noexcept {
  impl().enabled.store(on, std::memory_order_relaxed);
}

void AllocAudit::record(const char* phase, const AllocCounts& delta,
                        bool steady) {
  // The registry's own bookkeeping may allocate (first record of a phase
  // inserts a map node). The recording scope excludes it by computing its
  // delta first, but an ENCLOSING scope (a steady "transient.step" wrapping
  // "pcg.iteration" scopes) would still see it — so rewind this thread's
  // counters by whatever record() itself allocated before returning.
  const AllocCounts before = alloc_counts_this_thread();
  Impl& im = impl();
  const std::uint64_t allocs = delta.allocs;
  const bool violation = steady && allocs > 0;
  if (violation) im.violations.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    auto it = im.phases.find(std::string_view(phase));
    if (it == im.phases.end()) {
      it = im.phases.emplace(phase, PhaseAllocStats{}).first;
      it->second.phase = phase;
    }
    PhaseAllocStats& s = it->second;
    ++s.scopes;
    s.allocs += allocs;
    s.bytes += delta.bytes;
    if (steady) {
      ++s.steady_scopes;
      s.steady_allocs += allocs;
      if (violation) ++s.steady_violations;
    }
  }
  const AllocCounts after = alloc_counts_this_thread();
  t_counters.allocs -= after.allocs - before.allocs;
  t_counters.deallocs -= after.deallocs - before.deallocs;
  t_counters.bytes -= after.bytes - before.bytes;
}

std::vector<PhaseAllocStats> AllocAudit::snapshot() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  std::vector<PhaseAllocStats> out;
  out.reserve(im.phases.size());
  for (const auto& [name, stats] : im.phases) out.push_back(stats);
  return out;
}

std::uint64_t AllocAudit::steady_violations() const noexcept {
  return impl().violations.load(std::memory_order_relaxed);
}

void AllocAudit::reset() {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  im.phases.clear();
  im.violations.store(0, std::memory_order_relaxed);
}

void append_alloc_counters(std::vector<CounterSample>& out) {
  if (!alloc_audit_compiled()) return;
  for (const PhaseAllocStats& s : AllocAudit::instance().snapshot()) {
    out.push_back({"alloc." + s.phase + ".allocs", s.allocs});
    out.push_back({"alloc." + s.phase + ".bytes", s.bytes});
    out.push_back(
        {"alloc." + s.phase + ".steady_violations", s.steady_violations});
  }
}

// --- scope ------------------------------------------------------------------

AllocAuditScope::AllocAuditScope(const char* phase,
                                 bool steady_state) noexcept
    : phase_(phase),
      steady_(steady_state),
      active_(AllocAudit::instance().enabled()) {
  if (active_) start_ = alloc_counts_this_thread();
}

AllocCounts AllocAuditScope::delta() const noexcept {
  if (!active_) return {};
  const AllocCounts now = alloc_counts_this_thread();
  return {now.allocs - start_.allocs, now.deallocs - start_.deallocs,
          now.bytes - start_.bytes};
}

AllocAuditScope::~AllocAuditScope() {
  if (!active_) return;
  // The delta is computed before record() runs, so the registry's own
  // bookkeeping allocations (first-phase map insertion) are never counted
  // against the scope. Swallow bad_alloc rather than terminate: the audit
  // is observability, not control flow.
  try {
    AllocAudit::instance().record(phase_, delta(), steady_);
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

}  // namespace spcg::analysis

// --- global operator new/delete hooks ---------------------------------------
//
// Compiled only under SPCG_ALLOC_AUDIT. Replacing these in a static library
// works because this TU is always pulled in: the AllocAudit registry above
// is referenced by the probes wired into the solver and runtime layers.

#ifdef SPCG_ALLOC_AUDIT

namespace {

void* counted_alloc(std::size_t size) {
  // malloc(0) may return nullptr; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  ++spcg::analysis::t_counters.allocs;
  spcg::analysis::t_counters.bytes += size;
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  const auto a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  ++spcg::analysis::t_counters.allocs;
  spcg::analysis::t_counters.bytes += size;
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  ++spcg::analysis::t_counters.deallocs;
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

#endif  // SPCG_ALLOC_AUDIT
