#include "analysis/verify.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "support/expo.h"

namespace spcg::analysis {

std::uint64_t ulp_distance(double x, double y) {
  if (std::isnan(x) || std::isnan(y))
    return std::numeric_limits<std::uint64_t>::max();
  const auto bx = std::bit_cast<std::uint64_t>(x);
  const auto by = std::bit_cast<std::uint64_t>(y);
  if (bx == by) return 0;  // covers +0 == +0 and -0 == -0
  if (x == 0.0 && y == 0.0) return 0;  // -0 vs +0
  if ((x < 0.0) != (y < 0.0))
    return std::numeric_limits<std::uint64_t>::max();
  return bx > by ? bx - by : by - bx;
}

Diagnostics verify_partition(const Partition& p, std::size_t max_per_rule) {
  Diagnostics out;
  detail::Reporter rep(out, "partition", max_per_rule);
  if (p.parts < 1) {
    rep.error(kRuleDistPartition, "parts = " + detail::fmt(p.parts));
    return out;
  }
  if (static_cast<index_t>(p.owned.size()) != p.parts ||
      static_cast<index_t>(p.part_of.size()) != p.global_rows) {
    rep.error(kRuleDistPartition,
              "owned lists " + detail::fmt(p.owned.size()) + " for " +
                  detail::fmt(p.parts) + " parts, part_of size " +
                  detail::fmt(p.part_of.size()) + " for " +
                  detail::fmt(p.global_rows) + " rows");
    return out;
  }
  std::vector<char> seen(static_cast<std::size_t>(p.global_rows), 0);
  for (index_t r = 0; r < p.parts; ++r) {
    index_t prev = -1;
    for (const index_t g : p.owned[static_cast<std::size_t>(r)]) {
      if (g < 0 || g >= p.global_rows) {
        rep.error(kRuleDistPartition,
                  "part " + detail::fmt(r) + " owns out-of-range row " +
                      detail::fmt(g));
        continue;
      }
      if (g <= prev)
        rep.error(kRuleDistPartition,
                  "owned list of part " + detail::fmt(r) +
                      " not strictly ascending at row " + detail::fmt(g),
                  g);
      if (seen[static_cast<std::size_t>(g)])
        rep.error(kRuleDistPartition,
                  "row " + detail::fmt(g) + " owned twice", g);
      if (p.part_of[static_cast<std::size_t>(g)] != r)
        rep.error(kRuleDistPartition,
                  "part_of[" + detail::fmt(g) + "] = " +
                      detail::fmt(p.part_of[static_cast<std::size_t>(g)]) +
                      " but part " + detail::fmt(r) + " owns the row",
                  g);
      seen[static_cast<std::size_t>(g)] = 1;
      prev = g;
    }
  }
  for (index_t g = 0; g < p.global_rows; ++g) {
    if (!seen[static_cast<std::size_t>(g)])
      rep.error(kRuleDistPartition, "row " + detail::fmt(g) + " unowned", g);
  }
  return out;
}

Diagnostics verify_reduction_determinism(const Partition& p,
                                         std::span<const double> contributions,
                                         std::uint64_t max_ulps,
                                         std::size_t max_per_rule) {
  Diagnostics out = verify_partition(p, max_per_rule);
  if (!out.ok()) return out;  // the simulation indexes through owned lists
  detail::Reporter rep(out, "reduce", max_per_rule);
  if (contributions.size() != static_cast<std::size_t>(p.global_rows)) {
    rep.error(kRuleDistReduce,
              "contribution vector size " +
                  detail::fmt(contributions.size()) + " vs " +
                  detail::fmt(p.global_rows) + " rows");
    return out;
  }

  // Serial reference: one ascending-global sweep. Σ|cᵢ| sets the magnitude
  // scale for the tolerance below — for near-cancelling sums the result is
  // many ULPs of *itself* away from any reassociation, so measuring the gap
  // in ULPs of the result would flag benign schedules (classic summation
  // error analysis: |S_blocked − S_serial| ≲ n·eps·Σ|cᵢ|, not n·eps·|S|).
  double serial = 0.0;
  double sum_abs = 0.0;
  for (const double c : contributions) {
    serial += c;
    sum_abs += std::abs(c);
  }

  // The comm-layer schedule: per-part partials in local (ascending-global)
  // order, folded in ascending rank order — run twice to catch any
  // non-reproducibility in the schedule itself.
  auto simulate = [&] {
    double total = 0.0;
    for (index_t r = 0; r < p.parts; ++r) {
      double partial = 0.0;
      for (const index_t g : p.owned[static_cast<std::size_t>(r)])
        partial += contributions[static_cast<std::size_t>(g)];
      total += partial;
    }
    return total;
  };
  const double first = simulate();
  const double second = simulate();
  if (std::bit_cast<std::uint64_t>(first) !=
      std::bit_cast<std::uint64_t>(second)) {
    rep.error(kRuleDistReduce,
              "rank-order reduction is not bitwise reproducible");
    return out;
  }

  if (p.parts == 1) {
    // One part owns every row in ascending order, so the fold *is* the
    // serial sum; anything else means the schedule reordered terms.
    if (std::bit_cast<std::uint64_t>(first) !=
        std::bit_cast<std::uint64_t>(serial))
      rep.error(kRuleDistReduce,
                "parts == 1 reduction differs from the serial sum (" +
                    detail::fmt(first) + " vs " + detail::fmt(serial) + ")");
    return out;
  }
  // Tolerance: max_ulps ULPs *at the magnitude of Σ|cᵢ|*, so a cancelling
  // sum (|S| ≪ Σ|cᵢ|) is judged against the data it actually summed.
  const double ulp_at_scale =
      std::nextafter(sum_abs, std::numeric_limits<double>::infinity()) -
      sum_abs;
  const double gap = std::abs(first - serial);
  const double tol = static_cast<double>(max_ulps) * ulp_at_scale;
  if (!(gap <= tol)) {  // NaN gap must fail too
    rep.error(kRuleDistReduce,
              "rank-order sum " + detail::fmt(first) + " is " +
                  detail::fmt(gap) + " from the serial sum " +
                  detail::fmt(serial) + ", exceeding " + detail::fmt(max_ulps) +
                  " ULPs at the summand magnitude " + detail::fmt(sum_abs));
  } else {
    rep.info(kRuleDistReduce,
             "rank-order sum within " + detail::fmt(gap) + " of the serial "
             "sum (bound " + detail::fmt(max_ulps) + " ULPs at magnitude " +
                 detail::fmt(sum_abs) + ")");
  }
  return out;
}

Diagnostics alloc_audit_diagnostics(std::size_t max_per_rule) {
  Diagnostics out;
  detail::Reporter rep(out, "alloc", max_per_rule);
  if (!alloc_audit_compiled()) {
    rep.info(kRuleAllocSteadyState,
             "allocation hooks not compiled (build with -DSPCG_ALLOC_AUDIT=ON"
             " to measure)");
    return out;
  }
  for (const PhaseAllocStats& s : AllocAudit::instance().snapshot()) {
    if (s.steady_violations > 0)
      rep.error(kRuleAllocSteadyState,
                "phase " + s.phase + ": " +
                    detail::fmt(s.steady_violations) + " of " +
                    detail::fmt(s.steady_scopes) +
                    " steady-state scope(s) allocated (" +
                    detail::fmt(s.steady_allocs) + " allocation(s) total)");
    else
      rep.info(kRuleAllocSteadyState,
               "phase " + s.phase + ": " + detail::fmt(s.allocs) +
                   " allocation(s) / " + detail::fmt(s.bytes) + " byte(s) in " +
                   detail::fmt(s.scopes) + " scope(s), steady-state clean");
  }
  return out;
}

std::string diagnostics_to_json(const Diagnostics& d) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const Diagnostic& item : d.items()) {
    if (!first) os << ",";
    first = false;
    os << "{\"severity\":" << json_quote(to_string(item.severity))
       << ",\"rule\":" << json_quote(item.rule)
       << ",\"object\":" << json_quote(item.object)
       << ",\"row\":" << item.row << ",\"col\":" << item.col
       << ",\"message\":" << json_quote(item.message) << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace spcg::analysis
