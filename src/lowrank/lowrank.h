// Simplified block low-rank analysis — the in-repo stand-in for the
// STRUMPACK/HSS comparison of paper §4.6 (see DESIGN.md §3).
//
// STRUMPACK compresses off-diagonal blocks of frontal matrices when their
// numerical rank at a given tolerance is low. The paper's finding is that
// incomplete factors almost never expose such blocks. We reproduce that
// finding directly: tile the factor's off-diagonal region into leaf_size
// blocks, densify each candidate, measure its numerical rank with a Jacobi
// SVD, and report how often compression would trigger (rank <= max_rank and
// the block is big enough to be worth it — the "minimum separator size"
// analogue).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace spcg {

/// Singular values of a dense row-major m x n matrix (one-sided Jacobi).
/// Returned in descending order. Intended for small blocks (m, n <= ~128).
std::vector<double> dense_singular_values(std::vector<double> a, index_t m,
                                          index_t n);

/// Numerical rank: number of singular values > rel_tol * sigma_max
/// (and > abs_tol).
index_t numerical_rank(const std::vector<double>& singular_values,
                       double rel_tol, double abs_tol);

struct LowRankOptions {
  index_t leaf_size = 32;       // tile edge
  double rel_tol = 1e-2;        // STRUMPACK-style relative compression tol
  double abs_tol = 1e-10;
  index_t min_separator = 32;   // blocks with fewer nonzero rows/cols skipped
  double max_rank_fraction = 0.5;  // compress when rank <= fraction * size
};

struct LowRankStudy {
  index_t blocks_total = 0;      // candidate off-diagonal tiles examined
  index_t blocks_nonempty = 0;   // tiles holding at least one nonzero
  index_t blocks_eligible = 0;   // nonempty and >= min_separator occupancy
  index_t blocks_compressed = 0; // low rank AND rank storage beats sparse
  double avg_rank_fraction = 0.0;  // mean rank/size over eligible tiles
  double stored_entries_dense = 0.0;      // dense storage of eligible tiles
  double stored_entries_compressed = 0.0; // after rank-r factorized storage

  [[nodiscard]] double trigger_rate() const {
    return blocks_nonempty > 0
               ? static_cast<double>(blocks_compressed) /
                     static_cast<double>(blocks_nonempty)
               : 0.0;
  }
};

/// Analyze the strictly-lower off-diagonal tiles of a (factor) matrix.
LowRankStudy analyze_factor_blocks(const Csr<double>& factor,
                                   const LowRankOptions& opt = {});

}  // namespace spcg
