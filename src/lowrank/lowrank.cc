#include "lowrank/lowrank.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace spcg {

std::vector<double> dense_singular_values(std::vector<double> a, index_t m,
                                          index_t n) {
  SPCG_CHECK(m > 0 && n > 0);
  SPCG_CHECK(a.size() == static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  // One-sided Jacobi on columns: rotate column pairs until all are
  // pairwise orthogonal; singular values are then the column norms.
  auto col = [&](index_t j, index_t i) -> double& {
    return a[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(j)];
  };
  const int max_sweeps = 30;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (index_t i = 0; i < m; ++i) {
          app += col(p, i) * col(p, i);
          aqq += col(q, i) * col(q, i);
          apq += col(p, i) * col(q, i);
        }
        // Zero columns are already orthogonal to everything; skipping them
        // also avoids a 0/0 in the rotation angle below.
        if (app == 0.0 || aqq == 0.0) continue;
        off = std::max(off, std::abs(apq) / std::sqrt(app * aqq));
        if (std::abs(apq) < 1e-15 * std::sqrt(app * aqq)) continue;
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(1.0, tau) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (index_t i = 0; i < m; ++i) {
          const double vp = col(p, i), vq = col(q, i);
          col(p, i) = c * vp - s * vq;
          col(q, i) = s * vp + c * vq;
        }
      }
    }
    if (off < 1e-12) break;
  }
  std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (index_t i = 0; i < m; ++i) acc += col(j, i) * col(j, i);
    sigma[static_cast<std::size_t>(j)] = std::sqrt(acc);
  }
  std::sort(sigma.rbegin(), sigma.rend());
  return sigma;
}

index_t numerical_rank(const std::vector<double>& s, double rel_tol,
                       double abs_tol) {
  if (s.empty()) return 0;
  const double cutoff = std::max(abs_tol, rel_tol * s.front());
  index_t rank = 0;
  for (const double v : s) {
    if (v > cutoff) ++rank;
  }
  return rank;
}

LowRankStudy analyze_factor_blocks(const Csr<double>& factor,
                                   const LowRankOptions& opt) {
  SPCG_CHECK(factor.rows == factor.cols);
  SPCG_CHECK(opt.leaf_size > 1);
  const index_t n = factor.rows;
  const index_t tiles = (n + opt.leaf_size - 1) / opt.leaf_size;

  LowRankStudy study;
  double rank_fraction_sum = 0.0;

  // Count nonzeros per strictly-lower tile first (cheap pass).
  std::vector<index_t> tile_nnz(
      static_cast<std::size_t>(tiles) * static_cast<std::size_t>(tiles), 0);
  for (index_t i = 0; i < n; ++i) {
    const index_t ti = i / opt.leaf_size;
    for (index_t p = factor.rowptr[static_cast<std::size_t>(i)];
         p < factor.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = factor.colind[static_cast<std::size_t>(p)];
      const index_t tj = j / opt.leaf_size;
      if (tj < ti)
        ++tile_nnz[static_cast<std::size_t>(ti) * static_cast<std::size_t>(tiles) +
                   static_cast<std::size_t>(tj)];
    }
  }

  std::vector<double> block;
  for (index_t ti = 1; ti < tiles; ++ti) {
    for (index_t tj = 0; tj < ti; ++tj) {
      ++study.blocks_total;
      const index_t nnz =
          tile_nnz[static_cast<std::size_t>(ti) * static_cast<std::size_t>(tiles) +
                   static_cast<std::size_t>(tj)];
      if (nnz == 0) continue;
      ++study.blocks_nonempty;

      const index_t i0 = ti * opt.leaf_size;
      const index_t j0 = tj * opt.leaf_size;
      const index_t bm = std::min(opt.leaf_size, n - i0);
      const index_t bn = std::min(opt.leaf_size, n - j0);

      // Densify the tile.
      block.assign(static_cast<std::size_t>(bm) * static_cast<std::size_t>(bn),
                   0.0);
      index_t occupied_rows = 0;
      for (index_t i = i0; i < i0 + bm; ++i) {
        bool row_hit = false;
        for (index_t p = factor.rowptr[static_cast<std::size_t>(i)];
             p < factor.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
          const index_t j = factor.colind[static_cast<std::size_t>(p)];
          if (j >= j0 && j < j0 + bn) {
            block[static_cast<std::size_t>(i - i0) * static_cast<std::size_t>(bn) +
                  static_cast<std::size_t>(j - j0)] =
                factor.values[static_cast<std::size_t>(p)];
            row_hit = true;
          }
        }
        if (row_hit) ++occupied_rows;
      }
      // The "minimum separator size" analogue: tiny interfaces are not worth
      // compressing (STRUMPACK skips them the same way).
      if (occupied_rows < opt.min_separator &&
          std::min(bm, bn) >= opt.min_separator)
        continue;
      if (std::min(bm, bn) < opt.min_separator) continue;
      ++study.blocks_eligible;

      const std::vector<double> sv = dense_singular_values(block, bm, bn);
      const index_t rank = numerical_rank(sv, opt.rel_tol, opt.abs_tol);
      const double size = static_cast<double>(std::min(bm, bn));
      rank_fraction_sum += static_cast<double>(rank) / size;
      study.stored_entries_dense += static_cast<double>(bm) * static_cast<double>(bn);
      const double rank_storage =
          static_cast<double>(rank) * static_cast<double>(bm + bn);
      study.stored_entries_compressed += rank_storage;
      // STRUMPACK-style trigger: the rank must be genuinely low AND the
      // factorized form must beat the sparse storage the factor already
      // uses. Incomplete factors keep tiles sparse, which is exactly why
      // compression rarely pays off for them (paper SS4.6).
      if (static_cast<double>(rank) <= opt.max_rank_fraction * size &&
          rank_storage < static_cast<double>(nnz))
        ++study.blocks_compressed;
    }
  }
  if (study.blocks_eligible > 0)
    study.avg_rank_fraction =
        rank_fraction_sum / static_cast<double>(study.blocks_eligible);
  return study;
}

}  // namespace spcg
