// In-process Transport backing and the group/endpoint factories.
//
// The in-process backing keeps comm.h's original design: double-banked
// per-rank reduce slots and zero-copy publication windows, one barrier phase
// per collective. The std::barrier of the original is replaced by a
// condition-variable phase barrier so the collective-timeout contract
// (TransportOptions::collective_timeout_seconds) is enforceable — a rank
// that never arrives wakes its peers with CommAborted instead of hanging
// them forever.
#include "dist/transport.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "support/timer.h"

namespace spcg {
namespace detail {

// Backing factories, defined in transport_shm.cc / transport_socket.cc.
std::vector<std::unique_ptr<Transport>> make_shm_endpoints(
    index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt);
std::unique_ptr<Transport> attach_shm_endpoint(
    index_t rank, index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt);
std::vector<std::unique_ptr<Transport>> make_socket_endpoints(
    index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt);
std::unique_ptr<Transport> make_socket_endpoint(
    index_t rank, index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt, int* bound_port);

}  // namespace detail

namespace {

/// Shared state of one in-process group: the phase barrier plus the
/// double-banked reduce slots and window pointers.
struct InProcShared {
  explicit InProcShared(index_t parts_, double timeout_)
      : parts(parts_), timeout(timeout_) {
    for (auto& bank : slots)
      bank.resize(static_cast<std::size_t>(parts));
    for (auto& bank : windows)
      bank.assign(static_cast<std::size_t>(parts), nullptr);
  }

  index_t parts;
  double timeout;

  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t phase = 0;  // completed barrier phases
  index_t arrived = 0;      // arrivals in the current phase
  std::atomic<bool> abort{false};

  struct alignas(64) Slot {
    std::array<double, Transport::kReduceWidth> v{};
  };
  std::array<std::vector<Slot>, 2> slots;            // reduce banks
  std::array<std::vector<const void*>, 2> windows;   // exchange banks
};

class InProcTransport final : public Transport {
 public:
  InProcTransport(std::shared_ptr<InProcShared> shared, index_t rank)
      : shared_(std::move(shared)), rank_(rank) {
    SPCG_CHECK(rank >= 0 && rank < shared_->parts);
  }

  [[nodiscard]] index_t rank() const override { return rank_; }
  [[nodiscard]] index_t size() const override { return shared_->parts; }

  void barrier() override { wait_phase(arrive()); }

  void reduce_begin(std::span<const double> vals) override {
    SPCG_CHECK(vals.size() >= 1 && vals.size() <= kReduceWidth);
    const auto bank = static_cast<std::size_t>(reduce_seq_++ & 1u);
    auto& slot = shared_->slots[bank][static_cast<std::size_t>(rank_)];
    for (std::size_t j = 0; j < vals.size(); ++j) slot.v[j] = vals[j];
    reduce_bank_ = bank;
    reduce_width_ = vals.size();
    reduce_phase_ = arrive();
  }

  void reduce_end(std::span<double> out) override {
    SPCG_CHECK(out.size() == reduce_width_);
    wait_phase(reduce_phase_);
    const auto& bank = shared_->slots[reduce_bank_];
    for (std::size_t j = 0; j < reduce_width_; ++j) {
      double acc = 0.0;
      for (index_t r = 0; r < shared_->parts; ++r)
        acc += bank[static_cast<std::size_t>(r)].v[j];
      out[j] = acc;
    }
  }

  void window_begin(const void* data, std::size_t bytes) override {
    (void)bytes;  // zero-copy: the pointer itself is published
    const auto bank = static_cast<std::size_t>(window_seq_++ & 1u);
    shared_->windows[bank][static_cast<std::size_t>(rank_)] = data;
    window_bank_ = bank;
    window_phase_ = arrive();
  }

  void window_end() override { wait_phase(window_phase_); }

  [[nodiscard]] const void* window(index_t r) const override {
    return shared_->windows[window_bank_][static_cast<std::size_t>(r)];
  }

  void abort() noexcept override {
    shared_->abort.store(true, std::memory_order_relaxed);
    shared_->cv.notify_all();
  }

  [[nodiscard]] bool aborted() const override {
    return shared_->abort.load(std::memory_order_relaxed);
  }

 private:
  /// Arrive at the barrier, completing the phase when last. Returns the
  /// phase this arrival belongs to (pass to wait_phase).
  std::uint64_t arrive() {
    const std::lock_guard<std::mutex> lock(shared_->mu);
    const std::uint64_t ph = shared_->phase;
    if (++shared_->arrived >= shared_->parts) {
      shared_->arrived = 0;
      ++shared_->phase;
      shared_->cv.notify_all();
    }
    return ph;
  }

  void wait_phase(std::uint64_t ph) {
    WallTimer timer;
    std::unique_lock<std::mutex> lock(shared_->mu);
    const auto deadline =
        MonotonicClock::now() +
        std::chrono::duration_cast<MonotonicClock::duration>(
            std::chrono::duration<double>(shared_->timeout));
    while (shared_->phase <= ph &&
           !shared_->abort.load(std::memory_order_relaxed)) {
      if (shared_->cv.wait_until(lock, deadline) ==
          std::cv_status::timeout &&
          shared_->phase <= ph &&
          !shared_->abort.load(std::memory_order_relaxed)) {
        // The dead-rank containment contract: mark the group aborted so
        // every peer converges on the same failure, then give up.
        shared_->abort.store(true, std::memory_order_relaxed);
        shared_->cv.notify_all();
        stats_.wait_seconds += timer.seconds();
        throw CommAborted("collective timed out waiting for peers");
      }
    }
    stats_.wait_seconds += timer.seconds();
    if (shared_->abort.load(std::memory_order_relaxed)) throw CommAborted();
  }

  std::shared_ptr<InProcShared> shared_;
  index_t rank_;
  std::uint64_t reduce_seq_ = 0;
  std::uint64_t window_seq_ = 0;
  std::size_t reduce_bank_ = 0;
  std::size_t reduce_width_ = 0;
  std::uint64_t reduce_phase_ = 0;
  std::size_t window_bank_ = 0;
  std::uint64_t window_phase_ = 0;
};

/// Generic group over a vector of connected endpoints (any backing).
class VectorGroup final : public TransportGroup {
 public:
  explicit VectorGroup(std::vector<std::unique_ptr<Transport>> endpoints)
      : endpoints_(std::move(endpoints)) {
    SPCG_CHECK(!endpoints_.empty());
  }

  [[nodiscard]] index_t size() const override {
    return static_cast<index_t>(endpoints_.size());
  }
  [[nodiscard]] Transport& transport(index_t rank) override {
    SPCG_CHECK(rank >= 0 && rank < size());
    return *endpoints_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] bool aborted() const override {
    return endpoints_[0]->aborted();
  }

 private:
  std::vector<std::unique_ptr<Transport>> endpoints_;
};

std::vector<std::unique_ptr<Transport>> make_inproc_endpoints(
    index_t parts, const TransportOptions& opt) {
  auto shared =
      std::make_shared<InProcShared>(parts, opt.collective_timeout_seconds);
  std::vector<std::unique_ptr<Transport>> eps;
  eps.reserve(static_cast<std::size_t>(parts));
  for (index_t r = 0; r < parts; ++r)
    eps.push_back(std::make_unique<InProcTransport>(shared, r));
  return eps;
}

std::unique_ptr<Transport> maybe_inject_latency(
    std::unique_ptr<Transport> ep, const TransportOptions& opt) {
  if (opt.inject_latency_us == 0) return ep;
  return std::make_unique<InjectedLatencyTransport>(std::move(ep),
                                                    opt.inject_latency_us);
}

}  // namespace

std::unique_ptr<TransportGroup> make_transport_group(
    index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt) {
  SPCG_CHECK(parts >= 1);
  std::vector<std::unique_ptr<Transport>> eps;
  switch (opt.kind) {
    case TransportKind::kInProcess:
      eps = make_inproc_endpoints(parts, opt);
      break;
    case TransportKind::kSharedMemory:
      eps = detail::make_shm_endpoints(parts, window_bytes, opt);
      break;
    case TransportKind::kSocket:
      eps = detail::make_socket_endpoints(parts, window_bytes, opt);
      break;
  }
  if (opt.inject_latency_us > 0) {
    for (auto& ep : eps) ep = maybe_inject_latency(std::move(ep), opt);
  }
  return std::make_unique<VectorGroup>(std::move(eps));
}

std::unique_ptr<Transport> make_process_transport(
    index_t rank, index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt, int* bound_port) {
  SPCG_CHECK(parts >= 1);
  SPCG_CHECK(rank >= 0 && rank < parts);
  std::unique_ptr<Transport> ep;
  switch (opt.kind) {
    case TransportKind::kInProcess:
      SPCG_CHECK_MSG(false,
                     "in-process transport cannot span processes; use "
                     "make_transport_group");
      break;
    case TransportKind::kSharedMemory:
      SPCG_CHECK_MSG(!opt.shm_path.empty(),
                     "multi-process shm transport needs an explicit "
                     "TransportOptions::shm_path");
      ep = detail::attach_shm_endpoint(rank, parts, window_bytes, opt);
      break;
    case TransportKind::kSocket:
      ep = detail::make_socket_endpoint(rank, parts, window_bytes, opt,
                                        bound_port);
      break;
  }
  return maybe_inject_latency(std::move(ep), opt);
}

}  // namespace spcg
