// Pluggable cross-process transport for the distributed solver layer.
//
// A Transport is one rank's endpoint onto a P-rank group and carries exactly
// the primitives a distributed PCG iteration needs, all split-phase:
//   * reduce_begin/reduce_end — fused all-reduce of up to kReduceWidth
//     doubles, folded in ascending rank order (the determinism contract).
//   * window_begin/window_end/window — publish this rank's owned vector and,
//     after the phase, read any rank's publication (the halo-exchange
//     substrate; the typed gather lives in Communicator, dist/comm.h).
//   * barrier, abort — synchronization and failure propagation.
//
// Determinism contract (every backing): the reduction result is the
// ascending-rank-order fold of the per-rank partials, accumulated in double.
// It is therefore (a) bitwise identical on every rank, (b) bitwise
// reproducible run-to-run for a fixed rank count, and (c) for P == 1 equal
// to the serial accumulation — the property behind the P=1-bitwise gates.
// The socket transport preserves it by folding *once* (on the rank-0 hub)
// and broadcasting the folded IEEE-754 bits verbatim.
//
// Abort + bounded blocking: every blocking primitive observes the group's
// abort flag and a configurable collective timeout
// (TransportOptions::collective_timeout_seconds). A rank that dies
// mid-collective therefore surfaces CommAborted on its peers within the
// timeout instead of hanging the barrier forever; a timeout itself marks the
// group aborted so every rank converges on the same failure.
//
// Backings:
//   * kInProcess    — P std::thread ranks over shared memory of one process;
//     zero-copy windows, condition-variable phase barrier.
//   * kSharedMemory — a POSIX shared-memory segment (file under /dev/shm)
//     with an atomic monotonic-phase barrier; ranks may live in different
//     processes on one host.
//   * kSocket       — TCP star through the rank-0 hub with length-prefixed
//     framing; ranks may be separate processes (one host or several).
// Plus InjectedLatencyTransport, a decorator adding a configurable delay to
// every collective so communication-reduction wins are measurable on a
// single host.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "sparse/csr.h"
#include "support/error.h"

namespace spcg {

/// Thrown by collectives on ranks that observe another rank's abort (or a
/// collective timeout); the rank launcher treats it as secondary and
/// rethrows the originating error.
class CommAborted : public Error {
 public:
  CommAborted() : Error("communicator aborted by another rank") {}
  explicit CommAborted(const std::string& why) : Error(why) {}
};

/// Per-endpoint instrumentation, aggregated by the solver after a run.
struct CommStats {
  std::uint64_t allreduces = 0;
  std::uint64_t halo_exchanges = 0;
  std::uint64_t halo_bytes = 0;       // payload gathered by this rank
  double wait_seconds = 0.0;          // time blocked in collective waits
  double overlap_hidden_seconds = 0.0;  // compute done inside open collectives
};

enum class TransportKind {
  kInProcess,     // std::thread ranks, one address space
  kSharedMemory,  // POSIX shm segment, multi-process single-host
  kSocket,        // TCP star via rank-0 hub, length-prefixed frames
};

inline const char* to_string(TransportKind k) {
  switch (k) {
    case TransportKind::kInProcess: return "inproc";
    case TransportKind::kSharedMemory: return "shm";
    case TransportKind::kSocket: return "socket";
  }
  return "unknown";
}

/// Parse a CLI spelling ("inproc" | "shm" | "socket"); false on unknown.
inline bool parse_transport_kind(std::string_view name, TransportKind* out) {
  if (name == "inproc" || name == "in-process" || name == "inprocess") {
    *out = TransportKind::kInProcess;
  } else if (name == "shm" || name == "shared-memory") {
    *out = TransportKind::kSharedMemory;
  } else if (name == "socket" || name == "tcp") {
    *out = TransportKind::kSocket;
  } else {
    return false;
  }
  return true;
}

/// Configuration of a transport group / endpoint.
struct TransportOptions {
  TransportKind kind = TransportKind::kInProcess;
  /// Upper bound on any single blocking collective wait. Exceeding it marks
  /// the group aborted and throws CommAborted — the dead-rank containment
  /// contract every backing honors.
  double collective_timeout_seconds = 30.0;
  /// When > 0, every endpoint is wrapped in InjectedLatencyTransport adding
  /// this delay to each collective completion (models wire latency).
  std::uint32_t inject_latency_us = 0;
  /// kSharedMemory: segment path ("" = auto under /dev/shm, per-group).
  /// Multi-process ranks must agree on it.
  std::string shm_path;
  /// kSocket: hub address. Rank 0 listens on socket_port (0 = ephemeral,
  /// in-process groups only); workers connect to socket_host:socket_port.
  std::string socket_host = "127.0.0.1";
  int socket_port = 0;
};

/// One rank's endpoint. Not thread-safe; exactly one thread drives each
/// rank, all ranks issue the same collective sequence (SPMD), and at most
/// one collective is in flight per rank (begin/end strictly paired).
///
/// Buffer-reuse contract (inherited by every backing from the double-banked
/// design): a buffer passed to window_begin must stay unmodified until after
/// the *next* collective following window_end; a bank published to
/// reduce_begin may be rewritten after the next collective's wait completes.
/// Both solver bodies satisfy it because a reduction always follows an
/// exchange before its input vector is updated.
class Transport {
 public:
  /// Widest fused reduction supported ({dot, dot, norm^2, spare}).
  static constexpr std::size_t kReduceWidth = 4;

  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] virtual index_t rank() const = 0;
  [[nodiscard]] virtual index_t size() const = 0;

  /// Plain synchronization point (also closes the mutation window of a
  /// preceding exchange).
  virtual void barrier() = 0;

  /// Publish this rank's partials (1..kReduceWidth doubles) and arrive at
  /// the collective. Compute placed before reduce_end overlaps the other
  /// ranks' arrival.
  virtual void reduce_begin(std::span<const double> vals) = 0;
  /// Wait for every rank and write the rank-order fold; out.size() must
  /// equal the width passed to reduce_begin.
  virtual void reduce_end(std::span<double> out) = 0;

  /// Publish `bytes` bytes of this rank's owned data and arrive. The data
  /// must stay valid and unmodified per the buffer-reuse contract above.
  virtual void window_begin(const void* data, std::size_t bytes) = 0;
  /// Wait for all publications of the collective.
  virtual void window_end() = 0;
  /// Rank r's publication from the last completed window collective; valid
  /// until this rank begins its next collective.
  [[nodiscard]] virtual const void* window(index_t r) const = 0;

  /// Mark the group aborted and unblock peers; they throw CommAborted at
  /// their next (or current) collective wait. Call from the rank's top-level
  /// catch, outside any begin/end pair.
  virtual void abort() noexcept = 0;
  [[nodiscard]] virtual bool aborted() const = 0;

  [[nodiscard]] virtual const CommStats& stats() const { return stats_; }
  [[nodiscard]] virtual CommStats& mutable_stats() { return stats_; }

 protected:
  Transport() = default;
  CommStats stats_;
};

/// A connected group of P endpoints in one process (ranks driven by
/// std::threads). For multi-process groups each process instead builds its
/// single endpoint via make_process_transport below.
class TransportGroup {
 public:
  virtual ~TransportGroup() = default;
  TransportGroup(const TransportGroup&) = delete;
  TransportGroup& operator=(const TransportGroup&) = delete;

  [[nodiscard]] virtual index_t size() const = 0;
  [[nodiscard]] virtual Transport& transport(index_t rank) = 0;
  [[nodiscard]] virtual bool aborted() const = 0;

 protected:
  TransportGroup() = default;
};

/// Build an in-process group of `parts` connected endpoints of opt.kind.
/// `window_bytes` gives each rank's maximum window publication in bytes
/// (ignored by kInProcess, which publishes zero-copy; sizing for the shm
/// segment and socket frames otherwise). Endpoints are wrapped in
/// InjectedLatencyTransport when opt.inject_latency_us > 0.
std::unique_ptr<TransportGroup> make_transport_group(
    index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt = {});

/// Build this process's single endpoint of a multi-process group (kind must
/// be kSharedMemory or kSocket). Every process must pass identical `parts`,
/// `window_bytes` and rendezvous options (shm_path / socket host+port).
/// Rank 0 creates the rendezvous (shm segment / listening socket); other
/// ranks attach with retry until the collective timeout. For kSocket with
/// socket_port == 0, rank 0 binds an ephemeral port reported via
/// `bound_port` (the caller must communicate it to the workers out of band).
std::unique_ptr<Transport> make_process_transport(
    index_t rank, index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt, int* bound_port = nullptr);

/// Decorator adding a fixed delay to every collective completion — models
/// wire latency so communication-reduced solver bodies show measurable wins
/// on one host. The delay is accounted as wait time in the inner endpoint's
/// CommStats.
class InjectedLatencyTransport final : public Transport {
 public:
  InjectedLatencyTransport(std::unique_ptr<Transport> inner,
                           std::uint32_t delay_us)
      : inner_(std::move(inner)), delay_us_(delay_us) {
    SPCG_CHECK(inner_ != nullptr);
  }

  [[nodiscard]] index_t rank() const override { return inner_->rank(); }
  [[nodiscard]] index_t size() const override { return inner_->size(); }

  void barrier() override {
    inject();
    inner_->barrier();
  }
  void reduce_begin(std::span<const double> vals) override {
    inner_->reduce_begin(vals);
  }
  void reduce_end(std::span<double> out) override {
    inject();
    inner_->reduce_end(out);
  }
  void window_begin(const void* data, std::size_t bytes) override {
    inner_->window_begin(data, bytes);
  }
  void window_end() override {
    inject();
    inner_->window_end();
  }
  [[nodiscard]] const void* window(index_t r) const override {
    return inner_->window(r);
  }
  void abort() noexcept override { inner_->abort(); }
  [[nodiscard]] bool aborted() const override { return inner_->aborted(); }
  [[nodiscard]] const CommStats& stats() const override {
    return inner_->stats();
  }
  [[nodiscard]] CommStats& mutable_stats() override {
    return inner_->mutable_stats();
  }

 private:
  void inject() {
    if (delay_us_ == 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
    inner_->mutable_stats().wait_seconds +=
        static_cast<double>(delay_us_) * 1e-6;
  }

  std::unique_ptr<Transport> inner_;
  std::uint32_t delay_us_;
};

}  // namespace spcg
