// Umbrella header for the distributed solver layer: row partitioning
// (partition.h), the pluggable transport seam and its backings
// (transport.h), the typed halo-exchange communicator facade (comm.h), and
// the distributed classic/overlapped/comm-reduced PCG bodies with
// per-subdomain SPCG preconditioning (dist_pcg.h).
#pragma once

#include "dist/comm.h"       // IWYU pragma: export
#include "dist/dist_pcg.h"   // IWYU pragma: export
#include "dist/partition.h"  // IWYU pragma: export
#include "dist/transport.h"  // IWYU pragma: export
