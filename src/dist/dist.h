// Umbrella header for the distributed solver layer: row partitioning
// (partition.h), the in-process halo-exchange communicator (comm.h), and the
// distributed classic/overlapped PCG bodies with per-subdomain SPCG
// preconditioning (dist_pcg.h).
#pragma once

#include "dist/comm.h"       // IWYU pragma: export
#include "dist/dist_pcg.h"   // IWYU pragma: export
#include "dist/partition.h"  // IWYU pragma: export
