// Distributed SPCG: PCG over a row-partitioned system with P ranks, each
// preconditioned by its own SPCG subdomain setup (restricted additive
// Schwarz, overlap 0: every rank factorizes its owned x owned interior
// block via spcg_setup and applies it with an IluApplier). Ranks talk over
// a pluggable Transport (dist/transport.h): in-process threads, a POSIX
// shared-memory segment, or TCP sockets.
//
// Three solver bodies, selected by DistOptions::body:
//   * classic      — mirrors solver/pcg.h line by line. Two reductions per
//     iteration ({p,w} curvature; fused {r,z} + ||r||^2), one blocking halo
//     exchange before the SpMV.
//   * overlapped   — mirrors solver/pipelined_cg.h. One fused reduction per
//     iteration whose synchronization overlaps the preconditioner apply,
//     and a halo exchange whose in-flight window overlaps the interior SpMV
//     (LocalSystem's interior/boundary split exists for exactly this) —
//     plus the startup reduction, still two synchronizations per iteration
//     counting the exchange.
//   * comm_reduced — the communication-reduced variant (s-step flavor of
//     the pipelined recurrence, a la Chronopoulos-Gear): the curvature term
//     delta = (w, z) is computed at the *bottom* of the iteration, where w
//     and z already hold the values the next iteration's top would see, and
//     fused into the same reduction as {gamma, ||r||^2}. One all-reduce per
//     iteration instead of two, still overlapped with the preconditioner
//     apply. Bitwise-equal to the pipelined body (and hence, at P = 1, to
//     pipelined_pcg) because every partial sum is taken over identical
//     operand vectors in the identical order — only the synchronization
//     count changes.
//
// SPMD invariant: every control-flow decision (convergence, breakdown) is a
// function of all-reduced values, which the deterministic rank-order
// reduction makes bitwise identical on every rank — so all ranks execute the
// same collective sequence and either all finish or all abort (comm.h).
//
// P == 1 is bitwise-equal to the serial solvers: the single part's interior
// block is A itself, partial sums traverse the full vector in the serial
// order, and the reduction's T -> double -> T round trip is exact (identity
// for double, lossless widening for float). dist_test locks this in against
// both spcg_solve and pipelined_pcg, on every transport.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/spcg.h"
#include "dist/comm.h"
#include "dist/partition.h"
#include "precond/preconditioner.h"
#include "solver/pcg.h"
#include "sparse/norms.h"
#include "sparse/ops.h"
#include "support/timer.h"
#include "support/trace.h"

namespace spcg {

/// Which rank-local iteration body drives the distributed solve.
enum class DistBody {
  kClassic,      // solver/pcg.h recurrence, 2 all-reduces / iteration
  kOverlapped,   // pipelined recurrence, reductions hidden behind compute
  kCommReduced,  // pipelined recurrence, 1 fused all-reduce / iteration
};

inline const char* to_string(DistBody b) {
  switch (b) {
    case DistBody::kClassic: return "classic";
    case DistBody::kOverlapped: return "overlapped";
    case DistBody::kCommReduced: return "comm-reduced";
  }
  return "unknown";
}

/// Parse a CLI spelling ("classic" | "overlapped" | "comm-reduced").
inline bool parse_dist_body(std::string_view name, DistBody* out) {
  if (name == "classic") {
    *out = DistBody::kClassic;
  } else if (name == "overlapped" || name == "pipelined") {
    *out = DistBody::kOverlapped;
  } else if (name == "comm-reduced" || name == "comm_reduced" ||
             name == "sstep") {
    *out = DistBody::kCommReduced;
  } else {
    return false;
  }
  return true;
}

/// Configuration of a distributed solve.
struct DistOptions {
  index_t parts = 2;
  PartitionOptions partition;
  /// Per-subdomain SPCG pipeline configuration (sparsify + ILU + executor)
  /// and the PCG options of the outer distributed iteration.
  SpcgOptions options;
  /// Solver body. kClassic here defers to the legacy `overlap` flag so
  /// existing call sites keep their meaning.
  DistBody body = DistBody::kClassic;
  /// Legacy spelling of body = kOverlapped (honored when body is kClassic).
  bool overlap = false;
  /// Transport backing and knobs (kind, collective timeout, injected
  /// latency) for the rank group.
  TransportOptions transport;

  [[nodiscard]] DistBody effective_body() const {
    if (body != DistBody::kClassic) return body;
    return overlap ? DistBody::kOverlapped : DistBody::kClassic;
  }
};

/// Everything a distributed solve needs before it sees a right-hand side:
/// the partition, every part's LocalSystem, and one SPCG setup per
/// subdomain. Built once, reused across any number of solves — the same
/// amortization story as SpcgSetup, one level up. Subdomain setups are held
/// by shared_ptr so the runtime layer can alias them into its SetupCache.
template <class T>
struct DistSetup {
  Partition partition;
  std::vector<LocalSystem<T>> locals;
  std::vector<std::shared_ptr<const SpcgSetup<T>>> subdomains;
  index_t edge_cut = 0;
  double partition_seconds = 0.0;
  double setup_seconds = 0.0;

  [[nodiscard]] index_t parts() const { return partition.parts; }
};

/// Partition A, materialize the local systems, and run spcg_setup on every
/// interior block (SPD: principal submatrix of SPD A).
template <class T>
DistSetup<T> dist_setup(const Csr<T>& a, const DistOptions& opt = {}) {
  DistSetup<T> s;
  WallTimer timer;
  {
    Span span("partition", "dist");
    span.arg("parts", static_cast<std::int64_t>(opt.parts));
    s.partition = make_partition(a, opt.parts, opt.partition);
    s.locals = build_local_systems(a, s.partition);
  }
  s.partition_seconds = timer.seconds();
  s.edge_cut = partition_stats(a, s.partition).edge_cut;

  timer.reset();
  s.subdomains.reserve(s.locals.size());
  for (const LocalSystem<T>& loc : s.locals) {
    s.subdomains.push_back(std::make_shared<SpcgSetup<T>>(
        spcg_setup(loc.a_interior, opt.options)));
  }
  s.setup_seconds = timer.seconds();
  return s;
}

/// Communication profile of one distributed solve.
struct DistSolveStats {
  std::uint64_t allreduces = 0;      // reductions issued (per rank; identical
                                     // on every rank by the SPMD invariant)
  std::uint64_t halo_exchanges = 0;  // exchanges issued (per rank)
  std::uint64_t halo_bytes = 0;      // gathered payload, summed over ranks
  double max_wait_seconds = 0.0;     // slowest rank's total barrier time
  double overlap_hidden_seconds = 0.0;  // compute inside open collectives,
                                        // summed over ranks
  /// Fraction of synchronization hidden behind compute: overlapped work /
  /// (overlapped work + barrier waits), summed over ranks. 0 for the classic
  /// body (nothing is overlapped).
  double overlap_efficiency = 0.0;
};

template <class T>
struct DistSolveResult {
  SolveResult<T> solve;
  DistSolveStats stats;
  double solve_seconds = 0.0;
};

/// What the deterministic distributed reduction yields for dot(x, y): one
/// partial sum per part in T (ascending local row order), folded in rank
/// order as double, cast back to T. The serial oracle dist_test compares the
/// concurrent execution against, to 0 ULP. For parts == 1 it equals dot().
template <class T>
T dist_dot_reference(std::span<const T> x, std::span<const T> y,
                     const Partition& p) {
  SPCG_CHECK(static_cast<index_t>(x.size()) == p.global_rows);
  SPCG_CHECK(x.size() == y.size());
  double acc = 0.0;
  for (const auto& rows : p.owned) {
    T part{0};
    for (const index_t g : rows)
      part += x[static_cast<std::size_t>(g)] * y[static_cast<std::size_t>(g)];
    acc += static_cast<double>(part);
  }
  return static_cast<T>(acc);
}

namespace detail {

/// y += B * h: accumulate the boundary block against the gathered halo.
template <class T>
void spmv_add(const Csr<T>& bnd, std::span<const T> h, std::span<T> y) {
  for (index_t i = 0; i < bnd.rows; ++i) {
    T acc = y[static_cast<std::size_t>(i)];
    for (index_t p = bnd.rowptr[static_cast<std::size_t>(i)];
         p < bnd.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      acc += bnd.values[static_cast<std::size_t>(p)] *
             h[static_cast<std::size_t>(bnd.colind[static_cast<std::size_t>(p)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

/// Local partial of dot(x, y), accumulated in T like sparse/norms.h dot().
template <class T>
T partial_dot(std::span<const T> x, std::span<const T> y) {
  T acc{0};
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

/// Local partial of ||x||^2, accumulated in T like norm2() before its sqrt.
template <class T>
T partial_sumsq(std::span<const T> x) {
  T acc{0};
  for (const T& v : x) acc += v * v;
  return acc;
}

/// Finish a reduced sum-of-squares the way serial code finishes norm2():
/// cast back to T, sqrt in T, report as double.
template <class T>
double norm_from_sumsq(double reduced) {
  return static_cast<double>(std::sqrt(static_cast<T>(reduced)));
}

/// Shared tail of both rank bodies: recompute the true residual against the
/// distributed operator in double (the serial solvers' drift check), scatter
/// this rank's solution slice, and let rank 0 finalize the result.
template <class T>
void finish_rank(Communicator<T>& comm, const LocalSystem<T>& local,
                 std::span<const T> b_loc, std::span<const T> x,
                 std::span<T> w, std::span<T> halo, SolveStatus status,
                 std::int32_t iterations, std::span<T> x_global,
                 SolveResult<T>& res) {
  auto h = comm.exchange_begin(x);
  comm.exchange_end(h, local, halo);
  spmv(local.a_interior, x, w);
  spmv_add(local.a_boundary, std::span<const T>(halo.data(), halo.size()), w);
  double true_norm = 0.0;
  for (std::size_t i = 0; i < b_loc.size(); ++i) {
    const double d =
        static_cast<double>(b_loc[i]) - static_cast<double>(w[i]);
    true_norm += d * d;
  }
  std::array<double, 1> red{true_norm};
  comm.allreduce(std::span<double>(red));
  scatter_local(std::span<const T>(x.data(), x.size()), local.owned, x_global);
  if (comm.rank() == 0) {
    res.status = status;
    res.iterations = iterations;
    res.final_residual_norm = std::sqrt(red[0]);
  }
}

/// Classic distributed PCG — the rank-local body of solver/pcg.h pcg().
template <class T>
void dist_rank_classic(Communicator<T>& comm, const DistSetup<T>& setup,
                       std::span<const T> b, const SpcgOptions& sopt,
                       std::span<T> x_global, SolveResult<T>& res) {
  const index_t rank = comm.rank();
  const LocalSystem<T>& local = setup.locals[static_cast<std::size_t>(rank)];
  const SpcgSetup<T>& sub = *setup.subdomains[static_cast<std::size_t>(rank)];
  const PcgOptions& opt = sopt.pcg;
  const auto n_loc = static_cast<std::size_t>(local.rows());
  IluApplier<T> m(sub.factors, sub.l_schedule, sub.u_schedule, sopt.executor);

  const std::vector<T> b_loc = gather_local(b, local.owned);
  std::array<double, 2> red{};

  red[0] = static_cast<double>(partial_sumsq(std::span<const T>(b_loc)));
  comm.allreduce(std::span<double>(red.data(), 1));
  const double b_norm = norm_from_sumsq<T>(red[0]);
  if (b_norm == 0.0) {
    // Mirrors pcg(): b = 0 answers x = 0 directly. x_global is already zero.
    if (rank == 0) {
      res.status = SolveStatus::kConverged;
      if (opt.record_history) res.residual_history.push_back(0.0);
    }
    return;
  }

  std::vector<T> x(n_loc, T{0});
  std::vector<T> r(b_loc);
  std::vector<T> z(n_loc), p(n_loc), w(n_loc);
  std::vector<T> halo(static_cast<std::size_t>(local.halo_size()));
  m.apply(r, std::span<T>(z));
  p = z;

  red[0] = static_cast<double>(
      partial_dot(std::span<const T>(r), std::span<const T>(z)));
  red[1] = static_cast<double>(partial_sumsq(std::span<const T>(r)));
  comm.allreduce(std::span<double>(red));
  T rz = static_cast<T>(red[0]);
  double r_norm = norm_from_sumsq<T>(red[1]);
  const double target = opt.relative ? opt.tolerance * b_norm : opt.tolerance;
  if (rank == 0 && opt.record_history) res.residual_history.push_back(r_norm);

  const bool trace_iters =
      opt.trace_every > 0 && global_trace().enabled();
  SolveStatus status = SolveStatus::kMaxIterations;
  std::int32_t k = 0;
  for (; k < opt.max_iterations; ++k) {
    if (r_norm < target) {
      status = SolveStatus::kConverged;
      break;
    }
    const TraceSampleScope sample(trace_iters && k % opt.trace_every == 0);
    Span iter_span("iteration", "dist");
    iter_span.arg("k", k);
    // Blocking halo exchange, then the full local SpMV (the overlapped body
    // hides the exchange behind the interior half instead).
    {
      Span span("halo_exchange", "dist");
      auto h = comm.exchange_begin(std::span<const T>(p));
      comm.exchange_end(h, local, std::span<T>(halo));
    }
    {
      Span span("spmv", "dist");
      spmv(local.a_interior, std::span<const T>(p), std::span<T>(w));
      spmv_add(local.a_boundary, std::span<const T>(halo), std::span<T>(w));
    }

    T pw;
    {
      Span span("allreduce", "dist");
      red[0] = static_cast<double>(
          partial_dot(std::span<const T>(p), std::span<const T>(w)));
      comm.allreduce(std::span<double>(red.data(), 1));
      pw = static_cast<T>(red[0]);
    }
    if (!(pw > T{0})) {
      status = SolveStatus::kBreakdown;
      break;
    }
    const T alpha = rz / pw;
    axpy(alpha, std::span<const T>(p), std::span<T>(x));
    axpy(-alpha, std::span<const T>(w), std::span<T>(r));
    {
      Span span("precond", "dist");
      m.apply(r, std::span<T>(z));
    }
    {
      Span span("allreduce", "dist");
      red[0] = static_cast<double>(
          partial_dot(std::span<const T>(r), std::span<const T>(z)));
      red[1] = static_cast<double>(partial_sumsq(std::span<const T>(r)));
      comm.allreduce(std::span<double>(red));
    }
    const T rz_next = static_cast<T>(red[0]);
    if (rz == T{0} || rz_next != rz_next) {
      status = SolveStatus::kBreakdown;
      ++k;
      break;
    }
    const T beta = rz_next / rz;
    rz = rz_next;
    xpby(std::span<const T>(z), beta, std::span<T>(p));
    r_norm = norm_from_sumsq<T>(red[1]);
    if (rank == 0 && opt.record_history) res.residual_history.push_back(r_norm);
  }
  if (status == SolveStatus::kMaxIterations && r_norm < target)
    status = SolveStatus::kConverged;

  finish_rank(comm, local, std::span<const T>(b_loc), std::span<const T>(x),
              std::span<T>(w), std::span<T>(halo), status, k, x_global, res);
}

/// Overlapped distributed PCG — the rank-local body of pipelined_pcg(), with
/// the reduction hidden behind the preconditioner apply and the halo
/// exchange hidden behind the interior SpMV.
template <class T>
void dist_rank_overlapped(Communicator<T>& comm, const DistSetup<T>& setup,
                          std::span<const T> b, const SpcgOptions& sopt,
                          std::span<T> x_global, SolveResult<T>& res) {
  const index_t rank = comm.rank();
  const LocalSystem<T>& local = setup.locals[static_cast<std::size_t>(rank)];
  const SpcgSetup<T>& sub = *setup.subdomains[static_cast<std::size_t>(rank)];
  const PcgOptions& opt = sopt.pcg;
  const auto n_loc = static_cast<std::size_t>(local.rows());
  IluApplier<T> m(sub.factors, sub.l_schedule, sub.u_schedule, sopt.executor);

  const std::vector<T> b_loc = gather_local(b, local.owned);
  std::vector<T> x(n_loc, T{0});
  std::vector<T> r(b_loc);
  std::vector<T> z(n_loc), w(n_loc), mw(n_loc), p(n_loc), s(n_loc), q(n_loc);
  std::vector<T> halo(static_cast<std::size_t>(local.halo_size()));

  // Overlapped w = A z: interior SpMV runs while the halo is in flight.
  auto local_spmv_overlapped = [&](std::span<const T> in, std::span<T> out) {
    auto h = comm.exchange_begin(in);
    WallTimer t;
    {
      Span span("spmv", "dist");
      spmv(local.a_interior, in, out);
    }
    comm.note_overlap_compute(t.seconds());
    Span span("halo_exchange", "dist");
    comm.exchange_end(h, local, std::span<T>(halo));
    spmv_add(local.a_boundary, std::span<const T>(halo), out);
  };

  m.apply(r, std::span<T>(z));
  local_spmv_overlapped(std::span<const T>(z), std::span<T>(w));

  // One fused startup reduction: {||b||^2, (r, z), ||r||^2}.
  std::array<double, 3> red3{};
  red3[0] = static_cast<double>(partial_sumsq(std::span<const T>(b_loc)));
  red3[1] = static_cast<double>(
      partial_dot(std::span<const T>(r), std::span<const T>(z)));
  red3[2] = static_cast<double>(partial_sumsq(std::span<const T>(r)));
  comm.allreduce(std::span<double>(red3));
  const double b_norm = norm_from_sumsq<T>(red3[0]);
  const double target =
      opt.relative ? opt.tolerance * (b_norm > 0.0 ? b_norm : 1.0)
                   : opt.tolerance;
  T gamma = static_cast<T>(red3[1]);
  T alpha{0}, gamma_old{0};
  double r_norm = norm_from_sumsq<T>(red3[2]);
  if (rank == 0 && opt.record_history) res.residual_history.push_back(r_norm);

  const bool trace_iters =
      opt.trace_every > 0 && global_trace().enabled();
  std::array<double, 2> red{};
  SolveStatus status = SolveStatus::kMaxIterations;
  std::int32_t k = 0;
  for (; k < opt.max_iterations; ++k) {
    if (r_norm < target) {
      status = SolveStatus::kConverged;
      break;
    }
    const TraceSampleScope sample(trace_iters && k % opt.trace_every == 0);
    Span iter_span("iteration", "dist");
    iter_span.arg("k", k);
    // The iteration's reduction, hidden behind the preconditioner apply. If
    // apply throws (checked executor), finish the collective first so the
    // abort fires outside the open window (comm.h contract).
    red[0] = static_cast<double>(
        partial_dot(std::span<const T>(w), std::span<const T>(z)));
    auto rh = comm.reduce_begin(std::span<const double>(red.data(), 1));
    std::exception_ptr apply_error;
    WallTimer apply_timer;
    try {
      m.apply(w, std::span<T>(mw));
    } catch (...) {
      apply_error = std::current_exception();
    }
    comm.note_overlap_compute(apply_timer.seconds());
    comm.reduce_end(rh, std::span<double>(red.data(), 1));
    if (apply_error) std::rethrow_exception(apply_error);
    const T delta = static_cast<T>(red[0]);

    T beta;
    if (k == 0) {
      beta = T{0};
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_old;
      const T denom = delta - beta * gamma / alpha;
      if (!(denom != T{0}) || denom != denom) {
        status = SolveStatus::kBreakdown;
        break;
      }
      alpha = gamma / denom;
    }
    if (!(alpha == alpha)) {
      status = SolveStatus::kBreakdown;
      break;
    }

    xpby(std::span<const T>(z), beta, std::span<T>(p));
    xpby(std::span<const T>(w), beta, std::span<T>(s));
    xpby(std::span<const T>(mw), beta, std::span<T>(q));
    axpy(alpha, std::span<const T>(p), std::span<T>(x));
    axpy(-alpha, std::span<const T>(s), std::span<T>(r));
    axpy(-alpha, std::span<const T>(q), std::span<T>(z));

    local_spmv_overlapped(std::span<const T>(z), std::span<T>(w));
    gamma_old = gamma;
    red[0] = static_cast<double>(
        partial_dot(std::span<const T>(r), std::span<const T>(z)));
    red[1] = static_cast<double>(partial_sumsq(std::span<const T>(r)));
    comm.allreduce(std::span<double>(red));
    gamma = static_cast<T>(red[0]);
    if (gamma != gamma) {
      status = SolveStatus::kBreakdown;
      ++k;
      break;
    }
    r_norm = norm_from_sumsq<T>(red[1]);
    if (rank == 0 && opt.record_history) res.residual_history.push_back(r_norm);
  }
  if (status == SolveStatus::kMaxIterations && r_norm < target)
    status = SolveStatus::kConverged;

  finish_rank(comm, local, std::span<const T>(b_loc), std::span<const T>(x),
              std::span<T>(w), std::span<T>(halo), status, k, x_global, res);
}

/// Communication-reduced distributed PCG — the pipelined recurrence with
/// ONE fused all-reduce per iteration.
///
/// Derivation: in the pipelined body, the iteration-top reduction computes
/// delta = (w, z) and the iteration-bottom reduction computes {gamma =
/// (r, z), ||r||^2}. Between the bottom of iteration k and the top of
/// iteration k+1 neither w nor z changes (w is recomputed by the bottom
/// SpMV from the already-updated z; only scalars move in between). So the
/// bottom reduction can carry next iteration's delta as a third fused
/// element — same partial sums over the same vectors in the same order,
/// folded per-element in the same rank order, hence bitwise-identical
/// scalars — and the top reduction disappears. The preconditioner apply
/// mw = M^{-1} w moves to the bottom as well (w is final there) and
/// overlaps the single reduction's synchronization. The startup reduction
/// fuses {||b||^2, (r, z), ||r||^2, (w, z)} — exactly kReduceWidth wide.
///
/// All-reduce totals per solve: iterations + 2 (startup + one per
/// iteration + the true-residual check), vs 2 * iterations + 3 classic.
template <class T>
void dist_rank_comm_reduced(Communicator<T>& comm, const DistSetup<T>& setup,
                            std::span<const T> b, const SpcgOptions& sopt,
                            std::span<T> x_global, SolveResult<T>& res) {
  const index_t rank = comm.rank();
  const LocalSystem<T>& local = setup.locals[static_cast<std::size_t>(rank)];
  const SpcgSetup<T>& sub = *setup.subdomains[static_cast<std::size_t>(rank)];
  const PcgOptions& opt = sopt.pcg;
  const auto n_loc = static_cast<std::size_t>(local.rows());
  IluApplier<T> m(sub.factors, sub.l_schedule, sub.u_schedule, sopt.executor);

  const std::vector<T> b_loc = gather_local(b, local.owned);
  std::vector<T> x(n_loc, T{0});
  std::vector<T> r(b_loc);
  std::vector<T> z(n_loc), w(n_loc), mw(n_loc), p(n_loc), s(n_loc), q(n_loc);
  std::vector<T> halo(static_cast<std::size_t>(local.halo_size()));

  auto local_spmv_overlapped = [&](std::span<const T> in, std::span<T> out) {
    auto h = comm.exchange_begin(in);
    WallTimer t;
    {
      Span span("spmv", "dist");
      spmv(local.a_interior, in, out);
    }
    comm.note_overlap_compute(t.seconds());
    Span span("halo_exchange", "dist");
    comm.exchange_end(h, local, std::span<T>(halo));
    spmv_add(local.a_boundary, std::span<const T>(halo), out);
  };

  /// The fused reduction, overlapped with mw = M^{-1} w. If apply throws
  /// (checked executor), finish the collective first so the abort fires
  /// outside the open window (transport contract).
  auto reduce_overlapping_apply = [&](std::span<double> red) {
    auto rh = comm.reduce_begin(std::span<const double>(red.data(),
                                                        red.size()));
    std::exception_ptr apply_error;
    WallTimer apply_timer;
    try {
      m.apply(w, std::span<T>(mw));
    } catch (...) {
      apply_error = std::current_exception();
    }
    comm.note_overlap_compute(apply_timer.seconds());
    comm.reduce_end(rh, red);
    if (apply_error) std::rethrow_exception(apply_error);
  };

  m.apply(r, std::span<T>(z));
  local_spmv_overlapped(std::span<const T>(z), std::span<T>(w));

  // Fused startup reduction: {||b||^2, (r, z), ||r||^2, (w, z)}.
  std::array<double, 4> red4{};
  red4[0] = static_cast<double>(partial_sumsq(std::span<const T>(b_loc)));
  red4[1] = static_cast<double>(
      partial_dot(std::span<const T>(r), std::span<const T>(z)));
  red4[2] = static_cast<double>(partial_sumsq(std::span<const T>(r)));
  red4[3] = static_cast<double>(
      partial_dot(std::span<const T>(w), std::span<const T>(z)));
  reduce_overlapping_apply(std::span<double>(red4));
  const double b_norm = norm_from_sumsq<T>(red4[0]);
  const double target =
      opt.relative ? opt.tolerance * (b_norm > 0.0 ? b_norm : 1.0)
                   : opt.tolerance;
  T gamma = static_cast<T>(red4[1]);
  T alpha{0}, gamma_old{0};
  double r_norm = norm_from_sumsq<T>(red4[2]);
  double delta_d = red4[3];
  if (rank == 0 && opt.record_history) res.residual_history.push_back(r_norm);

  const bool trace_iters =
      opt.trace_every > 0 && global_trace().enabled();
  std::array<double, 3> red3{};
  SolveStatus status = SolveStatus::kMaxIterations;
  std::int32_t k = 0;
  for (; k < opt.max_iterations; ++k) {
    if (r_norm < target) {
      status = SolveStatus::kConverged;
      break;
    }
    const TraceSampleScope sample(trace_iters && k % opt.trace_every == 0);
    Span iter_span("iteration", "dist");
    iter_span.arg("k", k);
    const T delta = static_cast<T>(delta_d);

    T beta;
    if (k == 0) {
      beta = T{0};
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_old;
      const T denom = delta - beta * gamma / alpha;
      if (!(denom != T{0}) || denom != denom) {
        status = SolveStatus::kBreakdown;
        break;
      }
      alpha = gamma / denom;
    }
    if (!(alpha == alpha)) {
      status = SolveStatus::kBreakdown;
      break;
    }

    xpby(std::span<const T>(z), beta, std::span<T>(p));
    xpby(std::span<const T>(w), beta, std::span<T>(s));
    xpby(std::span<const T>(mw), beta, std::span<T>(q));
    axpy(alpha, std::span<const T>(p), std::span<T>(x));
    axpy(-alpha, std::span<const T>(s), std::span<T>(r));
    axpy(-alpha, std::span<const T>(q), std::span<T>(z));

    local_spmv_overlapped(std::span<const T>(z), std::span<T>(w));
    gamma_old = gamma;
    // The iteration's single reduction: this iteration's {gamma, ||r||^2}
    // plus next iteration's delta, overlapped with the apply.
    red3[0] = static_cast<double>(
        partial_dot(std::span<const T>(r), std::span<const T>(z)));
    red3[1] = static_cast<double>(partial_sumsq(std::span<const T>(r)));
    red3[2] = static_cast<double>(
        partial_dot(std::span<const T>(w), std::span<const T>(z)));
    reduce_overlapping_apply(std::span<double>(red3));
    gamma = static_cast<T>(red3[0]);
    if (gamma != gamma) {
      status = SolveStatus::kBreakdown;
      ++k;
      break;
    }
    delta_d = red3[2];
    r_norm = norm_from_sumsq<T>(red3[1]);
    if (rank == 0 && opt.record_history) res.residual_history.push_back(r_norm);
  }
  if (status == SolveStatus::kMaxIterations && r_norm < target)
    status = SolveStatus::kConverged;

  finish_rank(comm, local, std::span<const T>(b_loc), std::span<const T>(x),
              std::span<T>(w), std::span<T>(halo), status, k, x_global, res);
}

}  // namespace detail

/// The rank-local body of one distributed solve, dispatched on
/// DistOptions::effective_body(). Public so multi-process rank drivers
/// (examples/spcg_dist_worker) can run one rank over a process transport.
template <class T>
void dist_pcg_rank(Communicator<T>& comm, const DistSetup<T>& setup,
                   std::span<const T> b, const DistOptions& opt,
                   std::span<T> x_global, SolveResult<T>& res) {
  switch (opt.effective_body()) {
    case DistBody::kOverlapped:
      detail::dist_rank_overlapped(comm, setup, b, opt.options, x_global,
                                   res);
      break;
    case DistBody::kCommReduced:
      detail::dist_rank_comm_reduced(comm, setup, b, opt.options, x_global,
                                     res);
      break;
    case DistBody::kClassic:
      detail::dist_rank_classic(comm, setup, b, opt.options, x_global, res);
      break;
  }
}

/// Per-rank window sizes for the halo-exchange substrate: every rank
/// publishes at most its owned vector.
template <class T>
std::vector<std::size_t> dist_window_bytes(const DistSetup<T>& setup) {
  std::vector<std::size_t> bytes;
  bytes.reserve(setup.locals.size());
  for (const LocalSystem<T>& loc : setup.locals)
    bytes.push_back(static_cast<std::size_t>(loc.rows()) * sizeof(T));
  return bytes;
}

/// Run the distributed solve: rank 0 on the calling thread, ranks 1..P-1 on
/// their own std::threads. A rank that throws aborts the world; the first
/// non-CommAborted error is rethrown here after every rank has joined.
template <class T>
DistSolveResult<T> dist_pcg_solve(std::span<const T> b,
                                  const DistSetup<T>& setup,
                                  const DistOptions& opt = {}) {
  const index_t parts = setup.partition.parts;
  SPCG_CHECK(parts >= 1);
  SPCG_CHECK(static_cast<index_t>(b.size()) == setup.partition.global_rows);
  SPCG_CHECK(static_cast<index_t>(setup.locals.size()) == parts);
  SPCG_CHECK(static_cast<index_t>(setup.subdomains.size()) == parts);

  DistSolveResult<T> out;
  out.solve.x.assign(b.size(), T{0});
  WallTimer timer;

  const std::vector<std::size_t> window_bytes = dist_window_bytes(setup);
  const std::unique_ptr<TransportGroup> group = make_transport_group(
      parts, std::span<const std::size_t>(window_bytes), opt.transport);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(parts));
  std::vector<CommStats> rank_stats(static_cast<std::size_t>(parts));
  const std::span<T> x_global(out.solve.x);

  auto body = [&](index_t rank) {
    Communicator<T> comm(&group->transport(rank));
    Span rank_span("rank", "dist");
    rank_span.arg("rank", static_cast<std::int64_t>(rank));
    rank_span.arg("body", std::string(to_string(opt.effective_body())));
    try {
      dist_pcg_rank(comm, setup, b, opt, x_global, out.solve);
    } catch (...) {
      errors[static_cast<std::size_t>(rank)] = std::current_exception();
      comm.abort();
    }
    const CommStats cs = comm.stats();
    rank_stats[static_cast<std::size_t>(rank)] = cs;
    rank_span.arg("allreduces", cs.allreduces);
    rank_span.arg("halo_exchanges", cs.halo_exchanges);
    rank_span.arg("halo_bytes", cs.halo_bytes);
    rank_span.arg("wait_seconds", cs.wait_seconds);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(parts - 1));
  for (index_t r = 1; r < parts; ++r) threads.emplace_back(body, r);
  body(0);
  for (std::thread& t : threads) t.join();

  std::exception_ptr secondary;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const CommAborted&) {
      if (!secondary) secondary = e;  // victim of another rank's abort
    } catch (...) {
      throw;  // the originating error
    }
  }
  if (secondary) std::rethrow_exception(secondary);

  double hidden = 0.0, waits = 0.0;
  for (const CommStats& cs : rank_stats) {
    out.stats.halo_bytes += cs.halo_bytes;
    out.stats.max_wait_seconds =
        std::max(out.stats.max_wait_seconds, cs.wait_seconds);
    hidden += cs.overlap_hidden_seconds;
    waits += cs.wait_seconds;
  }
  out.stats.allreduces = rank_stats[0].allreduces;
  out.stats.halo_exchanges = rank_stats[0].halo_exchanges;
  out.stats.overlap_hidden_seconds = hidden;
  out.stats.overlap_efficiency =
      hidden + waits > 0.0 ? hidden / (hidden + waits) : 0.0;
  out.solve_seconds = timer.seconds();
  return out;
}

/// Vector-argument convenience.
template <class T>
DistSolveResult<T> dist_pcg_solve(const std::vector<T>& b,
                                  const DistSetup<T>& setup,
                                  const DistOptions& opt = {}) {
  return dist_pcg_solve(std::span<const T>(b), setup, opt);
}

}  // namespace spcg
