// TCP socket Transport backing: true cross-process ranks over a star
// topology through the rank-0 hub.
//
// Wire format: length-prefixed frames, one 20-byte header then the payload —
//   { u32 type; u32 rank; u64 seq; u32 len; }  (host byte order: the
// transport targets same-architecture hosts; doubles cross the wire as raw
// IEEE-754 bits, which is what keeps the reduction bitwise deterministic).
// Frame types: Hello (worker -> hub rank introduction), ReducePart /
// ReduceResult, WindowPart / WindowAll, BarrierArrive / BarrierRelease, and
// Abort (valid at any point in the stream).
//
// Collectives: workers send their contribution to the hub and wait for its
// reply; the hub collects one frame per worker, folds reduce partials in
// ascending rank order (accumulating in double, exactly like the in-process
// fold), and broadcasts the folded bits / assembled windows. Folding once
// and broadcasting the result preserves the determinism contract verbatim.
//
// Failure containment: every recv polls with the collective timeout; a
// timeout, EOF (peer process died) or an Abort frame surfaces CommAborted.
// The hub additionally relays Abort to every other worker, so one dead rank
// converges the whole group within one timeout.
#include "dist/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "support/timer.h"

namespace spcg {
namespace detail {
namespace {

enum class FrameType : std::uint32_t {
  kHello = 1,
  kReducePart = 2,
  kReduceResult = 3,
  kWindowPart = 4,
  kWindowAll = 5,
  kBarrierArrive = 6,
  kBarrierRelease = 7,
  kAbort = 8,
};

struct FrameHeader {
  std::uint32_t type = 0;
  std::uint32_t rank = 0;
  std::uint64_t seq = 0;
  std::uint32_t len = 0;
};

/// Per-rank window offsets within the assembled (bank-less) window buffer.
struct WindowLayout {
  std::vector<std::size_t> offset;
  std::vector<std::size_t> bytes;
  std::size_t total = 0;

  WindowLayout(index_t parts, std::span<const std::size_t> window_bytes) {
    offset.resize(static_cast<std::size_t>(parts));
    bytes.resize(static_cast<std::size_t>(parts));
    for (index_t r = 0; r < parts; ++r) {
      offset[static_cast<std::size_t>(r)] = total;
      const std::size_t b =
          window_bytes.empty() ? 0
                               : window_bytes[static_cast<std::size_t>(r)];
      bytes[static_cast<std::size_t>(r)] = b;
      total += b;
    }
  }
};

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  void close() noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  SPCG_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 "socket transport host must be an IPv4 address, got "
                     << host);
  return addr;
}

/// Both endpoint roles share the framing/IO core: send_all, deadline-polled
/// recv, and the abort bookkeeping.
class SocketTransportBase : public Transport {
 public:
  SocketTransportBase(index_t rank, index_t parts, WindowLayout layout,
                      double timeout)
      : rank_(rank), parts_(parts), layout_(std::move(layout)),
        timeout_(timeout) {}

  [[nodiscard]] index_t rank() const override { return rank_; }
  [[nodiscard]] index_t size() const override { return parts_; }
  [[nodiscard]] bool aborted() const override { return aborted_; }

 protected:
  void mark_aborted() noexcept { aborted_ = true; }

  [[noreturn]] void fail(const char* why) {
    mark_aborted();
    on_abort_observed();
    throw CommAborted(why);
  }

  /// Hook: the hub relays Abort to the surviving workers.
  virtual void on_abort_observed() noexcept {}

  void send_frame(int fd, FrameType type, std::uint64_t seq,
                  const void* payload, std::size_t len) {
    FrameHeader h;
    h.type = static_cast<std::uint32_t>(type);
    h.rank = static_cast<std::uint32_t>(rank_);
    h.seq = seq;
    h.len = static_cast<std::uint32_t>(len);
    send_all(fd, &h, sizeof(h));
    if (len > 0) send_all(fd, payload, len);
  }

  /// Best-effort Abort frame (for abort() — must not throw).
  void send_abort(int fd) noexcept {
    if (fd < 0) return;
    FrameHeader h;
    h.type = static_cast<std::uint32_t>(FrameType::kAbort);
    h.rank = static_cast<std::uint32_t>(rank_);
    h.seq = 0;
    h.len = 0;
    (void)::send(fd, &h, sizeof(h), MSG_NOSIGNAL | MSG_DONTWAIT);
  }

  /// Receive one frame, enforcing the expected type and sequence. An Abort
  /// frame, EOF, socket error or deadline overrun becomes CommAborted.
  FrameHeader recv_frame(int fd, FrameType expected, std::uint64_t seq,
                         std::vector<std::uint8_t>* payload) {
    WallTimer timer;
    FrameHeader h;
    recv_all(fd, &h, sizeof(h), timer);
    if (h.type == static_cast<std::uint32_t>(FrameType::kAbort))
      fail("communicator aborted by another rank");
    if (h.type != static_cast<std::uint32_t>(expected) || h.seq != seq)
      fail("socket transport protocol error (unexpected frame)");
    if (payload != nullptr) payload->resize(h.len);
    if (h.len > 0) {
      SPCG_CHECK(payload != nullptr);
      recv_all(fd, payload->data(), h.len, timer);
    }
    return h;
  }

  /// Like recv_frame but into a caller-provided region of exactly the
  /// advertised length (window payloads).
  FrameHeader recv_frame_into(int fd, FrameType expected, std::uint64_t seq,
                              void* dst, std::size_t max_len) {
    WallTimer timer;
    FrameHeader h;
    recv_all(fd, &h, sizeof(h), timer);
    if (h.type == static_cast<std::uint32_t>(FrameType::kAbort))
      fail("communicator aborted by another rank");
    if (h.type != static_cast<std::uint32_t>(expected) || h.seq != seq ||
        h.len > max_len)
      fail("socket transport protocol error (unexpected frame)");
    if (h.len > 0) recv_all(fd, dst, h.len, timer);
    return h;
  }

  void send_all(int fd, const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (len > 0) {
      const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
      if (n <= 0) fail("socket transport peer unreachable (send)");
      p += n;
      len -= static_cast<std::size_t>(n);
    }
  }

  void recv_all(int fd, void* data, std::size_t len, WallTimer& timer) {
    auto* p = static_cast<std::uint8_t*>(data);
    while (len > 0) {
      if (aborted_) fail("communicator aborted by another rank");
      if (timer.seconds() > timeout_)
        fail("collective timed out waiting for peers");
      pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 50);  // re-check abort every 50 ms
      if (ready < 0) fail("socket transport poll failed");
      if (ready == 0) continue;
      const ssize_t n = ::recv(fd, p, len, 0);
      if (n <= 0) fail("socket transport peer died (recv)");
      p += n;
      len -= static_cast<std::size_t>(n);
    }
    stats_.wait_seconds += timer.seconds();
    timer.reset();
  }

  index_t rank_;
  index_t parts_;
  WindowLayout layout_;
  double timeout_;
  std::uint64_t seq_ = 0;  // one shared collective sequence (SPMD)
  bool aborted_ = false;
};

/// Rank 0: listens, accepts the P-1 workers lazily at the first collective,
/// and acts as the fold-and-broadcast hub.
class SocketHubTransport final : public SocketTransportBase {
 public:
  SocketHubTransport(index_t parts, WindowLayout layout,
                     const TransportOptions& opt, int* bound_port)
      : SocketTransportBase(0, parts, std::move(layout),
                            opt.collective_timeout_seconds),
        fds_(static_cast<std::size_t>(parts)) {
    assembly_.resize(layout_.total);
    listen_fd_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
    SPCG_CHECK_MSG(listen_fd_.valid(), "cannot create hub socket");
    int one = 1;
    ::setsockopt(listen_fd_.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr = make_addr(opt.socket_host, opt.socket_port);
    SPCG_CHECK_MSG(::bind(listen_fd_.fd(),
                          reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "cannot bind hub socket on " << opt.socket_host << ":"
                                                << opt.socket_port);
    SPCG_CHECK_MSG(::listen(listen_fd_.fd(), parts) == 0,
                   "cannot listen on hub socket");
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    SPCG_CHECK(::getsockname(listen_fd_.fd(),
                             reinterpret_cast<sockaddr*>(&bound),
                             &blen) == 0);
    port_ = static_cast<int>(ntohs(bound.sin_port));
    if (bound_port != nullptr) *bound_port = port_;
  }

  [[nodiscard]] int port() const { return port_; }

  void barrier() override {
    ensure_connected();
    ++seq_;
    for (index_t r = 1; r < parts_; ++r)
      recv_frame(worker_fd(r), FrameType::kBarrierArrive, seq_, nullptr);
    for (index_t r = 1; r < parts_; ++r)
      send_frame(worker_fd(r), FrameType::kBarrierRelease, seq_, nullptr, 0);
  }

  void reduce_begin(std::span<const double> vals) override {
    SPCG_CHECK(vals.size() >= 1 && vals.size() <= kReduceWidth);
    ensure_connected();
    ++seq_;
    width_ = vals.size();
    for (std::size_t j = 0; j < width_; ++j) own_[j] = vals[j];
  }

  void reduce_end(std::span<double> out) override {
    SPCG_CHECK(out.size() == width_);
    std::vector<std::vector<std::uint8_t>> parts_payload(
        static_cast<std::size_t>(parts_));
    for (index_t r = 1; r < parts_; ++r) {
      auto& pl = parts_payload[static_cast<std::size_t>(r)];
      recv_frame(worker_fd(r), FrameType::kReducePart, seq_, &pl);
      if (pl.size() != width_ * sizeof(double))
        fail("socket transport reduce width mismatch");
    }
    // The deterministic fold: ascending rank order, accumulated in double.
    for (std::size_t j = 0; j < width_; ++j) {
      double acc = own_[j];
      for (index_t r = 1; r < parts_; ++r) {
        double v;
        std::memcpy(&v,
                    parts_payload[static_cast<std::size_t>(r)].data() +
                        j * sizeof(double),
                    sizeof(double));
        acc += v;
      }
      out[j] = acc;
    }
    for (index_t r = 1; r < parts_; ++r)
      send_frame(worker_fd(r), FrameType::kReduceResult, seq_, out.data(),
                 width_ * sizeof(double));
  }

  void window_begin(const void* data, std::size_t bytes) override {
    SPCG_CHECK_MSG(bytes <= layout_.bytes[0],
                   "window publication exceeds the declared window_bytes");
    ensure_connected();
    ++seq_;
    if (bytes > 0) std::memcpy(assembly_.data() + layout_.offset[0], data, bytes);
  }

  void window_end() override {
    for (index_t r = 1; r < parts_; ++r) {
      recv_frame_into(worker_fd(r), FrameType::kWindowPart, seq_,
                      assembly_.data() +
                          layout_.offset[static_cast<std::size_t>(r)],
                      layout_.bytes[static_cast<std::size_t>(r)]);
    }
    for (index_t r = 1; r < parts_; ++r)
      send_frame(worker_fd(r), FrameType::kWindowAll, seq_, assembly_.data(),
                 assembly_.size());
  }

  [[nodiscard]] const void* window(index_t r) const override {
    return assembly_.data() + layout_.offset[static_cast<std::size_t>(r)];
  }

  void abort() noexcept override {
    mark_aborted();
    for (index_t r = 1; r < parts_; ++r)
      send_abort(fds_[static_cast<std::size_t>(r)].fd());
  }

 private:
  void on_abort_observed() noexcept override {
    // Relay so the surviving workers unblock within their own timeout.
    for (index_t r = 1; r < parts_; ++r)
      send_abort(fds_[static_cast<std::size_t>(r)].fd());
  }

  [[nodiscard]] int worker_fd(index_t r) const {
    return fds_[static_cast<std::size_t>(r)].fd();
  }

  /// Accept the P-1 workers and read their Hello frames (first collective).
  void ensure_connected() {
    if (connected_) return;
    WallTimer timer;
    index_t pending = parts_ - 1;
    while (pending > 0) {
      if (timer.seconds() > timeout_)
        fail("timed out waiting for socket workers to connect");
      pollfd pfd{listen_fd_.fd(), POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) continue;
      Socket conn(::accept(listen_fd_.fd(), nullptr, nullptr));
      if (!conn.valid()) continue;
      set_nodelay(conn.fd());
      WallTimer hello_timer;
      FrameHeader h;
      recv_all(conn.fd(), &h, sizeof(h), hello_timer);
      if (h.type != static_cast<std::uint32_t>(FrameType::kHello) ||
          h.rank == 0 || h.rank >= static_cast<std::uint32_t>(parts_))
        fail("socket transport bad hello");
      auto& slot = fds_[static_cast<std::size_t>(h.rank)];
      if (slot.valid()) fail("socket transport duplicate rank hello");
      slot = std::move(conn);
      --pending;
    }
    connected_ = true;
  }

  Socket listen_fd_;
  std::vector<Socket> fds_;  // index = worker rank (0 unused)
  bool connected_ = false;
  int port_ = 0;
  std::array<double, kReduceWidth> own_{};
  std::size_t width_ = 0;
  std::vector<std::uint8_t> assembly_;
};

/// Ranks 1..P-1: connect to the hub (with retry until the timeout) and run
/// every collective as send-contribution / await-reply.
class SocketWorkerTransport final : public SocketTransportBase {
 public:
  SocketWorkerTransport(index_t rank, index_t parts, WindowLayout layout,
                        const TransportOptions& opt)
      : SocketTransportBase(rank, parts, std::move(layout),
                            opt.collective_timeout_seconds) {
    rx_.resize(layout_.total);
    const sockaddr_in addr = make_addr(opt.socket_host, opt.socket_port);
    WallTimer timer;
    for (;;) {
      fd_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
      SPCG_CHECK_MSG(fd_.valid(), "cannot create worker socket");
      if (::connect(fd_.fd(), reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0)
        break;
      fd_.close();
      if (timer.seconds() > opt.collective_timeout_seconds)
        throw CommAborted("timed out connecting to the socket hub");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    set_nodelay(fd_.fd());
    send_frame(fd_.fd(), FrameType::kHello, 0, nullptr, 0);
  }

  void barrier() override {
    ++seq_;
    send_frame(fd_.fd(), FrameType::kBarrierArrive, seq_, nullptr, 0);
    recv_frame(fd_.fd(), FrameType::kBarrierRelease, seq_, nullptr);
  }

  void reduce_begin(std::span<const double> vals) override {
    SPCG_CHECK(vals.size() >= 1 && vals.size() <= kReduceWidth);
    ++seq_;
    width_ = vals.size();
    send_frame(fd_.fd(), FrameType::kReducePart, seq_, vals.data(),
               vals.size() * sizeof(double));
  }

  void reduce_end(std::span<double> out) override {
    SPCG_CHECK(out.size() == width_);
    std::vector<std::uint8_t> payload;
    recv_frame(fd_.fd(), FrameType::kReduceResult, seq_, &payload);
    if (payload.size() != width_ * sizeof(double))
      fail("socket transport reduce width mismatch");
    std::memcpy(out.data(), payload.data(), payload.size());
  }

  void window_begin(const void* data, std::size_t bytes) override {
    SPCG_CHECK_MSG(
        bytes <= layout_.bytes[static_cast<std::size_t>(rank_)],
        "window publication exceeds the declared window_bytes");
    ++seq_;
    send_frame(fd_.fd(), FrameType::kWindowPart, seq_, data, bytes);
  }

  void window_end() override {
    recv_frame_into(fd_.fd(), FrameType::kWindowAll, seq_, rx_.data(),
                    rx_.size());
  }

  [[nodiscard]] const void* window(index_t r) const override {
    return rx_.data() + layout_.offset[static_cast<std::size_t>(r)];
  }

  void abort() noexcept override {
    mark_aborted();
    send_abort(fd_.fd());
  }

 private:
  Socket fd_;
  std::size_t width_ = 0;
  std::vector<std::uint8_t> rx_;
};

}  // namespace

std::vector<std::unique_ptr<Transport>> make_socket_endpoints(
    index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt) {
  SPCG_CHECK(window_bytes.empty() ||
             static_cast<index_t>(window_bytes.size()) == parts);
  const WindowLayout layout(parts, window_bytes);
  int port = 0;
  std::vector<std::unique_ptr<Transport>> eps;
  eps.reserve(static_cast<std::size_t>(parts));
  eps.push_back(std::make_unique<SocketHubTransport>(parts, layout, opt,
                                                     &port));
  TransportOptions wopt = opt;
  wopt.socket_port = port;
  // connect() completes against the hub's listen backlog, so the workers
  // need no concurrent accept loop; the hub accepts at its first collective.
  for (index_t r = 1; r < parts; ++r)
    eps.push_back(
        std::make_unique<SocketWorkerTransport>(r, parts, layout, wopt));
  return eps;
}

std::unique_ptr<Transport> make_socket_endpoint(
    index_t rank, index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt, int* bound_port) {
  SPCG_CHECK(window_bytes.empty() ||
             static_cast<index_t>(window_bytes.size()) == parts);
  const WindowLayout layout(parts, window_bytes);
  if (rank == 0)
    return std::make_unique<SocketHubTransport>(parts, layout, opt,
                                                bound_port);
  SPCG_CHECK_MSG(opt.socket_port > 0,
                 "socket workers need an explicit --port to find the hub");
  return std::make_unique<SocketWorkerTransport>(rank, parts, layout, opt);
}

}  // namespace detail
}  // namespace spcg
