// POSIX shared-memory Transport backing: multi-process ranks on one host.
//
// The group's state lives in one mmap'ed file (by default under /dev/shm —
// tmpfs, so a plain open()+mmap(MAP_SHARED) is the shm_open() layout without
// a librt dependency): a header with the barrier atomics, then the
// double-banked reduce slots, then the double-banked per-rank window
// regions. Every rank computes the identical layout from (parts,
// window_bytes), so offsets need no negotiation.
//
// Barrier: a monotonic arrival counter. The k-th arrival overall belongs to
// phase (k-1)/P; the P-th arrival of a phase publishes phase+1. The counter
// is never reset, so late arrivals for the next phase cannot race a reset.
// Release/acquire on the counter and the phase word make each rank's slot
// and window writes visible to every reader of the completed phase. Waiters
// spin (with yields) against the phase word, observing the abort flag and
// the collective timeout — a dead rank turns into CommAborted on its peers
// within the deadline, never a forever-spin.
//
// Same-host, same-ABI only: raw doubles and bytes are shared in place, and
// std::atomic on the mapped words requires lock-free atomics (asserted).
#include "dist/transport.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstring>

#include "support/timer.h"

namespace spcg {
namespace detail {
namespace {

constexpr std::uint64_t kShmMagic = 0x53504347'53484d31ull;  // "SPCG" "SHM1"

struct ShmHeader {
  std::atomic<std::uint64_t> magic;     // kShmMagic once fully initialized
  std::uint64_t total_bytes = 0;
  std::uint32_t parts = 0;
  std::uint32_t pad = 0;
  std::atomic<std::uint64_t> arrivals;  // monotonic, never reset
  std::atomic<std::uint64_t> phase;     // completed barrier phases
  std::atomic<std::uint32_t> abort;
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "shm transport needs lock-free atomics on the mapped words");

constexpr std::size_t align64(std::size_t n) { return (n + 63) & ~std::size_t{63}; }

/// Deterministic layout: header | slots (2 banks x P x 64B) | windows
/// (2 banks x per-rank 64B-aligned regions).
struct ShmLayout {
  std::size_t slot_offset = 0;
  std::size_t window_offset = 0;           // bank 0
  std::size_t window_bank_stride = 0;      // bank 1 = bank 0 + stride
  std::vector<std::size_t> rank_offset;    // within a bank
  std::vector<std::size_t> rank_bytes;     // caller-declared maxima
  std::size_t total = 0;

  ShmLayout(index_t parts, std::span<const std::size_t> window_bytes) {
    slot_offset = align64(sizeof(ShmHeader));
    const std::size_t slot_bytes =
        2u * static_cast<std::size_t>(parts) * 64u;
    window_offset = slot_offset + slot_bytes;
    rank_offset.resize(static_cast<std::size_t>(parts));
    rank_bytes.resize(static_cast<std::size_t>(parts));
    std::size_t off = 0;
    for (index_t r = 0; r < parts; ++r) {
      rank_offset[static_cast<std::size_t>(r)] = off;
      const std::size_t bytes =
          window_bytes.empty()
              ? 0
              : window_bytes[static_cast<std::size_t>(r)];
      rank_bytes[static_cast<std::size_t>(r)] = bytes;
      off += align64(bytes);
    }
    window_bank_stride = off;
    total = window_offset + 2u * window_bank_stride;
  }
};

/// One mapping of the segment. In-process groups share one ShmSegment via
/// shared_ptr; multi-process ranks each hold their own mapping of the file.
class ShmSegment {
 public:
  static std::shared_ptr<ShmSegment> create(const std::string& path,
                                            index_t parts,
                                            std::size_t total_bytes) {
    auto seg = std::make_shared<ShmSegment>();
    seg->path_ = path;
    seg->owner_ = true;
    seg->fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0600);
    SPCG_CHECK_MSG(seg->fd_ >= 0, "cannot create shm segment " << path);
    SPCG_CHECK_MSG(::ftruncate(seg->fd_, static_cast<off_t>(total_bytes)) == 0,
                   "cannot size shm segment " << path);
    seg->map(total_bytes);
    auto* hdr = new (seg->base_) ShmHeader{};
    hdr->total_bytes = total_bytes;
    hdr->parts = static_cast<std::uint32_t>(parts);
    hdr->arrivals.store(0, std::memory_order_relaxed);
    hdr->phase.store(0, std::memory_order_relaxed);
    hdr->abort.store(0, std::memory_order_relaxed);
    hdr->magic.store(kShmMagic, std::memory_order_release);  // ready flag
    return seg;
  }

  static std::shared_ptr<ShmSegment> attach(const std::string& path,
                                            index_t parts,
                                            std::size_t total_bytes,
                                            double timeout_seconds) {
    auto seg = std::make_shared<ShmSegment>();
    seg->path_ = path;
    WallTimer timer;
    for (;;) {
      if (seg->fd_ < 0) seg->fd_ = ::open(path.c_str(), O_RDWR);
      if (seg->fd_ >= 0) {
        struct stat st{};
        if (::fstat(seg->fd_, &st) == 0 &&
            static_cast<std::size_t>(st.st_size) >= total_bytes) {
          if (seg->base_ == nullptr) seg->map(total_bytes);
          const auto* hdr = static_cast<const ShmHeader*>(seg->base_);
          if (hdr->magic.load(std::memory_order_acquire) == kShmMagic) {
            SPCG_CHECK_MSG(hdr->parts == static_cast<std::uint32_t>(parts) &&
                               hdr->total_bytes == total_bytes,
                           "shm segment " << path
                                          << " was created for a different "
                                             "group shape");
            return seg;
          }
        }
      }
      if (timer.seconds() > timeout_seconds)
        throw CommAborted("timed out attaching shm segment " + path);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  ShmSegment() = default;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  ~ShmSegment() {
    if (base_ != nullptr) ::munmap(base_, bytes_);
    if (fd_ >= 0) ::close(fd_);
    if (owner_) ::unlink(path_.c_str());
  }

  [[nodiscard]] ShmHeader* header() const {
    return static_cast<ShmHeader*>(base_);
  }
  [[nodiscard]] std::uint8_t* bytes() const {
    return static_cast<std::uint8_t*>(base_);
  }

 private:
  void map(std::size_t total_bytes) {
    bytes_ = total_bytes;
    base_ = ::mmap(nullptr, total_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd_, 0);
    SPCG_CHECK_MSG(base_ != MAP_FAILED, "cannot map shm segment " << path_);
  }

  std::string path_;
  int fd_ = -1;
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  bool owner_ = false;
};

class ShmTransport final : public Transport {
 public:
  ShmTransport(std::shared_ptr<ShmSegment> seg, ShmLayout layout,
               index_t rank, index_t parts, double timeout)
      : seg_(std::move(seg)), layout_(std::move(layout)), rank_(rank),
        parts_(parts), timeout_(timeout) {}

  [[nodiscard]] index_t rank() const override { return rank_; }
  [[nodiscard]] index_t size() const override { return parts_; }

  void barrier() override { wait_phase(arrive()); }

  void reduce_begin(std::span<const double> vals) override {
    SPCG_CHECK(vals.size() >= 1 && vals.size() <= kReduceWidth);
    const auto bank = static_cast<std::size_t>(reduce_seq_++ & 1u);
    double* slot = slot_ptr(bank, rank_);
    for (std::size_t j = 0; j < vals.size(); ++j) slot[j] = vals[j];
    reduce_bank_ = bank;
    reduce_width_ = vals.size();
    reduce_phase_ = arrive();
  }

  void reduce_end(std::span<double> out) override {
    SPCG_CHECK(out.size() == reduce_width_);
    wait_phase(reduce_phase_);
    for (std::size_t j = 0; j < reduce_width_; ++j) {
      double acc = 0.0;
      for (index_t r = 0; r < parts_; ++r)
        acc += slot_ptr(reduce_bank_, r)[j];
      out[j] = acc;
    }
  }

  void window_begin(const void* data, std::size_t bytes) override {
    SPCG_CHECK_MSG(
        bytes <= layout_.rank_bytes[static_cast<std::size_t>(rank_)],
        "window publication exceeds the declared window_bytes");
    const auto bank = static_cast<std::size_t>(window_seq_++ & 1u);
    if (bytes > 0) std::memcpy(window_ptr(bank, rank_), data, bytes);
    window_bank_ = bank;
    window_phase_ = arrive();
  }

  void window_end() override { wait_phase(window_phase_); }

  [[nodiscard]] const void* window(index_t r) const override {
    return window_ptr(window_bank_, r);
  }

  void abort() noexcept override {
    seg_->header()->abort.store(1, std::memory_order_relaxed);
  }

  [[nodiscard]] bool aborted() const override {
    return seg_->header()->abort.load(std::memory_order_relaxed) != 0;
  }

 private:
  [[nodiscard]] double* slot_ptr(std::size_t bank, index_t r) const {
    return reinterpret_cast<double*>(
        seg_->bytes() + layout_.slot_offset +
        (bank * static_cast<std::size_t>(parts_) +
         static_cast<std::size_t>(r)) *
            64u);
  }

  [[nodiscard]] std::uint8_t* window_ptr(std::size_t bank, index_t r) const {
    return seg_->bytes() + layout_.window_offset +
           bank * layout_.window_bank_stride +
           layout_.rank_offset[static_cast<std::size_t>(r)];
  }

  std::uint64_t arrive() {
    ShmHeader* hdr = seg_->header();
    // acq_rel: release this rank's slot/window writes into the counter's
    // modification order; the phase publication below carries them to
    // every waiter.
    const std::uint64_t count =
        hdr->arrivals.fetch_add(1, std::memory_order_acq_rel) + 1;
    const std::uint64_t ph = (count - 1) / static_cast<std::uint64_t>(parts_);
    if (count % static_cast<std::uint64_t>(parts_) == 0)
      hdr->phase.store(ph + 1, std::memory_order_release);
    return ph;
  }

  void wait_phase(std::uint64_t ph) {
    ShmHeader* hdr = seg_->header();
    WallTimer timer;
    int spins = 0;
    while (hdr->phase.load(std::memory_order_acquire) <= ph) {
      if (hdr->abort.load(std::memory_order_relaxed) != 0) {
        stats_.wait_seconds += timer.seconds();
        throw CommAborted();
      }
      if (timer.seconds() > timeout_) {
        hdr->abort.store(1, std::memory_order_relaxed);
        stats_.wait_seconds += timer.seconds();
        throw CommAborted("collective timed out waiting for peers");
      }
      if (++spins > 1024) std::this_thread::yield();
    }
    stats_.wait_seconds += timer.seconds();
    if (hdr->abort.load(std::memory_order_relaxed) != 0) throw CommAborted();
  }

  std::shared_ptr<ShmSegment> seg_;
  ShmLayout layout_;
  index_t rank_;
  index_t parts_;
  double timeout_;
  std::uint64_t reduce_seq_ = 0;
  std::uint64_t window_seq_ = 0;
  std::size_t reduce_bank_ = 0;
  std::size_t reduce_width_ = 0;
  std::uint64_t reduce_phase_ = 0;
  std::size_t window_bank_ = 0;
  std::uint64_t window_phase_ = 0;
};

std::string auto_segment_path() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  const char* dir = ::access("/dev/shm", W_OK) == 0 ? "/dev/shm" : "/tmp";
  return std::string(dir) + "/spcg-shm." +
         std::to_string(static_cast<std::uint64_t>(::getpid())) + "." +
         std::to_string(id);
}

}  // namespace

std::vector<std::unique_ptr<Transport>> make_shm_endpoints(
    index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt) {
  SPCG_CHECK(window_bytes.empty() ||
             static_cast<index_t>(window_bytes.size()) == parts);
  const ShmLayout layout(parts, window_bytes);
  const std::string path =
      opt.shm_path.empty() ? auto_segment_path() : opt.shm_path;
  auto seg = ShmSegment::create(path, parts, layout.total);
  std::vector<std::unique_ptr<Transport>> eps;
  eps.reserve(static_cast<std::size_t>(parts));
  for (index_t r = 0; r < parts; ++r)
    eps.push_back(std::make_unique<ShmTransport>(
        seg, layout, r, parts, opt.collective_timeout_seconds));
  return eps;
}

std::unique_ptr<Transport> attach_shm_endpoint(
    index_t rank, index_t parts, std::span<const std::size_t> window_bytes,
    const TransportOptions& opt) {
  SPCG_CHECK(window_bytes.empty() ||
             static_cast<index_t>(window_bytes.size()) == parts);
  const ShmLayout layout(parts, window_bytes);
  std::shared_ptr<ShmSegment> seg =
      rank == 0 ? ShmSegment::create(opt.shm_path, parts, layout.total)
                : ShmSegment::attach(opt.shm_path, parts, layout.total,
                                     opt.collective_timeout_seconds);
  return std::make_unique<ShmTransport>(std::move(seg), layout, rank, parts,
                                        opt.collective_timeout_seconds);
}

}  // namespace detail
}  // namespace spcg
