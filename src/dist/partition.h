// Row partitioning of an SPD system for the distributed solver layer.
//
// A Partition assigns every global row to exactly one of P parts; a
// LocalSystem materializes one part's rows with columns renumbered into a
// local space — owned columns first (ascending global order), then halo
// columns (off-part couplings, also ascending) — and splits the block row
// into an *interior* matrix (owned x owned, also the restricted-additive-
// Schwarz subdomain matrix the per-part SPCG preconditioner is built from)
// and a *boundary* matrix (owned x halo). The split is what the overlapped
// solver exploits: the interior SpMV needs no remote data and can run while
// the halo values are in flight.
//
// Strategies:
//   * kContiguous — balanced contiguous row blocks; optimal for matrices
//     already in a banded/natural order (small edge cut by construction).
//   * kBfsGreedy  — greedy graph growing: BFS fronts grow each part to its
//     balanced size, seeded per connected component, which keeps parts
//     connected and cuts far fewer edges than contiguous splitting on
//     shuffled or irregular orderings.
// Both accept an RCM pre-pass (reverse_cuthill_mckee from sparse/reorder.h):
// rows are bucketed by their *RCM position* instead of their natural index,
// so contiguous blocks become low-bandwidth, well-connected slices while the
// local row order (and therefore all numerics) stays ascending-global.
#pragma once

#include <algorithm>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "sparse/csr.h"
#include "sparse/reorder.h"

namespace spcg {

struct PartitionOptions {
  enum class Strategy { kContiguous, kBfsGreedy };
  Strategy strategy = Strategy::kContiguous;
  /// Bucket rows by their reverse_cuthill_mckee position before splitting
  /// (locality pre-pass; kContiguous only — kBfsGreedy discovers locality
  /// through the graph itself).
  bool rcm_prepass = false;
};

inline const char* to_string(PartitionOptions::Strategy s) {
  return s == PartitionOptions::Strategy::kContiguous ? "contiguous"
                                                      : "bfs-greedy";
}

/// Assignment of every global row to one part. `owned[p]` lists part p's
/// rows in ascending global order — that order *is* the local row order of
/// p's LocalSystem, so local<->global maps are just this array plus
/// binary search.
struct Partition {
  index_t parts = 0;
  index_t global_rows = 0;
  std::vector<index_t> part_of;             // global row -> owning part
  std::vector<std::vector<index_t>> owned;  // per part, ascending global rows
};

/// Throws spcg::Error unless every global row is owned exactly once and the
/// ownership lists agree with part_of (the "every row exactly once"
/// invariant of the distributed layer).
inline void validate_partition(const Partition& p) {
  SPCG_CHECK(p.parts >= 1);
  SPCG_CHECK(static_cast<index_t>(p.owned.size()) == p.parts);
  SPCG_CHECK(static_cast<index_t>(p.part_of.size()) == p.global_rows);
  std::vector<char> seen(static_cast<std::size_t>(p.global_rows), 0);
  for (index_t r = 0; r < p.parts; ++r) {
    index_t prev = -1;
    for (const index_t g : p.owned[static_cast<std::size_t>(r)]) {
      SPCG_CHECK_MSG(g >= 0 && g < p.global_rows, "row " << g << " out of range");
      SPCG_CHECK_MSG(g > prev, "owned list of part " << r << " not ascending");
      SPCG_CHECK_MSG(!seen[static_cast<std::size_t>(g)],
                     "row " << g << " owned twice");
      SPCG_CHECK_MSG(p.part_of[static_cast<std::size_t>(g)] == r,
                     "part_of disagrees with owned list at row " << g);
      seen[static_cast<std::size_t>(g)] = 1;
      prev = g;
    }
  }
  for (index_t g = 0; g < p.global_rows; ++g)
    SPCG_CHECK_MSG(seen[static_cast<std::size_t>(g)], "row " << g << " unowned");
}

namespace detail {

/// Balanced block boundaries: part r covers positions [n*r/P, n*(r+1)/P).
inline index_t block_of(index_t position, index_t n, index_t parts) {
  // Inverse of the boundary formula, robust to the remainder distribution.
  const std::size_t guess = (static_cast<std::size_t>(position) + 1) *
                                static_cast<std::size_t>(parts) /
                                static_cast<std::size_t>(n);
  index_t r = static_cast<index_t>(guess);
  if (r >= parts) r = parts - 1;
  auto lo = [&](index_t part) {
    return static_cast<index_t>(static_cast<std::size_t>(n) *
                                static_cast<std::size_t>(part) /
                                static_cast<std::size_t>(parts));
  };
  while (position < lo(r)) --r;
  while (position >= lo(r + 1)) ++r;
  return r;
}

inline Partition finalize_partition(index_t n, index_t parts,
                                    std::vector<index_t> part_of) {
  Partition p;
  p.parts = parts;
  p.global_rows = n;
  p.part_of = std::move(part_of);
  p.owned.resize(static_cast<std::size_t>(parts));
  for (index_t g = 0; g < n; ++g)
    p.owned[static_cast<std::size_t>(p.part_of[static_cast<std::size_t>(g)])]
        .push_back(g);  // ascending by construction of the scan
  return p;
}

}  // namespace detail

/// Partition the rows of square A into `parts` parts under `opt`.
template <class T>
Partition make_partition(const Csr<T>& a, index_t parts,
                         const PartitionOptions& opt = {}) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK_MSG(parts >= 1 && parts <= a.rows,
                 "parts " << parts << " vs rows " << a.rows);
  const index_t n = a.rows;
  std::vector<index_t> part_of(static_cast<std::size_t>(n), -1);

  if (opt.strategy == PartitionOptions::Strategy::kContiguous) {
    if (opt.rcm_prepass) {
      const Permutation perm = reverse_cuthill_mckee(a);
      for (index_t g = 0; g < n; ++g)
        part_of[static_cast<std::size_t>(g)] =
            detail::block_of(perm[static_cast<std::size_t>(g)], n, parts);
    } else {
      for (index_t g = 0; g < n; ++g)
        part_of[static_cast<std::size_t>(g)] = detail::block_of(g, n, parts);
    }
    return detail::finalize_partition(n, parts, std::move(part_of));
  }

  // kBfsGreedy: grow parts through BFS fronts. Every part fills to its
  // balanced size before the next one starts; fronts are seeded once per
  // connected component (lowest unassigned vertex, deterministic) so no
  // component is split gratuitously and none is missed.
  index_t components = 0;
  const std::vector<index_t> comp = connected_components(a, &components);
  (void)comp;  // labels are implicit in the seed scan below
  index_t assigned = 0;
  index_t current = 0;
  auto part_full = [&](index_t r) {
    const index_t hi = static_cast<index_t>(static_cast<std::size_t>(n) *
                                            (static_cast<std::size_t>(r) + 1) /
                                            static_cast<std::size_t>(parts));
    return assigned >= hi;
  };
  std::queue<index_t> q;
  auto assign = [&](index_t v) {
    while (current + 1 < parts && part_full(current)) ++current;
    part_of[static_cast<std::size_t>(v)] = current;
    ++assigned;
  };
  for (index_t seed = 0; seed < n; ++seed) {
    if (part_of[static_cast<std::size_t>(seed)] >= 0) continue;
    assign(seed);
    q.push(seed);
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      for (const index_t w : a.row_cols(v)) {
        if (part_of[static_cast<std::size_t>(w)] < 0) {
          assign(w);
          q.push(w);
        }
      }
    }
  }
  return detail::finalize_partition(n, parts, std::move(part_of));
}

/// Edge-cut and balance summary of a partition against its matrix.
struct PartitionStats {
  index_t edge_cut = 0;   // stored entries (i, j) with part(i) != part(j)
  index_t min_rows = 0;
  index_t max_rows = 0;
  double imbalance = 1.0;  // max_rows / ceil(n / parts)
};

template <class T>
PartitionStats partition_stats(const Csr<T>& a, const Partition& p) {
  PartitionStats s;
  s.min_rows = a.rows;
  for (const auto& rows : p.owned) {
    s.min_rows = std::min(s.min_rows, static_cast<index_t>(rows.size()));
    s.max_rows = std::max(s.max_rows, static_cast<index_t>(rows.size()));
  }
  for (index_t i = 0; i < a.rows; ++i) {
    for (const index_t j : a.row_cols(i)) {
      if (p.part_of[static_cast<std::size_t>(i)] !=
          p.part_of[static_cast<std::size_t>(j)])
        ++s.edge_cut;
    }
  }
  const index_t ideal = (a.rows + p.parts - 1) / p.parts;
  s.imbalance = ideal == 0 ? 1.0
                           : static_cast<double>(s.max_rows) /
                                 static_cast<double>(ideal);
  return s;
}

/// One part's rows in local numbering, split into interior and boundary
/// blocks, plus the gather lists of its halo exchange.
template <class T>
struct LocalSystem {
  index_t part = 0;
  std::vector<index_t> owned;  // local row -> global row, ascending
  std::vector<index_t> halo;   // halo slot -> global column, ascending

  /// Interior block: owned rows x owned columns (local numbering). This is
  /// also the restricted-additive-Schwarz subdomain matrix the per-part
  /// preconditioner factorizes (SPD since it is a principal submatrix of an
  /// SPD A). For parts == 1 it is bitwise-identical to A.
  Csr<T> a_interior;
  /// Boundary block: owned rows x halo slots. Local SpMV is
  /// y = a_interior * x_owned + a_boundary * x_halo.
  Csr<T> a_boundary;

  /// Gather list against one neighbor: this part fills halo slot
  /// dst_halo[k] with the neighbor's owned value at src_local[k].
  struct HaloEdge {
    index_t neighbor = 0;
    std::vector<index_t> src_local;
    std::vector<index_t> dst_halo;
  };
  std::vector<HaloEdge> edges;  // ascending by neighbor

  index_t interior_rows = 0;  // rows with no boundary entry (stat)

  [[nodiscard]] index_t rows() const {
    return static_cast<index_t>(owned.size());
  }
  [[nodiscard]] index_t halo_size() const {
    return static_cast<index_t>(halo.size());
  }
};

/// Materialize every part's LocalSystem from the global matrix.
template <class T>
std::vector<LocalSystem<T>> build_local_systems(const Csr<T>& a,
                                                const Partition& p) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK(p.global_rows == a.rows);
  // Position of each global row inside its owner's owned list.
  std::vector<index_t> local_of(static_cast<std::size_t>(a.rows), -1);
  for (index_t r = 0; r < p.parts; ++r) {
    const auto& rows = p.owned[static_cast<std::size_t>(r)];
    for (std::size_t l = 0; l < rows.size(); ++l)
      local_of[static_cast<std::size_t>(rows[l])] = static_cast<index_t>(l);
  }

  std::vector<LocalSystem<T>> out(static_cast<std::size_t>(p.parts));
  for (index_t r = 0; r < p.parts; ++r) {
    LocalSystem<T>& loc = out[static_cast<std::size_t>(r)];
    loc.part = r;
    loc.owned = p.owned[static_cast<std::size_t>(r)];
    const index_t n_loc = loc.rows();

    // Halo: every off-part column referenced by this part's rows.
    for (const index_t g : loc.owned) {
      for (const index_t j : a.row_cols(g)) {
        if (p.part_of[static_cast<std::size_t>(j)] != r) loc.halo.push_back(j);
      }
    }
    std::sort(loc.halo.begin(), loc.halo.end());
    loc.halo.erase(std::unique(loc.halo.begin(), loc.halo.end()),
                   loc.halo.end());
    auto halo_slot = [&](index_t g) {
      return static_cast<index_t>(
          std::lower_bound(loc.halo.begin(), loc.halo.end(), g) -
          loc.halo.begin());
    };

    // Split each owned row into interior / boundary entries. Owned and halo
    // lists are ascending in global order, so local column indices stay
    // sorted within each row.
    loc.a_interior = Csr<T>(n_loc, n_loc);
    loc.a_boundary = Csr<T>(n_loc, loc.halo_size());
    for (index_t l = 0; l < n_loc; ++l) {
      const index_t g = loc.owned[static_cast<std::size_t>(l)];
      bool has_boundary = false;
      for (index_t q = a.rowptr[static_cast<std::size_t>(g)];
           q < a.rowptr[static_cast<std::size_t>(g) + 1]; ++q) {
        const index_t j = a.colind[static_cast<std::size_t>(q)];
        const T v = a.values[static_cast<std::size_t>(q)];
        if (p.part_of[static_cast<std::size_t>(j)] == r) {
          loc.a_interior.colind.push_back(local_of[static_cast<std::size_t>(j)]);
          loc.a_interior.values.push_back(v);
        } else {
          loc.a_boundary.colind.push_back(halo_slot(j));
          loc.a_boundary.values.push_back(v);
          has_boundary = true;
        }
      }
      loc.a_interior.rowptr[static_cast<std::size_t>(l) + 1] =
          static_cast<index_t>(loc.a_interior.colind.size());
      loc.a_boundary.rowptr[static_cast<std::size_t>(l) + 1] =
          static_cast<index_t>(loc.a_boundary.colind.size());
      if (!has_boundary) ++loc.interior_rows;
    }

    // Gather lists, grouped by owning neighbor (one edge per neighbor,
    // ascending; slot lists inherit the halo's ascending order).
    std::vector<index_t> edge_of(static_cast<std::size_t>(p.parts), -1);
    for (std::size_t h = 0; h < loc.halo.size(); ++h) {
      const index_t g = loc.halo[h];
      const index_t owner = p.part_of[static_cast<std::size_t>(g)];
      if (edge_of[static_cast<std::size_t>(owner)] < 0) {
        edge_of[static_cast<std::size_t>(owner)] =
            static_cast<index_t>(loc.edges.size());
        loc.edges.push_back({owner, {}, {}});
      }
      auto& edge =
          loc.edges[static_cast<std::size_t>(edge_of[static_cast<std::size_t>(owner)])];
      edge.src_local.push_back(local_of[static_cast<std::size_t>(g)]);
      edge.dst_halo.push_back(static_cast<index_t>(h));
    }
    std::sort(loc.edges.begin(), loc.edges.end(),
              [](const auto& x, const auto& y) {
                return x.neighbor < y.neighbor;
              });
  }
  return out;
}

/// Gather the owned slice of a global vector (local[l] = global[owned[l]]).
template <class T>
std::vector<T> gather_local(std::span<const T> global,
                            const std::vector<index_t>& owned) {
  std::vector<T> out;
  out.reserve(owned.size());
  for (const index_t g : owned) out.push_back(global[static_cast<std::size_t>(g)]);
  return out;
}

/// Scatter a local slice back into a global vector.
template <class T>
void scatter_local(std::span<const T> local,
                   const std::vector<index_t>& owned, std::span<T> global) {
  SPCG_CHECK(local.size() == owned.size());
  for (std::size_t l = 0; l < owned.size(); ++l)
    global[static_cast<std::size_t>(owned[l])] = local[l];
}

}  // namespace spcg
