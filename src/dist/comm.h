// Typed communicator facade for the distributed solver layer: one rank's
// handle over a pluggable Transport endpoint (dist/transport.h), carrying
// the collectives a PCG iteration needs — barrier, fused all-reduce
// (deterministic), and neighbor halo exchange.
//
// Determinism contract (delegated to the transport): the all-reduce folds
// per-rank partials in ascending rank order, accumulated in double. The
// result is (a) bitwise identical on every rank, (b) bitwise reproducible
// run-to-run for a fixed rank count, and (c) for P == 1 bitwise equal to
// the serial accumulation — which is what makes dist_pcg(P=1) bitwise-equal
// to spcg_solve.
//
// Split-phase collectives: reduce_begin/exchange_begin publish this rank's
// contribution and *arrive* at the collective; the matching _end *waits*
// and then reads. Work placed between begin and end (interior SpMV, a
// preconditioner apply) overlaps the other ranks' arrival — the analogue of
// overlapping communication with computation, on any backing.
//
// One caller-facing reuse rule (the transport contract): a buffer published
// to exchange_begin must not be mutated until after the next collective
// (any reduce, barrier or exchange). Both solver loops satisfy it because a
// dot-product reduction always follows an SpMV before its input vector is
// updated.
//
// Stats split: the Communicator counts traffic (allreduces, halo exchanges,
// halo bytes, overlapped compute) into the transport's CommStats; the
// transport itself accounts blocked wait time — so stats() is one complete
// per-rank profile regardless of backing.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dist/partition.h"
#include "dist/transport.h"
#include "support/error.h"

namespace spcg {

template <class T>
class Communicator;

/// Compatibility shim: a P-rank in-process world. Construct once, hand a
/// Communicator to each rank thread. New code should build a TransportGroup
/// via make_transport_group and wrap each endpoint in a Communicator — this
/// class survives so existing harnesses (tests, benches) keep working.
template <class T>
class CommWorld {
 public:
  explicit CommWorld(index_t ranks, const TransportOptions& opt = {})
      : group_(make_transport_group(ranks, {}, opt)) {
    SPCG_CHECK(ranks >= 1);
  }

  CommWorld(const CommWorld&) = delete;
  CommWorld& operator=(const CommWorld&) = delete;

  [[nodiscard]] index_t size() const { return group_->size(); }
  [[nodiscard]] bool aborted() const { return group_->aborted(); }
  [[nodiscard]] Transport& transport(index_t rank) {
    return group_->transport(rank);
  }

  /// Widest fused reduction supported (enough for {dot, dot, norm^2, spare}).
  static constexpr std::size_t kReduceWidth = Transport::kReduceWidth;

 private:
  std::unique_ptr<TransportGroup> group_;
};

/// One rank's typed handle over a Transport endpoint. Not thread-safe;
/// exactly one thread drives each rank, and all ranks must issue the same
/// collective sequence.
template <class T>
class Communicator {
 public:
  explicit Communicator(Transport* transport) : t_(transport) {
    SPCG_CHECK(t_ != nullptr);
  }

  /// Legacy spelling over an in-process world.
  Communicator(CommWorld<T>* world, index_t rank)
      : Communicator(&world->transport(rank)) {}

  [[nodiscard]] index_t rank() const { return t_->rank(); }
  [[nodiscard]] index_t size() const { return t_->size(); }
  [[nodiscard]] const CommStats& stats() const { return t_->stats(); }

  /// Plain synchronization point (also closes the mutation window of a
  /// preceding exchange).
  void barrier() { t_->barrier(); }

  struct ReduceHandle {
    std::size_t width = 0;
  };

  /// Publish this rank's partials and arrive. Compute between begin and end
  /// overlaps the reduction's synchronization.
  ReduceHandle reduce_begin(std::span<const double> vals) {
    ++t_->mutable_stats().allreduces;
    t_->reduce_begin(vals);
    return ReduceHandle{vals.size()};
  }

  /// Wait for every rank's partials folded in ascending rank order (the
  /// deterministic reduction). Every rank computes the same bits.
  void reduce_end(ReduceHandle& h, std::span<double> out) {
    SPCG_CHECK(out.size() == h.width);
    t_->reduce_end(out);
  }

  /// Blocking fused all-reduce (in place).
  void allreduce(std::span<double> vals) {
    ReduceHandle h = reduce_begin(vals);
    reduce_end(h, vals);
  }

  /// Blocking single-value all-reduce.
  double allreduce1(double v) {
    std::array<double, 1> buf{v};
    allreduce(std::span<double>(buf));
    return buf[0];
  }

  struct ExchangeHandle {};

  /// Publish this rank's owned vector and arrive. `owned` must stay
  /// unmodified until after the next collective following exchange_end.
  ExchangeHandle exchange_begin(std::span<const T> owned) {
    ++t_->mutable_stats().halo_exchanges;
    t_->window_begin(owned.data(), owned.size_bytes());
    return ExchangeHandle{};
  }

  /// Wait for all publications, then gather this rank's halo slots from its
  /// neighbors' published vectors.
  void exchange_end(ExchangeHandle&, const LocalSystem<T>& local,
                    std::span<T> halo) {
    SPCG_CHECK(static_cast<index_t>(halo.size()) == local.halo_size());
    t_->window_end();
    for (const auto& edge : local.edges) {
      const T* src = static_cast<const T*>(t_->window(edge.neighbor));
      for (std::size_t k = 0; k < edge.src_local.size(); ++k)
        halo[static_cast<std::size_t>(edge.dst_halo[k])] =
            src[static_cast<std::size_t>(edge.src_local[k])];
      t_->mutable_stats().halo_bytes += edge.src_local.size() * sizeof(T);
    }
  }

  /// Record compute time spent inside an open collective (the overlapped
  /// portion of communication); feeds the overlap-efficiency metric.
  void note_overlap_compute(double seconds) {
    t_->mutable_stats().overlap_hidden_seconds += seconds;
  }

  /// Mark the group aborted and unblock the surviving ranks; they observe
  /// the flag and throw CommAborted at their next collective wait. Call from
  /// the rank's top-level catch (i.e. outside any begin/end window).
  void abort() noexcept { t_->abort(); }

 private:
  Transport* t_;
};

}  // namespace spcg
