// In-process communicator for the distributed solver layer: P std::thread
// ranks over one CommWorld, with the collectives a PCG iteration needs —
// barrier, fused all-reduce (deterministic), and neighbor halo exchange.
//
// Determinism contract: all-reduce writes each rank's partial into a
// per-rank slot and, after one barrier phase, every rank sums the slots in
// ascending rank order. The result is therefore (a) bitwise identical on
// every rank, (b) bitwise reproducible run-to-run for a fixed rank count,
// and (c) for P == 1 bitwise equal to the serial accumulation — which is
// what makes dist_pcg(P=1) bitwise-equal to spcg_solve.
//
// Split-phase collectives: reduce_begin/exchange_begin publish this rank's
// contribution and *arrive* at the barrier; the matching _end *waits* for
// the phase and then reads. Work placed between begin and end (interior
// SpMV, a preconditioner apply) overlaps the other ranks' arrival — the
// shared-memory analogue of overlapping communication with computation.
//
// Reuse safety without trailing barriers: slots and publication windows are
// double-banked by collective sequence parity. A rank can re-write a bank
// only after passing the *next* collective's barrier, which every other rank
// can only reach after finishing its reads of the previous use of that bank
// — so one barrier phase per collective suffices. One caller-facing rule
// remains: a buffer published to exchange_begin must not be mutated until
// after the next collective (any reduce, barrier or exchange); both solver
// loops satisfy it because a dot-product reduction always follows an SpMV
// before its input vector is updated.
//
// The interface is deliberately MPI-shaped (rank/size, allreduce, neighbor
// lists) so a later transport (MPI, NCCL-style) can back the same calls.
#pragma once

#include <array>
#include <barrier>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "dist/partition.h"
#include "support/error.h"
#include "support/timer.h"

namespace spcg {

/// Thrown by collectives on ranks that observe another rank's abort; the
/// rank launcher treats it as secondary and rethrows the originating error.
class CommAborted : public Error {
 public:
  CommAborted() : Error("communicator aborted by another rank") {}
};

/// Per-communicator instrumentation, aggregated by the solver after a run.
struct CommStats {
  std::uint64_t allreduces = 0;
  std::uint64_t halo_exchanges = 0;
  std::uint64_t halo_bytes = 0;       // payload gathered by this rank
  double wait_seconds = 0.0;          // time blocked in barrier waits
  double overlap_hidden_seconds = 0.0;  // compute done inside open collectives
};

template <class T>
class Communicator;

/// Shared state of one P-rank world. Construct once, hand a Communicator to
/// each rank thread. Reusable across solves as long as ranks stay in step.
template <class T>
class CommWorld {
 public:
  explicit CommWorld(index_t ranks)
      : size_(ranks),
        barrier_(static_cast<std::ptrdiff_t>(ranks)),
        slots_{std::vector<Slot>(static_cast<std::size_t>(ranks)),
               std::vector<Slot>(static_cast<std::size_t>(ranks))},
        windows_{std::vector<const T*>(static_cast<std::size_t>(ranks), nullptr),
                 std::vector<const T*>(static_cast<std::size_t>(ranks), nullptr)} {
    SPCG_CHECK(ranks >= 1);
  }

  CommWorld(const CommWorld&) = delete;
  CommWorld& operator=(const CommWorld&) = delete;

  [[nodiscard]] index_t size() const { return size_; }
  [[nodiscard]] bool aborted() const {
    return abort_.load(std::memory_order_relaxed);
  }

  /// Widest fused reduction supported (enough for {dot, dot, norm^2, spare}).
  static constexpr std::size_t kReduceWidth = 4;

 private:
  friend class Communicator<T>;

  struct alignas(64) Slot {
    std::array<double, kReduceWidth> v{};
  };

  index_t size_;
  std::barrier<> barrier_;
  std::array<std::vector<Slot>, 2> slots_;          // reduce banks
  std::array<std::vector<const T*>, 2> windows_;    // exchange banks
  std::atomic<bool> abort_{false};
};

/// One rank's handle onto a CommWorld. Not thread-safe; exactly one thread
/// drives each rank, and all ranks must issue the same collective sequence.
template <class T>
class Communicator {
 public:
  Communicator(CommWorld<T>* world, index_t rank)
      : world_(world), rank_(rank) {
    SPCG_CHECK(rank >= 0 && rank < world->size());
  }

  [[nodiscard]] index_t rank() const { return rank_; }
  [[nodiscard]] index_t size() const { return world_->size_; }
  [[nodiscard]] const CommStats& stats() const { return stats_; }

  /// Plain synchronization point (also closes the mutation window of a
  /// preceding exchange).
  void barrier() { wait_checked(world_->barrier_.arrive()); }

  struct ReduceHandle {
    std::barrier<>::arrival_token token;
    int bank = 0;
    std::size_t width = 0;
  };

  /// Publish this rank's partials and arrive. Compute between begin and end
  /// overlaps the reduction's synchronization.
  ReduceHandle reduce_begin(std::span<const double> vals) {
    SPCG_CHECK(vals.size() >= 1 && vals.size() <= CommWorld<T>::kReduceWidth);
    const int bank = static_cast<int>(reduce_seq_++ & 1u);
    auto& slot = world_->slots_[static_cast<std::size_t>(bank)]
                               [static_cast<std::size_t>(rank_)];
    for (std::size_t j = 0; j < vals.size(); ++j) slot.v[j] = vals[j];
    ++stats_.allreduces;
    return ReduceHandle{world_->barrier_.arrive(), bank, vals.size()};
  }

  /// Wait for every rank's partials and fold them in ascending rank order
  /// (the deterministic reduction). Every rank computes the same bits.
  void reduce_end(ReduceHandle& h, std::span<double> out) {
    SPCG_CHECK(out.size() == h.width);
    wait_checked(std::move(h.token));
    const auto& bank = world_->slots_[static_cast<std::size_t>(h.bank)];
    for (std::size_t j = 0; j < h.width; ++j) {
      double acc = 0.0;
      for (index_t r = 0; r < world_->size_; ++r)
        acc += bank[static_cast<std::size_t>(r)].v[j];
      out[j] = acc;
    }
  }

  /// Blocking fused all-reduce (in place).
  void allreduce(std::span<double> vals) {
    ReduceHandle h = reduce_begin(vals);
    reduce_end(h, vals);
  }

  /// Blocking single-value all-reduce.
  double allreduce1(double v) {
    std::array<double, 1> buf{v};
    allreduce(std::span<double>(buf));
    return buf[0];
  }

  struct ExchangeHandle {
    std::barrier<>::arrival_token token;
    int bank = 0;
  };

  /// Publish this rank's owned vector and arrive. `owned` must stay
  /// unmodified until after the next collective following exchange_end.
  ExchangeHandle exchange_begin(const T* owned) {
    const int bank = static_cast<int>(exchange_seq_++ & 1u);
    world_->windows_[static_cast<std::size_t>(bank)]
                    [static_cast<std::size_t>(rank_)] = owned;
    ++stats_.halo_exchanges;
    return ExchangeHandle{world_->barrier_.arrive(), bank};
  }

  /// Wait for all publications, then gather this rank's halo slots from its
  /// neighbors' published vectors.
  void exchange_end(ExchangeHandle& h, const LocalSystem<T>& local,
                    std::span<T> halo) {
    SPCG_CHECK(static_cast<index_t>(halo.size()) == local.halo_size());
    wait_checked(std::move(h.token));
    const auto& window = world_->windows_[static_cast<std::size_t>(h.bank)];
    for (const auto& edge : local.edges) {
      const T* src = window[static_cast<std::size_t>(edge.neighbor)];
      for (std::size_t k = 0; k < edge.src_local.size(); ++k)
        halo[static_cast<std::size_t>(edge.dst_halo[k])] =
            src[static_cast<std::size_t>(edge.src_local[k])];
      stats_.halo_bytes += edge.src_local.size() * sizeof(T);
    }
  }

  /// Record compute time spent inside an open collective (the overlapped
  /// portion of communication); feeds the overlap-efficiency metric.
  void note_overlap_compute(double seconds) {
    stats_.overlap_hidden_seconds += seconds;
  }

  /// Mark the world aborted and drop out of the barrier so the surviving
  /// ranks' waits complete; they observe the flag and throw CommAborted at
  /// their next collective. Call only once per rank, from the rank's
  /// top-level catch (i.e. outside any begin/end window).
  void abort() noexcept {
    world_->abort_.store(true, std::memory_order_relaxed);
    world_->barrier_.arrive_and_drop();
  }

 private:
  void wait_checked(std::barrier<>::arrival_token&& token) {
    WallTimer timer;
    world_->barrier_.wait(std::move(token));
    stats_.wait_seconds += timer.seconds();
    if (world_->abort_.load(std::memory_order_relaxed)) throw CommAborted();
  }

  CommWorld<T>* world_;
  index_t rank_;
  std::uint64_t reduce_seq_ = 0;
  std::uint64_t exchange_seq_ = 0;
  CommStats stats_;
};

}  // namespace spcg
