// TuneDb — the persistent, versioned store of tuning winners.
//
// Each record keys on the exact MatrixFingerprint (pattern + values) and
// carries the structural feature vector, the winning TuneConfig and the
// score/iteration facts of the winning measured trial. Lookup answers two
// questions:
//   * find_exact(fingerprint)  — this very matrix was tuned before: reuse
//     the winner with zero measured trials (the amortization story);
//   * find_nearest(features)   — an unseen matrix warm-starts from the
//     winner of the structurally closest recorded matrix (the warm-start
//     story), subject to a distance threshold.
//
// Persistence is a single versioned JSON document (schema "spcg-tune-db").
// load_file distinguishes a missing file, a schema-version mismatch and a
// corrupt document so callers can choose their degradation (spcg-serve warns
// and continues in-memory-only on corruption instead of aborting).
//
// Thread safety: record/find/save may be called concurrently from tuner
// trials and service workers; all state is guarded by one mutex (the DB is
// consulted once per tune, never per iteration).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "autotune/config.h"
#include "autotune/features.h"
#include "runtime/fingerprint.h"

namespace spcg {

/// One tuned matrix: identity, structure, winner and how it was found.
struct TuneRecord {
  MatrixFingerprint fingerprint;
  MatrixFeatures features;
  TuneConfig config;
  double score = 0.0;             // iterations x modeled iteration seconds
  double per_iteration_seconds = 0.0;
  std::int32_t iterations = 0;    // of the winning measured trial
  std::uint64_t trials = 0;       // measured trials spent finding the winner
};

/// Outcome of loading a DB file.
enum class TuneDbLoad { kOk, kMissing, kVersionMismatch, kCorrupt };

inline const char* to_string(TuneDbLoad s) {
  switch (s) {
    case TuneDbLoad::kOk: return "ok";
    case TuneDbLoad::kMissing: return "missing";
    case TuneDbLoad::kVersionMismatch: return "version-mismatch";
    case TuneDbLoad::kCorrupt: return "corrupt";
  }
  return "unknown";
}

/// A nearest-neighbor match: the record plus its feature distance.
struct TuneNeighbor {
  TuneRecord record;
  double distance = 0.0;
};

class TuneDb {
 public:
  /// Current on-disk schema version. Bump on any incompatible layout change;
  /// load_file rejects other versions with kVersionMismatch.
  static constexpr int kSchemaVersion = 1;

  /// Exact-fingerprint lookup.
  [[nodiscard]] std::optional<TuneRecord> find_exact(
      const MatrixFingerprint& fp) const;

  /// Closest recorded feature vector within `max_distance` (exclusive of
  /// the exact fingerprint `exclude`, so a matrix never warm-starts from
  /// itself). Empty when nothing qualifies.
  [[nodiscard]] std::optional<TuneNeighbor> find_nearest(
      const MatrixFeatures& features, double max_distance,
      const MatrixFingerprint* exclude = nullptr) const;

  /// Upsert by fingerprint: a new matrix is appended; a re-tuned matrix
  /// keeps whichever record has the better (smaller) score, so concurrent
  /// tuners can race benignly.
  void record(const TuneRecord& rec);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<TuneRecord> snapshot() const;
  void clear();

  /// Serialize to the versioned JSON document / parse one back.
  [[nodiscard]] std::string to_json() const;
  TuneDbLoad from_json(const std::string& text);

  /// File round-trip. save_file writes atomically enough for the tests
  /// (truncate + write + flush); load_file maps missing/corrupt/mismatched
  /// files to the TuneDbLoad enum and only replaces the in-memory records
  /// on kOk.
  bool save_file(const std::string& path) const;
  TuneDbLoad load_file(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::vector<TuneRecord> records_;
};

}  // namespace spcg
