// The candidate space of the autotuner: everything the paper (and the repo's
// related-work comparators) expose as a solve-time decision, folded into one
// value type the search loop, the tuning database and the runtime layer all
// agree on.
//
// Dimensions:
//   * sparsification  — off / one fixed ratio of {10, 5, 1}% / adaptive
//                       Algorithm 2 (the Sec-3.2 heuristic);
//   * preconditioner  — ILU(0), ILU(K) for K in 1..3, plus the related-work
//                       alternatives ILUT, SAI and block-Jacobi;
//   * SpTRSV executor — serial or level-scheduled.
//
// ILU-family configs convert losslessly to SpcgOptions (to_spcg_options), so
// tuned winners flow through the existing SolverSession / SetupCache path.
// The alternative preconditioners have no SpcgOptions spelling; the tuner
// measures them through its own trial path and the service solves them
// directly (session_compatible() tells the two worlds apart).
#pragma once

#include <string>
#include <vector>

#include "core/spcg.h"
#include "precond/preconditioner.h"
#include "sparse/csr.h"
#include "support/error.h"

namespace spcg {

/// Preconditioner family of a tuning candidate.
enum class TunePrecond { kIlu0, kIluK, kIlut, kSai, kBlockJacobi };

inline const char* to_string(TunePrecond p) {
  switch (p) {
    case TunePrecond::kIlu0: return "ilu0";
    case TunePrecond::kIluK: return "iluk";
    case TunePrecond::kIlut: return "ilut";
    case TunePrecond::kSai: return "sai";
    case TunePrecond::kBlockJacobi: return "block-jacobi";
  }
  return "unknown";
}

/// Sparsification policy of a tuning candidate.
enum class TuneSparsify {
  kOff,       // non-sparsified baseline
  kFixed,     // exactly one ratio (ratio_percent), no Algorithm 2 gate
  kAdaptive,  // full Algorithm 2 over the default {10, 5, 1}% ladder
};

inline const char* to_string(TuneSparsify s) {
  switch (s) {
    case TuneSparsify::kOff: return "off";
    case TuneSparsify::kFixed: return "fixed";
    case TuneSparsify::kAdaptive: return "adaptive";
  }
  return "unknown";
}

/// One point of the candidate space.
struct TuneConfig {
  TuneSparsify sparsify = TuneSparsify::kOff;
  double ratio_percent = 0.0;  // meaningful for kFixed only
  TunePrecond precond = TunePrecond::kIlu0;
  index_t fill_level = 0;      // meaningful for kIluK only
  TrsvExec executor = TrsvExec::kSerial;

  friend bool operator==(const TuneConfig& a, const TuneConfig& b) {
    return a.sparsify == b.sparsify && a.ratio_percent == b.ratio_percent &&
           a.precond == b.precond && a.fill_level == b.fill_level &&
           a.executor == b.executor;
  }
};

/// Stable human-readable identity, e.g. "fixed5/iluk2/level". Used as the
/// config spelling inside the tuning database and in bench/test output, so
/// it must never depend on enumeration order.
inline std::string config_id(const TuneConfig& c) {
  std::string s;
  switch (c.sparsify) {
    case TuneSparsify::kOff: s = "off"; break;
    case TuneSparsify::kFixed: {
      // Ratios are small percentages; print without trailing zeros.
      double r = c.ratio_percent;
      s = "fixed";
      if (r == static_cast<double>(static_cast<long long>(r))) {
        s += std::to_string(static_cast<long long>(r));
      } else {
        s += std::to_string(r);
      }
      break;
    }
    case TuneSparsify::kAdaptive: s = "adaptive"; break;
  }
  s += "/";
  s += to_string(c.precond);
  if (c.precond == TunePrecond::kIluK) s += std::to_string(c.fill_level);
  s += "/";
  s += c.executor == TrsvExec::kSerial ? "serial" : "level";
  return s;
}

/// Whether the config is expressible as SpcgOptions and therefore flows
/// through SolverSession and the shared SetupCache.
inline bool session_compatible(const TuneConfig& c) {
  return c.precond == TunePrecond::kIlu0 || c.precond == TunePrecond::kIluK;
}

/// Project a session-compatible config onto `base` (tolerances, pivot
/// handling and other solve knobs are preserved from the base options).
inline SpcgOptions to_spcg_options(const TuneConfig& c,
                                   const SpcgOptions& base = {}) {
  SPCG_CHECK_MSG(session_compatible(c),
                 "config " << config_id(c) << " has no SpcgOptions form");
  SpcgOptions opt = base;
  switch (c.sparsify) {
    case TuneSparsify::kOff:
      opt.sparsify_enabled = false;
      break;
    case TuneSparsify::kFixed:
      opt.sparsify_enabled = true;
      // One ratio and a disabled wavefront gate (omega 0) pins Algorithm 2
      // to exactly this split; tau keeps the convergence guard.
      opt.sparsify.ratios = {c.ratio_percent};
      opt.sparsify.omega_percent = 0.0;
      break;
    case TuneSparsify::kAdaptive:
      opt.sparsify_enabled = true;
      opt.sparsify = base.sparsify;  // the full {10,5,1} ladder + gates
      break;
  }
  opt.preconditioner = c.precond == TunePrecond::kIlu0 ? PrecondKind::kIlu0
                                                       : PrecondKind::kIluK;
  if (c.precond == TunePrecond::kIluK) opt.fill_level = c.fill_level;
  opt.executor = c.executor;
  return opt;
}

/// Bounds of the enumeration. The defaults cover the paper's knob set; the
/// alternatives ride along on the original (non-sparsified) matrix — SAI and
/// block-Jacobi have no triangular dependence chains for sparsification to
/// shorten, and ILUT drops inside the factorization already.
struct TuneSpace {
  std::vector<double> fixed_ratios{10.0, 5.0, 1.0};
  bool adaptive = true;               // include the Algorithm 2 policy
  std::vector<index_t> fill_levels{0, 1, 2, 3};  // 0 = ILU(0)
  bool alternatives = true;           // ILUT / SAI / block-Jacobi
  std::vector<TrsvExec> executors{TrsvExec::kSerial,
                                  TrsvExec::kLevelScheduled};
};

/// Enumerate the candidate space in deterministic order.
inline std::vector<TuneConfig> enumerate_candidates(const TuneSpace& space) {
  std::vector<TuneConfig> out;
  std::vector<TuneConfig> sparsify_axis;
  {
    TuneConfig c;
    c.sparsify = TuneSparsify::kOff;
    sparsify_axis.push_back(c);
    for (const double r : space.fixed_ratios) {
      c.sparsify = TuneSparsify::kFixed;
      c.ratio_percent = r;
      sparsify_axis.push_back(c);
    }
    if (space.adaptive) {
      c.sparsify = TuneSparsify::kAdaptive;
      c.ratio_percent = 0.0;
      sparsify_axis.push_back(c);
    }
  }
  for (const TuneConfig& s : sparsify_axis) {
    for (const index_t k : space.fill_levels) {
      for (const TrsvExec e : space.executors) {
        TuneConfig c = s;
        c.precond = k == 0 ? TunePrecond::kIlu0 : TunePrecond::kIluK;
        c.fill_level = k;
        c.executor = e;
        out.push_back(c);
      }
    }
  }
  if (space.alternatives) {
    for (const TunePrecond p :
         {TunePrecond::kIlut, TunePrecond::kSai, TunePrecond::kBlockJacobi}) {
      for (const TrsvExec e : space.executors) {
        // SAI / block-Jacobi applies are wavefront-free; only ILUT's
        // triangular solves distinguish the executors.
        if (p != TunePrecond::kIlut && e != TrsvExec::kSerial) continue;
        TuneConfig c;
        c.sparsify = TuneSparsify::kOff;
        c.precond = p;
        c.executor = e;
        out.push_back(c);
      }
    }
  }
  return out;
}

}  // namespace spcg
