// Umbrella header of the autotuning subsystem (DESIGN.md §10):
//
//   features.h    — structural feature vectors + scale-free distance
//   config.h      — the candidate space and its SpcgOptions projection
//   cost_prior.h  — cost-model ranking that prunes the space pre-measurement
//   tune_db.h     — persistent, versioned store of tuning winners
//   tuner.h       — the measurement-refined search (exact-hit / warm-start /
//                   prior / budgeted early-aborted trials)
//   fill_level.h  — paper-§3.3 best-K probe with per-candidate telemetry
#pragma once

#include "autotune/config.h"        // IWYU pragma: export
#include "autotune/cost_prior.h"    // IWYU pragma: export
#include "autotune/features.h"      // IWYU pragma: export
#include "autotune/fill_level.h"    // IWYU pragma: export
#include "autotune/tune_db.h"       // IWYU pragma: export
#include "autotune/tuner.h"         // IWYU pragma: export
