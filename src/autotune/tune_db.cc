#include "autotune/tune_db.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "support/expo.h"

namespace spcg {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON document model + recursive-descent parser. Only what the
// tuning-DB schema needs: objects, arrays, strings, numbers, booleans and
// null, with the standard escape set. Kept private to this translation unit
// — the repo-wide JSON surface stays "writers emit, is_valid_json checks";
// this is the one place that must *read* structured JSON back.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  [[nodiscard]] const Json* get(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parse the whole document; false on any syntax error or trailing junk.
  bool parse(Json* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word, std::size_t len) {
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool value(Json* out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out->kind = Json::Kind::kString;
        return string(&out->string);
      case 't':
        out->kind = Json::Kind::kBool;
        out->boolean = true;
        return literal("true", 4);
      case 'f':
        out->kind = Json::Kind::kBool;
        out->boolean = false;
        return literal("false", 5);
      case 'n':
        out->kind = Json::Kind::kNull;
        return literal("null", 4);
      default:
        out->kind = Json::Kind::kNumber;
        return number(&out->number);
    }
  }

  bool object(Json* out) {
    out->kind = Json::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      Json v;
      if (!value(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array(Json* out) {
    out->kind = Json::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      Json v;
      if (!value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // The writers here only escape control characters; decode the
          // ASCII range and map anything else to '?' (never produced).
          out->push_back(code < 128 ? static_cast<char>(code) : '?');
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool number(double* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return false;
    try {
      std::size_t used = 0;
      *out = std::stod(s_.substr(start, pos_ - start), &used);
      return used == pos_ - start;
    } catch (...) {
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema helpers.
// ---------------------------------------------------------------------------

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex64(const Json* j, std::uint64_t* out) {
  if (j == nullptr || j->kind != Json::Kind::kString || j->string.empty() ||
      j->string.size() > 16)
    return false;
  std::uint64_t v = 0;
  for (const char c : j->string) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return false;
  }
  *out = v;
  return true;
}

bool get_number(const Json& obj, const std::string& key, double* out) {
  const Json* j = obj.get(key);
  if (j == nullptr || j->kind != Json::Kind::kNumber ||
      !std::isfinite(j->number))
    return false;
  *out = j->number;
  return true;
}

bool get_string(const Json& obj, const std::string& key, std::string* out) {
  const Json* j = obj.get(key);
  if (j == nullptr || j->kind != Json::Kind::kString) return false;
  *out = j->string;
  return true;
}

void write_features(std::ostream& os, const MatrixFeatures& f,
                    const char* indent) {
  os << indent << "\"features\": {"
     << "\"rows\": " << f.rows << ", \"nnz\": " << f.nnz
     << ", \"avg_nnz_per_row\": " << f.avg_nnz_per_row
     << ", \"max_nnz_per_row\": " << f.max_nnz_per_row
     << ", \"avg_bandwidth\": " << f.avg_bandwidth
     << ", \"max_bandwidth\": " << f.max_bandwidth
     << ", \"diag_dominance_min\": " << f.diag_dominance_min
     << ", \"diag_dominance_avg\": " << f.diag_dominance_avg
     << ", \"wavefront_levels\": " << f.wavefront_levels
     << ", \"avg_level_width\": " << f.avg_level_width
     << ", \"max_level_width\": " << f.max_level_width << "}";
}

bool parse_features(const Json* j, MatrixFeatures* f) {
  if (j == nullptr || j->kind != Json::Kind::kObject) return false;
  return get_number(*j, "rows", &f->rows) && get_number(*j, "nnz", &f->nnz) &&
         get_number(*j, "avg_nnz_per_row", &f->avg_nnz_per_row) &&
         get_number(*j, "max_nnz_per_row", &f->max_nnz_per_row) &&
         get_number(*j, "avg_bandwidth", &f->avg_bandwidth) &&
         get_number(*j, "max_bandwidth", &f->max_bandwidth) &&
         get_number(*j, "diag_dominance_min", &f->diag_dominance_min) &&
         get_number(*j, "diag_dominance_avg", &f->diag_dominance_avg) &&
         get_number(*j, "wavefront_levels", &f->wavefront_levels) &&
         get_number(*j, "avg_level_width", &f->avg_level_width) &&
         get_number(*j, "max_level_width", &f->max_level_width);
}

void write_config(std::ostream& os, const TuneConfig& c, const char* indent) {
  os << indent << "\"config\": {\"sparsify\": " << json_quote(to_string(c.sparsify))
     << ", \"ratio_percent\": " << c.ratio_percent
     << ", \"precond\": " << json_quote(to_string(c.precond))
     << ", \"fill_level\": " << c.fill_level << ", \"executor\": "
     << json_quote(c.executor == TrsvExec::kSerial ? "serial" : "level")
     << "}";
}

bool parse_config(const Json* j, TuneConfig* c) {
  if (j == nullptr || j->kind != Json::Kind::kObject) return false;
  std::string sparsify, precond, executor;
  double ratio = 0.0, fill = 0.0;
  if (!get_string(*j, "sparsify", &sparsify) ||
      !get_number(*j, "ratio_percent", &ratio) ||
      !get_string(*j, "precond", &precond) ||
      !get_number(*j, "fill_level", &fill) ||
      !get_string(*j, "executor", &executor))
    return false;
  if (sparsify == "off") c->sparsify = TuneSparsify::kOff;
  else if (sparsify == "fixed") c->sparsify = TuneSparsify::kFixed;
  else if (sparsify == "adaptive") c->sparsify = TuneSparsify::kAdaptive;
  else
    return false;
  c->ratio_percent = ratio;
  if (precond == "ilu0") c->precond = TunePrecond::kIlu0;
  else if (precond == "iluk") c->precond = TunePrecond::kIluK;
  else if (precond == "ilut") c->precond = TunePrecond::kIlut;
  else if (precond == "sai") c->precond = TunePrecond::kSai;
  else if (precond == "block-jacobi") c->precond = TunePrecond::kBlockJacobi;
  else
    return false;
  if (fill < 0 || fill > 1e6 || fill != std::floor(fill)) return false;
  c->fill_level = static_cast<index_t>(fill);
  if (executor == "serial") c->executor = TrsvExec::kSerial;
  else if (executor == "level") c->executor = TrsvExec::kLevelScheduled;
  else
    return false;
  return true;
}

bool parse_record(const Json& j, TuneRecord* rec) {
  if (j.kind != Json::Kind::kObject) return false;
  double rows = 0.0, nnz = 0.0, iterations = 0.0, trials = 0.0;
  if (!parse_hex64(j.get("pattern_hash"), &rec->fingerprint.pattern_hash) ||
      !parse_hex64(j.get("values_hash"), &rec->fingerprint.values_hash) ||
      !get_number(j, "rows", &rows) || !get_number(j, "nnz", &nnz) ||
      !parse_features(j.get("features"), &rec->features) ||
      !parse_config(j.get("config"), &rec->config) ||
      !get_number(j, "score", &rec->score) ||
      !get_number(j, "per_iteration_seconds", &rec->per_iteration_seconds) ||
      !get_number(j, "iterations", &iterations) ||
      !get_number(j, "trials", &trials))
    return false;
  if (rows < 0 || nnz < 0 || iterations < 0 || trials < 0) return false;
  rec->fingerprint.rows = static_cast<index_t>(rows);
  rec->fingerprint.nnz = static_cast<index_t>(nnz);
  rec->iterations = static_cast<std::int32_t>(iterations);
  rec->trials = static_cast<std::uint64_t>(trials);
  return true;
}

}  // namespace

std::optional<TuneRecord> TuneDb::find_exact(
    const MatrixFingerprint& fp) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const TuneRecord& r : records_)
    if (r.fingerprint == fp) return r;
  return std::nullopt;
}

std::optional<TuneNeighbor> TuneDb::find_nearest(
    const MatrixFeatures& features, double max_distance,
    const MatrixFingerprint* exclude) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::optional<TuneNeighbor> best;
  for (const TuneRecord& r : records_) {
    if (exclude != nullptr && r.fingerprint == *exclude) continue;
    const double d = feature_distance(features, r.features);
    if (d > max_distance) continue;
    if (!best || d < best->distance) best = TuneNeighbor{r, d};
  }
  return best;
}

void TuneDb::record(const TuneRecord& rec) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (TuneRecord& r : records_) {
    if (r.fingerprint == rec.fingerprint) {
      if (rec.score < r.score) r = rec;
      return;
    }
  }
  records_.push_back(rec);
}

std::size_t TuneDb::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<TuneRecord> TuneDb::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void TuneDb::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

std::string TuneDb::to_json() const {
  const std::vector<TuneRecord> records = snapshot();
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"schema\": \"spcg-tune-db\",\n  \"version\": " << kSchemaVersion
     << ",\n  \"records\": [";
  bool first = true;
  for (const TuneRecord& r : records) {
    os << (first ? "\n" : ",\n") << "    {\n"
       << "      \"pattern_hash\": \"" << hex64(r.fingerprint.pattern_hash)
       << "\",\n"
       << "      \"values_hash\": \"" << hex64(r.fingerprint.values_hash)
       << "\",\n"
       << "      \"rows\": " << r.fingerprint.rows << ",\n"
       << "      \"nnz\": " << r.fingerprint.nnz << ",\n";
    write_features(os, r.features, "      ");
    os << ",\n";
    write_config(os, r.config, "      ");
    os << ",\n"
       << "      \"score\": " << r.score << ",\n"
       << "      \"per_iteration_seconds\": " << r.per_iteration_seconds
       << ",\n"
       << "      \"iterations\": " << r.iterations << ",\n"
       << "      \"trials\": " << r.trials << "\n    }";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

TuneDbLoad TuneDb::from_json(const std::string& text) {
  Json doc;
  JsonParser parser(text);
  if (!parser.parse(&doc) || doc.kind != Json::Kind::kObject)
    return TuneDbLoad::kCorrupt;
  std::string schema;
  double version = 0.0;
  if (!get_string(doc, "schema", &schema) ||
      !get_number(doc, "version", &version) || schema != "spcg-tune-db")
    return TuneDbLoad::kCorrupt;
  if (version != static_cast<double>(kSchemaVersion))
    return TuneDbLoad::kVersionMismatch;
  const Json* records = doc.get("records");
  if (records == nullptr || records->kind != Json::Kind::kArray)
    return TuneDbLoad::kCorrupt;
  std::vector<TuneRecord> parsed;
  parsed.reserve(records->array.size());
  for (const Json& j : records->array) {
    TuneRecord rec;
    if (!parse_record(j, &rec)) return TuneDbLoad::kCorrupt;
    parsed.push_back(rec);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  records_ = std::move(parsed);
  return TuneDbLoad::kOk;
}

bool TuneDb::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return false;
  out << to_json();
  out.flush();
  return out.good();
}

TuneDbLoad TuneDb::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return TuneDbLoad::kMissing;
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

}  // namespace spcg
