// Tuner — the measurement-refined configuration search (DESIGN.md §10).
//
// tune(a) runs the full funnel:
//
//   fingerprint ──► TuneDb exact hit?  ──► done, zero measured trials
//        │
//   extract_features ──► TuneDb nearest neighbor (warm-start seed)
//        │
//   enumerate_candidates ──► rank_candidates (cost-model prior)
//        │
//   prune to the measured-trial budget (+ the neighbor's config, promoted)
//        │
//   measured trials through SolverSession + shared SetupCache,
//   early-aborted against the incumbent's score bound
//        │
//   record the winner in the TuneDb
//
// Scoring: a trial's score is iterations x *modeled* per-iteration seconds
// on the actual factor structure the trial built. Modeled (not wall-clock)
// per-iteration time keeps scores deterministic across machine load and
// lets host-measured trials stand in for device execution; iterations are
// always truly measured. Early abort caps a trial's PCG at
// ceil(incumbent_score / candidate_per_iteration_seconds): a trial that hits
// the cap already scores >= the incumbent, and running it to convergence
// could only raise its score, so the abort can never discard a config that
// full measurement would have selected (autotune_test.cc asserts this).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "autotune/config.h"
#include "autotune/cost_prior.h"
#include "autotune/features.h"
#include "autotune/tune_db.h"
#include "precond/block_jacobi.h"
#include "precond/ilut.h"
#include "precond/sai.h"
#include "runtime/session.h"
#include "support/rng.h"
#include "support/telemetry.h"
#include "support/trace.h"

namespace spcg {

/// Knobs of the search.
struct TunerOptions {
  TuneSpace space;                 // candidate enumeration bounds
  CostPriorOptions prior;          // cost-model pruning stage
  SpcgOptions base;                // tolerances / pivot / solve knobs
  std::size_t measure_top = 6;     // measured-trial budget after pruning
  bool early_abort = true;         // cap trials at the incumbent's bound
  double neighbor_max_distance = 3.0;  // feature-space warm-start radius
  std::uint64_t rhs_seed = 42;     // deterministic internal trial RHS
  IlutOptions ilut;                // alternative-preconditioner knobs
  SaiOptions sai;
  index_t block_jacobi_size = 8;
};

/// One measured trial.
struct TuneTrial {
  TuneConfig config;
  bool converged = false;
  bool aborted = false;            // stopped early at the incumbent bound
  std::int32_t iterations = 0;
  double setup_seconds = 0.0;      // wall clock of the setup phase
  double solve_seconds = 0.0;      // wall clock of the measured solve
  double per_iteration_seconds = 0.0;  // modeled, on the built structure
  double score = 0.0;              // iterations x per_iteration_seconds
  bool setup_cache_hit = false;
};

/// What tune() decided and how it got there.
struct TuneOutcome {
  TuneConfig config;               // the winner
  double score = 0.0;
  double per_iteration_seconds = 0.0;
  std::int32_t iterations = 0;
  bool db_hit = false;             // exact fingerprint hit, zero trials
  bool neighbor_seeded = false;    // a warm-start neighbor joined the trials
  double neighbor_distance = 0.0;
  std::size_t candidates = 0;      // enumerated space size
  std::size_t pruned = 0;          // dropped by the cost-model prior
  std::size_t trials_measured = 0;
  std::size_t early_aborts = 0;
  std::vector<TuneTrial> trials;   // in measurement order
};

namespace detail {

/// Deterministic right-hand side for internal trials: b = A * x_ref with a
/// reproducible x_ref, so every trial solves a system with a known solution
/// scale regardless of the caller's workload.
template <class T>
std::vector<T> tune_rhs(const Csr<T>& a, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> x_ref(static_cast<std::size_t>(a.rows));
  for (auto& v : x_ref) v = static_cast<T>(rng.uniform(-1.0, 1.0));
  std::vector<T> b(x_ref.size(), T{0});
  for (index_t i = 0; i < a.rows; ++i) {
    const auto cols_i = a.row_cols(i);
    const auto vals_i = a.row_vals(i);
    T acc{0};
    for (std::size_t p = 0; p < cols_i.size(); ++p)
      acc += vals_i[p] * x_ref[static_cast<std::size_t>(cols_i[p])];
    b[static_cast<std::size_t>(i)] = acc;
  }
  return b;
}

}  // namespace detail

/// Solve of one (possibly alternative-preconditioner) configuration outside
/// the tuner loop — the service and bench reuse this to execute a tuned
/// winner that has no SpcgOptions spelling. Session-compatible configs go
/// through SolverSession (and hit the shared cache); alternatives build
/// their preconditioner inline.
template <class T>
struct TunedSolve {
  SolveResult<T> solve;
  double setup_seconds = 0.0;
  double solve_seconds = 0.0;
  bool setup_cache_hit = false;
};

template <class T>
TunedSolve<T> solve_with_config(const Csr<T>& a, std::span<const T> b,
                                const TuneConfig& config,
                                const TunerOptions& opt = {},
                                std::shared_ptr<SetupCache<T>> cache = nullptr) {
  TunedSolve<T> out;
  if (session_compatible(config)) {
    WallTimer setup_timer;
    SolverSession<T> session(a, to_spcg_options(config, opt.base), cache);
    out.setup_seconds = setup_timer.seconds();
    out.setup_cache_hit = session.setup_cache_hit();
    SessionSolveResult<T> run = session.solve(b);
    out.solve = std::move(run.solve);
    out.solve_seconds = run.solve_seconds;
    return out;
  }
  WallTimer setup_timer;
  PcgOptions pcg_opt = opt.base.pcg;
  if (config.precond == TunePrecond::kIlut) {
    const IluResult<T> fact = ilut(a, opt.ilut);
    TriangularFactors<T> factors = split_lu(fact);
    const LevelSchedule l_sched = level_schedule(factors.l, Triangle::kLower);
    const LevelSchedule u_sched = level_schedule(factors.u, Triangle::kUpper);
    out.setup_seconds = setup_timer.seconds();
    const IluApplier<T> m(factors, l_sched, u_sched, config.executor);
    WallTimer solve_timer;
    out.solve = pcg(a, b, m, pcg_opt);
    out.solve_seconds = solve_timer.seconds();
    return out;
  }
  if (config.precond == TunePrecond::kSai) {
    const SaiPreconditioner<T> m(a, opt.sai);
    out.setup_seconds = setup_timer.seconds();
    WallTimer solve_timer;
    out.solve = pcg(a, b, m, pcg_opt);
    out.solve_seconds = solve_timer.seconds();
    return out;
  }
  const BlockJacobiPreconditioner<T> m(a, opt.block_jacobi_size);
  out.setup_seconds = setup_timer.seconds();
  WallTimer solve_timer;
  out.solve = pcg(a, b, m, pcg_opt);
  out.solve_seconds = solve_timer.seconds();
  return out;
}

template <class T>
class Tuner {
 public:
  explicit Tuner(TunerOptions options = {},
                 std::shared_ptr<TuneDb> db = nullptr,
                 std::shared_ptr<SetupCache<T>> cache = nullptr,
                 TelemetryRegistry* telemetry = nullptr)
      : opt_(std::move(options)),
        db_(db ? std::move(db) : std::make_shared<TuneDb>()),
        cache_(cache ? std::move(cache)
                     : std::make_shared<SetupCache<T>>(32)),
        telemetry_(telemetry) {}

  [[nodiscard]] const TunerOptions& options() const { return opt_; }
  [[nodiscard]] const std::shared_ptr<TuneDb>& db() const { return db_; }
  [[nodiscard]] const std::shared_ptr<SetupCache<T>>& cache() const {
    return cache_;
  }

  TuneOutcome tune(const Csr<T>& a) const { return tune(a, fingerprint(a)); }

  TuneOutcome tune(const Csr<T>& a, const MatrixFingerprint& fp) const {
    Span span("autotune.tune", "autotune");
    span.arg("rows", static_cast<std::int64_t>(a.rows));
    span.arg("nnz", static_cast<std::int64_t>(a.nnz()));
    count("autotune.tunes");

    TuneOutcome out;

    // Stage 0: exact database hit — reuse the winner, zero measured trials.
    if (std::optional<TuneRecord> hit = db_->find_exact(fp)) {
      out.config = hit->config;
      out.score = hit->score;
      out.per_iteration_seconds = hit->per_iteration_seconds;
      out.iterations = hit->iterations;
      out.db_hit = true;
      count("autotune.db_hits");
      span.arg("db_hit", true);
      span.arg("config", config_id(out.config));
      return out;
    }

    // Stage 1: features + nearest-neighbor warm start.
    const MatrixFeatures features = extract_features(a);
    const std::optional<TuneNeighbor> neighbor =
        db_->find_nearest(features, opt_.neighbor_max_distance, &fp);

    // Stage 2: enumerate and rank with the cost-model prior.
    const std::vector<TuneConfig> candidates =
        enumerate_candidates(opt_.space);
    out.candidates = candidates.size();
    std::vector<CandidatePrior> ranked;
    {
      Span prior_span("autotune.prior", "autotune");
      prior_span.arg("candidates",
                     static_cast<std::int64_t>(candidates.size()));
      ranked = rank_candidates(a, candidates, opt_.prior);
    }

    // Stage 3: prune to the measured budget; the neighbor's winner (when it
    // survives as a known candidate shape or not) is promoted to the front
    // so the warm start is always measured first and becomes the incumbent.
    std::vector<TuneConfig> shortlist;
    shortlist.reserve(opt_.measure_top + 1);
    if (neighbor) {
      shortlist.push_back(neighbor->record.config);
      out.neighbor_seeded = true;
      out.neighbor_distance = neighbor->distance;
      count("autotune.db_neighbor");
    }
    for (const CandidatePrior& p : ranked) {
      if (shortlist.size() >= opt_.measure_top + (neighbor ? 1 : 0)) break;
      if (std::find(shortlist.begin(), shortlist.end(), p.config) !=
          shortlist.end())
        continue;
      shortlist.push_back(p.config);
    }
    out.pruned = candidates.size() - shortlist.size();
    if (telemetry_ != nullptr)
      telemetry_->counter("autotune.pruned").add(out.pruned);

    // Stage 4: measured trials against a deterministic internal RHS.
    const std::vector<T> b = detail::tune_rhs(a, opt_.rhs_seed);
    const CostModel device_model(opt_.prior.device, opt_.prior.value_bytes);
    const CostModel host_model(opt_.prior.host, opt_.prior.value_bytes);

    std::optional<std::size_t> incumbent;  // index into out.trials
    double incumbent_score = std::numeric_limits<double>::infinity();
    for (const TuneConfig& config : shortlist) {
      TuneTrial trial = run_trial(a, fp, b, config, incumbent_score,
                                  device_model, host_model);
      count("autotune.trials");
      if (trial.aborted) {
        ++out.early_aborts;
        count("autotune.early_aborts");
      }
      out.trials.push_back(trial);
      const bool better = [&] {
        if (!incumbent) return trial.converged;
        const TuneTrial& best = out.trials[*incumbent];
        if (trial.converged != best.converged) return trial.converged;
        if (!trial.converged) return false;
        return trial.score < best.score;  // strict: abort-soundness
      }();
      if (better) {
        incumbent = out.trials.size() - 1;
        incumbent_score = trial.score;
      }
    }
    out.trials_measured = out.trials.size();

    // A degenerate space (nothing converged, or empty shortlist) falls back
    // to the prior's top pick so callers always get an executable config.
    if (!incumbent) {
      out.config = ranked.empty() ? TuneConfig{} : ranked.front().config;
      if (!ranked.empty()) {
        out.score = ranked.front().score;
        out.per_iteration_seconds = ranked.front().per_iteration_seconds;
      }
      span.arg("config", config_id(out.config));
      span.arg("converged", false);
      return out;
    }

    const TuneTrial& winner = out.trials[*incumbent];
    out.config = winner.config;
    out.score = winner.score;
    out.per_iteration_seconds = winner.per_iteration_seconds;
    out.iterations = winner.iterations;

    // Stage 5: persist the winner.
    TuneRecord rec;
    rec.fingerprint = fp;
    rec.features = features;
    rec.config = winner.config;
    rec.score = winner.score;
    rec.per_iteration_seconds = winner.per_iteration_seconds;
    rec.iterations = winner.iterations;
    rec.trials = out.trials_measured;
    db_->record(rec);

    span.arg("config", config_id(out.config));
    span.arg("trials", static_cast<std::int64_t>(out.trials_measured));
    return out;
  }

 private:
  void count(const char* name, std::uint64_t n = 1) const {
    if (telemetry_ != nullptr) telemetry_->counter(name).add(n);
  }

  /// Modeled per-iteration seconds of a built ILU-family setup, on the
  /// structure the trial actually produced (not the prior's estimate).
  double modeled_iteration_seconds(const Csr<T>& a,
                                   const TriangularFactors<T>& factors,
                                   TrsvExec exec, const CostModel& device,
                                   const CostModel& host) const {
    PcgIterationShape shape;
    shape.n = a.rows;
    shape.a_nnz = a.nnz();
    shape.lower = trisolve_structure(factors.l, Triangle::kLower);
    shape.upper = trisolve_structure(factors.u, Triangle::kUpper);
    const CostModel& model = exec == TrsvExec::kSerial ? host : device;
    return model.pcg_iteration(shape).seconds;
  }

  /// Wavefront-free (SAI / block-Jacobi) per-iteration model: SpMV with A,
  /// an SpMV-shaped apply, and the fused BLAS-1 tail (same shape the prior
  /// uses, so trial and prior scores stay comparable).
  double modeled_apply_iteration_seconds(const Csr<T>& a,
                                         const CostModel& model) const {
    OpCost iter = model.spmv(a.rows, a.nnz());
    iter += model.spmv(a.rows, a.nnz());
    iter += model.blas1(a.rows, 14, 12);
    return iter.seconds;
  }

  TuneTrial run_trial(const Csr<T>& a, const MatrixFingerprint& fp,
                      const std::vector<T>& b, const TuneConfig& config,
                      double incumbent_score, const CostModel& device,
                      const CostModel& host) const {
    Span span("autotune.trial", "autotune");
    span.arg("config", config_id(config));
    TuneTrial trial;
    trial.config = config;

    // Build setup first — the per-iteration model of the real structure
    // decides the early-abort cap before the solve starts.
    PcgOptions pcg_opt = opt_.base.pcg;
    auto abort_cap = [&](double per_iter) {
      if (!opt_.early_abort || !std::isfinite(incumbent_score) ||
          per_iter <= 0.0)
        return pcg_opt.max_iterations;
      const double bound = std::ceil(incumbent_score / per_iter);
      const double capped =
          std::min(bound, static_cast<double>(pcg_opt.max_iterations));
      return static_cast<std::int32_t>(std::max(1.0, capped));
    };

    if (session_compatible(config)) {
      WallTimer setup_timer;
      SolverSession<T> session(a, fp, to_spcg_options(config, opt_.base),
                               cache_);
      trial.setup_seconds = setup_timer.seconds();
      trial.setup_cache_hit = session.setup_cache_hit();
      trial.per_iteration_seconds = modeled_iteration_seconds(
          a, session.setup().factors, config.executor, device, host);
      const std::int32_t cap = abort_cap(trial.per_iteration_seconds);
      // Re-cap the solve without invalidating the cached setup: pcg options
      // are solve-phase and not part of the setup key, so run pcg directly
      // over the session's shared artifacts.
      pcg_opt.max_iterations = cap;
      const SpcgSetup<T>& setup = session.setup();
      const IluApplier<T> m(setup.factors, setup.l_schedule, setup.u_schedule,
                            config.executor);
      WallTimer solve_timer;
      SolveResult<T> solve = pcg(a, b, m, pcg_opt);
      trial.solve_seconds = solve_timer.seconds();
      trial.converged = solve.converged();
      trial.iterations = solve.iterations;
      trial.aborted = !trial.converged && cap < opt_.base.pcg.max_iterations;
    } else if (config.precond == TunePrecond::kIlut) {
      WallTimer setup_timer;
      const IluResult<T> fact = ilut(a, opt_.ilut);
      TriangularFactors<T> factors = split_lu(fact);
      const LevelSchedule l_sched =
          level_schedule(factors.l, Triangle::kLower);
      const LevelSchedule u_sched =
          level_schedule(factors.u, Triangle::kUpper);
      trial.setup_seconds = setup_timer.seconds();
      trial.per_iteration_seconds = modeled_iteration_seconds(
          a, factors, config.executor, device, host);
      const std::int32_t cap = abort_cap(trial.per_iteration_seconds);
      pcg_opt.max_iterations = cap;
      const IluApplier<T> m(factors, l_sched, u_sched, config.executor);
      WallTimer solve_timer;
      SolveResult<T> solve = pcg(a, b, m, pcg_opt);
      trial.solve_seconds = solve_timer.seconds();
      trial.converged = solve.converged();
      trial.iterations = solve.iterations;
      trial.aborted = !trial.converged && cap < opt_.base.pcg.max_iterations;
    } else {
      WallTimer setup_timer;
      std::unique_ptr<Preconditioner<T>> m;
      if (config.precond == TunePrecond::kSai) {
        m = std::make_unique<SaiPreconditioner<T>>(a, opt_.sai);
      } else {
        m = std::make_unique<BlockJacobiPreconditioner<T>>(
            a, opt_.block_jacobi_size);
      }
      trial.setup_seconds = setup_timer.seconds();
      const CostModel& model =
          config.executor == TrsvExec::kSerial ? host : device;
      trial.per_iteration_seconds = modeled_apply_iteration_seconds(a, model);
      const std::int32_t cap = abort_cap(trial.per_iteration_seconds);
      pcg_opt.max_iterations = cap;
      WallTimer solve_timer;
      SolveResult<T> solve = pcg(a, b, *m, pcg_opt);
      trial.solve_seconds = solve_timer.seconds();
      trial.converged = solve.converged();
      trial.iterations = solve.iterations;
      trial.aborted = !trial.converged && cap < opt_.base.pcg.max_iterations;
    }

    trial.score =
        static_cast<double>(trial.iterations) * trial.per_iteration_seconds;
    span.arg("iterations", trial.iterations);
    span.arg("converged", trial.converged);
    span.arg("aborted", trial.aborted);
    return trial;
  }

  TunerOptions opt_;
  std::shared_ptr<TuneDb> db_;
  std::shared_ptr<SetupCache<T>> cache_;
  TelemetryRegistry* telemetry_ = nullptr;
};

}  // namespace spcg
