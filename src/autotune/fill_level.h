// Best-K fill-level selection, autotune edition.
//
// tune_fill_level is the successor of runtime/session.h's
// select_best_fill_level (which now forwards here): the same paper-§3.3
// probe — one baseline PCG-ILU(K) run per candidate K through a shared
// SetupCache — but every candidate's timings and iteration counts survive
// into KSelection::trials, each probe is traced, and an optional
// TelemetryRegistry counts probes and cache hits. Selection order is
// unchanged: converged beats non-converged, then fewest iterations, then
// smallest final residual; ties keep the earlier (smaller) K.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/session.h"
#include "support/telemetry.h"
#include "support/trace.h"

namespace spcg {

template <class T>
KSelection<T> tune_fill_level(
    const Csr<T>& a, std::span<const T> b, SpcgOptions opt,
    std::span<const index_t> candidates,
    std::type_identity_t<std::shared_ptr<SetupCache<T>>> cache = nullptr,
    TelemetryRegistry* telemetry = nullptr) {
  SPCG_CHECK(!candidates.empty());
  opt.sparsify_enabled = false;
  opt.preconditioner = PrecondKind::kIluK;
  if (!cache) cache = std::make_shared<SetupCache<T>>(candidates.size());
  const MatrixFingerprint fp = fingerprint(a);

  Span span("autotune.fill_level", "autotune");
  span.arg("rows", static_cast<std::int64_t>(a.rows));
  span.arg("candidates", static_cast<std::int64_t>(candidates.size()));

  KSelection<T> out;
  out.trials.reserve(candidates.size());

  struct Best {
    SolverSession<T> session;
    SessionSolveResult<T> run;
  };
  std::optional<Best> best;
  for (const index_t k : candidates) {
    opt.fill_level = k;
    Span probe("autotune.fill_level.probe", "autotune");
    probe.arg("k", static_cast<std::int64_t>(k));
    WallTimer setup_timer;
    SolverSession<T> session(a, fp, opt, cache);
    const double setup_seconds = setup_timer.seconds();
    SessionSolveResult<T> run = session.solve(b);

    KCandidateTrial trial;
    trial.k = k;
    trial.converged = run.solve.converged();
    trial.iterations = run.solve.iterations;
    trial.final_residual_norm = run.solve.final_residual_norm;
    trial.setup_seconds = setup_seconds;
    trial.solve_seconds = run.solve_seconds;
    trial.setup_cache_hit = session.setup_cache_hit();
    probe.arg("iterations", trial.iterations);
    probe.arg("converged", trial.converged);
    if (telemetry != nullptr) {
      telemetry->counter("autotune.fill_level.probes").add();
      if (trial.setup_cache_hit)
        telemetry->counter("autotune.fill_level.cache_hits").add();
    }

    const bool better = [&] {
      if (!best) return true;
      const bool run_conv = run.solve.converged();
      const bool best_conv = best->run.solve.converged();
      if (run_conv != best_conv) return run_conv;
      if (run_conv) return run.solve.iterations < best->run.solve.iterations;
      return run.solve.final_residual_norm <
             best->run.solve.final_residual_norm;
    }();
    if (better) {
      out.k = k;
      best = Best{std::move(session), std::move(run)};
    }
    out.trials.push_back(trial);
  }
  out.baseline = best->session.to_spcg_result(std::move(best->run));
  span.arg("k", static_cast<std::int64_t>(out.k));
  return out;
}

template <class T>
KSelection<T> tune_fill_level(
    const Csr<T>& a, const std::vector<T>& b, const SpcgOptions& opt,
    const std::vector<index_t>& candidates,
    std::type_identity_t<std::shared_ptr<SetupCache<T>>> cache = nullptr,
    TelemetryRegistry* telemetry = nullptr) {
  return tune_fill_level(a, std::span<const T>(b), opt,
                         std::span<const index_t>(candidates),
                         std::move(cache), telemetry);
}

}  // namespace spcg
