// Structural feature vectors for the autotuning subsystem (DESIGN.md §10).
//
// A feature vector summarizes the properties of a matrix that drive the
// cost/convergence trade-offs the tuner searches over: size and density
// (roofline terms), bandwidth (locality), diagonal dominance (how much
// sparsification the convergence indicator will tolerate) and the wavefront
// level structure of the lower-triangular dependence pattern (the quantity
// sparsification attacks). Features are the nearest-neighbor key of the
// tuning database: an unseen matrix warm-starts from the recorded winner of
// the structurally closest matrix already tuned.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "sparse/csr.h"
#include "wavefront/levels.h"

namespace spcg {

/// Structural summary of one matrix. All fields are deterministic functions
/// of the matrix bits, so the vector itself never needs to be hashed — the
/// MatrixFingerprint identifies the matrix, the features describe it.
struct MatrixFeatures {
  double rows = 0.0;
  double nnz = 0.0;
  double avg_nnz_per_row = 0.0;
  double max_nnz_per_row = 0.0;
  double avg_bandwidth = 0.0;      // mean |i - j| over stored entries
  double max_bandwidth = 0.0;
  double diag_dominance_min = 0.0; // min_i a_ii / sum_{j!=i} |a_ij|
  double diag_dominance_avg = 0.0;
  double wavefront_levels = 0.0;   // level count of the lower-triangle DAG
  double avg_level_width = 0.0;    // rows / levels
  double max_level_width = 0.0;    // peak wavefront parallelism

  friend bool operator==(const MatrixFeatures& a, const MatrixFeatures& b) {
    return a.rows == b.rows && a.nnz == b.nnz &&
           a.avg_nnz_per_row == b.avg_nnz_per_row &&
           a.max_nnz_per_row == b.max_nnz_per_row &&
           a.avg_bandwidth == b.avg_bandwidth &&
           a.max_bandwidth == b.max_bandwidth &&
           a.diag_dominance_min == b.diag_dominance_min &&
           a.diag_dominance_avg == b.diag_dominance_avg &&
           a.wavefront_levels == b.wavefront_levels &&
           a.avg_level_width == b.avg_level_width &&
           a.max_level_width == b.max_level_width;
  }
};

/// Extract the feature vector: one pass over the entries plus one level-set
/// inspection of the lower-triangular pattern.
template <class T>
MatrixFeatures extract_features(const Csr<T>& a) {
  SPCG_CHECK(a.rows == a.cols);
  MatrixFeatures f;
  f.rows = static_cast<double>(a.rows);
  f.nnz = static_cast<double>(a.nnz());
  if (a.rows == 0) return f;

  double bandwidth_sum = 0.0;
  double dominance_sum = 0.0;
  double dominance_min = std::numeric_limits<double>::infinity();
  index_t max_row = 0;
  for (index_t i = 0; i < a.rows; ++i) {
    const auto cols_i = a.row_cols(i);
    const auto vals_i = a.row_vals(i);
    max_row = std::max(max_row, static_cast<index_t>(cols_i.size()));
    double diag = 0.0;
    double off_sum = 0.0;
    for (std::size_t p = 0; p < cols_i.size(); ++p) {
      const double band = std::abs(static_cast<double>(cols_i[p] - i));
      bandwidth_sum += band;
      f.max_bandwidth = std::max(f.max_bandwidth, band);
      if (cols_i[p] == i) {
        diag = static_cast<double>(vals_i[p]);
      } else {
        off_sum += std::abs(static_cast<double>(vals_i[p]));
      }
    }
    // A row with no off-diagonal coupling is perfectly dominant; cap the
    // ratio so isolated rows do not blow up the average.
    const double dominance =
        off_sum > 0.0 ? diag / off_sum : 1e6;
    dominance_sum += std::min(dominance, 1e6);
    dominance_min = std::min(dominance_min, dominance);
  }
  f.avg_nnz_per_row = f.nnz / f.rows;
  f.max_nnz_per_row = static_cast<double>(max_row);
  f.avg_bandwidth = bandwidth_sum / std::max(1.0, f.nnz);
  f.diag_dominance_avg = dominance_sum / f.rows;
  f.diag_dominance_min = std::min(dominance_min, 1e6);

  const LevelSchedule sched = level_schedule(a, Triangle::kLower);
  f.wavefront_levels = static_cast<double>(sched.num_levels());
  f.avg_level_width = sched.avg_level_size();
  f.max_level_width = static_cast<double>(sched.max_level_size());
  return f;
}

namespace detail {

/// Squared difference of two strictly positive quantities in log space, so
/// "twice as big" counts the same at every scale.
inline double log_gap_sq(double a, double b) {
  const double la = std::log(std::max(a, 1e-12));
  const double lb = std::log(std::max(b, 1e-12));
  return (la - lb) * (la - lb);
}

}  // namespace detail

/// Scale-free distance between two feature vectors: L2 over log-scaled
/// dimensions (sizes, widths, dominance). 0 = structurally identical;
/// values around 1 mean "same ballpark"; the tuner's neighbor threshold
/// rejects matches beyond a few units.
inline double feature_distance(const MatrixFeatures& a,
                               const MatrixFeatures& b) {
  double d = 0.0;
  d += detail::log_gap_sq(a.rows, b.rows);
  d += detail::log_gap_sq(a.nnz, b.nnz);
  d += detail::log_gap_sq(a.avg_nnz_per_row, b.avg_nnz_per_row);
  d += detail::log_gap_sq(a.max_nnz_per_row, b.max_nnz_per_row);
  d += detail::log_gap_sq(a.avg_bandwidth + 1.0, b.avg_bandwidth + 1.0);
  d += detail::log_gap_sq(a.max_bandwidth + 1.0, b.max_bandwidth + 1.0);
  d += detail::log_gap_sq(a.diag_dominance_min + 1e-3,
                          b.diag_dominance_min + 1e-3);
  d += detail::log_gap_sq(a.diag_dominance_avg + 1e-3,
                          b.diag_dominance_avg + 1e-3);
  d += detail::log_gap_sq(a.wavefront_levels, b.wavefront_levels);
  d += detail::log_gap_sq(a.avg_level_width, b.avg_level_width);
  d += detail::log_gap_sq(a.max_level_width, b.max_level_width);
  return std::sqrt(d);
}

}  // namespace spcg
