// Cost-model prior of the autotuner: rank the candidate space *before* any
// measured trial using the analytical execution model (src/gpumodel/).
//
// The prior is deliberately cheap — symbolic work only, no numeric
// factorization and no solves:
//   * per sparsify policy, the candidate matrix Â is computed once
//     (sparsify_by_ratio / Algorithm 2) and shared by every candidate that
//     uses it, together with a convergence-risk inflation derived from the
//     paper's ‖Â⁻¹‖·‖S‖ indicator;
//   * per (Â pattern, fill level), the ILU(K) *symbolic* pattern and its
//     level structure are computed once and shared;
//   * the per-iteration cost comes from CostModel::pcg_iteration on that
//     structure, with the executor choosing the device flavor (serial →
//     host model, level-scheduled → the configured device).
//
// The predicted iteration counts are coarse multiplicative heuristics (a
// stronger factor converges faster, a riskier sparsification slower); they
// only have to *rank* candidates well enough that the measured-trial budget
// is spent on plausible winners — measurement, not the prior, picks the
// final configuration. bench/autotune_study.cc quantifies exactly how much
// the measured refinement buys over trusting this prior alone.
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "autotune/config.h"
#include "core/sparsify.h"
#include "gpumodel/cost_model.h"
#include "gpumodel/device.h"
#include "precond/ilu.h"

namespace spcg {

/// One ranked candidate: predicted phase costs and the combined score the
/// tuner sorts by (amortized setup + predicted iterations x iteration cost).
struct CandidatePrior {
  TuneConfig config;
  double setup_seconds = 0.0;
  double per_iteration_seconds = 0.0;
  double predicted_iterations = 0.0;
  double score = 0.0;
};

/// Knobs of the prior.
struct CostPriorOptions {
  DeviceSpec device = device_epyc7413();  // level-scheduled executor model
  DeviceSpec host = device_host_cpu();    // serial executor + host phases
  int value_bytes = 8;
  double reference_iterations = 100.0;  // scale of the iteration heuristics
  double amortize_solves = 10.0;        // solves the setup is spread over
  index_t max_row_fill = 0;             // cap forwarded to iluk_symbolic
};

namespace detail {

/// Iteration-count multiplier per preconditioner family, relative to
/// ILU(0) = 1. Heuristic, monotone in preconditioner strength.
inline double precond_iteration_factor(const TuneConfig& c) {
  switch (c.precond) {
    case TunePrecond::kIlu0: return 1.0;
    case TunePrecond::kIluK:
      return 1.0 / (1.0 + 0.25 * static_cast<double>(c.fill_level));
    case TunePrecond::kIlut: return 0.9;
    case TunePrecond::kSai: return 2.5;
    case TunePrecond::kBlockJacobi: return 3.5;
  }
  return 1.0;
}

}  // namespace detail

/// Rank `candidates` for matrix `a`. Returns priors sorted by ascending
/// score (best predicted candidate first). Deterministic.
template <class T>
std::vector<CandidatePrior> rank_candidates(
    const Csr<T>& a, const std::vector<TuneConfig>& candidates,
    const CostPriorOptions& opt = {}) {
  const CostModel device_model(opt.device, opt.value_bytes);
  const CostModel host_model(opt.host, opt.value_bytes);

  // Shared per-sparsify-policy state: the candidate matrix pattern (as an
  // owning copy only when sparsified), its nnz, the sparsify host cost and
  // the convergence-risk inflation.
  struct PolicyState {
    Csr<T> a_hat;             // empty (rows==0) means "use `a` directly"
    double sparsify_seconds = 0.0;
    double risk_inflation = 1.0;  // >= 1; grows with the Eq. 6 indicator
  };
  // Key: (mode, ratio). kOff and kAdaptive use sentinel ratios.
  std::map<std::pair<int, double>, PolicyState> policies;
  auto policy_key = [](const TuneConfig& c) {
    return std::make_pair(static_cast<int>(c.sparsify),
                          c.sparsify == TuneSparsify::kFixed ? c.ratio_percent
                                                             : 0.0);
  };
  auto policy_for = [&](const TuneConfig& c) -> PolicyState& {
    const auto key = policy_key(c);
    auto it = policies.find(key);
    if (it != policies.end()) return it->second;
    PolicyState st;
    if (c.sparsify == TuneSparsify::kFixed) {
      SparsifySplit<T> split = sparsify_by_ratio(a, c.ratio_percent);
      const ConvergenceIndicator ind =
          convergence_indicator(split.a_hat, split.s);
      // Each unit of the indicator above "free" costs extra iterations;
      // clamp so an unsafe split ranks behind but stays finite.
      st.risk_inflation = 1.0 + 0.5 * std::min(ind.product, 4.0);
      st.sparsify_seconds = host_model.sparsify_host(a.nnz(), 1).seconds;
      st.a_hat = std::move(split.a_hat);
    } else if (c.sparsify == TuneSparsify::kAdaptive) {
      SparsifyDecision<T> d = wavefront_aware_sparsify(a);
      const SparsifyStep* chosen_step =
          d.steps.empty() ? nullptr : &d.steps.back();
      const double product =
          chosen_step != nullptr ? chosen_step->indicator.product : 0.0;
      st.risk_inflation = 1.0 + 0.5 * std::min(product, 4.0);
      st.sparsify_seconds =
          host_model
              .sparsify_host(a.nnz(), static_cast<int>(d.steps.size()))
              .seconds;
      st.a_hat = std::move(d.chosen.a_hat);
    }
    return policies.emplace(key, std::move(st)).first->second;
  };

  // Shared per-(policy, fill) symbolic structure.
  struct PatternState {
    index_t pattern_nnz = 0;
    PcgIterationShape shape;
  };
  std::map<std::pair<std::pair<int, double>, index_t>, PatternState> patterns;
  auto pattern_for = [&](const TuneConfig& c,
                         const Csr<T>& input) -> PatternState& {
    const index_t fill = c.precond == TunePrecond::kIluK ? c.fill_level : 0;
    const auto key = std::make_pair(policy_key(c), fill);
    auto it = patterns.find(key);
    if (it != patterns.end()) return it->second;
    PatternState st;
    if (fill == 0) {
      // ILU(0) keeps the input pattern exactly (ILUT approximated likewise:
      // its kept-fill cap lands near the input density).
      st.pattern_nnz = input.nnz();
      st.shape = pcg_iteration_shape(a, input);
    } else {
      const IlukSymbolic sym = iluk_symbolic_t(input, fill, opt.max_row_fill);
      st.pattern_nnz = sym.pattern.nnz();
      st.shape.n = a.rows;
      st.shape.a_nnz = a.nnz();
      st.shape.lower = trisolve_structure(sym.pattern, Triangle::kLower);
      st.shape.upper = trisolve_structure(sym.pattern, Triangle::kUpper);
    }
    return patterns.emplace(key, std::move(st)).first->second;
  };

  std::vector<CandidatePrior> out;
  out.reserve(candidates.size());
  for (const TuneConfig& c : candidates) {
    CandidatePrior p;
    p.config = c;
    PolicyState& policy = policy_for(c);
    const Csr<T>& input = policy.a_hat.rows > 0 ? policy.a_hat : a;
    const CostModel& model =
        c.executor == TrsvExec::kSerial ? host_model : device_model;

    if (c.precond == TunePrecond::kSai ||
        c.precond == TunePrecond::kBlockJacobi) {
      // Wavefront-free applies: SpMV with A plus an apply modeled as one
      // more SpMV-shaped pass (SAI: M has roughly A's pattern; block-Jacobi:
      // dense blocks stream comparable bytes) plus the BLAS-1 tail.
      OpCost iter = model.spmv(a.rows, a.nnz());
      iter += model.spmv(a.rows, a.nnz());
      iter += model.blas1(a.rows, 14, 12);  // Algorithm 1 tail, fused view
      p.per_iteration_seconds = iter.seconds;
      // Setup: per-row (SAI) or per-block (block-Jacobi) dense solves.
      const double m = a.nnz() > 0 && a.rows > 0
                           ? static_cast<double>(a.nnz()) /
                                 static_cast<double>(a.rows)
                           : 1.0;
      const auto dense_ops =
          static_cast<std::uint64_t>(static_cast<double>(a.rows) * m * m * m);
      p.setup_seconds =
          host_model.iluk_factorization_host(dense_ops, a.nnz()).seconds;
    } else {
      const PatternState& pattern = pattern_for(c, input);
      p.per_iteration_seconds = model.pcg_iteration(pattern.shape).seconds;
      const double fill_ratio =
          static_cast<double>(pattern.pattern_nnz) /
          std::max(1.0, static_cast<double>(input.nnz()));
      const auto elim_ops = static_cast<std::uint64_t>(
          static_cast<double>(pattern.pattern_nnz) *
          std::max(1.0, fill_ratio));
      if (c.precond == TunePrecond::kIlu0) {
        p.setup_seconds =
            model.ilu0_factorization(pattern.shape.lower, elim_ops).seconds;
      } else {
        p.setup_seconds =
            host_model.iluk_factorization_host(elim_ops, pattern.pattern_nnz)
                .seconds;
      }
      p.setup_seconds += policy.sparsify_seconds;
    }

    p.predicted_iterations = opt.reference_iterations *
                             detail::precond_iteration_factor(c) *
                             policy.risk_inflation;
    p.score = p.setup_seconds / std::max(1.0, opt.amortize_solves) +
              p.predicted_iterations * p.per_iteration_seconds;
    out.push_back(std::move(p));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CandidatePrior& x, const CandidatePrior& y) {
                     return x.score < y.score;
                   });
  return out;
}

}  // namespace spcg
