// Wavefront (level-set) inspector for sparse triangular dependence DAGs.
//
// For a lower-triangular solve Lx = b, row i depends on every row j < i with
// L(i,j) != 0. The level of row i is 1 + max(level of its dependences); rows
// sharing a level form a wavefront and can be solved in parallel, with a
// barrier between consecutive wavefronts. This is the inspector half of the
// classic inspector–executor scheme (Naumov 2011; Anderson & Saad 1989).
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "sparse/csr.h"
#include "sparse/ops.h"

namespace spcg {

/// Level schedule: rows grouped into wavefronts.
struct LevelSchedule {
  std::vector<index_t> level_of_row;   // level index (0-based) per row
  std::vector<index_t> level_ptr;      // CSR-style: rows of level l are
  std::vector<index_t> rows_by_level;  //   rows_by_level[level_ptr[l] .. level_ptr[l+1])

  [[nodiscard]] index_t num_levels() const {
    return static_cast<index_t>(level_ptr.empty() ? 0 : level_ptr.size() - 1);
  }

  /// Number of rows in level l.
  [[nodiscard]] index_t level_size(index_t l) const {
    return level_ptr[static_cast<std::size_t>(l) + 1] -
           level_ptr[static_cast<std::size_t>(l)];
  }

  /// Largest wavefront (peak parallelism).
  [[nodiscard]] index_t max_level_size() const {
    index_t best = 0;
    for (index_t l = 0; l < num_levels(); ++l)
      best = std::max(best, level_size(l));
    return best;
  }

  /// Mean rows per wavefront.
  [[nodiscard]] double avg_level_size() const {
    if (num_levels() == 0) return 0.0;
    return static_cast<double>(level_of_row.size()) /
           static_cast<double>(num_levels());
  }
};

/// Build the level schedule for the strictly-triangular dependence pattern of
/// `a`. `tri` selects which triangle drives the dependences: kLower scans
/// rows in increasing order (forward substitution), kUpper in decreasing
/// order (backward substitution). Entries on the other side of the diagonal
/// are ignored, so `a` may be a full symmetric matrix.
template <class T>
LevelSchedule level_schedule(const Csr<T>& a, Triangle tri) {
  SPCG_CHECK(a.rows == a.cols);
  const index_t n = a.rows;
  LevelSchedule s;
  s.level_of_row.assign(static_cast<std::size_t>(n), 0);
  index_t num_levels = 0;

  auto relax = [&](index_t i) {
    index_t lvl = 0;
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = a.colind[static_cast<std::size_t>(p)];
      const bool dep = (tri == Triangle::kLower) ? (j < i) : (j > i);
      if (dep) lvl = std::max(lvl, s.level_of_row[static_cast<std::size_t>(j)] + 1);
    }
    s.level_of_row[static_cast<std::size_t>(i)] = lvl;
    num_levels = std::max(num_levels, lvl + 1);
  };

  if (tri == Triangle::kLower) {
    for (index_t i = 0; i < n; ++i) relax(i);
  } else {
    for (index_t i = n - 1; i >= 0; --i) relax(i);
  }
  if (n == 0) {
    s.level_ptr.assign(1, 0);
    return s;
  }

  // Bucket rows by level (counting sort keeps row order inside each level).
  s.level_ptr.assign(static_cast<std::size_t>(num_levels) + 1, 0);
  for (index_t i = 0; i < n; ++i)
    ++s.level_ptr[static_cast<std::size_t>(s.level_of_row[static_cast<std::size_t>(i)]) + 1];
  std::partial_sum(s.level_ptr.begin(), s.level_ptr.end(), s.level_ptr.begin());
  s.rows_by_level.assign(static_cast<std::size_t>(n), 0);
  std::vector<index_t> cursor(s.level_ptr.begin(), s.level_ptr.end() - 1);
  for (index_t i = 0; i < n; ++i) {
    const index_t l = s.level_of_row[static_cast<std::size_t>(i)];
    s.rows_by_level[static_cast<std::size_t>(cursor[static_cast<std::size_t>(l)]++)] = i;
  }
  return s;
}

/// Number of wavefronts of the lower-triangular pattern of `a` — the metric
/// w_A used by the paper (Eq. 7). For a structurally symmetric matrix the
/// upper-triangle count is identical by symmetry.
template <class T>
index_t count_wavefronts(const Csr<T>& a) {
  return level_schedule(a, Triangle::kLower).num_levels();
}

/// Wavefront reduction percentage as defined by Eq. 7 of the paper:
/// 100 * (w_A - w_Ahat) / w_A.
inline double wavefront_reduction_percent(index_t w_a, index_t w_ahat) {
  if (w_a == 0) return 0.0;
  return 100.0 * static_cast<double>(w_a - w_ahat) / static_cast<double>(w_a);
}

/// Per-level nonzero counts for a triangular pattern (used by the GPU cost
/// model: each level moves its own slice of the factor).
template <class T>
std::vector<index_t> level_nnz(const Csr<T>& a, const LevelSchedule& s,
                               Triangle tri) {
  std::vector<index_t> nnz(static_cast<std::size_t>(s.num_levels()), 0);
  for (index_t i = 0; i < a.rows; ++i) {
    index_t count = 0;
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = a.colind[static_cast<std::size_t>(p)];
      const bool in_tri = (tri == Triangle::kLower) ? (j <= i) : (j >= i);
      if (in_tri) ++count;
    }
    nnz[static_cast<std::size_t>(s.level_of_row[static_cast<std::size_t>(i)])] += count;
  }
  return nnz;
}

}  // namespace spcg
