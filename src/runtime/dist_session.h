// DistSolverSession — setup-once / solve-many handle over one partitioned
// system (the distributed sibling of SolverSession).
//
// Construction partitions the matrix, materializes every part's LocalSystem,
// and resolves one SPCG setup per subdomain interior block. With a
// SetupCache attached the subdomain setups flow through it keyed by each
// interior block's own fingerprint — so two sessions partitioning the same
// system the same way share all P setups, and a repartitioned session reuses
// any interior blocks that came out identical. When the exact key misses but
// a same-pattern entry is resident (a values-only change — the transient
// regime), the session takes the partial-hit fast path: clone the donor's
// symbolic artifacts and refresh the numerics in place
// (transient/refactorize.h) instead of a cold spcg_setup. The refreshed
// clone stays private to the session — it is never inserted back into the
// cache (the cache contract for pattern donors). Without a cache the setups
// are built privately.
//
// Thread safety: solve() is const and every rank of a solve allocates its
// own scratch (dist_pcg_solve builds one IluApplier per rank), so one
// session may serve many threads concurrently, like SolverSession.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "dist/dist_pcg.h"
#include "runtime/setup_cache.h"
#include "support/telemetry.h"
#include "support/timer.h"
#include "transient/refactorize.h"

namespace spcg {

template <class T>
class DistSolverSession {
 public:
  /// Share ownership of the matrix (the usual service path). `telemetry`
  /// (optional, borrowed) receives per-solve communication counters.
  DistSolverSession(std::shared_ptr<const Csr<T>> a, DistOptions opt,
                    std::shared_ptr<SetupCache<T>> cache = nullptr,
                    TelemetryRegistry* telemetry = nullptr)
      : a_(std::move(a)), opt_(std::move(opt)), cache_(std::move(cache)),
        telemetry_(telemetry) {
    init();
  }

  /// Borrow a caller-owned matrix (must outlive the session).
  DistSolverSession(const Csr<T>& a, DistOptions opt,
                    std::shared_ptr<SetupCache<T>> cache = nullptr,
                    TelemetryRegistry* telemetry = nullptr)
      : DistSolverSession(
            std::shared_ptr<const Csr<T>>(&a, [](const Csr<T>*) {}),
            std::move(opt), std::move(cache), telemetry) {}

  [[nodiscard]] const Csr<T>& matrix() const { return *a_; }
  [[nodiscard]] const DistOptions& options() const { return opt_; }
  [[nodiscard]] const DistSetup<T>& setup() const { return setup_; }
  [[nodiscard]] index_t parts() const { return setup_.partition.parts; }
  /// How many of the P subdomain setups construction found already cached
  /// (0 when the session has no cache).
  [[nodiscard]] index_t subdomain_cache_hits() const { return cache_hits_; }
  /// How many subdomain setups came from the same-pattern fast path (a
  /// resident setup with this pattern but different values, numerics
  /// refreshed in place instead of rebuilt).
  [[nodiscard]] index_t subdomain_partial_hits() const {
    return partial_hits_;
  }

  /// Solve A x = b with the cached distributed setup. Safe to call
  /// concurrently.
  DistSolveResult<T> solve(std::span<const T> b) const {
    DistSolveResult<T> out = dist_pcg_solve(b, setup_, opt_);
    if (telemetry_) record(out);
    return out;
  }

  DistSolveResult<T> solve(const std::vector<T>& b) const {
    return solve(std::span<const T>(b));
  }

 private:
  void init() {
    WallTimer timer;
    setup_.partition = make_partition(*a_, opt_.parts, opt_.partition);
    setup_.locals = build_local_systems(*a_, setup_.partition);
    setup_.partition_seconds = timer.seconds();
    setup_.edge_cut = partition_stats(*a_, setup_.partition).edge_cut;

    timer.reset();
    setup_.subdomains.reserve(setup_.locals.size());
    for (const LocalSystem<T>& loc : setup_.locals) {
      if (cache_) {
        const SetupKey key = make_setup_key(loc.a_interior, opt_.options);
        if (auto exact = cache_->lookup(key)) {
          ++cache_hits_;
          // Alias into the cached SolverSetup: the SpcgSetup stays alive
          // through the outer shared_ptr's control block.
          setup_.subdomains.emplace_back(exact, &exact->artifacts);
          continue;
        }
        if (auto donor = cache_->lookup_same_pattern(key)) {
          // Values-only fast path: private clone of the donor's symbolic
          // artifacts, numerics refreshed against this interior block. Not
          // inserted back into the cache (lookup_same_pattern contract).
          auto clone =
              std::make_shared<SpcgSetup<T>>(donor->artifacts);
          NumericRefreshWorkspace ws =
              build_numeric_refresh(*clone, loc.a_interior);
          refresh_setup_numerics(*clone, loc.a_interior, opt_.options, ws);
          ++partial_hits_;
          setup_.subdomains.push_back(std::move(clone));
          continue;
        }
        bool hit = false;
        auto shared = cache_->get_or_build(
            key, [&] { return spcg_setup(loc.a_interior, opt_.options); },
            &hit);
        if (hit) ++cache_hits_;
        setup_.subdomains.emplace_back(shared, &shared->artifacts);
      } else {
        setup_.subdomains.push_back(std::make_shared<SpcgSetup<T>>(
            spcg_setup(loc.a_interior, opt_.options)));
      }
    }
    setup_.setup_seconds = timer.seconds();
    if (telemetry_) {
      telemetry_->counter("dist.setup.cache_hits")
          .add(static_cast<std::uint64_t>(cache_hits_));
      telemetry_->counter("dist.setup.partial_hits")
          .add(static_cast<std::uint64_t>(partial_hits_));
    }
  }

  void record(const DistSolveResult<T>& out) const {
    telemetry_->counter("dist.solves").add();
    telemetry_->counter("dist.iterations")
        .add(static_cast<std::uint64_t>(out.solve.iterations));
    telemetry_->counter("dist.allreduces").add(out.stats.allreduces);
    telemetry_->counter("dist.halo_exchanges").add(out.stats.halo_exchanges);
    telemetry_->histogram("dist.halo_bytes").record(out.stats.halo_bytes);
    // Transport cost: the slowest rank's blocked time and what overlap hid,
    // per solve — lands in --metrics-out like every compute phase.
    telemetry_->histogram("dist.comm.wait_us")
        .record(static_cast<std::uint64_t>(out.stats.max_wait_seconds * 1e6));
    telemetry_->histogram("dist.comm.overlap_hidden_us")
        .record(static_cast<std::uint64_t>(out.stats.overlap_hidden_seconds *
                                           1e6));
    telemetry_->max_gauge("dist.overlap_pct")
        .update(static_cast<std::uint64_t>(out.stats.overlap_efficiency *
                                           100.0));
  }

  std::shared_ptr<const Csr<T>> a_;
  DistOptions opt_;
  std::shared_ptr<SetupCache<T>> cache_;
  TelemetryRegistry* telemetry_;
  DistSetup<T> setup_;
  index_t cache_hits_ = 0;
  index_t partial_hits_ = 0;
};

}  // namespace spcg
