// Fused batched multi-RHS PCG.
//
// Solves A x_c = b_c for a block of right-hand sides over ONE shared ILU
// setup. Each column runs the exact per-column recurrence of pcg()
// (solver/pcg.h) — own alpha/beta/residual, own convergence/breakdown exit —
// but the two matrix-wide sweeps of every iteration (SpMV and the two
// triangular solves of the preconditioner apply) are fused across columns:
// one pass over A serves all columns, and one level-schedule sweep pays its
// per-wavefront barrier once instead of once per column. Converged columns
// drop out of the fused sweeps immediately.
//
// Because the fused kernels visit each column's entries in the same order as
// the single-RHS kernels, every column's iterate sequence — and therefore
// its solution, status and iteration count — is identical to a sequential
// pcg() call on that column.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "analysis/alloc_audit.h"
#include "precond/ilu.h"
#include "solver/pcg.h"
#include "sparse/csr.h"
#include "sparse/norms.h"
#include "sparse/ops.h"
#include "sptrsv/sptrsv.h"
#include "wavefront/levels.h"

namespace spcg {

/// Multi-RHS ILU apply over shared immutable factors: Z[c] = (LU)^{-1} R[c]
/// for all columns in one pair of fused level-sweeps. Owns one scratch
/// column per batch lane; not safe for concurrent use of one instance.
template <class T>
class BatchedIluApplier {
 public:
  BatchedIluApplier(const TriangularFactors<T>& factors,
                    const LevelSchedule& l_sched, const LevelSchedule& u_sched,
                    std::size_t max_batch)
      : factors_(&factors), l_sched_(&l_sched), u_sched_(&u_sched),
        tmp_(max_batch,
             std::vector<T>(static_cast<std::size_t>(factors.l.rows))) {}

  void apply(std::span<const T* const> rs, std::span<T* const> zs) {
    SPCG_CHECK(rs.size() == zs.size());
    SPCG_CHECK_MSG(rs.size() <= tmp_.size(),
                   "batch of " << rs.size() << " exceeds applier capacity "
                               << tmp_.size());
    std::vector<T*> ys(rs.size());
    for (std::size_t c = 0; c < rs.size(); ++c) ys[c] = tmp_[c].data();
    sptrsv_lower_levels_multi(factors_->l, *l_sched_, rs,
                              std::span<T* const>(ys));
    std::vector<const T*> ys_const(ys.begin(), ys.end());
    sptrsv_upper_levels_multi(factors_->u, *u_sched_,
                              std::span<const T* const>(ys_const), zs);
  }

 private:
  const TriangularFactors<T>* factors_;
  const LevelSchedule* l_sched_;
  const LevelSchedule* u_sched_;
  std::vector<std::vector<T>> tmp_;
};

/// Fused batched PCG over one shared factorization. Returns one SolveResult
/// per right-hand side, each identical to a sequential pcg() on that column.
/// `x0s` optionally supplies one initial guess per column (empty span = all
/// columns start from zero; an empty inner vector = that column starts from
/// zero). Warm columns mirror pcg()'s x0 path: r0 = b - A x0.
template <class T>
std::vector<SolveResult<T>> pcg_batched(const Csr<T>& a,
                                        std::span<const std::vector<T>> bs,
                                        const TriangularFactors<T>& factors,
                                        const LevelSchedule& l_sched,
                                        const LevelSchedule& u_sched,
                                        const PcgOptions& opt = {},
                                        std::span<const std::vector<T>> x0s =
                                            {}) {
  SPCG_CHECK(a.rows == a.cols);
  const auto n = static_cast<std::size_t>(a.rows);
  const std::size_t k_cols = bs.size();
  if (!x0s.empty()) SPCG_CHECK(x0s.size() == k_cols);

  struct Column {
    std::vector<T> x, r, z, p, w;
    T rz{};
    double r_norm = 0.0;
    double target = 0.0;
    bool done = false;
    SolveResult<T>* out = nullptr;
  };

  std::vector<SolveResult<T>> results(k_cols);
  std::vector<Column> cols(k_cols);
  BatchedIluApplier<T> applier(factors, l_sched, u_sched, k_cols);

  // Per-column initialization, mirroring pcg()'s preamble (including the
  // zero-RHS early exit).
  std::vector<std::size_t> active;  // columns still iterating
  for (std::size_t c = 0; c < k_cols; ++c) {
    SPCG_CHECK(static_cast<index_t>(bs[c].size()) == a.rows);
    Column& col = cols[c];
    col.out = &results[c];
    col.out->x.assign(n, T{0});
    const double b_norm = static_cast<double>(norm2(std::span<const T>(bs[c])));
    if (b_norm == 0.0) {
      col.out->status = SolveStatus::kConverged;
      if (opt.record_history) col.out->residual_history.push_back(0.0);
      col.done = true;
      continue;
    }
    const bool warm = !x0s.empty() && !x0s[c].empty();
    if (warm) SPCG_CHECK(static_cast<index_t>(x0s[c].size()) == a.rows);
    if (warm) {
      col.x.assign(x0s[c].begin(), x0s[c].end());
    } else {
      col.x.assign(n, T{0});
    }
    col.r.assign(bs[c].begin(), bs[c].end());
    col.z.assign(n, T{0});
    col.w.assign(n, T{0});
    if (warm) {  // r0 = b - A x0
      spmv(a, std::span<const T>(col.x), std::span<T>(col.w));
      for (std::size_t i = 0; i < n; ++i) col.r[i] -= col.w[i];
      col.w.assign(n, T{0});
    }
    col.target = opt.relative ? opt.tolerance * b_norm : opt.tolerance;
    col.r_norm = static_cast<double>(norm2(std::span<const T>(col.r)));
    active.push_back(c);
  }

  // Initial z = M r, p = z, rz = <r, z>, fused across all live columns.
  if (!active.empty()) {
    std::vector<const T*> rs;
    std::vector<T*> zs;
    for (const std::size_t c : active) {
      rs.push_back(cols[c].r.data());
      zs.push_back(cols[c].z.data());
    }
    applier.apply(std::span<const T* const>(rs), std::span<T* const>(zs));
    for (const std::size_t c : active) {
      Column& col = cols[c];
      col.p = col.z;
      col.rz = dot(std::span<const T>(col.r), std::span<const T>(col.z));
      if (opt.record_history)
        col.out->residual_history.push_back(col.r_norm);
    }
  }

  auto finish = [](Column& col, SolveStatus status, std::int32_t iterations) {
    col.out->status = status;
    col.out->iterations = iterations;
    col.out->x = std::move(col.x);
    col.done = true;
  };

  std::vector<std::size_t> iterating;
  std::vector<const T*> in_ptrs;
  std::vector<T*> out_ptrs;
  std::int32_t k = 0;
  for (; k < opt.max_iterations && !active.empty(); ++k) {
    // Allocation probe (see pcg()): after the first iteration the pointer
    // batches and per-column vectors are warm, so a steady-state batched
    // iteration must not allocate either (history recording excepted).
    const analysis::AllocAuditScope alloc_scope("batch.iteration",
                                                /*steady_state=*/k > 0);
    // Top-of-loop convergence test (pcg() line order preserved).
    iterating.clear();
    for (const std::size_t c : active) {
      Column& col = cols[c];
      if (col.r_norm < col.target) {
        finish(col, SolveStatus::kConverged, k);
      } else {
        iterating.push_back(c);
      }
    }
    if (iterating.empty()) {
      active.clear();  // every column just finished; nothing left to iterate
      break;
    }

    // Fused w = A p over the iterating columns.
    in_ptrs.clear();
    out_ptrs.clear();
    for (const std::size_t c : iterating) {
      in_ptrs.push_back(cols[c].p.data());
      out_ptrs.push_back(cols[c].w.data());
    }
    spmv_multi(a, std::span<const T* const>(in_ptrs),
               std::span<T* const>(out_ptrs));

    // Curvature check + x/r updates per column.
    active.clear();
    for (const std::size_t c : iterating) {
      Column& col = cols[c];
      const T pw =
          dot(std::span<const T>(col.p), std::span<const T>(col.w));
      if (!(pw > T{0})) {  // SPD curvature must be positive; catches NaN too
        finish(col, SolveStatus::kBreakdown, k);
        continue;
      }
      const T alpha = col.rz / pw;
      axpy(alpha, std::span<const T>(col.p), std::span<T>(col.x));
      axpy(-alpha, std::span<const T>(col.w), std::span<T>(col.r));
      active.push_back(c);
    }
    if (active.empty()) break;

    // Fused z = M r over the surviving columns.
    in_ptrs.clear();
    out_ptrs.clear();
    for (const std::size_t c : active) {
      in_ptrs.push_back(cols[c].r.data());
      out_ptrs.push_back(cols[c].z.data());
    }
    applier.apply(std::span<const T* const>(in_ptrs),
                  std::span<T* const>(out_ptrs));

    // rho update, direction update, residual norm per column.
    iterating.swap(active);
    active.clear();
    for (const std::size_t c : iterating) {
      Column& col = cols[c];
      const T rz_next =
          dot(std::span<const T>(col.r), std::span<const T>(col.z));
      if (col.rz == T{0} || rz_next != rz_next) {  // NaN guard
        finish(col, SolveStatus::kBreakdown, k + 1);
        continue;
      }
      const T beta = rz_next / col.rz;
      col.rz = rz_next;
      xpby(std::span<const T>(col.z), beta, std::span<T>(col.p));
      col.r_norm = static_cast<double>(norm2(std::span<const T>(col.r)));
      if (opt.record_history) col.out->residual_history.push_back(col.r_norm);
      active.push_back(c);
    }
  }

  // Columns that ran out of iterations (pcg()'s post-loop tail check).
  for (const std::size_t c : active) {
    Column& col = cols[c];
    finish(col,
           col.r_norm < col.target ? SolveStatus::kConverged
                                   : SolveStatus::kMaxIterations,
           k);
  }

  // True residuals, fused: one multi-SpMV over every column's solution.
  in_ptrs.clear();
  std::vector<std::vector<T>> ax(k_cols, std::vector<T>(n));
  out_ptrs.clear();
  for (std::size_t c = 0; c < k_cols; ++c) {
    in_ptrs.push_back(results[c].x.data());
    out_ptrs.push_back(ax[c].data());
  }
  spmv_multi(a, std::span<const T* const>(in_ptrs),
             std::span<T* const>(out_ptrs));
  for (std::size_t c = 0; c < k_cols; ++c) {
    double true_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d =
          static_cast<double>(bs[c][i]) - static_cast<double>(ax[c][i]);
      true_norm += d * d;
    }
    results[c].final_residual_norm = std::sqrt(true_norm);
  }
  return results;
}

}  // namespace spcg
