// Umbrella header for the solver runtime layer (DESIGN.md §7):
//   * fingerprint.h   — matrix/options cache keys
//   * setup_cache.h   — thread-safe LRU of shared immutable setups
//   * session.h       — setup-once/solve-many SolverSession + batched PCG
//   * dist_session.h  — distributed sibling over a partitioned system (§8)
//   * solve_service.h — async worker-pool service with deadlines/fallback
#pragma once

#include "runtime/batch.h"          // IWYU pragma: export
#include "runtime/dist_session.h"   // IWYU pragma: export
#include "runtime/fingerprint.h"    // IWYU pragma: export
#include "runtime/session.h"        // IWYU pragma: export
#include "runtime/setup_cache.h"    // IWYU pragma: export
#include "runtime/solve_service.h"  // IWYU pragma: export
