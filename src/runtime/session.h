// SolverSession — setup-once / solve-many handle over one linear system.
//
// A session pins (matrix, setup options) to an immutable, shareable
// SolverSetup: the sparsify decision, the ILU factors and both precomputed
// level schedules. Construction either builds the setup or fetches it from a
// SetupCache (so concurrent sessions on the same system share one setup);
// every subsequent solve reuses it for any number of right-hand sides,
// individually or as a fused multi-RHS batch.
//
// Opt-in transient fast path (`allow_pattern_refresh`): when the exact cache
// key misses but a same-pattern setup is resident (a values-only change),
// construction clones that donor's symbolic artifacts and refreshes the
// numerics in place (transient/refactorize.h) instead of running a cold
// spcg_setup. The refreshed setup stays private to the session and is never
// inserted back into the cache.
//
// Thread safety: solve() and solve_batch() are const and allocate their own
// scratch (each solve builds a fresh IluApplier over the shared immutable
// factors), so one session may serve many threads concurrently.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/verify.h"
#include "core/spcg.h"
#include "precond/preconditioner.h"
#include "runtime/batch.h"
#include "runtime/fingerprint.h"
#include "runtime/setup_cache.h"
#include "support/timer.h"
#include "support/trace.h"
#include "transient/refactorize.h"

namespace spcg {

/// One solve through a session. Setup artifacts are not duplicated here —
/// read them off the session (or convert with SolverSession::to_spcg_result
/// when the classic SpcgResult shape is needed).
template <class T>
struct SessionSolveResult {
  SolveResult<T> solve;
  double solve_seconds = 0.0;
};

/// How solve_batch executes a block of right-hand sides.
struct BatchOptions {
  enum class Mode {
    kFused,        // one batched PCG: SpMV + SpTRSV sweeps fused across RHS
    kIndependent,  // per-RHS pcg() calls, optionally across threads
  };
  Mode mode = Mode::kFused;
  int threads = 1;  // worker threads for kIndependent (clamped to batch size)
};

template <class T>
class SolverSession {
 public:
  /// Share ownership of the matrix (the usual service path).
  /// `allow_pattern_refresh` arms the same-pattern numeric-refresh fast path
  /// described above.
  SolverSession(std::shared_ptr<const Csr<T>> a, SpcgOptions opt,
                std::shared_ptr<SetupCache<T>> cache = nullptr,
                bool allow_pattern_refresh = false)
      : a_(std::move(a)), opt_(std::move(opt)), cache_(std::move(cache)),
        allow_pattern_refresh_(allow_pattern_refresh) {
    init(fingerprint_traced());
  }

  /// Borrow a caller-owned matrix (must outlive the session).
  SolverSession(const Csr<T>& a, SpcgOptions opt,
                std::shared_ptr<SetupCache<T>> cache = nullptr,
                bool allow_pattern_refresh = false)
      : SolverSession(std::shared_ptr<const Csr<T>>(&a, [](const Csr<T>*) {}),
                      std::move(opt), std::move(cache),
                      allow_pattern_refresh) {}

  /// Borrow with a precomputed fingerprint, so callers probing several
  /// option sets against one matrix (select_best_fill_level) hash it once.
  SolverSession(const Csr<T>& a, const MatrixFingerprint& fp, SpcgOptions opt,
                std::shared_ptr<SetupCache<T>> cache = nullptr)
      : a_(std::shared_ptr<const Csr<T>>(&a, [](const Csr<T>*) {})),
        opt_(std::move(opt)), cache_(std::move(cache)) {
    init(fp);
  }

  [[nodiscard]] const Csr<T>& matrix() const { return *a_; }
  [[nodiscard]] const SpcgOptions& options() const { return opt_; }
  [[nodiscard]] const SpcgSetup<T>& setup() const { return setup_->artifacts; }
  [[nodiscard]] std::shared_ptr<const SolverSetup<T>> shared_setup() const {
    return setup_;
  }
  [[nodiscard]] const SetupKey& key() const { return setup_->key; }
  /// Whether construction found the setup in the cache (false when built,
  /// or when the session has no cache).
  [[nodiscard]] bool setup_cache_hit() const { return cache_hit_; }
  /// Whether construction took the same-pattern fast path: symbolic
  /// artifacts cloned from a resident donor, numerics refreshed in place.
  [[nodiscard]] bool setup_pattern_refreshed() const {
    return pattern_refreshed_;
  }

  /// Debug verification knob: verifies the shared setup artifacts end to
  /// end immediately (throwing spcg::Error with the report when any
  /// invariant fails) and arms a NaN/Inf taint scan over b and x around
  /// every subsequent solve()/solve_batch(). A solve-phase option — it does
  /// not participate in the setup-cache key.
  void enable_verify(analysis::VerifyOptions vopt = {}) {
    const analysis::Diagnostics d =
        analysis::verify_setup(*a_, setup_->artifacts, opt_, vopt);
    if (!d.ok())
      throw Error("setup verification failed:\n" + d.to_string(8));
    verify_ = std::move(vopt);
  }
  [[nodiscard]] bool verify_enabled() const { return verify_.has_value(); }

  /// Solve A x = b with the cached setup. Safe to call concurrently.
  SessionSolveResult<T> solve(std::span<const T> b) const {
    SessionSolveResult<T> out;
    WallTimer timer;
    // Covers the applier construction (per-solve scratch) plus the nested
    // pcg span, so request timelines have no untraced gap before iterating.
    Span span("session.solve", "runtime");
    const analysis::AllocAuditScope alloc_scope("session.solve");
    taint_check(b, "b");
    const IluApplier<T> m(setup_->artifacts.factors,
                          setup_->artifacts.l_schedule,
                          setup_->artifacts.u_schedule, opt_.executor);
    out.solve = pcg(*a_, b, m, opt_.pcg);
    taint_check(std::span<const T>(out.solve.x), "x");
    out.solve_seconds = timer.seconds();
    return out;
  }

  SessionSolveResult<T> solve(const std::vector<T>& b) const {
    return solve(std::span<const T>(b));
  }

  /// Solve one batch of right-hand sides over the shared setup. Results per
  /// column match sequential solve() calls (identical arithmetic order in
  /// the fused kernels).
  std::vector<SessionSolveResult<T>> solve_batch(
      std::span<const std::vector<T>> bs, BatchOptions batch = {}) const {
    std::vector<SessionSolveResult<T>> out(bs.size());
    if (bs.empty()) return out;

    // The fused path drives the level-scheduled multi-RHS kernels; the
    // instrumented checked executor has no multi-RHS counterpart, so it
    // (like an explicit request) routes through independent solves.
    const bool fused = batch.mode == BatchOptions::Mode::kFused &&
                       opt_.executor != TrsvExec::kLevelScheduledChecked;
    if (fused) {
      WallTimer timer;
      const analysis::AllocAuditScope alloc_scope("session.batch");
      for (const std::vector<T>& b : bs)
        taint_check(std::span<const T>(b), "b");
      std::vector<SolveResult<T>> solved =
          pcg_batched(*a_, bs, setup_->artifacts.factors,
                      setup_->artifacts.l_schedule,
                      setup_->artifacts.u_schedule, opt_.pcg);
      for (const SolveResult<T>& s : solved)
        taint_check(std::span<const T>(s.x), "x");
      const double elapsed = timer.seconds();
      for (std::size_t c = 0; c < bs.size(); ++c) {
        out[c].solve = std::move(solved[c]);
        out[c].solve_seconds = elapsed;  // shared sweep: per-batch wall clock
      }
      return out;
    }

    const int workers = std::max(
        1, std::min<int>(batch.threads, static_cast<int>(bs.size())));
    if (workers == 1) {
      for (std::size_t c = 0; c < bs.size(); ++c) out[c] = solve(bs[c]);
      return out;
    }
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(workers));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          for (std::size_t c = static_cast<std::size_t>(w); c < bs.size();
               c += static_cast<std::size_t>(workers))
            out[c] = solve(bs[c]);
        } catch (...) {
          errors[static_cast<std::size_t>(w)] = std::current_exception();
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (const std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
    return out;
  }

  /// Materialize the classic SpcgResult shape (copies the shared setup
  /// artifacts; intended for reporting paths, not the solve hot loop).
  SpcgResult<T> to_spcg_result(SessionSolveResult<T> r) const {
    const SpcgSetup<T>& s = setup_->artifacts;
    SpcgResult<T> out;
    out.solve = std::move(r.solve);
    out.decision = s.decision;
    out.factorization = s.factorization;
    out.factor_nnz = s.factor_nnz;
    out.wavefronts_factor = s.wavefronts_factor;
    out.matrix_wavefronts = s.matrix_wavefronts;
    out.sparsify_seconds = s.sparsify_seconds;
    out.factorization_seconds = s.factorization_seconds;
    out.solve_seconds = r.solve_seconds;
    return out;
  }

 private:
  /// Phase-boundary NaN/Inf sweep when the verify knob is armed.
  void taint_check(std::span<const T> v, const std::string& object) const {
    if (!verify_ || !verify_->taint_scan) return;
    const analysis::Diagnostics d =
        analysis::taint_scan(v, object, verify_->max_per_rule);
    if (!d.ok())
      throw Error("taint scan failed on " + object + ":\n" + d.to_string(4));
  }

  /// Hashing the matrix is the only per-session cost a cache hit cannot
  /// amortize; give it its own span so request timelines show it.
  MatrixFingerprint fingerprint_traced() const {
    Span span("fingerprint", "runtime");
    span.arg("rows", static_cast<std::int64_t>(a_->rows));
    return fingerprint(*a_);
  }

  void init(const MatrixFingerprint& fp) {
    const SetupKey key = make_setup_key(fp, opt_);
    if (cache_) {
      if (allow_pattern_refresh_) {
        if (auto exact = cache_->lookup(key)) {
          cache_hit_ = true;
          setup_ = std::move(exact);
          return;
        }
        if (auto donor = cache_->lookup_same_pattern(key)) {
          // Values-only change: clone the donor's artifacts and refresh the
          // numerics. Private to this session — never re-inserted into the
          // cache (lookup_same_pattern contract).
          Span span("setup.pattern_refresh", "runtime");
          WallTimer timer;
          auto refreshed = std::make_shared<SolverSetup<T>>();
          refreshed->key = key;
          refreshed->artifacts = donor->artifacts;
          NumericRefreshWorkspace ws =
              build_numeric_refresh(refreshed->artifacts, *a_);
          refresh_setup_numerics(refreshed->artifacts, *a_, opt_, ws);
          refreshed->build_seconds = timer.seconds();
          pattern_refreshed_ = true;
          setup_ = std::move(refreshed);
          return;
        }
      }
      setup_ = cache_->get_or_build(
          key, [&] { return spcg_setup(*a_, opt_); }, &cache_hit_);
    } else {
      auto built = std::make_shared<SolverSetup<T>>();
      built->key = key;
      WallTimer timer;
      built->artifacts = spcg_setup(*a_, opt_);
      built->build_seconds = timer.seconds();
      setup_ = std::move(built);
    }
  }

  std::shared_ptr<const Csr<T>> a_;
  SpcgOptions opt_;
  std::shared_ptr<SetupCache<T>> cache_;
  std::shared_ptr<const SolverSetup<T>> setup_;
  bool cache_hit_ = false;
  bool allow_pattern_refresh_ = false;
  bool pattern_refreshed_ = false;
  std::optional<analysis::VerifyOptions> verify_;
};

/// Select the best-converging K ∈ `candidates` for the *baseline* PCG-ILU(K)
/// on matrix A (paper §3.3: "we select the best converging K ... for the
/// non-sparsified PCG-ILU(K). We then use this value to measure the effect
/// of sparsification"). Best = fewest iterations among converging runs, ties
/// to the smaller K; when nothing converges, the K with the smallest final
/// residual.
///
/// Deprecated spelling: this forwards to tune_fill_level in
/// autotune/fill_level.h, which additionally records every candidate's
/// timings in KSelection::trials and accepts a TelemetryRegistry. New code
/// should call tune_fill_level (or the full Tuner in autotune/tuner.h)
/// directly; this wrapper stays for source compatibility.
template <class T>
KSelection<T> select_best_fill_level(
    const Csr<T>& a, std::span<const T> b, SpcgOptions opt,
    std::span<const index_t> candidates,
    std::shared_ptr<SetupCache<T>> cache = nullptr) {
  return tune_fill_level(a, b, std::move(opt), candidates, std::move(cache),
                         nullptr);
}

template <class T>
KSelection<T> select_best_fill_level(
    const Csr<T>& a, const std::vector<T>& b, const SpcgOptions& opt,
    const std::vector<index_t>& candidates,
    std::shared_ptr<SetupCache<T>> cache = nullptr) {
  return select_best_fill_level(a, std::span<const T>(b), opt,
                                std::span<const index_t>(candidates),
                                std::move(cache));
}

}  // namespace spcg

// The forwarding target. Trailing include so both include orders compile:
// fill_level.h itself includes this header (its probes run through
// SolverSession), and the wrapper's call is resolved via argument-dependent
// lookup at instantiation time, by which point the definition is visible.
#include "autotune/fill_level.h"  // NOLINT(misc-include-cleaner)
