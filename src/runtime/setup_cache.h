// SetupCache — thread-safe LRU of shared, immutable solver setups.
//
// The expensive half of every SPCG run (Algorithm 2 sparsification, ILU
// factorization, level-schedule inspection) depends only on (matrix, setup
// options). The cache maps that SetupKey to a shared_ptr<const SolverSetup>
// so concurrent sessions solving the same system share one setup instead of
// rebuilding it per request.
//
// Concurrency model: each entry is a shared_future. A miss inserts the
// future under the lock, then builds *outside* the lock and fulfills it —
// other threads that race to the same key block on the future instead of
// duplicating the build. A build failure erases the entry (and rethrows to
// every waiter), so a later request retries instead of caching the error.
// Eviction drops the least-recently-used entry; in-flight users keep their
// setups alive through the shared_ptr, so eviction never invalidates a
// running solve.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/spcg.h"
#include "runtime/fingerprint.h"
#include "support/telemetry.h"
#include "support/timer.h"
#include "support/trace.h"

namespace spcg {

/// A cached, immutable setup: the key it was built under plus the artifacts.
template <class T>
struct SolverSetup {
  SetupKey key;
  SpcgSetup<T> artifacts;
  double build_seconds = 0.0;  // wall-clock spent building this entry
};

/// Counter snapshot of one cache.
struct SetupCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Same-pattern lookups answered from the secondary index: the exact key
  /// missed but an entry with the same pattern + options was resident — a
  /// values-only change, observable distinctly from a cold miss.
  std::uint64_t partial_hits = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <class T>
class SetupCache {
 public:
  using SetupPtr = std::shared_ptr<const SolverSetup<T>>;

  /// `capacity` = maximum retained entries (>= 1).
  explicit SetupCache(std::size_t capacity = 16)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The setup for (a, opt), built via spcg_setup on a miss.
  SetupPtr get_or_build(const Csr<T>& a, const SpcgOptions& opt,
                        bool* was_hit = nullptr) {
    return get_or_build(make_setup_key(a, opt),
                        [&] { return spcg_setup(a, opt); }, was_hit);
  }

  /// Same with a precomputed key (callers that fingerprint once and reuse it
  /// across several option sets, e.g. select_best_fill_level).
  SetupPtr get_or_build(const SetupKey& key,
                        const std::function<SpcgSetup<T>()>& build,
                        bool* was_hit = nullptr) {
    Span lookup_span("setup_cache.lookup", "runtime");
    std::promise<SetupPtr> promise;
    std::shared_future<SetupPtr> future;
    std::uint64_t my_generation = 0;
    bool build_here = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = map_.find(key);
      if (it != map_.end()) {
        hits_.add();
        if (was_hit) *was_hit = true;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
        future = it->second.future;
      } else {
        misses_.add();
        if (was_hit) *was_hit = false;
        future = promise.get_future().share();
        lru_.push_front(key);
        my_generation = ++generation_;
        map_.emplace(key, Entry{future, lru_.begin(), my_generation});
        pattern_index_[pattern_key_of(key)].push_back(key);
        build_here = true;
        while (map_.size() > capacity_) {
          const SetupKey& victim = lru_.back();  // never the key just added
          drop_pattern_entry(victim);
          map_.erase(victim);
          lru_.pop_back();
          evictions_.add();
        }
      }
    }
    lookup_span.arg("hit", !build_here);
    lookup_span.finish();
    if (build_here) {
      try {
        Span build_span("setup_cache.build", "runtime");
        WallTimer timer;
        auto setup = std::make_shared<SolverSetup<T>>();
        setup->key = key;
        setup->artifacts = build();
        setup->build_seconds = timer.seconds();
        build_span.arg("build_seconds", setup->build_seconds);
        promise.set_value(std::move(setup));
      } catch (...) {
        promise.set_exception(std::current_exception());
        // Drop the poisoned entry (unless it was already evicted or
        // replaced) so the next request retries the build.
        const std::lock_guard<std::mutex> lock(mu_);
        const auto it = map_.find(key);
        if (it != map_.end() && it->second.generation == my_generation) {
          lru_.erase(it->second.lru_it);
          drop_pattern_entry(key);
          map_.erase(it);
        }
      }
    }
    // Builders resolve instantly; racing threads block here until the
    // winning build fulfills the future (or rethrows its error).
    Span wait_span("setup_cache.wait", "runtime");
    return future.get();
  }

  /// Peek: the resident setup for exactly `key`, or null. A hit counts
  /// toward hits_ and touches the LRU; a miss counts nothing (callers that
  /// fall through to get_or_build or lookup_same_pattern account for the
  /// outcome there). Blocks if the entry is still building.
  SetupPtr lookup(const SetupKey& key) {
    std::shared_future<SetupPtr> future;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = map_.find(key);
      if (it == map_.end()) return nullptr;
      hits_.add();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
      future = it->second.future;
    }
    try {
      return future.get();
    } catch (...) {
      return nullptr;  // poisoned in-flight entry; treat as absent
    }
  }

  /// The values-only fast path: a resident setup whose pattern + options
  /// match `key` but whose values_hash differs (the exact key is skipped —
  /// use lookup() first for exact hits). Returns the most recently inserted
  /// such entry, counting a partial hit; null when no same-pattern entry is
  /// resident. The returned setup's *symbolic* artifacts (ILU pattern,
  /// schedules, sparsify pattern decision) are valid for `key`'s matrix; its
  /// numerics are stale — callers refresh them (transient/refactorize.h)
  /// and must NOT insert the refreshed clone back into the cache.
  SetupPtr lookup_same_pattern(const SetupKey& key) {
    std::shared_future<SetupPtr> future;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = pattern_index_.find(pattern_key_of(key));
      if (it == pattern_index_.end()) return nullptr;
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        if (*rit == key) continue;  // exact key: not a *partial* hit
        const auto entry = map_.find(*rit);
        if (entry == map_.end()) continue;  // stale index slot
        partial_hits_.add();
        future = entry->second.future;
        break;
      }
    }
    if (!future.valid()) return nullptr;
    try {
      return future.get();
    } catch (...) {
      return nullptr;
    }
  }

  [[nodiscard]] SetupCacheStats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return {hits_.value(), misses_.value(), evictions_.value(),
            partial_hits_.value(), map_.size()};
  }

  /// Drop every entry (in-flight users keep theirs via shared_ptr).
  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    pattern_index_.clear();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_future<SetupPtr> future;
    typename std::list<SetupKey>::iterator lru_it;
    std::uint64_t generation = 0;  // distinguishes re-inserts of one key
  };

  /// Remove `key` from its pattern bucket (requires mu_ held).
  void drop_pattern_entry(const SetupKey& key) {
    const auto it = pattern_index_.find(pattern_key_of(key));
    if (it == pattern_index_.end()) return;
    auto& bucket = it->second;
    for (auto bit = bucket.begin(); bit != bucket.end(); ++bit) {
      if (*bit == key) {
        bucket.erase(bit);
        break;
      }
    }
    if (bucket.empty()) pattern_index_.erase(it);
  }

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<SetupKey> lru_;  // front = most recently used
  std::unordered_map<SetupKey, Entry, SetupKeyHash> map_;
  /// Secondary index: pattern+options -> resident keys, insertion-ordered
  /// (back = newest). Serves lookup_same_pattern for the transient fast path.
  std::unordered_map<SetupPatternKey, std::vector<SetupKey>,
                     SetupPatternKeyHash>
      pattern_index_;
  std::uint64_t generation_ = 0;
  Counter hits_, misses_, evictions_, partial_hits_;
};

}  // namespace spcg
