// SolveService — asynchronous solver-as-a-service front end.
//
// A fixed worker pool drains a FIFO of solve requests. Each request is
// answered through a SolverSession backed by the service-wide SetupCache, so
// repeated traffic against the same systems pays the setup phase once.
// Callers get a future plus a cancellation handle; requests carry optional
// deadlines (checked when a worker picks the request up and again between
// the primary attempt and the fallback — a running PCG is never interrupted
// mid-iteration).
//
// Graceful degradation: when the sparsified pipeline breaks (setup throws,
// e.g. ILU breakdown with pivot boosting disabled) or fails to converge, the
// worker automatically retries with the non-sparsified baseline (pivot
// boosting forced on) and reports the fallback and its reason in the reply.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/alloc_audit.h"
#include "autotune/tuner.h"
#include "core/spcg.h"
#include "runtime/dist_session.h"
#include "runtime/session.h"
#include "runtime/setup_cache.h"
#include "support/error.h"
#include "support/telemetry.h"
#include "support/trace.h"

namespace spcg {

/// One async solve request. The matrix is shared (requests against the same
/// system reuse one allocation and one cached setup).
template <class T>
struct ServiceRequest {
  std::shared_ptr<const Csr<T>> a;
  std::vector<T> b;
  SpcgOptions options;
  /// Relative deadline from submission; expired requests are answered with
  /// kDeadlineExpired instead of being solved.
  std::optional<std::chrono::steady_clock::duration> deadline;
  /// Solve distributed over this many thread-ranks (1 = the serial session).
  /// Subdomain setups flow through the same service-wide SetupCache.
  index_t parts = 1;
  PartitionOptions partition;  // partitioning strategy when parts > 1
  bool overlap_comm = false;   // communication-overlapped distributed body
  /// Communication-reduced distributed body (one fused all-reduce per
  /// iteration); takes precedence over overlap_comm.
  bool comm_reduced = false;
  /// Transport backing for distributed requests (kind, collective timeout,
  /// injected latency).
  TransportOptions transport;
  /// Let the service's Tuner pick the configuration: `options` contributes
  /// the solve-phase knobs (tolerances, pivot handling), the tuned winner
  /// overrides the setup-phase ones (sparsify / preconditioner / executor).
  /// Repeat traffic against the same matrix answers from the tuning DB with
  /// zero measured trials. Serial requests only (parts == 1).
  bool autotune = false;
};

enum class RequestStatus {
  kOk,               // solved (inspect reply.solve.status for convergence)
  kDeadlineExpired,  // deadline passed before/between solve attempts
  kCancelled,        // cancellation observed before the solve started
  kFailed,           // both primary and fallback attempts threw
};

inline const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kDeadlineExpired: return "deadline-expired";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kFailed: return "failed";
  }
  return "unknown";
}

template <class T>
struct ServiceReply {
  RequestStatus status = RequestStatus::kFailed;
  SolveResult<T> solve;            // valid when status == kOk
  bool used_fallback = false;      // baseline retry produced `solve`
  std::string fallback_reason;     // why the primary attempt was abandoned
  std::string error;               // failure detail when status == kFailed
  bool setup_cache_hit = false;    // setup of the *answering* attempt
  /// The answering setup came from the same-pattern fast path (symbolic
  /// artifacts reused, numerics refreshed) rather than an exact hit/build.
  bool setup_pattern_refreshed = false;
  double queue_seconds = 0.0;      // submission -> worker pickup
  double solve_seconds = 0.0;      // PCG wall clock of the answering attempt
  std::shared_ptr<const SolverSetup<T>> setup;  // shared artifacts (if any)
  bool autotuned = false;          // a Tuner picked the configuration
  std::string tuned_config;        // config_id of the winner (when autotuned)
  bool tune_db_hit = false;        // winner came straight from the tuning DB
};

/// Aggregate counters of one service (see also SetupCacheStats).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  SetupCacheStats cache;
};

template <class T>
class SolveService {
 public:
  struct Options {
    Options() = default;
    Options(int workers_, std::size_t cache_capacity_)
        : workers(workers_), cache_capacity(cache_capacity_) {}

    int workers = 2;
    std::size_t cache_capacity = 16;
    /// Autotune wiring: tuning database shared by every autotune request
    /// (created internally when null — e.g. when no --tune-db file backs it)
    /// and the search knobs. The tuner itself is built by the service so it
    /// shares the service-wide SetupCache and telemetry.
    std::shared_ptr<TuneDb> tune_db;
    TunerOptions tuner;
  };

  /// Future + cancellation handle for one submitted request.
  struct Ticket {
    std::uint64_t id = 0;
    std::future<ServiceReply<T>> reply;
    std::shared_ptr<std::atomic<bool>> cancel_flag;

    /// Best-effort: a request already being solved completes normally.
    void request_cancel() const {
      cancel_flag->store(true, std::memory_order_relaxed);
    }
  };

  explicit SolveService(Options opt = {})
      : cache_(std::make_shared<SetupCache<T>>(opt.cache_capacity)),
        tuner_(opt.tuner, opt.tune_db ? opt.tune_db
                                      : std::make_shared<TuneDb>(),
               cache_, &telemetry_),
        submitted_(telemetry_.counter("service.submitted")),
        completed_(telemetry_.counter("service.completed")),
        fallbacks_(telemetry_.counter("service.fallbacks")),
        deadline_expired_(telemetry_.counter("service.deadline_expired")),
        cancelled_(telemetry_.counter("service.cancelled")),
        failed_(telemetry_.counter("service.failed")),
        autotuned_(telemetry_.counter("service.autotuned")) {
    const int workers = std::max(1, opt.workers);
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~SolveService() { shutdown(); }

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Enqueue a request; throws spcg::Error after shutdown().
  Ticket submit(ServiceRequest<T> request) {
    SPCG_CHECK_MSG(request.a != nullptr, "request has no matrix");
    Job job;
    job.request = std::move(request);
    job.submitted_at = std::chrono::steady_clock::now();
    if (job.request.deadline)
      job.deadline_at = job.submitted_at + *job.request.deadline;
    job.cancel = std::make_shared<std::atomic<bool>>(false);

    Ticket ticket;
    ticket.reply = job.promise.get_future();
    ticket.cancel_flag = job.cancel;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      SPCG_CHECK_MSG(accepting_, "submit() after shutdown()");
      job.id = ticket.id = next_id_++;
      queue_.push_back(std::move(job));
    }
    submitted_.add();
    cv_.notify_one();
    return ticket;
  }

  /// Stop accepting work, drain the queue, join the workers. Every
  /// outstanding future is fulfilled before this returns. Idempotent.
  void shutdown() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!accepting_ && workers_.empty()) return;
      accepting_ = false;
    }
    cv_.notify_all();
    for (std::thread& t : workers_)
      if (t.joinable()) t.join();
    workers_.clear();
  }

  [[nodiscard]] ServiceStats stats() const {
    ServiceStats s;
    s.submitted = submitted_.value();
    s.completed = completed_.value();
    s.fallbacks = fallbacks_.value();
    s.deadline_expired = deadline_expired_.value();
    s.cancelled = cancelled_.value();
    s.failed = failed_.value();
    s.cache = cache_->stats();
    return s;
  }

  /// All service counters plus the cache's (and, in SPCG_ALLOC_AUDIT
  /// builds, the per-phase allocation-audit totals), for logging/CLIs.
  [[nodiscard]] std::vector<CounterSample> telemetry_snapshot() const {
    std::vector<CounterSample> out = telemetry_.snapshot();
    const SetupCacheStats c = cache_->stats();
    out.push_back({"setup_cache.entries", c.entries});
    out.push_back({"setup_cache.evictions", c.evictions});
    out.push_back({"setup_cache.hits", c.hits});
    out.push_back({"setup_cache.misses", c.misses});
    out.push_back({"setup_cache.partial_hits", c.partial_hits});
    analysis::append_alloc_counters(out);
    return out;
  }

  [[nodiscard]] const std::shared_ptr<SetupCache<T>>& cache() const {
    return cache_;
  }

  /// The service-wide tuner and its tuning database (persisted by the CLI
  /// between runs; shared so external code can pre-load or save it).
  [[nodiscard]] const Tuner<T>& tuner() const { return tuner_; }
  [[nodiscard]] const std::shared_ptr<TuneDb>& tune_db() const {
    return tuner_.db();
  }

 private:
  struct Job {
    std::uint64_t id = 0;
    ServiceRequest<T> request;
    std::promise<ServiceReply<T>> promise;
    std::shared_ptr<std::atomic<bool>> cancel;
    std::chrono::steady_clock::time_point submitted_at;
    std::optional<std::chrono::steady_clock::time_point> deadline_at;
  };

  void worker_loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
        if (queue_.empty()) return;  // draining finished
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      // Queue wait is recorded retroactively (submission -> pickup) so the
      // trace timeline shows waiting and executing as adjacent spans.
      global_trace().record("queue_wait", "service", job.submitted_at,
                            MonotonicClock::now(),
                            {trace_arg("id", job.id)});
      ServiceReply<T> reply;
      {
        Span span("execute", "service");
        span.arg("id", job.id);
        const analysis::AllocAuditScope alloc_scope("service.execute");
        try {
          reply = process(job);
        } catch (const std::exception& e) {
          reply.status = RequestStatus::kFailed;  // defensive; process() catches
          reply.error = e.what();
          failed_.add();
        }
        span.arg("status", to_string(reply.status));
        span.arg("fallback", reply.used_fallback);
      }
      completed_.add();
      job.promise.set_value(std::move(reply));
    }
  }

  [[nodiscard]] bool expired(const Job& job) const {
    return job.deadline_at &&
           std::chrono::steady_clock::now() > *job.deadline_at;
  }

  ServiceReply<T> process(const Job& job) {
    ServiceReply<T> reply;
    reply.queue_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job.submitted_at)
            .count();
    if (job.cancel->load(std::memory_order_relaxed)) {
      reply.status = RequestStatus::kCancelled;
      cancelled_.add();
      return reply;
    }
    if (expired(job)) {
      reply.status = RequestStatus::kDeadlineExpired;
      deadline_expired_.add();
      return reply;
    }

    // Primary attempt with the requested options. parts > 1 routes through
    // the distributed session (per-subdomain setups share the same cache);
    // its degradation path is the serial baseline below, so a bad partition
    // or a non-converging Schwarz preconditioner still gets an answer.
    const bool distributed = job.request.parts > 1;
    try {
      if (distributed) {
        DistOptions dopt;
        dopt.parts = job.request.parts;
        dopt.partition = job.request.partition;
        dopt.options = job.request.options;
        dopt.overlap = job.request.overlap_comm;
        if (job.request.comm_reduced) dopt.body = DistBody::kCommReduced;
        dopt.transport = job.request.transport;
        DistSolverSession<T> session(job.request.a, dopt, cache_, &telemetry_);
        DistSolveResult<T> run = session.solve(job.request.b);
        reply.setup_cache_hit =
            session.subdomain_cache_hits() == session.parts();
        reply.setup_pattern_refreshed = session.subdomain_partial_hits() > 0;
        reply.solve_seconds = run.solve_seconds;
        if (run.solve.converged()) {
          reply.status = RequestStatus::kOk;
          reply.solve = std::move(run.solve);
          return reply;
        }
        reply.fallback_reason =
            std::string("distributed solve did not converge (") +
            std::to_string(run.solve.iterations) + " iterations)";
      } else if (job.request.autotune) {
        // Tuned path: ask the tuner for this matrix's configuration (an
        // exact DB hit answers with zero measured trials), then execute the
        // winner. The caller's options contribute the solve-phase knobs.
        const TuneOutcome tuned = tuner_.tune(*job.request.a);
        reply.autotuned = true;
        reply.tuned_config = config_id(tuned.config);
        reply.tune_db_hit = tuned.db_hit;
        autotuned_.add();
        if (session_compatible(tuned.config)) {
          SolverSession<T> session(
              job.request.a, to_spcg_options(tuned.config, job.request.options),
              cache_);
          SessionSolveResult<T> run = session.solve(job.request.b);
          reply.setup_cache_hit = session.setup_cache_hit();
          reply.setup = session.shared_setup();
          reply.solve_seconds = run.solve_seconds;
          if (run.solve.converged()) {
            reply.status = RequestStatus::kOk;
            reply.solve = std::move(run.solve);
            return reply;
          }
        } else {
          TunedSolve<T> run = solve_with_config(
              *job.request.a, std::span<const T>(job.request.b), tuned.config,
              tuner_.options(), cache_);
          reply.setup_cache_hit = run.setup_cache_hit;
          reply.solve_seconds = run.solve_seconds;
          if (run.solve.converged()) {
            reply.status = RequestStatus::kOk;
            reply.solve = std::move(run.solve);
            return reply;
          }
        }
        reply.fallback_reason = std::string("tuned config ") +
                                reply.tuned_config + " did not converge";
      } else {
        SolverSession<T> session(job.request.a, job.request.options, cache_,
                                 /*allow_pattern_refresh=*/true);
        SessionSolveResult<T> run = session.solve(job.request.b);
        reply.setup_cache_hit = session.setup_cache_hit();
        reply.setup_pattern_refreshed = session.setup_pattern_refreshed();
        reply.setup = session.shared_setup();
        reply.solve_seconds = run.solve_seconds;
        if (run.solve.converged() || !job.request.options.sparsify_enabled) {
          // Converged, or already the baseline: nothing left to degrade to.
          reply.status = RequestStatus::kOk;
          reply.solve = std::move(run.solve);
          return reply;
        }
        reply.fallback_reason = std::string("primary did not converge (") +
                                std::to_string(run.solve.iterations) +
                                " iterations)";
      }
    } catch (const std::exception& e) {
      if (!distributed && !job.request.autotune &&
          !job.request.options.sparsify_enabled) {
        reply.status = RequestStatus::kFailed;
        reply.error = e.what();
        failed_.add();
        return reply;
      }
      reply.fallback_reason = e.what();
    }

    // Degraded attempt: non-sparsified baseline, pivot boosting forced on.
    fallbacks_.add();
    if (job.cancel->load(std::memory_order_relaxed)) {
      reply.status = RequestStatus::kCancelled;
      cancelled_.add();
      return reply;
    }
    if (expired(job)) {
      reply.status = RequestStatus::kDeadlineExpired;
      deadline_expired_.add();
      return reply;
    }
    try {
      SpcgOptions baseline = job.request.options;
      baseline.sparsify_enabled = false;
      baseline.ilu.boost_zero_pivots = true;
      SolverSession<T> session(job.request.a, baseline, cache_);
      SessionSolveResult<T> run = session.solve(job.request.b);
      reply.status = RequestStatus::kOk;
      reply.used_fallback = true;
      reply.solve = std::move(run.solve);
      reply.setup_cache_hit = session.setup_cache_hit();
      reply.setup = session.shared_setup();
      reply.solve_seconds = run.solve_seconds;
    } catch (const std::exception& e) {
      reply.status = RequestStatus::kFailed;
      reply.error = reply.fallback_reason + "; fallback: " + e.what();
      failed_.add();
    }
    return reply;
  }

  std::shared_ptr<SetupCache<T>> cache_;
  Tuner<T> tuner_;
  TelemetryRegistry telemetry_;
  Counter& submitted_;
  Counter& completed_;
  Counter& fallbacks_;
  Counter& deadline_expired_;
  Counter& cancelled_;
  Counter& failed_;
  Counter& autotuned_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool accepting_ = true;
  std::uint64_t next_id_ = 1;
  std::vector<std::thread> workers_;
};

}  // namespace spcg
