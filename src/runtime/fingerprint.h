// Matrix and option fingerprints — the cache keys of the runtime layer.
//
// A fingerprint separates the *pattern* (rows/cols/rowptr/colind) from the
// *values* so callers can reason about the two invalidation granularities
// the setup pipeline actually has: a pattern change invalidates symbolic
// work (ILU(K) fill, level schedules), a value change invalidates numeric
// work (sparsification choice, factor values). The setup cache keys on
// both, plus a digest of the setup-relevant options, so two sessions with
// the same matrix but different fill levels never collide.
//
// Hashes are FNV-1a over the raw little-endian bytes — deterministic across
// runs of the same binary, which is all a process-local cache needs. The
// same construction underlies gen/suite.h's suite_checksum() idea: a
// changed generator changes the fingerprint and therefore invalidates any
// cached setup built from the old bits.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "core/spcg.h"
#include "sparse/csr.h"

namespace spcg {

namespace detail {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                                 std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <class T>
std::uint64_t fnv1a_span(std::span<const T> xs, std::uint64_t h = kFnvOffset) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a_bytes(xs.data(), xs.size() * sizeof(T), h);
}

template <class T>
std::uint64_t fnv1a_value(const T& x, std::uint64_t h = kFnvOffset) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a_bytes(&x, sizeof(T), h);
}

}  // namespace detail

/// Identity of a CSR matrix for caching purposes.
struct MatrixFingerprint {
  std::uint64_t pattern_hash = 0;  // rows, cols, rowptr, colind
  std::uint64_t values_hash = 0;   // raw value bytes
  index_t rows = 0;
  index_t nnz = 0;

  friend bool operator==(const MatrixFingerprint& a,
                         const MatrixFingerprint& b) {
    return a.pattern_hash == b.pattern_hash &&
           a.values_hash == b.values_hash && a.rows == b.rows &&
           a.nnz == b.nnz;
  }

  /// Single 64-bit mix of both hashes (for hash tables / logs).
  [[nodiscard]] std::uint64_t combined() const {
    std::uint64_t h = detail::fnv1a_value(pattern_hash);
    h = detail::fnv1a_value(values_hash, h);
    h = detail::fnv1a_value(rows, h);
    return detail::fnv1a_value(nnz, h);
  }
};

/// Fingerprint a matrix: one pass over the pattern arrays, one over values.
template <class T>
MatrixFingerprint fingerprint(const Csr<T>& a) {
  MatrixFingerprint fp;
  fp.rows = a.rows;
  fp.nnz = a.nnz();
  std::uint64_t h = detail::fnv1a_value(a.rows);
  h = detail::fnv1a_value(a.cols, h);
  h = detail::fnv1a_span(std::span<const index_t>(a.rowptr), h);
  fp.pattern_hash = detail::fnv1a_span(std::span<const index_t>(a.colind), h);
  fp.values_hash = detail::fnv1a_span(std::span<const T>(a.values));
  return fp;
}

/// Digest of every option that changes the *setup* (sparsify decision,
/// factorization, schedules). Solve-phase options (pcg tolerances, executor
/// choice) are deliberately excluded: setups are shareable across them.
inline std::uint64_t setup_options_digest(const SpcgOptions& opt) {
  std::uint64_t h = detail::fnv1a_value(opt.sparsify_enabled);
  h = detail::fnv1a_span(std::span<const double>(opt.sparsify.ratios), h);
  h = detail::fnv1a_value(opt.sparsify.tau, h);
  h = detail::fnv1a_value(opt.sparsify.omega_percent, h);
  h = detail::fnv1a_value(static_cast<int>(opt.sparsify.estimator), h);
  h = detail::fnv1a_value(static_cast<int>(opt.sparsify.denominator), h);
  h = detail::fnv1a_value(opt.sparsify.lanczos_steps, h);
  h = detail::fnv1a_value(static_cast<int>(opt.preconditioner), h);
  h = detail::fnv1a_value(opt.fill_level, h);
  h = detail::fnv1a_value(opt.max_row_fill, h);
  h = detail::fnv1a_value(opt.ilu.boost_zero_pivots, h);
  h = detail::fnv1a_value(opt.ilu.pivot_floor, h);
  return h;
}

/// Composite cache key: matrix identity x setup-relevant options.
struct SetupKey {
  MatrixFingerprint matrix;
  std::uint64_t options_digest = 0;

  friend bool operator==(const SetupKey& a, const SetupKey& b) {
    return a.matrix == b.matrix && a.options_digest == b.options_digest;
  }
};

struct SetupKeyHash {
  std::size_t operator()(const SetupKey& k) const {
    return static_cast<std::size_t>(
        detail::fnv1a_value(k.options_digest, k.matrix.combined()));
  }
};

template <class T>
SetupKey make_setup_key(const Csr<T>& a, const SpcgOptions& opt) {
  return SetupKey{fingerprint(a), setup_options_digest(opt)};
}

/// Pattern-only projection of a SetupKey: everything except values_hash.
/// Two SetupKeys with equal pattern keys describe the same sparsity
/// structure under the same setup options — a cached setup for one is a
/// valid symbolic donor (ILU pattern, level schedules, sparsify pattern
/// decision) for the other; only factor numerics differ. This is the key of
/// SetupCache's secondary index behind the transient fast path.
struct SetupPatternKey {
  std::uint64_t pattern_hash = 0;
  index_t rows = 0;
  index_t nnz = 0;
  std::uint64_t options_digest = 0;

  friend bool operator==(const SetupPatternKey& a, const SetupPatternKey& b) {
    return a.pattern_hash == b.pattern_hash && a.rows == b.rows &&
           a.nnz == b.nnz && a.options_digest == b.options_digest;
  }
};

struct SetupPatternKeyHash {
  std::size_t operator()(const SetupPatternKey& k) const {
    std::uint64_t h = detail::fnv1a_value(k.pattern_hash);
    h = detail::fnv1a_value(k.rows, h);
    h = detail::fnv1a_value(k.nnz, h);
    return static_cast<std::size_t>(detail::fnv1a_value(k.options_digest, h));
  }
};

inline SetupPatternKey pattern_key_of(const SetupKey& k) {
  return SetupPatternKey{k.matrix.pattern_hash, k.matrix.rows, k.matrix.nnz,
                         k.options_digest};
}

/// Same, reusing an already-computed fingerprint (e.g. shared across the
/// fill-level candidates of select_best_fill_level).
inline SetupKey make_setup_key(const MatrixFingerprint& fp,
                               const SpcgOptions& opt) {
  return SetupKey{fp, setup_options_digest(opt)};
}

}  // namespace spcg
