// ILUT(tau, p): Saad's dual-threshold incomplete LU.
//
// Unlike ILU(K), which fixes the pattern symbolically by level of fill, ILUT
// decides *numerically* during elimination: entries below a relative drop
// tolerance `tau` are discarded, and each row keeps at most `p` entries in
// its L part and `p` in its U part (largest magnitudes win; the diagonal is
// always kept).
//
// This is the in-factor counterpart of SPCG's sparsification: ILUT drops
// *after* the numeric values exist, SPCG drops from A *before*
// factorization. The paper's related work notes that incomplete solvers
// "still retain many fill-ins that are not essential" — the
// bench/ablation_ilut study compares the two dropping points directly.
//
// Caveat for CG: unlike ILU(0)/ILU(K) on a symmetric pattern (which yield a
// symmetric M = L D L^T), ILUT's thresholding is not symmetric, so M is only
// approximately symmetric. With aggressive tolerances (>~ 5e-2) plain CG can
// stagnate a few orders above the target residual; use moderate tolerances
// for CG, or a flexible outer iteration. SPCG sidesteps this entirely by
// dropping from A (symmetrically) before the factorization.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "precond/ilu.h"
#include "sparse/csr.h"

namespace spcg {

struct IlutOptions {
  double drop_tol = 1e-3;  // relative to the current row's 2-norm
  index_t max_fill = 20;   // p: kept entries per row, per triangle part
  double pivot_floor = 1e-12;
};

/// ILUT factorization; returns the usual combined-LU layout.
template <class T>
IluResult<T> ilut(const Csr<T>& a, const IlutOptions& opt = {}) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK(opt.max_fill >= 1);
  const index_t n = a.rows;

  // Rows of the factor built so far (combined layout per row).
  std::vector<std::vector<index_t>> row_cols(static_cast<std::size_t>(n));
  std::vector<std::vector<T>> row_vals(static_cast<std::size_t>(n));
  std::vector<index_t> diag_in_row(static_cast<std::size_t>(n), -1);

  // Dense workspace.
  std::vector<T> w(static_cast<std::size_t>(n), T{0});
  std::vector<char> in_w(static_cast<std::size_t>(n), 0);
  std::vector<index_t> pattern;  // nonzero positions of w (unsorted)

  IluResult<T> out;
  out.lu.rows = n;
  out.lu.cols = n;
  out.lu.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  out.diag_pos.assign(static_cast<std::size_t>(n), -1);

  auto scatter = [&](index_t j, T v) {
    if (!in_w[static_cast<std::size_t>(j)]) {
      in_w[static_cast<std::size_t>(j)] = 1;
      pattern.push_back(j);
      w[static_cast<std::size_t>(j)] = v;
    } else {
      w[static_cast<std::size_t>(j)] += v;
    }
  };

  for (index_t i = 0; i < n; ++i) {
    pattern.clear();
    T row_norm{0};
    index_t a_row_nnz = 0;
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      scatter(a.colind[static_cast<std::size_t>(p)],
              a.values[static_cast<std::size_t>(p)]);
      row_norm += a.values[static_cast<std::size_t>(p)] *
                  a.values[static_cast<std::size_t>(p)];
      ++a_row_nnz;
    }
    SPCG_CHECK_MSG(in_w[static_cast<std::size_t>(i)],
                   "ilut: row " << i << " has no diagonal");
    row_norm = std::sqrt(row_norm / static_cast<T>(std::max<index_t>(1, a_row_nnz)));
    const T drop = static_cast<T>(opt.drop_tol) * row_norm;

    // Eliminate against previous rows in ascending column order.
    std::sort(pattern.begin(), pattern.end());
    for (std::size_t t = 0; t < pattern.size(); ++t) {
      const index_t k = pattern[t];
      if (k >= i) break;
      T lik = w[static_cast<std::size_t>(k)];
      const auto dk = static_cast<std::size_t>(diag_in_row[static_cast<std::size_t>(k)]);
      const T pivot = row_vals[static_cast<std::size_t>(k)][dk];
      lik /= pivot;
      if (std::abs(lik) < drop) {
        // Drop the multiplier entirely (first threshold).
        w[static_cast<std::size_t>(k)] = T{0};
        continue;
      }
      w[static_cast<std::size_t>(k)] = lik;
      out.elimination_ops +=
          row_cols[static_cast<std::size_t>(k)].size() - dk - 1;
      for (std::size_t q = dk + 1; q < row_cols[static_cast<std::size_t>(k)].size();
           ++q) {
        const index_t j = row_cols[static_cast<std::size_t>(k)][q];
        const T upd = -lik * row_vals[static_cast<std::size_t>(k)][q];
        if (!in_w[static_cast<std::size_t>(j)]) {
          // New fill: subject to the drop tolerance immediately.
          if (std::abs(upd) < drop) continue;
          in_w[static_cast<std::size_t>(j)] = 1;
          w[static_cast<std::size_t>(j)] = upd;
          pattern.push_back(j);
          // Keep `pattern` sorted from the current position on.
          for (std::size_t b = pattern.size() - 1;
               b > t + 1 && pattern[b] < pattern[b - 1]; --b)
            std::swap(pattern[b], pattern[b - 1]);
        } else {
          w[static_cast<std::size_t>(j)] += upd;
        }
      }
    }

    // Gather, apply thresholds, keep top-p per part.
    std::vector<std::pair<T, index_t>> lower, upper;
    T diag_val{0};
    for (const index_t j : pattern) {
      const T v = w[static_cast<std::size_t>(j)];
      in_w[static_cast<std::size_t>(j)] = 0;
      w[static_cast<std::size_t>(j)] = T{0};
      if (j == i) {
        diag_val = v;
      } else if (v != T{0} && std::abs(v) >= drop) {
        (j < i ? lower : upper).push_back({std::abs(v), j});
        w[static_cast<std::size_t>(j)] = v;  // stash; re-cleared below
        in_w[static_cast<std::size_t>(j)] = 2;
      }
    }
    auto keep_top = [&](std::vector<std::pair<T, index_t>>& part) {
      if (static_cast<index_t>(part.size()) > opt.max_fill) {
        std::nth_element(part.begin(),
                         part.begin() + static_cast<std::ptrdiff_t>(opt.max_fill),
                         part.end(), [](const auto& x, const auto& y) {
                           return x.first > y.first;
                         });
        part.resize(static_cast<std::size_t>(opt.max_fill));
      }
      std::sort(part.begin(), part.end(),
                [](const auto& x, const auto& y) { return x.second < y.second; });
    };
    keep_top(lower);
    keep_top(upper);

    const T floor = static_cast<T>(opt.pivot_floor) * std::max(row_norm, T{1});
    if (std::abs(diag_val) < floor) {
      // Pivot collapsed (aggressive dropping): fall back to A's diagonal,
      // which keeps the preconditioner locally scaled like the matrix —
      // a tiny floor value would make M^{-1} explode instead.
      const T aii = a.at(i, i);
      diag_val = (std::abs(aii) > floor) ? aii : floor;
      out.breakdown = true;
    }

    auto& rc = row_cols[static_cast<std::size_t>(i)];
    auto& rv = row_vals[static_cast<std::size_t>(i)];
    rc.reserve(lower.size() + upper.size() + 1);
    for (const auto& [mag, j] : lower) {
      rc.push_back(j);
      rv.push_back(w[static_cast<std::size_t>(j)]);
    }
    diag_in_row[static_cast<std::size_t>(i)] = static_cast<index_t>(rc.size());
    rc.push_back(i);
    rv.push_back(diag_val);
    for (const auto& [mag, j] : upper) {
      rc.push_back(j);
      rv.push_back(w[static_cast<std::size_t>(j)]);
    }
    // Clear the stash.
    for (const auto& [mag, j] : lower) {
      w[static_cast<std::size_t>(j)] = T{0};
      in_w[static_cast<std::size_t>(j)] = 0;
    }
    for (const auto& [mag, j] : upper) {
      w[static_cast<std::size_t>(j)] = T{0};
      in_w[static_cast<std::size_t>(j)] = 0;
    }
  }

  // Assemble the CSR factor.
  for (index_t i = 0; i < n; ++i) {
    out.diag_pos[static_cast<std::size_t>(i)] = static_cast<index_t>(
        out.lu.colind.size() +
        static_cast<std::size_t>(diag_in_row[static_cast<std::size_t>(i)]));
    out.lu.colind.insert(out.lu.colind.end(),
                         row_cols[static_cast<std::size_t>(i)].begin(),
                         row_cols[static_cast<std::size_t>(i)].end());
    out.lu.values.insert(out.lu.values.end(),
                         row_vals[static_cast<std::size_t>(i)].begin(),
                         row_vals[static_cast<std::size_t>(i)].end());
    out.lu.rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(out.lu.colind.size());
  }
  out.fill_nnz = out.lu.nnz() - a.nnz();
  return out;
}

}  // namespace spcg
