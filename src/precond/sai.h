// Static-pattern sparse approximate inverse (SAI / SPAI) preconditioner.
//
// The other approximation family the paper discusses (§6.2, Chow 2001;
// Anzt et al. 2016): instead of factoring A, directly compute a sparse M
// approximating A^{-1} by minimizing ||e_i - A m_i||_2 per row over a fixed
// sparsity pattern (here: the pattern of A, optionally of A^2). Applying M
// is a single SpMV — *no triangular solves, no wavefronts at all* — which is
// why SAI is attractive on GPUs; the trade-off is weaker convergence and the
// assumption that A^{-1} has good sparse approximations at all.
//
// Implementation: for each row i with pattern J, the least-squares problem
// involves the submatrix A(I, J) where I are the rows touched by columns J
// (A is symmetric, so columns = rows). Solved densely via normal equations
// with Cholesky — the blocks are tiny (|J| ~ row nnz).
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "precond/preconditioner.h"
#include "sparse/csr.h"
#include "sparse/ops.h"

namespace spcg {

struct SaiOptions {
  /// Pattern: 0 = pattern of A (cheapest), 1 = pattern of A^2 (denser,
  /// better approximation; "level 1" neighbor expansion).
  int pattern_level = 0;
  /// Tikhonov regularization for the tiny normal-equation solves.
  double ridge = 1e-12;
};

namespace detail {

/// Dense SPD solve via Cholesky, in place; g is n x n row-major, b length n.
/// Returns false when the matrix is not numerically SPD.
inline bool dense_spd_solve_inplace(std::vector<double>& g,
                                    std::vector<double>& b, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    double d = g[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= g[j * n + k] * g[j * n + k];
    if (!(d > 0.0)) return false;
    const double ljj = std::sqrt(d);
    g[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = g[i * n + j];
      for (std::size_t k = 0; k < j; ++k) v -= g[i * n + k] * g[j * n + k];
      g[i * n + j] = v / ljj;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= g[i * n + k] * b[k];
    b[i] = v / g[i * n + i];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= g[k * n + ii] * b[k];
    b[ii] = v / g[ii * n + ii];
  }
  return true;
}

/// Pattern of A (level 0) or A^2 (level 1) for row i, sorted.
template <class T>
std::vector<index_t> sai_pattern_row(const Csr<T>& a, index_t i, int level) {
  std::vector<index_t> cols(a.row_cols(i).begin(), a.row_cols(i).end());
  if (level >= 1) {
    std::vector<index_t> expanded = cols;
    for (const index_t j : cols) {
      expanded.insert(expanded.end(), a.row_cols(j).begin(),
                      a.row_cols(j).end());
    }
    std::sort(expanded.begin(), expanded.end());
    expanded.erase(std::unique(expanded.begin(), expanded.end()),
                   expanded.end());
    return expanded;
  }
  return cols;
}

}  // namespace detail

/// Build the SAI matrix M ~ A^{-1} for symmetric A. Row i of M minimizes
/// ||e_i - A m_i|| over the chosen pattern (normal equations per row).
template <class T>
Csr<T> sai_inverse(const Csr<T>& a, const SaiOptions& opt = {}) {
  SPCG_CHECK(a.rows == a.cols);
  const index_t n = a.rows;
  Csr<T> m(n, n);

  std::vector<double> gram, rhs;
  for (index_t i = 0; i < n; ++i) {
    const std::vector<index_t> pattern =
        detail::sai_pattern_row(a, i, opt.pattern_level);
    const std::size_t k = pattern.size();
    SPCG_CHECK_MSG(k > 0, "SAI: empty pattern at row " << i);

    // Normal equations: (A(:,J)^T A(:,J) + ridge I) m = A(:,J)^T e_i.
    // With symmetric A, column j of A is row j; the Gram entry (p, q) is the
    // sparse dot of rows pattern[p] and pattern[q].
    gram.assign(k * k, 0.0);
    rhs.assign(k, 0.0);
    for (std::size_t p = 0; p < k; ++p) {
      const auto cols_p = a.row_cols(pattern[p]);
      const auto vals_p = a.row_vals(pattern[p]);
      for (std::size_t q = p; q < k; ++q) {
        // Sparse dot of two sorted rows.
        const auto cols_q = a.row_cols(pattern[q]);
        const auto vals_q = a.row_vals(pattern[q]);
        double acc = 0.0;
        std::size_t x = 0, y = 0;
        while (x < cols_p.size() && y < cols_q.size()) {
          if (cols_p[x] == cols_q[y]) {
            acc += static_cast<double>(vals_p[x]) *
                   static_cast<double>(vals_q[y]);
            ++x;
            ++y;
          } else if (cols_p[x] < cols_q[y]) {
            ++x;
          } else {
            ++y;
          }
        }
        gram[p * k + q] = acc;
        gram[q * k + p] = acc;
      }
      gram[p * k + p] += opt.ridge;
      // (A(:,J)^T e_i)_p = A(i, pattern[p]).
      rhs[p] = static_cast<double>(a.at(i, pattern[p]));
    }
    SPCG_CHECK_MSG(detail::dense_spd_solve_inplace(gram, rhs, k),
                   "SAI normal equations not SPD at row " << i);

    for (std::size_t p = 0; p < k; ++p) {
      m.colind.push_back(pattern[p]);
      m.values.push_back(static_cast<T>(rhs[p]));
    }
    m.rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(m.colind.size());
  }
  return m;
}

/// Preconditioner wrapper: z = M r is one SpMV (wavefront-free).
template <class T>
class SaiPreconditioner final : public Preconditioner<T> {
 public:
  explicit SaiPreconditioner(const Csr<T>& a, const SaiOptions& opt = {})
      : m_(sai_inverse(a, opt)) {}

  void apply(std::span<const T> r, std::span<T> z) const override {
    spmv(m_, r, z);
  }
  [[nodiscard]] index_t rows() const override { return m_.rows; }
  [[nodiscard]] const Csr<T>& matrix() const { return m_; }

 private:
  Csr<T> m_;
};

}  // namespace spcg
