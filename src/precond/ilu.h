// Incomplete LU factorizations.
//
// Both ILU(0) and ILU(K) are expressed as "ILU on a fixed pattern":
//   * ILU(0): the pattern is exactly the pattern of A (no fill-in).
//   * ILU(K): the pattern is A's pattern extended with all fill entries whose
//     level-of-fill is <= K (Saad, "Iterative Methods for Sparse Linear
//     Systems", Alg. 10.5/10.6). The paper obtains this factor from SuperLU
//     on the CPU; here the symbolic and numeric phases are implemented
//     directly.
//
// The numeric phase is the classic IKJ row elimination restricted to the
// pattern, producing a combined factor: strict lower part holds L (unit
// diagonal implicit), diagonal + upper part hold U.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "sparse/csr.h"
#include "sparse/ops.h"
#include "wavefront/levels.h"

namespace spcg {

/// Options controlling pivot handling during the numeric phase.
struct IluOptions {
  /// When a pivot's magnitude falls below `pivot_floor * ||row||_inf`, it is
  /// replaced by that floor (signed). Set boost_zero_pivots=false to throw
  /// instead — useful in tests that must detect breakdown.
  bool boost_zero_pivots = true;
  double pivot_floor = 1e-12;
};

/// Result of a factorization: combined LU in one CSR plus the diagonal
/// positions (pointing at U's diagonal inside `lu`).
template <class T>
struct IluResult {
  Csr<T> lu;                      // combined factor, same shape as pattern
  std::vector<index_t> diag_pos;  // position of (i,i) in lu for each row
  index_t fill_nnz = 0;           // nnz(lu) - nnz(A): fill introduced (ILU(K))
  bool breakdown = false;         // a pivot was boosted during elimination
  /// Inner-loop update count of the elimination (one multiply-add per unit);
  /// feeds the factorization cost models.
  std::uint64_t elimination_ops = 0;
};

namespace detail {

/// Numeric ILU on the (already sorted, diagonal-present) pattern in `lu`.
/// `lu.values` must hold A's values at A's positions and 0 at fill positions.
/// `pos` is caller-owned scatter scratch of size n whose entries are all -1
/// on entry; it is restored to all -1 on return. The refactorize path passes
/// a preallocated buffer here so a numeric-only refresh never allocates.
template <class T>
void ilu_numeric_in_place(Csr<T>& lu, std::vector<index_t>& diag_pos,
                          const IluOptions& opt, bool& breakdown,
                          std::uint64_t& elimination_ops,
                          std::span<index_t> pos) {
  const index_t n = lu.rows;
  SPCG_CHECK(static_cast<index_t>(pos.size()) == n);
  diag_pos.assign(static_cast<std::size_t>(n), -1);

  for (index_t i = 0; i < n; ++i) {
    const index_t row_begin = lu.rowptr[static_cast<std::size_t>(i)];
    const index_t row_end = lu.rowptr[static_cast<std::size_t>(i) + 1];
    // Scatter column -> position for row i.
    for (index_t p = row_begin; p < row_end; ++p)
      pos[static_cast<std::size_t>(lu.colind[static_cast<std::size_t>(p)])] = p;

    T row_norm{0};
    for (index_t p = row_begin; p < row_end; ++p)
      row_norm = std::max(row_norm,
                          std::abs(lu.values[static_cast<std::size_t>(p)]));

    // Eliminate using previous rows k < i present in this row's pattern.
    for (index_t p = row_begin; p < row_end; ++p) {
      const index_t k = lu.colind[static_cast<std::size_t>(p)];
      if (k >= i) break;  // columns are sorted; remaining are U-part
      const index_t dk = diag_pos[static_cast<std::size_t>(k)];
      SPCG_CHECK_MSG(dk >= 0, "missing diagonal in pivot row " << k);
      const T pivot = lu.values[static_cast<std::size_t>(dk)];
      SPCG_CHECK_MSG(pivot != T{0},
                     "zero pivot in row " << k << " while eliminating row "
                                          << i);
      const T lik = lu.values[static_cast<std::size_t>(p)] / pivot;
      lu.values[static_cast<std::size_t>(p)] = lik;
      // Subtract lik * (U-part of row k) from row i, restricted to pattern.
      elimination_ops +=
          static_cast<std::uint64_t>(lu.rowptr[static_cast<std::size_t>(k) + 1] -
                                     (dk + 1)) +
          1;
      for (index_t q = dk + 1; q < lu.rowptr[static_cast<std::size_t>(k) + 1];
           ++q) {
        const index_t j = lu.colind[static_cast<std::size_t>(q)];
        const index_t pj = pos[static_cast<std::size_t>(j)];
        if (pj >= 0)
          lu.values[static_cast<std::size_t>(pj)] -=
              lik * lu.values[static_cast<std::size_t>(q)];
      }
    }

    const index_t di = pos[static_cast<std::size_t>(i)];
    SPCG_CHECK_MSG(di >= 0, "pattern row " << i << " has no diagonal entry");
    diag_pos[static_cast<std::size_t>(i)] = di;
    T& pivot = lu.values[static_cast<std::size_t>(di)];
    const T floor = static_cast<T>(opt.pivot_floor) *
                    std::max(row_norm, T{1});
    if (std::abs(pivot) < floor) {
      SPCG_CHECK_MSG(opt.boost_zero_pivots,
                     "zero pivot at row " << i << " (|pivot|=" << std::abs(pivot)
                                          << ")");
      pivot = (pivot < T{0} ? -floor : floor);
      breakdown = true;
    }

    // Clear scatter array.
    for (index_t p = row_begin; p < row_end; ++p)
      pos[static_cast<std::size_t>(lu.colind[static_cast<std::size_t>(p)])] = -1;
  }
}

/// Allocating convenience overload: owns the scatter scratch itself.
template <class T>
void ilu_numeric_in_place(Csr<T>& lu, std::vector<index_t>& diag_pos,
                          const IluOptions& opt, bool& breakdown,
                          std::uint64_t& elimination_ops) {
  std::vector<index_t> pos(static_cast<std::size_t>(lu.rows), -1);
  ilu_numeric_in_place(lu, diag_pos, opt, breakdown, elimination_ops,
                       std::span<index_t>(pos));
}

}  // namespace detail

/// ILU(0): incomplete LU with zero fill-in, on A's own pattern. A must be
/// square with a fully stored diagonal.
template <class T>
IluResult<T> ilu0(const Csr<T>& a, const IluOptions& opt = {}) {
  SPCG_CHECK(a.rows == a.cols);
  IluResult<T> r;
  r.lu = a;  // pattern and initial values are A's
  detail::ilu_numeric_in_place(r.lu, r.diag_pos, opt, r.breakdown,
                               r.elimination_ops);
  r.fill_nnz = 0;
  return r;
}

/// Symbolic ILU(K): returns the filled pattern (colind sorted per row,
/// diagonal included) and the level of fill of every stored entry.
///
/// `max_row_fill` caps the stored entries per row as a safety valve against
/// quadratic blow-up on scattered patterns (0 = unlimited). When the cap
/// trips, the lowest-level (most important) entries are kept and
/// `truncated_rows` counts the affected rows.
struct IlukSymbolic {
  Csr<char> pattern;              // values unused; structure only
  std::vector<index_t> levels;    // level of fill per stored entry
  index_t truncated_rows = 0;
};

IlukSymbolic iluk_symbolic(const Csr<double>& a, index_t k,
                           index_t max_row_fill = 0);

template <class T>
IlukSymbolic iluk_symbolic_t(const Csr<T>& a, index_t k,
                             index_t max_row_fill = 0) {
  // Level-of-fill is purely structural; reuse the double-based entry point.
  Csr<double> shadow;
  shadow.rows = a.rows;
  shadow.cols = a.cols;
  shadow.rowptr = a.rowptr;
  shadow.colind = a.colind;
  shadow.values.assign(a.values.size(), 1.0);
  return iluk_symbolic(shadow, k, max_row_fill);
}

/// ILU(K): symbolic fill to level `k`, then numeric factorization on the
/// extended pattern.
template <class T>
IluResult<T> iluk(const Csr<T>& a, index_t k, const IluOptions& opt = {},
                  index_t max_row_fill = 0) {
  SPCG_CHECK(a.rows == a.cols);
  const IlukSymbolic sym = iluk_symbolic_t(a, k, max_row_fill);
  IluResult<T> r;
  r.lu.rows = a.rows;
  r.lu.cols = a.cols;
  r.lu.rowptr = sym.pattern.rowptr;
  r.lu.colind = sym.pattern.colind;
  r.lu.values.assign(r.lu.colind.size(), T{0});
  // Scatter A's values into the extended pattern. When the per-row fill cap
  // tripped, an original entry may have been truncated out of the pattern —
  // it is then simply absent from the preconditioner (ILUT-style drop).
  // Without truncation a missing entry would be a symbolic-phase bug.
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t q = r.lu.find(i, a.colind[static_cast<std::size_t>(p)]);
      if (q < 0) {
        SPCG_CHECK_MSG(sym.truncated_rows > 0,
                       "ILU(K) pattern lost original entry at row " << i);
        continue;
      }
      r.lu.values[static_cast<std::size_t>(q)] =
          a.values[static_cast<std::size_t>(p)];
    }
  }
  detail::ilu_numeric_in_place(r.lu, r.diag_pos, opt, r.breakdown,
                               r.elimination_ops);
  r.fill_nnz = r.lu.nnz() - a.nnz();
  return r;
}

/// Numeric-only refactorization: rerun the elimination on an existing
/// factorization's pattern with fresh values from `a`. The symbolic
/// structure (lu.rowptr/colind — A's pattern for ILU(0), the level-K closure
/// for ILU(K)) is reused verbatim; only lu.values, diag_pos, breakdown and
/// elimination_ops are recomputed. `a` must have the pattern the original
/// factorization was built from (same rows and the same stored entries —
/// only the values may differ); entries of `a` absent from the pattern are
/// only legal when the ILU(K) per-row fill cap truncated them out of the
/// original setup, mirroring iluk()'s scatter.
///
/// `pos_scratch`, when non-empty, must be a caller-owned buffer of size
/// a.rows with every entry -1 (restored on return) — passing it makes the
/// refresh allocation-free apart from diag_pos.assign, which reuses its
/// existing capacity. Empty = allocate internally.
template <class T>
void ilu_refactorize(IluResult<T>& r, const Csr<T>& a,
                     const IluOptions& opt = {},
                     std::span<index_t> pos_scratch = {}) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK(r.lu.rows == a.rows && r.lu.cols == a.cols);
  // ILU(0) setups (no fill, pattern == A's) must find every entry; ILU(K)
  // setups tolerate misses because the per-row fill cap may have truncated
  // original entries out of the pattern (IluResult does not retain the
  // symbolic truncated_rows count, so the K > 0 case cannot be stricter).
  const bool pattern_is_a = r.fill_nnz == 0 && r.lu.nnz() == a.nnz();
  // Reset values to 0, then scatter A's values at A's positions — exactly
  // the initial state iluk() hands to the numeric phase (for ILU(0) the
  // pattern equals A's, so every find hits).
  std::fill(r.lu.values.begin(), r.lu.values.end(), T{0});
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t q = r.lu.find(i, a.colind[static_cast<std::size_t>(p)]);
      if (q < 0) {
        SPCG_CHECK_MSG(!pattern_is_a,
                       "refactorize: pattern lost original entry at row " << i);
        continue;
      }
      r.lu.values[static_cast<std::size_t>(q)] =
          a.values[static_cast<std::size_t>(p)];
    }
  }
  r.breakdown = false;
  r.elimination_ops = 0;
  if (pos_scratch.empty()) {
    detail::ilu_numeric_in_place(r.lu, r.diag_pos, opt, r.breakdown,
                                 r.elimination_ops);
  } else {
    detail::ilu_numeric_in_place(r.lu, r.diag_pos, opt, r.breakdown,
                                 r.elimination_ops, pos_scratch);
  }
}

/// Split a combined LU factor into explicit triangular factors:
/// L gets the strict lower part plus a stored unit diagonal; U gets the
/// diagonal and strict upper part.
template <class T>
struct TriangularFactors {
  Csr<T> l;  // unit lower triangular (diagonal stored as 1)
  Csr<T> u;  // upper triangular including diagonal
};

template <class T>
TriangularFactors<T> split_lu(const IluResult<T>& r) {
  TriangularFactors<T> f;
  f.l = extract_triangle(r.lu, Triangle::kLower, DiagonalPolicy::kExclude);
  // Insert the unit diagonal into L.
  Csr<T> l_with_diag(r.lu.rows, r.lu.cols);
  for (index_t i = 0; i < r.lu.rows; ++i) {
    for (index_t p = f.l.rowptr[static_cast<std::size_t>(i)];
         p < f.l.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      l_with_diag.colind.push_back(f.l.colind[static_cast<std::size_t>(p)]);
      l_with_diag.values.push_back(f.l.values[static_cast<std::size_t>(p)]);
    }
    l_with_diag.colind.push_back(i);
    l_with_diag.values.push_back(T{1});
    l_with_diag.rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(l_with_diag.colind.size());
  }
  f.l = std::move(l_with_diag);
  f.u = extract_triangle(r.lu, Triangle::kUpper, DiagonalPolicy::kInclude);
  return f;
}

}  // namespace spcg
