// Symbolic phase of ILU(K): level-of-fill pattern computation.
//
// Row-by-row linked-list merge in the style of SPARSKIT's iluk / Saad
// Alg. 10.6. For row i the workspace holds the current fill pattern as a
// sorted singly linked list; eliminating against each k < i fans out the
// stored U-part of row k, inserting fill entries whose level
//   lev(i,j) = lev(i,k) + lev(k,j) + 1
// does not exceed K. Only entries with level <= K are ever inserted, so the
// list never carries dropped entries.

#include <algorithm>
#include <limits>
#include <utility>

#include "precond/ilu.h"

namespace spcg {

IlukSymbolic iluk_symbolic(const Csr<double>& a, index_t k,
                           index_t max_row_fill) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK(k >= 0);
  const index_t n = a.rows;
  constexpr index_t kNone = -1;

  IlukSymbolic out;
  out.pattern.rows = n;
  out.pattern.cols = n;
  out.pattern.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);

  // Stored U-parts (strictly j > i) of already-processed rows: columns and
  // levels, used to fan out during later rows' elimination.
  std::vector<std::vector<index_t>> u_cols(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> u_levs(static_cast<std::size_t>(n));

  const index_t head = n;  // sentinel node of the linked list
  std::vector<index_t> next(static_cast<std::size_t>(n) + 1, kNone);
  std::vector<index_t> lev(static_cast<std::size_t>(n),
                           std::numeric_limits<index_t>::max());

  std::vector<index_t> row_cols;
  std::vector<index_t> row_levs;
  std::vector<std::pair<index_t, index_t>> keep;  // (level, col) for capping

  for (index_t i = 0; i < n; ++i) {
    // Seed the list with A's row i (columns already sorted).
    index_t prev = head;
    bool has_diag = false;
    for (const index_t j : a.row_cols(i)) {
      next[static_cast<std::size_t>(prev)] = j;
      lev[static_cast<std::size_t>(j)] = 0;
      prev = j;
      has_diag |= (j == i);
    }
    next[static_cast<std::size_t>(prev)] = kNone;
    SPCG_CHECK_MSG(has_diag, "iluk_symbolic: row " << i << " has no diagonal");

    // Eliminate against rows k' < i in ascending column order.
    for (index_t kk = next[static_cast<std::size_t>(head)];
         kk != kNone && kk < i; kk = next[static_cast<std::size_t>(kk)]) {
      const index_t lev_ik = lev[static_cast<std::size_t>(kk)];
      index_t ins = kk;  // insertion scan pointer (row k's U-part is sorted)
      const auto& cols_k = u_cols[static_cast<std::size_t>(kk)];
      const auto& levs_k = u_levs[static_cast<std::size_t>(kk)];
      for (std::size_t t = 0; t < cols_k.size(); ++t) {
        const index_t j = cols_k[t];
        const index_t new_lev = lev_ik + levs_k[t] + 1;
        if (new_lev > k) continue;
        if (lev[static_cast<std::size_t>(j)] !=
            std::numeric_limits<index_t>::max()) {
          lev[static_cast<std::size_t>(j)] =
              std::min(lev[static_cast<std::size_t>(j)], new_lev);
        } else {
          while (next[static_cast<std::size_t>(ins)] != kNone &&
                 next[static_cast<std::size_t>(ins)] < j)
            ins = next[static_cast<std::size_t>(ins)];
          next[static_cast<std::size_t>(j)] = next[static_cast<std::size_t>(ins)];
          next[static_cast<std::size_t>(ins)] = j;
          lev[static_cast<std::size_t>(j)] = new_lev;
        }
      }
    }

    // Gather the row (already sorted by construction).
    row_cols.clear();
    row_levs.clear();
    for (index_t j = next[static_cast<std::size_t>(head)]; j != kNone;
         j = next[static_cast<std::size_t>(j)]) {
      row_cols.push_back(j);
      row_levs.push_back(lev[static_cast<std::size_t>(j)]);
    }

    // Optional per-row cap: keep original (level-0) entries plus the
    // lowest-level fills, then restore column order.
    if (max_row_fill > 0 &&
        static_cast<index_t>(row_cols.size()) > max_row_fill) {
      keep.clear();
      keep.reserve(row_cols.size());
      for (std::size_t t = 0; t < row_cols.size(); ++t)
        keep.emplace_back(row_levs[t], row_cols[t]);
      std::stable_sort(keep.begin(), keep.end());
      keep.resize(static_cast<std::size_t>(max_row_fill));
      std::sort(keep.begin(), keep.end(),
                [](const auto& x, const auto& y) { return x.second < y.second; });
      row_cols.clear();
      row_levs.clear();
      for (const auto& [l, j] : keep) {
        row_cols.push_back(j);
        row_levs.push_back(l);
      }
      ++out.truncated_rows;
    }

    // Persist the row into the output pattern.
    for (std::size_t t = 0; t < row_cols.size(); ++t) {
      out.pattern.colind.push_back(row_cols[t]);
      out.levels.push_back(row_levs[t]);
    }
    out.pattern.rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(out.pattern.colind.size());

    // Persist this row's U-part (strictly above the diagonal) for later rows.
    auto& uc = u_cols[static_cast<std::size_t>(i)];
    auto& ul = u_levs[static_cast<std::size_t>(i)];
    for (std::size_t t = 0; t < row_cols.size(); ++t) {
      if (row_cols[t] > i) {
        uc.push_back(row_cols[t]);
        ul.push_back(row_levs[t]);
      }
    }

    // Reset the workspace.
    for (index_t j = next[static_cast<std::size_t>(head)]; j != kNone;) {
      const index_t nj = next[static_cast<std::size_t>(j)];
      lev[static_cast<std::size_t>(j)] = std::numeric_limits<index_t>::max();
      next[static_cast<std::size_t>(j)] = kNone;
      j = nj;
    }
    next[static_cast<std::size_t>(head)] = kNone;
  }

  out.pattern.values.assign(out.pattern.colind.size(), char{1});
  return out;
}

}  // namespace spcg
