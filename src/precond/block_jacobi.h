// Block-Jacobi preconditioner: contiguous diagonal blocks factored densely
// and applied independently — fully parallel, no inter-block dependences
// (the other classic GPU preconditioner; cf. Chen et al. 2018 and the
// adaptive block-Jacobi line of work cited by the paper).
//
// Convergence is weaker than ILU (all inter-block coupling is ignored), but
// application is wavefront-free, making it a useful contrast point for the
// SPCG study: SPCG shortens ILU's dependence chains, block-Jacobi removes
// them entirely at the price of preconditioner quality.
#pragma once

#include <cmath>
#include <vector>

#include "precond/preconditioner.h"
#include "sparse/csr.h"

namespace spcg {

template <class T>
class BlockJacobiPreconditioner final : public Preconditioner<T> {
 public:
  /// Blocks are [k*block_size, (k+1)*block_size) row ranges. Each diagonal
  /// block is densified and Cholesky-factored; it must be SPD (true for any
  /// principal submatrix of an SPD matrix).
  BlockJacobiPreconditioner(const Csr<T>& a, index_t block_size)
      : n_(a.rows), block_size_(block_size) {
    SPCG_CHECK(a.rows == a.cols);
    SPCG_CHECK(block_size >= 1);
    const index_t blocks = (n_ + block_size - 1) / block_size;
    factors_.resize(static_cast<std::size_t>(blocks));
    for (index_t blk = 0; blk < blocks; ++blk) {
      const index_t lo = blk * block_size;
      const index_t hi = std::min(n_, lo + block_size);
      const auto bs = static_cast<std::size_t>(hi - lo);
      auto& chol = factors_[static_cast<std::size_t>(blk)];
      chol.assign(bs * bs, T{0});
      for (index_t i = lo; i < hi; ++i) {
        const auto cols_i = a.row_cols(i);
        const auto vals_i = a.row_vals(i);
        for (std::size_t p = 0; p < cols_i.size(); ++p) {
          if (cols_i[p] >= lo && cols_i[p] < hi) {
            chol[static_cast<std::size_t>(i - lo) * bs +
                 static_cast<std::size_t>(cols_i[p] - lo)] = vals_i[p];
          }
        }
      }
      // In-place dense Cholesky (lower).
      for (std::size_t j = 0; j < bs; ++j) {
        T d = chol[j * bs + j];
        for (std::size_t k = 0; k < j; ++k) d -= chol[j * bs + k] * chol[j * bs + k];
        SPCG_CHECK_MSG(d > T{0},
                       "block-Jacobi: diagonal block " << blk
                                                       << " is not SPD");
        const T ljj = std::sqrt(d);
        chol[j * bs + j] = ljj;
        for (std::size_t i = j + 1; i < bs; ++i) {
          T v = chol[i * bs + j];
          for (std::size_t k = 0; k < j; ++k) v -= chol[i * bs + k] * chol[j * bs + k];
          chol[i * bs + j] = v / ljj;
        }
      }
    }
  }

  void apply(std::span<const T> r, std::span<T> z) const override {
    SPCG_CHECK(static_cast<index_t>(r.size()) == n_);
    const auto blocks = static_cast<index_t>(factors_.size());
#pragma omp parallel for schedule(static)
    for (index_t blk = 0; blk < blocks; ++blk) {
      const index_t lo = blk * block_size_;
      const index_t hi = std::min(n_, lo + block_size_);
      const auto bs = static_cast<std::size_t>(hi - lo);
      const auto& chol = factors_[static_cast<std::size_t>(blk)];
      // Forward then backward substitution with the dense Cholesky factor.
      for (std::size_t i = 0; i < bs; ++i) {
        T v = r[static_cast<std::size_t>(lo) + i];
        for (std::size_t k = 0; k < i; ++k)
          v -= chol[i * bs + k] * z[static_cast<std::size_t>(lo) + k];
        z[static_cast<std::size_t>(lo) + i] = v / chol[i * bs + i];
      }
      for (std::size_t ii = bs; ii-- > 0;) {
        T v = z[static_cast<std::size_t>(lo) + ii];
        for (std::size_t k = ii + 1; k < bs; ++k)
          v -= chol[k * bs + ii] * z[static_cast<std::size_t>(lo) + k];
        z[static_cast<std::size_t>(lo) + ii] = v / chol[ii * bs + ii];
      }
    }
  }

  [[nodiscard]] index_t rows() const override { return n_; }
  [[nodiscard]] index_t block_size() const { return block_size_; }

 private:
  index_t n_;
  index_t block_size_;
  std::vector<std::vector<T>> factors_;  // dense lower Cholesky per block
};

}  // namespace spcg
