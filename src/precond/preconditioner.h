// Preconditioner application interface used by the PCG solver (Algorithm 1,
// line 13: z = M^{-1} r).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "analysis/race_detector.h"
#include "precond/ilu.h"
#include "sparse/csr.h"
#include "sparse/ops.h"
#include "sptrsv/sptrsv.h"
#include "support/trace.h"
#include "wavefront/levels.h"

namespace spcg {

/// Abstract preconditioner: solves M z = r.
template <class T>
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const T> r, std::span<T> z) const = 0;
  /// Rows of the system this preconditioner was built for.
  [[nodiscard]] virtual index_t rows() const = 0;
};

/// M = I (plain CG).
template <class T>
class IdentityPreconditioner final : public Preconditioner<T> {
 public:
  explicit IdentityPreconditioner(index_t n) : n_(n) {}
  void apply(std::span<const T> r, std::span<T> z) const override {
    SPCG_CHECK(static_cast<index_t>(r.size()) == n_);
    std::copy(r.begin(), r.end(), z.begin());
  }
  [[nodiscard]] index_t rows() const override { return n_; }

 private:
  index_t n_;
};

/// M = diag(A) (Jacobi).
template <class T>
class JacobiPreconditioner final : public Preconditioner<T> {
 public:
  explicit JacobiPreconditioner(const Csr<T>& a) : inv_diag_(diagonal(a)) {
    for (T& d : inv_diag_) {
      SPCG_CHECK_MSG(d != T{0}, "Jacobi preconditioner needs nonzero diagonal");
      d = T{1} / d;
    }
  }
  void apply(std::span<const T> r, std::span<T> z) const override {
    SPCG_CHECK(r.size() == inv_diag_.size());
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
  }
  [[nodiscard]] index_t rows() const override {
    return static_cast<index_t>(inv_diag_.size());
  }

 private:
  std::vector<T> inv_diag_;
};

/// Execution strategy for the two triangular solves of an ILU apply.
enum class TrsvExec {
  kSerial,          // reference forward/backward substitution
  kLevelScheduled,  // wavefront-parallel (OpenMP), cuSPARSE-style
  /// Instrumented race-detecting executor (analysis/race_detector.h): same
  /// results as kLevelScheduled on a valid schedule, throws spcg::Error on
  /// any same-level dependence or stale read. Debug/test tool: every SpTRSV
  /// path can run under the detector by switching this enum.
  kLevelScheduledChecked,
};

namespace detail {

/// The two triangular solves of one ILU apply (L y = r, U z = y) under the
/// chosen executor. `tmp` holds the intermediate y and must not alias r or z.
/// Shared by IluPreconditioner (owning) and IluApplier (non-owning view).
template <class T>
void ilu_apply(const TriangularFactors<T>& f, const LevelSchedule& l_sched,
               const LevelSchedule& u_sched, TrsvExec exec,
               std::span<const T> r, std::span<T> tmp, std::span<T> z) {
  if (exec == TrsvExec::kSerial) {
    {
      Span span("sptrsv_lower", "solve");
      sptrsv_lower_serial(f.l, r, tmp);
    }
    Span span("sptrsv_upper", "solve");
    sptrsv_upper_serial(f.u, std::span<const T>(tmp.data(), tmp.size()), z);
  } else if (exec == TrsvExec::kLevelScheduled) {
    {
      Span span("sptrsv_lower", "solve");
      sptrsv_lower_levels(f.l, l_sched, r, tmp);
    }
    Span span("sptrsv_upper", "solve");
    sptrsv_upper_levels(f.u, u_sched,
                        std::span<const T>(tmp.data(), tmp.size()), z);
  } else {
    const analysis::RaceReport rl =
        analysis::sptrsv_lower_levels_checked(f.l, l_sched, r, tmp);
    const analysis::RaceReport ru = analysis::sptrsv_upper_levels_checked(
        f.u, u_sched, std::span<const T>(tmp.data(), tmp.size()), z);
    SPCG_CHECK_MSG(rl.ok() && ru.ok(),
                   "SpTRSV schedule race: "
                       << (rl.ok() ? ru : rl).to_diagnostics().to_string(4));
  }
}

}  // namespace detail

/// Non-owning ILU apply engine over factors and schedules that live
/// elsewhere (e.g. a cached, shared SolverSetup). Each applier carries its
/// own scratch buffer, so any number of appliers can solve concurrently over
/// the same immutable factors — unlike sharing one IluPreconditioner, whose
/// mutable scratch would race. The referenced objects must outlive the
/// applier.
template <class T>
class IluApplier final : public Preconditioner<T> {
 public:
  IluApplier(const TriangularFactors<T>& factors, const LevelSchedule& l_sched,
             const LevelSchedule& u_sched, TrsvExec exec = TrsvExec::kSerial)
      : exec_(exec), factors_(&factors), l_sched_(&l_sched),
        u_sched_(&u_sched), tmp_(static_cast<std::size_t>(factors.l.rows)) {}

  void apply(std::span<const T> r, std::span<T> z) const override {
    detail::ilu_apply(*factors_, *l_sched_, *u_sched_, exec_, r,
                      std::span<T>(tmp_), z);
  }

  [[nodiscard]] index_t rows() const override { return factors_->l.rows; }

 private:
  TrsvExec exec_;
  const TriangularFactors<T>* factors_;
  const LevelSchedule* l_sched_;
  const LevelSchedule* u_sched_;
  mutable std::vector<T> tmp_;  // intermediate y in L y = r, U z = y
};

/// M = L U from an incomplete factorization. Owns the split factors and
/// their level schedules (built once at construction = the inspector phase).
template <class T>
class IluPreconditioner final : public Preconditioner<T> {
 public:
  IluPreconditioner(IluResult<T> fact, TrsvExec exec = TrsvExec::kSerial)
      : exec_(exec), factors_(split_lu(fact)) {
    l_sched_ = level_schedule(factors_.l, Triangle::kLower);
    u_sched_ = level_schedule(factors_.u, Triangle::kUpper);
    tmp_.resize(static_cast<std::size_t>(factors_.l.rows));
  }

  /// Adopt factors whose schedules were already built (e.g. by spcg_setup),
  /// skipping the redundant inspector pass.
  IluPreconditioner(TriangularFactors<T> factors, LevelSchedule l_sched,
                    LevelSchedule u_sched, TrsvExec exec = TrsvExec::kSerial)
      : exec_(exec), factors_(std::move(factors)),
        l_sched_(std::move(l_sched)), u_sched_(std::move(u_sched)),
        tmp_(static_cast<std::size_t>(factors_.l.rows)) {}

  void apply(std::span<const T> r, std::span<T> z) const override {
    detail::ilu_apply(factors_, l_sched_, u_sched_, exec_, r,
                      std::span<T>(tmp_), z);
  }

  [[nodiscard]] index_t rows() const override { return factors_.l.rows; }
  [[nodiscard]] const TriangularFactors<T>& factors() const { return factors_; }
  [[nodiscard]] const LevelSchedule& lower_schedule() const { return l_sched_; }
  [[nodiscard]] const LevelSchedule& upper_schedule() const { return u_sched_; }

 private:
  TrsvExec exec_;
  TriangularFactors<T> factors_;
  LevelSchedule l_sched_;
  LevelSchedule u_sched_;
  mutable std::vector<T> tmp_;  // intermediate y in L y = r, U z = y
};

/// Incomplete Cholesky IC(0) for SPD matrices, derived from ILU(0): when A is
/// SPD and factorization does not break down, ILU(0) yields A ≈ L D L^T with
/// U = D L^T, so M = L U equals the IC(0) product. This wrapper checks the
/// positive-pivot requirement and reuses the ILU apply path.
template <class T>
std::unique_ptr<Preconditioner<T>> make_ic0(const Csr<T>& a,
                                            TrsvExec exec = TrsvExec::kSerial) {
  IluResult<T> f = ilu0(a);
  for (index_t i = 0; i < a.rows; ++i) {
    const T pivot = f.lu.values[static_cast<std::size_t>(
        f.diag_pos[static_cast<std::size_t>(i)])];
    SPCG_CHECK_MSG(pivot > T{0},
                   "IC(0) requires positive pivots; row " << i << " has "
                                                          << pivot);
  }
  return std::make_unique<IluPreconditioner<T>>(std::move(f), exec);
}

}  // namespace spcg
